//===- posec.cpp - POSE command-line driver -----------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Compile, optimize, run, and explore MC programs from the command line.
//
//   posec prog.mc                         compile + batch-optimize, print RTL
//   posec prog.mc --opt=none|batch|prob   pick the optimization strategy
//   posec prog.mc --run [--entry=main]    simulate and print outputs
//   posec prog.mc --enumerate=FUNC        exhaustively enumerate one function
//   posec prog.mc --dot=FUNC              write FUNC's phase-order DAG as DOT
//   posec prog.mc --sequence=sckh         apply an explicit phase sequence
//   posec prog.mc --budget=N              enumeration budget
//   posec prog.mc --jobs=N                worker threads (enumeration
//                                         levels, batch functions)
//   posec prog.mc --deadline-ms=N         wall-clock limit on optimization
//   posec prog.mc --max-memory-mb=N       approx. memory budget (enumerate)
//   posec prog.mc --verify-ir             verify after every phase, roll
//                                         back and prune on failure
//   posec prog.mc --inject-fault=c:3      fail the 3rd application of c
//                                         (tests the rollback path)
//   posec prog.mc --store=DIR             cache enumerated DAGs (and
//                                         checkpoints of interrupted runs)
//   posec prog.mc --resume --store=DIR    continue from a checkpoint
//   posec prog.mc --analyze-store --store=DIR
//                                         print interaction tables from
//                                         the cached DAGs of prog.mc
//   posec prog.mc --supervise --store=DIR enumerate every function in
//                                         sandboxed worker processes with
//                                         retry/quarantine/degradation
//   posec prog.mc --supervise --sweep-jobs=N
//                                         run up to N workers concurrently
//                                         (identical output for any N)
//   posec prog.mc --list-quarantine --store=DIR
//                                         list quarantined jobs
//   posec prog.mc --clear-quarantine --store=DIR
//                                         clear quarantine records so the
//                                         next sweep retries those jobs
//   posec prog.mc --worker --enumerate=F --store=DIR
//                                         supervised child mode: one job,
//                                         result frame on stdout,
//                                         documented exit code
//   posec prog.mc --supervise --shard=K/N --store=DIR
//                                         run only shard K of N: jobs are
//                                         assigned by root-triple hash, so
//                                         N disjoint supervisors cover the
//                                         module exactly once
//   posec --merge-store DST SRC...        union shard stores into DST with
//                                         byte-level conflict detection
//   posec --fsck --store=DIR [--repair]   re-verify every artifact frame;
//                                         --repair moves damage aside and
//                                         deletes orphaned temp files
//   posec prog.mc --fault-io=SPEC ...     inject store I/O faults (short
//                                         write, ENOSPC, EIO, crash around
//                                         the committing rename)
//   posec --workload=NAME ...             use an embedded benchmark program
//                                         (bitcount, dijkstra, fft, jpeg,
//                                         sha, stringsearch) as the input
//   posec prog.mc --equiv                 semantic-equivalence collapse
//                                         report: run every DAG instance on
//                                         seeded test vectors and bucket by
//                                         observed behavior
//   posec prog.mc --equiv-check           differential phase-bug gate: exit
//                                         11 if any two instances of one
//                                         canonical function diverge
//
//===----------------------------------------------------------------------===//

#include "src/core/Compilers.h"
#include "src/core/DagExport.h"
#include "src/core/SpaceStats.h"
#include "src/drive/ExitCodes.h"
#include "src/drive/Supervisor.h"
#include "src/frontend/Compile.h"
#include "src/ir/Printer.h"
#include "src/machine/EntryExit.h"
#include "src/opt/PhaseGuard.h"
#include "src/opt/PhaseManager.h"
#include "src/sem/Equivalence.h"
#include "src/sim/Interpreter.h"
#include "src/store/ArtifactStore.h"
#include "src/store/StoreAdmin.h"
#include "src/store/StoreDriver.h"
#include "src/support/FaultFs.h"
#include "src/support/StopToken.h"
#include "src/workloads/Workloads.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

using namespace pose;

namespace {

struct Options {
  std::string InputPath;
  std::string Opt = "batch"; // none | batch | prob | sequence
  std::string Sequence;
  std::string Entry = "main";
  std::string EnumerateFunc;
  std::string DotFunc;
  uint64_t Budget = 1'000'000;
  uint64_t Jobs = 1;         // --jobs=N: worker threads (>= 1).
  uint64_t DeadlineMs = 0;   // --deadline-ms=N: 0 = unlimited.
  uint64_t MaxMemoryMb = 0;  // --max-memory-mb=N: 0 = unlimited.
  FaultPlan Faults;          // --inject-fault=SPEC.
  std::string ModelPath;     // --model=FILE: load a trained model.
  std::string SaveModelPath; // --save-model=FILE: save after training.
  std::string StorePath;     // --store=DIR: artifact store directory.
  bool Run = false;
  bool EmitRtl = false;
  bool VerifyIr = false;
  bool Resume = false;       // --resume: continue from a stored checkpoint.
  bool AnalyzeStore = false; // --analyze-store: report on cached DAGs.
  bool ListQuarantine = false;  // --list-quarantine: print records, exit.
  bool ClearQuarantine = false; // --clear-quarantine: remove records, exit.

  // Supervised out-of-process enumeration (src/drive/Supervisor.h).
  bool Supervise = false;     // --supervise: sweep in worker processes.
  bool Worker = false;        // --worker: supervised child mode.
  uint64_t WorkerTimeoutMs = 60'000; // --worker-timeout-ms=N kill timer.
  uint64_t SweepJobs = 1;     // --sweep-jobs=N concurrent workers.
  uint64_t MaxRetries = 2;    // --max-retries=N per job.
  uint64_t WorkerRlimitMb = 0; // --worker-rlimit-mb=N RLIMIT_AS cap.
  std::string QuarantinePath; // --quarantine=DIR (default: the store).
  std::string FaultFunc;      // --fault-func=NAME: restrict fault flags.
  uint64_t FaultAttempts = 0; // --fault-attempts=N: faults active while
                              // the attempt number is <= N.
  uint64_t Attempt = 1;       // --attempt=K: this worker's attempt number.
  std::string FaultSpecText;  // Raw --inject-fault text (forwarding).

  // Sharded sweeps and store administration.
  uint64_t ShardIndex = 0;    // --shard=K/N: this supervisor's shard (1-based).
  uint64_t ShardCount = 0;    // --shard=K/N: total shards (0 = unsharded).
  std::string MergeDst;       // --merge-store=DST destination directory.
  std::vector<std::string> MergeSrcs; // positional source stores.
  bool Fsck = false;          // --fsck: offline store verification.
  bool Repair = false;        // --repair: with --fsck, quarantine damage.

  // Injected store I/O faults (execution-only; never fingerprinted).
  std::string FaultIoSpecText;           // Raw --fault-io text (forwarding).
  std::vector<IoFaultSpec> FaultIo;      // Parsed --fault-io plan.

  // Semantic equivalence (src/sem/Equivalence.h).
  bool Equiv = false;      // --equiv: collapse report per function.
  bool EquivCheck = false; // --equiv-check: differential phase-bug gate.
  uint64_t VectorSeed = sem::kDefaultVectorSeed; // --vector-seed=N.
  uint64_t Vectors = sem::kDefaultVectorCount;   // --vectors=N.
  std::string Workload; // --workload=NAME: embedded benchmark as input.
};

void usage() {
  std::fprintf(
      stderr,
      "usage: posec <file.mc> [options]\n"
      "  --opt=none|batch|prob   optimization strategy (default batch)\n"
      "  --sequence=LETTERS      apply an explicit phase sequence instead\n"
      "  --run                   simulate --entry (default main)\n"
      "  --entry=NAME            entry function for --run\n"
      "  --emit-rtl              print the final RTL of every function\n"
      "  --enumerate=FUNC        exhaustively enumerate FUNC's space\n"
      "  --dot=FUNC              print FUNC's phase-order DAG as Graphviz\n"
      "  --budget=N              enumeration budget (active sequences per\n"
      "                          level; default 1000000)\n"
      "  --jobs=N                worker threads: enumeration expands each\n"
      "                          level in parallel (identical DAG for any\n"
      "                          N), batch compiles N functions at a time\n"
      "                          (default 1)\n"
      "  --deadline-ms=N         wall-clock limit for optimization and\n"
      "                          enumeration (0 = unlimited)\n"
      "  --max-memory-mb=N       approximate memory budget for\n"
      "                          enumeration (0 = unlimited)\n"
      "  --verify-ir             verify the IR after every phase; failures\n"
      "                          roll back and prune that edge\n"
      "  --inject-fault=SPEC     deterministic fault injection, e.g. c:3\n"
      "                          or c:3,s:1 (Nth application of a phase)\n"
      "  --model=FILE            load a trained interaction model for\n"
      "                          --opt=prob instead of self-training\n"
      "  --save-model=FILE       save the trained model after --opt=prob\n"
      "  --store=DIR             persistent artifact store: finished DAGs\n"
      "                          are cached and reused; runs stopped by a\n"
      "                          deadline/memory budget/cancellation leave\n"
      "                          a resumable checkpoint\n"
      "  --resume                with --store: continue an interrupted\n"
      "                          enumeration from its checkpoint (the\n"
      "                          final DAG is identical to an\n"
      "                          uninterrupted run)\n"
      "  --analyze-store         with --store: print per-function cache\n"
      "                          status and the interaction tables mined\n"
      "                          from the cached complete DAGs\n"
      "  --supervise             with --store: enumerate every function in\n"
      "                          a sandboxed worker process, with bounded\n"
      "                          retries, persistent quarantine of\n"
      "                          crashing jobs, and graceful degradation\n"
      "  --worker                supervised child mode (with --enumerate\n"
      "                          and --store): prints a result frame on\n"
      "                          stdout and uses the exit codes below\n"
      "  --sweep-jobs=N          with --supervise: keep up to N worker\n"
      "                          processes in flight (default 1; report,\n"
      "                          artifacts, and quarantine records are\n"
      "                          identical for any N)\n"
      "  --list-quarantine       with --store: list this module's\n"
      "                          quarantined jobs and exit\n"
      "  --clear-quarantine      with --store: remove this module's\n"
      "                          quarantine records so the next sweep\n"
      "                          retries those jobs\n"
      "  --worker-timeout-ms=N   with --supervise: SIGKILL a worker still\n"
      "                          running after N ms (default 60000)\n"
      "  --worker-rlimit-mb=N    with --supervise: RLIMIT_AS cap per\n"
      "                          worker process (0 = none)\n"
      "  --max-retries=N         with --supervise: retries per job after\n"
      "                          the first attempt (default 2)\n"
      "  --quarantine=DIR        with --supervise/--list-quarantine/\n"
      "                          --clear-quarantine: directory for\n"
      "                          quarantine records (default: the store)\n"
      "  --fault-func=NAME       with --supervise: forward --inject-fault\n"
      "                          only to NAME's worker\n"
      "  --fault-attempts=N      crash faults fire only while the attempt\n"
      "                          number is <= N (deterministic\n"
      "                          crash-then-recover testing)\n"
      "  --attempt=K             with --worker: this attempt's 1-based\n"
      "                          number (set by the supervisor)\n"
      "  --shard=K/N             with --supervise: run only the jobs whose\n"
      "                          canonical root hashes to shard K of N\n"
      "                          (1-based); N supervisors with disjoint K\n"
      "                          cover the module exactly once, and their\n"
      "                          merged stores are byte-identical to one\n"
      "                          unsharded sweep\n"
      "  --merge-store=DST SRC...\n"
      "                          union the SRC stores into DST; identical\n"
      "                          artifacts dedupe, byte-different ones for\n"
      "                          the same key are a conflict (exit 10)\n"
      "  --fsck                  with --store: re-verify every artifact\n"
      "                          frame (magic, version, checksums, key,\n"
      "                          payload decode); exit 9 when damage or\n"
      "                          orphaned temp files were found\n"
      "  --repair                with --fsck: move damaged artifacts to\n"
      "                          <store>/lost+found/ and delete orphaned\n"
      "                          temp files, so the next sweep recomputes\n"
      "                          exactly what was lost\n"
      "  --fault-io=SPEC         inject store I/O faults, e.g. enospc:2 or\n"
      "                          crash-before-rename:1 (kinds: shortwrite,\n"
      "                          enospc, eio, crash-before-rename,\n"
      "                          crash-after-rename; Nth op of the class).\n"
      "                          Execution-only: never part of the store\n"
      "                          fingerprint. Crash kinds _exit(86)\n"
      "  --workload=NAME         use an embedded benchmark program as the\n"
      "                          input instead of a file (bitcount,\n"
      "                          dijkstra, fft, jpeg, sha, stringsearch)\n"
      "  --equiv                 run every DAG instance on seeded test\n"
      "                          vectors, bucket by observed behavior, and\n"
      "                          print per-function collapse statistics\n"
      "                          (semantic classes, cost spreads, optimal\n"
      "                          leaves); enumerates every function unless\n"
      "                          --enumerate=FUNC restricts it\n"
      "  --equiv-check           differential phase-bug gate: exit 11 when\n"
      "                          any two instances of one canonical\n"
      "                          function diverge in behavior, naming the\n"
      "                          sequence pair and first diverging vector\n"
      "  --vector-seed=N         test-vector seed for --equiv/--equiv-check\n"
      "                          (default 2026; part of the artifact key)\n"
      "  --vectors=N             test vectors per signature (default 24)\n"
      "  --list-phases           print the 15 phases and exit\n"
      "\n"
      "exit codes (--worker / --supervise / store admin):\n"
      "  0 ok   1 error   2 usage   3 verifier failure   4 deadline\n"
      "  5 memory budget   6 cancelled   7 worker crashed (quarantined)\n"
      "  8 quarantined job(s) skipped   9 corrupt store (--fsck/--merge)\n"
      "  10 merge conflict   11 equivalence divergence (--equiv-check)\n"
      "  86 injected I/O crash (--fault-io)\n");
}

/// Strict decimal parser for flag values: rejects empty strings, signs,
/// whitespace, trailing garbage, and overflow (strtoull would silently
/// accept all of those).
bool parseUint(const char *S, uint64_t &Out) {
  if (*S < '0' || *S > '9')
    return false;
  uint64_t V = 0;
  for (const char *C = S; *C; ++C) {
    if (*C < '0' || *C > '9')
      return false;
    const uint64_t Digit = static_cast<uint64_t>(*C - '0');
    if (V > (UINT64_MAX - Digit) / 10)
      return false;
    V = V * 10 + Digit;
  }
  Out = V;
  return true;
}

bool parseArgs(int Argc, char **Argv, Options &O) {
  // Flags that are only meaningful in one mode; tracked so a stray use is
  // rejected instead of silently ignored.
  bool SawSupervisorFlag = false, SawAttempt = false,
       SawQuarantineDir = false, SawVectorFlag = false;
  for (int I = 1; I < Argc; ++I) {
    const std::string A = Argv[I];
    auto Value = [&A](const char *Flag) -> const char * {
      size_t L = std::strlen(Flag);
      if (A.compare(0, L, Flag) == 0 && A.size() > L && A[L] == '=')
        return A.c_str() + L + 1;
      return nullptr;
    };
    if (A == "--run")
      O.Run = true;
    else if (A == "--emit-rtl")
      O.EmitRtl = true;
    else if (A == "--verify-ir")
      O.VerifyIr = true;
    else if (A == "--list-phases") {
      for (int P = 0; P != NumPhases; ++P)
        std::printf(" %c  %s\n", phaseCode(phaseByIndex(P)),
                    phaseName(phaseByIndex(P)));
      std::exit(0);
    } else if (const char *V = Value("--opt"))
      O.Opt = V;
    else if (const char *V2 = Value("--sequence")) {
      O.Sequence = V2;
      O.Opt = "sequence";
    } else if (const char *V3 = Value("--entry"))
      O.Entry = V3;
    else if (const char *V4 = Value("--enumerate"))
      O.EnumerateFunc = V4;
    else if (const char *V5 = Value("--dot"))
      O.DotFunc = V5;
    else if (const char *V6 = Value("--budget")) {
      if (!parseUint(V6, O.Budget) || O.Budget == 0) {
        std::fprintf(stderr,
                     "--budget expects a positive integer, got '%s'\n", V6);
        return false;
      }
    } else if (const char *VJ = Value("--jobs")) {
      // Capped at u32: the thread-count plumbing is 32-bit, and a larger
      // value would otherwise truncate silently (e.g. 2^32+1 -> 1 job).
      if (!parseUint(VJ, O.Jobs) || O.Jobs == 0 || O.Jobs > 0xffffffffULL) {
        std::fprintf(stderr,
                     "--jobs expects a positive integer <= 4294967295, "
                     "got '%s'\n",
                     VJ);
        return false;
      }
    } else if (const char *VD = Value("--deadline-ms")) {
      if (!parseUint(VD, O.DeadlineMs)) {
        std::fprintf(
            stderr, "--deadline-ms expects a non-negative integer, got '%s'\n",
            VD);
        return false;
      }
    } else if (const char *VM = Value("--max-memory-mb")) {
      if (!parseUint(VM, O.MaxMemoryMb)) {
        std::fprintf(
            stderr,
            "--max-memory-mb expects a non-negative integer, got '%s'\n", VM);
        return false;
      }
    } else if (const char *VF = Value("--inject-fault")) {
      if (!FaultPlan::parse(VF, O.Faults)) {
        std::fprintf(stderr,
                     "--inject-fault expects <phase>:<nth>[:<segv|kill|"
                     "hang>][,...] with a known phase letter and a "
                     "positive count, got '%s'\n",
                     VF);
        return false;
      }
      O.FaultSpecText = VF;
    } else if (const char *V7 = Value("--model"))
      O.ModelPath = V7;
    else if (const char *V8 = Value("--save-model"))
      O.SaveModelPath = V8;
    else if (const char *V9 = Value("--store")) {
      if (!*V9) {
        std::fprintf(stderr, "--store expects a directory path\n");
        return false;
      }
      O.StorePath = V9;
    } else if (A == "--resume")
      O.Resume = true;
    else if (A == "--analyze-store")
      O.AnalyzeStore = true;
    else if (A == "--list-quarantine")
      O.ListQuarantine = true;
    else if (A == "--clear-quarantine")
      O.ClearQuarantine = true;
    else if (A == "--supervise")
      O.Supervise = true;
    else if (A == "--worker")
      O.Worker = true;
    else if (const char *VWT = Value("--worker-timeout-ms")) {
      // Zero would disable the kill timer entirely, so one hung worker
      // stalls the whole sweep forever; refuse it at parse time.
      if (!parseUint(VWT, O.WorkerTimeoutMs) || O.WorkerTimeoutMs == 0) {
        std::fprintf(
            stderr,
            "--worker-timeout-ms expects a positive integer (0 would "
            "disable the hung-worker kill timer), got '%s'\n",
            VWT);
        return false;
      }
      SawSupervisorFlag = true;
    } else if (const char *VWR = Value("--worker-rlimit-mb")) {
      if (!parseUint(VWR, O.WorkerRlimitMb)) {
        std::fprintf(
            stderr,
            "--worker-rlimit-mb expects a non-negative integer, got '%s'\n",
            VWR);
        return false;
      }
      SawSupervisorFlag = true;
    } else if (const char *VSJ = Value("--sweep-jobs")) {
      if (!parseUint(VSJ, O.SweepJobs) || O.SweepJobs == 0) {
        std::fprintf(stderr,
                     "--sweep-jobs expects a positive integer, got '%s'\n",
                     VSJ);
        return false;
      }
      SawSupervisorFlag = true;
    } else if (const char *VR = Value("--max-retries")) {
      if (!parseUint(VR, O.MaxRetries)) {
        std::fprintf(stderr,
                     "--max-retries expects a non-negative integer, got "
                     "'%s'\n",
                     VR);
        return false;
      }
      SawSupervisorFlag = true;
    } else if (const char *VQ = Value("--quarantine")) {
      if (!*VQ) {
        std::fprintf(stderr, "--quarantine expects a directory path\n");
        return false;
      }
      O.QuarantinePath = VQ;
      SawQuarantineDir = true;
    } else if (const char *VFF = Value("--fault-func")) {
      if (!*VFF) {
        std::fprintf(stderr, "--fault-func expects a function name\n");
        return false;
      }
      O.FaultFunc = VFF;
      SawSupervisorFlag = true;
    } else if (const char *VFA = Value("--fault-attempts")) {
      if (!parseUint(VFA, O.FaultAttempts) || O.FaultAttempts == 0) {
        std::fprintf(stderr,
                     "--fault-attempts expects a positive integer, got "
                     "'%s'\n",
                     VFA);
        return false;
      }
    } else if (const char *VA = Value("--attempt")) {
      if (!parseUint(VA, O.Attempt) || O.Attempt == 0) {
        std::fprintf(stderr, "--attempt expects a positive integer, got "
                             "'%s'\n",
                     VA);
        return false;
      }
      SawAttempt = true;
    } else if (const char *VS = Value("--shard")) {
      const std::string Spec = VS;
      const size_t Slash = Spec.find('/');
      if (Slash == std::string::npos ||
          !parseUint(Spec.substr(0, Slash).c_str(), O.ShardIndex) ||
          !parseUint(Spec.substr(Slash + 1).c_str(), O.ShardCount) ||
          O.ShardIndex == 0 || O.ShardCount == 0 ||
          O.ShardIndex > O.ShardCount) {
        std::fprintf(stderr,
                     "--shard expects K/N with 1 <= K <= N, got '%s'\n", VS);
        return false;
      }
      SawSupervisorFlag = true;
    } else if (const char *VMS = Value("--merge-store")) {
      if (!*VMS) {
        std::fprintf(stderr,
                     "--merge-store expects a destination directory\n");
        return false;
      }
      O.MergeDst = VMS;
    } else if (A == "--fsck")
      O.Fsck = true;
    else if (A == "--repair")
      O.Repair = true;
    else if (const char *VIO = Value("--fault-io")) {
      if (!IoFaultSpec::parse(VIO, O.FaultIo)) {
        std::fprintf(stderr,
                     "--fault-io expects <kind>:<nth>[,...] with kind one "
                     "of shortwrite/enospc/eio/crash-before-rename/"
                     "crash-after-rename and a positive index, got '%s'\n",
                     VIO);
        return false;
      }
      O.FaultIoSpecText = VIO;
    } else if (A == "--equiv")
      O.Equiv = true;
    else if (A == "--equiv-check")
      O.EquivCheck = true;
    else if (const char *VVS = Value("--vector-seed")) {
      if (!parseUint(VVS, O.VectorSeed)) {
        std::fprintf(stderr,
                     "--vector-seed expects a non-negative integer, got "
                     "'%s'\n",
                     VVS);
        return false;
      }
      SawVectorFlag = true;
    } else if (const char *VVC = Value("--vectors")) {
      // Capped at u32: the vector count is stored 32-bit in the equiv
      // fingerprint; a larger value would truncate silently (2^32+1 -> 1
      // vector) instead of failing loudly here.
      if (!parseUint(VVC, O.Vectors) || O.Vectors == 0 ||
          O.Vectors > 0xffffffffULL) {
        std::fprintf(stderr,
                     "--vectors expects a positive integer <= 4294967295, "
                     "got '%s'\n",
                     VVC);
        return false;
      }
      SawVectorFlag = true;
    } else if (const char *VWL = Value("--workload")) {
      if (!findWorkload(VWL)) {
        std::fprintf(stderr, "unknown workload '%s'; available:", VWL);
        for (const Workload &W : allWorkloads())
          std::fprintf(stderr, " %s", W.Name);
        std::fprintf(stderr, "\n");
        return false;
      }
      O.Workload = VWL;
    } else if (A.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option %s\n", A.c_str());
      return false;
    } else if (!O.MergeDst.empty())
      // Positional arguments of a merge are the source stores.
      O.MergeSrcs.push_back(A);
    else if (O.InputPath.empty())
      O.InputPath = A;
    else {
      std::fprintf(stderr, "multiple input files\n");
      return false;
    }
  }
  if (!O.MergeDst.empty() && !O.InputPath.empty()) {
    // Flag order must not matter: a source listed before --merge-store
    // was provisionally taken as the input file.
    O.MergeSrcs.insert(O.MergeSrcs.begin(), O.InputPath);
    O.InputPath.clear();
  }
  if (!O.MergeDst.empty()) {
    if (!O.Workload.empty()) {
      std::fprintf(stderr, "--merge-store takes no input program\n");
      return false;
    }
    if (O.MergeSrcs.empty()) {
      std::fprintf(stderr,
                   "--merge-store needs at least one source store\n");
      return false;
    }
    if (!O.StorePath.empty()) {
      std::fprintf(stderr, "--merge-store takes its destination from the "
                           "flag value and its sources as positional "
                           "arguments; --store is not used\n");
      return false;
    }
    if (O.Fsck || O.Supervise || O.Worker || O.AnalyzeStore ||
        O.ListQuarantine || O.ClearQuarantine) {
      std::fprintf(stderr, "--merge-store is a standalone mode\n");
      return false;
    }
    return true;
  }
  if (O.Fsck) {
    if (O.StorePath.empty()) {
      std::fprintf(stderr, "--fsck requires --store=DIR\n");
      return false;
    }
    if (O.Supervise || O.Worker || O.AnalyzeStore || O.ListQuarantine ||
        O.ClearQuarantine) {
      std::fprintf(stderr, "--fsck is a standalone mode\n");
      return false;
    }
    if (!O.InputPath.empty() || !O.Workload.empty()) {
      std::fprintf(stderr, "--fsck verifies the store itself and takes no "
                           "input file\n");
      return false;
    }
    return true;
  }
  if (O.Repair) {
    std::fprintf(stderr, "--repair requires --fsck\n");
    return false;
  }
  if (O.ShardCount != 0 && !O.Supervise) {
    std::fprintf(stderr, "--shard requires --supervise\n");
    return false;
  }
  if (!O.FaultIo.empty() && O.StorePath.empty() && !O.Supervise) {
    std::fprintf(stderr, "--fault-io injects store I/O faults and "
                         "requires --store=DIR (or --supervise)\n");
    return false;
  }
  if ((O.Resume || O.AnalyzeStore) && O.StorePath.empty()) {
    std::fprintf(stderr, "%s requires --store=DIR\n",
                 O.Resume ? "--resume" : "--analyze-store");
    return false;
  }
  if ((O.ListQuarantine || O.ClearQuarantine) && O.StorePath.empty()) {
    std::fprintf(stderr, "%s requires --store=DIR\n",
                 O.ListQuarantine ? "--list-quarantine"
                                  : "--clear-quarantine");
    return false;
  }
  if ((O.ListQuarantine || O.ClearQuarantine) && (O.Supervise || O.Worker)) {
    std::fprintf(stderr, "--list-quarantine/--clear-quarantine are "
                         "standalone modes\n");
    return false;
  }
  if (O.Worker && O.Supervise) {
    std::fprintf(stderr, "--worker and --supervise are exclusive\n");
    return false;
  }
  if (O.Worker && (O.EnumerateFunc.empty() || O.StorePath.empty())) {
    std::fprintf(stderr,
                 "--worker requires --enumerate=FUNC and --store=DIR\n");
    return false;
  }
  if (O.Supervise && O.StorePath.empty()) {
    std::fprintf(stderr, "--supervise requires --store=DIR\n");
    return false;
  }
  if (SawSupervisorFlag && !O.Supervise) {
    std::fprintf(stderr,
                 "--worker-timeout-ms/--worker-rlimit-mb/--sweep-jobs/"
                 "--max-retries/--fault-func require --supervise\n");
    return false;
  }
  if (SawQuarantineDir && !O.Supervise && !O.ListQuarantine &&
      !O.ClearQuarantine) {
    std::fprintf(stderr, "--quarantine requires --supervise, "
                         "--list-quarantine, or --clear-quarantine\n");
    return false;
  }
  if (SawAttempt && !O.Worker) {
    std::fprintf(stderr, "--attempt requires --worker\n");
    return false;
  }
  // Crash-class faults take the process down; an unsupervised process
  // would just lose the run, which is the very failure mode the
  // supervisor exists to absorb.
  if (O.Faults.hasCrashFault() && !O.Worker && !O.Supervise) {
    std::fprintf(stderr, "crash-class faults (segv/kill/hang) require "
                         "--worker or --supervise\n");
    return false;
  }
  // Verifier faults shape the DAG and are part of the store fingerprint;
  // the supervisor only knows how to forward execution-only crash plans.
  if (O.Supervise && !O.Faults.empty() && !O.Faults.allCrashFaults()) {
    std::fprintf(stderr, "--supervise only supports all-crash-class "
                         "--inject-fault plans (segv/kill/hang)\n");
    return false;
  }
  if (O.FaultAttempts != 0 && O.FaultIo.empty() &&
      (O.Faults.empty() || !O.Faults.allCrashFaults())) {
    std::fprintf(stderr, "--fault-attempts requires an all-crash-class "
                         "--inject-fault plan or a --fault-io plan\n");
    return false;
  }
  if (!O.Workload.empty() && !O.InputPath.empty()) {
    std::fprintf(stderr,
                 "give either an input file or --workload=NAME, not both\n");
    return false;
  }
  if (O.Equiv && O.EquivCheck) {
    std::fprintf(stderr, "--equiv and --equiv-check are exclusive\n");
    return false;
  }
  if (SawVectorFlag && !O.Equiv && !O.EquivCheck) {
    std::fprintf(stderr,
                 "--vector-seed/--vectors require --equiv or --equiv-check\n");
    return false;
  }
  // The gate re-runs instances in-process; under supervision it would
  // race the workers it is meant to audit. Run it over the store after
  // the sweep instead (--equiv workers persist the records it needs).
  if (O.EquivCheck && (O.Worker || O.Supervise)) {
    std::fprintf(stderr, "--equiv-check is a standalone gate; use --equiv "
                         "during the sweep and run --equiv-check "
                         "afterwards\n");
    return false;
  }
  if ((O.Equiv || O.EquivCheck) &&
      (!O.DotFunc.empty() || O.Run || O.AnalyzeStore)) {
    std::fprintf(stderr, "--equiv/--equiv-check cannot be combined with "
                         "--dot/--run/--analyze-store\n");
    return false;
  }
  return !O.InputPath.empty() || !O.Workload.empty();
}

/// Prints every guarded failure of \p R to stderr (a pruned edge is worth
/// reporting, not worth a non-zero exit: the surviving space is sound).
void reportDiagnostics(const EnumerationResult &R) {
  for (const PhaseDiagnostic &D : R.Diagnostics)
    std::fprintf(stderr,
                 "warning: phase %c (%s) rolled back on application %llu "
                 "of %s: %s%s\n",
                 phaseCode(D.Phase), phaseName(D.Phase),
                 static_cast<unsigned long long>(D.Application),
                 D.Func.c_str(), D.Message.c_str(),
                 D.Injected ? " [injected]" : "");
}

/// Enumeration knobs shared by --enumerate/--dot, --opt=prob training and
/// --analyze-store (the store fingerprint is computed from this, so all
/// store-facing paths must build it identically).
EnumeratorConfig makeEnumConfig(const Options &O) {
  EnumeratorConfig Cfg;
  Cfg.MaxLevelSequences = O.Budget;
  Cfg.Jobs = static_cast<unsigned>(O.Jobs);
  Cfg.DeadlineMs = O.DeadlineMs;
  Cfg.MaxMemoryBytes = O.MaxMemoryMb * 1024 * 1024;
  Cfg.VerifyIr = O.VerifyIr;
  if (!O.Faults.empty())
    Cfg.Faults = &O.Faults;
  return Cfg;
}

/// Enumerates \p F directly, or through the artifact store when --store
/// was given. \p Failed is set (and the partial result returned) only on
/// a store I/O error.
EnumerationResult runEnumeration(const Options &O, const PhaseManager &PM,
                                 const EnumeratorConfig &Cfg,
                                 const Function &F, bool &Failed) {
  if (O.StorePath.empty()) {
    Enumerator E(PM, Cfg);
    return E.enumerate(F);
  }
  store::DriveResult D =
      store::driveEnumeration(PM, Cfg, F, O.StorePath, O.Resume);
  for (const std::string &Note : D.RejectionNotes)
    std::fprintf(stderr, "warning: %s: rejected stored artifact: %s\n",
                 F.Name.c_str(), Note.c_str());
  if (!D.Ok) {
    std::fprintf(stderr, "error: %s: %s\n", F.Name.c_str(), D.Error.c_str());
    Failed = true;
    return std::move(D.Result);
  }
  if (D.Source == store::DriveSource::Cached)
    std::fprintf(stderr, "%s: reusing cached DAG from %s\n", F.Name.c_str(),
                 O.StorePath.c_str());
  else if (D.Source == store::DriveSource::Resumed)
    std::fprintf(stderr, "%s: resumed from checkpoint in %s\n",
                 F.Name.c_str(), O.StorePath.c_str());
  if (D.CheckpointSaved)
    std::fprintf(stderr,
                 "%s: stopped (%s); checkpoint saved, rerun with --resume "
                 "to continue\n",
                 F.Name.c_str(), stopReasonName(D.Result.Stop));
  return std::move(D.Result);
}

/// Loads the equivalence record of \p F from the store, or computes it
/// (and persists it when a store is in use). The artifact is keyed by the
/// canonical root triple and equivFingerprint(config, seed, count); a hit
/// whose node count disagrees with \p R is stale and recomputed.
sem::EquivRecord loadOrComputeEquiv(const Options &O, const PhaseManager &PM,
                                    const Module &M, Function &F,
                                    const EnumeratorConfig &Cfg,
                                    const EnumerationResult &R,
                                    const sem::EquivInputs &In) {
  if (O.StorePath.empty())
    return sem::computeEquivalence(M, F, PM, R, In);
  store::ArtifactStore Store(O.StorePath);
  const HashTriple Root = canonicalize(F, false, Cfg.RemapRegisters).Hash;
  const uint64_t Fp = store::equivFingerprint(store::configFingerprint(Cfg),
                                              O.VectorSeed, O.Vectors);
  sem::EquivRecord E;
  std::string Error;
  const store::LoadStatus S = Store.loadEquivalence(Root, Fp, E, Error);
  if (S == store::LoadStatus::Hit && E.NodeBehavior.size() == R.Nodes.size())
    return E;
  if (S == store::LoadStatus::Rejected)
    std::fprintf(stderr,
                 "warning: %s: rejected stored equivalence record: %s\n",
                 F.Name.c_str(), Error.c_str());
  E = sem::computeEquivalence(M, F, PM, R, In);
  if (!Store.saveEquivalence(Root, Fp, E, Error))
    std::fprintf(stderr,
                 "warning: %s: cannot save equivalence record: %s\n",
                 F.Name.c_str(), Error.c_str());
  return E;
}

/// Renders one --equiv-check divergence to stdout.
void printDivergence(const std::string &Func,
                     const sem::DivergenceReport &D) {
  std::printf("%s: DIVERGENCE between sequence \"%s\" (node %u) and "
              "sequence \"%s\" (node %u)\n",
              Func.c_str(), D.SequenceA.c_str(), D.NodeA,
              D.SequenceB.c_str(), D.NodeB);
  if (D.VectorIndex < 0) {
    // The digests disagreed but no single vector re-diverged: behavior
    // depends on something outside the recorded plan (should not happen;
    // surfaced rather than hidden).
    std::printf("  (no single diverging vector reproduced; record and "
                "replay disagree)\n");
    return;
  }
  std::string Args;
  for (size_t I = 0; I != D.Vector.size(); ++I) {
    if (I)
      Args += ' ';
    Args += std::to_string(D.Vector[I]);
  }
  std::printf("  vector %d: args [%s]\n", D.VectorIndex, Args.c_str());
  std::printf("    sequence \"%s\": %s\n", D.SequenceA.c_str(),
              D.BehaviorA.c_str());
  std::printf("    sequence \"%s\": %s\n", D.SequenceB.c_str(),
              D.BehaviorB.c_str());
}

/// --equiv / --equiv-check: enumerate every function (or the one named by
/// --enumerate), fingerprint every DAG instance's behavior on the seeded
/// vector set, and either report the syntactic-to-semantic collapse or
/// gate on divergence. The report is a pure function of the DAG and the
/// vector-set identity, so it is byte-identical across --jobs, resumes,
/// and cache hits.
int runEquiv(const Options &O, Module &M) {
  PhaseManager PM;
  const EnumeratorConfig Cfg = makeEnumConfig(O);
  sem::EquivInputs In;
  In.Seed = O.VectorSeed;
  In.VectorCount = static_cast<uint32_t>(O.Vectors);
  In.Faults = O.Faults.empty() ? nullptr : &O.Faults;
  bool Diverged = false;
  size_t Matched = 0;
  for (Function &F : M.Functions) {
    if (!O.EnumerateFunc.empty() && F.Name != O.EnumerateFunc)
      continue;
    ++Matched;
    bool Failed = false;
    const EnumerationResult R = runEnumeration(O, PM, Cfg, F, Failed);
    if (Failed)
      return 1;
    reportDiagnostics(R);
    const sem::EquivRecord E = loadOrComputeEquiv(O, PM, M, F, Cfg, R, In);

    if (O.EquivCheck) {
      const sem::DivergenceReport D =
          sem::findDivergence(M, F, PM, R, E, In);
      if (D.Diverged) {
        printDivergence(F.Name, D);
        Diverged = true;
      } else
        std::printf("%-20s %llu instance(s) agree on %llu vector(s)\n",
                    F.Name.c_str(),
                    static_cast<unsigned long long>(E.NodeBehavior.size()),
                    static_cast<unsigned long long>(E.UsedVectors.size()));
      continue;
    }

    const sem::CollapseReport C = sem::collapseClasses(R, E);
    std::printf("%s: %llu instances -> %llu semantic classes "
                "(%.1f%% collapse) on %llu vector(s)%s\n",
                F.Name.c_str(),
                static_cast<unsigned long long>(C.Instances),
                static_cast<unsigned long long>(C.Classes.size()),
                C.collapsePercent(),
                static_cast<unsigned long long>(C.UsedVectors),
                C.Certified ? "" : " [partial space: leaves are best-seen]");
    for (size_t I = 0; I != C.Classes.size(); ++I) {
      const sem::EquivClass &Cl = C.Classes[I];
      std::printf("  class %zu: %zu node(s), %s, dynamic %llu..%llu "
                  "(spread %.1f%%)",
                  I, Cl.Nodes.size(), Cl.AllOk ? "ok" : "traps",
                  static_cast<unsigned long long>(Cl.MinDynamic),
                  static_cast<unsigned long long>(Cl.MaxDynamic),
                  Cl.spreadPercent());
      if (Cl.BestLeaf != 0xFFFFFFFFu)
        std::printf(", %s leaf: node %u",
                    C.Certified ? "optimal" : "best-seen", Cl.BestLeaf);
      if (Cl.MaxDynamic > Cl.MinDynamic)
        std::printf("  <- opportunity");
      std::printf("\n");
    }
    std::printf("  opportunities: %llu class(es) with a cost spread\n",
                static_cast<unsigned long long>(C.opportunityClasses()));
  }
  if (Matched == 0) {
    std::fprintf(stderr, "no function named '%s'\n",
                 O.EnumerateFunc.c_str());
    return 1;
  }
  return Diverged ? drive::ExitCode::EquivDivergence : drive::ExitCode::Ok;
}

int enumerateFunction(const Options &O, Module &M) {
  const std::string &Name =
      O.EnumerateFunc.empty() ? O.DotFunc : O.EnumerateFunc;
  int Id = M.findGlobal(Name);
  Function *F = Id >= 0 ? M.functionFor(Id) : nullptr;
  if (!F) {
    std::fprintf(stderr, "no function named '%s'\n", Name.c_str());
    return 1;
  }
  PhaseManager PM;
  EnumeratorConfig Cfg = makeEnumConfig(O);
  bool Failed = false;
  EnumerationResult R = runEnumeration(O, PM, Cfg, *F, Failed);
  if (Failed)
    return 1;
  reportDiagnostics(R);

  if (!O.DotFunc.empty()) {
    std::printf("%s", dagToDot(R).c_str());
    return 0;
  }

  SpaceStats S = computeSpaceStats(*F, R);
  char StopText[64];
  std::snprintf(StopText, sizeof(StopText), "partial space (stopped: %s)",
                stopReasonName(R.Stop));
  std::printf("%s: %s\n", F->Name.c_str(),
              R.complete() ? "exhaustively enumerated" : StopText);
  std::printf("  unoptimized: %u insts, %u blocks, %u branches, %u loops\n",
              S.Insts, S.Blocks, S.Branches, S.Loops);
  std::printf("  distinct instances: %llu  attempted phases: %llu\n",
              static_cast<unsigned long long>(S.FnInstances),
              static_cast<unsigned long long>(S.AttemptedPhases));
  std::printf("  max active sequence length: %u  control flows: %llu\n",
              S.MaxActiveLen,
              static_cast<unsigned long long>(S.DistinctControlFlows));
  std::printf("  leaves: %llu  code size best/worst: %u/%u (%.1f%%)\n",
              static_cast<unsigned long long>(S.LeafInstances),
              S.LeafCodeSizeMin, S.LeafCodeSizeMax,
              S.codeSizeDiffPercent());
  return 0;
}

/// --worker: one supervised enumeration job. Always drives through the
/// store (the supervisor reads results and checkpoints from there), ends
/// with a one-line result frame on stdout, and exits with the documented
/// code for the stop reason — the two in-band channels the supervisor
/// classifies (src/drive/Supervisor.h).
int runWorker(const Options &O, Module &M) {
  int Id = M.findGlobal(O.EnumerateFunc);
  Function *F = Id >= 0 ? M.functionFor(Id) : nullptr;
  if (!F) {
    std::fprintf(stderr, "no function named '%s'\n",
                 O.EnumerateFunc.c_str());
    return drive::ExitCode::Error;
  }
  PhaseManager PM;
  EnumeratorConfig Cfg = makeEnumConfig(O);
  // Attempt-gated fault injection: with --fault-attempts=N the plan is
  // active only while this attempt's number is <= N, so a retry ladder
  // deterministically crashes N times and then succeeds. Dropping the
  // plan cannot change the store fingerprint because gated plans are
  // all crash-class, which the fingerprint excludes.
  if (Cfg.Faults && O.FaultAttempts != 0 && O.Attempt > O.FaultAttempts)
    Cfg.Faults = nullptr;
  store::DriveResult D =
      store::driveEnumeration(PM, Cfg, *F, O.StorePath, O.Resume);
  for (const std::string &Note : D.RejectionNotes)
    std::fprintf(stderr, "warning: %s: rejected stored artifact: %s\n",
                 F->Name.c_str(), Note.c_str());
  if (!D.Ok) {
    std::fprintf(stderr, "error: %s: %s\n", F->Name.c_str(),
                 D.Error.c_str());
    return drive::ExitCode::Error;
  }
  reportDiagnostics(D.Result);
  // --equiv workers persist the equivalence record alongside the result
  // (driveEnumeration removed any stale record when it saved a fresh
  // DAG, so compute-after-save is the correct order). The supervisor
  // only counts this job Cached next sweep when the record is present.
  if (O.Equiv) {
    sem::EquivInputs In;
    In.Seed = O.VectorSeed;
    In.VectorCount = static_cast<uint32_t>(O.Vectors);
    In.Faults = Cfg.Faults;
    (void)loadOrComputeEquiv(O, PM, M, *F, Cfg, D.Result, In);
  }
  drive::WorkerFrame Frame;
  Frame.Stop = D.Result.Stop;
  Frame.Nodes = D.Result.Nodes.size();
  Frame.Attempted = D.Result.AttemptedPhases;
  Frame.CheckpointSaved = D.CheckpointSaved;
  std::printf("%s\n", drive::renderWorkerFrame(Frame).c_str());
  return drive::exitCodeForStop(D.Result.Stop);
}

/// Path of this very executable (the supervisor re-invokes itself as the
/// worker); falls back to argv[0] when /proc is unavailable.
std::string selfExePath(const char *Argv0) {
  char Buf[4096];
  const ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (N > 0) {
    Buf[N] = '\0';
    return Buf;
  }
  return Argv0;
}

/// --supervise: sweep every function of the module through sandboxed
/// worker processes and print one report line per job.
int runSupervise(const Options &O, const Module &M, const char *Argv0) {
  PhaseManager PM;
  drive::SupervisorOptions SO;
  SO.PosecPath = selfExePath(Argv0);
  SO.InputPath = O.InputPath;
  SO.Workload = O.Workload;
  SO.StoreDir = O.StorePath;
  SO.QuarantineDir = O.QuarantinePath;
  SO.Budget = O.Budget;
  SO.Jobs = O.Jobs;
  SO.MaxMemoryMb = O.MaxMemoryMb;
  SO.VerifyIr = O.VerifyIr;
  SO.Equiv = O.Equiv;
  SO.VectorSeed = O.VectorSeed;
  SO.Vectors = O.Vectors;
  if (!O.Faults.empty()) {
    SO.Faults = &O.Faults;
    SO.FaultSpec = O.FaultSpecText;
  }
  SO.FaultIoSpec = O.FaultIoSpecText;
  SO.FaultFunc = O.FaultFunc;
  SO.FaultAttempts = O.FaultAttempts;
  SO.ShardIndex = O.ShardIndex;
  SO.ShardCount = O.ShardCount;
  SO.WorkerTimeoutMs = O.WorkerTimeoutMs;
  SO.WorkerRlimitMb = O.WorkerRlimitMb;
  SO.SweepDeadlineMs = O.DeadlineMs;
  SO.SweepJobs = O.SweepJobs;
  SO.Retry.MaxRetries = static_cast<unsigned>(O.MaxRetries);
  drive::SweepReport R = drive::superviseModule(PM, M, SO);
  if (!R.Error.empty()) {
    std::fprintf(stderr, "error: %s\n", R.Error.c_str());
    return drive::ExitCode::Error;
  }
  for (const std::string &P : R.ReclaimedTmp)
    std::fprintf(stderr,
                 "note: reclaimed stale temp file %s (left by a crashed "
                 "writer)\n",
                 P.c_str());
  for (const drive::JobOutcome &J : R.Jobs)
    std::printf("%-20s %s: %s\n", J.Func.c_str(),
                drive::jobStatusName(J.Status), J.Detail.c_str());
  return R.exitCode();
}

/// --fsck [--repair]: offline verification of a store directory. Prints
/// one line per problem (and per foreign file), a summary, and exits 0
/// for a clean (or cleanly repaired) store, 9 otherwise.
int runFsck(const Options &O) {
  const store::FsckReport R = store::fsckStore(O.StorePath, O.Repair);
  if (!R.Error.empty()) {
    std::fprintf(stderr, "error: %s\n", R.Error.c_str());
    return drive::ExitCode::Error;
  }
  for (const store::FsckEntry &E : R.Entries) {
    std::printf("%-10s %s: %s\n", store::fsckStateName(E.State),
                E.Name.c_str(), E.Detail.c_str());
    if (!E.RepairedTo.empty()) {
      const std::string What = E.RepairedTo == "(removed)"
                                   ? std::string("removed")
                                   : "moved to " + E.RepairedTo;
      std::printf("           %s\n", What.c_str());
    }
  }
  std::printf("scanned %zu: %zu intact, %zu corrupt, %zu truncated, "
              "%zu orphaned tmp, %zu foreign\n",
              R.Scanned, R.Intact, R.Corrupt, R.Truncated, R.Orphans,
              R.Foreign);
  if (R.clean())
    return drive::ExitCode::Ok;
  if (O.Repair && R.repairedClean()) {
    std::printf("store repaired: %zu problem(s) moved aside or removed; "
                "re-sweep to regenerate the lost artifacts\n",
                R.Repaired);
    return drive::ExitCode::Ok;
  }
  return drive::ExitCode::StoreCorrupt;
}

/// --merge-store DST SRC...: union shard stores into one. Exit 0 on
/// success, 10 on a same-key byte-difference (naming the key), 9 on a
/// corrupt source artifact, 2 when the destination is also a source.
int runMerge(const Options &O) {
  const store::MergeReport R = store::mergeStores(O.MergeDst, O.MergeSrcs);
  switch (R.Status) {
  case store::MergeStatus::Ok:
    std::printf("merged %zu store(s) into %s: %zu copied, %zu identical "
                "(deduped), %zu stale tmp skipped\n",
                O.MergeSrcs.size(), O.MergeDst.c_str(), R.Copied, R.Deduped,
                R.SkippedTmp);
    return drive::ExitCode::Ok;
  case store::MergeStatus::Conflict:
    std::fprintf(stderr, "error: %s\n", R.Error.c_str());
    return drive::ExitCode::MergeConflict;
  case store::MergeStatus::CorruptSource:
    std::fprintf(stderr, "error: %s\n", R.Error.c_str());
    return drive::ExitCode::StoreCorrupt;
  case store::MergeStatus::SelfMerge:
    std::fprintf(stderr, "error: %s\n", R.Error.c_str());
    return drive::ExitCode::Usage;
  case store::MergeStatus::IoError:
    break;
  }
  std::fprintf(stderr, "error: %s\n", R.Error.c_str());
  return drive::ExitCode::Error;
}

/// --list-quarantine / --clear-quarantine: the operator surface over
/// persisted quarantine records. Lists (and with --clear-quarantine
/// removes) the records of this module's functions under the current
/// configuration fingerprint, so a fixed job can be retried without
/// hand-deleting store files.
int quarantineOps(const Options &O, Module &M) {
  store::ArtifactStore Store(
      O.QuarantinePath.empty() ? O.StorePath : O.QuarantinePath);
  EnumeratorConfig Cfg = makeEnumConfig(O);
  const uint64_t Fp = store::configFingerprint(Cfg);
  size_t Found = 0;
  for (Function &F : M.Functions) {
    const HashTriple Root = canonicalize(F, false, Cfg.RemapRegisters).Hash;
    store::QuarantineRecord Q;
    std::string Error;
    const store::LoadStatus S = Store.loadQuarantine(Root, Fp, Q, Error);
    if (S == store::LoadStatus::Miss)
      continue;
    ++Found;
    if (S == store::LoadStatus::Rejected)
      std::printf("%-20s rejected quarantine record: %s\n", F.Name.c_str(),
                  Error.c_str());
    else
      std::printf("%-20s quarantined after %u attempt(s) [%s]: %s\n",
                  F.Name.c_str(), Q.Attempts,
                  store::workerFailureName(Q.Failure), Q.Message.c_str());
    if (O.ClearQuarantine) {
      Store.removeQuarantine(Root);
      std::printf("%-20s cleared\n", F.Name.c_str());
    }
  }
  if (Found == 0)
    std::printf("no quarantined jobs\n");
  return 0;
}

/// --analyze-store: report what the store holds for this module's
/// functions and mine the interaction tables from the complete cached
/// DAGs, without running any enumeration.
int analyzeStore(const Options &O, Module &M) {
  store::ArtifactStore Store(O.StorePath);
  EnumeratorConfig Cfg = makeEnumConfig(O);
  const uint64_t Fp = store::configFingerprint(Cfg);
  InteractionAnalysis IA;
  size_t Used = 0;
  for (Function &F : M.Functions) {
    HashTriple Root = canonicalize(F, false, Cfg.RemapRegisters).Hash;
    EnumerationResult R;
    std::string Error;
    store::LoadStatus S = Store.loadResult(Root, Fp, R, Error);
    if (S == store::LoadStatus::Miss) {
      std::printf("%-20s not cached\n", F.Name.c_str());
      continue;
    }
    if (S == store::LoadStatus::Rejected) {
      std::printf("%-20s rejected: %s\n", F.Name.c_str(), Error.c_str());
      continue;
    }
    std::printf("%-20s cached: %llu instances (%s)\n", F.Name.c_str(),
                static_cast<unsigned long long>(R.Nodes.size()),
                R.complete() ? "complete"
                             : stopReasonName(R.Stop));
    if (R.complete()) {
      IA.addFunction(R);
      ++Used;
    }
  }
  if (Used == 0) {
    std::printf("no complete cached DAGs to analyze; enumerate with "
                "--store=%s first\n",
                O.StorePath.c_str());
    return 1;
  }
  std::printf("\ninteraction tables from %llu cached function(s)\n",
              static_cast<unsigned long long>(Used));
  std::printf("\nEnabling interactions:\n%s",
              IA.renderTable(InteractionAnalysis::TableKind::Enabling)
                  .c_str());
  std::printf("\nDisabling interactions:\n%s",
              IA.renderTable(InteractionAnalysis::TableKind::Disabling)
                  .c_str());
  std::printf("\nPhase independence:\n%s",
              IA.renderTable(InteractionAnalysis::TableKind::Independence)
                  .c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O)) {
    usage();
    return 2;
  }

  // Install the store I/O fault injector before any store is touched.
  // The supervisor process itself never injects — it forwards the spec
  // to its workers (the processes whose writes the faults target). The
  // attempt gate mirrors --inject-fault: with --fault-attempts=N a
  // retried worker runs clean once its attempt number exceeds N.
  if (!O.FaultIo.empty() && !O.Supervise &&
      (O.FaultAttempts == 0 || O.Attempt <= O.FaultAttempts)) {
    static FaultFs Injector(O.FaultIo, FaultFs::CrashMode::Exit);
    setProcessStoreIo(&Injector);
  }

  // Store administration modes run without an input file.
  if (!O.MergeDst.empty())
    return runMerge(O);
  if (O.Fsck)
    return runFsck(O);

  std::string Source;
  if (!O.Workload.empty()) {
    // Embedded benchmark (validated by parseArgs).
    Source = findWorkload(O.Workload)->Source;
  } else {
    std::ifstream In(O.InputPath);
    if (!In) {
      std::fprintf(stderr, "cannot open %s\n", O.InputPath.c_str());
      return 1;
    }
    std::stringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
  }
  CompileResult CR = compileMC(Source);
  if (!CR.ok()) {
    std::fprintf(stderr, "%s", CR.diagText().c_str());
    return 1;
  }
  Module &M = CR.M;

  if (O.Worker)
    return runWorker(O, M);
  if (O.Supervise)
    return runSupervise(O, M, Argv[0]);
  if (O.ListQuarantine || O.ClearQuarantine)
    return quarantineOps(O, M);
  if (O.AnalyzeStore)
    return analyzeStore(O, M);
  if (O.Equiv || O.EquivCheck)
    return runEquiv(O, M);
  if (!O.EnumerateFunc.empty() || !O.DotFunc.empty())
    return enumerateFunction(O, M);

  PhaseManager PM;
  // One governor for the whole compilation: the deadline covers all
  // functions together, so a stuck function cannot starve the rest of
  // the run past the requested wall-clock limit.
  ResourceGovernor Gov;
  Gov.setDeadline(O.DeadlineMs);
  const ResourceGovernor *GovPtr = O.DeadlineMs != 0 ? &Gov : nullptr;
  auto ReportStats = [](const Function &F, const CompileStats &S) {
    std::fprintf(stderr, "%-20s %3llu attempted, %2llu active (%s)%s%s\n",
                 F.Name.c_str(),
                 static_cast<unsigned long long>(S.Attempted),
                 static_cast<unsigned long long>(S.Active),
                 S.ActiveSequence.c_str(),
                 S.Stop == StopReason::Complete ? "" : " stopped: ",
                 S.Stop == StopReason::Complete ? ""
                                                : stopReasonName(S.Stop));
  };
  if (O.Opt == "batch") {
    std::vector<CompileStats> Stats = batchCompileModule(
        PM, M, static_cast<unsigned>(O.Jobs), GovPtr);
    for (size_t I = 0; I != M.Functions.size(); ++I) {
      ReportStats(M.Functions[I], Stats[I]);
      fixEntryExit(M.Functions[I]);
    }
  } else if (O.Opt == "prob") {
    InteractionAnalysis IA;
    if (!O.ModelPath.empty()) {
      std::ifstream ModelIn(O.ModelPath);
      std::stringstream ModelBuf;
      ModelBuf << ModelIn.rdbuf();
      if (!ModelIn || !IA.deserialize(ModelBuf.str())) {
        std::fprintf(stderr, "cannot load model %s\n",
                     O.ModelPath.c_str());
        return 1;
      }
    } else {
      // Self-trained: enumerate this very module's functions first
      // (through the artifact store when --store was given, so repeated
      // prob compilations reuse the expensive DAGs).
      EnumeratorConfig Cfg = makeEnumConfig(O);
      for (Function &F : M.Functions) {
        bool Failed = false;
        EnumerationResult R = runEnumeration(O, PM, Cfg, F, Failed);
        if (Failed)
          return 1;
        reportDiagnostics(R);
        if (R.complete())
          IA.addFunction(R);
      }
    }
    if (!O.SaveModelPath.empty()) {
      std::ofstream ModelOut(O.SaveModelPath);
      ModelOut << IA.serialize();
      if (!ModelOut) {
        std::fprintf(stderr, "cannot write model %s\n",
                     O.SaveModelPath.c_str());
        return 1;
      }
    }
    ProbabilisticCompiler PC(PM, IA);
    for (Function &F : M.Functions) {
      CompileStats S = PC.compile(F, GovPtr);
      ReportStats(F, S);
      fixEntryExit(F);
    }
  } else if (O.Opt == "sequence") {
    for (Function &F : M.Functions) {
      std::string Active = PM.applySequence(F, O.Sequence);
      std::fprintf(stderr, "%-20s active: %s\n", F.Name.c_str(),
                   Active.c_str());
      fixEntryExit(F);
    }
  } else if (O.Opt != "none") {
    std::fprintf(stderr, "unknown --opt value '%s'\n", O.Opt.c_str());
    return 2;
  }

  if (O.EmitRtl || (!O.Run && O.EnumerateFunc.empty()))
    std::printf("%s", printModule(M).c_str());

  if (O.Run) {
    Interpreter Sim(M);
    RunResult R = Sim.run(O.Entry, {});
    if (!R.Ok) {
      std::fprintf(stderr, "simulation failed: %s\n", R.Error.c_str());
      return 1;
    }
    for (int32_t V : R.Output)
      std::printf("%d\n", V);
    std::fprintf(stderr, "return value: %d\ndynamic instructions: %llu\n",
                 R.ReturnValue,
                 static_cast<unsigned long long>(R.DynamicInsts));
  }
  return 0;
}
