//===- posed.cpp - POSE phase-order search daemon -------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// posed — phase-order search as a service. Binds a Unix-domain socket,
// accepts framed posec command lines from many concurrent clients
// (protocol: src/serve/Protocol.h, contract: docs/SERVICE.md), and
// schedules them fairly onto a bounded fleet of sandboxed posec children
// sharing one artifact store. Identical requests — concurrent or
// repeated — cost one computation.
//
//   posed --socket=PATH --store=DIR [--posec=BIN] [--max-jobs=N]
//         [--max-inflight=N] [--request-timeout-ms=N] [--rlimit-mb=N]
//         [--cache-entries=N] [--read-timeout-ms=N] [--max-queue=N]
//         [--reload-store=DIR] [--watchdog] [--max-restarts=N]
//         [--heartbeat-timeout-ms=N] [--fault-sock=SPEC] [--verbose]
//
// Exit codes (src/drive/ExitCodes.h): 0 after a graceful SIGTERM/SIGINT
// drain, 1 internal error, 2 usage, 12 socket setup failure, 13 when
// --watchdog exhausted its restart budget.
//
//===----------------------------------------------------------------------===//

#include "src/drive/ExitCodes.h"
#include "src/serve/Daemon.h"
#include "src/serve/Watchdog.h"
#include "src/support/FaultSock.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <limits.h>
#include <unistd.h>

using namespace pose;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: posed --socket=PATH --store=DIR [options]\n"
      "\n"
      "  --socket=PATH            Unix-domain socket to serve on\n"
      "  --store=DIR              shared artifact store for all requests\n"
      "  --posec=BIN              posec binary to spawn (default: the\n"
      "                           'posec' next to this executable)\n"
      "  --max-jobs=N             concurrent posec children (default 4)\n"
      "  --max-inflight=N         per-client queued+running cap "
      "(default 8)\n"
      "  --request-timeout-ms=N   admission deadline and child kill "
      "timer\n"
      "                           (default 300000; 0 = none)\n"
      "  --rlimit-mb=N            RLIMIT_AS per child in MiB (default "
      "0)\n"
      "  --cache-entries=N        completed-response cache size "
      "(default 256)\n"
      "  --read-timeout-ms=N      drop peers making no I/O progress for\n"
      "                           N ms (default 30000; 0 = off)\n"
      "  --max-queue=N            global queued-request cap; beyond it\n"
      "                           requests are shed with 'overloaded'\n"
      "                           plus a retry-after hint (default 256;\n"
      "                           0 = unlimited)\n"
      "  --reload-store=DIR       staging store a Reload frame / SIGHUP\n"
      "                           swaps in after it passes fsck\n"
      "                           (default: reloads refused)\n"
      "  --watchdog               supervise the daemon: hold the socket,\n"
      "                           restart it on crash or hang, exit 13\n"
      "                           when the restart budget runs out\n"
      "  --max-restarts=N         watchdog restart budget (default 5;\n"
      "                           0 = never restart)\n"
      "  --heartbeat-timeout-ms=N watchdog hang detector: a daemon\n"
      "                           silent this long is killed and\n"
      "                           restarted (default 5000; 0 = off)\n"
      "  --fault-sock=SPEC        inject socket faults for testing:\n"
      "                           <kind>:<nth>[,...] with kind one of\n"
      "                           short-write, eagain-storm, disconnect,\n"
      "                           stalled-peer\n"
      "  --verbose                per-request log lines on stderr\n");
  return drive::ExitCode::Usage;
}

/// Strict decimal parser: rejects empty strings, signs, whitespace,
/// trailing garbage, and overflow (same contract as posec's).
bool parseUint(const char *S, uint64_t &Out) {
  if (!S || !*S)
    return false;
  uint64_t V = 0;
  for (const char *P = S; *P; ++P) {
    if (*P < '0' || *P > '9')
      return false;
    const uint64_t D = static_cast<uint64_t>(*P - '0');
    if (V > (UINT64_MAX - D) / 10)
      return false;
    V = V * 10 + D;
  }
  Out = V;
  return true;
}

/// Default posec path: the binary sitting next to posed itself.
std::string siblingPosec() {
  char Buf[PATH_MAX];
  const ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (N <= 0)
    return "posec";
  Buf[N] = '\0';
  std::string Path(Buf);
  const size_t Slash = Path.find_last_of('/');
  if (Slash == std::string::npos)
    return "posec";
  return Path.substr(0, Slash + 1) + "posec";
}

} // namespace

int main(int Argc, char **Argv) {
  serve::ServeOptions O;
  serve::WatchdogOptions W;
  bool Watchdog = false;
  // The service defaults differ from the library's: a standalone daemon
  // should defend itself against slow-loris peers and unbounded queues
  // out of the box, while embedders opt in explicitly.
  O.ReadTimeoutMs = 30'000;
  O.MaxQueueDepth = 256;

  for (int I = 1; I < Argc; ++I) {
    const std::string A = Argv[I];
    auto Value = [&](const char *Flag) -> const char * {
      const size_t N = std::strlen(Flag);
      if (A.compare(0, N, Flag) == 0 && A.size() > N && A[N] == '=')
        return A.c_str() + N + 1;
      return nullptr;
    };
    auto BadUint = [&](const char *Flag, const char *V) {
      std::fprintf(stderr, "%s expects an unsigned integer, got '%s'\n",
                   Flag, V);
    };

    if (const char *V = Value("--socket"))
      O.SocketPath = V;
    else if (const char *V2 = Value("--store"))
      O.StoreDir = V2;
    else if (const char *V3 = Value("--posec"))
      O.PosecPath = V3;
    else if (const char *V4 = Value("--max-jobs")) {
      if (!parseUint(V4, O.MaxJobs) || O.MaxJobs == 0) {
        std::fprintf(stderr, "--max-jobs expects a positive integer, got "
                             "'%s'\n",
                     V4);
        return usage();
      }
    } else if (const char *V5 = Value("--max-inflight")) {
      if (!parseUint(V5, O.MaxInFlightPerClient) ||
          O.MaxInFlightPerClient == 0) {
        std::fprintf(stderr, "--max-inflight expects a positive integer, "
                             "got '%s'\n",
                     V5);
        return usage();
      }
    } else if (const char *V6 = Value("--request-timeout-ms")) {
      if (!parseUint(V6, O.RequestTimeoutMs)) {
        BadUint("--request-timeout-ms", V6);
        return usage();
      }
    } else if (const char *V7 = Value("--rlimit-mb")) {
      if (!parseUint(V7, O.WorkerRlimitMb)) {
        BadUint("--rlimit-mb", V7);
        return usage();
      }
    } else if (const char *V8 = Value("--cache-entries")) {
      if (!parseUint(V8, O.CacheEntries)) {
        BadUint("--cache-entries", V8);
        return usage();
      }
    } else if (const char *V9 = Value("--read-timeout-ms")) {
      if (!parseUint(V9, O.ReadTimeoutMs)) {
        BadUint("--read-timeout-ms", V9);
        return usage();
      }
    } else if (const char *V10 = Value("--max-queue")) {
      if (!parseUint(V10, O.MaxQueueDepth)) {
        BadUint("--max-queue", V10);
        return usage();
      }
    } else if (const char *V11 = Value("--reload-store"))
      O.ReloadStoreDir = V11;
    else if (A == "--watchdog")
      Watchdog = true;
    else if (const char *V12 = Value("--max-restarts")) {
      uint64_t N = 0;
      if (!parseUint(V12, N) || N > 1'000'000) {
        BadUint("--max-restarts", V12);
        return usage();
      }
      W.MaxRestarts = static_cast<unsigned>(N);
    } else if (const char *V13 = Value("--heartbeat-timeout-ms")) {
      if (!parseUint(V13, W.HeartbeatTimeoutMs)) {
        BadUint("--heartbeat-timeout-ms", V13);
        return usage();
      }
    } else if (const char *V14 = Value("--fault-sock")) {
      std::vector<SockFaultSpec> Parsed;
      if (!SockFaultSpec::parse(V14, Parsed)) {
        std::fprintf(stderr,
                     "--fault-sock expects <kind>:<nth>[,<kind>:<nth>...] "
                     "with kind one of short-write, eagain-storm, "
                     "disconnect, stalled-peer and nth >= 1, got '%s'\n",
                     V14);
        return usage();
      }
      O.SockFaults.insert(O.SockFaults.end(), Parsed.begin(), Parsed.end());
    } else if (A == "--verbose")
      O.Verbose = true;
    else {
      std::fprintf(stderr, "unknown argument '%s'\n", A.c_str());
      return usage();
    }
  }

  if (O.SocketPath.empty() || O.StoreDir.empty()) {
    std::fprintf(stderr, "--socket and --store are required\n");
    return usage();
  }
  if (O.PosecPath.empty())
    O.PosecPath = siblingPosec();

  if (Watchdog)
    return serve::runWatchdog(O, W);
  return serve::runDaemon(O);
}
