//===- posed.cpp - POSE phase-order search daemon -------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// posed — phase-order search as a service. Binds a Unix-domain socket,
// accepts framed posec command lines from many concurrent clients
// (protocol: src/serve/Protocol.h, contract: docs/SERVICE.md), and
// schedules them fairly onto a bounded fleet of sandboxed posec children
// sharing one artifact store. Identical requests — concurrent or
// repeated — cost one computation.
//
//   posed --socket=PATH --store=DIR [--posec=BIN] [--max-jobs=N]
//         [--max-inflight=N] [--request-timeout-ms=N] [--rlimit-mb=N]
//         [--cache-entries=N] [--verbose]
//
// Exit codes (src/drive/ExitCodes.h): 0 after a graceful SIGTERM/SIGINT
// drain, 1 internal error, 2 usage, 12 socket setup failure.
//
//===----------------------------------------------------------------------===//

#include "src/drive/ExitCodes.h"
#include "src/serve/Daemon.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <limits.h>
#include <unistd.h>

using namespace pose;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: posed --socket=PATH --store=DIR [options]\n"
      "\n"
      "  --socket=PATH            Unix-domain socket to serve on\n"
      "  --store=DIR              shared artifact store for all requests\n"
      "  --posec=BIN              posec binary to spawn (default: the\n"
      "                           'posec' next to this executable)\n"
      "  --max-jobs=N             concurrent posec children (default 4)\n"
      "  --max-inflight=N         per-client queued+running cap "
      "(default 8)\n"
      "  --request-timeout-ms=N   admission deadline and child kill "
      "timer\n"
      "                           (default 300000; 0 = none)\n"
      "  --rlimit-mb=N            RLIMIT_AS per child in MiB (default "
      "0)\n"
      "  --cache-entries=N        completed-response cache size "
      "(default 256)\n"
      "  --verbose                per-request log lines on stderr\n");
  return drive::ExitCode::Usage;
}

/// Strict decimal parser: rejects empty strings, signs, whitespace,
/// trailing garbage, and overflow (same contract as posec's).
bool parseUint(const char *S, uint64_t &Out) {
  if (!S || !*S)
    return false;
  uint64_t V = 0;
  for (const char *P = S; *P; ++P) {
    if (*P < '0' || *P > '9')
      return false;
    const uint64_t D = static_cast<uint64_t>(*P - '0');
    if (V > (UINT64_MAX - D) / 10)
      return false;
    V = V * 10 + D;
  }
  Out = V;
  return true;
}

/// Default posec path: the binary sitting next to posed itself.
std::string siblingPosec() {
  char Buf[PATH_MAX];
  const ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (N <= 0)
    return "posec";
  Buf[N] = '\0';
  std::string Path(Buf);
  const size_t Slash = Path.find_last_of('/');
  if (Slash == std::string::npos)
    return "posec";
  return Path.substr(0, Slash + 1) + "posec";
}

} // namespace

int main(int Argc, char **Argv) {
  serve::ServeOptions O;

  for (int I = 1; I < Argc; ++I) {
    const std::string A = Argv[I];
    auto Value = [&](const char *Flag) -> const char * {
      const size_t N = std::strlen(Flag);
      if (A.compare(0, N, Flag) == 0 && A.size() > N && A[N] == '=')
        return A.c_str() + N + 1;
      return nullptr;
    };
    auto BadUint = [&](const char *Flag, const char *V) {
      std::fprintf(stderr, "%s expects an unsigned integer, got '%s'\n",
                   Flag, V);
    };

    if (const char *V = Value("--socket"))
      O.SocketPath = V;
    else if (const char *V2 = Value("--store"))
      O.StoreDir = V2;
    else if (const char *V3 = Value("--posec"))
      O.PosecPath = V3;
    else if (const char *V4 = Value("--max-jobs")) {
      if (!parseUint(V4, O.MaxJobs) || O.MaxJobs == 0) {
        std::fprintf(stderr, "--max-jobs expects a positive integer, got "
                             "'%s'\n",
                     V4);
        return usage();
      }
    } else if (const char *V5 = Value("--max-inflight")) {
      if (!parseUint(V5, O.MaxInFlightPerClient) ||
          O.MaxInFlightPerClient == 0) {
        std::fprintf(stderr, "--max-inflight expects a positive integer, "
                             "got '%s'\n",
                     V5);
        return usage();
      }
    } else if (const char *V6 = Value("--request-timeout-ms")) {
      if (!parseUint(V6, O.RequestTimeoutMs)) {
        BadUint("--request-timeout-ms", V6);
        return usage();
      }
    } else if (const char *V7 = Value("--rlimit-mb")) {
      if (!parseUint(V7, O.WorkerRlimitMb)) {
        BadUint("--rlimit-mb", V7);
        return usage();
      }
    } else if (const char *V8 = Value("--cache-entries")) {
      if (!parseUint(V8, O.CacheEntries)) {
        BadUint("--cache-entries", V8);
        return usage();
      }
    } else if (A == "--verbose")
      O.Verbose = true;
    else {
      std::fprintf(stderr, "unknown argument '%s'\n", A.c_str());
      return usage();
    }
  }

  if (O.SocketPath.empty() || O.StoreDir.empty()) {
    std::fprintf(stderr, "--socket and --store are required\n");
    return usage();
  }
  if (O.PosecPath.empty())
    O.PosecPath = siblingPosec();

  return serve::runDaemon(O);
}
