//===- posed_client.cpp - posed client and load harness -------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// posed-client — talks to a running posed (tools/posed.cpp) over its
// Unix-domain socket. One binary, two jobs:
//
//   * Single request: forward a posec command line, print the served
//     stdout/stderr, exit with the served exit code.
//
//       posed-client --socket=SOCK -- --workload=bitcount
//                    --enumerate=bit_count --budget=50000
//
//   * Load harness: open C connections and issue N requests of the same
//     command line, asserting every response is byte-identical (same
//     exit code, stdout, stderr) — the daemon's dedup contract — and
//     reporting how each was served (computed/coalesced/cached).
//
//       posed-client --socket=SOCK --connections=8 --count=56
//                    --out=sample.txt -- --workload=bitcount ...
//
// Run-mode requests ride a bounded retry schedule (shared RetryPolicy:
// capped exponential backoff, deterministic jitter): connect-refused,
// transport loss mid-exchange (the daemon restarted under its
// watchdog), and 'overloaded' shed responses — which carry the
// daemon's retry-after hint — are retried transparently; every other
// failure is final. --no-retry restores strict single-shot behavior
// for tests that assert on first-response semantics.
//
// Plus liveness/ops probes: --ping, --stats (prints the daemon's
// scheduler counters as one key=value line), --reload (ask the daemon
// to swap in its staging store), --shutdown (graceful drain). Exit 0
// on success, 1 on any protocol failure or response mismatch; in
// single-request mode the served posec exit code is propagated.
//
//===----------------------------------------------------------------------===//

#include "src/serve/Protocol.h"
#include "src/support/RetryPolicy.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace pose;
using namespace pose::serve;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: posed-client --socket=PATH [options] [-- posec-args...]\n"
      "\n"
      "  --socket=PATH      daemon socket\n"
      "  --count=N          total requests to issue (default 1)\n"
      "  --connections=C    concurrent connections (default 1)\n"
      "  --out=FILE         write the (common) response stdout here\n"
      "  --ping             liveness probe instead of a run\n"
      "  --stats            print daemon counters instead of a run\n"
      "  --reload           ask the daemon to swap in its staging store\n"
      "  --shutdown         ask the daemon to drain and exit\n"
      "  --no-retry         fail immediately on connect-refused,\n"
      "                     transport loss, or an 'overloaded' shed\n"
      "                     instead of backing off and retrying\n"
      "  --ignore-stderr    compare only stdout + exit code across\n"
      "                     responses (stderr carries cache provenance,\n"
      "                     which legitimately changes across a daemon\n"
      "                     restart or a store reload)\n"
      "  --quiet            no summary line on stderr\n");
  return 1;
}

bool parseUint(const char *S, uint64_t &Out) {
  if (!S || !*S)
    return false;
  uint64_t V = 0;
  for (const char *P = S; *P; ++P) {
    if (*P < '0' || *P > '9')
      return false;
    const uint64_t D = static_cast<uint64_t>(*P - '0');
    if (V > (UINT64_MAX - D) / 10)
      return false;
    V = V * 10 + D;
  }
  Out = V;
  return true;
}

/// Connects to the daemon socket. On failure returns -1 with \p Err
/// set and \p ConnErrno holding the connect(2) errno (0 for
/// non-connect failures) so callers can tell a retryable
/// connection-refused from a hopeless path error.
int connectTo(const std::string &Path, std::string &Err, int &ConnErrno) {
  ConnErrno = 0;
  struct sockaddr_un Addr;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long";
    return -1;
  }
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size());
  const int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (::connect(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
                sizeof(Addr)) != 0) {
    ConnErrno = errno;
    Err = "connect '" + Path + "': " + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// The client-side retry schedule: 8 attempts spread over roughly ten
/// seconds, enough to ride out a watchdog restart (backoff starts at
/// 100ms and the daemon is typically back within one or two).
const RetryPolicy kClientRetry{/*MaxRetries=*/8, /*BaseDelayMs=*/50,
                               /*MaxDelayMs=*/2'000, /*JitterPct=*/20};

/// Deterministic jitter salt (FNV-1a) so two load-harness connections
/// retrying the same daemon do not stampede in lockstep.
uint64_t saltOf(const std::string &S, uint64_t Extra) {
  uint64_t H = 1469598103934665603ull;
  for (const char C : S) {
    H ^= static_cast<uint8_t>(C);
    H *= 1099511628211ull;
  }
  return H ^ Extra;
}

void sleepMs(uint64_t Ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
}

bool sendAll(int Fd, const std::vector<uint8_t> &Bytes, std::string &Err) {
  size_t Off = 0;
  while (Off < Bytes.size()) {
    const ssize_t N =
        ::send(Fd, Bytes.data() + Off, Bytes.size() - Off, MSG_NOSIGNAL);
    if (N > 0) {
      Off += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    Err = std::string("send: ") + std::strerror(errno);
    return false;
  }
  return true;
}

/// Blocks until one complete verified frame arrives.
bool recvFrame(int Fd, FrameReader &In, MsgKind &Kind,
               std::vector<uint8_t> &Payload, std::string &Err) {
  uint8_t Buf[65536];
  for (;;) {
    const FrameReader::Status S = In.next(Kind, Payload, Err);
    if (S == FrameReader::Status::Frame)
      return true;
    if (S == FrameReader::Status::Malformed)
      return false;
    const ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N > 0) {
      In.feed(Buf, static_cast<size_t>(N));
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    Err = N == 0 ? "connection closed by daemon"
                 : std::string("read: ") + std::strerror(errno);
    return false;
  }
}

struct WireResult {
  bool Ok = false;     ///< Got a RunResult (vs. Error / transport loss).
  RunResponse R;
  std::string Problem; ///< Set when !Ok.
};

/// One connection issuing \p N sequential requests of \p Args. Unless
/// \p NoRetry, each request rides the kClientRetry schedule across
/// connect-refused, transport loss (reconnect with a fresh
/// FrameReader), and 'overloaded' sheds (sleeping the daemon's
/// retry-after hint when it gave one).
void runConnection(const std::string &Socket,
                   const std::vector<std::string> &Args, uint64_t IdBase,
                   size_t N, bool NoRetry, std::vector<WireResult> &Out) {
  Out.resize(N);
  const uint64_t Salt = saltOf(Socket, IdBase);
  int Fd = -1;
  FrameReader In(kMaxResponsePayload);
  auto Drop = [&] {
    if (Fd >= 0)
      ::close(Fd);
    Fd = -1;
    In = FrameReader(kMaxResponsePayload);
  };

  for (size_t I = 0; I != N; ++I) {
    WireResult &W = Out[I];
    unsigned Attempts = 0;
    auto Backoff = [&] {
      if (NoRetry || !kClientRetry.shouldRetry(++Attempts))
        return false;
      sleepMs(kClientRetry.delayMs(Attempts, Salt));
      return true;
    };

    for (;;) {
      if (Fd < 0) {
        int ConnErrno = 0;
        Fd = connectTo(Socket, W.Problem, ConnErrno);
        if (Fd < 0) {
          // ECONNREFUSED / ENOENT: the daemon is down (or restarting
          // without a watchdog to hold the socket) — worth waiting out.
          // Anything else (bad path, EACCES) will not heal.
          if ((ConnErrno == ECONNREFUSED || ConnErrno == ENOENT) &&
              Backoff())
            continue;
          break;
        }
      }
      RunRequest Req;
      Req.Id = IdBase + I;
      Req.Args = Args;
      MsgKind Kind;
      std::vector<uint8_t> Payload;
      if (!sendAll(Fd, encodeRunRequest(Req), W.Problem) ||
          !recvFrame(Fd, In, Kind, Payload, W.Problem)) {
        // Transport loss mid-exchange: the daemon may have crashed and
        // be restarting under its watchdog. Reconnect and resend — the
        // dedup layer makes the retry idempotent.
        Drop();
        if (Backoff())
          continue;
        break;
      }
      if (Kind == MsgKind::Error) {
        ErrorResponse E;
        std::string Why;
        if (!decodeErrorResponse(Payload, E, Why)) {
          W.Problem = "undecodable error response: " + Why;
          break;
        }
        if (E.Code == ErrorCode::Overloaded && !NoRetry &&
            kClientRetry.shouldRetry(++Attempts)) {
          // Prefer the daemon's shed hint over the local schedule: it
          // knows its queue depth; we only know we were turned away.
          sleepMs(E.RetryAfterMs != 0
                      ? E.RetryAfterMs
                      : kClientRetry.delayMs(Attempts, Salt));
          continue;
        }
        W.Problem = std::string(errorCodeName(E.Code)) + ": " + E.Message;
        break;
      }
      if (Kind != MsgKind::RunResult) {
        W.Problem = "unexpected response kind";
        break;
      }
      std::string Why;
      if (!decodeRunResponse(Payload, W.R, Why)) {
        W.Problem = "undecodable run response: " + Why;
        break;
      }
      if (W.R.Id != Req.Id) {
        W.Problem = "response id mismatch";
        break;
      }
      W.Ok = true;
      break;
    }

    if (!W.Ok && Fd < 0) {
      // The connection is gone and retries (if any) are spent: the
      // daemon is not coming back in time. Abandon the remainder with
      // the same diagnosis instead of burning a full retry ladder per
      // request.
      for (size_t J = I + 1; J != N; ++J)
        Out[J].Problem = W.Problem;
      return;
    }
  }
  Drop();
}

/// Sends one payload-free request and expects \p Want back. An Error
/// frame in its place is decoded and reported by name (e.g. a
/// 'reload-rejected' refusal), other mismatches generically.
int simpleExchange(const std::string &Socket,
                   const std::vector<uint8_t> &Frame, MsgKind Want,
                   std::vector<uint8_t> &Payload) {
  std::string Err;
  int ConnErrno = 0;
  const int Fd = connectTo(Socket, Err, ConnErrno);
  if (Fd < 0) {
    std::fprintf(stderr, "posed-client: %s\n", Err.c_str());
    return 1;
  }
  MsgKind Kind;
  FrameReader In(kMaxResponsePayload);
  const bool Got =
      sendAll(Fd, Frame, Err) && recvFrame(Fd, In, Kind, Payload, Err);
  ::close(Fd);
  if (Got && Kind == Want)
    return 0;
  if (Got && Kind == MsgKind::Error) {
    ErrorResponse E;
    std::string Why;
    std::fprintf(stderr, "posed-client: %s\n",
                 decodeErrorResponse(Payload, E, Why)
                     ? (std::string(errorCodeName(E.Code)) + ": " + E.Message)
                           .c_str()
                     : ("undecodable error response: " + Why).c_str());
    return 1;
  }
  std::fprintf(stderr, "posed-client: %s\n",
               Err.empty() ? "unexpected response kind" : Err.c_str());
  return 1;
}

bool writeFileBytes(const std::string &Path, const std::string &Bytes) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  const bool Ok =
      std::fwrite(Bytes.data(), 1, Bytes.size(), F) == Bytes.size();
  return std::fclose(F) == 0 && Ok;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Socket, OutPath;
  uint64_t Count = 1, Connections = 1;
  bool Ping = false, Stats = false, Reload = false, Shutdown = false;
  bool Quiet = false, NoRetry = false, IgnoreStderr = false;
  std::vector<std::string> Args;

  for (int I = 1; I < Argc; ++I) {
    const std::string A = Argv[I];
    if (A == "--") {
      for (++I; I < Argc; ++I)
        Args.push_back(Argv[I]);
      break;
    }
    auto Value = [&](const char *Flag) -> const char * {
      const size_t N = std::strlen(Flag);
      if (A.compare(0, N, Flag) == 0 && A.size() > N && A[N] == '=')
        return A.c_str() + N + 1;
      return nullptr;
    };
    if (const char *V = Value("--socket"))
      Socket = V;
    else if (const char *V2 = Value("--count")) {
      if (!parseUint(V2, Count) || Count == 0) {
        std::fprintf(stderr, "--count expects a positive integer\n");
        return usage();
      }
    } else if (const char *V3 = Value("--connections")) {
      if (!parseUint(V3, Connections) || Connections == 0) {
        std::fprintf(stderr, "--connections expects a positive integer\n");
        return usage();
      }
    } else if (const char *V4 = Value("--out"))
      OutPath = V4;
    else if (A == "--ping")
      Ping = true;
    else if (A == "--stats")
      Stats = true;
    else if (A == "--reload")
      Reload = true;
    else if (A == "--shutdown")
      Shutdown = true;
    else if (A == "--no-retry")
      NoRetry = true;
    else if (A == "--ignore-stderr")
      IgnoreStderr = true;
    else if (A == "--quiet")
      Quiet = true;
    else {
      std::fprintf(stderr, "unknown argument '%s'\n", A.c_str());
      return usage();
    }
  }
  if (Socket.empty()) {
    std::fprintf(stderr, "--socket is required\n");
    return usage();
  }

  std::vector<uint8_t> Payload;
  if (Ping)
    return simpleExchange(Socket, encodePing(), MsgKind::Pong, Payload);
  if (Reload)
    return simpleExchange(Socket, encodeReload(), MsgKind::Pong, Payload);
  if (Shutdown)
    return simpleExchange(Socket, encodeShutdown(), MsgKind::Pong, Payload);
  if (Stats) {
    const int Rc = simpleExchange(Socket, encodeStatsRequest(),
                                  MsgKind::StatsReport, Payload);
    if (Rc != 0)
      return Rc;
    StatsReport S;
    std::string Why;
    if (!decodeStatsReport(Payload, S, Why)) {
      std::fprintf(stderr, "posed-client: %s\n", Why.c_str());
      return 1;
    }
    // The historical counters keep their order (CI greps on them); the
    // v2 robustness counters append after.
    std::printf("requests=%llu computed=%llu coalesced=%llu "
                "cache-hits=%llu errors=%llu clients=%llu running=%llu "
                "queued=%llu shed=%llu read-timeouts=%llu restarts=%llu "
                "reloads=%llu reload-rejected=%llu sock-faults=%llu\n",
                static_cast<unsigned long long>(S.Requests),
                static_cast<unsigned long long>(S.Computed),
                static_cast<unsigned long long>(S.Coalesced),
                static_cast<unsigned long long>(S.CacheHits),
                static_cast<unsigned long long>(S.Errors),
                static_cast<unsigned long long>(S.Clients),
                static_cast<unsigned long long>(S.Running),
                static_cast<unsigned long long>(S.Queued),
                static_cast<unsigned long long>(S.Shed),
                static_cast<unsigned long long>(S.ReadTimeouts),
                static_cast<unsigned long long>(S.Restarts),
                static_cast<unsigned long long>(S.Reloads),
                static_cast<unsigned long long>(S.ReloadsRejected),
                static_cast<unsigned long long>(S.SockFaults));
    return 0;
  }

  if (Args.empty()) {
    std::fprintf(stderr, "no posec arguments after '--'\n");
    return usage();
  }

  // Spread Count requests over Connections concurrent connections, each
  // issuing its share sequentially (send, await response, repeat).
  if (Connections > Count)
    Connections = Count;
  std::vector<std::vector<WireResult>> PerConn(Connections);
  std::vector<std::thread> Threads;
  Threads.reserve(Connections);
  for (uint64_t C = 0; C != Connections; ++C) {
    const size_t Share = static_cast<size_t>(Count / Connections) +
                         (C < Count % Connections ? 1 : 0);
    Threads.emplace_back(runConnection, std::cref(Socket), std::cref(Args),
                         C * 1000000 + 1, Share, NoRetry,
                         std::ref(PerConn[C]));
  }
  for (std::thread &T : Threads)
    T.join();

  // Every response must be a RunResult, and all of them byte-identical:
  // the daemon's dedup contract says the same request yields the same
  // bytes no matter how (computed/coalesced/cached) it was served.
  const WireResult *First = nullptr;
  uint64_t Served[3] = {0, 0, 0};
  uint64_t Failures = 0, Total = 0;
  for (const std::vector<WireResult> &Conn : PerConn)
    for (const WireResult &W : Conn) {
      ++Total;
      if (!W.Ok) {
        ++Failures;
        std::fprintf(stderr, "posed-client: request failed: %s\n",
                     W.Problem.c_str());
        continue;
      }
      ++Served[static_cast<uint32_t>(W.R.Served)];
      if (!First) {
        First = &W;
        continue;
      }
      if (W.R.ExitCode != First->R.ExitCode ||
          W.R.Stdout != First->R.Stdout ||
          (!IgnoreStderr && W.R.Stderr != First->R.Stderr)) {
        ++Failures;
        std::fprintf(stderr,
                     "posed-client: response divergence: a %s response "
                     "differs from the first (%s) one\n",
                     servedFromName(W.R.Served),
                     servedFromName(First->R.Served));
      }
    }

  if (!Quiet)
    std::fprintf(stderr,
                 "posed-client: %llu response(s) over %llu connection(s): "
                 "computed=%llu coalesced=%llu cached=%llu failures=%llu\n",
                 static_cast<unsigned long long>(Total),
                 static_cast<unsigned long long>(Connections),
                 static_cast<unsigned long long>(Served[0]),
                 static_cast<unsigned long long>(Served[1]),
                 static_cast<unsigned long long>(Served[2]),
                 static_cast<unsigned long long>(Failures));
  if (!First || Failures != 0)
    return 1;

  if (!OutPath.empty() && !writeFileBytes(OutPath, First->R.Stdout)) {
    std::fprintf(stderr, "posed-client: cannot write '%s'\n",
                 OutPath.c_str());
    return 1;
  }
  if (Count == 1) {
    // Single-request mode behaves like running posec directly.
    if (OutPath.empty())
      std::fwrite(First->R.Stdout.data(), 1, First->R.Stdout.size(), stdout);
    std::fwrite(First->R.Stderr.data(), 1, First->R.Stderr.size(), stderr);
    return First->R.ExitCode;
  }
  return First->R.ExitCode == 0 ? 0 : First->R.ExitCode;
}
