//===- Canonical.h - Function instance canonicalization --------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Identity of function instances, the heart of the paper's second pruning
/// technique (Section 4.2): "For each function instance we store three
/// numbers: a count of the number of instructions, byte-sum of all
/// instructions, and the CRC checksum on the bytes of the RTLs in that
/// function."
///
/// Before hashing, registers and block labels are remapped in
/// first-encounter order (Section 4.2.1, Figure 5) so that instances
/// differing only in register numbering or label names compare equal.
/// Hardware and pseudo registers remap in separate classes, which makes
/// the compulsory register assignment observable in the instance identity.
/// Serialization reflects *emitted code*: block boundaries are not
/// serialized and label operands resolve through empty blocks, mirroring
/// the paper's treatment of block merging as internal-only representation.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_CORE_CANONICAL_H
#define POSE_CORE_CANONICAL_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pose {

class Function;

/// The paper's three-number identity of a function instance.
struct HashTriple {
  uint32_t InstCount = 0;
  uint32_t ByteSum = 0;
  uint32_t Crc = 0;

  bool operator==(const HashTriple &O) const {
    return InstCount == O.InstCount && ByteSum == O.ByteSum && Crc == O.Crc;
  }
  bool operator!=(const HashTriple &O) const { return !(*this == O); }
};

/// Hash functor for unordered containers keyed by HashTriple.
struct HashTripleHasher {
  size_t operator()(const HashTriple &T) const {
    uint64_t H = T.Crc;
    H = H * 0x9E3779B97F4A7C15ull + T.ByteSum;
    H = H * 0x9E3779B97F4A7C15ull + T.InstCount;
    return static_cast<size_t>(H ^ (H >> 32));
  }
};

/// Canonicalized instance: the hash triple, and optionally the exact
/// canonical byte string (paranoid collision-free comparison mode used by
/// the tests to validate the paper's "we have never encountered an
/// instance" claim about triple collisions).
struct CanonicalForm {
  HashTriple Hash;
  std::vector<uint8_t> Bytes; ///< Empty unless requested.
};

/// Reusable working memory for the canonicalization fast path: flat dense
/// remap arrays indexed by register number / label value instead of the
/// reference implementation's std::map lookups, plus a preallocated byte
/// buffer the whole serialization lands in (so the CRC runs once over the
/// finished buffer with the slicing-by-8 table walk instead of per byte).
///
/// Contract: a scratch may be reused across any number of canonicalize()
/// calls — every call produces the same result as a fresh scratch — but a
/// single scratch must not be shared by concurrent calls. The enumerator
/// keeps one per worker thread. The label and pseudo-register arrays are
/// epoch-stamped so reuse never pays for clearing them, and the byte
/// buffer keeps its capacity, so steady-state canonicalization allocates
/// nothing.
class CanonicalScratch {
public:
  CanonicalScratch() = default;
  CanonicalScratch(const CanonicalScratch &) = delete;
  CanonicalScratch &operator=(const CanonicalScratch &) = delete;

private:
  friend CanonicalForm canonicalize(const Function &F,
                                    CanonicalScratch &Scratch,
                                    bool KeepBytes, bool RemapRegisters);
  std::vector<uint8_t> Buffer;        ///< Worst-case-sized byte storage;
                                      ///< the serializer writes through a
                                      ///< raw pointer and reports the
                                      ///< length, never shrinking it.
  uint32_t HardwareMap[32] = {};      ///< Reg -> 1-based remap ordinal.
  uint32_t HardwareEpoch[32] = {};
  std::vector<uint32_t> PseudoMap;    ///< (Reg - FirstPseudoReg) -> ordinal.
  std::vector<uint32_t> PseudoEpoch;
  std::vector<uint32_t> LabelOffset;  ///< Label value -> emitted offset.
  std::vector<uint32_t> LabelEpoch;
  std::vector<uint32_t> StartOffset;  ///< Per-block emitted start offset.
  uint32_t Epoch = 0;
};

/// Computes the canonical form of \p F. \p KeepBytes retains the
/// serialized bytes for exact comparison. \p RemapRegisters can be turned
/// off to measure how much pruning the Section 4.2.1 remapping buys
/// (labels always resolve to instruction offsets — raw label numbers are
/// meaningless); see bench_ablation.
///
/// This overload constructs a throwaway scratch; hot callers (the
/// enumerator's Intern path attempts this once per attempted phase) pass
/// a reused \ref CanonicalScratch instead.
CanonicalForm canonicalize(const Function &F, bool KeepBytes = false,
                           bool RemapRegisters = true);

/// Fast-path canonicalization through reusable scratch memory. Produces
/// output byte-identical to the scratch-free overload and to
/// canonicalizeReference() (enforced by tests/core/canonical_fastpath_test
/// and the differential enumeration suites).
CanonicalForm canonicalize(const Function &F, CanonicalScratch &Scratch,
                           bool KeepBytes = false,
                           bool RemapRegisters = true);

/// The original map-based, byte-at-a-time implementation, kept as the
/// differential oracle for the fast path (and as the honest baseline for
/// bench_canonical). Semantics are identical to canonicalize().
CanonicalForm canonicalizeReference(const Function &F, bool KeepBytes = false,
                                    bool RemapRegisters = true);

/// Hash of the control-flow shape only (blocks and edges, ignoring
/// instruction payloads): the paper's "CF" statistic counts distinct
/// control flows among all instances of a function (Table 3), because
/// dynamic instruction counts can be inferred across instances that share
/// a control flow (Section 7).
uint64_t controlFlowHash(const Function &F);

} // namespace pose

#endif // POSE_CORE_CANONICAL_H
