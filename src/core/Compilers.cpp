//===- Compilers.cpp - Batch and probabilistic compilation --------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/core/Compilers.h"

#include "src/ir/Function.h"
#include "src/opt/PhaseManager.h"
#include "src/support/ThreadPool.h"

#include <algorithm>
#include <chrono>

using namespace pose;

namespace {

/// The old compiler's fixed order. Evaluation order determination runs
/// once up front (it is illegal after the register assignment that CSE
/// forces); the rest loops until a full pass changes nothing.
constexpr char BatchPrefix[] = "os";
constexpr char BatchLoop[] = "bcshkligjnqrud";

class Stopwatch {
public:
  Stopwatch() : Begin(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Begin)
        .count();
  }

private:
  std::chrono::steady_clock::time_point Begin;
};

} // namespace

CompileStats pose::batchCompile(const PhaseManager &PM, Function &F,
                                const ResourceGovernor *Gov) {
  CompileStats S;
  Stopwatch Timer;
  auto Stopped = [&] {
    if (!Gov)
      return false;
    S.Stop = Gov->check();
    return S.Stop != StopReason::Complete;
  };
  auto Try = [&](char Code) {
    PhaseId P = phaseFromCode(Code);
    if (!PM.isLegal(P, F))
      return false;
    ++S.Attempted;
    if (!PM.attempt(P, F))
      return false;
    ++S.Active;
    S.ActiveSequence += Code;
    return true;
  };
  for (const char *C = BatchPrefix; *C && !Stopped(); ++C)
    Try(*C);
  bool Changed = true;
  while (Changed && !Stopped()) {
    Changed = false;
    for (const char *C = BatchLoop; *C && !Stopped(); ++C)
      Changed |= Try(*C);
  }
  S.Seconds = Timer.seconds();
  return S;
}

std::vector<CompileStats>
pose::batchCompileModule(const PhaseManager &PM, Module &M, unsigned Jobs,
                         const ResourceGovernor *Gov) {
  std::vector<CompileStats> Stats(M.Functions.size());
  ThreadPool Pool(Jobs > 0 ? Jobs - 1 : 0);
  Pool.parallelFor(M.Functions.size(), [&](size_t I) {
    Stats[I] = batchCompile(PM, M.Functions[I], Gov);
  });
  return Stats;
}

ProbabilisticCompiler::ProbabilisticCompiler(const PhaseManager &PM,
                                             const InteractionAnalysis &IA,
                                             bool UseBenefits)
    : PM(PM) {
  for (int Y = 0; Y != NumPhases; ++Y) {
    Start[Y] = IA.startProbability(phaseByIndex(Y));
    // Benefit scaling: phases that shrink code more rank higher at equal
    // probability. Clamped below at a small positive value so that
    // code-growing phases (loop unrolling) are still attemptable when
    // nothing else remains.
    Score[Y] = UseBenefits
                   ? std::max(0.1, IA.averageBenefit(phaseByIndex(Y)))
                   : 1.0;
    for (int X = 0; X != NumPhases; ++X) {
      Enabling[Y][X] = IA.enabling(phaseByIndex(Y), phaseByIndex(X));
      Disabling[Y][X] = IA.disabling(phaseByIndex(Y), phaseByIndex(X));
    }
  }
}

CompileStats ProbabilisticCompiler::compile(Function &F,
                                            const ResourceGovernor *Gov) const {
  CompileStats S;
  Stopwatch Timer;
  double P[NumPhases];
  for (int I = 0; I != NumPhases; ++I)
    P[I] = Start[I];

  while (true) {
    if (Gov && (S.Stop = Gov->check()) != StopReason::Complete)
      break;
    // Select the legal phase with the highest probability of being
    // active (Figure 8).
    int J = -1;
    for (int I = 0; I != NumPhases; ++I) {
      if (P[I] <= Threshold || !PM.isLegal(phaseByIndex(I), F))
        continue;
      if (J < 0 || P[I] * Score[I] > P[J] * Score[J])
        J = I;
    }
    if (J < 0)
      break;
    ++S.Attempted;
    bool Active = PM.attempt(phaseByIndex(J), F);
    if (Active) {
      ++S.Active;
      S.ActiveSequence += phaseCode(phaseByIndex(J));
      for (int I = 0; I != NumPhases; ++I) {
        if (I == J)
          continue;
        P[I] += (1.0 - P[I]) * Enabling[I][J] - P[I] * Disabling[I][J];
      }
    }
    P[J] = 0.0;
  }
  S.Seconds = Timer.seconds();
  return S;
}
