//===- InstanceTable.h - Sharded concurrent instance table -----*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 4.2 instance table — canonical hash triple to DAG node id —
/// made safe for the parallel enumerator by sharding: each triple lands in
/// the shard selected by its CRC, each shard carries its own mutex, so
/// lock contention falls off with the shard count while a given triple
/// always resolves through the same shard.
///
/// Concurrency contract (this is what makes the parallel DAG
/// byte-identical to the sequential one): while a BFS level is being
/// expanded, worker threads only *look up* — every insert happens on the
/// commit thread at the level barrier, in sequential frontier order.
/// Lookups therefore race only with other lookups, any id a worker reads
/// is final, and a miss can only mean "first seen at the current level",
/// which the deterministic commit resolves.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_CORE_INSTANCETABLE_H
#define POSE_CORE_INSTANCETABLE_H

#include "src/core/Canonical.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

namespace pose {

class InstanceTable {
public:
  /// \p ShardCount is rounded up to a power of two (minimum 1).
  explicit InstanceTable(unsigned ShardCount = 64);

  InstanceTable(const InstanceTable &) = delete;
  InstanceTable &operator=(const InstanceTable &) = delete;

  /// Returns the node id recorded for \p T, if any. Safe to call
  /// concurrently with other lookups and with tryEmplace on other triples'
  /// shards; see the file comment for the contract the enumerator relies
  /// on.
  std::optional<uint32_t> lookup(const HashTriple &T) const;

  /// Records \p Id for \p T unless \p T is already present. Returns the
  /// resident id and whether the insert happened (unordered_map::emplace
  /// semantics).
  std::pair<uint32_t, bool> tryEmplace(const HashTriple &T, uint32_t Id);

  /// Total entries across all shards (takes every shard lock; not meant
  /// for hot paths).
  size_t size() const;

  unsigned shardCount() const { return Mask + 1; }

private:
  struct Shard {
    mutable std::mutex M;
    std::unordered_map<HashTriple, uint32_t, HashTripleHasher> Map;
  };

  Shard &shardFor(const HashTriple &T) const {
    // Shard by CRC (the best-mixed member of the triple), folded so short
    // functions that only differ high up still spread.
    return Shards[(T.Crc ^ (T.Crc >> 16)) & Mask];
  }

  std::unique_ptr<Shard[]> Shards;
  uint32_t Mask;
};

} // namespace pose

#endif // POSE_CORE_INSTANCETABLE_H
