//===- CfInference.cpp - Dynamic counts from control-flow classes -------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/core/CfInference.h"

#include "src/ir/Function.h"
#include "src/sim/Interpreter.h"

using namespace pose;

namespace {

/// Per-block instruction sizes and execution counts collapse to the
/// non-empty blocks in layout order; two instances with equal CfHash have
/// the same non-empty block structure, so frequencies transfer by
/// ordinal.
std::vector<uint64_t> blockSizesByOrdinal(const Function &F) {
  std::vector<uint64_t> Sizes;
  for (const BasicBlock &B : F.Blocks)
    if (!B.empty())
      Sizes.push_back(B.Insts.size());
  return Sizes;
}

std::vector<uint64_t> countsByOrdinal(const Function &F,
                                      const std::vector<uint64_t> &Raw) {
  std::vector<uint64_t> Counts;
  for (size_t I = 0; I != F.Blocks.size(); ++I)
    if (!F.Blocks[I].empty())
      Counts.push_back(Raw[I]);
  return Counts;
}

} // namespace

CfCountEvaluator::CfCountEvaluator(const Module &M, std::string Entry,
                                   std::string FunctionName,
                                   const Function &Root,
                                   const PhaseManager &PM)
    : M(M), Entry(std::move(Entry)), FunctionName(std::move(FunctionName)),
      Root(Root), PM(PM) {}

CfCountEvaluator::Count
CfCountEvaluator::evaluate(const EnumerationResult &R, const DagPaths &Paths,
                           uint32_t Id) {
  Count Out;
  const uint64_t Cf = R.Nodes[Id].CfHash;
  auto It = Profiles.find(Cf);
  Function Instance = Paths.materialize(Root, PM, Id);

  if (It == Profiles.end()) {
    // First instance with this control flow: simulate with profiling.
    CfProfile P;
    Interpreter Sim(M);
    Sim.overrideFunction(FunctionName, &Instance);
    Sim.setProfileFunction(FunctionName);
    RunResult RR = Sim.run(Entry, {});
    ++Simulations;
    if (RR.Ok) {
      P.Valid = true;
      P.Frequencies = countsByOrdinal(Instance, RR.BlockCounts);
      uint64_t InFunction = 0;
      std::vector<uint64_t> Sizes = blockSizesByOrdinal(Instance);
      for (size_t B = 0; B != Sizes.size(); ++B)
        InFunction += Sizes[B] * P.Frequencies[B];
      P.RestOfProgram = RR.DynamicInsts - InFunction;
      Out.Valid = true;
      Out.Simulated = true;
      Out.Dynamic = RR.DynamicInsts;
    }
    Profiles.emplace(Cf, std::move(P));
    return Out;
  }

  const CfProfile &P = It->second;
  if (!P.Valid)
    return Out;
  std::vector<uint64_t> Sizes = blockSizesByOrdinal(Instance);
  assert(Sizes.size() == P.Frequencies.size() &&
         "control-flow class mismatch");
  uint64_t InFunction = 0;
  for (size_t B = 0; B != Sizes.size(); ++B)
    InFunction += Sizes[B] * P.Frequencies[B];
  Out.Valid = true;
  Out.Dynamic = P.RestOfProgram + InFunction;
  return Out;
}
