//===- Search.cpp - Heuristic phase-sequence searches -------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/core/Search.h"

#include "src/core/Canonical.h"
#include "src/opt/PhaseManager.h"
#include "src/sim/Interpreter.h"
#include "src/support/Rng.h"

#include <algorithm>
#include <unordered_map>

using namespace pose;

/// Applies attempted sequences and computes (cached) fitness values.
class SequenceSearch::Evaluator {
public:
  Evaluator(const SequenceSearch &Owner, const Function &Root,
            Objective Obj, const SearchConfig &Config)
      : Owner(Owner), Root(Root), Obj(Obj), Config(Config) {}

  /// Fitness of one attempted sequence (gene = phase index). Smaller is
  /// better; UINT64_MAX marks failed simulation.
  uint64_t fitness(const std::vector<int> &Genes, SearchResult &Stats) {
    Function F = Root;
    std::string Active;
    int Prev = -1;
    for (int G : Genes) {
      PhaseId P = phaseByIndex(G);
      if (G == Prev || !Owner.PM.isLegal(P, F))
        continue;
      ++Stats.PhaseAttempts;
      if (Owner.PM.attempt(P, F)) {
        Active += phaseCode(P);
        Prev = G;
      }
    }
    HashTriple H = canonicalize(F).Hash;
    if (Config.DedupWithHashes) {
      auto It = Cache.find(H);
      if (It != Cache.end()) {
        ++Stats.CacheHits;
        noteBest(It->second, Active, F, Stats);
        return It->second;
      }
    }
    ++Stats.Evaluations;
    uint64_t Fit = measure(F);
    if (Config.DedupWithHashes)
      Cache.emplace(H, Fit);
    noteBest(Fit, Active, F, Stats);
    return Fit;
  }

private:
  const SequenceSearch &Owner;
  const Function &Root;
  Objective Obj;
  const SearchConfig &Config;
  std::unordered_map<HashTriple, uint64_t, HashTripleHasher> Cache;

  uint64_t measure(const Function &F) {
    if (Obj == Objective::CodeSize)
      return F.instructionCount();
    Interpreter Sim(Owner.M);
    Sim.overrideFunction(Root.Name, &F);
    RunResult R = Sim.run(Owner.Entry, {});
    return R.Ok ? R.DynamicInsts : UINT64_MAX;
  }

  void noteBest(uint64_t Fit, const std::string &Active, const Function &F,
                SearchResult &Stats) {
    if (Fit < Stats.BestFitness) {
      Stats.BestFitness = Fit;
      Stats.BestSequence = Active;
      Stats.BestInstance = F;
    }
  }
};

namespace {

/// Arms the search governor from the config's deadline and token.
ResourceGovernor makeGovernor(const SearchConfig &Config) {
  ResourceGovernor Gov;
  Gov.setDeadline(Config.DeadlineMs);
  Gov.setStopToken(Config.Stop);
  return Gov;
}

} // namespace

SequenceSearch::SequenceSearch(const PhaseManager &PM, const Module &M,
                               std::string Entry)
    : PM(PM), M(M), Entry(std::move(Entry)) {}

SearchResult SequenceSearch::geneticSearch(const Function &Root,
                                           Objective Obj,
                                           const SearchConfig &Config) const {
  SearchResult Stats;
  Stats.BestInstance = Root;
  Evaluator Eval(*this, Root, Obj, Config);
  ResourceGovernor Gov = makeGovernor(Config);
  Rng R(Config.Seed);

  const int Len = Config.SequenceLength;
  const int Pop = std::max(4, Config.PopulationSize);
  std::vector<std::vector<int>> Population(Pop, std::vector<int>(Len));
  for (auto &Genes : Population)
    for (int &G : Genes)
      G = static_cast<int>(R.below(NumPhases));

  std::vector<uint64_t> Fit(Pop);
  for (int Gen = 0; Gen != Config.Generations; ++Gen) {
    for (int I = 0; I != Pop; ++I) {
      if ((Stats.Stop = Gov.check()) != StopReason::Complete)
        return Stats;
      Fit[I] = Eval.fitness(Population[I], Stats);
    }

    // Rank; elitism keeps the top half, crossover refills the rest.
    std::vector<int> Order(Pop);
    for (int I = 0; I != Pop; ++I)
      Order[I] = I;
    std::sort(Order.begin(), Order.end(),
              [&Fit](int A, int B) { return Fit[A] < Fit[B]; });
    std::vector<std::vector<int>> Next;
    Next.reserve(Pop);
    const int Elite = Pop / 2;
    for (int I = 0; I != Elite; ++I)
      Next.push_back(Population[Order[I]]);
    while (static_cast<int>(Next.size()) < Pop) {
      const auto &A = Population[Order[R.below(Elite)]];
      const auto &B = Population[Order[R.below(Elite)]];
      std::vector<int> Child(Len);
      size_t Cut = 1 + R.below(static_cast<uint64_t>(Len - 1));
      for (int I = 0; I != Len; ++I)
        Child[I] = static_cast<size_t>(I) < Cut ? A[I] : B[I];
      for (int &G : Child)
        if (R.below(10'000) <
            static_cast<uint64_t>(Config.MutationRate * 10'000))
          G = static_cast<int>(R.below(NumPhases));
      Next.push_back(std::move(Child));
    }
    Population = std::move(Next);
  }
  // Final evaluation of the last generation.
  for (auto &Genes : Population) {
    if ((Stats.Stop = Gov.check()) != StopReason::Complete)
      return Stats;
    Eval.fitness(Genes, Stats);
  }
  return Stats;
}

SearchResult SequenceSearch::hillClimb(const Function &Root, Objective Obj,
                                       const SearchConfig &Config) const {
  SearchResult Stats;
  Stats.BestInstance = Root;
  Evaluator Eval(*this, Root, Obj, Config);
  ResourceGovernor Gov = makeGovernor(Config);
  Rng R(Config.Seed);

  const int Len = Config.SequenceLength;
  std::vector<int> Current(Len);
  for (int &G : Current)
    G = static_cast<int>(R.below(NumPhases));
  uint64_t CurrentFit = Eval.fitness(Current, Stats);

  bool Improved = true;
  while (Improved && Stats.Evaluations < Config.MaxEvaluations) {
    Improved = false;
    // Steepest ascent over the 1-change neighborhood.
    std::vector<int> BestNeighbor;
    uint64_t BestFit = CurrentFit;
    for (int Pos = 0; Pos != Len; ++Pos) {
      for (int G = 0; G != NumPhases; ++G) {
        if (G == Current[Pos])
          continue;
        if ((Stats.Stop = Gov.check()) != StopReason::Complete)
          return Stats;
        std::vector<int> Neighbor = Current;
        Neighbor[Pos] = G;
        uint64_t F = Eval.fitness(Neighbor, Stats);
        if (F < BestFit) {
          BestFit = F;
          BestNeighbor = std::move(Neighbor);
        }
        if (Stats.Evaluations >= Config.MaxEvaluations)
          break;
      }
      if (Stats.Evaluations >= Config.MaxEvaluations)
        break;
    }
    if (!BestNeighbor.empty()) {
      Current = std::move(BestNeighbor);
      CurrentFit = BestFit;
      Improved = true;
    }
  }
  return Stats;
}

SearchResult SequenceSearch::randomSearch(const Function &Root,
                                          Objective Obj,
                                          const SearchConfig &Config) const {
  SearchResult Stats;
  Stats.BestInstance = Root;
  Evaluator Eval(*this, Root, Obj, Config);
  ResourceGovernor Gov = makeGovernor(Config);
  Rng R(Config.Seed);
  const int Len = Config.SequenceLength;
  while (Stats.Evaluations < Config.MaxEvaluations) {
    if ((Stats.Stop = Gov.check()) != StopReason::Complete)
      return Stats;
    std::vector<int> Genes(Len);
    for (int &G : Genes)
      G = static_cast<int>(R.below(NumPhases));
    uint64_t Before = Stats.Evaluations;
    Eval.fitness(Genes, Stats);
    // All-duplicate batches still make progress through the cache-hit
    // counter; bail out if nothing new was evaluated for a long time.
    if (Stats.Evaluations == Before &&
        Stats.CacheHits > 4 * Config.MaxEvaluations)
      break;
  }
  return Stats;
}
