//===- Canonical.cpp - Function instance canonicalization --------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/core/Canonical.h"

#include "src/ir/Function.h"
#include "src/support/Crc32.h"

#include <map>

using namespace pose;

namespace {

/// Serialization operand tags. Registers get distinct hardware/pseudo tags
/// so that the compulsory register assignment changes instance identity.
enum OperandTag : uint8_t {
  TagNone = 0,
  TagHardwareReg,
  TagPseudoReg,
  TagImm,
  TagSlot,
  TagGlobal,
  TagLabel,
};

/// Streams canonical bytes into the three accumulators.
class ByteSink {
public:
  explicit ByteSink(bool Keep) : Keep(Keep) {}

  void put(uint8_t B) {
    Sum += B;
    Crc.update(B);
    if (Keep)
      Bytes.push_back(B);
  }

  void putU32(uint32_t V) {
    put(static_cast<uint8_t>(V));
    put(static_cast<uint8_t>(V >> 8));
    put(static_cast<uint8_t>(V >> 16));
    put(static_cast<uint8_t>(V >> 24));
  }

  uint32_t byteSum() const { return Sum; }
  uint32_t crc() const { return Crc.value(); }
  std::vector<uint8_t> takeBytes() { return std::move(Bytes); }

private:
  bool Keep;
  uint32_t Sum = 0;
  Crc32Stream Crc;
  std::vector<uint8_t> Bytes;
};

/// Remaps registers (per class) and resolves labels to effective
/// non-empty-block ordinals while serializing.
class Serializer {
public:
  Serializer(const Function &F, ByteSink &Sink, bool RemapRegisters)
      : F(F), Sink(Sink), RemapRegisters(RemapRegisters) {
    // A label denotes a position in the emitted instruction stream: the
    // offset of the first instruction of the first non-empty block at or
    // after the labelled block. This makes empty blocks transparent and —
    // crucially — distinguishes instances where an instruction moved
    // across a block boundary (e.g. hoisted from a loop header into a
    // fall-through preheader) even though the instruction sequence itself
    // is unchanged.
    std::vector<uint32_t> StartOffset(F.Blocks.size() + 1, 0);
    uint32_t Offset = 0;
    for (size_t I = 0; I != F.Blocks.size(); ++I) {
      StartOffset[I] = Offset;
      Offset += static_cast<uint32_t>(F.Blocks[I].Insts.size());
    }
    StartOffset[F.Blocks.size()] = Offset;
    for (size_t I = 0; I != F.Blocks.size(); ++I) {
      size_t T = I;
      while (T < F.Blocks.size() && F.Blocks[T].empty())
        ++T;
      LabelOrdinal[F.Blocks[I].Label] = StartOffset[T];
    }
  }

  void run() {
    Sink.put(F.State.encode());
    for (const BasicBlock &B : F.Blocks)
      for (const Rtl &I : B.Insts)
        serializeInst(I);
  }

private:
  const Function &F;
  ByteSink &Sink;
  bool RemapRegisters;
  std::map<int32_t, uint32_t> LabelOrdinal;
  std::map<RegNum, uint32_t> HardwareMap, PseudoMap;

  uint32_t remapReg(RegNum R) {
    if (!RemapRegisters)
      return R;
    auto &Map = isHardwareReg(R) ? HardwareMap : PseudoMap;
    auto [It, Inserted] = Map.emplace(R, Map.size() + 1);
    (void)Inserted;
    return It->second;
  }

  void serializeOperand(const Operand &O) {
    switch (O.Kind) {
    case OperandKind::None:
      Sink.put(TagNone);
      return;
    case OperandKind::Reg: {
      RegNum R = O.getReg();
      Sink.put(isHardwareReg(R) ? TagHardwareReg : TagPseudoReg);
      Sink.putU32(remapReg(R));
      return;
    }
    case OperandKind::Imm:
      Sink.put(TagImm);
      Sink.putU32(static_cast<uint32_t>(O.Value));
      return;
    case OperandKind::Slot:
      Sink.put(TagSlot);
      Sink.putU32(static_cast<uint32_t>(O.Value));
      return;
    case OperandKind::Global:
      Sink.put(TagGlobal);
      Sink.putU32(static_cast<uint32_t>(O.Value));
      return;
    case OperandKind::Label: {
      Sink.put(TagLabel);
      auto It = LabelOrdinal.find(O.Value);
      assert(It != LabelOrdinal.end() && "dangling label");
      Sink.putU32(It->second);
      return;
    }
    }
  }

  void serializeInst(const Rtl &I) {
    Sink.put(static_cast<uint8_t>(I.Opcode));
    Sink.put(static_cast<uint8_t>(I.CC));
    serializeOperand(I.Dst);
    for (const Operand &S : I.Src)
      serializeOperand(S);
    Sink.put(static_cast<uint8_t>(I.Args.size()));
    for (const Operand &A : I.Args)
      serializeOperand(A);
  }
};

} // namespace

CanonicalForm pose::canonicalize(const Function &F, bool KeepBytes,
                                 bool RemapRegisters) {
  ByteSink Sink(KeepBytes);
  Serializer S(F, Sink, RemapRegisters);
  S.run();
  CanonicalForm Out;
  Out.Hash.InstCount = static_cast<uint32_t>(F.instructionCount());
  Out.Hash.ByteSum = Sink.byteSum();
  Out.Hash.Crc = Sink.crc();
  if (KeepBytes)
    Out.Bytes = Sink.takeBytes();
  return Out;
}

uint64_t pose::controlFlowHash(const Function &F) {
  // FNV-1a over (block ordinal, successor ordinals) of non-empty blocks.
  Cfg C = Cfg::build(F);
  std::vector<uint32_t> Ordinal(F.Blocks.size());
  uint32_t Next = 0;
  for (size_t I = 0; I != F.Blocks.size(); ++I)
    Ordinal[I] = F.Blocks[I].empty() ? UINT32_MAX : Next++;
  uint64_t H = 0xCBF29CE484222325ull;
  auto Mix = [&H](uint32_t V) {
    for (int K = 0; K != 4; ++K) {
      H ^= (V >> (8 * K)) & 0xFF;
      H *= 0x100000001B3ull;
    }
  };
  Mix(Next); // Non-empty block count.
  for (size_t I = 0; I != F.Blocks.size(); ++I) {
    if (F.Blocks[I].empty())
      continue;
    Mix(Ordinal[I]);
    for (int S : C.Succs[I]) {
      // Resolve empty successors forward to the next real block.
      size_t T = static_cast<size_t>(S);
      while (T < F.Blocks.size() && F.Blocks[T].empty())
        ++T;
      Mix(T < F.Blocks.size() ? Ordinal[T] : UINT32_MAX);
    }
  }
  return H;
}
