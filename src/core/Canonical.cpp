//===- Canonical.cpp - Function instance canonicalization --------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Two implementations of the same serialization live here. The fast path
// (canonicalize with a CanonicalScratch) serializes into a reusable flat
// buffer through dense, epoch-stamped remap arrays and folds the CRC over
// the finished buffer with the slicing-by-8 walk; it is what every hot
// caller uses. The reference path (canonicalizeReference) is the original
// std::map + byte-at-a-time implementation, kept verbatim as the
// differential oracle — the fast path must produce byte-identical output,
// which tests/core/canonical_fastpath_test.cpp enforces property-style.
//
//===----------------------------------------------------------------------===//

#include "src/core/Canonical.h"

#include "src/ir/Function.h"
#include "src/support/Crc32.h"

#include <algorithm>
#include <map>

using namespace pose;

namespace {

/// Serialization operand tags. Registers get distinct hardware/pseudo tags
/// so that the compulsory register assignment changes instance identity.
enum OperandTag : uint8_t {
  TagNone = 0,
  TagHardwareReg,
  TagPseudoReg,
  TagImm,
  TagSlot,
  TagGlobal,
  TagLabel,
};

//===----------------------------------------------------------------------===//
// Reference path (differential oracle)
//===----------------------------------------------------------------------===//

/// Streams canonical bytes into the three accumulators.
class ByteSink {
public:
  explicit ByteSink(bool Keep) : Keep(Keep) {}

  void put(uint8_t B) {
    Sum += B;
    Crc.update(B);
    if (Keep)
      Bytes.push_back(B);
  }

  void putU32(uint32_t V) {
    put(static_cast<uint8_t>(V));
    put(static_cast<uint8_t>(V >> 8));
    put(static_cast<uint8_t>(V >> 16));
    put(static_cast<uint8_t>(V >> 24));
  }

  uint32_t byteSum() const { return Sum; }
  uint32_t crc() const { return Crc.value(); }
  std::vector<uint8_t> takeBytes() { return std::move(Bytes); }

private:
  bool Keep;
  uint32_t Sum = 0;
  Crc32Stream Crc;
  std::vector<uint8_t> Bytes;
};

/// Remaps registers (per class) and resolves labels to effective
/// non-empty-block ordinals while serializing.
class Serializer {
public:
  Serializer(const Function &F, ByteSink &Sink, bool RemapRegisters)
      : F(F), Sink(Sink), RemapRegisters(RemapRegisters) {
    // A label denotes a position in the emitted instruction stream: the
    // offset of the first instruction of the first non-empty block at or
    // after the labelled block. This makes empty blocks transparent and —
    // crucially — distinguishes instances where an instruction moved
    // across a block boundary (e.g. hoisted from a loop header into a
    // fall-through preheader) even though the instruction sequence itself
    // is unchanged.
    std::vector<uint32_t> StartOffset(F.Blocks.size() + 1, 0);
    uint32_t Offset = 0;
    for (size_t I = 0; I != F.Blocks.size(); ++I) {
      StartOffset[I] = Offset;
      Offset += static_cast<uint32_t>(F.Blocks[I].Insts.size());
    }
    StartOffset[F.Blocks.size()] = Offset;
    for (size_t I = 0; I != F.Blocks.size(); ++I) {
      size_t T = I;
      while (T < F.Blocks.size() && F.Blocks[T].empty())
        ++T;
      LabelOrdinal[F.Blocks[I].Label] = StartOffset[T];
    }
  }

  void run() {
    Sink.put(F.State.encode());
    for (const BasicBlock &B : F.Blocks)
      for (const Rtl &I : B.Insts)
        serializeInst(I);
  }

private:
  const Function &F;
  ByteSink &Sink;
  bool RemapRegisters;
  std::map<int32_t, uint32_t> LabelOrdinal;
  std::map<RegNum, uint32_t> HardwareMap, PseudoMap;

  uint32_t remapReg(RegNum R) {
    if (!RemapRegisters)
      return R;
    auto &Map = isHardwareReg(R) ? HardwareMap : PseudoMap;
    auto [It, Inserted] = Map.emplace(R, Map.size() + 1);
    (void)Inserted;
    return It->second;
  }

  void serializeOperand(const Operand &O) {
    switch (O.Kind) {
    case OperandKind::None:
      Sink.put(TagNone);
      return;
    case OperandKind::Reg: {
      RegNum R = O.getReg();
      Sink.put(isHardwareReg(R) ? TagHardwareReg : TagPseudoReg);
      Sink.putU32(remapReg(R));
      return;
    }
    case OperandKind::Imm:
      Sink.put(TagImm);
      Sink.putU32(static_cast<uint32_t>(O.Value));
      return;
    case OperandKind::Slot:
      Sink.put(TagSlot);
      Sink.putU32(static_cast<uint32_t>(O.Value));
      return;
    case OperandKind::Global:
      Sink.put(TagGlobal);
      Sink.putU32(static_cast<uint32_t>(O.Value));
      return;
    case OperandKind::Label: {
      Sink.put(TagLabel);
      auto It = LabelOrdinal.find(O.Value);
      assert(It != LabelOrdinal.end() && "dangling label");
      Sink.putU32(It->second);
      return;
    }
    }
  }

  void serializeInst(const Rtl &I) {
    Sink.put(static_cast<uint8_t>(I.Opcode));
    Sink.put(static_cast<uint8_t>(I.CC));
    serializeOperand(I.Dst);
    for (const Operand &S : I.Src)
      serializeOperand(S);
    // The count is a full 32-bit field: a uint8_t here would alias arg
    // lists 256 apart and could collide distinct instances.
    Sink.putU32(static_cast<uint32_t>(I.Args.size()));
    for (const Operand &A : I.Args)
      serializeOperand(A);
  }
};

//===----------------------------------------------------------------------===//
// Fast path
//===----------------------------------------------------------------------===//

/// Serializes into the scratch's flat byte buffer through dense remap
/// arrays; the hash triple is computed over the finished buffer in bulk.
class FastSerializer {
public:
  FastSerializer(const Function &F, CanonicalScratch &S, bool RemapRegisters,
                 std::vector<uint8_t> &Buffer, const uint32_t Epoch,
                 uint32_t *HardwareMap, uint32_t *HardwareEpoch,
                 std::vector<uint32_t> &PseudoMap,
                 std::vector<uint32_t> &PseudoEpoch,
                 std::vector<uint32_t> &LabelOffset,
                 std::vector<uint32_t> &LabelEpoch,
                 std::vector<uint32_t> &StartOffset)
      : F(F), RemapRegisters(RemapRegisters), Buffer(Buffer), Epoch(Epoch),
        HardwareMap(HardwareMap), HardwareEpoch(HardwareEpoch),
        PseudoMap(PseudoMap), PseudoEpoch(PseudoEpoch),
        LabelOffset(LabelOffset), LabelEpoch(LabelEpoch) {
    (void)S;
    // Emitted start offset per block, with one sentinel entry past the
    // end (same resolution rule as the reference Serializer).
    StartOffset.resize(F.Blocks.size() + 1);
    uint32_t Offset = 0;
    for (size_t I = 0; I != F.Blocks.size(); ++I) {
      StartOffset[I] = Offset;
      Offset += static_cast<uint32_t>(F.Blocks[I].Insts.size());
    }
    StartOffset[F.Blocks.size()] = Offset;

    // Dense label table: labels are allocated from 0 by makeLabel(), so
    // the value range is nearly always tiny. A function whose labels were
    // renamed to arbitrary values (or negative ones) falls back to a
    // sorted pair list with binary-search lookups instead of letting the
    // dense array balloon.
    int32_t MaxLabel = -1;
    bool AnyNegative = false;
    for (const BasicBlock &B : F.Blocks) {
      MaxLabel = std::max(MaxLabel, B.Label);
      AnyNegative |= B.Label < 0;
    }
    const size_t DenseLimit = 16 * F.Blocks.size() + 1024;
    DenseLabels =
        !AnyNegative && static_cast<size_t>(MaxLabel) + 1 <= DenseLimit;
    if (DenseLabels) {
      if (LabelOffset.size() <= static_cast<size_t>(MaxLabel)) {
        LabelOffset.resize(MaxLabel + 1, 0);
        LabelEpoch.resize(MaxLabel + 1, 0);
      }
      for (size_t I = 0; I != F.Blocks.size(); ++I) {
        size_t T = I;
        while (T < F.Blocks.size() && F.Blocks[T].empty())
          ++T;
        LabelOffset[F.Blocks[I].Label] = StartOffset[T];
        LabelEpoch[F.Blocks[I].Label] = Epoch;
      }
    } else {
      SortedLabels.reserve(F.Blocks.size());
      for (size_t I = 0; I != F.Blocks.size(); ++I) {
        size_t T = I;
        while (T < F.Blocks.size() && F.Blocks[T].empty())
          ++T;
        SortedLabels.push_back({F.Blocks[I].Label, StartOffset[T]});
      }
      std::sort(SortedLabels.begin(), SortedLabels.end());
    }
  }

  /// Returns the number of bytes serialized. The buffer is grown once to
  /// the worst case up front, so every write inside the loop is an
  /// unchecked pointer store — no per-byte capacity branch.
  size_t run() {
    size_t Worst = 1; // State byte.
    for (const BasicBlock &B : F.Blocks)
      for (const Rtl &I : B.Insts)
        Worst += 2 + 4 * 5 + 4 + 5 * I.Args.size();
    if (Buffer.size() < Worst)
      Buffer.resize(Worst); // Never shrinks: reuse pays this rarely.
    Ptr = Buffer.data();
    put(F.State.encode());
    for (const BasicBlock &B : F.Blocks)
      for (const Rtl &I : B.Insts)
        serializeInst(I);
    return static_cast<size_t>(Ptr - Buffer.data());
  }

private:
  const Function &F;
  bool RemapRegisters;
  std::vector<uint8_t> &Buffer;
  uint8_t *Ptr = nullptr;
  const uint32_t Epoch;
  uint32_t *HardwareMap, *HardwareEpoch;
  std::vector<uint32_t> &PseudoMap, &PseudoEpoch;
  std::vector<uint32_t> &LabelOffset, &LabelEpoch;
  bool DenseLabels = true;
  std::vector<std::pair<int32_t, uint32_t>> SortedLabels;
  uint32_t NextHardware = 1, NextPseudo = 1;

  void put(uint8_t B) { *Ptr++ = B; }

  void putU32(uint32_t V) {
    Ptr[0] = static_cast<uint8_t>(V);
    Ptr[1] = static_cast<uint8_t>(V >> 8);
    Ptr[2] = static_cast<uint8_t>(V >> 16);
    Ptr[3] = static_cast<uint8_t>(V >> 24);
    Ptr += 4;
  }

  uint32_t remapReg(RegNum R) {
    if (!RemapRegisters)
      return R;
    if (isHardwareReg(R)) {
      if (HardwareEpoch[R] != Epoch) {
        HardwareEpoch[R] = Epoch;
        HardwareMap[R] = NextHardware++;
      }
      return HardwareMap[R];
    }
    const size_t Idx = R - FirstPseudoReg;
    if (Idx >= PseudoMap.size()) {
      PseudoMap.resize(Idx + 64, 0);
      PseudoEpoch.resize(Idx + 64, 0);
    }
    if (PseudoEpoch[Idx] != Epoch) {
      PseudoEpoch[Idx] = Epoch;
      PseudoMap[Idx] = NextPseudo++;
    }
    return PseudoMap[Idx];
  }

  uint32_t labelOffsetOf(int32_t Label) {
    if (DenseLabels) {
      assert(static_cast<size_t>(Label) < LabelEpoch.size() &&
             LabelEpoch[Label] == Epoch && "dangling label");
      return LabelOffset[Label];
    }
    auto It = std::lower_bound(
        SortedLabels.begin(), SortedLabels.end(), Label,
        [](const std::pair<int32_t, uint32_t> &P, int32_t L) {
          return P.first < L;
        });
    assert(It != SortedLabels.end() && It->first == Label &&
           "dangling label");
    return It->second;
  }

  void serializeOperand(const Operand &O) {
    switch (O.Kind) {
    case OperandKind::None:
      put(TagNone);
      return;
    case OperandKind::Reg: {
      RegNum R = O.getReg();
      put(isHardwareReg(R) ? TagHardwareReg : TagPseudoReg);
      putU32(remapReg(R));
      return;
    }
    case OperandKind::Imm:
      put(TagImm);
      putU32(static_cast<uint32_t>(O.Value));
      return;
    case OperandKind::Slot:
      put(TagSlot);
      putU32(static_cast<uint32_t>(O.Value));
      return;
    case OperandKind::Global:
      put(TagGlobal);
      putU32(static_cast<uint32_t>(O.Value));
      return;
    case OperandKind::Label:
      put(TagLabel);
      putU32(labelOffsetOf(O.Value));
      return;
    }
  }

  void serializeInst(const Rtl &I) {
    put(static_cast<uint8_t>(I.Opcode));
    put(static_cast<uint8_t>(I.CC));
    serializeOperand(I.Dst);
    for (const Operand &S : I.Src)
      serializeOperand(S);
    // Full 32-bit count, matching the reference serializer.
    putU32(static_cast<uint32_t>(I.Args.size()));
    for (const Operand &A : I.Args)
      serializeOperand(A);
  }
};

} // namespace

CanonicalForm pose::canonicalize(const Function &F, CanonicalScratch &S,
                                 bool KeepBytes, bool RemapRegisters) {
  // Epoch 0 marks "never written"; on wraparound every stamp array must
  // actually be cleared once so stale stamps from 2^32 calls ago cannot
  // alias the new epoch.
  if (++S.Epoch == 0) {
    std::fill(std::begin(S.HardwareEpoch), std::end(S.HardwareEpoch), 0u);
    std::fill(S.PseudoEpoch.begin(), S.PseudoEpoch.end(), 0u);
    std::fill(S.LabelEpoch.begin(), S.LabelEpoch.end(), 0u);
    S.Epoch = 1;
  }
  FastSerializer Fast(F, S, RemapRegisters, S.Buffer, S.Epoch, S.HardwareMap,
                      S.HardwareEpoch, S.PseudoMap, S.PseudoEpoch,
                      S.LabelOffset, S.LabelEpoch, S.StartOffset);
  const size_t Len = Fast.run();
  const uint8_t *Bytes = S.Buffer.data();

  CanonicalForm Out;
  Out.Hash.InstCount = static_cast<uint32_t>(F.instructionCount());
  // Four independent accumulators break the add dependency chain; the
  // scalar tail handles the last Len % 4 bytes.
  uint32_t S0 = 0, S1 = 0, S2 = 0, S3 = 0;
  size_t I = 0;
  for (; I + 4 <= Len; I += 4) {
    S0 += Bytes[I];
    S1 += Bytes[I + 1];
    S2 += Bytes[I + 2];
    S3 += Bytes[I + 3];
  }
  for (; I != Len; ++I)
    S0 += Bytes[I];
  Out.Hash.ByteSum = S0 + S1 + S2 + S3;
  Out.Hash.Crc = crc32(Bytes, Len);
  if (KeepBytes)
    Out.Bytes.assign(Bytes, Bytes + Len);
  return Out;
}

CanonicalForm pose::canonicalize(const Function &F, bool KeepBytes,
                                 bool RemapRegisters) {
  CanonicalScratch S;
  return canonicalize(F, S, KeepBytes, RemapRegisters);
}

CanonicalForm pose::canonicalizeReference(const Function &F, bool KeepBytes,
                                          bool RemapRegisters) {
  ByteSink Sink(KeepBytes);
  Serializer S(F, Sink, RemapRegisters);
  S.run();
  CanonicalForm Out;
  Out.Hash.InstCount = static_cast<uint32_t>(F.instructionCount());
  Out.Hash.ByteSum = Sink.byteSum();
  Out.Hash.Crc = Sink.crc();
  if (KeepBytes)
    Out.Bytes = Sink.takeBytes();
  return Out;
}

uint64_t pose::controlFlowHash(const Function &F) {
  // FNV-1a over (block ordinal, successor ordinals) of non-empty blocks.
  Cfg C = Cfg::build(F);
  std::vector<uint32_t> Ordinal(F.Blocks.size());
  uint32_t Next = 0;
  for (size_t I = 0; I != F.Blocks.size(); ++I)
    Ordinal[I] = F.Blocks[I].empty() ? UINT32_MAX : Next++;
  uint64_t H = 0xCBF29CE484222325ull;
  auto Mix = [&H](uint32_t V) {
    for (int K = 0; K != 4; ++K) {
      H ^= (V >> (8 * K)) & 0xFF;
      H *= 0x100000001B3ull;
    }
  };
  Mix(Next); // Non-empty block count.
  for (size_t I = 0; I != F.Blocks.size(); ++I) {
    if (F.Blocks[I].empty())
      continue;
    Mix(Ordinal[I]);
    for (int S : C.Succs[I]) {
      // Resolve empty successors forward to the next real block.
      size_t T = static_cast<size_t>(S);
      while (T < F.Blocks.size() && F.Blocks[T].empty())
        ++T;
      Mix(T < F.Blocks.size() ? Ordinal[T] : UINT32_MAX);
    }
  }
  return H;
}
