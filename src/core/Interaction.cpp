//===- Interaction.cpp - Phase interaction analysis ---------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/core/Interaction.h"

#include "src/support/Str.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

using namespace pose;

void InteractionAnalysis::addFunction(const EnumerationResult &R) {
  if (R.Nodes.empty())
    return;
  ++Functions;

  for (int Y = 0; Y != NumPhases; ++Y)
    RootActive[Y] += R.Nodes[0].activeAt(phaseByIndex(Y)) ? 1.0 : 0.0;

  for (const DagNode &Parent : R.Nodes) {
    for (const DagEdge &E : Parent.Edges) {
      const DagNode &Child = R.Nodes[E.To];
      const double W = static_cast<double>(Child.Weight);
      const int X = static_cast<int>(E.Phase);
      BenefitMass[X] += W * (static_cast<double>(Parent.CodeSize) -
                             static_cast<double>(Child.CodeSize));
      BenefitWeight[X] += W;
      for (int Y = 0; Y != NumPhases; ++Y) {
        if (Y == X)
          continue; // The applied phase's own transition is definitional.
        PhaseId PY = phaseByIndex(Y);
        const bool ParentActive = Parent.activeAt(PY);
        const bool ChildActive = Child.activeAt(PY);
        if (!ParentActive) {
          // dormant -> {active, dormant}: enabling bookkeeping.
          DormantToAny[Y][X] += W;
          if (ChildActive)
            DormantToActive[Y][X] += W;
        } else {
          // active -> {dormant, active}: disabling bookkeeping.
          ActiveToAny[Y][X] += W;
          if (!ChildActive)
            ActiveToDormant[Y][X] += W;
        }
      }
    }

    // Independence: unordered pairs of phases both active at Parent.
    const double WN = static_cast<double>(Parent.Weight);
    for (int X = 0; X != NumPhases; ++X) {
      if (!Parent.activeAt(phaseByIndex(X)))
        continue;
      for (int Y = X + 1; Y != NumPhases; ++Y) {
        if (!Parent.activeAt(phaseByIndex(Y)))
          continue;
        uint32_t CX = Parent.childVia(phaseByIndex(X));
        uint32_t CY = Parent.childVia(phaseByIndex(Y));
        // x then y / y then x.
        uint32_t XY = R.Nodes[CX].childVia(phaseByIndex(Y));
        uint32_t YX = R.Nodes[CY].childVia(phaseByIndex(X));
        ConsecutiveMass[X][Y] += WN;
        ConsecutiveMass[Y][X] += WN;
        if (XY != UINT32_MAX && XY == YX) {
          IndependentMass[X][Y] += WN;
          IndependentMass[Y][X] += WN;
        }
      }
    }
  }
}

static double ratio(double Num, double Den) {
  return Den > 0 ? Num / Den : 0.0;
}

double InteractionAnalysis::enabling(PhaseId Y, PhaseId X) const {
  const int IY = static_cast<int>(Y), IX = static_cast<int>(X);
  return ratio(DormantToActive[IY][IX], DormantToAny[IY][IX]);
}

double InteractionAnalysis::startProbability(PhaseId Y) const {
  return Functions ? RootActive[static_cast<int>(Y)] /
                         static_cast<double>(Functions)
                   : 0.0;
}

double InteractionAnalysis::disabling(PhaseId Y, PhaseId X) const {
  const int IY = static_cast<int>(Y), IX = static_cast<int>(X);
  return ratio(ActiveToDormant[IY][IX], ActiveToAny[IY][IX]);
}

double InteractionAnalysis::independence(PhaseId X, PhaseId Y) const {
  const int IX = static_cast<int>(X), IY = static_cast<int>(Y);
  return ratio(IndependentMass[IX][IY], ConsecutiveMass[IX][IY]);
}

bool InteractionAnalysis::alwaysIndependent(PhaseId X, PhaseId Y) const {
  const int IX = static_cast<int>(X), IY = static_cast<int>(Y);
  return ConsecutiveMass[IX][IY] > 0 &&
         IndependentMass[IX][IY] == ConsecutiveMass[IX][IY];
}

double InteractionAnalysis::averageBenefit(PhaseId X) const {
  const int IX = static_cast<int>(X);
  return ratio(BenefitMass[IX], BenefitWeight[IX]);
}

std::string InteractionAnalysis::serialize() const {
  // Line-oriented: a header, the function count, then one labelled line
  // per matrix/vector with full-precision doubles (hex float format, so
  // the round trip is exact).
  std::string Out = "pose-interaction-model v1\n";
  Out += "functions " + std::to_string(Functions) + "\n";
  auto EmitMatrix = [&Out](const char *Name,
                           const double (&M)[NumPhases][NumPhases]) {
    for (int Y = 0; Y != NumPhases; ++Y) {
      Out += Name;
      Out += " " + std::to_string(Y);
      for (int X = 0; X != NumPhases; ++X) {
        char Buf[40];
        std::snprintf(Buf, sizeof(Buf), " %a", M[Y][X]);
        Out += Buf;
      }
      Out += "\n";
    }
  };
  auto EmitVector = [&Out](const char *Name, const double (&V)[NumPhases]) {
    Out += Name;
    for (int Y = 0; Y != NumPhases; ++Y) {
      char Buf[40];
      std::snprintf(Buf, sizeof(Buf), " %a", V[Y]);
      Out += Buf;
    }
    Out += "\n";
  };
  EmitMatrix("d2a", DormantToActive);
  EmitMatrix("d2x", DormantToAny);
  EmitMatrix("a2d", ActiveToDormant);
  EmitMatrix("a2x", ActiveToAny);
  EmitMatrix("ind", IndependentMass);
  EmitMatrix("con", ConsecutiveMass);
  EmitVector("root", RootActive);
  EmitVector("benm", BenefitMass);
  EmitVector("benw", BenefitWeight);
  return Out;
}

bool InteractionAnalysis::deserialize(const std::string &Text) {
  *this = InteractionAnalysis();
  const char *P = Text.c_str();
  auto NextLine = [&P]() -> std::string {
    if (!*P)
      return "";
    const char *E = std::strchr(P, '\n');
    std::string Line = E ? std::string(P, E) : std::string(P);
    P = E ? E + 1 : P + Line.size();
    return Line;
  };
  if (NextLine() != "pose-interaction-model v1")
    return false;
  {
    std::string L = NextLine();
    unsigned long long N = 0;
    char Extra;
    if (std::sscanf(L.c_str(), "functions %llu %c", &N, &Extra) != 1)
      return false;
    Functions = static_cast<size_t>(N);
  }
  auto ReadRow = [](const std::string &Line, const char *Name, int &Y,
                    double *Row, int Count, bool HasIndex) {
    const char *Q = Line.c_str();
    size_t NameLen = std::strlen(Name);
    if (Line.compare(0, NameLen, Name) != 0)
      return false;
    Q += NameLen;
    if (HasIndex) {
      char *End = nullptr;
      Y = static_cast<int>(std::strtol(Q, &End, 10));
      if (End == Q || Y < 0 || Y >= NumPhases)
        return false;
      Q = End;
    }
    for (int X = 0; X != Count; ++X) {
      char *End = nullptr;
      Row[X] = std::strtod(Q, &End);
      if (End == Q)
        return false;
      Q = End;
    }
    while (*Q == ' ' || *Q == '\t')
      ++Q;
    return *Q == '\0'; // Extra values on a row are corruption, not slack.
  };
  auto ReadMatrix = [&](const char *Name,
                        double (&M)[NumPhases][NumPhases]) {
    bool SeenRow[NumPhases] = {};
    for (int I = 0; I != NumPhases; ++I) {
      int Y = -1;
      double Row[NumPhases];
      if (!ReadRow(NextLine(), Name, Y, Row, NumPhases, true))
        return false;
      // A repeated row index means another row is missing: with it, the
      // matrix would deserialize "successfully" with a silently zeroed
      // row, and the duplicate would overwrite the earlier value.
      if (SeenRow[Y])
        return false;
      SeenRow[Y] = true;
      for (int X = 0; X != NumPhases; ++X)
        M[Y][X] = Row[X];
    }
    return true;
  };
  auto ReadVector = [&](const char *Name, double (&V)[NumPhases]) {
    int Dummy = 0;
    return ReadRow(NextLine(), Name, Dummy, V, NumPhases, false);
  };
  if (!(ReadMatrix("d2a", DormantToActive) &&
        ReadMatrix("d2x", DormantToAny) &&
        ReadMatrix("a2d", ActiveToDormant) &&
        ReadMatrix("a2x", ActiveToAny) &&
        ReadMatrix("ind", IndependentMass) &&
        ReadMatrix("con", ConsecutiveMass) &&
        ReadVector("root", RootActive) && ReadVector("benm", BenefitMass) &&
        ReadVector("benw", BenefitWeight)))
    return false;
  // The format has a fixed line count; anything after the last vector
  // (even a stray blank line) is trailing garbage.
  return *P == '\0';
}

std::string InteractionAnalysis::renderTable(TableKind Kind) const {
  std::string Out = "Phase";
  if (Kind == TableKind::Enabling)
    Out += padLeft("St", 6);
  for (int X = 0; X != NumPhases; ++X)
    Out += padLeft(std::string(1, phaseCode(phaseByIndex(X))), 6);
  Out += "\n";
  for (int Y = 0; Y != NumPhases; ++Y) {
    Out += padRight(std::string(1, phaseCode(phaseByIndex(Y))), 5);
    if (Kind == TableKind::Enabling)
      Out += padLeft(fmtDouble(startProbability(phaseByIndex(Y)), 2), 6);
    for (int X = 0; X != NumPhases; ++X) {
      double V = 0;
      bool Blank = false;
      switch (Kind) {
      case TableKind::Enabling:
        V = enabling(phaseByIndex(Y), phaseByIndex(X));
        // Blank means "never observed" (X never ran while Y was dormant),
        // not "observed with probability < 0.005" — that renders 0.00.
        // Conflating the two hid real but rare enabling relations.
        Blank = DormantToAny[Y][X] == 0.0;
        break;
      case TableKind::Disabling:
        V = disabling(phaseByIndex(Y), phaseByIndex(X));
        Blank = ActiveToAny[Y][X] == 0.0;
        break;
      case TableKind::Independence:
        V = independence(phaseByIndex(Y), phaseByIndex(X));
        // Paper: "blank cells indicate a probability greater than 0.995"
        // (and phases that never meet have nothing to report).
        Blank = V > 0.995 ||
                ConsecutiveMass[Y][X] == 0.0;
        break;
      }
      Out += Blank ? padLeft("", 6) : padLeft(fmtDouble(V, 2), 6);
    }
    Out += "\n";
  }
  return Out;
}
