//===- DagPaths.cpp - Paths and instance materialization ----------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/core/DagPaths.h"

#include "src/ir/Function.h"
#include "src/opt/PhaseManager.h"

#include <deque>

using namespace pose;

DagPaths::DagPaths(const EnumerationResult &R)
    : From(R.Nodes.size(), -1),
      Via(R.Nodes.size(), PhaseId::BranchChaining) {
  // Breadth-first so paths are shortest (cheapest to replay).
  std::deque<uint32_t> Work{0};
  std::vector<bool> Seen(R.Nodes.size(), false);
  Seen[0] = true;
  while (!Work.empty()) {
    uint32_t Id = Work.front();
    Work.pop_front();
    for (const DagEdge &E : R.Nodes[Id].Edges) {
      if (Seen[E.To])
        continue;
      Seen[E.To] = true;
      From[E.To] = static_cast<int>(Id);
      Via[E.To] = E.Phase;
      Work.push_back(E.To);
    }
  }
}

std::vector<PhaseId> DagPaths::pathTo(uint32_t Node) const {
  std::vector<PhaseId> Rev;
  for (int Cur = static_cast<int>(Node); Cur != 0; Cur = From[Cur]) {
    assert(Cur >= 0 && "node unreachable from the root");
    Rev.push_back(Via[Cur]);
  }
  return {Rev.rbegin(), Rev.rend()};
}

std::string DagPaths::sequenceTo(uint32_t Node) const {
  std::string S;
  for (PhaseId P : pathTo(Node))
    S += phaseCode(P);
  return S;
}

Function DagPaths::materialize(const Function &Root, const PhaseManager &PM,
                               uint32_t Node) const {
  Function F = Root;
  for (PhaseId P : pathTo(Node)) {
    [[maybe_unused]] bool Active = PM.attempt(P, F);
    assert(Active && "enumerated path must replay actively");
  }
  return F;
}
