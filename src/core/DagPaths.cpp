//===- DagPaths.cpp - Paths and instance materialization ----------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/core/DagPaths.h"

#include "src/ir/Function.h"
#include "src/opt/PhaseGuard.h"
#include "src/opt/PhaseManager.h"

#include <deque>

using namespace pose;

namespace {
/// One replayed phase application: PM.attempt plus the wrong-code
/// mutation the PhaseGuard would have injected during enumeration.
bool replayPhase(const PhaseManager &PM, const FaultPlan *Faults, PhaseId P,
                 Function &F) {
  const bool Active = PM.attempt(P, F);
  if (Active && Faults && Faults->wrongCode(P))
    (void)applyWrongCodeFault(F);
  return Active;
}
} // namespace

DagPaths::DagPaths(const EnumerationResult &R)
    : From(R.Nodes.size(), -1),
      Via(R.Nodes.size(), PhaseId::BranchChaining) {
  // Breadth-first so paths are shortest (cheapest to replay).
  std::deque<uint32_t> Work{0};
  std::vector<bool> Seen(R.Nodes.size(), false);
  Seen[0] = true;
  while (!Work.empty()) {
    uint32_t Id = Work.front();
    Work.pop_front();
    for (const DagEdge &E : R.Nodes[Id].Edges) {
      if (Seen[E.To])
        continue;
      Seen[E.To] = true;
      From[E.To] = static_cast<int>(Id);
      Via[E.To] = E.Phase;
      Work.push_back(E.To);
    }
  }
}

std::vector<PhaseId> DagPaths::pathTo(uint32_t Node) const {
  std::vector<PhaseId> Rev;
  for (int Cur = static_cast<int>(Node); Cur != 0; Cur = From[Cur]) {
    assert(Cur >= 0 && "node unreachable from the root");
    Rev.push_back(Via[Cur]);
  }
  return {Rev.rbegin(), Rev.rend()};
}

std::string DagPaths::sequenceTo(uint32_t Node) const {
  std::string S;
  for (PhaseId P : pathTo(Node))
    S += phaseCode(P);
  return S;
}

Function DagPaths::materialize(const Function &Root, const PhaseManager &PM,
                               uint32_t Node,
                               const FaultPlan *Faults) const {
  Function F = Root;
  for (PhaseId P : pathTo(Node)) {
    [[maybe_unused]] bool Active = replayPhase(PM, Faults, P, F);
    assert(Active && "enumerated path must replay actively");
  }
  return F;
}

void DagPaths::forEachInstance(
    const Function &Root, const PhaseManager &PM, const FaultPlan *Faults,
    const std::function<void(uint32_t, const Function &)> &Fn) const {
  // Children adjacency of the BFS spanning tree. Pushing ids in ascending
  // order makes each child list ascending, so the DFS below is fully
  // deterministic.
  std::vector<std::vector<uint32_t>> Children(From.size());
  for (size_t Id = 1; Id != From.size(); ++Id)
    if (From[Id] >= 0)
      Children[static_cast<size_t>(From[Id])].push_back(
          static_cast<uint32_t>(Id));

  // Explicit-stack DFS carrying the materialized instance down the tree:
  // one phase application (plus one function copy) per edge. Recursion
  // would also copy once per edge but can overflow the stack on deep
  // chains; DAG depths reach the hundreds for the larger workloads.
  struct Frame {
    uint32_t Id;
    Function Inst;
  };
  std::vector<Frame> Stack;
  Stack.push_back({0, Root});
  while (!Stack.empty()) {
    Frame Cur = std::move(Stack.back());
    Stack.pop_back();
    Fn(Cur.Id, Cur.Inst);
    // Reverse order so the smallest-id child is visited first.
    const std::vector<uint32_t> &Kids = Children[Cur.Id];
    for (size_t I = Kids.size(); I-- != 0;) {
      Frame Next{Kids[I], Cur.Inst};
      [[maybe_unused]] bool Active =
          replayPhase(PM, Faults, Via[Kids[I]], Next.Inst);
      assert(Active && "enumerated edge must replay actively");
      Stack.push_back(std::move(Next));
    }
  }
}
