//===- Search.h - Heuristic phase-sequence searches -------------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Non-exhaustive searches of the phase order space: a genetic algorithm,
/// a hill climber, and uniform random sampling. These are the baselines
/// the paper positions itself against (Section 2: genetic algorithms [3,
/// 4], hill climbing [9, 5]) and proposes to improve (Section 7: use the
/// redundancy-detection hashes to make GA searches faster [14]).
///
/// All searchers share a fitness evaluator that applies an attempted
/// phase sequence, then measures either static code size or whole-program
/// dynamic instruction count. The evaluator deduplicates by canonical
/// instance hash — the technique of the paper's reference [14]: sequences
/// that produce an already-seen instance are not re-evaluated (for
/// dynamic counts, not re-simulated).
///
//===----------------------------------------------------------------------===//

#ifndef POSE_CORE_SEARCH_H
#define POSE_CORE_SEARCH_H

#include "src/ir/Function.h"
#include "src/opt/Phase.h"
#include "src/support/StopToken.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pose {

class Module;
class PhaseManager;

/// What a search minimizes.
enum class Objective : uint8_t {
  CodeSize,     ///< Static instruction count of the instance.
  DynamicCount, ///< Whole-program dynamic instructions running Entry.
};

/// Search tuning knobs.
struct SearchConfig {
  uint64_t Seed = 1;
  /// Attempted sequence length (the GA chromosome length). The paper's
  /// batch compiler actively applies ~9 phases; attempted sequences need
  /// slack for dormant genes.
  int SequenceLength = 16;
  int PopulationSize = 20;
  int Generations = 25;
  /// Per-gene mutation probability.
  double MutationRate = 0.05;
  /// Evaluation budget for random search and the hill climber.
  uint64_t MaxEvaluations = 500;
  /// Reference [14]: skip evaluating sequences whose instance hash was
  /// already seen.
  bool DedupWithHashes = true;
  /// Wall-clock deadline in milliseconds for the whole search; 0 =
  /// unlimited. Checked between fitness evaluations.
  uint64_t DeadlineMs = 0;
  /// Cooperative cancellation (not owned; may be nullptr).
  const StopToken *Stop = nullptr;
};

/// Outcome of one search.
struct SearchResult {
  uint64_t BestFitness = UINT64_MAX;
  std::string BestSequence; ///< Active phases of the best sequence found.
  Function BestInstance;
  uint64_t Evaluations = 0; ///< Distinct fitness evaluations performed.
  uint64_t CacheHits = 0;   ///< Evaluations avoided by hash dedup.
  uint64_t PhaseAttempts = 0;
  /// Complete when the strategy ran to its natural end; Deadline or
  /// Cancelled when the governor stopped it early. The best-so-far
  /// fields above stay valid either way.
  StopReason Stop = StopReason::Complete;
};

/// Shared driver for the three search strategies.
class SequenceSearch {
public:
  /// \p M is the surrounding program (for dynamic-count fitness; the
  /// entry function \p Entry is simulated). The module is not modified.
  SequenceSearch(const PhaseManager &PM, const Module &M,
                 std::string Entry);

  SearchResult geneticSearch(const Function &Root, Objective Obj,
                             const SearchConfig &Config) const;
  SearchResult hillClimb(const Function &Root, Objective Obj,
                         const SearchConfig &Config) const;
  SearchResult randomSearch(const Function &Root, Objective Obj,
                            const SearchConfig &Config) const;

private:
  const PhaseManager &PM;
  const Module &M;
  std::string Entry;

  class Evaluator;
};

} // namespace pose

#endif // POSE_CORE_SEARCH_H
