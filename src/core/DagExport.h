//===- DagExport.h - Graphviz export of enumerated spaces ------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders an enumerated phase-order DAG as Graphviz DOT, in the style of
/// the paper's Figure 7: nodes annotated with their weight (and code
/// size), edges labelled with the phase designation, leaves highlighted.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_CORE_DAGEXPORT_H
#define POSE_CORE_DAGEXPORT_H

#include "src/core/Enumerator.h"

#include <string>

namespace pose {

/// Rendering options.
struct DagExportOptions {
  /// Maximum nodes rendered (breadth-first from the root); 0 = no limit.
  /// Graphs beyond a few hundred nodes stop being readable.
  size_t MaxNodes = 300;
  /// Annotate nodes with code size in addition to weight.
  bool ShowCodeSize = true;
  std::string GraphName = "phase_order_space";
};

/// Returns the DOT text for \p R.
std::string dagToDot(const EnumerationResult &R,
                     const DagExportOptions &Options = {});

} // namespace pose

#endif // POSE_CORE_DAGEXPORT_H
