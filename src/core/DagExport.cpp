//===- DagExport.cpp - Graphviz export of enumerated spaces -------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/core/DagExport.h"

#include <deque>
#include <set>

using namespace pose;

std::string pose::dagToDot(const EnumerationResult &R,
                           const DagExportOptions &Options) {
  // Select the rendered subset breadth-first so truncation keeps the top
  // of the space.
  std::set<uint32_t> Rendered;
  std::deque<uint32_t> Work;
  if (!R.Nodes.empty()) {
    Work.push_back(0);
    Rendered.insert(0);
  }
  while (!Work.empty() &&
         (Options.MaxNodes == 0 || Rendered.size() < Options.MaxNodes)) {
    uint32_t Id = Work.front();
    Work.pop_front();
    for (const DagEdge &E : R.Nodes[Id].Edges) {
      if (Rendered.count(E.To))
        continue;
      if (Options.MaxNodes && Rendered.size() >= Options.MaxNodes)
        break;
      Rendered.insert(E.To);
      Work.push_back(E.To);
    }
  }

  // The graph name is caller-supplied (posec --enumerate=<name> passes the
  // function name through). Always emit it as a quoted DOT ID with quote,
  // backslash and newline escaped, so no name can break out of the ID and
  // inject graph-level attributes or stray statements.
  std::string Name;
  for (char C : Options.GraphName) {
    if (C == '"' || C == '\\')
      Name += '\\';
    if (C == '\n') {
      Name += "\\n";
      continue;
    }
    Name += C;
  }
  if (Name.empty())
    Name = "phase_order_space";
  std::string Out = "digraph \"" + Name + "\" {\n";
  Out += "  rankdir=TB;\n  node [shape=circle, fontsize=10];\n";
  for (uint32_t Id : Rendered) {
    const DagNode &N = R.Nodes[Id];
    Out += "  n" + std::to_string(Id) + " [label=\"" +
           std::to_string(N.Weight);
    if (Options.ShowCodeSize)
      Out += "\\n" + std::to_string(N.CodeSize) + "i";
    Out += "\"";
    if (N.isLeaf())
      Out += ", shape=doublecircle";
    if (Id == 0)
      Out += ", style=bold";
    Out += "];\n";
  }
  for (uint32_t Id : Rendered) {
    for (const DagEdge &E : R.Nodes[Id].Edges) {
      if (!Rendered.count(E.To))
        continue;
      Out += "  n" + std::to_string(Id) + " -> n" + std::to_string(E.To) +
             " [label=\"" + phaseCode(E.Phase) + "\"];\n";
    }
  }
  if (Options.MaxNodes && R.Nodes.size() > Options.MaxNodes)
    Out += "  truncated [shape=plaintext, label=\"(" +
           std::to_string(R.Nodes.size() - Rendered.size()) +
           " more nodes)\"];\n";
  Out += "}\n";
  return Out;
}
