//===- Compilers.h - Batch and probabilistic compilation -------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two whole-compiler strategies compared in the paper's Section 6 /
/// Table 7:
///
///  - the *old batch* compiler applies one fixed order of phases in a loop
///    until no phase changes the function ("VPO applies many optimization
///    phases in a loop until there are no further program changes");
///  - the *probabilistic batch* compiler (Figure 8) keeps a per-phase
///    probability of being active, seeds it with start probabilities,
///    always applies the most-probably-active phase next, and updates
///    every probability with measured enabling/disabling interactions
///    after each active phase.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_CORE_COMPILERS_H
#define POSE_CORE_COMPILERS_H

#include "src/core/Interaction.h"
#include "src/opt/Phase.h"
#include "src/support/StopToken.h"

#include <string>
#include <vector>

namespace pose {

class Function;
class Module;
class PhaseManager;

/// Outcome of compiling one function with either strategy.
struct CompileStats {
  uint64_t Attempted = 0; ///< Phases attempted (Table 7 column).
  uint64_t Active = 0;    ///< Attempts that changed the code.
  double Seconds = 0;     ///< Wall-clock optimization time.
  std::string ActiveSequence; ///< Letters of the active phases, in order.
  /// Complete for a full compilation; Deadline/Cancelled when the
  /// governor stopped it between phase attempts. The function is left in
  /// a consistent (verifiable) but less-optimized state in that case.
  StopReason Stop = StopReason::Complete;
};

/// Compiles \p F with the old fixed-order batch strategy. Does not insert
/// the activation-record code; call fixEntryExit afterwards for final
/// code. \p Gov, when given, is polled between phase attempts.
CompileStats batchCompile(const PhaseManager &PM, Function &F,
                          const ResourceGovernor *Gov = nullptr);

/// Batch-compiles every function of \p M, \p Jobs functions at a time
/// (1 = sequential). Functions are independent compilations, so the
/// per-function stats and optimized code are identical for any job count;
/// only wall-clock Seconds varies. Returns stats in module function
/// order. Like batchCompile this leaves fixEntryExit to the caller, and
/// \p Gov (shared by all workers) is polled between phase attempts — a
/// stop leaves every function consistent but possibly unoptimized.
std::vector<CompileStats>
batchCompileModule(const PhaseManager &PM, Module &M, unsigned Jobs,
                   const ResourceGovernor *Gov = nullptr);

/// The Figure 8 compiler, parameterized by measured interactions.
class ProbabilisticCompiler {
public:
  /// \p IA supplies e[i][j], d[i][j] and the start probabilities,
  /// typically trained on exhaustively enumerated functions.
  /// \p UseBenefits implements the improvement the paper names as future
  /// work ("can be further improved by taking phase benefits into
  /// account"): the selection score becomes p[i] scaled by the measured
  /// average code-size benefit of phase i instead of p[i] alone. The
  /// probability updates of Figure 8 are unchanged.
  ProbabilisticCompiler(const PhaseManager &PM,
                        const InteractionAnalysis &IA,
                        bool UseBenefits = false);

  /// Compiles \p F by always applying the phase most likely to be active.
  /// \p Gov, when given, is polled between phase attempts.
  CompileStats compile(Function &F,
                       const ResourceGovernor *Gov = nullptr) const;

  /// Probability floor below which a phase is not worth attempting; the
  /// paper's tables blank values below 0.005 and the loop of Figure 8
  /// runs "while any p[i] > 0".
  static constexpr double Threshold = 0.005;

private:
  const PhaseManager &PM;
  double Enabling[NumPhases][NumPhases];
  double Disabling[NumPhases][NumPhases];
  double Start[NumPhases];
  double Score[NumPhases]; ///< Selection weight (1.0, or the benefit).
};

} // namespace pose

#endif // POSE_CORE_COMPILERS_H
