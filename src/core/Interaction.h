//===- Interaction.h - Phase interaction analysis --------------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analysis of enumerated spaces (paper Section 5): weighted probabilities
/// of phase enabling (Table 4), disabling (Table 5), and independence
/// (Table 6), accumulated over any number of per-function DAGs.
///
/// Definitions implemented verbatim from the paper:
///  - enabling   e[y][x] = W(dormant->active) / W(dormant->*) over edges
///    labelled x, weighted by the child node's weight;
///  - disabling  d[y][x] = W(active->dormant) / W(active->*), same
///    weighting;
///  - independence ind[x][y]: of the occasions where x and y are
///    consecutively active from a node, the weighted fraction where both
///    orders produce the identical instance (weighted by the node's
///    weight; the paper does not pin the weighting down further).
/// Illegal phases count as dormant, which yields the paper's observation
/// that c and k "always disable" o (they force register assignment).
///
//===----------------------------------------------------------------------===//

#ifndef POSE_CORE_INTERACTION_H
#define POSE_CORE_INTERACTION_H

#include "src/core/Enumerator.h"

#include <string>

namespace pose {

/// Accumulates interaction statistics across enumerated functions and
/// renders the paper's Tables 4-6.
class InteractionAnalysis {
public:
  /// Folds one enumerated space into the running statistics.
  void addFunction(const EnumerationResult &R);

  /// Probability that phase \p Y is enabled by phase \p X (Table 4).
  /// Returns 0 when no transition was ever observed.
  double enabling(PhaseId Y, PhaseId X) const;

  /// Probability that phase \p Y is active on the unoptimized function
  /// (Table 4's "St" column).
  double startProbability(PhaseId Y) const;

  /// Probability that phase \p Y is disabled by phase \p X (Table 5).
  double disabling(PhaseId Y, PhaseId X) const;

  /// Probability that phases \p X and \p Y are independent (Table 6;
  /// symmetric).
  double independence(PhaseId X, PhaseId Y) const;

  /// True when \p X and \p Y were consecutively active at least once and
  /// every observed occurrence commuted — the "completely independent"
  /// case whose consequence the paper spells out: "we would never have to
  /// evaluate them in different orders" (Section 5.3). Feeds the
  /// enumerator's independence pruning.
  bool alwaysIndependent(PhaseId X, PhaseId Y) const;

  /// Average code-size benefit of one active application of \p X:
  /// weighted mean of (parent size - child size) over edges labelled X.
  /// Negative for phases that grow code (loop unrolling). This is the
  /// per-phase "benefit" the paper's Section 6 names as the missing
  /// ingredient of its probabilistic compiler.
  double averageBenefit(PhaseId X) const;

  /// Number of functions folded in.
  size_t functionCount() const { return Functions; }

  /// Renders one of the three tables in the paper's layout (rows/columns
  /// in designation order, blanks below the paper's display thresholds).
  enum class TableKind { Enabling, Disabling, Independence };
  std::string renderTable(TableKind Kind) const;

  /// Serializes the accumulated statistics to a line-oriented text format
  /// so a model trained on one corpus can be saved and reused (posec's
  /// --save-model/--model flags).
  std::string serialize() const;

  /// Restores a model produced by serialize(). Returns false (leaving the
  /// object unspecified) on malformed input.
  bool deserialize(const std::string &Text);

private:
  size_t Functions = 0;
  // Weighted transition mass, indexed [y][x].
  double DormantToActive[NumPhases][NumPhases] = {};
  double DormantToAny[NumPhases][NumPhases] = {};
  double ActiveToDormant[NumPhases][NumPhases] = {};
  double ActiveToAny[NumPhases][NumPhases] = {};
  // Independence, unordered pair mass accumulated symmetrically.
  double IndependentMass[NumPhases][NumPhases] = {};
  double ConsecutiveMass[NumPhases][NumPhases] = {};
  // Start-of-compilation activity.
  double RootActive[NumPhases] = {};
  // Code-size delta accumulation per phase, weighted like the tables.
  double BenefitMass[NumPhases] = {};
  double BenefitWeight[NumPhases] = {};
};

} // namespace pose

#endif // POSE_CORE_INTERACTION_H
