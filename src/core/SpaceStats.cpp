//===- SpaceStats.cpp - Per-function search-space statistics ------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/core/SpaceStats.h"

#include "src/analysis/Dominators.h"
#include "src/analysis/Loops.h"
#include "src/ir/Function.h"

#include <algorithm>
#include <set>

using namespace pose;

SpaceStats pose::computeSpaceStats(const Function &F,
                                   const EnumerationResult &R) {
  SpaceStats S;
  S.Name = F.Name;
  S.Insts = static_cast<uint32_t>(F.instructionCount());
  S.Blocks = static_cast<uint32_t>(F.Blocks.size());
  for (const BasicBlock &B : F.Blocks)
    for (const Rtl &I : B.Insts)
      S.Branches += (I.Opcode == Op::Branch || I.Opcode == Op::Jump);
  {
    Cfg C = Cfg::build(F);
    Dominators D(F, C);
    LoopInfo LI(F, C, D);
    S.Loops = static_cast<uint32_t>(LI.count());
  }

  S.Stop = R.Stop;
  S.FnInstances = R.Nodes.size();
  S.AttemptedPhases = R.AttemptedPhases;
  S.MaxActiveLen = R.MaxActiveLength;

  std::set<uint64_t> CfHashes;
  S.LeafCodeSizeMin = UINT32_MAX;
  for (const DagNode &N : R.Nodes) {
    CfHashes.insert(N.CfHash);
    if (!N.isLeaf())
      continue;
    ++S.LeafInstances;
    S.LeafCodeSizeMax = std::max(S.LeafCodeSizeMax, N.CodeSize);
    S.LeafCodeSizeMin = std::min(S.LeafCodeSizeMin, N.CodeSize);
  }
  if (S.LeafInstances == 0)
    S.LeafCodeSizeMin = 0;
  S.DistinctControlFlows = CfHashes.size();
  return S;
}

uint64_t pose::naiveSpaceSize(uint32_t Levels) {
  uint64_t Total = 0;
  uint64_t LevelCount = 1;
  for (uint32_t L = 1; L <= Levels; ++L) {
    if (LevelCount > UINT64_MAX / NumPhases)
      return UINT64_MAX;
    LevelCount *= NumPhases;
    if (Total > UINT64_MAX - LevelCount)
      return UINT64_MAX;
    Total += LevelCount;
  }
  return Total;
}
