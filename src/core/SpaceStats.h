//===- SpaceStats.h - Per-function search-space statistics -----*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes the columns of the paper's Table 3 for one enumerated
/// function: static shape of the unoptimized code (Insts/Blk/Brch/Loop),
/// search-space size (Fn inst / Attempted Phases / Len / CF / Leaf), and
/// the code-size range over leaf instances.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_CORE_SPACESTATS_H
#define POSE_CORE_SPACESTATS_H

#include "src/core/Enumerator.h"

#include <string>

namespace pose {

class Function;

/// One row of Table 3.
struct SpaceStats {
  std::string Name;
  // Static shape of the unoptimized function.
  uint32_t Insts = 0;
  uint32_t Blocks = 0;
  uint32_t Branches = 0; ///< Conditional + unconditional transfers.
  uint32_t Loops = 0;
  // Search-space measures.
  StopReason Stop = StopReason::Complete;
  uint64_t FnInstances = 0;
  uint64_t AttemptedPhases = 0;
  uint32_t MaxActiveLen = 0;
  uint64_t DistinctControlFlows = 0;
  uint64_t LeafInstances = 0;
  uint32_t LeafCodeSizeMax = 0;
  uint32_t LeafCodeSizeMin = 0;

  /// True when the enumeration behind this row exhausted the space.
  bool complete() const { return Stop == StopReason::Complete; }

  /// Percentage gap between worst and best leaf code size
  /// ((max-min)/min * 100), the paper's "% Diff" column.
  double codeSizeDiffPercent() const {
    if (LeafCodeSizeMin == 0)
      return 0.0;
    return 100.0 *
           (static_cast<double>(LeafCodeSizeMax) - LeafCodeSizeMin) /
           static_cast<double>(LeafCodeSizeMin);
  }
};

/// Gathers the Table 3 row for \p F (the unoptimized function) and its
/// enumerated space \p R.
SpaceStats computeSpaceStats(const Function &F, const EnumerationResult &R);

/// Size of the naive attempted space up to \p Levels: sum over n of
/// 15^n attempted sequences (Figure 1's tree). Saturates at UINT64_MAX.
uint64_t naiveSpaceSize(uint32_t Levels);

} // namespace pose

#endif // POSE_CORE_SPACESTATS_H
