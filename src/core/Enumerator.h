//===- Enumerator.h - Exhaustive phase order space enumeration -*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's central algorithm (Section 4): breadth-first, level-by-level
/// enumeration of every distinct function instance reachable by any
/// ordering of the fifteen phases, with two pruning techniques:
///
///  1. *Dormant phase detection* (4.1) — an attempted phase that changes
///     nothing terminates that branch of the space; an active phase is not
///     re-attempted immediately (no phase is successful twice in a row).
///  2. *Identical instance detection* (4.2) — canonicalized instances that
///     hash to a previously seen triple merge into one DAG node, turning
///     the exponential tree into a modest DAG.
///
/// The search-speed enhancements of Section 4.3 (in-memory instances and
/// prefix sharing) are the default; a deliberately naive mode re-applies
/// the whole phase prefix from the unoptimized function for every
/// evaluation, reproducing the Figure 6 comparison.
///
/// Enumeration is embarrassingly parallel within a BFS level: every
/// frontier instance attempts its phases independently, the only shared
/// state being the instance table. EnumeratorConfig::Jobs > 1 enables the
/// level-parallel engine, which is guaranteed to produce a DAG
/// byte-identical to the sequential one (workers buffer their
/// discoveries; a deterministic barrier commits them in frontier order).
///
//===----------------------------------------------------------------------===//

#ifndef POSE_CORE_ENUMERATOR_H
#define POSE_CORE_ENUMERATOR_H

#include "src/core/Canonical.h"
#include "src/ir/Function.h"
#include "src/opt/Phase.h"
#include "src/opt/PhaseGuard.h"
#include "src/support/StopToken.h"

#include <cstdint>
#include <vector>

namespace pose {

class PhaseManager;

/// One outgoing edge of a DAG node: applying Phase to the node's instance
/// yields node To.
struct DagEdge {
  PhaseId Phase;
  uint32_t To;
};

/// One distinct function instance in the enumerated space.
struct DagNode {
  HashTriple Hash;
  /// BFS level at which the instance was first discovered (= length of
  /// the shortest active sequence producing it).
  uint32_t Level = 0;
  /// Static instruction count of the instance (code size).
  uint32_t CodeSize = 0;
  /// Hash of the control-flow shape (for the CF statistic).
  uint64_t CfHash = 0;
  /// Bit i set: phase i is active at this node (an edge exists).
  uint16_t ActiveMask = 0;
  /// Bit i set: phase i was found (or known) dormant at this node.
  /// Illegal phases are recorded as dormant, matching the paper's
  /// treatment (e.g. c/k "always disable" o once assignment happens).
  uint16_t DormantMask = 0;
  /// Bit i set: phase i was actually attempted (ran the optimizer), the
  /// unit of the paper's "Attempted Phases" statistic.
  uint16_t AttemptedMask = 0;
  /// Outgoing edges, one per active phase.
  std::vector<DagEdge> Edges;
  /// Number of distinct active sequences beyond this node (Section 5,
  /// Figure 7): 1 for leaves, sum over edges of child weights otherwise.
  uint64_t Weight = 0;

  bool isLeaf() const { return Edges.empty(); }
  bool activeAt(PhaseId P) const {
    return ActiveMask & (1u << static_cast<int>(P));
  }
  /// Returns the child reached via \p P, or UINT32_MAX when \p P is
  /// dormant here.
  uint32_t childVia(PhaseId P) const {
    for (const DagEdge &E : Edges)
      if (E.Phase == P)
        return E.To;
    return UINT32_MAX;
  }
};

/// Per-level statistics backing Figures 1, 2 and 4.
struct LevelStat {
  uint32_t Level = 0;
  /// Distinct new instances discovered at this level (DAG width).
  uint64_t NewNodes = 0;
  /// Active sequences reaching this level (the tree of Figure 2; this is
  /// the quantity the paper caps at one million per level).
  uint64_t ActiveSequences = 0;
  /// Phase attempts performed while expanding the previous level.
  uint64_t Attempted = 0;
  /// Attempts that were active.
  uint64_t Active = 0;
};

/// Tuning knobs for one enumeration.
struct EnumeratorConfig {
  /// Abort when the number of active sequences at one level exceeds this
  /// (the paper's criterion: "we terminated the search any time the
  /// number of optimization sequences to apply at any particular level
  /// grew to more than a million").
  uint64_t MaxLevelSequences = 1'000'000;
  /// Additional safety valve on total distinct instances.
  uint64_t MaxTotalNodes = 4'000'000;
  /// Keep canonical bytes and verify triple matches exactly (paranoid
  /// collision detection; slower and memory hungry).
  bool ParanoidCompare = false;
  /// Disable the Section 4.3 enhancements: every evaluation re-applies
  /// the entire phase prefix to a fresh copy of the unoptimized function
  /// (Figure 6's "naive" column).
  bool NaiveReapply = false;
  /// Disable the Section 4.2.1 register remapping, so instances that
  /// differ only in register numbering count as distinct (ablation of the
  /// "more aggressive pruning" claim; see bench_ablation).
  bool RemapRegisters = true;
  /// Independence-based pruning (the paper's Section 7 future work:
  /// "independence relationships could also be used to more aggressively
  /// prune the enumeration space"). When phases x and y are recorded as
  /// always-independent by \ref TrainedIndependence, the enumerator
  /// predicts the result of applying y after x instead of running the
  /// optimizer: from parent P with P--x-->C and P--y-->D where D's x-edge
  /// is already known to reach E, the y edge from C is completed to E
  /// directly. Predictions are counted in PredictedEdges; correctness is
  /// validated against ground truth in the tests.
  bool UseIndependencePruning = false;
  /// Pairs treated as independent when UseIndependencePruning is on:
  /// Trained[x][y] true means x and y always commute. Symmetric.
  bool TrainedIndependence[NumPhases][NumPhases] = {};
  /// Wall-clock deadline in milliseconds, measured from the start of
  /// enumerate(); 0 = unlimited. Checked at level boundaries, so the
  /// overrun is bounded by one level's work.
  uint64_t DeadlineMs = 0;
  /// Approximate memory budget in bytes, tracked by node, canonical-byte
  /// and frontier-instance accounting; 0 = unlimited. Checked at level
  /// boundaries.
  uint64_t MaxMemoryBytes = 0;
  /// Cooperative cancellation (not owned; may be nullptr). Polled at
  /// level boundaries.
  const StopToken *Stop = nullptr;
  /// Run the IR verifier after every active phase application; a failure
  /// rolls the instance back, records a diagnostic, and marks the phase
  /// dormant at that node (see PhaseGuard).
  bool VerifyIr = false;
  /// Deterministic fault injection for testing the rollback path (not
  /// owned; may be nullptr).
  const FaultPlan *Faults = nullptr;
  /// Threads used to expand each BFS level (1 = the sequential engine).
  /// The parallel engine buffers per-worker discoveries and commits them
  /// in sequential frontier order at the level barrier, through a sharded
  /// concurrent instance table, so the resulting DAG — node ids, edges,
  /// statistics, stop reason, diagnostics, accounted memory — is
  /// byte-identical to Jobs == 1 for every deterministic stop condition
  /// (see docs/ROBUSTNESS.md for the exact contract; Deadline and
  /// Cancelled stops are polled at node granularity instead of level
  /// granularity, so only their partial DAGs may be smaller).
  /// UseIndependencePruning has an inherently sequential intra-level
  /// dependence (predictions read edges committed earlier in the same
  /// level) and forces the sequential engine regardless of Jobs.
  unsigned Jobs = 1;
};

/// Result of one exhaustive enumeration.
struct EnumerationResult {
  std::vector<DagNode> Nodes; ///< Node 0 is the unoptimized instance.
  /// Why the enumeration ended: Complete for an exhausted space, any
  /// other value for the specific limit (or failure) that stopped it.
  StopReason Stop = StopReason::Complete;
  bool Cyclic = false; ///< True if an edge closes a cycle.
  uint64_t AttemptedPhases = 0;
  /// Optimizer invocations including prefix replays; equals
  /// AttemptedPhases under prefix sharing, larger in naive mode (Fig 6).
  uint64_t PhaseApplications = 0;
  /// Largest active sequence length (the "Len" column of Table 3).
  uint32_t MaxActiveLength = 0;
  std::vector<LevelStat> Levels;
  /// Paranoid mode: number of hash-triple collisions with differing
  /// canonical bytes (the paper reports never seeing one).
  uint64_t HashCollisions = 0;
  /// Independence pruning: edges completed by prediction instead of
  /// running the optimizer.
  uint64_t PredictedEdges = 0;
  /// Guarded failures: one entry per rolled-back phase application (and
  /// per internal error). Empty on a clean run.
  std::vector<PhaseDiagnostic> Diagnostics;
  /// Bytes accounted against MaxMemoryBytes when the run ended.
  uint64_t ApproxMemoryBytes = 0;

  /// Derived from Stop: true only for a fully exhausted, failure-free
  /// space (the old Complete flag, with pruned-by-rollback runs now
  /// correctly reported as incomplete).
  bool complete() const { return Stop == StopReason::Complete; }

  size_t leafCount() const {
    size_t N = 0;
    for (const DagNode &Nd : Nodes)
      N += Nd.isLeaf();
    return N;
  }
};

/// Frontier entry: a node discovered at the current BFS level, waiting to
/// be expanded, with enough state to (re)produce its function instance.
/// Exposed (rather than kept private to the engines) because the
/// checkpoint/resume machinery must persist the committed frontier across
/// process lifetimes (see EnumerationCheckpoint and src/store).
struct FrontierEntry {
  uint32_t Node = 0;
  /// Prefix-sharing mode: the instance itself.
  Function Instance;
  /// Naive mode: one active sequence reaching the node (replayed from the
  /// root for every attempt).
  std::vector<PhaseId> Path;
  /// Compilation milestones of the instance (used for legality checks,
  /// valid in both modes — naive mode leaves Instance empty).
  PhaseState State;
  /// Phases along incoming edges; known dormant without attempting (an
  /// active phase is never successful twice consecutively).
  uint16_t IncomingMask = 0;
  /// First-discovery provenance, for independence-based prediction.
  uint32_t Parent = UINT32_MAX;
  PhaseId ViaPhase = PhaseId::BranchChaining;
  /// Number of distinct active sequences reaching this node.
  uint64_t Sequences = 1;
};

/// A resumable continuation of an interrupted enumeration: everything the
/// engines need to pick up at the last committed level barrier and produce
/// a DAG byte-identical to an uninterrupted run. Checkpoints are taken
/// only for *transient* stops (Deadline, MemoryBudget, Cancelled) — a
/// budget stop (LevelBudget/NodeBudget) is a final verdict about the
/// configured space and resuming past it would change its meaning.
struct EnumerationCheckpoint {
  /// True once an engine has filled the checkpoint in.
  bool Valid = false;
  /// The partial result as returned to the caller (stop reason set,
  /// weights computed). Node hashes double as the instance table: resume
  /// rebuilds the table from them.
  EnumerationResult Partial;
  /// The committed-but-unexpanded frontier at the stop barrier.
  std::vector<FrontierEntry> Frontier;
  /// Value of the engines' level counter at the barrier; the resumed loop
  /// continues with LevelCounter + 1.
  uint32_t LevelCounter = 0;
  /// Per-phase application counts in sequential numbering (the FaultPlan
  /// and diagnostic coordinate space).
  uint64_t AppCount[NumPhases] = {};
  /// Governor accounting of the saved frontier (already included in
  /// Partial.ApproxMemoryBytes; split out so the resumed engine can
  /// release it at its first barrier).
  uint64_t FrontierBytes = 0;
  /// ParanoidCompare: canonical bytes per node (indexed by node id), so
  /// exact collision detection continues across the resume.
  bool Paranoid = false;
  std::vector<std::vector<uint8_t>> NodeBytes;
};

/// True for stop reasons that leave a resumable checkpoint behind.
inline bool isResumableStop(StopReason R) {
  return R == StopReason::Deadline || R == StopReason::MemoryBudget ||
         R == StopReason::Cancelled;
}

/// Runs the exhaustive enumeration for single functions.
class Enumerator {
public:
  Enumerator(const PhaseManager &PM, EnumeratorConfig Config)
      : PM(PM), Config(Config) {}

  /// Enumerates all reachable instances of \p Root (which is copied;
  /// typically the unoptimized function straight out of the front end).
  /// Dispatches to the sequential or the parallel engine according to
  /// Config.Jobs; both produce identical results (differentially tested
  /// in tests/core/parallel_enumerator_test.cpp).
  EnumerationResult enumerate(const Function &Root) const {
    return enumerate(Root, nullptr);
  }

  /// Same, but when the run is stopped by a transient limit (Deadline,
  /// MemoryBudget, Cancelled) and \p Checkpoint is non-null, the
  /// continuation state is captured there (Checkpoint->Valid set). Other
  /// stop reasons leave \p Checkpoint invalid.
  EnumerationResult enumerate(const Function &Root,
                              EnumerationCheckpoint *Checkpoint) const;

  /// Continues an enumeration of \p Root from \p From (which must have
  /// been produced by an enumerate()/resume() of the same root under the
  /// same DAG-affecting configuration — the artifact store enforces this
  /// with its cache key). The final result is byte-identical to an
  /// uninterrupted run, for any mix of job counts across the sessions.
  /// Stops again are captured in \p Checkpoint like enumerate().
  EnumerationResult resume(const Function &Root, EnumerationCheckpoint From,
                           EnumerationCheckpoint *Checkpoint = nullptr) const;

private:
  EnumerationResult runSequential(const Function &Root,
                                  EnumerationCheckpoint *From,
                                  EnumerationCheckpoint *Out) const;
  EnumerationResult runParallel(const Function &Root,
                                EnumerationCheckpoint *From,
                                EnumerationCheckpoint *Out) const;

  const PhaseManager &PM;
  EnumeratorConfig Config;
};

/// Computes Weight for every node of \p R (leaves get 1, interior nodes
/// the sum over out-edges of child weights — Section 5, Figure 7). Sets
/// R.Cyclic instead of looping forever if the graph is not a DAG.
void computeWeights(EnumerationResult &R);

} // namespace pose

#endif // POSE_CORE_ENUMERATOR_H
