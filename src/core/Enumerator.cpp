//===- Enumerator.cpp - Exhaustive phase order space enumeration --------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/core/Enumerator.h"

#include "src/core/InstanceTable.h"
#include "src/ir/Function.h"
#include "src/opt/PhaseManager.h"
#include "src/support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <unordered_map>

using namespace pose;

namespace {

/// Approximate heap footprint of one function instance, for the memory
/// accounting of the resource governor. Deterministic by construction
/// (derived from instruction/slot counts, never from the allocator).
uint64_t functionFootprint(const Function &F) {
  uint64_t Bytes = sizeof(Function) + F.Slots.size() * sizeof(StackSlot);
  for (const BasicBlock &B : F.Blocks)
    Bytes += sizeof(BasicBlock) + B.Insts.size() * sizeof(Rtl);
  return Bytes;
}

uint64_t entryFootprint(const FrontierEntry &E) {
  return sizeof(FrontierEntry) + functionFootprint(E.Instance) +
         E.Path.size() * sizeof(PhaseId);
}

/// Exact instance equality, allocation counters included. The working-copy
/// reuse below depends on it: an attempt that reports dormant can still
/// have mutated the copy (PhaseManager::attempt performs the implicit
/// register assignment before phases that require it, and a phase may
/// allocate a pseudo or label it never uses), and a reused copy that
/// silently diverged from its parent would corrupt every later attempt on
/// the same frontier entry.
bool identicalInstance(const Function &A, const Function &B) {
  if (A.pseudoLimit() != B.pseudoLimit() ||
      A.labelLimit() != B.labelLimit() || !(A.State == B.State) ||
      A.NumParams != B.NumParams || A.ReturnsValue != B.ReturnsValue ||
      A.Blocks.size() != B.Blocks.size() || A.Slots.size() != B.Slots.size())
    return false;
  for (size_t I = 0; I != A.Slots.size(); ++I) {
    const StackSlot &SA = A.Slots[I], &SB = B.Slots[I];
    if (SA.SizeWords != SB.SizeWords || SA.IsArray != SB.IsArray ||
        SA.IsParam != SB.IsParam || SA.Name != SB.Name)
      return false;
  }
  for (size_t I = 0; I != A.Blocks.size(); ++I) {
    const BasicBlock &BA = A.Blocks[I], &BB = B.Blocks[I];
    if (BA.Label != BB.Label || BA.Insts.size() != BB.Insts.size())
      return false;
    for (size_t J = 0; J != BA.Insts.size(); ++J)
      if (BA.Insts[J] != BB.Insts[J])
        return false;
  }
  return true;
}

/// "Len": the largest active sequence length is the longest path in the
/// DAG (cross edges can make it exceed the BFS depth). Valid only when
/// the space is acyclic.
uint32_t longestPathLength(const EnumerationResult &R) {
  const size_t N = R.Nodes.size();
  std::vector<uint32_t> InDegree(N, 0), Dist(N, 0);
  for (const DagNode &Nd : R.Nodes)
    for (const DagEdge &E : Nd.Edges)
      ++InDegree[E.To];
  std::vector<uint32_t> Ready;
  for (size_t I = 0; I != N; ++I)
    if (InDegree[I] == 0)
      Ready.push_back(static_cast<uint32_t>(I));
  uint32_t Longest = 0;
  while (!Ready.empty()) {
    uint32_t Id = Ready.back();
    Ready.pop_back();
    for (const DagEdge &E : R.Nodes[Id].Edges) {
      if (Dist[E.To] < Dist[Id] + 1) {
        Dist[E.To] = Dist[Id] + 1;
        Longest = std::max(Longest, Dist[E.To]);
      }
      if (--InDegree[E.To] == 0)
        Ready.push_back(E.To);
    }
  }
  return Longest;
}

} // namespace

EnumerationResult
Enumerator::enumerate(const Function &Root,
                      EnumerationCheckpoint *Checkpoint) const {
  // Independence pruning predicts edges from edges committed earlier in
  // the *same* level, an intrinsically sequential dependence; everything
  // else parallelizes.
  if (Config.Jobs > 1 && !Config.UseIndependencePruning)
    return runParallel(Root, nullptr, Checkpoint);
  return runSequential(Root, nullptr, Checkpoint);
}

EnumerationResult
Enumerator::resume(const Function &Root, EnumerationCheckpoint From,
                   EnumerationCheckpoint *Checkpoint) const {
  // An unfilled checkpoint resumes as a fresh run, so callers can use one
  // code path whether or not a prior session left state behind.
  if (!From.Valid)
    return enumerate(Root, Checkpoint);
  if (Config.Jobs > 1 && !Config.UseIndependencePruning)
    return runParallel(Root, &From, Checkpoint);
  return runSequential(Root, &From, Checkpoint);
}

EnumerationResult
Enumerator::runSequential(const Function &Root, EnumerationCheckpoint *From,
                          EnumerationCheckpoint *Out) const {
  EnumerationResult R;
  ResourceGovernor Gov;
  Gov.setDeadline(Config.DeadlineMs);
  Gov.setMemoryBudget(Config.MaxMemoryBytes);
  Gov.setStopToken(Config.Stop);
  PhaseGuard Guard(PM, {Config.VerifyIr, Config.Faults});
  std::unordered_map<HashTriple, uint32_t, HashTripleHasher> Seen;
  // Paranoid mode: canonical bytes per node for exact comparison.
  std::vector<std::vector<uint8_t>> NodeBytes;

  // Seals the result: collects guard diagnostics, resolves the stop
  // reason (a run that finished but pruned edges after rollbacks is not
  // the complete space), and weights the — possibly partial — DAG.
  auto Finish = [&](StopReason Why) {
    for (PhaseDiagnostic &D : Guard.takeDiagnostics())
      R.Diagnostics.push_back(std::move(D));
    if (Why == StopReason::Complete && !R.Diagnostics.empty())
      Why = StopReason::VerifierFailure;
    R.Stop = Why;
    R.ApproxMemoryBytes = Gov.chargedBytes();
    computeWeights(R);
  };

  CanonicalScratch Scratch;
  auto Intern = [&](const Function &F) -> std::pair<uint32_t, bool> {
    CanonicalForm CF = canonicalize(F, Scratch, Config.ParanoidCompare,
                                    Config.RemapRegisters);
    auto [It, Inserted] =
        Seen.emplace(CF.Hash, static_cast<uint32_t>(R.Nodes.size()));
    if (Inserted) {
      DagNode N;
      N.Hash = CF.Hash;
      N.CodeSize = CF.Hash.InstCount;
      N.CfHash = controlFlowHash(F);
      R.Nodes.push_back(N);
      Gov.charge(sizeof(DagNode) + CF.Bytes.size());
      if (Config.ParanoidCompare)
        NodeBytes.push_back(std::move(CF.Bytes));
      return {It->second, true};
    }
    if (Config.ParanoidCompare && NodeBytes[It->second] != CF.Bytes)
      ++R.HashCollisions;
    return {It->second, false};
  };

  std::vector<FrontierEntry> Frontier;
  uint64_t FrontierBytes = 0;
  uint32_t Level = 0;

  // Captures the continuation for a transient stop: the pending frontier,
  // the level counter, the guard's application numbering, and (paranoid
  // mode) the canonical bytes. Call after Finish() so Partial carries the
  // final stop reason and weights.
  auto Capture = [&](std::vector<FrontierEntry> &&Pending,
                     uint64_t PendingBytes) {
    if (!Out)
      return;
    Out->Valid = true;
    Out->Partial = R;
    Out->Frontier = std::move(Pending);
    Out->LevelCounter = Level;
    for (int P = 0; P != NumPhases; ++P)
      Out->AppCount[P] = Guard.applications(phaseByIndex(P));
    Out->FrontierBytes = PendingBytes;
    Out->Paranoid = Config.ParanoidCompare;
    Out->NodeBytes = std::move(NodeBytes);
  };

  if (From) {
    // Continue from the checkpoint barrier: the node hashes rebuild the
    // instance table, the saved frontier becomes the working frontier,
    // and the governor re-charges exactly what was accounted at capture.
    R = std::move(From->Partial);
    for (uint32_t I = 0; I != R.Nodes.size(); ++I)
      Seen.emplace(R.Nodes[I].Hash, I);
    if (Config.ParanoidCompare)
      NodeBytes = std::move(From->NodeBytes);
    Frontier = std::move(From->Frontier);
    Level = From->LevelCounter;
    FrontierBytes = From->FrontierBytes;
    Gov.charge(R.ApproxMemoryBytes);
    Guard.seedApplications(From->AppCount);
    // A still-violated limit (e.g. resuming under the same memory budget)
    // must stop here, exactly where the interrupted run stopped.
    if (StopReason Why = Gov.check(); Why != StopReason::Complete) {
      Finish(Why);
      if (isResumableStop(Why))
        Capture(std::move(Frontier), FrontierBytes);
      return R;
    }
  } else {
    Function RootCopy = Root;
    auto [RootId, RootNew] = Intern(RootCopy);
    (void)RootNew;
    R.Nodes[RootId].Level = 0;
    {
      FrontierEntry E;
      E.Node = RootId;
      E.Instance = RootCopy;
      E.State = RootCopy.State;
      FrontierBytes = entryFootprint(E);
      Gov.charge(FrontierBytes);
      Frontier.push_back(std::move(E));
    }
    LevelStat L0;
    L0.Level = 0;
    L0.NewNodes = 1;
    L0.ActiveSequences = 1;
    R.Levels.push_back(L0);
  }

  while (!Frontier.empty()) {
    ++Level;
    LevelStat LS;
    LS.Level = Level;

    // Next-level frontier keyed by node id (merging sequence counts and
    // incoming-phase masks when several edges reach the same instance).
    std::unordered_map<uint32_t, size_t> NextIndex;
    std::vector<FrontierEntry> Next;

    for (FrontierEntry &E : Frontier) {
      // One working copy serves every attempted phase of this entry; it is
      // rebuilt from the parent instance only after a phase consumed it
      // (active) or mutated it while reporting dormant — so the per-attempt
      // deep copy of the old code materializes only when a phase fired.
      Function Work;
      bool WorkValid = false;
      for (int PI = 0; PI != NumPhases; ++PI) {
        PhaseId P = phaseByIndex(PI);
        const uint16_t Bit = static_cast<uint16_t>(1u << PI);
        // NOTE: R.Nodes may reallocate inside Intern; always re-index.
        if (!PM.isLegal(P, E.State)) {
          R.Nodes[E.Node].DormantMask |= Bit;
          continue;
        }
        if (E.IncomingMask & Bit) {
          // Known dormant: the phase was just active producing this node
          // and no phase succeeds twice consecutively.
          R.Nodes[E.Node].DormantMask |= Bit;
          continue;
        }
        if ((R.Nodes[E.Node].ActiveMask | R.Nodes[E.Node].DormantMask) &
            Bit) {
          // Already resolved through an earlier sequence arriving at the
          // same node.
          continue;
        }

        // Independence-based prediction (Section 7 future work): if the
        // incoming phase x and the candidate phase y always commute, the
        // result of y here equals the result of x after y at the parent —
        // both edges of which may already be known.
        if (Config.UseIndependencePruning && E.Parent != UINT32_MAX &&
            Config.TrainedIndependence[static_cast<int>(E.ViaPhase)][PI]) {
          uint32_t D = R.Nodes[E.Parent].childVia(P);
          if (D != UINT32_MAX) {
            uint32_t Predicted = R.Nodes[D].childVia(E.ViaPhase);
            if (Predicted != UINT32_MAX) {
              ++R.PredictedEdges;
              ++LS.Active;
              R.Nodes[E.Node].ActiveMask |= Bit;
              R.Nodes[E.Node].Edges.push_back({P, Predicted});
              Gov.charge(sizeof(DagEdge));
              if (R.Nodes[Predicted].Level == Level) {
                auto It = NextIndex.find(Predicted);
                if (It != NextIndex.end()) {
                  Next[It->second].IncomingMask |= Bit;
                  Next[It->second].Sequences += E.Sequences;
                }
              }
              continue;
            }
          }
        }

        // Produce the working copy: prefix sharing reuses the copy left by
        // the previous (dormant) attempt; naive mode replays the whole
        // prefix from the root.
        if (Config.NaiveReapply) {
          Work = Root;
          WorkValid = false;
          for (PhaseId Prev : E.Path) {
            PM.attempt(Prev, Work);
            ++R.PhaseApplications;
          }
        } else if (!WorkValid) {
          Work = E.Instance;
          WorkValid = true;
        }

        ++R.AttemptedPhases;
        ++R.PhaseApplications;
        ++LS.Attempted;
        R.Nodes[E.Node].AttemptedMask |= Bit;
        PhaseGuard::Outcome Out = Guard.attempt(P, Work);
        if (Out != PhaseGuard::Outcome::Active) {
          // Dormant — or rolled back after a verifier failure, which
          // prunes the edge and ends this branch of the space the same
          // way (the diagnostic is already recorded in the guard).
          R.Nodes[E.Node].DormantMask |= Bit;
          if (WorkValid && !identicalInstance(Work, E.Instance))
            WorkValid = false;
          continue;
        }
        ++LS.Active;
        // The phase consumed the working copy either way; the next attempt
        // on this entry starts from a fresh copy of the parent.
        WorkValid = false;
        auto [Child, IsNew] = Intern(Work);
        R.Nodes[E.Node].ActiveMask |= Bit;
        R.Nodes[E.Node].Edges.push_back({P, Child});
        Gov.charge(sizeof(DagEdge));
        if (IsNew) {
          R.Nodes[Child].Level = Level;
          FrontierEntry NE;
          NE.Node = Child;
          NE.State = Work.State;
          if (Config.NaiveReapply) {
            NE.Path = E.Path;
            NE.Path.push_back(P);
          } else {
            NE.Instance = std::move(Work);
          }
          NE.IncomingMask = Bit;
          NE.Parent = E.Node;
          NE.ViaPhase = P;
          NE.Sequences = E.Sequences;
          NextIndex[Child] = Next.size();
          Next.push_back(std::move(NE));
        } else if (R.Nodes[Child].Level == Level) {
          // Rediscovered at the current level before expansion: merge the
          // sequence counts and the known-dormant information.
          auto It = NextIndex.find(Child);
          if (It == NextIndex.end()) {
            // Broken internal invariant (a same-level node must be in
            // the frontier). A release-mode assert would silently read
            // garbage here; surface it as a diagnosed partial result
            // instead.
            PhaseDiagnostic D;
            D.Phase = P;
            D.Func = Root.Name;
            D.Message =
                "internal error: same-level node missing from the frontier";
            R.Diagnostics.push_back(std::move(D));
            Finish(StopReason::InternalError);
            return R;
          }
          Next[It->second].IncomingMask |= Bit;
          Next[It->second].Sequences += E.Sequences;
        }
        // Otherwise: a cross edge to an earlier-level node, which is
        // already expanded (or being expanded); nothing to enqueue. Any
        // cycle this may close is detected during weight computation.
      }
    }

    LS.NewNodes = Next.size();
    uint64_t NextBytes = 0;
    for (const FrontierEntry &E : Next) {
      LS.ActiveSequences += E.Sequences;
      NextBytes += entryFootprint(E);
    }
    if (LS.Attempted || LS.NewNodes)
      R.Levels.push_back(LS);
    if (!Next.empty())
      R.MaxActiveLength = Level;

    // Level boundary: the expanded frontier is released, the next one
    // charged, and every stop condition polled while the DAG is in a
    // self-consistent state.
    Gov.release(FrontierBytes);
    Gov.charge(NextBytes);
    FrontierBytes = NextBytes;

    StopReason Why = StopReason::Complete;
    if (LS.ActiveSequences > Config.MaxLevelSequences)
      Why = StopReason::LevelBudget;
    else if (R.Nodes.size() > Config.MaxTotalNodes)
      Why = StopReason::NodeBudget;
    else
      Why = Gov.check();
    if (Why != StopReason::Complete) {
      Finish(Why);
      if (isResumableStop(Why))
        Capture(std::move(Next), NextBytes);
      return R;
    }
    Frontier = std::move(Next);
  }

  Finish(StopReason::Complete);

  // Keep the BFS depth when the space is cyclic.
  if (!R.Cyclic)
    R.MaxActiveLength = longestPathLength(R);
  return R;
}

//===----------------------------------------------------------------------===//
// Level-parallel engine
//===----------------------------------------------------------------------===//
//
// Within one BFS level every frontier entry expands independently: the
// phases it attempts depend only on its own state and on masks resolved
// *before* the level started. The only shared mutable structure the
// sequential engine touches per attempt is the instance table and the DAG
// itself — so workers here do the expensive part (phase application +
// canonicalization) into private buffers, consulting a sharded concurrent
// table for read-only hits against earlier levels, and a single-threaded
// barrier then commits buffered discoveries in exact frontier order.
// Because node ids, edge order, statistics and memory charges are all
// assigned at the barrier in that order, the result is byte-identical to
// the sequential engine for any thread count.
//
// Two details need care:
//  * FaultPlan coordinates ("fail the Nth application of P") must not
//    depend on which worker wins a race. Attempts are predictable from
//    pre-level state (legal && !incoming && !resolved-at-level-start), so
//    per-entry application numbers are precomputed as prefix sums and
//    passed to PhaseGuard::attemptNth.
//  * Deadline/Cancelled stops are polled by workers at node granularity
//    (the whole point of stopping promptly); when one fires the in-flight
//    level is discarded entirely, leaving the self-consistent DAG of the
//    previous barrier. Budget stops (Level/Node/Memory) are evaluated
//    only at the barrier, in the sequential order, and match exactly.

namespace {

/// One buffered active edge discovered by a worker.
struct ActiveResult {
  PhaseId P = PhaseId::BranchChaining;
  /// Resolved target when the instance hit the table (an earlier-level
  /// node); UINT32_MAX when the instance is new-at-this-level and must be
  /// resolved at the barrier.
  uint32_t KnownTarget = UINT32_MAX;
  uint64_t CfHash = 0;
  PhaseState State{};
  /// The instance (prefix-sharing mode only; naive mode replays paths).
  Function Instance;
  CanonicalForm CF;
};

/// Everything one worker produced for one frontier entry.
struct TaskResult {
  uint16_t DormantBits = 0;
  uint16_t AttemptedBits = 0;
  uint64_t Attempted = 0;
  uint64_t PhaseApplications = 0;
  std::vector<ActiveResult> Active;
  std::vector<PhaseDiagnostic> Diags;
  /// Set when the entry was skipped because a worker observed a stop.
  bool Skipped = false;
};

} // namespace

EnumerationResult
Enumerator::runParallel(const Function &Root, EnumerationCheckpoint *From,
                        EnumerationCheckpoint *Out) const {
  EnumerationResult R;
  ResourceGovernor Gov;
  Gov.setDeadline(Config.DeadlineMs);
  Gov.setMemoryBudget(Config.MaxMemoryBytes);
  Gov.setStopToken(Config.Stop);
  InstanceTable Table;
  std::vector<std::vector<uint8_t>> NodeBytes;
  ThreadPool Pool(Config.Jobs - 1);

  auto Finish = [&](StopReason Why) {
    if (Why == StopReason::Complete && !R.Diagnostics.empty())
      Why = StopReason::VerifierFailure;
    R.Stop = Why;
    R.ApproxMemoryBytes = Gov.chargedBytes();
    computeWeights(R);
  };

  // Per-phase application counts so far, in sequential numbering (the
  // FaultPlan coordinate space). Persisted across levels.
  uint64_t AppCount[NumPhases] = {};
  const PhaseGuard::Options GuardOpts{Config.VerifyIr, Config.Faults};

  std::vector<FrontierEntry> Frontier;
  uint64_t FrontierBytes = 0;
  uint32_t Level = 0;

  // Checkpoint capture, mirroring the sequential engine. \p Counts is the
  // application numbering valid at the \p LevelCounter barrier (a
  // discarded in-flight level must hand back the pre-level snapshot).
  auto Capture = [&](std::vector<FrontierEntry> &&Pending,
                     uint64_t PendingBytes, uint32_t LevelCounter,
                     const uint64_t (&Counts)[NumPhases]) {
    if (!Out)
      return;
    Out->Valid = true;
    Out->Partial = R;
    Out->Frontier = std::move(Pending);
    Out->LevelCounter = LevelCounter;
    for (int P = 0; P != NumPhases; ++P)
      Out->AppCount[P] = Counts[P];
    Out->FrontierBytes = PendingBytes;
    Out->Paranoid = Config.ParanoidCompare;
    Out->NodeBytes = std::move(NodeBytes);
  };

  if (From) {
    R = std::move(From->Partial);
    for (uint32_t I = 0; I != R.Nodes.size(); ++I)
      Table.tryEmplace(R.Nodes[I].Hash, I);
    if (Config.ParanoidCompare)
      NodeBytes = std::move(From->NodeBytes);
    Frontier = std::move(From->Frontier);
    Level = From->LevelCounter;
    FrontierBytes = From->FrontierBytes;
    Gov.charge(R.ApproxMemoryBytes);
    for (int P = 0; P != NumPhases; ++P)
      AppCount[P] = From->AppCount[P];
    if (StopReason Why = Gov.check(); Why != StopReason::Complete) {
      Finish(Why);
      if (isResumableStop(Why))
        Capture(std::move(Frontier), FrontierBytes, Level, AppCount);
      return R;
    }
  } else {
    // Root interning, mirroring the sequential Intern() path.
    Function RootCopy = Root;
    {
      CanonicalForm CF = canonicalize(RootCopy, Config.ParanoidCompare,
                                      Config.RemapRegisters);
      DagNode N;
      N.Hash = CF.Hash;
      N.CodeSize = CF.Hash.InstCount;
      N.CfHash = controlFlowHash(RootCopy);
      R.Nodes.push_back(N);
      Gov.charge(sizeof(DagNode) + CF.Bytes.size());
      Table.tryEmplace(CF.Hash, 0);
      if (Config.ParanoidCompare)
        NodeBytes.push_back(std::move(CF.Bytes));
    }
    {
      FrontierEntry E;
      E.Node = 0;
      E.Instance = RootCopy;
      E.State = RootCopy.State;
      FrontierBytes = entryFootprint(E);
      Gov.charge(FrontierBytes);
      Frontier.push_back(std::move(E));
    }
    LevelStat L0;
    L0.Level = 0;
    L0.NewNodes = 1;
    L0.ActiveSequences = 1;
    R.Levels.push_back(L0);
  }

  while (!Frontier.empty()) {
    ++Level;
    LevelStat LS;
    LS.Level = Level;

    const size_t N = Frontier.size();

    // Pre-level snapshot of the application numbering: a Deadline or
    // Cancelled stop discards the in-flight level, and its checkpoint
    // must restart the numbering from here.
    uint64_t AppSnapshot[NumPhases];
    for (int P = 0; P != NumPhases; ++P)
      AppSnapshot[P] = AppCount[P];

    // Precompute the application number every would-be attempt gets in
    // sequential order: entry I attempts phase P iff P is legal for its
    // state and not on an incoming edge (a node is expanded exactly once
    // per run, so no mask is ever partially resolved at level start).
    std::vector<uint64_t> Base(N * NumPhases);
    for (size_t I = 0; I != N; ++I)
      for (int PI = 0; PI != NumPhases; ++PI) {
        Base[I * NumPhases + PI] = AppCount[PI];
        if (PM.isLegal(phaseByIndex(PI), Frontier[I].State) &&
            !(Frontier[I].IncomingMask & (1u << PI)))
          ++AppCount[PI];
      }

    std::vector<TaskResult> Results(N);
    // First stop observed by any worker this level (Deadline/Cancelled
    // only); Complete means the level ran through.
    std::atomic<uint8_t> LevelStop{
        static_cast<uint8_t>(StopReason::Complete)};

    Pool.parallelFor(N, [&](size_t I) {
      // Node-granularity stop poll: one in-flight stop discards the rest
      // of the level cheaply.
      if (LevelStop.load(std::memory_order_relaxed) !=
          static_cast<uint8_t>(StopReason::Complete)) {
        Results[I].Skipped = true;
        return;
      }
      if (StopReason Why = Gov.check(); Why == StopReason::Cancelled ||
                                        Why == StopReason::Deadline) {
        LevelStop.store(static_cast<uint8_t>(Why),
                        std::memory_order_relaxed);
        Results[I].Skipped = true;
        return;
      }

      const FrontierEntry &E = Frontier[I];
      TaskResult &T = Results[I];
      PhaseGuard Guard(PM, GuardOpts);
      // Per-worker-thread scratch: canonicalization of every attempt this
      // thread ever runs reuses the same remap arrays and byte buffer.
      static thread_local CanonicalScratch Scratch;
      // Same working-copy reuse as the sequential engine: one copy per
      // entry, rebuilt only after an active (or mutating-dormant) attempt.
      Function Work;
      bool WorkValid = false;
      for (int PI = 0; PI != NumPhases; ++PI) {
        PhaseId P = phaseByIndex(PI);
        const uint16_t Bit = static_cast<uint16_t>(1u << PI);
        if (!PM.isLegal(P, E.State)) {
          T.DormantBits |= Bit;
          continue;
        }
        if (E.IncomingMask & Bit) {
          T.DormantBits |= Bit;
          continue;
        }
        // The sequential engine's already-resolved check is a no-op here:
        // each node enters the frontier exactly once, and this worker is
        // its only expander.

        if (Config.NaiveReapply) {
          Work = Root;
          WorkValid = false;
          for (PhaseId Prev : E.Path) {
            PM.attempt(Prev, Work);
            ++T.PhaseApplications;
          }
        } else if (!WorkValid) {
          Work = E.Instance;
          WorkValid = true;
        }

        ++T.Attempted;
        ++T.PhaseApplications;
        T.AttemptedBits |= Bit;
        PhaseGuard::Outcome Out =
            Guard.attemptNth(P, Work, Base[I * NumPhases + PI] + 1);
        if (Out != PhaseGuard::Outcome::Active) {
          T.DormantBits |= Bit;
          if (WorkValid && !identicalInstance(Work, E.Instance))
            WorkValid = false;
          continue;
        }
        WorkValid = false;
        ActiveResult A;
        A.P = P;
        A.CF = canonicalize(Work, Scratch, Config.ParanoidCompare,
                            Config.RemapRegisters);
        if (std::optional<uint32_t> Hit = Table.lookup(A.CF.Hash)) {
          // An earlier-level (or root) node: ids already published. Nodes
          // discovered *this* level are not in the table yet, so this can
          // never alias an uncommitted id.
          A.KnownTarget = *Hit;
          if (!Config.ParanoidCompare)
            A.CF.Bytes.clear();
        } else {
          A.CfHash = controlFlowHash(Work);
          A.State = Work.State;
          if (!Config.NaiveReapply)
            A.Instance = std::move(Work);
        }
        T.Active.push_back(std::move(A));
      }
      T.Diags = Guard.takeDiagnostics();
    });

    if (StopReason Why = static_cast<StopReason>(
            LevelStop.load(std::memory_order_relaxed));
        Why != StopReason::Complete) {
      // Discard the in-flight level wholesale: the DAG still describes
      // the space up to the previous barrier, self-consistently. (The
      // sequential engine, polling only at barriers, would have finished
      // this level first — the documented Deadline/Cancelled deviation.)
      // The checkpoint re-expands this level from the previous barrier.
      Finish(Why);
      if (isResumableStop(Why))
        Capture(std::move(Frontier), FrontierBytes, Level - 1, AppSnapshot);
      return R;
    }

    // Barrier commit, in exact frontier order.
    std::unordered_map<uint32_t, size_t> NextIndex;
    std::vector<FrontierEntry> Next;
    for (size_t I = 0; I != N; ++I) {
      const FrontierEntry &E = Frontier[I];
      TaskResult &T = Results[I];
      R.Nodes[E.Node].DormantMask |= T.DormantBits;
      R.Nodes[E.Node].AttemptedMask |= T.AttemptedBits;
      R.AttemptedPhases += T.Attempted;
      R.PhaseApplications += T.PhaseApplications;
      LS.Attempted += T.Attempted;
      for (ActiveResult &A : T.Active) {
        const uint16_t Bit =
            static_cast<uint16_t>(1u << static_cast<int>(A.P));
        ++LS.Active;
        uint32_t Child;
        bool IsNew = false;
        if (A.KnownTarget != UINT32_MAX) {
          Child = A.KnownTarget;
          if (Config.ParanoidCompare && NodeBytes[Child] != A.CF.Bytes)
            ++R.HashCollisions;
        } else {
          auto [Id, Inserted] = Table.tryEmplace(
              A.CF.Hash, static_cast<uint32_t>(R.Nodes.size()));
          Child = Id;
          IsNew = Inserted;
          if (Inserted) {
            DagNode Nd;
            Nd.Hash = A.CF.Hash;
            Nd.CodeSize = A.CF.Hash.InstCount;
            Nd.CfHash = A.CfHash;
            Nd.Level = Level;
            R.Nodes.push_back(Nd);
            Gov.charge(sizeof(DagNode) + A.CF.Bytes.size());
            if (Config.ParanoidCompare)
              NodeBytes.push_back(std::move(A.CF.Bytes));
          } else if (Config.ParanoidCompare &&
                     NodeBytes[Child] != A.CF.Bytes) {
            ++R.HashCollisions;
          }
        }
        R.Nodes[E.Node].ActiveMask |= Bit;
        R.Nodes[E.Node].Edges.push_back({A.P, Child});
        Gov.charge(sizeof(DagEdge));
        if (IsNew) {
          FrontierEntry NE;
          NE.Node = Child;
          if (Config.NaiveReapply) {
            NE.Path = E.Path;
            NE.Path.push_back(A.P);
          } else {
            NE.Instance = std::move(A.Instance);
          }
          NE.State = A.State;
          NE.IncomingMask = Bit;
          NE.Parent = E.Node;
          NE.ViaPhase = A.P;
          NE.Sequences = E.Sequences;
          NextIndex[Child] = Next.size();
          Next.push_back(std::move(NE));
        } else if (R.Nodes[Child].Level == Level) {
          auto It = NextIndex.find(Child);
          if (It == NextIndex.end()) {
            PhaseDiagnostic D;
            D.Phase = A.P;
            D.Func = Root.Name;
            D.Message =
                "internal error: same-level node missing from the frontier";
            R.Diagnostics.push_back(std::move(D));
            Finish(StopReason::InternalError);
            return R;
          }
          Next[It->second].IncomingMask |= Bit;
          Next[It->second].Sequences += E.Sequences;
        }
      }
      for (PhaseDiagnostic &D : T.Diags)
        R.Diagnostics.push_back(std::move(D));
    }

    LS.NewNodes = Next.size();
    uint64_t NextBytes = 0;
    for (const FrontierEntry &E : Next) {
      LS.ActiveSequences += E.Sequences;
      NextBytes += entryFootprint(E);
    }
    if (LS.Attempted || LS.NewNodes)
      R.Levels.push_back(LS);
    if (!Next.empty())
      R.MaxActiveLength = Level;

    Gov.release(FrontierBytes);
    Gov.charge(NextBytes);
    FrontierBytes = NextBytes;

    StopReason Why = StopReason::Complete;
    if (LS.ActiveSequences > Config.MaxLevelSequences)
      Why = StopReason::LevelBudget;
    else if (R.Nodes.size() > Config.MaxTotalNodes)
      Why = StopReason::NodeBudget;
    else
      Why = Gov.check();
    if (Why != StopReason::Complete) {
      Finish(Why);
      if (isResumableStop(Why))
        Capture(std::move(Next), NextBytes, Level, AppCount);
      return R;
    }
    Frontier = std::move(Next);
  }

  Finish(StopReason::Complete);
  if (!R.Cyclic)
    R.MaxActiveLength = longestPathLength(R);
  return R;
}

void pose::computeWeights(EnumerationResult &R) {
  const size_t N = R.Nodes.size();
  // Kahn's algorithm on reversed edges: process nodes whose children are
  // all weighted.
  std::vector<uint32_t> PendingChildren(N, 0);
  std::vector<std::vector<uint32_t>> Parents(N);
  for (size_t I = 0; I != N; ++I) {
    PendingChildren[I] = static_cast<uint32_t>(R.Nodes[I].Edges.size());
    for (const DagEdge &E : R.Nodes[I].Edges)
      Parents[E.To].push_back(static_cast<uint32_t>(I));
  }
  std::vector<uint32_t> Ready;
  for (size_t I = 0; I != N; ++I)
    if (PendingChildren[I] == 0)
      Ready.push_back(static_cast<uint32_t>(I));
  size_t Processed = 0;
  while (!Ready.empty()) {
    uint32_t Id = Ready.back();
    Ready.pop_back();
    ++Processed;
    DagNode &Node = R.Nodes[Id];
    if (Node.isLeaf()) {
      Node.Weight = 1;
    } else {
      Node.Weight = 0;
      for (const DagEdge &E : Node.Edges)
        Node.Weight += R.Nodes[E.To].Weight;
    }
    for (uint32_t P : Parents[Id])
      if (--PendingChildren[P] == 0)
        Ready.push_back(P);
  }
  if (Processed != N) {
    // Cycle: give unprocessed nodes weight 1 so downstream statistics
    // stay finite, and flag the result.
    R.Cyclic = true;
    for (size_t I = 0; I != N; ++I)
      if (PendingChildren[I] != 0 && R.Nodes[I].Weight == 0)
        R.Nodes[I].Weight = 1;
  }
}
