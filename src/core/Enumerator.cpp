//===- Enumerator.cpp - Exhaustive phase order space enumeration --------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/core/Enumerator.h"

#include "src/ir/Function.h"
#include "src/opt/PhaseManager.h"

#include <algorithm>
#include <unordered_map>

using namespace pose;

namespace {

/// Frontier entry: a node discovered at the current level, waiting to be
/// expanded, with enough state to (re)produce its function instance.
struct FrontierEntry {
  uint32_t Node;
  /// Prefix-sharing mode: the instance itself.
  Function Instance;
  /// Naive mode: one active sequence reaching the node (replayed from the
  /// root for every attempt).
  std::vector<PhaseId> Path;
  /// Compilation milestones of the instance (used for legality checks,
  /// valid in both modes — naive mode leaves Instance empty).
  PhaseState State;
  /// Phases along incoming edges; known dormant without attempting (an
  /// active phase is never successful twice consecutively).
  uint16_t IncomingMask = 0;
  /// First-discovery provenance, for independence-based prediction.
  uint32_t Parent = UINT32_MAX;
  PhaseId ViaPhase = PhaseId::BranchChaining;
  /// Number of distinct active sequences reaching this node.
  uint64_t Sequences = 1;
};

/// Approximate heap footprint of one function instance, for the memory
/// accounting of the resource governor. Deterministic by construction
/// (derived from instruction/slot counts, never from the allocator).
uint64_t functionFootprint(const Function &F) {
  uint64_t Bytes = sizeof(Function) + F.Slots.size() * sizeof(StackSlot);
  for (const BasicBlock &B : F.Blocks)
    Bytes += sizeof(BasicBlock) + B.Insts.size() * sizeof(Rtl);
  return Bytes;
}

uint64_t entryFootprint(const FrontierEntry &E) {
  return sizeof(FrontierEntry) + functionFootprint(E.Instance) +
         E.Path.size() * sizeof(PhaseId);
}

} // namespace

EnumerationResult Enumerator::enumerate(const Function &Root) const {
  EnumerationResult R;
  ResourceGovernor Gov;
  Gov.setDeadline(Config.DeadlineMs);
  Gov.setMemoryBudget(Config.MaxMemoryBytes);
  Gov.setStopToken(Config.Stop);
  PhaseGuard Guard(PM, {Config.VerifyIr, Config.Faults});
  std::unordered_map<HashTriple, uint32_t, HashTripleHasher> Seen;
  // Paranoid mode: canonical bytes per node for exact comparison.
  std::vector<std::vector<uint8_t>> NodeBytes;

  // Seals the result: collects guard diagnostics, resolves the stop
  // reason (a run that finished but pruned edges after rollbacks is not
  // the complete space), and weights the — possibly partial — DAG.
  auto Finish = [&](StopReason Why) {
    for (PhaseDiagnostic &D : Guard.takeDiagnostics())
      R.Diagnostics.push_back(std::move(D));
    if (Why == StopReason::Complete && !R.Diagnostics.empty())
      Why = StopReason::VerifierFailure;
    R.Stop = Why;
    R.ApproxMemoryBytes = Gov.chargedBytes();
    computeWeights(R);
  };

  auto Intern = [&](const Function &F) -> std::pair<uint32_t, bool> {
    CanonicalForm CF =
        canonicalize(F, Config.ParanoidCompare, Config.RemapRegisters);
    auto [It, Inserted] =
        Seen.emplace(CF.Hash, static_cast<uint32_t>(R.Nodes.size()));
    if (Inserted) {
      DagNode N;
      N.Hash = CF.Hash;
      N.CodeSize = CF.Hash.InstCount;
      N.CfHash = controlFlowHash(F);
      R.Nodes.push_back(N);
      Gov.charge(sizeof(DagNode) + CF.Bytes.size());
      if (Config.ParanoidCompare)
        NodeBytes.push_back(std::move(CF.Bytes));
      return {It->second, true};
    }
    if (Config.ParanoidCompare && NodeBytes[It->second] != CF.Bytes)
      ++R.HashCollisions;
    return {It->second, false};
  };

  Function RootCopy = Root;
  auto [RootId, RootNew] = Intern(RootCopy);
  (void)RootNew;
  R.Nodes[RootId].Level = 0;

  std::vector<FrontierEntry> Frontier;
  uint64_t FrontierBytes = 0;
  {
    FrontierEntry E;
    E.Node = RootId;
    E.Instance = RootCopy;
    E.State = RootCopy.State;
    FrontierBytes = entryFootprint(E);
    Gov.charge(FrontierBytes);
    Frontier.push_back(std::move(E));
  }
  {
    LevelStat L0;
    L0.Level = 0;
    L0.NewNodes = 1;
    L0.ActiveSequences = 1;
    R.Levels.push_back(L0);
  }

  uint32_t Level = 0;
  while (!Frontier.empty()) {
    ++Level;
    LevelStat LS;
    LS.Level = Level;

    // Next-level frontier keyed by node id (merging sequence counts and
    // incoming-phase masks when several edges reach the same instance).
    std::unordered_map<uint32_t, size_t> NextIndex;
    std::vector<FrontierEntry> Next;

    for (FrontierEntry &E : Frontier) {
      for (int PI = 0; PI != NumPhases; ++PI) {
        PhaseId P = phaseByIndex(PI);
        const uint16_t Bit = static_cast<uint16_t>(1u << PI);
        // NOTE: R.Nodes may reallocate inside Intern; always re-index.
        if (!PM.isLegal(P, E.State)) {
          R.Nodes[E.Node].DormantMask |= Bit;
          continue;
        }
        if (E.IncomingMask & Bit) {
          // Known dormant: the phase was just active producing this node
          // and no phase succeeds twice consecutively.
          R.Nodes[E.Node].DormantMask |= Bit;
          continue;
        }
        if ((R.Nodes[E.Node].ActiveMask | R.Nodes[E.Node].DormantMask) &
            Bit) {
          // Already resolved through an earlier sequence arriving at the
          // same node.
          continue;
        }

        // Independence-based prediction (Section 7 future work): if the
        // incoming phase x and the candidate phase y always commute, the
        // result of y here equals the result of x after y at the parent —
        // both edges of which may already be known.
        if (Config.UseIndependencePruning && E.Parent != UINT32_MAX &&
            Config.TrainedIndependence[static_cast<int>(E.ViaPhase)][PI]) {
          uint32_t D = R.Nodes[E.Parent].childVia(P);
          if (D != UINT32_MAX) {
            uint32_t Predicted = R.Nodes[D].childVia(E.ViaPhase);
            if (Predicted != UINT32_MAX) {
              ++R.PredictedEdges;
              ++LS.Active;
              R.Nodes[E.Node].ActiveMask |= Bit;
              R.Nodes[E.Node].Edges.push_back({P, Predicted});
              Gov.charge(sizeof(DagEdge));
              if (R.Nodes[Predicted].Level == Level) {
                auto It = NextIndex.find(Predicted);
                if (It != NextIndex.end()) {
                  Next[It->second].IncomingMask |= Bit;
                  Next[It->second].Sequences += E.Sequences;
                }
              }
              continue;
            }
          }
        }

        // Produce the working copy: prefix sharing keeps the instance in
        // memory; naive mode replays the whole prefix from the root.
        Function Work;
        if (Config.NaiveReapply) {
          Work = Root;
          for (PhaseId Prev : E.Path) {
            PM.attempt(Prev, Work);
            ++R.PhaseApplications;
          }
        } else {
          Work = E.Instance;
        }

        ++R.AttemptedPhases;
        ++R.PhaseApplications;
        ++LS.Attempted;
        R.Nodes[E.Node].AttemptedMask |= Bit;
        PhaseGuard::Outcome Out = Guard.attempt(P, Work);
        if (Out != PhaseGuard::Outcome::Active) {
          // Dormant — or rolled back after a verifier failure, which
          // prunes the edge and ends this branch of the space the same
          // way (the diagnostic is already recorded in the guard).
          R.Nodes[E.Node].DormantMask |= Bit;
          continue;
        }
        ++LS.Active;
        auto [Child, IsNew] = Intern(Work);
        R.Nodes[E.Node].ActiveMask |= Bit;
        R.Nodes[E.Node].Edges.push_back({P, Child});
        Gov.charge(sizeof(DagEdge));
        if (IsNew) {
          R.Nodes[Child].Level = Level;
          FrontierEntry NE;
          NE.Node = Child;
          if (Config.NaiveReapply) {
            NE.Path = E.Path;
            NE.Path.push_back(P);
          } else {
            NE.Instance = Work;
          }
          NE.State = Work.State;
          NE.IncomingMask = Bit;
          NE.Parent = E.Node;
          NE.ViaPhase = P;
          NE.Sequences = E.Sequences;
          NextIndex[Child] = Next.size();
          Next.push_back(std::move(NE));
        } else if (R.Nodes[Child].Level == Level) {
          // Rediscovered at the current level before expansion: merge the
          // sequence counts and the known-dormant information.
          auto It = NextIndex.find(Child);
          if (It == NextIndex.end()) {
            // Broken internal invariant (a same-level node must be in
            // the frontier). A release-mode assert would silently read
            // garbage here; surface it as a diagnosed partial result
            // instead.
            PhaseDiagnostic D;
            D.Phase = P;
            D.Func = Root.Name;
            D.Message =
                "internal error: same-level node missing from the frontier";
            R.Diagnostics.push_back(std::move(D));
            Finish(StopReason::InternalError);
            return R;
          }
          Next[It->second].IncomingMask |= Bit;
          Next[It->second].Sequences += E.Sequences;
        }
        // Otherwise: a cross edge to an earlier-level node, which is
        // already expanded (or being expanded); nothing to enqueue. Any
        // cycle this may close is detected during weight computation.
      }
    }

    LS.NewNodes = Next.size();
    uint64_t NextBytes = 0;
    for (const FrontierEntry &E : Next) {
      LS.ActiveSequences += E.Sequences;
      NextBytes += entryFootprint(E);
    }
    if (LS.Attempted || LS.NewNodes)
      R.Levels.push_back(LS);
    if (!Next.empty())
      R.MaxActiveLength = Level;

    // Level boundary: the expanded frontier is released, the next one
    // charged, and every stop condition polled while the DAG is in a
    // self-consistent state.
    Gov.release(FrontierBytes);
    Gov.charge(NextBytes);
    FrontierBytes = NextBytes;

    if (LS.ActiveSequences > Config.MaxLevelSequences) {
      Finish(StopReason::LevelBudget);
      return R;
    }
    if (R.Nodes.size() > Config.MaxTotalNodes) {
      Finish(StopReason::NodeBudget);
      return R;
    }
    if (StopReason Why = Gov.check(); Why != StopReason::Complete) {
      Finish(Why);
      return R;
    }
    Frontier = std::move(Next);
  }

  Finish(StopReason::Complete);

  // "Len": the largest active sequence length is the longest path in the
  // DAG (cross edges can make it exceed the BFS depth). Valid only when
  // the space is acyclic; otherwise keep the BFS depth.
  if (!R.Cyclic) {
    const size_t N = R.Nodes.size();
    std::vector<uint32_t> InDegree(N, 0), Dist(N, 0);
    for (const DagNode &Nd : R.Nodes)
      for (const DagEdge &E : Nd.Edges)
        ++InDegree[E.To];
    std::vector<uint32_t> Ready;
    for (size_t I = 0; I != N; ++I)
      if (InDegree[I] == 0)
        Ready.push_back(static_cast<uint32_t>(I));
    uint32_t Longest = 0;
    while (!Ready.empty()) {
      uint32_t Id = Ready.back();
      Ready.pop_back();
      for (const DagEdge &E : R.Nodes[Id].Edges) {
        if (Dist[E.To] < Dist[Id] + 1) {
          Dist[E.To] = Dist[Id] + 1;
          Longest = std::max(Longest, Dist[E.To]);
        }
        if (--InDegree[E.To] == 0)
          Ready.push_back(E.To);
      }
    }
    R.MaxActiveLength = Longest;
  }
  return R;
}

void pose::computeWeights(EnumerationResult &R) {
  const size_t N = R.Nodes.size();
  // Kahn's algorithm on reversed edges: process nodes whose children are
  // all weighted.
  std::vector<uint32_t> PendingChildren(N, 0);
  std::vector<std::vector<uint32_t>> Parents(N);
  for (size_t I = 0; I != N; ++I) {
    PendingChildren[I] = static_cast<uint32_t>(R.Nodes[I].Edges.size());
    for (const DagEdge &E : R.Nodes[I].Edges)
      Parents[E.To].push_back(static_cast<uint32_t>(I));
  }
  std::vector<uint32_t> Ready;
  for (size_t I = 0; I != N; ++I)
    if (PendingChildren[I] == 0)
      Ready.push_back(static_cast<uint32_t>(I));
  size_t Processed = 0;
  while (!Ready.empty()) {
    uint32_t Id = Ready.back();
    Ready.pop_back();
    ++Processed;
    DagNode &Node = R.Nodes[Id];
    if (Node.isLeaf()) {
      Node.Weight = 1;
    } else {
      Node.Weight = 0;
      for (const DagEdge &E : Node.Edges)
        Node.Weight += R.Nodes[E.To].Weight;
    }
    for (uint32_t P : Parents[Id])
      if (--PendingChildren[P] == 0)
        Ready.push_back(P);
  }
  if (Processed != N) {
    // Cycle: give unprocessed nodes weight 1 so downstream statistics
    // stay finite, and flag the result.
    R.Cyclic = true;
    for (size_t I = 0; I != N; ++I)
      if (PendingChildren[I] != 0 && R.Nodes[I].Weight == 0)
        R.Nodes[I].Weight = 1;
  }
}
