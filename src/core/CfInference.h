//===- CfInference.h - Dynamic counts from control-flow classes -*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 7 proposal, implemented: "The small number of
/// distinct control flows of functions (see column CF) can be used to
/// infer the dynamic instruction count of one execution from another."
///
/// Function instances that share a control flow execute each basic block
/// the same number of times on the same input; their dynamic instruction
/// counts differ only through per-block instruction counts. So the
/// evaluator simulates *one representative per control-flow class* with
/// block-frequency profiling, and computes every other instance's count as
///
///     rest-of-program + sum over blocks (frequency[b] * size[b]).
///
/// Evaluating all N instances of a function then costs CF simulations
/// instead of N — on the workload suite, CF is 1-22 while N reaches
/// thousands (Table 3).
///
//===----------------------------------------------------------------------===//

#ifndef POSE_CORE_CFINFERENCE_H
#define POSE_CORE_CFINFERENCE_H

#include "src/core/DagPaths.h"
#include "src/core/Enumerator.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pose {

class Function;
class Module;
class PhaseManager;

/// Evaluates the dynamic instruction count of every instance in an
/// enumerated space, simulating one representative per control-flow
/// class.
class CfCountEvaluator {
public:
  /// \p M supplies the surrounding program; \p Entry (usually "main") is
  /// executed per evaluation. \p FunctionName is the function whose
  /// instances are evaluated; \p Root its unoptimized body.
  CfCountEvaluator(const Module &M, std::string Entry,
                   std::string FunctionName, const Function &Root,
                   const PhaseManager &PM);

  /// Result of evaluating one instance.
  struct Count {
    bool Valid = false;      ///< False if the representative run failed.
    uint64_t Dynamic = 0;    ///< Whole-program dynamic instructions.
    bool Simulated = false;  ///< True for class representatives.
  };

  /// Evaluates node \p Id of \p R. The first instance of each control
  /// flow class is simulated (with profiling); subsequent ones are
  /// inferred from the cached block frequencies.
  Count evaluate(const EnumerationResult &R, const DagPaths &Paths,
                 uint32_t Id);

  /// Number of actual simulations performed so far.
  size_t simulations() const { return Simulations; }

private:
  const Module &M;
  std::string Entry;
  std::string FunctionName;
  const Function &Root;
  const PhaseManager &PM;
  size_t Simulations = 0;

  /// Cached per-control-flow profile: block frequencies by *non-empty
  /// block ordinal*, plus the dynamic count of everything outside the
  /// studied function.
  struct CfProfile {
    bool Valid = false;
    std::vector<uint64_t> Frequencies;
    uint64_t RestOfProgram = 0;
  };
  std::map<uint64_t, CfProfile> Profiles;
};

} // namespace pose

#endif // POSE_CORE_CFINFERENCE_H
