//===- InstanceTable.cpp - Sharded concurrent instance table ------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/core/InstanceTable.h"

using namespace pose;

InstanceTable::InstanceTable(unsigned ShardCount) {
  unsigned N = 1;
  while (N < ShardCount && N < (1u << 16))
    N <<= 1;
  Shards = std::make_unique<Shard[]>(N);
  Mask = N - 1;
}

std::optional<uint32_t> InstanceTable::lookup(const HashTriple &T) const {
  const Shard &S = shardFor(T);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Map.find(T);
  if (It == S.Map.end())
    return std::nullopt;
  return It->second;
}

std::pair<uint32_t, bool> InstanceTable::tryEmplace(const HashTriple &T,
                                                    uint32_t Id) {
  Shard &S = shardFor(T);
  std::lock_guard<std::mutex> Lock(S.M);
  auto [It, Inserted] = S.Map.emplace(T, Id);
  return {It->second, Inserted};
}

size_t InstanceTable::size() const {
  size_t N = 0;
  for (uint32_t I = 0; I <= Mask; ++I) {
    std::lock_guard<std::mutex> Lock(Shards[I].M);
    N += Shards[I].Map.size();
  }
  return N;
}
