//===- DagPaths.h - Paths and instance materialization ---------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reconstructs, for every node of an enumerated DAG, one active phase
/// sequence reaching it from the root, and materializes the corresponding
/// function instance by replaying the sequence. This is how consumers of
/// an EnumerationResult (optimal-sequence search, dynamic-count
/// evaluation, control-flow inference) turn DAG nodes back into code: the
/// enumerator deliberately keeps instances only for its frontier
/// (Section 4.2.1 — storing every instance "may be too large to store in
/// memory").
///
//===----------------------------------------------------------------------===//

#ifndef POSE_CORE_DAGPATHS_H
#define POSE_CORE_DAGPATHS_H

#include "src/core/Enumerator.h"

#include <functional>
#include <string>
#include <vector>

namespace pose {

class Function;
class PhaseManager;
struct FaultPlan;

/// BFS spanning tree over an enumerated DAG.
class DagPaths {
public:
  explicit DagPaths(const EnumerationResult &R);

  /// The phase sequence of one shortest active path from the root to
  /// \p Node (empty for the root).
  std::vector<PhaseId> pathTo(uint32_t Node) const;

  /// The same sequence as designation letters ("sckh").
  std::string sequenceTo(uint32_t Node) const;

  /// Replays pathTo(Node) on a copy of \p Root. Asserts every phase on
  /// the path is active (it was during enumeration; phases are
  /// deterministic). When \p Faults carries wrong-code faults, the same
  /// mutation the PhaseGuard performed during enumeration is replayed
  /// after each active application of a faulted phase, so materialized
  /// instances match the enumerated (and canonicalized) ones exactly.
  Function materialize(const Function &Root, const PhaseManager &PM,
                       uint32_t Node,
                       const FaultPlan *Faults = nullptr) const;

  /// Visits every node of the DAG exactly once, depth-first over the BFS
  /// spanning tree, calling \p Fn(node id, instance) with the node's
  /// materialized function. One phase application per spanning-tree edge
  /// instead of one full path replay per node — for a DAG of N nodes with
  /// average depth D this is O(N) applications, not O(N*D). Visit order
  /// is deterministic (children in ascending node id), but NOT ascending
  /// id order; callers index per-node state by id. The instance reference
  /// is only valid during the callback.
  void forEachInstance(
      const Function &Root, const PhaseManager &PM, const FaultPlan *Faults,
      const std::function<void(uint32_t, const Function &)> &Fn) const;

private:
  std::vector<int> From;
  std::vector<PhaseId> Via;
};

} // namespace pose

#endif // POSE_CORE_DAGPATHS_H
