//===- Function.h - Basic blocks, functions, modules ----------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Container classes for RTL code. A Function owns its basic blocks in
/// layout order; block fall-through is implicit (a block without a final
/// Jump/Ret continues into the next block in layout order), exactly as in
/// VPO. Functions are value types: the exhaustive enumerator copies them
/// freely to hold one function instance per frontier node.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_IR_FUNCTION_H
#define POSE_IR_FUNCTION_H

#include "src/ir/Rtl.h"

#include <string>
#include <vector>

namespace pose {

/// A basic block: a label plus straight-line RTLs. Control transfers may
/// appear only as the last instruction.
struct BasicBlock {
  /// Stable label number unique within the function. Never reused, so
  /// branch operands stay valid as blocks are added and removed.
  int32_t Label = 0;
  std::vector<Rtl> Insts;

  BasicBlock() = default;
  explicit BasicBlock(int32_t L) : Label(L) {}

  bool empty() const { return Insts.empty(); }

  /// Returns the terminating control transfer, or nullptr if the block
  /// falls through.
  const Rtl *terminator() const {
    if (!Insts.empty() && Insts.back().isControl())
      return &Insts.back();
    return nullptr;
  }
  Rtl *terminator() {
    if (!Insts.empty() && Insts.back().isControl())
      return &Insts.back();
    return nullptr;
  }
};

/// Static description of one stack slot (local variable, parameter, or
/// compiler temporary) of a function. Addresses are in words: the MC
/// machine is word-addressed.
struct StackSlot {
  std::string Name;
  int32_t SizeWords = 1;
  /// True for arrays (or any slot whose address escapes): the register
  /// allocator may never promote such a slot to a register.
  bool IsArray = false;
  /// True for incoming parameters; the caller (or simulator) stores the
  /// argument value into the slot before entry.
  bool IsParam = false;
};

/// Per-function compiler state that is not derivable from the code bytes
/// but participates in instance identity (see Canonicalizer): which
/// compulsory/ordering milestones have happened.
struct PhaseState {
  /// Pseudo registers have been mapped to hardware registers. Evaluation
  /// order determination (phase o) is illegal once this is set.
  bool RegsAssigned = false;
  /// Register allocation (phase k) has been active at least once. Loop
  /// unrolling (g) and loop transformations (l) are illegal before this,
  /// since they analyze values in registers (paper, Section 3).
  bool RegAllocDone = false;

  uint8_t encode() const {
    return static_cast<uint8_t>(RegsAssigned) |
           static_cast<uint8_t>(RegAllocDone << 1);
  }
  bool operator==(const PhaseState &O) const {
    return RegsAssigned == O.RegsAssigned && RegAllocDone == O.RegAllocDone;
  }
};

/// A function: stack slots, blocks in layout order, and phase state.
/// Copyable by design (one instance per enumeration frontier node).
class Function {
public:
  std::string Name;
  /// Number of leading slots that are parameters (slot i = parameter i).
  int32_t NumParams = 0;
  /// True if the function returns a value.
  bool ReturnsValue = false;
  std::vector<StackSlot> Slots;
  std::vector<BasicBlock> Blocks;
  PhaseState State;

  /// Allocates a fresh pseudo register.
  RegNum makePseudo() { return NextPseudo++; }

  /// Returns one past the highest pseudo register ever allocated.
  RegNum pseudoLimit() const { return NextPseudo; }

  /// Allocates a fresh, never-used block label.
  int32_t makeLabel() { return NextLabel++; }

  /// Appends a new block with a fresh label and returns its index.
  size_t addBlock() {
    Blocks.emplace_back(makeLabel());
    return Blocks.size() - 1;
  }

  /// Adds a stack slot and returns its index.
  int32_t addSlot(StackSlot S) {
    Slots.push_back(std::move(S));
    return static_cast<int32_t>(Slots.size()) - 1;
  }

  /// Returns the index of the block whose label is \p Label, or -1.
  int findBlock(int32_t Label) const {
    for (size_t I = 0, E = Blocks.size(); I != E; ++I)
      if (Blocks[I].Label == Label)
        return static_cast<int>(I);
    return -1;
  }

  /// Total number of instructions (the paper's code-size measure).
  size_t instructionCount() const {
    size_t N = 0;
    for (const BasicBlock &B : Blocks)
      N += B.Insts.size();
    return N;
  }

  /// Ensures NextPseudo/NextLabel are past every number used in the body.
  /// Call after constructing a function by hand (e.g. in tests).
  void recomputeCounters();

  /// Returns one past the highest block label ever allocated.
  int32_t labelLimit() const { return NextLabel; }

  /// Restores both allocation counters exactly. Deserialized instances
  /// (checkpoint resume) must hand out the same fresh registers and
  /// labels the original would have; recomputeCounters() only guarantees
  /// "past every number still used", which is weaker when an allocated
  /// number was later optimized away.
  void setAllocationCounters(RegNum PseudoLimit, int32_t LabelLimit) {
    NextPseudo = PseudoLimit;
    NextLabel = LabelLimit;
  }

private:
  RegNum NextPseudo = FirstPseudoReg;
  int32_t NextLabel = 0;
};

/// Kinds of module-level globals.
enum class GlobalKind : uint8_t {
  Var,      ///< Global variable (scalar or array of words).
  Func,     ///< Function defined in this module.
  External, ///< External function (simulator builtin, e.g. "out").
};

/// A module-level symbol: a global variable or a function.
struct Global {
  std::string Name;
  GlobalKind Kind = GlobalKind::Var;
  /// For variables: size in words.
  int32_t SizeWords = 1;
  /// For variables: declared as an array (must be subscripted).
  bool IsArray = false;
  /// For variables: initial words (zero-padded to SizeWords).
  std::vector<int32_t> Init;
  /// For functions: index into Module::Functions.
  int32_t FuncIndex = -1;
  /// For functions: number of parameters (for call checking).
  int32_t NumParams = 0;
  /// For functions: whether a value is returned.
  bool ReturnsValue = false;
};

/// A translation unit: globals plus function bodies. The compiler optimizes
/// each function individually and in isolation (as VPO does); the Module
/// supplies symbol context and lets the simulator run whole programs.
class Module {
public:
  std::vector<Global> Globals;
  std::vector<Function> Functions;

  /// Returns the global id of the symbol named \p Name, or -1.
  int findGlobal(const std::string &Name) const {
    for (size_t I = 0, E = Globals.size(); I != E; ++I)
      if (Globals[I].Name == Name)
        return static_cast<int>(I);
    return -1;
  }

  /// Returns the function body for global id \p Id, or nullptr if \p Id is
  /// not a defined function.
  const Function *functionFor(int32_t Id) const {
    if (Id < 0 || static_cast<size_t>(Id) >= Globals.size())
      return nullptr;
    const Global &G = Globals[Id];
    if (G.Kind != GlobalKind::Func || G.FuncIndex < 0)
      return nullptr;
    return &Functions[G.FuncIndex];
  }
  Function *functionFor(int32_t Id) {
    return const_cast<Function *>(
        static_cast<const Module *>(this)->functionFor(Id));
  }
};

/// Lightweight CFG view over a function's blocks (indices, not pointers).
/// Rebuild after any structural change; building is O(blocks).
struct Cfg {
  std::vector<std::vector<int>> Succs;
  std::vector<std::vector<int>> Preds;

  static Cfg build(const Function &F);

  /// Returns true if block \p From may fall through into the next block.
  static bool fallsThrough(const BasicBlock &B) {
    const Rtl *T = B.terminator();
    return !T || T->Opcode == Op::Branch;
  }
};

} // namespace pose

#endif // POSE_IR_FUNCTION_H
