//===- Verify.h - IR structural invariants ---------------------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural verification of RTL functions. Phases must leave functions in
/// a verifiable state; the test suite runs the verifier after every phase
/// application. Returns a diagnostic string instead of asserting so tests
/// can report what broke.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_IR_VERIFY_H
#define POSE_IR_VERIFY_H

#include <string>

namespace pose {

class Function;
class Module;

/// Checks structural invariants of \p F: control transfers only terminate
/// blocks, all branch targets resolve, the last block cannot fall off the
/// end, operand kinds fit their opcode, slot and label references are in
/// range. Returns an empty string if the function is well formed, otherwise
/// a description of the first problem found.
std::string verifyFunction(const Function &F);

/// Verifies every function in \p M plus module-level invariants (global
/// ids in range, call arity matching the callee). Returns an empty string
/// on success.
std::string verifyModule(const Module &M);

} // namespace pose

#endif // POSE_IR_VERIFY_H
