//===- Function.cpp - Basic blocks, functions, modules -------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/ir/Function.h"

#include <algorithm>

using namespace pose;

void Function::recomputeCounters() {
  RegNum MaxReg = FirstPseudoReg;
  int32_t MaxLabel = 0;
  for (const BasicBlock &B : Blocks) {
    MaxLabel = std::max(MaxLabel, B.Label + 1);
    for (const Rtl &I : B.Insts) {
      auto Visit = [&MaxReg](const Operand &O) {
        if (O.isReg())
          MaxReg = std::max(MaxReg, O.getReg() + 1);
      };
      Visit(I.Dst);
      for (const Operand &S : I.Src)
        Visit(S);
      for (const Operand &A : I.Args)
        Visit(A);
    }
  }
  NextPseudo = MaxReg;
  NextLabel = MaxLabel;
}

Cfg Cfg::build(const Function &F) {
  Cfg C;
  const size_t N = F.Blocks.size();
  C.Succs.resize(N);
  C.Preds.resize(N);
  for (size_t I = 0; I != N; ++I) {
    const BasicBlock &B = F.Blocks[I];
    const Rtl *T = B.terminator();
    if (T && T->Opcode == Op::Ret)
      continue;
    if (T && (T->Opcode == Op::Jump || T->Opcode == Op::Branch)) {
      int Target = F.findBlock(T->Src[0].Value);
      assert(Target >= 0 && "branch to unknown label");
      C.Succs[I].push_back(Target);
    }
    // Fall-through edge: everything but Jump/Ret continues to the next
    // block in layout order.
    if (fallsThrough(B)) {
      assert(I + 1 < N && "fall-through off the end of the function");
      int Next = static_cast<int>(I) + 1;
      // Avoid a duplicate edge when a branch targets the next block.
      if (C.Succs[I].empty() || C.Succs[I][0] != Next)
        C.Succs[I].push_back(Next);
    }
  }
  for (size_t I = 0; I != N; ++I)
    for (int S : C.Succs[I])
      C.Preds[S].push_back(static_cast<int>(I));
  return C;
}
