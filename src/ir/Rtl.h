//===- Rtl.h - Register Transfer List instructions ------------*- C++ -*-===//
//
// Part of POSE, a reproduction of Kulkarni et al., "Exhaustive Optimization
// Phase Order Space Exploration" (CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The low-level intermediate representation mirroring VPO's RTLs (Register
/// Transfer Lists). Every instruction is a single machine-level effect:
/// a register transfer, a memory access, a compare that sets the condition
/// code register IC, or a control transfer. All optimization phases operate
/// on this one representation, which is what lets them be reordered freely.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_IR_RTL_H
#define POSE_IR_RTL_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace pose {

/// Register numbers. Hardware registers are [0, FirstPseudoReg); pseudo
/// (virtual) registers produced by code generation are >= FirstPseudoReg.
/// The compulsory register-assignment phase maps pseudos onto hardware
/// registers.
using RegNum = uint32_t;

/// First pseudo register number; numbers below this denote hardware
/// registers of the (StrongARM-like) target.
constexpr RegNum FirstPseudoReg = 32;

/// Returns true if \p R denotes a hardware register.
inline bool isHardwareReg(RegNum R) { return R < FirstPseudoReg; }

/// RTL opcodes. The set is deliberately ARM-like and low level: one effect
/// per instruction, two source operands at most (plus the value operand of
/// a store), an immediate allowed where the target's encoding allows one.
enum class Op : uint8_t {
  Mov,   ///< dst = src0 (register or immediate)
  Lea,   ///< dst = address of src0 (stack slot or global)
  Add,   ///< dst = src0 + src1
  Sub,   ///< dst = src0 - src1
  Mul,   ///< dst = src0 * src1 (no immediate operand on the target)
  Div,   ///< dst = src0 / src1 (signed; no immediate operand)
  Rem,   ///< dst = src0 % src1 (signed; no immediate operand)
  And,   ///< dst = src0 & src1
  Or,    ///< dst = src0 | src1
  Xor,   ///< dst = src0 ^ src1
  Shl,   ///< dst = src0 << src1
  Shr,   ///< dst = src0 >> src1 (arithmetic)
  Ushr,  ///< dst = src0 >> src1 (logical)
  Neg,   ///< dst = -src0
  Not,   ///< dst = ~src0
  Load,  ///< dst = M[src0 + src1]; src0 is a register, slot, or global
  Store, ///< M[src0 + src1] = src2; src2 is a register or immediate
  Cmp,   ///< IC = src0 ? src1 (three-way compare into the condition reg)
  Branch,///< PC = IC <cond> -> label (conditional; falls through otherwise)
  Jump,  ///< PC = label (unconditional)
  Call,  ///< dst = call global(args...); dst may be absent
  Ret,   ///< return src0 (src0 may be absent for void returns)
  Prologue, ///< allocates the activation record (added by fix entry/exit)
  Epilogue, ///< frees the activation record (added by fix entry/exit)
};

/// Returns a short mnemonic for \p O (used by the printer).
const char *opName(Op O);

/// Condition codes tested by Branch against the IC register set by Cmp.
enum class Cond : uint8_t {
  None, ///< Not a conditional instruction.
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  ULt,
  ULe,
  UGt,
  UGe,
};

/// Returns the condition testing the opposite outcome of \p C.
Cond invertCond(Cond C);

/// Returns a printable name ("<", ">=u", ...) for \p C.
const char *condName(Cond C);

/// Kinds of instruction operands.
enum class OperandKind : uint8_t {
  None,   ///< Absent operand.
  Reg,    ///< Register (hardware or pseudo), Value = RegNum.
  Imm,    ///< 32-bit signed immediate, Value = the constant.
  Slot,   ///< Stack slot of the current function, Value = slot index.
  Global, ///< Module global (variable or function), Value = global id.
  Label,  ///< Basic-block label, Value = the block's label number.
};

/// A single instruction operand: a tagged 32-bit value.
struct Operand {
  OperandKind Kind = OperandKind::None;
  int32_t Value = 0;

  Operand() = default;
  Operand(OperandKind K, int32_t V) : Kind(K), Value(V) {}

  static Operand none() { return Operand(); }
  static Operand reg(RegNum R) {
    return Operand(OperandKind::Reg, static_cast<int32_t>(R));
  }
  static Operand imm(int32_t V) { return Operand(OperandKind::Imm, V); }
  static Operand slot(int32_t Index) {
    return Operand(OperandKind::Slot, Index);
  }
  static Operand global(int32_t Id) {
    return Operand(OperandKind::Global, Id);
  }
  static Operand label(int32_t L) { return Operand(OperandKind::Label, L); }

  bool isNone() const { return Kind == OperandKind::None; }
  bool isReg() const { return Kind == OperandKind::Reg; }
  bool isImm() const { return Kind == OperandKind::Imm; }
  bool isSlot() const { return Kind == OperandKind::Slot; }
  bool isGlobal() const { return Kind == OperandKind::Global; }
  bool isLabel() const { return Kind == OperandKind::Label; }

  /// Returns the register number; asserts this is a register operand.
  RegNum getReg() const {
    assert(isReg() && "operand is not a register");
    return static_cast<RegNum>(Value);
  }

  bool operator==(const Operand &O) const {
    return Kind == O.Kind && Value == O.Value;
  }
  bool operator!=(const Operand &O) const { return !(*this == O); }
};

/// One RTL: a single-effect instruction.
///
/// Operand roles by opcode:
///  - Mov/Neg/Not:  Dst = op(Src[0])
///  - Lea:          Dst = &Src[0] (Slot or Global)
///  - binary ops:   Dst = Src[0] op Src[1]
///  - Load:         Dst = M[Src[0] + Src[1]] (Src[1] is an Imm offset)
///  - Store:        M[Src[0] + Src[1]] = Src[2]
///  - Cmp:          IC = Src[0] ? Src[1]
///  - Branch:       if IC satisfies CC, PC = Src[0] (a Label)
///  - Jump:         PC = Src[0] (a Label)
///  - Call:         Dst = Src[0](Args...) (Src[0] is a Global; Dst optional)
///  - Ret:          return Src[0] (optional)
struct Rtl {
  Op Opcode = Op::Mov;
  Cond CC = Cond::None;
  Operand Dst;
  Operand Src[3];
  /// Call argument operands (registers or immediates). Empty for non-calls.
  std::vector<Operand> Args;

  Rtl() = default;
  explicit Rtl(Op O) : Opcode(O) {}

  bool isBinary() const {
    switch (Opcode) {
    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::Div:
    case Op::Rem:
    case Op::And:
    case Op::Or:
    case Op::Xor:
    case Op::Shl:
    case Op::Shr:
    case Op::Ushr:
      return true;
    default:
      return false;
    }
  }

  bool isUnary() const {
    return Opcode == Op::Neg || Opcode == Op::Not || Opcode == Op::Mov ||
           Opcode == Op::Lea;
  }

  /// Returns true for instructions that transfer control (must be last in
  /// their basic block).
  bool isControl() const {
    return Opcode == Op::Branch || Opcode == Op::Jump || Opcode == Op::Ret;
  }

  /// Returns true if the instruction writes the register in Dst.
  bool definesReg() const { return Dst.isReg(); }

  /// Returns true if the instruction writes the condition-code register IC.
  bool definesIC() const { return Opcode == Op::Cmp; }

  /// Returns true if the instruction reads the condition-code register IC.
  bool usesIC() const { return Opcode == Op::Branch; }

  /// Returns true if the instruction may read memory.
  bool readsMemory() const { return Opcode == Op::Load; }

  /// Returns true if the instruction may write memory or has side effects
  /// beyond its register results (and thus can never be deleted as dead).
  bool hasSideEffects() const {
    return Opcode == Op::Store || Opcode == Op::Call || isControl() ||
           Opcode == Op::Prologue || Opcode == Op::Epilogue;
  }

  /// Calls \p Fn for every register read by this instruction.
  template <typename FnT> void forEachUsedReg(FnT Fn) const {
    for (const Operand &S : Src)
      if (S.isReg())
        Fn(S.getReg());
    for (const Operand &A : Args)
      if (A.isReg())
        Fn(A.getReg());
  }

  /// Calls \p Fn with a mutable reference to every register operand that is
  /// a use (sources and call arguments), for register rewriting.
  template <typename FnT> void forEachUseOperand(FnT Fn) {
    for (Operand &S : Src)
      if (S.isReg())
        Fn(S);
    for (Operand &A : Args)
      if (A.isReg())
        Fn(A);
  }

  bool operator==(const Rtl &O) const {
    if (Opcode != O.Opcode || CC != O.CC || Dst != O.Dst ||
        Args != O.Args)
      return false;
    for (int I = 0; I < 3; ++I)
      if (Src[I] != O.Src[I])
        return false;
    return true;
  }
  bool operator!=(const Rtl &O) const { return !(*this == O); }
};

/// Convenience constructors for the common instruction shapes.
namespace rtl {

inline Rtl mov(Operand Dst, Operand Src0) {
  Rtl R(Op::Mov);
  R.Dst = Dst;
  R.Src[0] = Src0;
  return R;
}

inline Rtl lea(Operand Dst, Operand Target) {
  Rtl R(Op::Lea);
  R.Dst = Dst;
  R.Src[0] = Target;
  return R;
}

inline Rtl binary(Op O, Operand Dst, Operand A, Operand B) {
  Rtl R(O);
  assert(R.isBinary() && "not a binary opcode");
  R.Dst = Dst;
  R.Src[0] = A;
  R.Src[1] = B;
  return R;
}

inline Rtl unary(Op O, Operand Dst, Operand A) {
  Rtl R(O);
  R.Dst = Dst;
  R.Src[0] = A;
  return R;
}

inline Rtl load(Operand Dst, Operand Base, int32_t Offset) {
  Rtl R(Op::Load);
  R.Dst = Dst;
  R.Src[0] = Base;
  R.Src[1] = Operand::imm(Offset);
  return R;
}

inline Rtl store(Operand Base, int32_t Offset, Operand Value) {
  Rtl R(Op::Store);
  R.Src[0] = Base;
  R.Src[1] = Operand::imm(Offset);
  R.Src[2] = Value;
  return R;
}

inline Rtl cmp(Operand A, Operand B) {
  Rtl R(Op::Cmp);
  R.Src[0] = A;
  R.Src[1] = B;
  return R;
}

inline Rtl branch(Cond C, int32_t Label) {
  Rtl R(Op::Branch);
  R.CC = C;
  R.Src[0] = Operand::label(Label);
  return R;
}

inline Rtl jump(int32_t Label) {
  Rtl R(Op::Jump);
  R.Src[0] = Operand::label(Label);
  return R;
}

inline Rtl call(Operand Dst, int32_t GlobalId, std::vector<Operand> Args) {
  Rtl R(Op::Call);
  R.Dst = Dst;
  R.Src[0] = Operand::global(GlobalId);
  R.Args = std::move(Args);
  return R;
}

inline Rtl ret(Operand Value) {
  Rtl R(Op::Ret);
  R.Src[0] = Value;
  return R;
}

} // namespace rtl

} // namespace pose

#endif // POSE_IR_RTL_H
