//===- Printer.h - Textual RTL dump ----------------------------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints RTL code in a VPO-like textual syntax ("r[32]=r[33]+1;",
/// "PC=IC<0,L3;"). Used for debugging, golden tests, and examples.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_IR_PRINTER_H
#define POSE_IR_PRINTER_H

#include <string>

namespace pose {

class Function;
class Module;
struct Rtl;

/// Renders one instruction in VPO-like syntax (no trailing newline).
std::string printRtl(const Rtl &I);

/// Renders a whole function: header, slots, then labeled blocks.
std::string printFunction(const Function &F);

/// Renders every function in the module.
std::string printModule(const Module &M);

} // namespace pose

#endif // POSE_IR_PRINTER_H
