//===- Parse.h - Textual RTL parser ----------------------------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual RTL syntax produced by the printer, so functions can
/// round-trip through text. Used by IR-level test cases and the posec
/// tool's --parse-rtl mode.
///
/// Grammar (one construct per line; '#' starts a comment):
///
///   function NAME(P1,P2,...) [SLOTS] {assigned,allocated}
///   Lnn:
///     r[N]=OPERAND;              r[N]=A OP B;        r[N]=-A;  r[N]=~A;
///     r[N]=&S1;  r[N]=&@2;       r[N]=M[BASE+OFF];   M[BASE+OFF]=r[N];
///     IC=A?B;    PC=IC<0,Lnn;    PC=Lnn;
///     r[N]=call @G(A,B);         call @G();          ret A;  ret;
///     prologue;  epilogue;
///
/// SLOTS: comma list of name:size (scalar) or name[size] (array); the
/// first entries matching the parameter list become parameters.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_IR_PARSE_H
#define POSE_IR_PARSE_H

#include <string>

namespace pose {

class Function;

/// Parses one function from \p Text into \p Out. Returns an empty string
/// on success, otherwise a "line N: message" diagnostic. The resulting
/// function has counters recomputed and passes the verifier (verification
/// failures are reported as errors).
std::string parseFunction(const std::string &Text, Function &Out);

} // namespace pose

#endif // POSE_IR_PARSE_H
