//===- Parse.cpp - Textual RTL parser ---------------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/ir/Parse.h"

#include "src/ir/Function.h"
#include "src/ir/Verify.h"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <map>

using namespace pose;

namespace {

/// Cursor over one line of RTL text.
class LineCursor {
public:
  explicit LineCursor(const std::string &Line) : S(Line) {}

  void skipSpace() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }

  bool atEnd() {
    skipSpace();
    return Pos >= S.size();
  }

  char peek() {
    skipSpace();
    return Pos < S.size() ? S[Pos] : '\0';
  }

  bool consume(const char *Token) {
    skipSpace();
    size_t Len = std::strlen(Token);
    if (S.compare(Pos, Len, Token) != 0)
      return false;
    Pos += Len;
    return true;
  }

  /// Consumes a (possibly negative) decimal integer.
  bool number(int64_t &V) {
    skipSpace();
    size_t Start = Pos;
    if (Pos < S.size() && (S[Pos] == '-' || S[Pos] == '+'))
      ++Pos;
    size_t DigitsFrom = Pos;
    while (Pos < S.size() && std::isdigit(static_cast<unsigned char>(S[Pos])))
      ++Pos;
    if (Pos == DigitsFrom) {
      Pos = Start;
      return false;
    }
    V = std::strtoll(S.substr(Start, Pos - Start).c_str(), nullptr, 10);
    return true;
  }

  /// Consumes an identifier ([A-Za-z_][A-Za-z0-9_]*).
  size_t position() const { return Pos; }
  void seek(size_t P) { Pos = P; }

  bool ident(std::string &Name) {
    skipSpace();
    size_t Start = Pos;
    if (Pos >= S.size() ||
        !(std::isalpha(static_cast<unsigned char>(S[Pos])) || S[Pos] == '_'))
      return false;
    while (Pos < S.size() &&
           (std::isalnum(static_cast<unsigned char>(S[Pos])) ||
            S[Pos] == '_'))
      ++Pos;
    Name = S.substr(Start, Pos - Start);
    return true;
  }

private:
  const std::string &S;
  size_t Pos = 0;
};

/// Parser state for one function.
class RtlParser {
public:
  RtlParser(const std::string &Text, Function &Out) : Text(Text), F(Out) {}

  std::string run() {
    F = Function();
    size_t Pos = 0;
    int LineNo = 0;
    bool SawHeader = false;
    while (Pos <= Text.size()) {
      size_t End = Text.find('\n', Pos);
      if (End == std::string::npos)
        End = Text.size();
      std::string Line = Text.substr(Pos, End - Pos);
      Pos = End + 1;
      ++LineNo;
      // Strip comments.
      size_t Hash = Line.find('#');
      if (Hash != std::string::npos)
        Line.resize(Hash);
      LineCursor C(Line);
      if (C.atEnd()) {
        if (End == Text.size())
          break;
        continue;
      }
      std::string Err = SawHeader ? parseBody(C) : parseHeader(C);
      if (!Err.empty())
        return "line " + std::to_string(LineNo) + ": " + Err;
      SawHeader = true;
      if (End == Text.size())
        break;
    }
    if (!SawHeader)
      return "no function header found";
    F.recomputeCounters();
    std::string Err = verifyFunction(F);
    if (!Err.empty())
      return "parsed function is malformed: " + Err;
    return "";
  }

private:
  const std::string &Text;
  Function &F;
  std::map<std::string, int32_t> SlotIndex;

  std::string parseHeader(LineCursor &C) {
    if (!C.consume("function"))
      return "expected 'function'";
    if (!C.ident(F.Name))
      return "expected function name";
    if (!C.consume("("))
      return "expected '('";
    std::vector<std::string> Params;
    if (!C.consume(")")) {
      do {
        std::string P;
        if (!C.ident(P))
          return "expected parameter name";
        Params.push_back(P);
      } while (C.consume(","));
      if (!C.consume(")"))
        return "expected ')'";
    }
    if (C.consume("[")) {
      do {
        std::string Name;
        if (!C.ident(Name))
          return "expected slot name";
        StackSlot S;
        S.Name = Name;
        int64_t Size;
        if (C.consume(":")) {
          if (!C.number(Size))
            return "expected slot size";
          S.SizeWords = static_cast<int32_t>(Size);
        } else if (C.consume("[")) {
          if (!C.number(Size) || !C.consume("]"))
            return "expected array size";
          S.SizeWords = static_cast<int32_t>(Size);
          S.IsArray = true;
        } else {
          return "expected ':' or '[' after slot name";
        }
        SlotIndex[Name] = F.addSlot(S);
      } while (C.consume(","));
      if (!C.consume("]"))
        return "expected ']'";
    }
    if (C.consume("{")) {
      do {
        std::string Flag;
        if (!C.ident(Flag))
          return "expected state flag";
        if (Flag == "assigned")
          F.State.RegsAssigned = true;
        else if (Flag == "allocated")
          F.State.RegAllocDone = true;
        else
          return "unknown state flag '" + Flag + "'";
      } while (C.consume(","));
      if (!C.consume("}"))
        return "expected '}'";
    }
    // Bind parameters to their slots (must be the leading slots).
    F.NumParams = static_cast<int32_t>(Params.size());
    for (size_t I = 0; I != Params.size(); ++I) {
      auto It = SlotIndex.find(Params[I]);
      if (It == SlotIndex.end() ||
          It->second != static_cast<int32_t>(I))
        return "parameter '" + Params[I] +
               "' must be declared as slot " + std::to_string(I);
      F.Slots[I].IsParam = true;
    }
    F.ReturnsValue = true; // Refined by the caller if needed.
    return "";
  }

  bool parseReg(LineCursor &C, RegNum &R) {
    if (!C.consume("r["))
      return false;
    int64_t V;
    if (!C.number(V) || !C.consume("]"))
      return false;
    R = static_cast<RegNum>(V);
    return true;
  }

  /// Parses a value operand: register or immediate.
  bool parseValue(LineCursor &C, Operand &O) {
    RegNum R;
    if (parseReg(C, R)) {
      O = Operand::reg(R);
      return true;
    }
    int64_t V;
    if (C.number(V)) {
      O = Operand::imm(static_cast<int32_t>(V));
      return true;
    }
    return false;
  }

  /// Parses an address base: register, slot (S3) or global (@2).
  bool parseBase(LineCursor &C, Operand &O) {
    RegNum R;
    if (parseReg(C, R)) {
      O = Operand::reg(R);
      return true;
    }
    if (C.consume("S")) {
      int64_t V;
      if (!C.number(V))
        return false;
      O = Operand::slot(static_cast<int32_t>(V));
      return true;
    }
    if (C.consume("@")) {
      int64_t V;
      if (!C.number(V))
        return false;
      O = Operand::global(static_cast<int32_t>(V));
      return true;
    }
    return false;
  }

  bool parseLabelRef(LineCursor &C, int32_t &L) {
    if (!C.consume("L"))
      return false;
    int64_t V;
    if (!C.number(V))
      return false;
    L = static_cast<int32_t>(V);
    return true;
  }

  /// Longest-match lookup of a binary operator symbol.
  bool parseBinaryOp(LineCursor &C, Op &O) {
    static const std::pair<const char *, Op> Table[] = {
        {">>u", Op::Ushr}, {"<<", Op::Shl}, {">>", Op::Shr},
        {"+", Op::Add},    {"-", Op::Sub},  {"*", Op::Mul},
        {"/", Op::Div},    {"%", Op::Rem},  {"&", Op::And},
        {"|", Op::Or},     {"^", Op::Xor}};
    for (const auto &[Sym, Opc] : Table)
      if (C.consume(Sym)) {
        O = Opc;
        return true;
      }
    return false;
  }

  bool parseCond(LineCursor &C, Cond &CC) {
    static const std::pair<const char *, Cond> Table[] = {
        {"==", Cond::Eq},  {"!=", Cond::Ne},  {"<=u", Cond::ULe},
        {">=u", Cond::UGe}, {"<=", Cond::Le},  {">=", Cond::Ge},
        {"<u", Cond::ULt}, {">u", Cond::UGt}, {"<", Cond::Lt},
        {">", Cond::Gt}};
    for (const auto &[Sym, Co] : Table)
      if (C.consume(Sym)) {
        CC = Co;
        return true;
      }
    return false;
  }

  BasicBlock &currentBlock() {
    assert(!F.Blocks.empty() && "instruction before any label");
    return F.Blocks.back();
  }

  std::string parseBody(LineCursor &C) {
    // Block label: "Lnn:".
    {
      size_t Save = C.position();
      int32_t L;
      if (parseLabelRef(C, L) && C.consume(":")) {
        F.Blocks.emplace_back(L);
        return C.atEnd() ? "" : "trailing characters after label";
      }
      C.seek(Save);
    }
    if (F.Blocks.empty())
      return "instruction before the first block label";

    if (C.consume("prologue")) {
      currentBlock().Insts.push_back(Rtl(Op::Prologue));
      return expectSemi(C);
    }
    if (C.consume("epilogue")) {
      currentBlock().Insts.push_back(Rtl(Op::Epilogue));
      return expectSemi(C);
    }
    if (C.consume("ret")) {
      Operand V = Operand::none();
      if (C.peek() != ';' && !parseValue(C, V))
        return "expected return value";
      currentBlock().Insts.push_back(rtl::ret(V));
      return expectSemi(C);
    }
    if (C.consume("call")) {
      Rtl I(Op::Call);
      std::string Err = parseCallTail(C, I);
      if (!Err.empty())
        return Err;
      currentBlock().Insts.push_back(std::move(I));
      return expectSemi(C);
    }
    if (C.consume("IC")) {
      if (!C.consume("="))
        return "expected '='";
      Rtl I(Op::Cmp);
      if (!parseValue(C, I.Src[0]) || !C.consume("?") ||
          !parseValue(C, I.Src[1]))
        return "malformed compare";
      currentBlock().Insts.push_back(std::move(I));
      return expectSemi(C);
    }
    if (C.consume("PC")) {
      if (!C.consume("="))
        return "expected '='";
      if (C.consume("IC")) {
        Rtl I(Op::Branch);
        int32_t L;
        if (!parseCond(C, I.CC))
          return "expected branch condition";
        int64_t Zero;
        if (!C.number(Zero) || Zero != 0 || !C.consume(","))
          return "expected '0,' after condition";
        if (!parseLabelRef(C, L))
          return "expected branch target";
        I.Src[0] = Operand::label(L);
        currentBlock().Insts.push_back(std::move(I));
        return expectSemi(C);
      }
      int32_t L;
      if (!parseLabelRef(C, L))
        return "expected jump target";
      currentBlock().Insts.push_back(rtl::jump(L));
      return expectSemi(C);
    }
    if (C.consume("M[")) {
      Rtl I(Op::Store);
      std::string Err = parseAddress(C, I);
      if (!Err.empty())
        return Err;
      if (!C.consume("="))
        return "expected '=' after store address";
      if (!parseValue(C, I.Src[2]))
        return "expected stored value";
      currentBlock().Insts.push_back(std::move(I));
      return expectSemi(C);
    }

    // Register destination forms.
    RegNum D;
    if (!parseReg(C, D))
      return "unrecognized statement";
    if (!C.consume("="))
      return "expected '='";
    Operand Dst = Operand::reg(D);

    if (C.consume("call")) {
      Rtl I(Op::Call);
      I.Dst = Dst;
      std::string Err = parseCallTail(C, I);
      if (!Err.empty())
        return Err;
      currentBlock().Insts.push_back(std::move(I));
      return expectSemi(C);
    }
    if (C.consume("&")) {
      Rtl I(Op::Lea);
      I.Dst = Dst;
      if (!parseBase(C, I.Src[0]) || I.Src[0].isReg())
        return "lea target must be a slot or global";
      currentBlock().Insts.push_back(std::move(I));
      return expectSemi(C);
    }
    if (C.consume("M[")) {
      Rtl I(Op::Load);
      I.Dst = Dst;
      std::string Err = parseAddress(C, I);
      if (!Err.empty())
        return Err;
      currentBlock().Insts.push_back(std::move(I));
      return expectSemi(C);
    }
    if (C.consume("~")) {
      Operand A;
      if (!parseValue(C, A))
        return "expected operand";
      currentBlock().Insts.push_back(rtl::unary(Op::Not, Dst, A));
      return expectSemi(C);
    }
    // "-A" (negate) only when '-' is directly followed by a register;
    // "-5" parses as a mov of a negative immediate below.
    {
      size_t Save = C.position();
      if (C.consume("-")) {
        RegNum A;
        if (parseReg(C, A)) {
          currentBlock().Insts.push_back(
              rtl::unary(Op::Neg, Dst, Operand::reg(A)));
          return expectSemi(C);
        }
        C.seek(Save);
      }
    }

    Operand A;
    if (!parseValue(C, A))
      return "expected operand";
    Op BinOp;
    if (parseBinaryOp(C, BinOp)) {
      Operand B;
      if (!parseValue(C, B))
        return "expected second operand";
      currentBlock().Insts.push_back(rtl::binary(BinOp, Dst, A, B));
      return expectSemi(C);
    }
    currentBlock().Insts.push_back(rtl::mov(Dst, A));
    return expectSemi(C);
  }

  /// Parses "BASE(+OFF)?]" into Src[0]/Src[1] of \p I ("M[" consumed).
  std::string parseAddress(LineCursor &C, Rtl &I) {
    if (!parseBase(C, I.Src[0]))
      return "expected address base";
    int64_t Off = 0;
    if (C.consume("+")) {
      if (!C.number(Off))
        return "expected offset";
    }
    I.Src[1] = Operand::imm(static_cast<int32_t>(Off));
    if (!C.consume("]"))
      return "expected ']'";
    return "";
  }

  /// Parses "@G(args)" after the "call" keyword.
  std::string parseCallTail(LineCursor &C, Rtl &I) {
    if (!C.consume("@"))
      return "expected '@' callee";
    int64_t G;
    if (!C.number(G))
      return "expected callee id";
    I.Src[0] = Operand::global(static_cast<int32_t>(G));
    if (!C.consume("("))
      return "expected '('";
    if (!C.consume(")")) {
      do {
        Operand A;
        if (!parseValue(C, A))
          return "expected call argument";
        I.Args.push_back(A);
      } while (C.consume(","));
      if (!C.consume(")"))
        return "expected ')'";
    }
    return "";
  }

  std::string expectSemi(LineCursor &C) {
    if (!C.consume(";"))
      return "expected ';'";
    if (!C.atEnd())
      return "trailing characters";
    return "";
  }
};

} // namespace

std::string pose::parseFunction(const std::string &Text, Function &Out) {
  return RtlParser(Text, Out).run();
}
