//===- Verify.cpp - IR structural invariants ------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/ir/Verify.h"

#include "src/ir/Function.h"
#include "src/ir/Printer.h"

using namespace pose;

namespace {

/// Accumulates the first error found while walking one function.
class Verifier {
public:
  explicit Verifier(const Function &F) : F(F) {}

  std::string run() {
    if (F.Blocks.empty())
      return fail("function has no blocks");
    for (size_t I = 0, E = F.Blocks.size(); I != E && Error.empty(); ++I)
      checkBlock(I);
    if (!Error.empty())
      return Error;
    // The last block must not fall through into nothing.
    const BasicBlock &Last = F.Blocks.back();
    if (Cfg::fallsThrough(Last))
      return fail("last block falls off the end of the function");
    return Error;
  }

private:
  const Function &F;
  std::string Error;

  std::string fail(const std::string &Msg) {
    if (Error.empty())
      Error = "verify(" + F.Name + "): " + Msg;
    return Error;
  }

  void failInst(const Rtl &I, const std::string &Msg) {
    fail(Msg + " in '" + printRtl(I) + "'");
  }

  void checkBlock(size_t BlockIndex) {
    const BasicBlock &B = F.Blocks[BlockIndex];
    for (size_t J = 0, N = B.Insts.size(); J != N; ++J) {
      const Rtl &I = B.Insts[J];
      if (I.isControl() && J + 1 != N) {
        failInst(I, "control transfer not at end of block");
        return;
      }
      checkInst(I);
      if (!Error.empty())
        return;
    }
  }

  bool isValueOperand(const Operand &O) const {
    return O.isReg() || O.isImm();
  }

  void checkSlotRef(const Rtl &I, const Operand &O) {
    if (O.Value < 0 || static_cast<size_t>(O.Value) >= F.Slots.size())
      failInst(I, "slot index out of range");
  }

  void checkLabelRef(const Rtl &I, const Operand &O) {
    if (!O.isLabel()) {
      failInst(I, "control target is not a label");
      return;
    }
    if (F.findBlock(O.Value) < 0)
      failInst(I, "branch to unknown label L" + std::to_string(O.Value));
  }

  void checkInst(const Rtl &I) {
    // Destinations, where present, must be registers.
    if (!I.Dst.isNone() && !I.Dst.isReg()) {
      failInst(I, "destination is not a register");
      return;
    }
    switch (I.Opcode) {
    case Op::Mov:
      if (!I.Dst.isReg() || !isValueOperand(I.Src[0]))
        failInst(I, "malformed mov");
      break;
    case Op::Lea:
      if (!I.Dst.isReg() || !(I.Src[0].isSlot() || I.Src[0].isGlobal()))
        failInst(I, "lea source must be a slot or global");
      else if (I.Src[0].isSlot())
        checkSlotRef(I, I.Src[0]);
      break;
    case Op::Neg:
    case Op::Not:
      if (!I.Dst.isReg() || !isValueOperand(I.Src[0]))
        failInst(I, "malformed unary op");
      break;
    case Op::Load:
      if (!I.Dst.isReg() ||
          !(I.Src[0].isReg() || I.Src[0].isSlot() || I.Src[0].isGlobal()) ||
          !I.Src[1].isImm())
        failInst(I, "malformed load");
      else if (I.Src[0].isSlot())
        checkSlotRef(I, I.Src[0]);
      break;
    case Op::Store:
      if (!(I.Src[0].isReg() || I.Src[0].isSlot() || I.Src[0].isGlobal()) ||
          !I.Src[1].isImm() || !I.Src[2].isReg())
        failInst(I, "malformed store");
      else if (I.Src[0].isSlot())
        checkSlotRef(I, I.Src[0]);
      break;
    case Op::Cmp:
      if (!isValueOperand(I.Src[0]) || !isValueOperand(I.Src[1]))
        failInst(I, "malformed cmp");
      break;
    case Op::Branch:
      if (I.CC == Cond::None)
        failInst(I, "branch without condition");
      else
        checkLabelRef(I, I.Src[0]);
      break;
    case Op::Jump:
      checkLabelRef(I, I.Src[0]);
      break;
    case Op::Call:
      if (!I.Src[0].isGlobal())
        failInst(I, "call target is not a global");
      for (const Operand &A : I.Args)
        if (!isValueOperand(A))
          failInst(I, "call argument is not a value");
      break;
    case Op::Ret:
      if (!I.Src[0].isNone() && !isValueOperand(I.Src[0]))
        failInst(I, "malformed return value");
      break;
    case Op::Prologue:
    case Op::Epilogue:
      break;
    default:
      if (I.isBinary()) {
        if (!I.Dst.isReg() || !isValueOperand(I.Src[0]) ||
            !isValueOperand(I.Src[1]))
          failInst(I, "malformed binary op");
        break;
      }
      failInst(I, "unknown opcode");
      break;
    }
  }
};

} // namespace

std::string pose::verifyFunction(const Function &F) {
  return Verifier(F).run();
}

std::string pose::verifyModule(const Module &M) {
  for (size_t Id = 0, E = M.Globals.size(); Id != E; ++Id) {
    const Global &G = M.Globals[Id];
    if (G.Kind == GlobalKind::Func) {
      if (G.FuncIndex < 0 ||
          static_cast<size_t>(G.FuncIndex) >= M.Functions.size())
        return "verify(module): bad function index for " + G.Name;
    }
  }
  for (const Function &F : M.Functions) {
    std::string Err = verifyFunction(F);
    if (!Err.empty())
      return Err;
    // Check call sites against callee signatures.
    for (const BasicBlock &B : F.Blocks) {
      for (const Rtl &I : B.Insts) {
        if (I.Opcode != Op::Call)
          continue;
        int32_t Id = I.Src[0].Value;
        if (Id < 0 || static_cast<size_t>(Id) >= M.Globals.size())
          return "verify(" + F.Name + "): call to unknown global";
        const Global &Callee = M.Globals[Id];
        if (Callee.Kind == GlobalKind::Var)
          return "verify(" + F.Name + "): call to data global " +
                 Callee.Name;
        if (Callee.Kind == GlobalKind::Func &&
            static_cast<int32_t>(I.Args.size()) != Callee.NumParams)
          return "verify(" + F.Name + "): call arity mismatch for " +
                 Callee.Name;
      }
    }
  }
  return "";
}
