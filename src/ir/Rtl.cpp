//===- Rtl.cpp - Register Transfer List instructions ---------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/ir/Rtl.h"

using namespace pose;

const char *pose::opName(Op O) {
  switch (O) {
  case Op::Mov:
    return "mov";
  case Op::Lea:
    return "lea";
  case Op::Add:
    return "add";
  case Op::Sub:
    return "sub";
  case Op::Mul:
    return "mul";
  case Op::Div:
    return "div";
  case Op::Rem:
    return "rem";
  case Op::And:
    return "and";
  case Op::Or:
    return "or";
  case Op::Xor:
    return "xor";
  case Op::Shl:
    return "shl";
  case Op::Shr:
    return "shr";
  case Op::Ushr:
    return "ushr";
  case Op::Neg:
    return "neg";
  case Op::Not:
    return "not";
  case Op::Load:
    return "load";
  case Op::Store:
    return "store";
  case Op::Cmp:
    return "cmp";
  case Op::Branch:
    return "branch";
  case Op::Jump:
    return "jump";
  case Op::Call:
    return "call";
  case Op::Ret:
    return "ret";
  case Op::Prologue:
    return "prologue";
  case Op::Epilogue:
    return "epilogue";
  }
  assert(false && "unknown opcode");
  return "?";
}

Cond pose::invertCond(Cond C) {
  switch (C) {
  case Cond::None:
    return Cond::None;
  case Cond::Eq:
    return Cond::Ne;
  case Cond::Ne:
    return Cond::Eq;
  case Cond::Lt:
    return Cond::Ge;
  case Cond::Le:
    return Cond::Gt;
  case Cond::Gt:
    return Cond::Le;
  case Cond::Ge:
    return Cond::Lt;
  case Cond::ULt:
    return Cond::UGe;
  case Cond::ULe:
    return Cond::UGt;
  case Cond::UGt:
    return Cond::ULe;
  case Cond::UGe:
    return Cond::ULt;
  }
  assert(false && "unknown condition");
  return Cond::None;
}

const char *pose::condName(Cond C) {
  switch (C) {
  case Cond::None:
    return "";
  case Cond::Eq:
    return "==";
  case Cond::Ne:
    return "!=";
  case Cond::Lt:
    return "<";
  case Cond::Le:
    return "<=";
  case Cond::Gt:
    return ">";
  case Cond::Ge:
    return ">=";
  case Cond::ULt:
    return "<u";
  case Cond::ULe:
    return "<=u";
  case Cond::UGt:
    return ">u";
  case Cond::UGe:
    return ">=u";
  }
  assert(false && "unknown condition");
  return "?";
}
