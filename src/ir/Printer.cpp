//===- Printer.cpp - Textual RTL dump -------------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/ir/Printer.h"

#include "src/ir/Function.h"

using namespace pose;

static std::string printOperand(const Operand &O) {
  switch (O.Kind) {
  case OperandKind::None:
    return "";
  case OperandKind::Reg:
    return "r[" + std::to_string(O.Value) + "]";
  case OperandKind::Imm:
    return std::to_string(O.Value);
  case OperandKind::Slot:
    return "S" + std::to_string(O.Value);
  case OperandKind::Global:
    return "@" + std::to_string(O.Value);
  case OperandKind::Label:
    return "L" + std::to_string(O.Value);
  }
  return "?";
}

static const char *binarySymbol(Op O) {
  switch (O) {
  case Op::Add:
    return "+";
  case Op::Sub:
    return "-";
  case Op::Mul:
    return "*";
  case Op::Div:
    return "/";
  case Op::Rem:
    return "%";
  case Op::And:
    return "&";
  case Op::Or:
    return "|";
  case Op::Xor:
    return "^";
  case Op::Shl:
    return "<<";
  case Op::Shr:
    return ">>";
  case Op::Ushr:
    return ">>u";
  default:
    return "?";
  }
}

std::string pose::printRtl(const Rtl &I) {
  const std::string D = printOperand(I.Dst);
  const std::string A = printOperand(I.Src[0]);
  const std::string B = printOperand(I.Src[1]);
  switch (I.Opcode) {
  case Op::Mov:
    return D + "=" + A + ";";
  case Op::Lea:
    return D + "=&" + A + ";";
  case Op::Neg:
    return D + "=-" + A + ";";
  case Op::Not:
    return D + "=~" + A + ";";
  case Op::Load:
    return D + "=M[" + A + (I.Src[1].Value ? "+" + B : "") + "];";
  case Op::Store:
    return "M[" + A + (I.Src[1].Value ? "+" + B : "") +
           "]=" + printOperand(I.Src[2]) + ";";
  case Op::Cmp:
    return "IC=" + A + "?" + B + ";";
  case Op::Branch:
    return std::string("PC=IC") + condName(I.CC) + "0," + A + ";";
  case Op::Jump:
    return "PC=" + A + ";";
  case Op::Call: {
    std::string S = (I.Dst.isNone() ? "" : D + "=") + "call " + A + "(";
    for (size_t J = 0; J < I.Args.size(); ++J) {
      if (J)
        S += ",";
      S += printOperand(I.Args[J]);
    }
    return S + ");";
  }
  case Op::Ret:
    return I.Src[0].isNone() ? "ret;" : "ret " + A + ";";
  case Op::Prologue:
    return "prologue;";
  case Op::Epilogue:
    return "epilogue;";
  default:
    break;
  }
  if (I.isBinary())
    return D + "=" + A + binarySymbol(I.Opcode) + B + ";";
  return "<?>;";
}

std::string pose::printFunction(const Function &F) {
  std::string Out = "function " + F.Name + "(";
  for (int32_t I = 0; I < F.NumParams; ++I) {
    if (I)
      Out += ",";
    Out += F.Slots[I].Name;
  }
  Out += ")";
  if (!F.Slots.empty()) {
    Out += " [";
    for (size_t I = 0; I < F.Slots.size(); ++I) {
      if (I)
        Out += ",";
      const StackSlot &S = F.Slots[I];
      if (S.IsArray)
        Out += S.Name + "[" + std::to_string(S.SizeWords) + "]";
      else
        Out += S.Name + ":" + std::to_string(S.SizeWords);
    }
    Out += "]";
  }
  if (F.State.RegsAssigned || F.State.RegAllocDone) {
    Out += " {";
    if (F.State.RegsAssigned)
      Out += "assigned";
    if (F.State.RegAllocDone)
      Out += F.State.RegsAssigned ? ",allocated" : "allocated";
    Out += "}";
  }
  Out += "\n";
  for (const BasicBlock &B : F.Blocks) {
    Out += "L" + std::to_string(B.Label) + ":\n";
    for (const Rtl &I : B.Insts)
      Out += "  " + printRtl(I) + "\n";
  }
  return Out;
}

std::string pose::printModule(const Module &M) {
  std::string Out;
  for (const Function &F : M.Functions) {
    Out += printFunction(F);
    Out += "\n";
  }
  return Out;
}
