//===- Ast.h - MC abstract syntax tree -------------------------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for the MC language. Nodes are tagged structs owned through
/// unique_ptr; the tree lives only between parsing and code generation.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_FRONTEND_AST_H
#define POSE_FRONTEND_AST_H

#include "src/frontend/Lexer.h"

#include <memory>
#include <string>
#include <vector>

namespace pose {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Expression node kinds.
enum class ExprKind : uint8_t {
  Number,   ///< Integer literal; Value holds it.
  VarRef,   ///< Scalar variable reference; Name holds the identifier.
  ArrayRef, ///< Name[Lhs].
  Binary,   ///< Lhs Op Rhs (arithmetic, logical, relational).
  Unary,    ///< Op Lhs (-, !, ~).
  Call,     ///< Name(Args...).
  Assign,   ///< Lhs = Rhs where Lhs is VarRef or ArrayRef.
};

/// An MC expression.
struct Expr {
  ExprKind Kind;
  int Line = 0;
  int32_t Value = 0;  ///< Number only.
  std::string Name;   ///< VarRef/ArrayRef/Call.
  Tok Op = Tok::Eof;  ///< Binary/Unary operator token.
  ExprPtr Lhs, Rhs;
  std::vector<ExprPtr> Args;

  explicit Expr(ExprKind K, int Line) : Kind(K), Line(Line) {}
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// Statement node kinds.
enum class StmtKind : uint8_t {
  Expr,     ///< E;
  Decl,     ///< int x; / int x = E; / int a[N];
  If,       ///< if (E) Then [else Else]
  While,    ///< while (E) Body
  DoWhile,  ///< do Body while (E);
  For,      ///< for (Init; E; Step) Body
  Return,   ///< return [E];
  Break,
  Continue,
  Block,    ///< { Stmts... }
  Empty,    ///< ;
};

/// An MC statement.
struct Stmt {
  StmtKind Kind;
  int Line = 0;
  ExprPtr E;          ///< Expression / condition / return value.
  ExprPtr Init, Step; ///< For loops (plain expressions, no declarations).
  StmtPtr Then, Else, Body;
  std::vector<StmtPtr> Stmts; ///< Block.
  // Declaration fields:
  std::string DeclName;
  int32_t DeclArraySize = 0; ///< 0 for scalars.
  ExprPtr DeclInit;

  explicit Stmt(StmtKind K, int Line) : Kind(K), Line(Line) {}
};

/// A module-level variable declaration.
struct GlobalDecl {
  std::string Name;
  bool IsArray = false;
  int32_t Size = 1;          ///< In words.
  std::vector<int32_t> Init; ///< Zero-padded to Size by codegen.
  int Line = 0;
};

/// A function definition.
struct FuncDecl {
  std::string Name;
  bool ReturnsValue = false;
  std::vector<std::string> Params;
  StmtPtr Body; ///< Always a Block.
  int Line = 0;
};

/// A parsed MC translation unit.
struct Program {
  std::vector<GlobalDecl> Globals;
  std::vector<FuncDecl> Funcs;
};

/// One frontend diagnostic.
struct Diag {
  int Line = 0;
  std::string Message;
};

} // namespace pose

#endif // POSE_FRONTEND_AST_H
