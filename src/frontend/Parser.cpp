//===- Parser.cpp - MC recursive-descent parser -----------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/frontend/Parser.h"

#include <utility>

using namespace pose;

namespace {

/// Binding powers for binary operators, C-style. Higher binds tighter.
static int precedence(Tok T) {
  switch (T) {
  case Tok::PipePipe:
    return 1;
  case Tok::AmpAmp:
    return 2;
  case Tok::Pipe:
    return 3;
  case Tok::Caret:
    return 4;
  case Tok::Amp:
    return 5;
  case Tok::EqEq:
  case Tok::NotEq:
    return 6;
  case Tok::Lt:
  case Tok::Le:
  case Tok::Gt:
  case Tok::Ge:
    return 7;
  case Tok::Shl:
  case Tok::Shr:
  case Tok::Ushr:
    return 8;
  case Tok::Plus:
  case Tok::Minus:
    return 9;
  case Tok::Star:
  case Tok::Slash:
  case Tok::Percent:
    return 10;
  default:
    return 0;
  }
}

class Parser {
public:
  Parser(std::vector<Token> Tokens, std::vector<Diag> &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {}

  Program parse() {
    Program P;
    if (Tokens.back().Kind == Tok::Error) {
      report(Tokens.back().Line, Tokens.back().Text);
      return P;
    }
    while (!Failed && cur().Kind != Tok::Eof)
      parseTopLevel(P);
    return P;
  }

private:
  std::vector<Token> Tokens;
  std::vector<Diag> &Diags;
  size_t Pos = 0;
  bool Failed = false;

  const Token &cur() const { return Tokens[Pos]; }
  const Token &peek(size_t Ahead) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  Token take() { return Tokens[Pos == Tokens.size() - 1 ? Pos : Pos++]; }

  void report(int Line, const std::string &Msg) {
    if (!Failed)
      Diags.push_back({Line, Msg});
    Failed = true;
  }

  bool expect(Tok K, const char *What) {
    if (cur().Kind == K) {
      take();
      return true;
    }
    report(cur().Line, std::string("expected ") + What);
    return false;
  }

  bool accept(Tok K) {
    if (cur().Kind != K)
      return false;
    take();
    return true;
  }

  //===--------------------------------------------------------------===//
  // Top level
  //===--------------------------------------------------------------===//

  void parseTopLevel(Program &P) {
    bool IsVoid = cur().Kind == Tok::KwVoid;
    if (!IsVoid && cur().Kind != Tok::KwInt) {
      report(cur().Line, "expected 'int' or 'void' at top level");
      return;
    }
    take();
    Token NameTok = cur();
    if (!expect(Tok::Ident, "identifier"))
      return;
    if (cur().Kind == Tok::LParen) {
      parseFunction(P, NameTok, !IsVoid);
      return;
    }
    if (IsVoid) {
      report(NameTok.Line, "global variables must have type int");
      return;
    }
    parseGlobalVar(P, NameTok);
  }

  void parseGlobalVar(Program &P, const Token &NameTok) {
    GlobalDecl G;
    G.Name = NameTok.Text;
    G.Line = NameTok.Line;
    if (accept(Tok::LBracket)) {
      G.IsArray = true;
      if (cur().Kind == Tok::Number) {
        G.Size = take().Value;
        if (G.Size <= 0) {
          report(NameTok.Line, "array size must be positive");
          return;
        }
      } else {
        G.Size = 0; // Deduced from the initializer.
      }
      if (!expect(Tok::RBracket, "']'"))
        return;
    }
    if (accept(Tok::Assign)) {
      if (cur().Kind == Tok::String) {
        if (!G.IsArray) {
          report(cur().Line, "string initializer requires an array");
          return;
        }
        std::string S = take().Text;
        for (char C : S)
          G.Init.push_back(static_cast<int32_t>(C));
        G.Init.push_back(0); // NUL terminator.
      } else if (accept(Tok::LBrace)) {
        if (!G.IsArray) {
          report(cur().Line, "brace initializer requires an array");
          return;
        }
        if (!accept(Tok::RBrace)) {
          do {
            G.Init.push_back(parseConstant());
            if (Failed)
              return;
          } while (accept(Tok::Comma));
          if (!expect(Tok::RBrace, "'}'"))
            return;
        }
      } else {
        G.Init.push_back(parseConstant());
        if (Failed)
          return;
      }
    }
    if (G.IsArray && G.Size == 0) {
      if (G.Init.empty()) {
        report(NameTok.Line, "cannot deduce array size without initializer");
        return;
      }
      G.Size = static_cast<int32_t>(G.Init.size());
    }
    if (static_cast<int32_t>(G.Init.size()) > G.Size) {
      report(NameTok.Line, "too many initializers for " + G.Name);
      return;
    }
    expect(Tok::Semi, "';'");
    P.Globals.push_back(std::move(G));
  }

  /// Parses a compile-time constant: an integer literal with optional
  /// leading minus or tilde.
  int32_t parseConstant() {
    bool Negate = accept(Tok::Minus);
    bool Complement = !Negate && accept(Tok::Tilde);
    if (cur().Kind != Tok::Number) {
      report(cur().Line, "expected constant");
      return 0;
    }
    int32_t V = take().Value;
    if (Negate)
      V = -V;
    if (Complement)
      V = ~V;
    return V;
  }

  void parseFunction(Program &P, const Token &NameTok, bool ReturnsValue) {
    FuncDecl F;
    F.Name = NameTok.Text;
    F.Line = NameTok.Line;
    F.ReturnsValue = ReturnsValue;
    expect(Tok::LParen, "'('");
    if (!accept(Tok::RParen)) {
      if (cur().Kind == Tok::KwVoid && peek(1).Kind == Tok::RParen) {
        take();
        take();
      } else {
        do {
          if (!expect(Tok::KwInt, "'int' parameter type"))
            return;
          Token PTok = cur();
          if (!expect(Tok::Ident, "parameter name"))
            return;
          F.Params.push_back(PTok.Text);
        } while (accept(Tok::Comma));
        if (!expect(Tok::RParen, "')'"))
          return;
      }
    }
    if (cur().Kind != Tok::LBrace) {
      report(cur().Line, "expected function body");
      return;
    }
    F.Body = parseBlock();
    if (!Failed)
      P.Funcs.push_back(std::move(F));
  }

  //===--------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------===//

  StmtPtr parseBlock() {
    auto S = std::make_unique<Stmt>(StmtKind::Block, cur().Line);
    expect(Tok::LBrace, "'{'");
    while (!Failed && cur().Kind != Tok::RBrace && cur().Kind != Tok::Eof)
      S->Stmts.push_back(parseStatement());
    expect(Tok::RBrace, "'}'");
    return S;
  }

  StmtPtr parseStatement() {
    const int Line = cur().Line;
    switch (cur().Kind) {
    case Tok::LBrace:
      return parseBlock();
    case Tok::Semi:
      take();
      return std::make_unique<Stmt>(StmtKind::Empty, Line);
    case Tok::KwInt:
      return parseLocalDecl();
    case Tok::KwIf: {
      take();
      auto S = std::make_unique<Stmt>(StmtKind::If, Line);
      expect(Tok::LParen, "'('");
      S->E = parseExpression();
      expect(Tok::RParen, "')'");
      S->Then = parseStatement();
      if (accept(Tok::KwElse))
        S->Else = parseStatement();
      return S;
    }
    case Tok::KwWhile: {
      take();
      auto S = std::make_unique<Stmt>(StmtKind::While, Line);
      expect(Tok::LParen, "'('");
      S->E = parseExpression();
      expect(Tok::RParen, "')'");
      S->Body = parseStatement();
      return S;
    }
    case Tok::KwDo: {
      take();
      auto S = std::make_unique<Stmt>(StmtKind::DoWhile, Line);
      S->Body = parseStatement();
      expect(Tok::KwWhile, "'while'");
      expect(Tok::LParen, "'('");
      S->E = parseExpression();
      expect(Tok::RParen, "')'");
      expect(Tok::Semi, "';'");
      return S;
    }
    case Tok::KwFor: {
      take();
      auto S = std::make_unique<Stmt>(StmtKind::For, Line);
      expect(Tok::LParen, "'('");
      if (cur().Kind != Tok::Semi)
        S->Init = parseExpression();
      expect(Tok::Semi, "';'");
      if (cur().Kind != Tok::Semi)
        S->E = parseExpression();
      expect(Tok::Semi, "';'");
      if (cur().Kind != Tok::RParen)
        S->Step = parseExpression();
      expect(Tok::RParen, "')'");
      S->Body = parseStatement();
      return S;
    }
    case Tok::KwReturn: {
      take();
      auto S = std::make_unique<Stmt>(StmtKind::Return, Line);
      if (cur().Kind != Tok::Semi)
        S->E = parseExpression();
      expect(Tok::Semi, "';'");
      return S;
    }
    case Tok::KwBreak:
      take();
      expect(Tok::Semi, "';'");
      return std::make_unique<Stmt>(StmtKind::Break, Line);
    case Tok::KwContinue:
      take();
      expect(Tok::Semi, "';'");
      return std::make_unique<Stmt>(StmtKind::Continue, Line);
    default: {
      auto S = std::make_unique<Stmt>(StmtKind::Expr, Line);
      S->E = parseExpression();
      expect(Tok::Semi, "';'");
      return S;
    }
    }
  }

  StmtPtr parseLocalDecl() {
    const int Line = cur().Line;
    take(); // 'int'
    auto S = std::make_unique<Stmt>(StmtKind::Decl, Line);
    Token NameTok = cur();
    if (!expect(Tok::Ident, "variable name"))
      return S;
    S->DeclName = NameTok.Text;
    if (accept(Tok::LBracket)) {
      if (cur().Kind != Tok::Number) {
        report(cur().Line, "local array size must be a constant");
        return S;
      }
      S->DeclArraySize = take().Value;
      if (S->DeclArraySize <= 0)
        report(Line, "array size must be positive");
      expect(Tok::RBracket, "']'");
    } else if (accept(Tok::Assign)) {
      S->DeclInit = parseExpression();
    }
    expect(Tok::Semi, "';'");
    return S;
  }

  //===--------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------===//

  ExprPtr parseExpression() { return parseAssignment(); }

  ExprPtr parseAssignment() {
    ExprPtr L = parseBinary(1);
    if (Failed || cur().Kind != Tok::Assign)
      return L;
    const int Line = take().Line;
    if (L->Kind != ExprKind::VarRef && L->Kind != ExprKind::ArrayRef) {
      report(Line, "assignment target must be a variable or array element");
      return L;
    }
    auto A = std::make_unique<Expr>(ExprKind::Assign, Line);
    A->Lhs = std::move(L);
    A->Rhs = parseAssignment(); // Right associative.
    return A;
  }

  ExprPtr parseBinary(int MinPrec) {
    ExprPtr L = parseUnary();
    while (!Failed) {
      Tok OpTok = cur().Kind;
      int Prec = precedence(OpTok);
      if (Prec < MinPrec || Prec == 0)
        return L;
      const int Line = take().Line;
      ExprPtr R = parseBinary(Prec + 1); // All binaries left associative.
      auto B = std::make_unique<Expr>(ExprKind::Binary, Line);
      B->Op = OpTok;
      B->Lhs = std::move(L);
      B->Rhs = std::move(R);
      L = std::move(B);
    }
    return L;
  }

  ExprPtr parseUnary() {
    const int Line = cur().Line;
    if (accept(Tok::Minus)) {
      // Fold -literal so simple initializers stay single instructions.
      if (cur().Kind == Tok::Number) {
        auto N = std::make_unique<Expr>(ExprKind::Number, Line);
        N->Value = -take().Value;
        return N;
      }
      auto U = std::make_unique<Expr>(ExprKind::Unary, Line);
      U->Op = Tok::Minus;
      U->Lhs = parseUnary();
      return U;
    }
    if (accept(Tok::Bang)) {
      auto U = std::make_unique<Expr>(ExprKind::Unary, Line);
      U->Op = Tok::Bang;
      U->Lhs = parseUnary();
      return U;
    }
    if (accept(Tok::Tilde)) {
      auto U = std::make_unique<Expr>(ExprKind::Unary, Line);
      U->Op = Tok::Tilde;
      U->Lhs = parseUnary();
      return U;
    }
    return parsePrimary();
  }

  ExprPtr parsePrimary() {
    const int Line = cur().Line;
    if (cur().Kind == Tok::Number) {
      auto N = std::make_unique<Expr>(ExprKind::Number, Line);
      N->Value = take().Value;
      return N;
    }
    if (accept(Tok::LParen)) {
      ExprPtr E = parseExpression();
      expect(Tok::RParen, "')'");
      return E;
    }
    if (cur().Kind == Tok::Ident) {
      Token NameTok = take();
      if (accept(Tok::LParen)) {
        auto C = std::make_unique<Expr>(ExprKind::Call, Line);
        C->Name = NameTok.Text;
        if (!accept(Tok::RParen)) {
          do {
            C->Args.push_back(parseExpression());
          } while (accept(Tok::Comma));
          expect(Tok::RParen, "')'");
        }
        return C;
      }
      if (accept(Tok::LBracket)) {
        auto A = std::make_unique<Expr>(ExprKind::ArrayRef, Line);
        A->Name = NameTok.Text;
        A->Lhs = parseExpression();
        expect(Tok::RBracket, "']'");
        return A;
      }
      auto V = std::make_unique<Expr>(ExprKind::VarRef, Line);
      V->Name = NameTok.Text;
      return V;
    }
    report(Line, "expected expression");
    return std::make_unique<Expr>(ExprKind::Number, Line);
  }
};

} // namespace

Program pose::parseMC(const std::string &Source, std::vector<Diag> &Diags) {
  Lexer L(Source);
  Parser P(L.lexAll(), Diags);
  return P.parse();
}
