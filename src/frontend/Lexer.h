//===- Lexer.h - MC language lexer -----------------------------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for MC, the mini-C language the benchmark workloads are
/// written in. MC is integer-only C: int/void, globals (scalars, arrays,
/// string initializers), functions, the usual statements and operators,
/// plus ">>>" for logical shift right (MC ints are signed 32-bit).
///
//===----------------------------------------------------------------------===//

#ifndef POSE_FRONTEND_LEXER_H
#define POSE_FRONTEND_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace pose {

/// Token kinds of the MC language.
enum class Tok : uint8_t {
  Eof,
  Ident,
  Number,     ///< Integer literal (decimal, hex 0x..., or char 'c').
  String,     ///< String literal (only as an array initializer).
  KwInt,
  KwVoid,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwDo,
  KwReturn,
  KwBreak,
  KwContinue,
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semi,
  Assign,     ///< =
  PipePipe,   ///< ||
  AmpAmp,     ///< &&
  Pipe,       ///< |
  Caret,      ///< ^
  Amp,        ///< &
  EqEq,
  NotEq,
  Lt,
  Le,
  Gt,
  Ge,
  Shl,        ///< <<
  Shr,        ///< >> (arithmetic)
  Ushr,       ///< >>> (logical; MC extension)
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Bang,       ///< !
  Tilde,      ///< ~
  Error,
};

/// One token with source position (1-based line/column).
struct Token {
  Tok Kind = Tok::Eof;
  std::string Text;   ///< Identifier spelling or string literal body.
  int32_t Value = 0;  ///< Numeric value for Number tokens.
  int Line = 0;
  int Col = 0;
};

/// Tokenizes MC source. Errors are reported as Tok::Error tokens carrying a
/// message in Text; the parser turns them into diagnostics.
class Lexer {
public:
  explicit Lexer(std::string Source);

  /// Lexes the entire input, ending with an Eof token.
  std::vector<Token> lexAll();

private:
  std::string Src;
  size_t Pos = 0;
  int Line = 1;
  int Col = 1;

  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }
  char advance();
  void skipTrivia();
  Token next();
  Token makeToken(Tok Kind, int Line, int Col) const;
  Token error(const std::string &Msg, int Line, int Col) const;
};

} // namespace pose

#endif // POSE_FRONTEND_LEXER_H
