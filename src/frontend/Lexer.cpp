//===- Lexer.cpp - MC language lexer ---------------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/frontend/Lexer.h"

#include <cctype>
#include <map>

using namespace pose;

Lexer::Lexer(std::string Source) : Src(std::move(Source)) {}

char Lexer::advance() {
  char C = Src[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

void Lexer::skipTrivia() {
  while (Pos < Src.size()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Src.size() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      advance();
      advance();
      while (Pos < Src.size() && !(peek() == '*' && peek(1) == '/'))
        advance();
      if (Pos < Src.size()) {
        advance();
        advance();
      }
      continue;
    }
    break;
  }
}

Token Lexer::makeToken(Tok Kind, int L, int C) const {
  Token T;
  T.Kind = Kind;
  T.Line = L;
  T.Col = C;
  return T;
}

Token Lexer::error(const std::string &Msg, int L, int C) const {
  Token T = makeToken(Tok::Error, L, C);
  T.Text = Msg;
  return T;
}

/// Decodes a backslash escape ('n', 't', '0', '\\', '\'', '"').
static int decodeEscape(char C) {
  switch (C) {
  case 'n':
    return '\n';
  case 't':
    return '\t';
  case '0':
    return '\0';
  default:
    return C;
  }
}

Token Lexer::next() {
  skipTrivia();
  const int L = Line, C = Col;
  if (Pos >= Src.size())
    return makeToken(Tok::Eof, L, C);

  char Ch = advance();

  if (std::isalpha(static_cast<unsigned char>(Ch)) || Ch == '_') {
    std::string Name(1, Ch);
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      Name += advance();
    static const std::map<std::string, Tok> Keywords = {
        {"int", Tok::KwInt},       {"void", Tok::KwVoid},
        {"if", Tok::KwIf},         {"else", Tok::KwElse},
        {"while", Tok::KwWhile},   {"for", Tok::KwFor},
        {"do", Tok::KwDo},         {"return", Tok::KwReturn},
        {"break", Tok::KwBreak},   {"continue", Tok::KwContinue}};
    auto It = Keywords.find(Name);
    Token T = makeToken(It != Keywords.end() ? It->second : Tok::Ident, L, C);
    T.Text = Name;
    return T;
  }

  if (std::isdigit(static_cast<unsigned char>(Ch))) {
    int64_t V = 0;
    if (Ch == '0' && (peek() == 'x' || peek() == 'X')) {
      advance();
      while (std::isxdigit(static_cast<unsigned char>(peek()))) {
        char D = advance();
        int Digit = std::isdigit(static_cast<unsigned char>(D))
                        ? D - '0'
                        : (std::tolower(D) - 'a' + 10);
        V = V * 16 + Digit;
      }
    } else {
      V = Ch - '0';
      while (std::isdigit(static_cast<unsigned char>(peek())))
        V = V * 10 + (advance() - '0');
    }
    Token T = makeToken(Tok::Number, L, C);
    T.Value = static_cast<int32_t>(V);
    return T;
  }

  if (Ch == '\'') {
    if (Pos >= Src.size())
      return error("unterminated character literal", L, C);
    char V = advance();
    int Decoded = V;
    if (V == '\\') {
      if (Pos >= Src.size())
        return error("unterminated character literal", L, C);
      Decoded = decodeEscape(advance());
    }
    if (peek() != '\'')
      return error("unterminated character literal", L, C);
    advance();
    Token T = makeToken(Tok::Number, L, C);
    T.Value = Decoded;
    return T;
  }

  if (Ch == '"') {
    std::string Body;
    while (Pos < Src.size() && peek() != '"') {
      char V = advance();
      if (V == '\\' && Pos < Src.size())
        V = static_cast<char>(decodeEscape(advance()));
      Body += V;
    }
    if (Pos >= Src.size())
      return error("unterminated string literal", L, C);
    advance();
    Token T = makeToken(Tok::String, L, C);
    T.Text = Body;
    return T;
  }

  auto Two = [&](char Next, Tok IfTwo, Tok IfOne) {
    if (peek() == Next) {
      advance();
      return makeToken(IfTwo, L, C);
    }
    return makeToken(IfOne, L, C);
  };

  switch (Ch) {
  case '(':
    return makeToken(Tok::LParen, L, C);
  case ')':
    return makeToken(Tok::RParen, L, C);
  case '{':
    return makeToken(Tok::LBrace, L, C);
  case '}':
    return makeToken(Tok::RBrace, L, C);
  case '[':
    return makeToken(Tok::LBracket, L, C);
  case ']':
    return makeToken(Tok::RBracket, L, C);
  case ',':
    return makeToken(Tok::Comma, L, C);
  case ';':
    return makeToken(Tok::Semi, L, C);
  case '+':
    return makeToken(Tok::Plus, L, C);
  case '-':
    return makeToken(Tok::Minus, L, C);
  case '*':
    return makeToken(Tok::Star, L, C);
  case '/':
    return makeToken(Tok::Slash, L, C);
  case '%':
    return makeToken(Tok::Percent, L, C);
  case '~':
    return makeToken(Tok::Tilde, L, C);
  case '^':
    return makeToken(Tok::Caret, L, C);
  case '=':
    return Two('=', Tok::EqEq, Tok::Assign);
  case '!':
    return Two('=', Tok::NotEq, Tok::Bang);
  case '|':
    return Two('|', Tok::PipePipe, Tok::Pipe);
  case '&':
    return Two('&', Tok::AmpAmp, Tok::Amp);
  case '<':
    if (peek() == '<') {
      advance();
      return makeToken(Tok::Shl, L, C);
    }
    return Two('=', Tok::Le, Tok::Lt);
  case '>':
    if (peek() == '>') {
      advance();
      if (peek() == '>') {
        advance();
        return makeToken(Tok::Ushr, L, C);
      }
      return makeToken(Tok::Shr, L, C);
    }
    return Two('=', Tok::Ge, Tok::Gt);
  default:
    return error(std::string("unexpected character '") + Ch + "'", L, C);
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Out;
  while (true) {
    Token T = next();
    Out.push_back(T);
    if (T.Kind == Tok::Eof || T.Kind == Tok::Error)
      break;
  }
  return Out;
}
