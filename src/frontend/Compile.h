//===- Compile.h - MC to RTL compilation driver ----------------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Front-end driver: MC source in, RTL Module out. The produced code is
/// deliberately naive — locals live in stack slots, every constant is
/// materialized, address arithmetic is explicit — matching the unoptimized
/// function instances that VPO's exhaustive search starts from (the paper's
/// "level 0").
///
//===----------------------------------------------------------------------===//

#ifndef POSE_FRONTEND_COMPILE_H
#define POSE_FRONTEND_COMPILE_H

#include "src/frontend/Ast.h"
#include "src/ir/Function.h"

namespace pose {

/// Result of compiling one MC translation unit.
struct CompileResult {
  Module M;
  std::vector<Diag> Diags;

  bool ok() const { return Diags.empty(); }

  /// Concatenates all diagnostics into one printable string.
  std::string diagText() const {
    std::string Out;
    for (const Diag &D : Diags)
      Out += "line " + std::to_string(D.Line) + ": " + D.Message + "\n";
    return Out;
  }
};

/// Compiles MC \p Source to an RTL module. On error, Diags is non-empty
/// and the module contents are unspecified.
CompileResult compileMC(const std::string &Source);

/// Name of the simulator builtin that records one output word.
inline constexpr const char *BuiltinOut = "out";

} // namespace pose

#endif // POSE_FRONTEND_COMPILE_H
