//===- Codegen.cpp - MC AST to naive RTL ------------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Code generation with name resolution and semantic checks. The output is
// intentionally unoptimized (level-0 function instances): scalar accesses
// go through explicit address formation (Lea) plus Load/Store, constants
// are materialized with Mov, conditions always compare against a register
// or zero, and structured statements emit their full block skeletons with
// explicit jumps. The optimization phases — not the front end — are
// responsible for cleaning all of this up, which is exactly the property
// the phase-order search space depends on.
//
//===----------------------------------------------------------------------===//

#include "src/frontend/Compile.h"
#include "src/frontend/Parser.h"
#include "src/ir/Verify.h"

#include <map>

using namespace pose;

namespace {

/// Generates RTL for one function.
class FuncCodegen {
public:
  FuncCodegen(Module &M, Function &F, const FuncDecl &D,
              std::vector<Diag> &Diags)
      : M(M), F(F), D(D), Diags(Diags) {}

  void run() {
    F.Name = D.Name;
    F.ReturnsValue = D.ReturnsValue;
    F.NumParams = static_cast<int32_t>(D.Params.size());
    pushScope();
    for (const std::string &P : D.Params) {
      StackSlot S;
      S.Name = P;
      S.IsParam = true;
      declare(P, F.addSlot(S), /*IsArray=*/false, D.Line);
    }
    F.addBlock();
    CurBlock = 0;
    genStmt(*D.Body);
    popScope();
    dropTrailingDeadBlocks();
    // Fall-off-the-end: return 0 (or void) like a C compiler would.
    if (!currentTerminated()) {
      if (F.ReturnsValue)
        emit(rtl::ret(Operand::imm(0)));
      else
        emit(rtl::ret(Operand::none()));
    }
  }

private:
  Module &M;
  Function &F;
  const FuncDecl &D;
  std::vector<Diag> &Diags;

  struct VarInfo {
    int32_t Slot = -1;
    bool IsArray = false;
  };
  std::vector<std::map<std::string, VarInfo>> Scopes;

  struct LoopCtx {
    int32_t BreakLabel;
    int32_t ContinueLabel;
  };
  std::vector<LoopCtx> LoopStack;

  size_t CurBlock = 0;

  //===--------------------------------------------------------------===//
  // Infrastructure
  //===--------------------------------------------------------------===//

  void error(int Line, const std::string &Msg) {
    Diags.push_back({Line, Msg});
  }

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }

  void declare(const std::string &Name, int32_t Slot, bool IsArray,
               int Line) {
    auto &Scope = Scopes.back();
    if (Scope.count(Name)) {
      error(Line, "redeclaration of '" + Name + "'");
      return;
    }
    Scope[Name] = {Slot, IsArray};
  }

  /// Looks up \p Name in local scopes; returns nullptr if not local.
  const VarInfo *lookupLocal(const std::string &Name) const {
    for (size_t I = Scopes.size(); I-- > 0;) {
      auto It = Scopes[I].find(Name);
      if (It != Scopes[I].end())
        return &It->second;
    }
    return nullptr;
  }

  void emit(Rtl I) { F.Blocks[CurBlock].Insts.push_back(std::move(I)); }

  bool currentTerminated() const {
    return F.Blocks[CurBlock].terminator() != nullptr;
  }

  /// Places the block for \p Label here in layout order and makes it
  /// current. The previous block falls through if unterminated.
  /// Removes the empty unreferenced blocks that a trailing return/break
  /// leaves behind, so the fall-off-the-end check sees the real last block.
  void dropTrailingDeadBlocks() {
    auto Referenced = [this](int32_t Label) {
      for (const BasicBlock &B : F.Blocks)
        for (const Rtl &I : B.Insts)
          if ((I.Opcode == Op::Jump || I.Opcode == Op::Branch) &&
              I.Src[0].Value == Label)
            return true;
      return false;
    };
    while (F.Blocks.size() > 1 && F.Blocks.back().empty() &&
           !Referenced(F.Blocks.back().Label))
      F.Blocks.pop_back();
    CurBlock = F.Blocks.size() - 1;
  }

  void startBlock(int32_t Label) {
    F.Blocks.emplace_back(Label);
    CurBlock = F.Blocks.size() - 1;
  }

  RegNum freshReg() { return F.makePseudo(); }

  //===--------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------===//

  /// Maps an MC binary operator token to an RTL opcode (arithmetic and
  /// bitwise only; logical/relational operators go through genBranch).
  static bool arithOp(Tok T, Op &O) {
    switch (T) {
    case Tok::Plus:
      O = Op::Add;
      return true;
    case Tok::Minus:
      O = Op::Sub;
      return true;
    case Tok::Star:
      O = Op::Mul;
      return true;
    case Tok::Slash:
      O = Op::Div;
      return true;
    case Tok::Percent:
      O = Op::Rem;
      return true;
    case Tok::Amp:
      O = Op::And;
      return true;
    case Tok::Pipe:
      O = Op::Or;
      return true;
    case Tok::Caret:
      O = Op::Xor;
      return true;
    case Tok::Shl:
      O = Op::Shl;
      return true;
    case Tok::Shr:
      O = Op::Shr;
      return true;
    case Tok::Ushr:
      O = Op::Ushr;
      return true;
    default:
      return false;
    }
  }

  static bool isBooleanOp(Tok T) {
    switch (T) {
    case Tok::AmpAmp:
    case Tok::PipePipe:
    case Tok::EqEq:
    case Tok::NotEq:
    case Tok::Lt:
    case Tok::Le:
    case Tok::Gt:
    case Tok::Ge:
      return true;
    default:
      return false;
    }
  }

  static Cond relCond(Tok T) {
    switch (T) {
    case Tok::EqEq:
      return Cond::Eq;
    case Tok::NotEq:
      return Cond::Ne;
    case Tok::Lt:
      return Cond::Lt;
    case Tok::Le:
      return Cond::Le;
    case Tok::Gt:
      return Cond::Gt;
    case Tok::Ge:
      return Cond::Ge;
    default:
      return Cond::None;
    }
  }

  /// Evaluates \p E into a fresh register and returns it.
  RegNum evalExpr(const Expr &E) {
    switch (E.Kind) {
    case ExprKind::Number: {
      RegNum T = freshReg();
      emit(rtl::mov(Operand::reg(T), Operand::imm(E.Value)));
      return T;
    }
    case ExprKind::VarRef: {
      Operand Addr = varAddress(E);
      if (Addr.isNone())
        return errorReg();
      RegNum TA = freshReg();
      emit(rtl::lea(Operand::reg(TA), Addr));
      RegNum T = freshReg();
      emit(rtl::load(Operand::reg(T), Operand::reg(TA), 0));
      return T;
    }
    case ExprKind::ArrayRef: {
      RegNum TA = arrayElementAddress(E);
      RegNum T = freshReg();
      emit(rtl::load(Operand::reg(T), Operand::reg(TA), 0));
      return T;
    }
    case ExprKind::Unary: {
      if (E.Op == Tok::Bang)
        return materializeBool(E);
      RegNum A = evalExpr(*E.Lhs);
      RegNum T = freshReg();
      emit(rtl::unary(E.Op == Tok::Minus ? Op::Neg : Op::Not,
                      Operand::reg(T), Operand::reg(A)));
      return T;
    }
    case ExprKind::Binary: {
      Op O;
      if (arithOp(E.Op, O)) {
        RegNum A = evalExpr(*E.Lhs);
        RegNum B = evalExpr(*E.Rhs);
        RegNum T = freshReg();
        emit(rtl::binary(O, Operand::reg(T), Operand::reg(A),
                         Operand::reg(B)));
        return T;
      }
      assert(isBooleanOp(E.Op) && "unhandled binary operator");
      return materializeBool(E);
    }
    case ExprKind::Assign:
      return genAssign(E);
    case ExprKind::Call:
      return genCall(E, /*NeedValue=*/true);
    }
    return errorReg();
  }

  /// Returns a dummy register after an error (keeps codegen total).
  RegNum errorReg() {
    RegNum T = freshReg();
    emit(rtl::mov(Operand::reg(T), Operand::imm(0)));
    return T;
  }

  /// Returns the Lea-able address operand (Slot or Global) for a scalar
  /// variable reference, or None on error.
  Operand varAddress(const Expr &E) {
    if (const VarInfo *V = lookupLocal(E.Name)) {
      if (V->IsArray) {
        error(E.Line, "array '" + E.Name + "' used without a subscript");
        return Operand::none();
      }
      return Operand::slot(V->Slot);
    }
    int Id = M.findGlobal(E.Name);
    if (Id < 0) {
      error(E.Line, "use of undeclared identifier '" + E.Name + "'");
      return Operand::none();
    }
    const Global &G = M.Globals[Id];
    if (G.Kind != GlobalKind::Var) {
      error(E.Line, "function '" + E.Name + "' used as a variable");
      return Operand::none();
    }
    if (G.IsArray) {
      error(E.Line, "array '" + E.Name + "' used without a subscript");
      return Operand::none();
    }
    return Operand::global(Id);
  }

  /// Emits address computation for Name[Index] and returns the register
  /// holding the element address.
  RegNum arrayElementAddress(const Expr &E) {
    Operand Base = Operand::none();
    if (const VarInfo *V = lookupLocal(E.Name)) {
      if (!V->IsArray)
        error(E.Line, "subscript on scalar '" + E.Name + "'");
      else
        Base = Operand::slot(V->Slot);
    } else {
      int Id = M.findGlobal(E.Name);
      if (Id < 0)
        error(E.Line, "use of undeclared identifier '" + E.Name + "'");
      else if (M.Globals[Id].Kind != GlobalKind::Var)
        error(E.Line, "function '" + E.Name + "' used as an array");
      else if (!M.Globals[Id].IsArray)
        error(E.Line, "subscript on scalar '" + E.Name + "'");
      else
        Base = Operand::global(Id);
    }
    RegNum TB = freshReg();
    if (Base.isNone())
      emit(rtl::mov(Operand::reg(TB), Operand::imm(0)));
    else
      emit(rtl::lea(Operand::reg(TB), Base));
    RegNum TI = evalExpr(*E.Lhs);
    RegNum TA = freshReg();
    emit(rtl::binary(Op::Add, Operand::reg(TA), Operand::reg(TB),
                     Operand::reg(TI)));
    return TA;
  }

  RegNum genAssign(const Expr &E) {
    const Expr &Target = *E.Lhs;
    RegNum V = evalExpr(*E.Rhs);
    if (Target.Kind == ExprKind::VarRef) {
      Operand Addr = varAddress(Target);
      if (Addr.isNone())
        return V;
      RegNum TA = freshReg();
      emit(rtl::lea(Operand::reg(TA), Addr));
      emit(rtl::store(Operand::reg(TA), 0, Operand::reg(V)));
      return V;
    }
    assert(Target.Kind == ExprKind::ArrayRef && "bad assignment target");
    RegNum TA = arrayElementAddress(Target);
    emit(rtl::store(Operand::reg(TA), 0, Operand::reg(V)));
    return V;
  }

  RegNum genCall(const Expr &E, bool NeedValue) {
    int Id = M.findGlobal(E.Name);
    if (Id < 0) {
      error(E.Line, "call to undeclared function '" + E.Name + "'");
      return errorReg();
    }
    const Global &G = M.Globals[Id];
    if (G.Kind == GlobalKind::Var) {
      error(E.Line, "'" + E.Name + "' is not a function");
      return errorReg();
    }
    if (static_cast<int32_t>(E.Args.size()) != G.NumParams) {
      error(E.Line, "wrong number of arguments to '" + E.Name + "'");
      return errorReg();
    }
    std::vector<Operand> Args;
    for (const ExprPtr &A : E.Args)
      Args.push_back(Operand::reg(evalExpr(*A)));
    Operand Dst = Operand::none();
    if (G.ReturnsValue)
      Dst = Operand::reg(freshReg());
    else if (NeedValue) {
      error(E.Line, "void function '" + E.Name + "' used in expression");
      return errorReg();
    }
    emit(rtl::call(Dst, Id, std::move(Args)));
    return Dst.isNone() ? FirstPseudoReg : Dst.getReg();
  }

  /// Evaluates a boolean-producing expression into 0/1 via control flow.
  RegNum materializeBool(const Expr &E) {
    RegNum T = freshReg();
    int32_t FalseL = F.makeLabel();
    int32_t EndL = F.makeLabel();
    genBranch(E, FalseL, /*WhenTrue=*/false);
    emit(rtl::mov(Operand::reg(T), Operand::imm(1)));
    emit(rtl::jump(EndL));
    startBlock(FalseL);
    emit(rtl::mov(Operand::reg(T), Operand::imm(0)));
    startBlock(EndL);
    return T;
  }

  /// Emits a conditional branch to \p Label taken when \p E is true
  /// (WhenTrue) or false (!WhenTrue); otherwise control falls through.
  void genBranch(const Expr &E, int32_t Label, bool WhenTrue) {
    if (E.Kind == ExprKind::Unary && E.Op == Tok::Bang) {
      genBranch(*E.Lhs, Label, !WhenTrue);
      return;
    }
    if (E.Kind == ExprKind::Binary && E.Op == Tok::AmpAmp) {
      if (!WhenTrue) {
        genBranch(*E.Lhs, Label, false);
        genBranch(*E.Rhs, Label, false);
      } else {
        int32_t Skip = F.makeLabel();
        genBranch(*E.Lhs, Skip, false);
        genBranch(*E.Rhs, Label, true);
        startBlock(Skip);
      }
      return;
    }
    if (E.Kind == ExprKind::Binary && E.Op == Tok::PipePipe) {
      if (WhenTrue) {
        genBranch(*E.Lhs, Label, true);
        genBranch(*E.Rhs, Label, true);
      } else {
        int32_t Skip = F.makeLabel();
        genBranch(*E.Lhs, Skip, true);
        genBranch(*E.Rhs, Label, false);
        startBlock(Skip);
      }
      return;
    }
    if (E.Kind == ExprKind::Binary && relCond(E.Op) != Cond::None) {
      RegNum A = evalExpr(*E.Lhs);
      RegNum B = evalExpr(*E.Rhs);
      emit(rtl::cmp(Operand::reg(A), Operand::reg(B)));
      Cond C = relCond(E.Op);
      emit(rtl::branch(WhenTrue ? C : invertCond(C), Label));
      startBlock(F.makeLabel());
      return;
    }
    // Any other expression: compare against zero.
    RegNum A = evalExpr(E);
    emit(rtl::cmp(Operand::reg(A), Operand::imm(0)));
    emit(rtl::branch(WhenTrue ? Cond::Ne : Cond::Eq, Label));
    startBlock(F.makeLabel());
  }

  //===--------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------===//

  void genStmt(const Stmt &S) {
    switch (S.Kind) {
    case StmtKind::Empty:
      return;
    case StmtKind::Block: {
      pushScope();
      for (const StmtPtr &Child : S.Stmts)
        genStmt(*Child);
      popScope();
      return;
    }
    case StmtKind::Expr:
      if (S.E->Kind == ExprKind::Call)
        genCall(*S.E, /*NeedValue=*/false);
      else
        evalExpr(*S.E);
      return;
    case StmtKind::Decl: {
      StackSlot Slot;
      Slot.Name = S.DeclName;
      Slot.SizeWords = S.DeclArraySize > 0 ? S.DeclArraySize : 1;
      Slot.IsArray = S.DeclArraySize > 0;
      int32_t Index = F.addSlot(Slot);
      declare(S.DeclName, Index, Slot.IsArray, S.Line);
      if (S.DeclInit) {
        RegNum V = evalExpr(*S.DeclInit);
        RegNum TA = freshReg();
        emit(rtl::lea(Operand::reg(TA), Operand::slot(Index)));
        emit(rtl::store(Operand::reg(TA), 0, Operand::reg(V)));
      }
      return;
    }
    case StmtKind::If: {
      int32_t EndL = F.makeLabel();
      int32_t ElseL = S.Else ? F.makeLabel() : EndL;
      genBranch(*S.E, ElseL, /*WhenTrue=*/false);
      genStmt(*S.Then);
      // Naive codegen always jumps to the join point; the useless-jump
      // phases (u, i) earn their keep by removing it.
      if (!currentTerminated())
        emit(rtl::jump(EndL));
      if (S.Else) {
        startBlock(ElseL);
        genStmt(*S.Else);
        if (!currentTerminated())
          emit(rtl::jump(EndL));
      }
      startBlock(EndL);
      return;
    }
    case StmtKind::While: {
      int32_t HeaderL = F.makeLabel();
      int32_t ExitL = F.makeLabel();
      startBlock(HeaderL);
      genBranch(*S.E, ExitL, /*WhenTrue=*/false);
      LoopStack.push_back({ExitL, HeaderL});
      genStmt(*S.Body);
      LoopStack.pop_back();
      if (!currentTerminated())
        emit(rtl::jump(HeaderL));
      startBlock(ExitL);
      return;
    }
    case StmtKind::DoWhile: {
      int32_t BodyL = F.makeLabel();
      int32_t CondL = F.makeLabel();
      int32_t ExitL = F.makeLabel();
      startBlock(BodyL);
      LoopStack.push_back({ExitL, CondL});
      genStmt(*S.Body);
      LoopStack.pop_back();
      startBlock(CondL);
      genBranch(*S.E, BodyL, /*WhenTrue=*/true);
      startBlock(ExitL);
      return;
    }
    case StmtKind::For: {
      if (S.Init)
        evalExpr(*S.Init);
      int32_t HeaderL = F.makeLabel();
      int32_t StepL = F.makeLabel();
      int32_t ExitL = F.makeLabel();
      startBlock(HeaderL);
      if (S.E)
        genBranch(*S.E, ExitL, /*WhenTrue=*/false);
      LoopStack.push_back({ExitL, StepL});
      genStmt(*S.Body);
      LoopStack.pop_back();
      startBlock(StepL);
      if (S.Step)
        evalExpr(*S.Step);
      emit(rtl::jump(HeaderL));
      startBlock(ExitL);
      return;
    }
    case StmtKind::Return: {
      if (F.ReturnsValue && !S.E) {
        error(S.Line, "non-void function must return a value");
        emit(rtl::ret(Operand::imm(0)));
      } else if (!F.ReturnsValue && S.E) {
        error(S.Line, "void function cannot return a value");
        emit(rtl::ret(Operand::none()));
      } else if (S.E) {
        RegNum V = evalExpr(*S.E);
        emit(rtl::ret(Operand::reg(V)));
      } else {
        emit(rtl::ret(Operand::none()));
      }
      startBlock(F.makeLabel());
      return;
    }
    case StmtKind::Break:
    case StmtKind::Continue: {
      if (LoopStack.empty()) {
        error(S.Line, S.Kind == StmtKind::Break
                          ? "break outside of a loop"
                          : "continue outside of a loop");
        return;
      }
      emit(rtl::jump(S.Kind == StmtKind::Break
                         ? LoopStack.back().BreakLabel
                         : LoopStack.back().ContinueLabel));
      startBlock(F.makeLabel());
      return;
    }
    }
  }
};

/// Removes blocks with no instructions that codegen left behind (e.g.
/// after return/break) by retargeting references to the next real block.
/// Unlike the optimizer's implicit cleanup, this is part of producing a
/// well-formed level-0 instance.
void stripEmptyBlocks(Function &F) {
  // Map each block to the first non-empty block at-or-after it.
  for (bool Changed = true; Changed;) {
    Changed = false;
    for (size_t I = 0; I < F.Blocks.size(); ++I) {
      if (!F.Blocks[I].empty() || I + 1 >= F.Blocks.size())
        continue;
      int32_t From = F.Blocks[I].Label;
      int32_t To = F.Blocks[I + 1].Label;
      for (BasicBlock &B : F.Blocks)
        for (Rtl &Inst : B.Insts)
          if ((Inst.Opcode == Op::Jump || Inst.Opcode == Op::Branch) &&
              Inst.Src[0].Value == From)
            Inst.Src[0] = Operand::label(To);
      F.Blocks.erase(F.Blocks.begin() + static_cast<long>(I));
      Changed = true;
      break;
    }
  }
  // A trailing empty block can only exist if it is unreferenced (codegen
  // always terminates the function with Ret); drop it.
  while (F.Blocks.size() > 1 && F.Blocks.back().empty())
    F.Blocks.pop_back();
}

} // namespace

CompileResult pose::compileMC(const std::string &Source) {
  CompileResult R;
  Program P = parseMC(Source, R.Diags);
  if (!R.Diags.empty())
    return R;

  // Register globals, functions, and builtins up front so calls and
  // references resolve in one pass regardless of declaration order.
  for (const GlobalDecl &G : P.Globals) {
    if (R.M.findGlobal(G.Name) >= 0) {
      R.Diags.push_back({G.Line, "duplicate global '" + G.Name + "'"});
      return R;
    }
    Global MG;
    MG.Name = G.Name;
    MG.Kind = GlobalKind::Var;
    MG.IsArray = G.IsArray;
    MG.SizeWords = G.Size;
    MG.Init = G.Init;
    MG.Init.resize(static_cast<size_t>(G.Size), 0);
    R.M.Globals.push_back(std::move(MG));
  }
  for (const FuncDecl &FD : P.Funcs) {
    if (R.M.findGlobal(FD.Name) >= 0) {
      R.Diags.push_back({FD.Line, "duplicate symbol '" + FD.Name + "'"});
      return R;
    }
    Global MG;
    MG.Name = FD.Name;
    MG.Kind = GlobalKind::Func;
    MG.FuncIndex = static_cast<int32_t>(R.M.Functions.size());
    MG.NumParams = static_cast<int32_t>(FD.Params.size());
    MG.ReturnsValue = FD.ReturnsValue;
    R.M.Globals.push_back(std::move(MG));
    R.M.Functions.emplace_back();
  }
  {
    Global Out;
    Out.Name = BuiltinOut;
    Out.Kind = GlobalKind::External;
    Out.NumParams = 1;
    Out.ReturnsValue = false;
    if (R.M.findGlobal(Out.Name) < 0)
      R.M.Globals.push_back(std::move(Out));
  }

  for (const FuncDecl &FD : P.Funcs) {
    int Id = R.M.findGlobal(FD.Name);
    Function &F = *R.M.functionFor(Id);
    FuncCodegen(R.M, F, FD, R.Diags).run();
    if (!R.Diags.empty())
      return R;
    stripEmptyBlocks(F);
    std::string Err = verifyFunction(F);
    if (!Err.empty()) {
      R.Diags.push_back({FD.Line, "internal codegen error: " + Err});
      return R;
    }
  }
  return R;
}
