//===- Parser.h - MC recursive-descent parser ------------------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser producing an MC AST. Precedence follows C.
/// Parsing stops at the first error (MC programs in this repository are
/// compiler-written workloads; error cascades are not worth recovering).
///
//===----------------------------------------------------------------------===//

#ifndef POSE_FRONTEND_PARSER_H
#define POSE_FRONTEND_PARSER_H

#include "src/frontend/Ast.h"

namespace pose {

/// Parses \p Source. On failure, Program may be partially filled and
/// \p Diags receives at least one message.
Program parseMC(const std::string &Source, std::vector<Diag> &Diags);

} // namespace pose

#endif // POSE_FRONTEND_PARSER_H
