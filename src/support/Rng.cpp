//===- Rng.cpp - Deterministic pseudo-random numbers ---------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/support/Rng.h"

// Rng is header-only; this file anchors the translation unit so the library
// always has at least one object file for it and future out-of-line helpers.
namespace pose {
namespace detail {
int RngAnchor = 0;
} // namespace detail
} // namespace pose
