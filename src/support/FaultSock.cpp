//===- FaultSock.cpp - Fault-injecting socket I/O layer -------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/support/FaultSock.h"

#include <cerrno>

#include <sys/socket.h>
#include <unistd.h>

namespace pose {

namespace {

class SystemSockIo : public SockIo {};

SystemSockIo SystemInstance;

} // namespace

ssize_t SockIo::read(int Fd, void *Buf, size_t N) {
  return ::read(Fd, Buf, N);
}

ssize_t SockIo::send(int Fd, const void *Buf, size_t N) {
  return ::send(Fd, Buf, N, MSG_NOSIGNAL);
}

SockIo &SockIo::system() { return SystemInstance; }

const char *sockFaultKindName(SockFaultKind K) {
  switch (K) {
  case SockFaultKind::ShortWrite:
    return "short-write";
  case SockFaultKind::EagainStorm:
    return "eagain-storm";
  case SockFaultKind::Disconnect:
    return "disconnect";
  case SockFaultKind::StalledPeer:
    return "stalled-peer";
  }
  return "?";
}

bool SockFaultSpec::parse(const std::string &Text,
                          std::vector<SockFaultSpec> &Out) {
  if (Text.empty())
    return false;
  std::vector<SockFaultSpec> Parsed;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t End = Text.find(',', Pos);
    if (End == std::string::npos)
      End = Text.size();
    const std::string Item = Text.substr(Pos, End - Pos);
    const size_t Colon = Item.rfind(':');
    if (Colon == std::string::npos || Colon == 0 || Colon + 1 == Item.size())
      return false;
    const std::string Name = Item.substr(0, Colon);
    SockFaultSpec S;
    bool Known = false;
    for (uint8_t K = 0;
         K <= static_cast<uint8_t>(SockFaultKind::StalledPeer); ++K)
      if (Name == sockFaultKindName(static_cast<SockFaultKind>(K))) {
        S.Kind = static_cast<SockFaultKind>(K);
        Known = true;
        break;
      }
    if (!Known)
      return false;
    uint64_t N = 0;
    for (size_t I = Colon + 1; I != Item.size(); ++I) {
      const char C = Item[I];
      if (C < '0' || C > '9')
        return false;
      const uint64_t Digit = static_cast<uint64_t>(C - '0');
      if (N > (UINT64_MAX - Digit) / 10)
        return false;
      N = N * 10 + Digit;
    }
    if (N == 0)
      return false;
    S.Nth = N;
    Parsed.push_back(S);
    if (End == Text.size())
      break;
    Pos = End + 1;
  }
  if (Parsed.empty())
    return false;
  Out = std::move(Parsed);
  return true;
}

FaultSock::FaultSock(std::vector<SockFaultSpec> Faults, SockIo *Base)
    : Faults(std::move(Faults)), Base(Base ? Base : &SockIo::system()) {}

const SockFaultSpec *FaultSock::findReadFault(uint64_t Nth) const {
  for (const SockFaultSpec &S : Faults)
    if (S.Nth == Nth && (S.Kind == SockFaultKind::Disconnect ||
                         S.Kind == SockFaultKind::StalledPeer))
      return &S;
  return nullptr;
}

const SockFaultSpec *FaultSock::findWriteFault(uint64_t Nth) const {
  for (const SockFaultSpec &S : Faults)
    if (S.Kind == SockFaultKind::ShortWrite && S.Nth == Nth)
      return &S;
  for (const SockFaultSpec &S : Faults)
    if (S.Kind == SockFaultKind::EagainStorm && Nth >= S.Nth &&
        Nth < S.Nth + kEagainStormLength)
      return &S;
  return nullptr;
}

ssize_t FaultSock::read(int Fd, void *Buf, size_t N) {
  if (Stalled.count(Fd)) {
    errno = EAGAIN;
    return -1;
  }
  const SockFaultSpec *F = findReadFault(++Reads);
  if (!F)
    return Base->read(Fd, Buf, N);
  ++Fired;
  if (F->Kind == SockFaultKind::Disconnect)
    return 0; // EOF: the peer vanished, whatever it had sent is gone.
  // StalledPeer: deliver one real byte (so a frame is guaranteed to be
  // torn mid-header), then latch the fd dry.
  const ssize_t Got = N == 0 ? 0 : Base->read(Fd, Buf, 1);
  Stalled.insert(Fd);
  return Got;
}

ssize_t FaultSock::send(int Fd, const void *Buf, size_t N) {
  const SockFaultSpec *F = findWriteFault(++Writes);
  if (!F)
    return Base->send(Fd, Buf, N);
  ++Fired;
  if (F->Kind == SockFaultKind::EagainStorm) {
    errno = EAGAIN;
    return -1;
  }
  // ShortWrite: transmit at most half for real; the flush loop must pick
  // up the remainder on a later send without corrupting the stream.
  const size_t Half = N / 2;
  if (Half == 0) {
    errno = EAGAIN;
    return -1; // Nothing to halve; behave as a zero-progress send.
  }
  return Base->send(Fd, Buf, Half);
}

void FaultSock::closed(int Fd) {
  Stalled.erase(Fd);
  Base->closed(Fd);
}

} // namespace pose
