//===- Str.h - String formatting helpers ----------------------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tiny string helpers used by printers and table writers: fixed-width
/// padding, float formatting, and joining. Kept deliberately minimal; the
/// project does not depend on iostreams in library code.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_SUPPORT_STR_H
#define POSE_SUPPORT_STR_H

#include <string>
#include <vector>

namespace pose {

/// Right-justifies \p S in a field of \p Width characters.
std::string padLeft(const std::string &S, size_t Width);

/// Left-justifies \p S in a field of \p Width characters.
std::string padRight(const std::string &S, size_t Width);

/// Formats \p V with \p Decimals digits after the point ("%.*f").
std::string fmtDouble(double V, int Decimals);

/// Formats \p V with thousands separators ("12,345").
std::string fmtGrouped(uint64_t V);

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

} // namespace pose

#endif // POSE_SUPPORT_STR_H
