//===- Rng.h - Deterministic pseudo-random numbers ------------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic PRNG (xorshift128+ variant) used by the
/// property-based tests and workload input generators. Determinism across
/// platforms matters more here than statistical quality.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_SUPPORT_RNG_H
#define POSE_SUPPORT_RNG_H

#include <cstdint>

namespace pose {

/// Deterministic 64-bit PRNG with a fixed algorithm (not std::mt19937, whose
/// distributions vary across standard library implementations).
class Rng {
public:
  explicit Rng(uint64_t Seed) {
    // SplitMix64 seeding so that small seeds still give well-mixed states.
    auto Mix = [&Seed]() {
      Seed += 0x9E3779B97F4A7C15ull;
      uint64_t Z = Seed;
      Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
      Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
      return Z ^ (Z >> 31);
    };
    S0 = Mix();
    S1 = Mix();
  }

  /// Returns the next 64 random bits.
  uint64_t next() {
    uint64_t X = S0;
    const uint64_t Y = S1;
    S0 = Y;
    X ^= X << 23;
    S1 = X ^ Y ^ (X >> 17) ^ (Y >> 26);
    return S1 + Y;
  }

  /// Returns a uniformly distributed value in [0, Bound). \p Bound must be
  /// nonzero.
  uint64_t below(uint64_t Bound) { return next() % Bound; }

  /// Returns a uniformly distributed value in [Lo, Hi] (inclusive).
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo + 1)));
  }

private:
  uint64_t S0, S1;
};

} // namespace pose

#endif // POSE_SUPPORT_RNG_H
