//===- ThreadPool.cpp - Fixed-size worker pool --------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/support/ThreadPool.h"

using namespace pose;

ThreadPool::ThreadPool(unsigned WorkerCount) {
  Workers.reserve(WorkerCount);
  for (unsigned I = 0; I != WorkerCount; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(M);
    ShuttingDown = true;
  }
  WakeWorkers.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::runIndex(const std::function<void(size_t)> &Body, size_t I) {
  try {
    Body(I);
  } catch (...) {
    std::lock_guard<std::mutex> Lock(M);
    if (!FirstError)
      FirstError = std::current_exception();
  }
}

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Body) {
  if (Workers.empty() || N <= 1) {
    // Same contract as the pooled path: every index is attempted, the
    // first exception is rethrown afterwards.
    for (size_t I = 0; I != N; ++I)
      runIndex(Body, I);
    std::exception_ptr E = std::move(FirstError);
    FirstError = nullptr;
    if (E)
      std::rethrow_exception(E);
    return;
  }
  std::unique_lock<std::mutex> Lock(M);
  Job = &Body;
  Count = N;
  Next = 0;
  Pending = N;
  ++Generation;
  WakeWorkers.notify_all();
  // The caller participates instead of blocking idle.
  while (Next < Count) {
    const size_t I = Next++;
    Lock.unlock();
    runIndex(Body, I);
    Lock.lock();
    --Pending;
  }
  JobDone.wait(Lock, [this] { return Pending == 0; });
  Job = nullptr;
  std::exception_ptr E = std::move(FirstError);
  FirstError = nullptr;
  Lock.unlock();
  if (E)
    std::rethrow_exception(E);
}

void ThreadPool::workerLoop() {
  std::unique_lock<std::mutex> Lock(M);
  uint64_t Seen = 0;
  while (true) {
    WakeWorkers.wait(Lock, [&] {
      return ShuttingDown || (Generation != Seen && Job != nullptr);
    });
    if (ShuttingDown)
      return;
    Seen = Generation;
    const std::function<void(size_t)> *Body = Job;
    while (Next < Count) {
      const size_t I = Next++;
      Lock.unlock();
      runIndex(*Body, I);
      Lock.lock();
      if (--Pending == 0)
        JobDone.notify_all();
    }
  }
}
