//===- FaultFs.h - Fault-injecting store I/O layer -------------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mutating-I/O surface the artifact store writes through, plus a
/// deterministic fault injector over it. The store's crash-consistency
/// contract — a failed or interrupted write leaves either the old
/// artifact or none, never a torn file — is only worth anything if it
/// holds under real filesystem failures: short writes, ENOSPC, EIO, and
/// a process dying on either side of the committing rename. Those cannot
/// be provoked reliably on a healthy filesystem, so \ref FaultFs injects
/// them at an exact operation index instead, driven by the execution-only
/// `posec --fault-io=<spec>` flag (like crash-class `--fault-func` plans,
/// the spec never enters the store's config fingerprint — a fault-
/// injected run shares artifacts with a clean one).
///
/// Crash faults come in two modes: `Exit` really terminates the process
/// (what a supervised worker under test does), `Simulate` latches a
/// "dead" state in which every later operation — including the store's
/// own cleanup — silently does nothing, which is exactly what a crashed
/// process's remaining code would have done. The property tests iterate
/// every fault kind at every operation index and assert the
/// old-or-none contract after each.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_SUPPORT_FAULTFS_H
#define POSE_SUPPORT_FAULTFS_H

#include <cstdint>
#include <string>
#include <vector>

namespace pose {

/// The mutating filesystem operations of an artifact write. The default
/// implementation is the real filesystem (POSIX I/O); \ref FaultFs wraps
/// it. Reads are not virtualized: corrupt *existing* bytes are the
/// store's validation problem (and fsck's), not an injection target.
class StoreIo {
public:
  virtual ~StoreIo() = default;

  /// Writes \p Size bytes to \p Path, truncating any existing file. On
  /// failure returns false with \p Err set to the errno (0 when none is
  /// available) and \p Written to the bytes that actually landed — short
  /// writes are real partial state on disk, not a clean no-op.
  virtual bool writeFile(const std::string &Path, const uint8_t *Data,
                         size_t Size, int &Err, size_t &Written);

  /// Atomically renames \p From over \p To. False with \p Err on failure.
  virtual bool rename(const std::string &From, const std::string &To,
                      int &Err);

  /// Best-effort unlink for cleanup paths; false when nothing was
  /// removed.
  virtual bool remove(const std::string &Path);

  /// The real-filesystem passthrough instance.
  static StoreIo &system();
};

/// The StoreIo used by every ArtifactStore constructed without an
/// explicit one; defaults to StoreIo::system().
StoreIo &processStoreIo();

/// Overrides \ref processStoreIo (nullptr restores the system instance).
/// Not thread-safe: install before any store activity — posec does it
/// right after argument parsing, tests before constructing stores.
void setProcessStoreIo(StoreIo *Io);

/// The injectable failures. Write-class kinds fire on the Nth
/// writeFile(); crash-class kinds fire on the Nth rename() — the two
/// sides of the atomic-commit protocol.
enum class IoFaultKind : uint8_t {
  ShortWrite,        ///< Nth write persists only half its bytes, then
                     ///< fails with ENOSPC (a torn temp file on disk).
  Enospc,            ///< Nth write fails with ENOSPC, nothing written.
  Eio,               ///< Nth write fails with EIO, nothing written.
  CrashBeforeRename, ///< Process dies before the Nth rename commits:
                     ///< the temp file is orphaned, the target untouched.
  CrashAfterRename,  ///< Process dies right after the Nth rename: the
                     ///< new artifact is committed, everything later
                     ///< (checkpoint cleanup, ...) never runs.
};

/// Spec-syntax name ("shortwrite", "crash-before-rename", ...).
const char *ioFaultKindName(IoFaultKind K);

/// One injected fault: the Nth operation of the matching class.
struct IoFaultSpec {
  IoFaultKind Kind = IoFaultKind::Enospc;
  uint64_t Nth = 1; ///< 1-based among operations of the matching class.

  /// Parses "<kind>:<nth>[,<kind>:<nth>...]" with the names above and a
  /// positive index. False (and \p Out unspecified) on any syntax error.
  static bool parse(const std::string &Text, std::vector<IoFaultSpec> &Out);
};

/// Exit status of a FaultFs crash in Exit mode. Distinct from every
/// documented posec exit code so an injected I/O crash is recognizable
/// in supervisor diagnostics and test assertions.
constexpr int kIoCrashExit = 86;

/// StoreIo decorator that injects the faults of its spec at exact
/// operation indices and forwards everything else to the base instance.
class FaultFs : public StoreIo {
public:
  enum class CrashMode {
    Exit,     ///< Crash kinds _exit(kIoCrashExit): real process death.
    Simulate, ///< Crash kinds latch crashed(): every later operation
              ///< silently no-ops, as a dead process's code would.
  };

  explicit FaultFs(std::vector<IoFaultSpec> Faults,
                   CrashMode Mode = CrashMode::Simulate,
                   StoreIo *Base = nullptr);

  bool writeFile(const std::string &Path, const uint8_t *Data, size_t Size,
                 int &Err, size_t &Written) override;
  bool rename(const std::string &From, const std::string &To,
              int &Err) override;
  bool remove(const std::string &Path) override;

  /// Simulate mode: true once a crash point was hit.
  bool crashed() const { return Crashed; }
  uint64_t writeOps() const { return Writes; }
  uint64_t renameOps() const { return Renames; }

private:
  const IoFaultSpec *findWriteFault(uint64_t Nth) const;
  const IoFaultSpec *findRenameFault(uint64_t Nth) const;
  void crash();

  std::vector<IoFaultSpec> Faults;
  CrashMode Mode;
  StoreIo *Base;
  uint64_t Writes = 0;
  uint64_t Renames = 0;
  bool Crashed = false;
};

} // namespace pose

#endif // POSE_SUPPORT_FAULTFS_H
