//===- Str.cpp - String formatting helpers -------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/support/Str.h"

#include <cstdio>

using namespace pose;

std::string pose::padLeft(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return std::string(Width - S.size(), ' ') + S;
}

std::string pose::padRight(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return S + std::string(Width - S.size(), ' ');
}

std::string pose::fmtDouble(double V, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, V);
  return Buf;
}

std::string pose::fmtGrouped(uint64_t V) {
  std::string Raw = std::to_string(V);
  std::string Out;
  size_t Count = 0;
  for (size_t I = Raw.size(); I > 0; --I) {
    Out.insert(Out.begin(), Raw[I - 1]);
    if (++Count % 3 == 0 && I != 1)
      Out.insert(Out.begin(), ',');
  }
  return Out;
}

std::string pose::join(const std::vector<std::string> &Parts,
                       const std::string &Sep) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}
