//===- RetryPolicy.h - Bounded retries with backoff and jitter -*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The retry schedule of the supervised sweep: a bounded number of
/// retries, exponential backoff between them, and deterministic jitter so
/// a fleet of supervisors retrying the same flaky dependency does not
/// stampede in lockstep. Jitter is derived from a caller-provided salt
/// (the job's canonical hash) instead of a global RNG, so the same job
/// retried on the same attempt always waits the same amount — retry
/// timing is reproducible, like everything else in the enumerator.
///
/// The policy is budget-aware: when the whole sweep runs under a
/// wall-clock deadline, a retry whose backoff delay would eat the rest of
/// the budget is refused outright (the job degrades instead of burning
/// the other jobs' time sleeping).
///
//===----------------------------------------------------------------------===//

#ifndef POSE_SUPPORT_RETRYPOLICY_H
#define POSE_SUPPORT_RETRYPOLICY_H

#include <cstdint>

namespace pose {

struct RetryPolicy {
  /// Retries after the first attempt; MaxRetries + 1 total attempts.
  unsigned MaxRetries = 2;
  /// Backoff before retry #1; doubles per retry.
  uint64_t BaseDelayMs = 100;
  /// Backoff ceiling (before jitter).
  uint64_t MaxDelayMs = 5'000;
  /// Additive jitter as a percentage of the backoff: the actual delay is
  /// backoff + [0, backoff * JitterPct / 100], deterministic in (salt,
  /// retry index). 0 disables jitter.
  uint32_t JitterPct = 20;

  /// True while another retry is allowed after \p FailedAttempts failures.
  bool shouldRetry(unsigned FailedAttempts) const {
    return FailedAttempts <= MaxRetries;
  }

  /// Exponential backoff before retry \p Retry (1-based), without jitter:
  /// BaseDelayMs * 2^(Retry-1), saturating at MaxDelayMs.
  uint64_t backoffMs(unsigned Retry) const;

  /// Backoff plus deterministic jitter derived from \p Salt.
  uint64_t delayMs(unsigned Retry, uint64_t Salt) const;

  /// Budget-aware delay for retry \p Retry: false when retries are
  /// exhausted, or when \p HasDeadline and the delay would consume the
  /// remaining \p RemainingMs (a retry that can only start after the
  /// deadline is pointless). On success \p DelayOut is the time to sleep.
  bool nextDelayMs(unsigned Retry, uint64_t Salt, bool HasDeadline,
                   uint64_t RemainingMs, uint64_t &DelayOut) const;
};

} // namespace pose

#endif // POSE_SUPPORT_RETRYPOLICY_H
