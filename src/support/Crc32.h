//===- Crc32.h - CRC-32 checksum ------------------------------*- C++ -*-===//
//
// Part of POSE, a reproduction of Kulkarni et al., "Exhaustive Optimization
// Phase Order Space Exploration" (CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CRC-32 (IEEE 802.3 polynomial) over byte buffers. The paper uses a CRC
/// checksum as one of the three numbers identifying a function instance
/// because, unlike a plain byte sum, it is sensitive to byte order.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_SUPPORT_CRC32_H
#define POSE_SUPPORT_CRC32_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pose {

/// Computes the CRC-32 checksum of \p Size bytes starting at \p Data.
uint32_t crc32(const uint8_t *Data, size_t Size);

/// Convenience overload for byte vectors.
uint32_t crc32(const std::vector<uint8_t> &Bytes);

/// Incremental CRC-32 computation for streamed serialization.
class Crc32Stream {
public:
  /// Folds \p Byte into the running checksum.
  void update(uint8_t Byte);

  /// Folds \p Size bytes at \p Data into the running checksum. Uses the
  /// slicing-by-8 table walk (eight table lookups per eight input bytes
  /// instead of eight dependent per-byte steps), so bulk updates over a
  /// whole serialized buffer run several times faster than streaming the
  /// same bytes one at a time.
  void update(const uint8_t *Data, size_t Size);

  /// Returns the finalized checksum for the bytes seen so far.
  uint32_t value() const { return ~State; }

private:
  uint32_t State = 0xFFFFFFFFu;
};

} // namespace pose

#endif // POSE_SUPPORT_CRC32_H
