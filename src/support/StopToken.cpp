//===- StopToken.cpp - Cooperative cancellation and resource limits -----------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/support/StopToken.h"

using namespace pose;

const char *pose::stopReasonName(StopReason R) {
  switch (R) {
  case StopReason::Complete:
    return "complete";
  case StopReason::LevelBudget:
    return "level-budget";
  case StopReason::NodeBudget:
    return "node-budget";
  case StopReason::Deadline:
    return "deadline";
  case StopReason::MemoryBudget:
    return "memory-budget";
  case StopReason::Cancelled:
    return "cancelled";
  case StopReason::VerifierFailure:
    return "verifier-failure";
  case StopReason::InternalError:
    return "internal-error";
  case StopReason::WorkerCrash:
    return "worker-crash";
  }
  return "?";
}
