//===- Subprocess.cpp - Sandboxed child process execution ---------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/support/Subprocess.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace pose;

namespace {

using Clock = std::chrono::steady_clock;

void closeFd(int &Fd) {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

/// Reaps \p Pid, blocking, retrying across EINTR.
int awaitChild(pid_t Pid) {
  int Status = 0;
  while (::waitpid(Pid, &Status, 0) < 0 && errno == EINTR) {
  }
  return Status;
}

/// Non-blocking reap attempt; returns waitpid's pid-or-zero, EINTR-safe.
pid_t tryReap(pid_t Pid, int &Status) {
  pid_t Got;
  while ((Got = ::waitpid(Pid, &Status, WNOHANG)) < 0 && errno == EINTR) {
  }
  return Got;
}

/// After a kill, how long an idle pipe is granted before we stop waiting
/// for EOF: the dead tree's buffered output arrives immediately, and an
/// orphan that escaped the process group (changed its own pgid) must not
/// stall the pool. Each successful read restarts the window.
constexpr uint64_t kGraceIdleMs = 50;

} // namespace

const char *pose::exitKindName(ExitKind K) {
  switch (K) {
  case ExitKind::Exited:
    return "exited";
  case ExitKind::Signalled:
    return "signalled";
  case ExitKind::TimedOut:
    return "timed-out";
  case ExitKind::SpawnFailed:
    return "spawn-failed";
  case ExitKind::PollFailed:
    return "poll-failed";
  }
  return "?";
}

/// One live child: its pipes, its kill timer, and the result being
/// accumulated. The pool owns the pid until the child is reaped.
struct SubprocessPool::Child {
  JobId Id = 0;
  pid_t Pid = -1;
  int OutFd = -1;
  int ErrFd = -1;
  SubprocessResult R;
  bool HasDeadline = false;
  Clock::time_point Deadline{};
  bool Killed = false;
  Clock::time_point GraceDeadline{};
};

// Out-of-line where Child is complete: the header's vector<Child> member
// only works with an incomplete Child if nothing touching the vector is
// inline.
SubprocessPool::SubprocessPool() = default;

size_t SubprocessPool::live() const { return Children.size(); }

bool SubprocessPool::idle() const {
  return Children.empty() && Ready.empty();
}

SubprocessPool::~SubprocessPool() {
  for (Child &C : Children) {
    ::kill(-C.Pid, SIGKILL);
    ::kill(C.Pid, SIGKILL);
    closeFd(C.OutFd);
    closeFd(C.ErrFd);
    awaitChild(C.Pid);
  }
}

SubprocessPool::JobId SubprocessPool::spawn(const SubprocessSpec &Spec) {
  const JobId Id = NextId++;
  SubprocessResult R;

  auto Fail = [&](std::string Error) {
    R.Kind = ExitKind::SpawnFailed;
    R.Error = std::move(Error);
    Ready.emplace_back(Id, std::move(R));
    return Id;
  };

  if (Spec.Argv.empty())
    return Fail("empty argv");

  // Three pipes: child stdout, child stderr, and a CLOEXEC status pipe
  // that distinguishes "exec failed" from "child ran and exited" — a
  // successful exec closes the write end, a failed one writes errno.
  int OutPipe[2] = {-1, -1}, ErrPipe[2] = {-1, -1}, ExecPipe[2] = {-1, -1};
  if (::pipe(OutPipe) != 0 || ::pipe(ErrPipe) != 0 || ::pipe(ExecPipe) != 0) {
    const int E = errno;
    closeFd(OutPipe[0]);
    closeFd(OutPipe[1]);
    closeFd(ErrPipe[0]);
    closeFd(ErrPipe[1]);
    closeFd(ExecPipe[0]);
    closeFd(ExecPipe[1]);
    return Fail(std::string("pipe: ") + std::strerror(E));
  }
  ::fcntl(ExecPipe[1], F_SETFD, FD_CLOEXEC);

  const pid_t Pid = ::fork();
  if (Pid < 0) {
    const int E = errno;
    closeFd(OutPipe[0]);
    closeFd(OutPipe[1]);
    closeFd(ErrPipe[0]);
    closeFd(ErrPipe[1]);
    closeFd(ExecPipe[0]);
    closeFd(ExecPipe[1]);
    return Fail(std::string("fork: ") + std::strerror(E));
  }

  if (Pid == 0) {
    // Child: lead a fresh process group (so the kill timer can SIGKILL
    // the whole tree, not just the immediate child), wire the pipes,
    // apply the address-space cap, exec. Only async-signal-safe calls
    // from here on. Inherited read ends of sibling children's pipes are
    // harmless: they are read ends, so they cannot hold a sibling's EOF
    // hostage.
    ::setpgid(0, 0);
    ::dup2(OutPipe[1], STDOUT_FILENO);
    ::dup2(ErrPipe[1], STDERR_FILENO);
    ::close(OutPipe[0]);
    ::close(OutPipe[1]);
    ::close(ErrPipe[0]);
    ::close(ErrPipe[1]);
    ::close(ExecPipe[0]);
    if (Spec.MemoryLimitBytes != 0) {
      struct rlimit RL;
      RL.rlim_cur = Spec.MemoryLimitBytes;
      RL.rlim_max = Spec.MemoryLimitBytes;
      ::setrlimit(RLIMIT_AS, &RL);
    }
    std::vector<char *> Argv;
    Argv.reserve(Spec.Argv.size() + 1);
    for (const std::string &A : Spec.Argv)
      Argv.push_back(const_cast<char *>(A.c_str()));
    Argv.push_back(nullptr);
    ::execv(Argv[0], Argv.data());
    const int ExecErrno = errno;
    ssize_t Ignored = ::write(ExecPipe[1], &ExecErrno, sizeof(ExecErrno));
    (void)Ignored;
    ::_exit(127);
  }

  // Parent. Mirror the child's setpgid — whichever side runs first wins,
  // both agree on the group id.
  ::setpgid(Pid, Pid);
  closeFd(OutPipe[1]);
  closeFd(ErrPipe[1]);
  closeFd(ExecPipe[1]);

  // The status pipe resolves quickly either way: EOF on successful exec
  // (CLOEXEC), an errno value on failure. This is the only blocking read
  // in spawn(), and it is bounded by the exec itself.
  int ExecErrno = 0;
  ssize_t N;
  while ((N = ::read(ExecPipe[0], &ExecErrno, sizeof(ExecErrno))) < 0 &&
         errno == EINTR) {
  }
  closeFd(ExecPipe[0]);
  if (N == static_cast<ssize_t>(sizeof(ExecErrno))) {
    awaitChild(Pid);
    closeFd(OutPipe[0]);
    closeFd(ErrPipe[0]);
    return Fail("cannot exec '" + Spec.Argv[0] +
                "': " + std::strerror(ExecErrno));
  }

  Child C;
  C.Id = Id;
  C.Pid = Pid;
  C.OutFd = OutPipe[0];
  C.ErrFd = ErrPipe[0];
  C.HasDeadline = Spec.TimeoutMs != 0;
  if (C.HasDeadline)
    C.Deadline = Clock::now() + std::chrono::milliseconds(Spec.TimeoutMs);
  Children.push_back(std::move(C));
  return Id;
}

bool SubprocessPool::kill(JobId Id) {
  for (Child &C : Children) {
    if (C.Id != Id)
      continue;
    if (!C.Killed) {
      ::kill(-C.Pid, SIGKILL);
      ::kill(C.Pid, SIGKILL);
      C.Killed = true;
      C.GraceDeadline = Clock::now() + std::chrono::milliseconds(kGraceIdleMs);
    }
    return true;
  }
  return false;
}

std::vector<std::pair<SubprocessPool::JobId, SubprocessResult>>
SubprocessPool::wait(uint64_t MaxWaitMs) {
  return wait(MaxWaitMs, nullptr);
}

std::vector<std::pair<SubprocessPool::JobId, SubprocessResult>>
SubprocessPool::wait(uint64_t MaxWaitMs, std::vector<ExternalFd> *External) {
  std::vector<std::pair<JobId, SubprocessResult>> Out;
  std::swap(Out, Ready);
  if (External)
    for (ExternalFd &E : *External)
      E.Revents = 0;

  const Clock::time_point WaitDeadline =
      Clock::now() + std::chrono::milliseconds(MaxWaitMs);
  bool Expired = false;
  char Chunk[4096];

  for (;;) {
    const Clock::time_point Now = Clock::now();

    // Fire kill timers, and force-close the pipes of killed children
    // whose grace window ran out without producing data.
    for (Child &C : Children) {
      if (!C.Killed && C.HasDeadline && Now >= C.Deadline) {
        // Nuke the whole process group: a worker's own children must not
        // survive it (they would hold the pipe write ends open).
        ::kill(-C.Pid, SIGKILL);
        ::kill(C.Pid, SIGKILL);
        C.Killed = true;
        C.GraceDeadline = Now + std::chrono::milliseconds(kGraceIdleMs);
      }
      if (C.Killed && Now >= C.GraceDeadline) {
        closeFd(C.OutFd);
        closeFd(C.ErrFd);
      }
    }

    // Reap children whose pipes are fully closed. WNOHANG can come up
    // empty for an instant after a SIGKILL; such a child stays and the
    // short reap tick below retries.
    for (size_t I = 0; I != Children.size();) {
      Child &C = Children[I];
      if (C.OutFd >= 0 || C.ErrFd >= 0) {
        ++I;
        continue;
      }
      int Status = 0;
      const pid_t Got = tryReap(C.Pid, Status);
      if (Got == 0) {
        ++I;
        continue;
      }
      if (C.Killed) {
        C.R.Kind = ExitKind::TimedOut;
        C.R.Signal = SIGKILL;
      } else if (Got > 0 && WIFSIGNALED(Status)) {
        C.R.Kind = ExitKind::Signalled;
        C.R.Signal = WTERMSIG(Status);
      } else {
        C.R.Kind = ExitKind::Exited;
        C.R.ExitCode =
            (Got > 0 && WIFEXITED(Status)) ? WEXITSTATUS(Status) : -1;
      }
      Out.emplace_back(C.Id, std::move(C.R));
      Children.erase(Children.begin() + I);
    }

    if (!Out.empty() || Expired || (Children.empty() && !External))
      return Out;

    // Sleep until the nearest of: the caller's wait deadline, a kill
    // timer, a grace window, or a short retry tick for an unreapable
    // just-killed child.
    Clock::time_point Next = WaitDeadline;
    bool ReapPending = false;
    for (const Child &C : Children) {
      if (!C.Killed && C.HasDeadline && C.Deadline < Next)
        Next = C.Deadline;
      if (C.Killed && C.GraceDeadline < Next)
        Next = C.GraceDeadline;
      if (C.OutFd < 0 && C.ErrFd < 0)
        ReapPending = true;
    }
    int64_t PollMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                         Next - Clock::now())
                         .count();
    PollMs = std::max<int64_t>(PollMs, 0);
    if (ReapPending)
      PollMs = std::min<int64_t>(PollMs, 10);
    PollMs = std::min<int64_t>(PollMs, 1000 * 60 * 60);

    // One poll across every live pipe of every child, plus any external
    // fds the caller wants multiplexed into the same blocking point.
    struct Slot {
      size_t ChildIdx;
      bool IsErr;
    };
    std::vector<struct pollfd> Fds;
    std::vector<Slot> Slots;
    Fds.reserve(Children.size() * 2);
    Slots.reserve(Children.size() * 2);
    for (size_t I = 0; I != Children.size(); ++I) {
      const Child &C = Children[I];
      if (C.OutFd >= 0) {
        Fds.push_back({C.OutFd, POLLIN, 0});
        Slots.push_back({I, false});
      }
      if (C.ErrFd >= 0) {
        Fds.push_back({C.ErrFd, POLLIN, 0});
        Slots.push_back({I, true});
      }
    }
    const size_t ExternalBase = Fds.size();
    if (External)
      for (const ExternalFd &E : *External)
        if (E.Fd >= 0)
          Fds.push_back({E.Fd, E.Events, 0});
    const int NReady = ::poll(Fds.empty() ? nullptr : Fds.data(),
                              static_cast<nfds_t>(Fds.size()),
                              static_cast<int>(PollMs));
    if (NReady < 0 && errno != EINTR) {
      // The multiplexer itself failed (EBADF/EINVAL/ENOMEM) — a harness
      // bug, not a timeout. Masking it as Expired would report every
      // in-flight job as merely slow; instead kill and reap the children
      // now and surface the errno in each result as its own failure
      // class, so the caller sees "poll: Bad file descriptor" and not a
      // phantom hang.
      const int PollErrno = errno;
      for (Child &C : Children) {
        ::kill(-C.Pid, SIGKILL);
        ::kill(C.Pid, SIGKILL);
        closeFd(C.OutFd);
        closeFd(C.ErrFd);
        awaitChild(C.Pid);
        C.R.Kind = ExitKind::PollFailed;
        C.R.Error = std::string("poll: ") + std::strerror(PollErrno);
        Out.emplace_back(C.Id, std::move(C.R));
      }
      Children.clear();
      return Out;
    }

    for (size_t I = 0; NReady > 0 && I != ExternalBase; ++I) {
      if (Fds[I].revents == 0)
        continue;
      Child &C = Children[Slots[I].ChildIdx];
      int &Fd = Slots[I].IsErr ? C.ErrFd : C.OutFd;
      std::string &Buf = Slots[I].IsErr ? C.R.Stderr : C.R.Stdout;
      if ((Fds[I].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        // POLLNVAL or similar: nothing to read, never will be.
        closeFd(Fd);
        continue;
      }
      // Note POLLHUP does not mean drained: a closed write end with
      // buffered data reports POLLIN|POLLHUP and read() keeps returning
      // that data until the 0-byte EOF. We take one chunk per poll pass,
      // so a half-drained pipe simply reports readable again next round.
      ssize_t Got;
      do
        Got = ::read(Fd, Chunk, sizeof(Chunk));
      while (Got < 0 && errno == EINTR);
      if (Got > 0) {
        Buf.append(Chunk, static_cast<size_t>(Got));
        if (C.Killed) // Data restarts the post-kill idle window.
          C.GraceDeadline =
              Clock::now() + std::chrono::milliseconds(kGraceIdleMs);
      } else if (Got == 0 || Got < 0) {
        // EOF, or a real error (EINTR was retried above, so a signal can
        // no longer masquerade as end-of-stream and close a live pipe).
        closeFd(Fd);
      }
    }

    // Surface external activity: copy revents out and return immediately
    // (possibly with no child results) so the owner can service sockets.
    if (External && NReady > 0) {
      bool ExternalReady = false;
      size_t J = ExternalBase;
      for (ExternalFd &E : *External) {
        if (E.Fd < 0)
          continue;
        E.Revents = Fds[J].revents;
        ExternalReady |= E.Revents != 0;
        ++J;
      }
      if (ExternalReady)
        Expired = true; // Loop once more: fire timers, reap, then return.
    }

    if (Clock::now() >= WaitDeadline)
      Expired = true; // Loop once more: fire timers, reap, then return.
  }
}

SubprocessResult pose::runSubprocess(const SubprocessSpec &Spec) {
  SubprocessPool Pool;
  Pool.spawn(Spec);
  for (;;) {
    auto Done = Pool.wait(1000 * 60 * 60);
    if (!Done.empty())
      return std::move(Done.front().second);
  }
}
