//===- Subprocess.cpp - Sandboxed child process execution ---------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/support/Subprocess.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace pose;

namespace {

using Clock = std::chrono::steady_clock;

void closeFd(int &Fd) {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

/// Reaps \p Pid, retrying across EINTR.
int awaitChild(pid_t Pid) {
  int Status = 0;
  while (::waitpid(Pid, &Status, 0) < 0 && errno == EINTR) {
  }
  return Status;
}

} // namespace

const char *pose::exitKindName(ExitKind K) {
  switch (K) {
  case ExitKind::Exited:
    return "exited";
  case ExitKind::Signalled:
    return "signalled";
  case ExitKind::TimedOut:
    return "timed-out";
  case ExitKind::SpawnFailed:
    return "spawn-failed";
  }
  return "?";
}

SubprocessResult pose::runSubprocess(const SubprocessSpec &Spec) {
  SubprocessResult R;
  if (Spec.Argv.empty()) {
    R.Error = "empty argv";
    return R;
  }

  // Three pipes: child stdout, child stderr, and a CLOEXEC status pipe
  // that distinguishes "exec failed" from "child ran and exited" — a
  // successful exec closes the write end, a failed one writes errno.
  int OutPipe[2] = {-1, -1}, ErrPipe[2] = {-1, -1}, ExecPipe[2] = {-1, -1};
  if (::pipe(OutPipe) != 0 || ::pipe(ErrPipe) != 0 || ::pipe(ExecPipe) != 0) {
    R.Error = std::string("pipe: ") + std::strerror(errno);
    closeFd(OutPipe[0]);
    closeFd(OutPipe[1]);
    closeFd(ErrPipe[0]);
    closeFd(ErrPipe[1]);
    closeFd(ExecPipe[0]);
    closeFd(ExecPipe[1]);
    return R;
  }
  ::fcntl(ExecPipe[1], F_SETFD, FD_CLOEXEC);

  const pid_t Pid = ::fork();
  if (Pid < 0) {
    R.Error = std::string("fork: ") + std::strerror(errno);
    closeFd(OutPipe[0]);
    closeFd(OutPipe[1]);
    closeFd(ErrPipe[0]);
    closeFd(ErrPipe[1]);
    closeFd(ExecPipe[0]);
    closeFd(ExecPipe[1]);
    return R;
  }

  if (Pid == 0) {
    // Child: lead a fresh process group (so the kill timer can SIGKILL
    // the whole tree, not just the immediate child), wire the pipes,
    // apply the address-space cap, exec. Only async-signal-safe calls
    // from here on.
    ::setpgid(0, 0);
    ::dup2(OutPipe[1], STDOUT_FILENO);
    ::dup2(ErrPipe[1], STDERR_FILENO);
    ::close(OutPipe[0]);
    ::close(OutPipe[1]);
    ::close(ErrPipe[0]);
    ::close(ErrPipe[1]);
    ::close(ExecPipe[0]);
    if (Spec.MemoryLimitBytes != 0) {
      struct rlimit RL;
      RL.rlim_cur = Spec.MemoryLimitBytes;
      RL.rlim_max = Spec.MemoryLimitBytes;
      ::setrlimit(RLIMIT_AS, &RL);
    }
    std::vector<char *> Argv;
    Argv.reserve(Spec.Argv.size() + 1);
    for (const std::string &A : Spec.Argv)
      Argv.push_back(const_cast<char *>(A.c_str()));
    Argv.push_back(nullptr);
    ::execv(Argv[0], Argv.data());
    const int ExecErrno = errno;
    ssize_t Ignored = ::write(ExecPipe[1], &ExecErrno, sizeof(ExecErrno));
    (void)Ignored;
    ::_exit(127);
  }

  // Parent. Mirror the child's setpgid — whichever side runs first wins,
  // both agree on the group id.
  ::setpgid(Pid, Pid);
  closeFd(OutPipe[1]);
  closeFd(ErrPipe[1]);
  closeFd(ExecPipe[1]);

  // The status pipe resolves quickly either way: EOF on successful exec
  // (CLOEXEC), an errno value on failure.
  int ExecErrno = 0;
  ssize_t N;
  while ((N = ::read(ExecPipe[0], &ExecErrno, sizeof(ExecErrno))) < 0 &&
         errno == EINTR) {
  }
  closeFd(ExecPipe[0]);
  if (N == static_cast<ssize_t>(sizeof(ExecErrno))) {
    awaitChild(Pid);
    closeFd(OutPipe[0]);
    closeFd(ErrPipe[0]);
    R.Kind = ExitKind::SpawnFailed;
    R.Error = "cannot exec '" + Spec.Argv[0] +
              "': " + std::strerror(ExecErrno);
    return R;
  }

  // Drain stdout/stderr under the kill timer. A hung child produces no
  // EOF, so the poll timeout is what fires the timer.
  const bool HasDeadline = Spec.TimeoutMs != 0;
  const Clock::time_point Deadline =
      Clock::now() + std::chrono::milliseconds(Spec.TimeoutMs);
  bool Killed = false;
  struct Stream {
    int Fd;
    std::string *Buf;
  } Streams[2] = {{OutPipe[0], &R.Stdout}, {ErrPipe[0], &R.Stderr}};

  int OpenStreams = 2;
  char Chunk[4096];
  while (OpenStreams > 0) {
    int PollMs = -1;
    if (HasDeadline && !Killed) {
      const auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
          Deadline - Clock::now());
      if (Left.count() <= 0) {
        // Nuke the whole process group: a worker's own children must not
        // survive it (they would hold the pipe write ends open).
        ::kill(-Pid, SIGKILL);
        ::kill(Pid, SIGKILL);
        Killed = true;
      } else {
        PollMs = static_cast<int>(
            std::min<int64_t>(Left.count(), 1000 * 60 * 60));
      }
    }
    // After the kill, whatever the dead tree left buffered arrives
    // immediately; an orphan that escaped the group (changed its own
    // pgid) must not stall the caller waiting for EOF, so the drain
    // switches to a short grace poll and stops on the first idle one.
    if (Killed)
      PollMs = 50;
    struct pollfd Fds[2];
    int NFds = 0;
    for (const Stream &S : Streams)
      if (S.Fd >= 0) {
        Fds[NFds].fd = S.Fd;
        Fds[NFds].events = POLLIN;
        Fds[NFds].revents = 0;
        ++NFds;
      }
    const int Ready = ::poll(Fds, static_cast<nfds_t>(NFds), PollMs);
    if (Ready < 0) {
      if (errno == EINTR)
        continue;
      break; // Unexpected; fall through to reap with what we have.
    }
    if (Ready == 0) {
      if (Killed)
        break; // Grace poll came up empty; stop waiting for EOF.
      continue; // Timer expiry is handled at the top of the loop.
    }
    for (int I = 0; I != NFds; ++I) {
      if (Fds[I].revents == 0)
        continue;
      for (Stream &S : Streams) {
        if (S.Fd != Fds[I].fd)
          continue;
        const ssize_t Got = ::read(S.Fd, Chunk, sizeof(Chunk));
        if (Got > 0) {
          S.Buf->append(Chunk, static_cast<size_t>(Got));
        } else if (Got == 0 || (Got < 0 && errno != EINTR)) {
          closeFd(S.Fd);
          --OpenStreams;
        }
      }
    }
  }
  closeFd(OutPipe[0]);
  closeFd(ErrPipe[0]);

  const int Status = awaitChild(Pid);
  if (Killed) {
    R.Kind = ExitKind::TimedOut;
    R.Signal = SIGKILL;
    return R;
  }
  if (WIFSIGNALED(Status)) {
    R.Kind = ExitKind::Signalled;
    R.Signal = WTERMSIG(Status);
    return R;
  }
  R.Kind = ExitKind::Exited;
  R.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return R;
}
