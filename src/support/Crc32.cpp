//===- Crc32.cpp - CRC-32 checksum ---------------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/support/Crc32.h"

#include <array>

using namespace pose;

namespace {

/// Builds the slicing-by-8 lookup tables for the reflected IEEE
/// polynomial 0xEDB88320 at compile time, avoiding a static constructor.
/// Table[0] is the classic per-byte table; Table[K][I] advances the state
/// contribution of a byte that sits K positions deeper in the input, so
/// eight bytes fold with eight independent lookups instead of eight
/// serially dependent per-byte steps.
constexpr std::array<std::array<uint32_t, 256>, 8> makeTables() {
  std::array<std::array<uint32_t, 256>, 8> Tables{};
  for (uint32_t I = 0; I < 256; ++I) {
    uint32_t C = I;
    for (int K = 0; K < 8; ++K)
      C = (C & 1) ? (0xEDB88320u ^ (C >> 1)) : (C >> 1);
    Tables[0][I] = C;
  }
  for (int K = 1; K < 8; ++K)
    for (uint32_t I = 0; I < 256; ++I)
      Tables[K][I] =
          (Tables[K - 1][I] >> 8) ^ Tables[0][Tables[K - 1][I] & 0xFFu];
  return Tables;
}

constexpr std::array<std::array<uint32_t, 256>, 8> CrcTables = makeTables();

} // namespace

void Crc32Stream::update(uint8_t Byte) {
  State = CrcTables[0][(State ^ Byte) & 0xFFu] ^ (State >> 8);
}

void Crc32Stream::update(const uint8_t *Data, size_t Size) {
  uint32_t S = State;
  // Bytes are composed into words explicitly, so the walk is
  // endian-neutral and needs no aligned loads.
  while (Size >= 8) {
    const uint32_t Lo =
        S ^ (static_cast<uint32_t>(Data[0]) |
             static_cast<uint32_t>(Data[1]) << 8 |
             static_cast<uint32_t>(Data[2]) << 16 |
             static_cast<uint32_t>(Data[3]) << 24);
    const uint32_t Hi = static_cast<uint32_t>(Data[4]) |
                        static_cast<uint32_t>(Data[5]) << 8 |
                        static_cast<uint32_t>(Data[6]) << 16 |
                        static_cast<uint32_t>(Data[7]) << 24;
    S = CrcTables[7][Lo & 0xFFu] ^ CrcTables[6][(Lo >> 8) & 0xFFu] ^
        CrcTables[5][(Lo >> 16) & 0xFFu] ^ CrcTables[4][Lo >> 24] ^
        CrcTables[3][Hi & 0xFFu] ^ CrcTables[2][(Hi >> 8) & 0xFFu] ^
        CrcTables[1][(Hi >> 16) & 0xFFu] ^ CrcTables[0][Hi >> 24];
    Data += 8;
    Size -= 8;
  }
  for (size_t I = 0; I < Size; ++I)
    S = CrcTables[0][(S ^ Data[I]) & 0xFFu] ^ (S >> 8);
  State = S;
}

uint32_t pose::crc32(const uint8_t *Data, size_t Size) {
  Crc32Stream S;
  S.update(Data, Size);
  return S.value();
}

uint32_t pose::crc32(const std::vector<uint8_t> &Bytes) {
  return crc32(Bytes.data(), Bytes.size());
}
