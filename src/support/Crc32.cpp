//===- Crc32.cpp - CRC-32 checksum ---------------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/support/Crc32.h"

#include <array>

using namespace pose;

namespace {

/// Builds the 256-entry lookup table for the reflected IEEE polynomial
/// 0xEDB88320 at compile time, avoiding a static constructor.
constexpr std::array<uint32_t, 256> makeTable() {
  std::array<uint32_t, 256> Table{};
  for (uint32_t I = 0; I < 256; ++I) {
    uint32_t C = I;
    for (int K = 0; K < 8; ++K)
      C = (C & 1) ? (0xEDB88320u ^ (C >> 1)) : (C >> 1);
    Table[I] = C;
  }
  return Table;
}

constexpr std::array<uint32_t, 256> CrcTable = makeTable();

} // namespace

void Crc32Stream::update(uint8_t Byte) {
  State = CrcTable[(State ^ Byte) & 0xFFu] ^ (State >> 8);
}

void Crc32Stream::update(const uint8_t *Data, size_t Size) {
  for (size_t I = 0; I < Size; ++I)
    update(Data[I]);
}

uint32_t pose::crc32(const uint8_t *Data, size_t Size) {
  Crc32Stream S;
  S.update(Data, Size);
  return S.value();
}

uint32_t pose::crc32(const std::vector<uint8_t> &Bytes) {
  return crc32(Bytes.data(), Bytes.size());
}
