//===- StopToken.h - Cooperative cancellation and resource limits -*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resource-governor layer: a cooperative cancellation token, a
/// wall-clock deadline, and an approximate memory budget, all polled at
/// natural checkpoints (the enumerator's level boundaries, the searchers'
/// evaluation loops, the compilers' phase loops). Long-running explorations
/// must degrade to a well-formed partial result instead of hanging or
/// exhausting the machine; every stopped computation reports *why* it
/// stopped through \ref StopReason.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_SUPPORT_STOPTOKEN_H
#define POSE_SUPPORT_STOPTOKEN_H

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>

namespace pose {

/// Why an exploration ended. Complete means it ran to exhaustion; every
/// other value names the limit that stopped it early.
enum class StopReason : uint8_t {
  Complete = 0,    ///< Ran to exhaustion; the result is the full space.
  LevelBudget,     ///< Active sequences at one level exceeded the cap.
  NodeBudget,      ///< Total distinct instances exceeded the cap.
  Deadline,        ///< The wall-clock deadline passed.
  MemoryBudget,    ///< The approximate memory accounting hit its budget.
  Cancelled,       ///< A StopToken requested cooperative cancellation.
  VerifierFailure, ///< A phase broke the IR; its edge was pruned, so the
                   ///< surviving space is sound but not exhaustive.
  InternalError,   ///< An internal invariant failed; partial result only.
  WorkerCrash,     ///< An out-of-process enumeration worker died (signal,
                   ///< OOM kill, or hang timeout); the result is whatever
                   ///< checkpoint survived (see src/drive/Supervisor.h).
};

/// Short lower-case name for messages and CLI output ("deadline", ...).
const char *stopReasonName(StopReason R);

/// Thread-safe cooperative cancellation flag. Producers call requestStop();
/// long-running consumers poll stopRequested() at checkpoints.
class StopToken {
public:
  void requestStop() { Stop.store(true, std::memory_order_relaxed); }
  bool stopRequested() const {
    return Stop.load(std::memory_order_relaxed);
  }
  void reset() { Stop.store(false, std::memory_order_relaxed); }

private:
  std::atomic<bool> Stop{false};
};

/// Aggregates the three stop conditions behind one check() call. All
/// limits are optional; a default-constructed governor never stops
/// anything. Memory is *accounted*, not measured: callers charge() and
/// release() their dominant allocations (DAG nodes, canonical bytes,
/// frontier instances), which keeps the check deterministic across runs
/// and platforms.
///
/// Accounting is atomic, so one governor may be shared by a pool of
/// workers (the parallel enumerator, parallel batch compilation): charges
/// from any thread aggregate into one total, and check() may be polled
/// concurrently. The set*() configuration calls are not synchronized —
/// configure before sharing.
class ResourceGovernor {
public:
  ResourceGovernor() = default;

  /// Copying is a setup-time convenience (factory functions returning a
  /// configured governor); it snapshots the accounting and must not race
  /// with concurrent charge()/release() on the source.
  ResourceGovernor(const ResourceGovernor &O)
      : DeadlineAt(O.DeadlineAt), HasDeadline(O.HasDeadline),
        MemoryBudget(O.MemoryBudget),
        Charged(O.Charged.load(std::memory_order_relaxed)), Token(O.Token) {}
  ResourceGovernor &operator=(const ResourceGovernor &O) {
    DeadlineAt = O.DeadlineAt;
    HasDeadline = O.HasDeadline;
    MemoryBudget = O.MemoryBudget;
    Charged.store(O.Charged.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    Token = O.Token;
    return *this;
  }

  /// Arms a wall-clock deadline \p Ms milliseconds from now; 0 disarms.
  void setDeadline(uint64_t Ms) {
    HasDeadline = Ms != 0;
    if (HasDeadline)
      DeadlineAt =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(Ms);
  }

  /// Sets the approximate memory budget in bytes; 0 = unlimited.
  void setMemoryBudget(uint64_t Bytes) { MemoryBudget = Bytes; }

  /// Attaches a cancellation token (not owned); nullptr detaches.
  void setStopToken(const StopToken *T) { Token = T; }

  /// Accounts \p Bytes of live memory.
  void charge(uint64_t Bytes) {
    Charged.fetch_add(Bytes, std::memory_order_relaxed);
  }

  /// Returns \p Bytes of accounted memory (saturating at zero).
  void release(uint64_t Bytes) {
    uint64_t Cur = Charged.load(std::memory_order_relaxed);
    while (!Charged.compare_exchange_weak(Cur, Cur - std::min(Cur, Bytes),
                                          std::memory_order_relaxed)) {
    }
  }

  uint64_t chargedBytes() const {
    return Charged.load(std::memory_order_relaxed);
  }

  /// True when no limit is armed (check() can never stop).
  bool unlimited() const {
    return !HasDeadline && MemoryBudget == 0 && Token == nullptr;
  }

  /// Returns Complete to keep going, otherwise the reason to stop.
  /// Precedence: Cancelled over Deadline over MemoryBudget, so an
  /// explicit cancellation is never misreported as a timeout.
  StopReason check() const {
    if (Token && Token->stopRequested())
      return StopReason::Cancelled;
    if (HasDeadline && std::chrono::steady_clock::now() >= DeadlineAt)
      return StopReason::Deadline;
    if (MemoryBudget != 0 &&
        Charged.load(std::memory_order_relaxed) > MemoryBudget)
      return StopReason::MemoryBudget;
    return StopReason::Complete;
  }

private:
  std::chrono::steady_clock::time_point DeadlineAt{};
  bool HasDeadline = false;
  uint64_t MemoryBudget = 0;
  std::atomic<uint64_t> Charged{0};
  const StopToken *Token = nullptr;
};

} // namespace pose

#endif // POSE_SUPPORT_STOPTOKEN_H
