//===- ThreadPool.h - Fixed-size worker pool -------------------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size worker pool built for level-synchronous parallelism:
/// parallelFor(N, Body) runs Body(0..N-1) across the worker threads plus
/// the calling thread and returns once every index has finished. Indices
/// are claimed one at a time under the pool mutex, the right trade-off for
/// this project's coarse work items (a function copy, a phase application
/// and a canonicalization per index); there is no work stealing or
/// chunking to tune, and no allocation per call.
///
/// The pool is deliberately not a general task system: one parallelFor
/// runs at a time, submitting from inside Body deadlocks by design, and
/// determinism is the caller's job (each index must write only its own
/// output slot; the parallel enumerator commits those slots in
/// deterministic order at its level barrier).
///
//===----------------------------------------------------------------------===//

#ifndef POSE_SUPPORT_THREADPOOL_H
#define POSE_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pose {

class ThreadPool {
public:
  /// Spawns \p WorkerCount background threads. The calling thread also
  /// executes work, so a pool built with jobs - 1 workers runs jobs
  /// threads in total; WorkerCount == 0 degrades to inline execution with
  /// no threads and no locking.
  explicit ThreadPool(unsigned WorkerCount);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total threads that execute work (the workers plus the caller).
  unsigned threads() const {
    return static_cast<unsigned>(Workers.size()) + 1;
  }

  /// Runs Body(I) for every I in [0, Count), distributing indices across
  /// the workers and the calling thread; returns after all have finished.
  /// An exception thrown by Body is captured (every index is still
  /// attempted), and the first one is rethrown here on the submitting
  /// thread once the job has drained — never std::terminate on a worker.
  /// The pool stays usable after a throwing job.
  void parallelFor(size_t Count, const std::function<void(size_t)> &Body);

private:
  void workerLoop();
  /// Runs Body(I), capturing an escaping exception into FirstError (the
  /// first one wins). Called without M held.
  void runIndex(const std::function<void(size_t)> &Body, size_t I);

  std::vector<std::thread> Workers;
  std::mutex M;
  std::condition_variable WakeWorkers;
  std::condition_variable JobDone;
  /// All job state below is guarded by M. Job is non-null only while a
  /// parallelFor is in flight; workers snapshot it under the lock and may
  /// dereference it only between claiming an index and reporting that
  /// index done (parallelFor cannot return inside that window because
  /// Pending is still nonzero).
  const std::function<void(size_t)> *Job = nullptr;
  size_t Count = 0;   ///< Indices in the current job.
  size_t Next = 0;    ///< Next unclaimed index.
  size_t Pending = 0; ///< Claimed-or-unclaimed indices not yet finished.
  uint64_t Generation = 0; ///< Bumped per job so workers notice new work.
  bool ShuttingDown = false;
  /// First exception thrown by any Body this job (guarded by M); moved
  /// out and rethrown by parallelFor after the job drains.
  std::exception_ptr FirstError;
};

} // namespace pose

#endif // POSE_SUPPORT_THREADPOOL_H
