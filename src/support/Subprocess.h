//===- Subprocess.h - Sandboxed child process execution --------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one child process under a blast shield: stdout and stderr are
/// captured through pipes, an optional RLIMIT_AS cap bounds the child's
/// address space from inside the child (an allocator runaway dies there,
/// not here), and an optional wall-clock kill timer SIGKILLs a child that
/// hangs. The exit status is classified — normal exit, death by signal,
/// killed by the timer, or spawn failure — so a supervisor can decide
/// between retrying, quarantining, and giving up without parsing shell
/// conventions like "exit code 128+N".
///
/// This is the process-level analogue of PhaseGuard: where the guard
/// turns a miscompiling phase into one pruned edge, the subprocess layer
/// turns a SIGSEGV, OOM, or infinite loop inside an enumeration worker
/// into one classified job failure instead of the death of the whole
/// sweep (see src/drive/Supervisor.h).
///
//===----------------------------------------------------------------------===//

#ifndef POSE_SUPPORT_SUBPROCESS_H
#define POSE_SUPPORT_SUBPROCESS_H

#include <cstdint>
#include <string>
#include <vector>

namespace pose {

/// What to run and under which limits.
struct SubprocessSpec {
  /// Program path and arguments; Argv[0] is the executable (no PATH
  /// search, no shell interpretation).
  std::vector<std::string> Argv;
  /// Wall-clock kill timer in milliseconds; 0 = no timer. A child still
  /// running when the timer fires is SIGKILLed and reported as TimedOut.
  uint64_t TimeoutMs = 0;
  /// RLIMIT_AS cap in bytes applied inside the child before exec; 0 = no
  /// cap. An exceeded cap typically surfaces as death by SIGABRT (failed
  /// allocation) and is classified as Signalled.
  uint64_t MemoryLimitBytes = 0;
};

/// How the child ended.
enum class ExitKind : uint8_t {
  Exited,      ///< Normal exit; ExitCode is valid.
  Signalled,   ///< Killed by a signal (its own crash); Signal is valid.
  TimedOut,    ///< Killed by our wall-clock timer (SIGKILL).
  SpawnFailed, ///< fork/exec never produced a running child; see Error.
  PollFailed,  ///< The pool's poll() loop itself failed (EBADF/EINVAL/
               ///< ENOMEM); the child was killed and reaped, Error carries
               ///< the errno text. A harness bug, not the child's fault.
};

/// Short lower-case name for messages ("exited", "signalled", ...).
const char *exitKindName(ExitKind K);

/// Everything the parent learns about one child run.
struct SubprocessResult {
  ExitKind Kind = ExitKind::SpawnFailed;
  int ExitCode = -1;  ///< Valid when Kind == Exited.
  int Signal = 0;     ///< Valid when Kind == Signalled (or TimedOut: SIGKILL).
  std::string Stdout; ///< Everything the child wrote to fd 1.
  std::string Stderr; ///< Everything the child wrote to fd 2.
  std::string Error;  ///< Valid when Kind == SpawnFailed.

  bool ok() const { return Kind == ExitKind::Exited && ExitCode == 0; }
};

/// Runs \p Spec to completion (or to its kill timer) and returns the
/// classified outcome. Blocking; the caller owns scheduling and retries.
/// Implemented as a one-child SubprocessPool, so the blocking and pooled
/// paths share every line of the sandbox machinery.
SubprocessResult runSubprocess(const SubprocessSpec &Spec);

/// An external file descriptor watched alongside the pool's child pipes
/// in one poll() call (see SubprocessPool::wait). A server owning both a
/// worker fleet and a listening socket hands its socket fds in here so a
/// single blocking point multiplexes child completions and socket
/// readiness — no second event loop, no busy polling.
struct ExternalFd {
  int Fd = -1;      ///< Descriptor to watch; negative entries are skipped.
  short Events = 0; ///< poll() events requested (POLLIN, POLLOUT, ...).
  short Revents = 0; ///< poll() revents observed; 0 when nothing happened.
};

/// A bounded spawn pool: several sandboxed children run concurrently, and
/// one poll() loop multiplexes their stdout/stderr drains, per-child kill
/// timers, and reaping. The concurrent supervisor drives its worker
/// processes through this — spawn up to N jobs, then wait() for whichever
/// finishes first — while runSubprocess() above is the same machinery
/// with exactly one child.
///
/// Each child gets the full blast shield of runSubprocess: its own
/// process group (the kill timer SIGKILLs the whole tree), an optional
/// RLIMIT_AS cap applied inside the child, a CLOEXEC exec-status pipe
/// distinguishing spawn failure from a running child, and a bounded grace
/// drain after a kill so an escaped orphan holding the pipe open cannot
/// stall the pool. Not thread-safe; one owner drives spawn()/wait().
class SubprocessPool {
public:
  /// Identifies one spawned child across spawn()/wait().
  using JobId = uint64_t;

  SubprocessPool();
  SubprocessPool(const SubprocessPool &) = delete;
  SubprocessPool &operator=(const SubprocessPool &) = delete;
  /// SIGKILLs and reaps any children still live.
  ~SubprocessPool();

  /// Starts \p Spec. Never blocks on the child's lifetime (only on the
  /// immediate fork/exec handshake). A spawn failure is reported as a
  /// completed SpawnFailed result from the next wait(), under the
  /// returned id, so callers handle it through one code path.
  JobId spawn(const SubprocessSpec &Spec);

  /// Number of children currently running (spawn-failed jobs excluded).
  size_t live() const;

  /// True when no child is live and no completed result is undelivered.
  bool idle() const;

  /// Waits up to \p MaxWaitMs for completions and returns every result
  /// available by then (empty on timeout). Returns as soon as at least
  /// one child completes; kill timers of the remaining children keep
  /// being serviced while waiting.
  std::vector<std::pair<JobId, SubprocessResult>> wait(uint64_t MaxWaitMs);

  /// Like wait(MaxWaitMs), but additionally watches \p External fds in
  /// the same poll() call and also returns (possibly with no results) as
  /// soon as any of them reports activity; their Revents fields are
  /// filled in before returning. With External present the call polls
  /// even when no child is live, so a server can block here as its sole
  /// event loop. Entries with a negative Fd are ignored.
  std::vector<std::pair<JobId, SubprocessResult>>
  wait(uint64_t MaxWaitMs, std::vector<ExternalFd> *External);

  /// SIGKILLs the process group of a still-running job (e.g. its
  /// requester disconnected and nobody wants the result). Returns false
  /// when the id is unknown or already completed. The job still surfaces
  /// from a later wait(), classified as TimedOut, so every child funnels
  /// through the same delivery path; callers that kill() typically drop
  /// that result on arrival.
  bool kill(JobId Id);

private:
  struct Child;
  std::vector<Child> Children;
  std::vector<std::pair<JobId, SubprocessResult>> Ready;
  JobId NextId = 1;
};

} // namespace pose

#endif // POSE_SUPPORT_SUBPROCESS_H
