//===- RetryPolicy.cpp - Bounded retries with backoff and jitter --------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/support/RetryPolicy.h"

using namespace pose;

namespace {

/// splitmix64: a tiny, well-mixed hash for deterministic jitter.
uint64_t mix64(uint64_t X) {
  X += 0x9E3779B97F4A7C15ull;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ull;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBull;
  return X ^ (X >> 31);
}

} // namespace

uint64_t RetryPolicy::backoffMs(unsigned Retry) const {
  if (Retry == 0 || BaseDelayMs == 0)
    return 0;
  uint64_t D = BaseDelayMs;
  for (unsigned I = 1; I < Retry; ++I) {
    if (D >= MaxDelayMs / 2 + 1)
      return MaxDelayMs;
    D *= 2;
  }
  return D < MaxDelayMs ? D : MaxDelayMs;
}

uint64_t RetryPolicy::delayMs(unsigned Retry, uint64_t Salt) const {
  const uint64_t Backoff = backoffMs(Retry);
  if (JitterPct == 0 || Backoff == 0)
    return Backoff;
  const uint64_t Span = Backoff * JitterPct / 100 + 1;
  return Backoff + mix64(Salt * 0x100000001B3ull + Retry) % Span;
}

bool RetryPolicy::nextDelayMs(unsigned Retry, uint64_t Salt, bool HasDeadline,
                              uint64_t RemainingMs,
                              uint64_t &DelayOut) const {
  if (!shouldRetry(Retry))
    return false;
  const uint64_t D = delayMs(Retry, Salt);
  if (HasDeadline && D >= RemainingMs)
    return false;
  DelayOut = D;
  return true;
}
