//===- FaultSock.h - Fault-injecting socket I/O layer ----------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The socket twin of FaultFs: the read/write surface the posed daemon
/// talks to its clients through, plus a deterministic fault injector
/// over it. The service invariant — every request gets exactly one of
/// {a response byte-identical to one-shot posec, a clean connection
/// drop}, and the shared store stays fsck-clean — is only worth
/// anything if it holds when the kernel misbehaves: short writes under
/// memory pressure, EAGAIN storms from a full socket buffer, peers that
/// vanish mid-frame, peers that stall forever after one byte. Those
/// cannot be provoked reliably against a loopback Unix socket, so
/// \ref FaultSock injects them at an exact operation index instead,
/// driven by the execution-only `posed --fault-sock=<spec>` flag (like
/// `--fault-io`, the spec never changes what is served or stored — a
/// fault-injected daemon answers with the same bytes a clean one
/// would, or not at all).
///
/// Only per-connection data fds are virtualized. The listening socket,
/// the signal self-pipe, and child pipes are harness plumbing, not the
/// request/response path under test.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_SUPPORT_FAULTSOCK_H
#define POSE_SUPPORT_FAULTSOCK_H

#include <cstdint>
#include <set>
#include <string>
#include <sys/types.h>
#include <vector>

namespace pose {

/// The socket operations of a daemon connection. The default
/// implementation is the real thing (::read / ::send); \ref FaultSock
/// wraps it. closed() is a notification, not an operation: it lets a
/// decorator drop per-fd state before the kernel reuses the number.
class SockIo {
public:
  virtual ~SockIo() = default;

  /// ::read on a connection fd (non-blocking; -1/EAGAIN when dry).
  virtual ssize_t read(int Fd, void *Buf, size_t N);

  /// ::send with MSG_NOSIGNAL on a connection fd.
  virtual ssize_t send(int Fd, const void *Buf, size_t N);

  /// The connection fd is about to be closed.
  virtual void closed(int Fd) { (void)Fd; }

  /// The real-socket passthrough instance.
  static SockIo &system();
};

/// The injectable failures. Read-class kinds fire on the Nth read();
/// write-class kinds fire on the Nth send() — the two directions of the
/// framed request/response stream.
enum class SockFaultKind : uint8_t {
  ShortWrite,  ///< Nth send transmits at most half its bytes (a real
               ///< partial write; the flush loop must resume cleanly).
  EagainStorm, ///< Sends N..N+15 fail with EAGAIN, nothing sent; the
               ///< 16th retry passes through (a bounded stall).
  Disconnect,  ///< Nth read reports EOF: the peer vanished, possibly
               ///< mid-frame; the daemon must drop the connection
               ///< cleanly and keep serving everyone else.
  StalledPeer, ///< Nth read delivers exactly one byte, then that fd
               ///< returns EAGAIN forever (a slow-loris peer); only the
               ///< read deadline can reclaim the connection slot.
};

/// Spec-syntax name ("short-write", "eagain-storm", ...).
const char *sockFaultKindName(SockFaultKind K);

/// How many consecutive sends an EagainStorm eats before passing
/// traffic again. Bounded so an injected storm is a stall, not a hang.
constexpr uint64_t kEagainStormLength = 16;

/// One injected fault: the Nth operation of the matching class.
struct SockFaultSpec {
  SockFaultKind Kind = SockFaultKind::Disconnect;
  uint64_t Nth = 1; ///< 1-based among operations of the matching class.

  /// Parses "<kind>:<nth>[,<kind>:<nth>...]" with the names above and a
  /// positive index. False (and \p Out unspecified) on any syntax error.
  static bool parse(const std::string &Text, std::vector<SockFaultSpec> &Out);
};

/// SockIo decorator that injects the faults of its spec at exact
/// operation indices and forwards everything else to the base instance.
/// Single-threaded, like the daemon it serves.
class FaultSock : public SockIo {
public:
  explicit FaultSock(std::vector<SockFaultSpec> Faults,
                     SockIo *Base = nullptr);

  ssize_t read(int Fd, void *Buf, size_t N) override;
  ssize_t send(int Fd, const void *Buf, size_t N) override;
  void closed(int Fd) override;

  uint64_t readOps() const { return Reads; }
  uint64_t writeOps() const { return Writes; }
  /// Operations on which a fault actually fired (stats counter).
  uint64_t fired() const { return Fired; }

private:
  const SockFaultSpec *findReadFault(uint64_t Nth) const;
  const SockFaultSpec *findWriteFault(uint64_t Nth) const;

  std::vector<SockFaultSpec> Faults;
  SockIo *Base;
  uint64_t Reads = 0;
  uint64_t Writes = 0;
  uint64_t Fired = 0;
  /// Fds latched by StalledPeer: every later read is EAGAIN until the
  /// daemon closes the fd (closed() clears the latch, so a reused fd
  /// number starts clean). Stalled reads do not consume op indices —
  /// the poll loop may spin on a latched fd arbitrarily many times.
  std::set<int> Stalled;
};

} // namespace pose

#endif // POSE_SUPPORT_FAULTSOCK_H
