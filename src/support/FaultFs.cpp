//===- FaultFs.cpp - Fault-injecting store I/O layer ----------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/support/FaultFs.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace pose {

namespace {

/// Real POSIX I/O. Unbuffered on purpose: the fault layer must know
/// exactly how many bytes reached the kernel, and an ofstream would hide
/// partial progress behind its own buffer.
class SystemIo : public StoreIo {};

SystemIo SystemInstance;
StoreIo *ProcessIo = &SystemInstance;

} // namespace

bool StoreIo::writeFile(const std::string &Path, const uint8_t *Data,
                        size_t Size, int &Err, size_t &Written) {
  Err = 0;
  Written = 0;
  const int Fd =
      ::open(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (Fd < 0) {
    Err = errno;
    return false;
  }
  while (Written < Size) {
    const ssize_t N = ::write(Fd, Data + Written, Size - Written);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Err = errno;
      ::close(Fd);
      return false;
    }
    Written += static_cast<size_t>(N);
  }
  if (::close(Fd) != 0) {
    Err = errno;
    return false;
  }
  return true;
}

bool StoreIo::rename(const std::string &From, const std::string &To,
                     int &Err) {
  Err = 0;
  if (::rename(From.c_str(), To.c_str()) != 0) {
    Err = errno;
    return false;
  }
  return true;
}

bool StoreIo::remove(const std::string &Path) {
  return ::unlink(Path.c_str()) == 0;
}

StoreIo &StoreIo::system() { return SystemInstance; }

StoreIo &processStoreIo() { return *ProcessIo; }

void setProcessStoreIo(StoreIo *Io) {
  ProcessIo = Io ? Io : &SystemInstance;
}

const char *ioFaultKindName(IoFaultKind K) {
  switch (K) {
  case IoFaultKind::ShortWrite:
    return "shortwrite";
  case IoFaultKind::Enospc:
    return "enospc";
  case IoFaultKind::Eio:
    return "eio";
  case IoFaultKind::CrashBeforeRename:
    return "crash-before-rename";
  case IoFaultKind::CrashAfterRename:
    return "crash-after-rename";
  }
  return "?";
}

bool IoFaultSpec::parse(const std::string &Text,
                        std::vector<IoFaultSpec> &Out) {
  if (Text.empty())
    return false;
  std::vector<IoFaultSpec> Parsed;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t End = Text.find(',', Pos);
    if (End == std::string::npos)
      End = Text.size();
    const std::string Item = Text.substr(Pos, End - Pos);
    const size_t Colon = Item.rfind(':');
    if (Colon == std::string::npos || Colon == 0 ||
        Colon + 1 == Item.size())
      return false;
    const std::string Name = Item.substr(0, Colon);
    IoFaultSpec S;
    bool Known = false;
    for (uint8_t K = 0;
         K <= static_cast<uint8_t>(IoFaultKind::CrashAfterRename); ++K)
      if (Name == ioFaultKindName(static_cast<IoFaultKind>(K))) {
        S.Kind = static_cast<IoFaultKind>(K);
        Known = true;
        break;
      }
    if (!Known)
      return false;
    uint64_t N = 0;
    for (size_t I = Colon + 1; I != Item.size(); ++I) {
      const char C = Item[I];
      if (C < '0' || C > '9')
        return false;
      const uint64_t Digit = static_cast<uint64_t>(C - '0');
      if (N > (UINT64_MAX - Digit) / 10)
        return false;
      N = N * 10 + Digit;
    }
    if (N == 0)
      return false;
    S.Nth = N;
    Parsed.push_back(S);
    if (End == Text.size())
      break;
    Pos = End + 1;
  }
  if (Parsed.empty())
    return false;
  Out = std::move(Parsed);
  return true;
}

FaultFs::FaultFs(std::vector<IoFaultSpec> Faults, CrashMode Mode,
                 StoreIo *Base)
    : Faults(std::move(Faults)), Mode(Mode),
      Base(Base ? Base : &StoreIo::system()) {}

const IoFaultSpec *FaultFs::findWriteFault(uint64_t Nth) const {
  for (const IoFaultSpec &S : Faults)
    if (S.Nth == Nth && (S.Kind == IoFaultKind::ShortWrite ||
                         S.Kind == IoFaultKind::Enospc ||
                         S.Kind == IoFaultKind::Eio))
      return &S;
  return nullptr;
}

const IoFaultSpec *FaultFs::findRenameFault(uint64_t Nth) const {
  for (const IoFaultSpec &S : Faults)
    if (S.Nth == Nth && (S.Kind == IoFaultKind::CrashBeforeRename ||
                         S.Kind == IoFaultKind::CrashAfterRename))
      return &S;
  return nullptr;
}

void FaultFs::crash() {
  if (Mode == CrashMode::Exit)
    ::_exit(kIoCrashExit);
  Crashed = true;
}

bool FaultFs::writeFile(const std::string &Path, const uint8_t *Data,
                        size_t Size, int &Err, size_t &Written) {
  Err = 0;
  Written = 0;
  if (Crashed)
    return false;
  const IoFaultSpec *F = findWriteFault(++Writes);
  if (!F)
    return Base->writeFile(Path, Data, Size, Err, Written);
  switch (F->Kind) {
  case IoFaultKind::ShortWrite: {
    // Persist half the bytes for real — the torn temp file the store's
    // failure path (and fsck) must cope with — then fail like a full
    // disk.
    int HalfErr = 0;
    size_t HalfWritten = 0;
    Base->writeFile(Path, Data, Size / 2, HalfErr, HalfWritten);
    Err = ENOSPC;
    Written = HalfWritten;
    return false;
  }
  case IoFaultKind::Enospc:
    Err = ENOSPC;
    return false;
  case IoFaultKind::Eio:
    Err = EIO;
    return false;
  case IoFaultKind::CrashBeforeRename:
  case IoFaultKind::CrashAfterRename:
    break; // Rename-class; never matched here.
  }
  return false;
}

bool FaultFs::rename(const std::string &From, const std::string &To,
                     int &Err) {
  Err = 0;
  if (Crashed)
    return false;
  const IoFaultSpec *F = findRenameFault(++Renames);
  if (!F)
    return Base->rename(From, To, Err);
  if (F->Kind == IoFaultKind::CrashBeforeRename) {
    crash();
    return false; // Simulate mode: the rename never happened.
  }
  const bool Ok = Base->rename(From, To, Err);
  crash();
  return Ok; // Simulate mode: committed, but nothing after this runs.
}

bool FaultFs::remove(const std::string &Path) {
  if (Crashed)
    return false;
  return Base->remove(Path);
}

} // namespace pose
