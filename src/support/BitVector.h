//===- BitVector.h - Dense bit vector --------------------------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense, fixed-size bit vector with the set-algebra operations the
/// dataflow analyses need. Kept header-only and minimal.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_SUPPORT_BITVECTOR_H
#define POSE_SUPPORT_BITVECTOR_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pose {

/// Fixed-size dense bit vector.
class BitVector {
public:
  BitVector() = default;
  explicit BitVector(size_t NumBits)
      : NumBits(NumBits), Words((NumBits + 63) / 64, 0) {}

  size_t size() const { return NumBits; }

  bool test(size_t I) const {
    assert(I < NumBits && "bit index out of range");
    return (Words[I / 64] >> (I % 64)) & 1;
  }

  void set(size_t I) {
    assert(I < NumBits && "bit index out of range");
    Words[I / 64] |= (uint64_t(1) << (I % 64));
  }

  void reset(size_t I) {
    assert(I < NumBits && "bit index out of range");
    Words[I / 64] &= ~(uint64_t(1) << (I % 64));
  }

  void clear() {
    for (uint64_t &W : Words)
      W = 0;
  }

  /// Set union; returns true if this vector changed.
  bool unionWith(const BitVector &O) {
    assert(NumBits == O.NumBits && "size mismatch");
    bool Changed = false;
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t New = Words[I] | O.Words[I];
      Changed |= (New != Words[I]);
      Words[I] = New;
    }
    return Changed;
  }

  /// Set intersection.
  void intersectWith(const BitVector &O) {
    assert(NumBits == O.NumBits && "size mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= O.Words[I];
  }

  /// Removes every bit set in \p O.
  void subtract(const BitVector &O) {
    assert(NumBits == O.NumBits && "size mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= ~O.Words[I];
  }

  /// Number of set bits.
  size_t count() const {
    size_t N = 0;
    for (uint64_t W : Words)
      N += static_cast<size_t>(__builtin_popcountll(W));
    return N;
  }

  bool any() const {
    for (uint64_t W : Words)
      if (W)
        return true;
    return false;
  }

  bool operator==(const BitVector &O) const {
    return NumBits == O.NumBits && Words == O.Words;
  }
  bool operator!=(const BitVector &O) const { return !(*this == O); }

private:
  size_t NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace pose

#endif // POSE_SUPPORT_BITVECTOR_H
