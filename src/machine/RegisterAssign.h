//===- RegisterAssign.h - Compulsory register assignment -------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register assignment maps pseudo registers onto hardware registers. It is
/// a compulsory phase, not one of the fifteen reorderable ones: "VPO
/// implicitly performs register assignment before the first code-improving
/// phase in a sequence that requires it" (paper, Section 3). In this
/// reproduction, common subexpression elimination (c) and register
/// allocation (k) require it; evaluation order determination (o) becomes
/// illegal once it has run.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_MACHINE_REGISTERASSIGN_H
#define POSE_MACHINE_REGISTERASSIGN_H

namespace pose {

class Function;

/// Assigns every pseudo register of \p F to one of the target's
/// allocatable hardware registers by graph coloring, spilling live ranges
/// to fresh stack slots if the pressure exceeds the register file. Sets
/// F.State.RegsAssigned. Idempotent: returns immediately if already done.
void assignRegisters(Function &F);

} // namespace pose

#endif // POSE_MACHINE_REGISTERASSIGN_H
