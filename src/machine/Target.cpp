//===- Target.cpp - StrongARM-like machine model ---------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/machine/Target.h"

using namespace pose;

bool target::immediateAllowed(Op O, int SrcIndex, int32_t V) {
  switch (O) {
  case Op::Mov:
    // The model allows materializing any 32-bit constant with one move
    // (a simplification of ARM's mov/mvn/ldr= idioms).
    return SrcIndex == 0;
  case Op::Add:
  case Op::Sub:
  case Op::And:
  case Op::Or:
  case Op::Xor:
    return SrcIndex == 1 && fitsImmediate(V);
  case Op::Shl:
  case Op::Shr:
  case Op::Ushr:
    return SrcIndex == 1 && V >= 0 && V <= 31;
  case Op::Mul:
  case Op::Div:
  case Op::Rem:
    return false; // No immediate forms.
  case Op::Neg:
  case Op::Not:
    return false;
  case Op::Cmp:
    return SrcIndex == 1 && fitsImmediate(V);
  case Op::Load:
  case Op::Store:
    return SrcIndex == 1 && fitsImmediate(V); // The offset field.
  case Op::Ret:
    return SrcIndex == 0; // Pseudo-op; any constant return value.
  case Op::Call:
    return true; // Arguments are ABI-level, any constant.
  default:
    return false;
  }
}

bool target::isLegal(const Rtl &I) {
  // Structural checks are the verifier's job; here we only check the
  // machine-encoding constraints on immediates and operand positions.
  auto CheckSrc = [&I](int Index) {
    const Operand &S = I.Src[Index];
    if (!S.isImm())
      return true;
    return immediateAllowed(I.Opcode, Index, S.Value);
  };
  switch (I.Opcode) {
  case Op::Mov:
    return CheckSrc(0);
  case Op::Add:
  case Op::Sub:
  case Op::Mul:
  case Op::Div:
  case Op::Rem:
  case Op::And:
  case Op::Or:
  case Op::Xor:
  case Op::Shl:
  case Op::Shr:
  case Op::Ushr:
    // First operand must be a register; second register or legal imm.
    return I.Src[0].isReg() && CheckSrc(1);
  case Op::Neg:
  case Op::Not:
    return I.Src[0].isReg();
  case Op::Cmp:
    return I.Src[0].isReg() && CheckSrc(1);
  case Op::Load:
  case Op::Store:
    if (!CheckSrc(1))
      return false;
    // Stores write register values only (no store-immediate form).
    if (I.Opcode == Op::Store && !I.Src[2].isReg())
      return false;
    return true;
  case Op::Ret:
  case Op::Call:
  case Op::Lea:
  case Op::Branch:
  case Op::Jump:
  case Op::Prologue:
  case Op::Epilogue:
    return true;
  }
  return false;
}
