//===- Schedule.cpp - Final instruction scheduling -----------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/machine/Schedule.h"

#include "src/analysis/DependenceDag.h"
#include "src/ir/Function.h"
#include "src/machine/EntryExit.h"

#include <set>
#include <vector>

using namespace pose;

namespace {

/// True when \p Consumer reads the register defined by \p Producer.
bool readsResultOf(const Rtl &Consumer, const Rtl &Producer) {
  if (!Producer.definesReg())
    return false;
  bool Reads = false;
  Consumer.forEachUsedReg([&](RegNum R) {
    Reads |= (R == Producer.Dst.getReg());
  });
  return Reads;
}

/// List-schedules one block for the single-issue, one-cycle-load-delay
/// pipeline: among ready instructions, prefer one that does not consume
/// the result of the previously issued instruction when that instruction
/// was a load. Ties break toward original order (determinism).
std::vector<size_t> scheduleBlock(const BasicBlock &B) {
  const size_t N = B.Insts.size();
  std::vector<std::set<size_t>> Preds = blockDependences(B);
  std::vector<int> Pending(N, 0);
  std::vector<std::vector<size_t>> Succs(N);
  for (size_t J = 0; J != N; ++J) {
    Pending[J] = static_cast<int>(Preds[J].size());
    for (size_t P : Preds[J])
      Succs[P].push_back(J);
  }
  std::set<size_t> Ready;
  for (size_t J = 0; J != N; ++J)
    if (Pending[J] == 0)
      Ready.insert(J);

  std::vector<size_t> Order;
  Order.reserve(N);
  int LastIssued = -1;
  while (!Ready.empty()) {
    size_t Best = SIZE_MAX;
    for (size_t J : Ready) {
      const bool Stalls =
          LastIssued >= 0 &&
          B.Insts[static_cast<size_t>(LastIssued)].Opcode == Op::Load &&
          readsResultOf(B.Insts[J], B.Insts[static_cast<size_t>(LastIssued)]);
      if (Stalls)
        continue;
      Best = J;
      break; // Ready is ordered ascending: first non-stalling wins.
    }
    if (Best == SIZE_MAX)
      Best = *Ready.begin(); // Everything stalls; take program order.
    Ready.erase(Best);
    Order.push_back(Best);
    LastIssued = static_cast<int>(Best);
    for (size_t S : Succs[Best])
      if (--Pending[S] == 0)
        Ready.insert(S);
  }
  assert(Order.size() == N && "dependence cycle in a basic block");
  return Order;
}

} // namespace

bool pose::scheduleFunction(Function &F) {
  bool Changed = false;
  for (BasicBlock &B : F.Blocks) {
    if (B.Insts.size() < 3)
      continue;
    std::vector<size_t> Order = scheduleBlock(B);
    bool Identity = true;
    for (size_t J = 0; J != Order.size(); ++J)
      Identity &= (Order[J] == J);
    if (Identity)
      continue;
    std::vector<Rtl> NewInsts;
    NewInsts.reserve(B.Insts.size());
    for (size_t J : Order)
      NewInsts.push_back(B.Insts[J]);
    B.Insts = std::move(NewInsts);
    Changed = true;
  }
  return Changed;
}

void pose::finalizeFunction(Function &F) {
  scheduleFunction(F);
  fixEntryExit(F);
}
