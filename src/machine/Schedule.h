//===- Schedule.h - Final instruction scheduling ----------------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compulsory late pass of the paper's Section 3: "the compiler also
/// performs … instruction scheduling before generating the final output
/// code. These last two optimizations should only be performed late in the
/// compilation process, and so are not included in our set of phases used
/// for exhaustive optimization space exploration."
///
/// The scheduler list-schedules each basic block against a simple
/// single-issue pipeline with a one-cycle load-use delay (the SA-110
/// family's load latency): it tries to put an independent instruction
/// between a load and its first consumer. The simulator's LoadUseStalls
/// counter measures the effect. (Predication is not implemented: the
/// simulator models no branch penalty, so it would be unobservable;
/// DESIGN.md records the deviation.)
///
//===----------------------------------------------------------------------===//

#ifndef POSE_MACHINE_SCHEDULE_H
#define POSE_MACHINE_SCHEDULE_H

namespace pose {

class Function;

/// Reorders instructions within each block to hide load-use latency.
/// Preserves all dependences (registers, IC, memory order as in phase o).
/// Returns true if any block's order changed.
bool scheduleFunction(Function &F);

/// Final code generation sequence: instruction scheduling followed by
/// activation-record insertion (fix entry/exit).
void finalizeFunction(Function &F);

} // namespace pose

#endif // POSE_MACHINE_SCHEDULE_H
