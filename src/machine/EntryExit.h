//===- EntryExit.h - Activation record management --------------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compulsory "fix entry exit" phase: after the last code-improving
/// phase, VPO "inserts instructions at the entry and exit of the function
/// to manage the activation record on the run-time stack" (paper,
/// Section 3). It is applied when producing final code, never during the
/// phase-order search.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_MACHINE_ENTRYEXIT_H
#define POSE_MACHINE_ENTRYEXIT_H

namespace pose {

class Function;

/// Inserts a Prologue at function entry and an Epilogue before every Ret.
/// Idempotent.
void fixEntryExit(Function &F);

} // namespace pose

#endif // POSE_MACHINE_ENTRYEXIT_H
