//===- RegisterAssign.cpp - Compulsory register assignment -----------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/machine/RegisterAssign.h"

#include "src/analysis/Liveness.h"
#include "src/ir/Function.h"
#include "src/machine/Target.h"

#include <algorithm>
#include <map>
#include <set>

using namespace pose;

namespace {

/// Inserts spill code for \p Victim: a store after every def and a load
/// into a fresh short-lived pseudo before every use.
void spillPseudo(Function &F, RegNum Victim, std::set<RegNum> &NoSpill) {
  StackSlot Slot;
  Slot.Name = "spill." + std::to_string(Victim);
  int32_t Index = F.addSlot(Slot);
  for (BasicBlock &B : F.Blocks) {
    for (size_t J = 0; J < B.Insts.size(); ++J) {
      Rtl &I = B.Insts[J];
      bool Uses = false;
      I.forEachUsedReg([&](RegNum R) { Uses |= (R == Victim); });
      if (Uses) {
        RegNum Tmp = F.makePseudo();
        NoSpill.insert(Tmp);
        I.forEachUseOperand([&](Operand &O) {
          if (O.getReg() == Victim)
            O = Operand::reg(Tmp);
        });
        B.Insts.insert(B.Insts.begin() + static_cast<long>(J),
                       rtl::load(Operand::reg(Tmp), Operand::slot(Index), 0));
        ++J; // Skip over the load we just inserted; I may have moved.
      }
      Rtl &Def = B.Insts[J];
      if (Def.definesReg() && Def.Dst.getReg() == Victim) {
        RegNum Tmp = F.makePseudo();
        NoSpill.insert(Tmp);
        Def.Dst = Operand::reg(Tmp);
        B.Insts.insert(B.Insts.begin() + static_cast<long>(J) + 1,
                       rtl::store(Operand::slot(Index), 0,
                                  Operand::reg(Tmp)));
        ++J;
      }
    }
  }
}

/// One coloring attempt. Returns true on success and fills \p Color;
/// otherwise sets \p SpillCandidate to a pseudo to spill.
bool tryColor(const Function &F, std::map<RegNum, RegNum> &Color,
              RegNum &SpillCandidate, const std::set<RegNum> &NoSpill) {
  Cfg C = Cfg::build(F);
  Liveness LV(F, C);

  // Interference sets, def-point construction: the destination of every
  // instruction interferes with everything live just after it.
  std::map<RegNum, std::set<RegNum>> Interf;
  std::vector<RegNum> Order; // First-def order, for deterministic results.
  auto Note = [&](RegNum R) {
    if (!Interf.count(R)) {
      Interf[R];
      Order.push_back(R);
    }
  };
  for (size_t BI = 0; BI != F.Blocks.size(); ++BI) {
    const BasicBlock &B = F.Blocks[BI];
    std::vector<BitVector> After = LV.liveAfterEach(F, BI);
    for (size_t J = 0; J != B.Insts.size(); ++J) {
      const Rtl &I = B.Insts[J];
      I.forEachUsedReg([&](RegNum R) { Note(R); });
      if (!I.definesReg())
        continue;
      RegNum D = I.Dst.getReg();
      Note(D);
      for (RegNum R = FirstPseudoReg; R < LV.numRegs(); ++R) {
        if (R != D && After[J].test(R)) {
          Note(R);
          Interf[D].insert(R);
          Interf[R].insert(D);
        }
      }
    }
  }

  // Greedy coloring in first-appearance order; highest-degree node wins
  // the spill lottery on failure.
  for (RegNum R : Order) {
    bool Used[target::NumAllocatableRegs] = {};
    for (RegNum N : Interf[R]) {
      auto It = Color.find(N);
      if (It != Color.end())
        Used[It->second] = true;
    }
    bool Placed = false;
    for (unsigned K = 0; K != target::NumAllocatableRegs; ++K) {
      if (!Used[K]) {
        Color[R] = K;
        Placed = true;
        break;
      }
    }
    if (Placed)
      continue;
    // Pick the spillable interference-set member with the most neighbors
    // (or R itself) as the victim.
    RegNum Victim = R;
    size_t BestDegree = NoSpill.count(R) ? 0 : Interf[R].size();
    for (RegNum N : Interf[R]) {
      if (NoSpill.count(N))
        continue;
      if (Interf[N].size() > BestDegree) {
        BestDegree = Interf[N].size();
        Victim = N;
      }
    }
    assert((!NoSpill.count(Victim) || Victim != R || BestDegree > 0) &&
           "register pressure irreducible: spill temporaries collide");
    SpillCandidate = Victim;
    return false;
  }
  return true;
}

} // namespace

void pose::assignRegisters(Function &F) {
  if (F.State.RegsAssigned)
    return;

  std::set<RegNum> NoSpill;
  std::map<RegNum, RegNum> Color;
  RegNum Victim = 0;
  // Color; on failure spill one pseudo and retry. Spill temporaries have
  // single-instruction live ranges, so this terminates quickly.
  while (!tryColor(F, Color, Victim, NoSpill)) {
    Color.clear();
    spillPseudo(F, Victim, NoSpill);
  }

  for (BasicBlock &B : F.Blocks) {
    for (Rtl &I : B.Insts) {
      if (I.Dst.isReg())
        I.Dst = Operand::reg(Color.at(I.Dst.getReg()));
      I.forEachUseOperand(
          [&](Operand &O) { O = Operand::reg(Color.at(O.getReg())); });
    }
  }
  F.State.RegsAssigned = true;
}
