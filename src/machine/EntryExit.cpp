//===- EntryExit.cpp - Activation record management -------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/machine/EntryExit.h"

#include "src/ir/Function.h"

using namespace pose;

void pose::fixEntryExit(Function &F) {
  if (F.Blocks.empty())
    return;
  BasicBlock &Entry = F.Blocks.front();
  if (!Entry.Insts.empty() && Entry.Insts.front().Opcode == Op::Prologue)
    return; // Already done.
  Entry.Insts.insert(Entry.Insts.begin(), Rtl(Op::Prologue));
  for (BasicBlock &B : F.Blocks) {
    for (size_t J = 0; J < B.Insts.size(); ++J) {
      if (B.Insts[J].Opcode == Op::Ret) {
        B.Insts.insert(B.Insts.begin() + static_cast<long>(J),
                       Rtl(Op::Epilogue));
        ++J;
      }
    }
  }
}
