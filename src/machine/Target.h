//===- Target.h - StrongARM-like machine model -----------------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine model: which RTLs are legal instructions. VPO maintains the
/// invariant that every RTL is a legal instruction of the target at all
/// times; instruction selection "checks if the resulting effect is a legal
/// instruction before committing to the transformation" (paper, Table 1).
/// Every phase that rewrites operands must consult these predicates.
///
/// The model is StrongARM-flavored: 12 allocatable registers, moderate
/// immediate fields, no immediate operand on multiply/divide, stores take
/// register values only.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_MACHINE_TARGET_H
#define POSE_MACHINE_TARGET_H

#include "src/ir/Rtl.h"

namespace pose {

namespace target {

/// Number of registers the register assigner and allocator may use.
constexpr unsigned NumAllocatableRegs = 12;

/// Largest magnitude usable as an ALU/compare/memory immediate.
constexpr int32_t MaxImmediate = 4095;

/// Returns true if \p V fits the ALU/compare/memory-offset immediate field.
inline bool fitsImmediate(int32_t V) {
  return V >= -MaxImmediate && V <= MaxImmediate;
}

/// Returns true if \p I is a legal machine instruction. This is the
/// predicate instruction selection and constant propagation must check
/// before rewriting an operand into an immediate or folding instructions.
bool isLegal(const Rtl &I);

/// Returns true if operand position \p SrcIndex of opcode \p O may hold an
/// immediate with value \p V.
bool immediateAllowed(Op O, int SrcIndex, int32_t V);

} // namespace target

} // namespace pose

#endif // POSE_MACHINE_TARGET_H
