//===- Protocol.h - posed wire protocol --------------------------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The length-prefixed request/response protocol spoken over the posed
/// Unix-domain socket, in the same framing discipline as the store and
/// the POSEWRK worker frame: a fixed magic, explicit payload length, and
/// CRC32 over both header and payload, so a truncated or damaged frame
/// is detected before a single payload byte is trusted. Payloads are
/// encoded with the store's bounds-checked little-endian ByteIo codecs —
/// a malicious length can fail a decode, never allocate unbounded
/// memory.
///
/// One frame carries one message. Requests: Ping (liveness), Run (a
/// posec command line to execute), Stats (scheduler counters), Shutdown
/// (begin a graceful drain), Reload (swap in the operator-staged store
/// after it passes fsck). Responses: Pong, RunResult (exit code +
/// captured stdout/stderr + how it was served), StatsReport, and Error
/// (a per-request or per-connection protocol failure). The full frame
/// layout and semantics are documented in docs/SERVICE.md.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_SERVE_PROTOCOL_H
#define POSE_SERVE_PROTOCOL_H

#include <cstdint>
#include <string>
#include <vector>

namespace pose {
namespace serve {

/// First 8 bytes of every frame.
constexpr char kMagic[8] = {'P', 'O', 'S', 'E', 'S', 'R', 'V', '1'};

/// Fixed frame header size: magic(8) + kind(4) + payload size(4) +
/// payload CRC32(4) + header CRC32(4).
constexpr size_t kHeaderSize = 24;

/// Hard cap on a request payload accepted by the daemon. A Run request
/// is a command line — kilobytes, not megabytes; anything bigger is a
/// protocol violation or an attack, and is rejected before allocation.
constexpr size_t kMaxRequestPayload = 1u << 20;

/// Hard cap on a response payload accepted by a client (a response
/// carries a posec run's full stdout/stderr).
constexpr size_t kMaxResponsePayload = 64u << 20;

/// Caps on one Run request's argument vector.
constexpr size_t kMaxRunArgs = 64;
constexpr size_t kMaxArgLen = 4096;

/// Message kinds. Requests are < 64, responses >= 64, so a peer can
/// reject a frame traveling in the wrong direction.
enum class MsgKind : uint32_t {
  Ping = 1,     ///< Liveness probe; answered with Pong.
  Run = 2,      ///< Execute a posec command line; answered with
                ///< RunResult or Error.
  Stats = 3,    ///< Scheduler counters; answered with StatsReport.
  Shutdown = 4, ///< Begin a graceful drain; answered with Pong.
  Reload = 5,   ///< Swap in the operator-staged store after it passes
                ///< fsck; answered with Pong, or Error(ReloadRejected)
                ///< when the candidate is unfit. The frame carries no
                ///< path: clients cannot redirect the daemon's store.

  Pong = 65,        ///< Answer to Ping, Shutdown, and Reload.
  RunResult = 66,   ///< A completed Run request.
  StatsReport = 67, ///< Answer to Stats.
  Error = 68,       ///< A failed request or a protocol diagnostic.
};

/// True for kinds a client may send to the daemon.
inline bool isRequestKind(MsgKind K) {
  return K == MsgKind::Ping || K == MsgKind::Run || K == MsgKind::Stats ||
         K == MsgKind::Shutdown || K == MsgKind::Reload;
}

/// How a RunResult was produced.
enum class ServedFrom : uint32_t {
  Computed = 0,  ///< This request triggered the posec child.
  Coalesced = 1, ///< Attached to an identical in-flight computation.
  Cached = 2,    ///< Served from the completed-response cache.
};

/// Short lower-case name ("computed", "coalesced", "cached").
const char *servedFromName(ServedFrom S);

/// Why a request (or connection) was refused.
enum class ErrorCode : uint32_t {
  BadFrame = 1,     ///< Bad magic/CRC/length; the connection is dropped
                    ///< after this diagnostic is flushed.
  BadRequest = 2,   ///< The frame was intact but its payload did not
                    ///< decode, or the argument vector broke a cap.
  DeniedArg = 3,    ///< The command line used a flag the daemon refuses
                    ///< to serve (store/supervisor/fault plumbing).
  Overloaded = 4,   ///< The per-client in-flight budget is exhausted;
                    ///< retry after a completion.
  ShuttingDown = 5, ///< The daemon is draining and admits no new work.
  WorkerFailed = 6, ///< The posec child died abnormally (signal, spawn
                    ///< failure, harness error) instead of exiting.
  Deadline = 7,     ///< The request exceeded its admission deadline
                    ///< before or while running.
  ReloadRejected = 8, ///< A Reload was refused: no staging store is
                      ///< configured, or the candidate failed fsck. The
                      ///< daemon keeps serving from the current store.
};

/// Short lower-case name ("bad-frame", "denied-arg", ...).
const char *errorCodeName(ErrorCode C);

/// A Run request: execute posec with these arguments.
struct RunRequest {
  uint64_t Id = 0; ///< Client-chosen; echoed in the response.
  std::vector<std::string> Args;
};

/// A completed Run.
struct RunResponse {
  uint64_t Id = 0;
  ServedFrom Served = ServedFrom::Computed;
  int32_t ExitCode = 0;
  std::string Stdout;
  std::string Stderr;
};

/// A refused or failed request. Id is 0 for connection-level
/// diagnostics (e.g. BadFrame) that answer no particular request.
struct ErrorResponse {
  uint64_t Id = 0;
  ErrorCode Code = ErrorCode::BadRequest;
  std::string Message;
  /// For Overloaded shed by the global queue cap: how long the client
  /// should wait before resending. 0 = no hint (retry after the next
  /// completion, per-client budget case).
  uint32_t RetryAfterMs = 0;
};

/// Version of the StatsReport payload. The counter set grows with the
/// daemon; an explicit leading version lets an old client fail with
/// "unsupported version" instead of misreading shifted fields. Bumped
/// to 2 when the self-healing counters (shed, read-timeouts, restarts,
/// reloads, reloads-rejected, sock-faults) were appended.
constexpr uint32_t kStatsVersion = 2;

/// Scheduler counters, for operators and for tests asserting dedup.
struct StatsReport {
  uint64_t Requests = 0;  ///< Run requests admitted.
  uint64_t Computed = 0;  ///< posec children spawned.
  uint64_t Coalesced = 0; ///< Requests attached to an in-flight twin.
  uint64_t CacheHits = 0; ///< Requests served from the response cache.
  uint64_t Errors = 0;    ///< Error responses sent.
  uint64_t Clients = 0;   ///< Connections currently open.
  uint64_t Running = 0;   ///< posec children currently live.
  uint64_t Queued = 0;    ///< Admitted requests waiting for a slot.
  uint64_t Shed = 0;      ///< Run requests refused by the global queue
                          ///< cap (Overloaded with a retry-after hint).
  uint64_t ReadTimeouts = 0; ///< Connections dropped by the read
                             ///< deadline (stalled or idle peers).
  uint64_t Restarts = 0;  ///< Watchdog restarts behind this daemon (0
                          ///< when not supervised or never crashed).
  uint64_t Reloads = 0;   ///< Store reloads accepted (fsck passed).
  uint64_t ReloadsRejected = 0; ///< Store reloads refused.
  uint64_t SockFaults = 0; ///< Injected --fault-sock operations fired.
};

/// Builds one complete frame (header + payload) around \p Payload.
std::vector<uint8_t> encodeFrame(MsgKind Kind,
                                 const std::vector<uint8_t> &Payload);

/// Payload-free frames.
std::vector<uint8_t> encodePing();
std::vector<uint8_t> encodePong();
std::vector<uint8_t> encodeShutdown();
std::vector<uint8_t> encodeStatsRequest();
std::vector<uint8_t> encodeReload();

/// Payload-carrying frames and their decoders. Every decoder returns
/// false (with \p Why set) on any overrun, cap violation, or trailing
/// garbage.
std::vector<uint8_t> encodeRunRequest(const RunRequest &R);
bool decodeRunRequest(const std::vector<uint8_t> &Payload, RunRequest &R,
                      std::string &Why);

std::vector<uint8_t> encodeRunResponse(const RunResponse &R);
bool decodeRunResponse(const std::vector<uint8_t> &Payload, RunResponse &R,
                       std::string &Why);

std::vector<uint8_t> encodeErrorResponse(const ErrorResponse &E);
bool decodeErrorResponse(const std::vector<uint8_t> &Payload,
                         ErrorResponse &E, std::string &Why);

std::vector<uint8_t> encodeStatsReport(const StatsReport &S);
bool decodeStatsReport(const std::vector<uint8_t> &Payload, StatsReport &S,
                       std::string &Why);

/// Incremental frame parser over a byte stream. feed() whatever arrived;
/// next() yields complete verified frames until the buffer runs dry
/// (NeedMore) or the stream is provably broken (Malformed — the caller
/// should drop the connection; there is no way to resynchronize a
/// length-prefixed stream after a bad header).
class FrameReader {
public:
  /// \p MaxPayload bounds the payload length this side will buffer
  /// (kMaxRequestPayload in the daemon, kMaxResponsePayload in clients).
  explicit FrameReader(size_t MaxPayload) : MaxPayload(MaxPayload) {}

  void feed(const uint8_t *Data, size_t N);

  enum class Status { NeedMore, Frame, Malformed };

  /// On Frame, \p Kind and \p Payload hold the decoded message; on
  /// Malformed, \p Why names the first violated invariant.
  Status next(MsgKind &Kind, std::vector<uint8_t> &Payload,
              std::string &Why);

  /// Bytes buffered but not yet consumed (diagnostics/tests).
  size_t buffered() const { return Buf.size() - Pos; }

private:
  std::vector<uint8_t> Buf;
  size_t Pos = 0;
  size_t MaxPayload;
  bool Broken = false;
};

} // namespace serve
} // namespace pose

#endif // POSE_SERVE_PROTOCOL_H
