//===- Watchdog.cpp - posed crash/hang supervisor -------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/serve/Watchdog.h"

#include "src/drive/ExitCodes.h"
#include "src/support/RetryPolicy.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace pose;
using namespace pose::serve;

namespace {

/// Watchdog-side signal state. Distinct from the daemon's handlers: the
/// daemon child resets these to default before runDaemon installs its
/// own, so a signal always lands in exactly one self-pipe.
volatile sig_atomic_t WdGotTerm = 0;
volatile sig_atomic_t WdGotHup = 0;
int WdPipeWr = -1;

void onWdSignal(int Sig) {
  if (Sig == SIGHUP)
    WdGotHup = 1;
  else
    WdGotTerm = 1;
  const char B = 1;
  if (WdPipeWr >= 0) {
    const ssize_t Ignored = ::write(WdPipeWr, &B, 1);
    (void)Ignored;
  }
}

uint64_t nowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void setNonBlocking(int Fd) {
  const int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags >= 0)
    ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
}

/// Deterministic jitter salt: the same socket path always retries on
/// the same schedule (FNV-1a, like the store's name hashing).
uint64_t saltOf(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (const char C : S) {
    H ^= static_cast<uint8_t>(C);
    H *= 1099511628211ull;
  }
  return H;
}

struct ChildOutcome {
  bool Exited = false; ///< WIFEXITED (vs. signalled / killed for hang).
  int ExitCode = 0;    ///< Valid when Exited.
  int Signal = 0;      ///< Valid when !Exited.
  bool Hung = false;   ///< Heartbeat timeout; we SIGKILLed it.
  bool TermForwarded = false; ///< Operator asked for a drain.
};

/// Waits for the daemon child to die, forwarding operator signals and
/// SIGKILLing it on heartbeat silence.
ChildOutcome monitorChild(pid_t Pid, int HbRd, uint64_t HeartbeatTimeoutMs,
                          int WdPipeRd) {
  ChildOutcome Out;
  uint64_t LastBeat = nowMs();
  for (;;) {
    int St = 0;
    const pid_t R = ::waitpid(Pid, &St, WNOHANG);
    if (R == Pid) {
      Out.Exited = WIFEXITED(St);
      Out.ExitCode = Out.Exited ? WEXITSTATUS(St) : 0;
      Out.Signal = WIFSIGNALED(St) ? WTERMSIG(St) : 0;
      return Out;
    }

    struct pollfd P[2];
    P[0] = {HbRd, POLLIN, 0};
    P[1] = {WdPipeRd, POLLIN, 0};
    ::poll(P, 2, 100);

    if (P[0].revents & POLLIN) {
      char Drain[256];
      while (::read(HbRd, Drain, sizeof(Drain)) > 0) {
      }
      LastBeat = nowMs();
    }
    if (P[1].revents & POLLIN) {
      char Drain[64];
      while (::read(WdPipeRd, Drain, sizeof(Drain)) > 0) {
      }
    }
    if (WdGotHup) {
      WdGotHup = 0;
      ::kill(Pid, SIGHUP);
    }
    if (WdGotTerm && !Out.TermForwarded) {
      Out.TermForwarded = true;
      std::fprintf(stderr,
                   "posed-watchdog: forwarding shutdown to pid %d\n",
                   static_cast<int>(Pid));
      ::kill(Pid, SIGTERM);
      // Keep monitoring: the drain still heartbeats, so a daemon that
      // wedges *during* shutdown is still caught below.
    }
    if (HeartbeatTimeoutMs != 0 && nowMs() - LastBeat > HeartbeatTimeoutMs) {
      std::fprintf(stderr,
                   "posed-watchdog: no heartbeat from pid %d for %llums; "
                   "killing\n",
                   static_cast<int>(Pid),
                   static_cast<unsigned long long>(HeartbeatTimeoutMs));
      ::kill(Pid, SIGKILL);
      int KSt = 0;
      ::waitpid(Pid, &KSt, 0);
      Out.Hung = true;
      Out.Exited = false;
      Out.Signal = SIGKILL;
      return Out;
    }
  }
}

/// Interruptible backoff sleep. Returns false when an operator
/// shutdown arrived mid-sleep (stop restarting).
bool sleepBackoff(uint64_t DelayMs, int WdPipeRd) {
  const uint64_t Until = nowMs() + DelayMs;
  for (;;) {
    if (WdGotTerm)
      return false;
    const uint64_t Now = nowMs();
    if (Now >= Until)
      return true;
    struct pollfd P = {WdPipeRd, POLLIN, 0};
    ::poll(&P, 1, static_cast<int>(Until - Now));
    if (P.revents & POLLIN) {
      char Drain[64];
      while (::read(WdPipeRd, Drain, sizeof(Drain)) > 0) {
      }
    }
  }
}

} // namespace

int pose::serve::runWatchdog(const ServeOptions &O,
                             const WatchdogOptions &W) {
  std::string Err;
  const int ListenFd = bindListeningSocket(O.SocketPath, Err);
  if (ListenFd < 0) {
    std::fprintf(stderr, "posed-watchdog: %s\n", Err.c_str());
    return drive::ExitCode::ServeSocket;
  }

  int WdPipe[2] = {-1, -1};
  if (::pipe(WdPipe) != 0) {
    std::fprintf(stderr, "posed-watchdog: pipe: %s\n",
                 std::strerror(errno));
    ::close(ListenFd);
    ::unlink(O.SocketPath.c_str());
    return drive::ExitCode::Error;
  }
  setNonBlocking(WdPipe[0]);
  setNonBlocking(WdPipe[1]);
  WdPipeWr = WdPipe[1];
  WdGotTerm = 0;
  WdGotHup = 0;

  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onWdSignal;
  ::sigaction(SIGTERM, &SA, nullptr);
  ::sigaction(SIGINT, &SA, nullptr);
  ::sigaction(SIGHUP, &SA, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  const RetryPolicy Policy{W.MaxRestarts, /*BaseDelayMs=*/100,
                           /*MaxDelayMs=*/5'000, /*JitterPct=*/20};
  const uint64_t Salt = saltOf(O.SocketPath);

  auto Cleanup = [&] {
    ::close(ListenFd);
    ::close(WdPipe[0]);
    ::close(WdPipe[1]);
    WdPipeWr = -1;
    ::unlink(O.SocketPath.c_str());
  };

  std::fprintf(stderr,
               "posed-watchdog: holding %s (max-restarts %u, "
               "heartbeat-timeout %llums)\n",
               O.SocketPath.c_str(), W.MaxRestarts,
               static_cast<unsigned long long>(W.HeartbeatTimeoutMs));

  unsigned Failures = 0;
  for (;;) {
    int Hb[2] = {-1, -1};
    if (::pipe(Hb) != 0) {
      std::fprintf(stderr, "posed-watchdog: pipe: %s\n",
                   std::strerror(errno));
      Cleanup();
      return drive::ExitCode::Error;
    }
    setNonBlocking(Hb[0]);
    setNonBlocking(Hb[1]);

    const pid_t Pid = ::fork();
    if (Pid < 0) {
      std::fprintf(stderr, "posed-watchdog: fork: %s\n",
                   std::strerror(errno));
      ::close(Hb[0]);
      ::close(Hb[1]);
      Cleanup();
      return drive::ExitCode::Error;
    }
    if (Pid == 0) {
      // Daemon child. Same image, no exec: the listening fd and
      // heartbeat pipe ride through ServeOptions. Watchdog plumbing is
      // detached (signals back to default — runDaemon installs its
      // own; the watchdog's self-pipe closed so a stray handler could
      // never write into the parent's loop).
      ::signal(SIGTERM, SIG_DFL);
      ::signal(SIGINT, SIG_DFL);
      ::signal(SIGHUP, SIG_DFL);
      ::close(WdPipe[0]);
      ::close(WdPipe[1]);
      WdPipeWr = -1;
      ::close(Hb[0]);
      // Die with the watchdog: a SIGKILLed watchdog must not leave an
      // orphan daemon holding the socket it can no longer restart.
      ::prctl(PR_SET_PDEATHSIG, SIGKILL);
      ServeOptions CO = O;
      CO.InheritedListenFd = ListenFd;
      CO.HeartbeatFd = Hb[1];
      CO.RestartCount = Failures;
      ::_exit(runDaemon(CO));
    }

    ::close(Hb[1]);
    std::fprintf(stderr, "posed-watchdog: daemon pid %d (restart %u)\n",
                 static_cast<int>(Pid), Failures);

    const ChildOutcome C =
        monitorChild(Pid, Hb[0], W.HeartbeatTimeoutMs, WdPipe[0]);
    ::close(Hb[0]);

    if (C.Exited && C.ExitCode == drive::ExitCode::Ok) {
      std::fprintf(stderr, "posed-watchdog: daemon drained; exiting\n");
      Cleanup();
      return drive::ExitCode::Ok;
    }
    if (C.Exited && (C.ExitCode == drive::ExitCode::Usage ||
                     C.ExitCode == drive::ExitCode::ServeSocket)) {
      // Configuration errors: the respawn would fail identically.
      std::fprintf(stderr,
                   "posed-watchdog: daemon exited %d (configuration); "
                   "not restarting\n",
                   C.ExitCode);
      Cleanup();
      return C.ExitCode;
    }
    if (C.TermForwarded) {
      // The operator asked for a drain and the daemon died some other
      // way (crash mid-drain, hang). Restarting against the operator's
      // intent would be worse than reporting the mess.
      std::fprintf(stderr,
                   "posed-watchdog: daemon died during shutdown "
                   "(%s); exiting\n",
                   C.Hung ? "hung"
                   : C.Exited
                       ? ("exit " + std::to_string(C.ExitCode)).c_str()
                       : ("signal " + std::to_string(C.Signal)).c_str());
      Cleanup();
      return drive::ExitCode::Error;
    }

    ++Failures;
    if (C.Hung)
      std::fprintf(stderr, "posed-watchdog: daemon hang #%u\n", Failures);
    else if (C.Exited)
      std::fprintf(stderr, "posed-watchdog: daemon exit %d (failure #%u)\n",
                   C.ExitCode, Failures);
    else
      std::fprintf(stderr,
                   "posed-watchdog: daemon killed by signal %d "
                   "(failure #%u)\n",
                   C.Signal, Failures);

    if (!Policy.shouldRetry(Failures)) {
      std::fprintf(stderr,
                   "posed-watchdog: restart budget of %u exhausted; "
                   "giving up (exit %d)\n",
                   W.MaxRestarts,
                   static_cast<int>(drive::ExitCode::WatchdogGaveUp));
      Cleanup();
      return drive::ExitCode::WatchdogGaveUp;
    }
    const uint64_t Delay = Policy.delayMs(Failures, Salt);
    std::fprintf(stderr, "posed-watchdog: restarting in %llums\n",
                 static_cast<unsigned long long>(Delay));
    if (!sleepBackoff(Delay, WdPipe[0])) {
      // Operator shutdown while the daemon is down: nothing to drain.
      std::fprintf(stderr, "posed-watchdog: shutdown while stopped\n");
      Cleanup();
      return drive::ExitCode::Ok;
    }
  }
}
