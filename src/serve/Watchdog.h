//===- Watchdog.h - posed crash/hang supervisor ----------------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `posed --watchdog`: a parent process that owns the listening socket
/// and keeps a daemon child alive behind it. The daemon is the one
/// single point of failure in a pipeline that is otherwise
/// crash-isolated end to end (PhaseGuard, the supervisor, the store's
/// old-or-none commits); the watchdog closes that gap.
///
/// Mechanics: the watchdog binds the socket once, forks the daemon
/// (same process image, no exec — runDaemon() runs in the child with
/// the listening fd passed through ServeOptions::InheritedListenFd),
/// and watches two things: the child's exit status and a heartbeat
/// pipe the daemon writes one byte to per poll iteration. A crash
/// (abnormal exit) or a hang (no heartbeat within the timeout; the
/// child is SIGKILLed) triggers a restart under the shared RetryPolicy
/// — bounded attempts, capped exponential backoff, deterministic
/// jitter salted by the socket path. Because the watchdog holds the
/// listening socket across restarts, clients never see
/// connection-refused: connects made while the daemon is down queue in
/// the listen backlog and are accepted by the next incarnation.
///
/// Contract: SIGTERM/SIGINT are forwarded (graceful drain; the
/// watchdog exits with the child's code — 0 on a clean drain), SIGHUP
/// is forwarded (hot store reload). A child that exits 0 ends
/// supervision. Usage/ServeSocket exits are configuration errors and
/// are not retried. When the restart budget is exhausted the watchdog
/// stops, releases the socket, and exits
/// drive::ExitCode::WatchdogGaveUp (13) — the documented "page an
/// operator" signal.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_SERVE_WATCHDOG_H
#define POSE_SERVE_WATCHDOG_H

#include "src/serve/Daemon.h"

#include <cstdint>

namespace pose {
namespace serve {

struct WatchdogOptions {
  /// Restarts allowed before escalating; the (MaxRestarts+1)-th daemon
  /// failure exits WatchdogGaveUp. 0 = never restart (a crash
  /// escalates immediately).
  unsigned MaxRestarts = 5;
  /// A daemon silent for longer than this is declared hung and
  /// SIGKILLed (counts as a crash). The daemon beats once per poll
  /// iteration (~200ms), so the default leaves a wide margin for store
  /// fsck pauses during reloads. 0 = hang detection off.
  uint64_t HeartbeatTimeoutMs = 5'000;
};

/// Runs the watchdog until the daemon drains cleanly, a non-retryable
/// exit occurs, or the restart budget is exhausted. Returns the
/// process exit code (drive::ExitCode).
int runWatchdog(const ServeOptions &O, const WatchdogOptions &W);

} // namespace serve
} // namespace pose

#endif // POSE_SERVE_WATCHDOG_H
