//===- Daemon.cpp - posed: phase-order search as a service ----------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/serve/Daemon.h"

#include "src/drive/ExitCodes.h"
#include "src/serve/Protocol.h"
#include "src/store/ArtifactStore.h"
#include "src/store/StoreAdmin.h"
#include "src/support/FaultSock.h"
#include "src/support/StopToken.h"
#include "src/support/Subprocess.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace pose;
using namespace pose::serve;

namespace {

/// Self-pipe write end for the signal handlers; only async-signal-safe
/// operations are allowed there, and a one-byte write to a non-blocking
/// pipe is exactly that.
volatile sig_atomic_t GotShutdownSignal = 0;
volatile sig_atomic_t GotReloadSignal = 0;
int ShutdownPipeWr = -1;

void onShutdownSignal(int) {
  GotShutdownSignal = 1;
  const char B = 1;
  if (ShutdownPipeWr >= 0) {
    const ssize_t Ignored = ::write(ShutdownPipeWr, &B, 1);
    (void)Ignored;
  }
}

/// SIGHUP = reload the staging store, the classic daemon convention.
/// Same self-pipe wakeup; the main loop does the actual (non-signal-
/// safe) fsck + swap.
void onReloadSignal(int) {
  GotReloadSignal = 1;
  const char B = 1;
  if (ShutdownPipeWr >= 0) {
    const ssize_t Ignored = ::write(ShutdownPipeWr, &B, 1);
    (void)Ignored;
  }
}

/// Steady-clock milliseconds for I/O deadlines (wall-clock jumps must
/// not kill connections).
uint64_t nowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void setNonBlocking(int Fd) {
  const int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags >= 0)
    ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
}

void setCloexec(int Fd) { ::fcntl(Fd, F_SETFD, FD_CLOEXEC); }

/// Flags the daemon refuses to serve: store plumbing (the daemon owns
/// the store), supervisor/worker modes (a served request is already a
/// child), and the fault-injection surface (a client must not be able to
/// corrupt the shared store or crash the fleet by request).
bool isDeniedArg(const std::string &A, std::string &Flag) {
  static const char *const Denied[] = {
      "--store",          "--merge-store",      "--fsck",
      "--repair",         "--worker",           "--supervise",
      "--attempt",        "--quarantine",       "--list-quarantine",
      "--clear-quarantine", "--inject-fault",   "--fault-io",
      "--fault-func",     "--fault-attempts",   "--sweep-jobs",
      "--worker-timeout-ms", "--worker-rlimit-mb", "--max-retries",
      "--shard"};
  for (const char *F : Denied) {
    const size_t N = std::strlen(F);
    if (A.compare(0, N, F) == 0 && (A.size() == N || A[N] == '=')) {
      Flag = F;
      return true;
    }
  }
  return false;
}

/// One admitted-but-not-yet-scheduled Run request.
struct Pending {
  uint64_t ReqId = 0;
  std::vector<std::string> Args;
  std::string Key; ///< Exact argv bytes: the dedup identity.
  ResourceGovernor Admission; ///< Deadline armed at admission; expires
                              ///< the request even while queued.
};

/// One client connection.
struct Conn {
  int Fd = -1;
  uint64_t Id = 0;
  SockIo *Io = nullptr; ///< Notified before close (per-fd fault state).
  FrameReader In{kMaxRequestPayload};
  std::string Out;   ///< Encoded response bytes not yet written.
  size_t OutPos = 0; ///< Written prefix of Out.
  std::deque<Pending> Queue;
  size_t Running = 0; ///< Requests attached to an in-flight job.
  uint64_t LastActivityMs = 0; ///< Last successful read or send progress.
  bool CloseAfterFlush = false;
  bool Dead = false;

  ~Conn() {
    if (Fd >= 0) {
      if (Io)
        Io->closed(Fd);
      ::close(Fd);
    }
  }
};

/// One request waiting on a posec child.
struct Waiter {
  uint64_t ConnId = 0;
  uint64_t ReqId = 0;
  bool Initiator = false; ///< Triggered the spawn (ServedFrom::Computed).
};

/// One in-flight posec child and everyone waiting on it.
struct Job {
  std::string Key;
  std::vector<Waiter> Waiters;
};

struct CacheEntry {
  int32_t ExitCode = 0;
  std::string Stdout;
  std::string Stderr;
  std::list<std::string>::iterator LruIt;
};

class Daemon {
public:
  explicit Daemon(const ServeOptions &O)
      : O(O), CurrentStore(O.StoreDir) {}
  int run();

private:
  Conn *findConn(uint64_t Id);
  void queueBytes(Conn &C, const std::vector<uint8_t> &Bytes);
  void sendError(Conn &C, uint64_t ReqId, ErrorCode Code, std::string Msg,
                 uint32_t RetryAfterMs = 0);
  void sendResult(Conn &C, uint64_t ReqId, ServedFrom Served,
                  const CacheEntry &E);
  void flushOut(Conn &C);
  void acceptClients();
  void readClient(Conn &C);
  void dispatch(Conn &C, MsgKind Kind, const std::vector<uint8_t> &Payload);
  void handleRun(Conn &C, const std::vector<uint8_t> &Payload);
  bool reloadStore(std::string &Why);
  void abandonConn(Conn &C);
  void expireQueued();
  void expireStalledReads();
  void schedule();
  void startJob(Conn &C, Pending P);
  void completeJob(SubprocessPool::JobId Id, const SubprocessResult &R);
  CacheEntry *cacheFind(const std::string &Key);
  void cacheInsert(const std::string &Key, CacheEntry E);
  uint64_t totalQueued() const;
  uint32_t retryAfterHintMs() const;
  StatsReport stats() const;
  bool drained() const;

  const ServeOptions &O;
  std::string CurrentStore; ///< Store served right now; a Reload swaps
                            ///< it. In-flight children keep the path
                            ///< they were spawned with.
  SockIo *Io = &SockIo::system(); ///< Connection I/O; FaultSock in tests.
  std::unique_ptr<FaultSock> Injector; ///< Owns Io when faults are on.
  SubprocessPool Pool;
  std::vector<std::unique_ptr<Conn>> Conns;
  std::unordered_map<SubprocessPool::JobId, Job> Jobs;
  std::unordered_map<std::string, SubprocessPool::JobId> InFlightByKey;
  std::unordered_map<std::string, CacheEntry> Cache;
  std::list<std::string> CacheLru; ///< Front = coldest, back = hottest.
  int ListenFd = -1;
  int PipeRd = -1;
  uint64_t NextConnId = 1;
  size_t RRCursor = 0; ///< Round-robin scan start for fair scheduling.
  bool Draining = false;
  StatsReport Counters; ///< Gauges recomputed in stats().
};

Conn *Daemon::findConn(uint64_t Id) {
  for (std::unique_ptr<Conn> &C : Conns)
    if (C->Id == Id && !C->Dead)
      return C.get();
  return nullptr;
}

void Daemon::queueBytes(Conn &C, const std::vector<uint8_t> &Bytes) {
  if (C.Dead)
    return;
  C.Out.append(reinterpret_cast<const char *>(Bytes.data()), Bytes.size());
}

void Daemon::sendError(Conn &C, uint64_t ReqId, ErrorCode Code,
                       std::string Msg, uint32_t RetryAfterMs) {
  if (O.Verbose)
    std::fprintf(stderr, "posed: conn %llu req %llu: %s: %s\n",
                 static_cast<unsigned long long>(C.Id),
                 static_cast<unsigned long long>(ReqId), errorCodeName(Code),
                 Msg.c_str());
  ErrorResponse E;
  E.Id = ReqId;
  E.Code = Code;
  E.Message = std::move(Msg);
  E.RetryAfterMs = RetryAfterMs;
  queueBytes(C, encodeErrorResponse(E));
  ++Counters.Errors;
}

void Daemon::sendResult(Conn &C, uint64_t ReqId, ServedFrom Served,
                        const CacheEntry &E) {
  RunResponse R;
  R.Id = ReqId;
  R.Served = Served;
  R.ExitCode = E.ExitCode;
  R.Stdout = E.Stdout;
  R.Stderr = E.Stderr;
  queueBytes(C, encodeRunResponse(R));
}

void Daemon::flushOut(Conn &C) {
  while (!C.Dead && C.OutPos < C.Out.size()) {
    const ssize_t N = Io->send(C.Fd, C.Out.data() + C.OutPos,
                               C.Out.size() - C.OutPos);
    if (N > 0) {
      C.OutPos += static_cast<size_t>(N);
      C.LastActivityMs = nowMs();
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return;
    if (N < 0 && errno == EINTR)
      continue;
    C.Dead = true; // Peer vanished mid-write.
    return;
  }
  if (C.OutPos == C.Out.size()) {
    C.Out.clear();
    C.OutPos = 0;
    if (C.CloseAfterFlush)
      C.Dead = true;
  }
}

void Daemon::acceptClients() {
  for (;;) {
    const int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      return; // EAGAIN or a transient accept failure; poll again later.
    }
    setNonBlocking(Fd);
    setCloexec(Fd);
    auto C = std::make_unique<Conn>();
    C->Fd = Fd;
    C->Id = NextConnId++;
    C->Io = Io;
    C->LastActivityMs = nowMs();
    if (O.Verbose)
      std::fprintf(stderr, "posed: conn %llu connected\n",
                   static_cast<unsigned long long>(C->Id));
    Conns.push_back(std::move(C));
  }
}

void Daemon::readClient(Conn &C) {
  char Buf[65536];
  for (;;) {
    const ssize_t N = Io->read(C.Fd, Buf, sizeof(Buf));
    if (N > 0) {
      C.In.feed(reinterpret_cast<const uint8_t *>(Buf),
                static_cast<size_t>(N));
      C.LastActivityMs = nowMs();
      if (static_cast<size_t>(N) < sizeof(Buf))
        break; // Likely drained; poll decides.
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      break;
    // EOF or a hard error: the client is gone.
    abandonConn(C);
    return;
  }

  MsgKind Kind;
  std::vector<uint8_t> Payload;
  std::string Why;
  for (;;) {
    const FrameReader::Status S = C.In.next(Kind, Payload, Why);
    if (S == FrameReader::Status::NeedMore)
      return;
    if (S == FrameReader::Status::Malformed) {
      // Length-prefixed streams cannot resynchronize after a bad
      // header: answer with a diagnostic, flush it, drop the client.
      // The daemon itself stays up.
      sendError(C, 0, ErrorCode::BadFrame, Why);
      C.CloseAfterFlush = true;
      return;
    }
    dispatch(C, Kind, Payload);
    if (C.Dead || C.CloseAfterFlush)
      return;
  }
}

void Daemon::dispatch(Conn &C, MsgKind Kind,
                      const std::vector<uint8_t> &Payload) {
  if (!isRequestKind(Kind)) {
    sendError(C, 0, ErrorCode::BadFrame,
              "unknown or response-direction frame kind " +
                  std::to_string(static_cast<uint32_t>(Kind)));
    C.CloseAfterFlush = true;
    return;
  }
  switch (Kind) {
  case MsgKind::Ping:
    queueBytes(C, encodePong());
    return;
  case MsgKind::Stats:
    queueBytes(C, encodeStatsReport(stats()));
    return;
  case MsgKind::Shutdown:
    if (O.Verbose)
      std::fprintf(stderr, "posed: shutdown requested by conn %llu\n",
                   static_cast<unsigned long long>(C.Id));
    Draining = true;
    queueBytes(C, encodePong());
    return;
  case MsgKind::Reload: {
    if (Draining) {
      sendError(C, 0, ErrorCode::ShuttingDown,
                "daemon is draining; no reload");
      return;
    }
    std::string Why;
    if (reloadStore(Why))
      queueBytes(C, encodePong());
    else
      sendError(C, 0, ErrorCode::ReloadRejected, Why);
    return;
  }
  case MsgKind::Run:
    handleRun(C, Payload);
    return;
  default:
    return; // Unreachable: isRequestKind filtered everything else.
  }
}

void Daemon::handleRun(Conn &C, const std::vector<uint8_t> &Payload) {
  RunRequest R;
  std::string Why;
  if (!decodeRunRequest(Payload, R, Why)) {
    // The frame was intact (CRCs passed) but the payload is not a run
    // request — a broken or hostile client; drop it like a bad frame.
    sendError(C, 0, ErrorCode::BadRequest, Why);
    C.CloseAfterFlush = true;
    return;
  }
  if (Draining) {
    sendError(C, R.Id, ErrorCode::ShuttingDown,
              "daemon is draining; no new work admitted");
    return;
  }
  for (const std::string &A : R.Args) {
    std::string Flag;
    if (isDeniedArg(A, Flag)) {
      sendError(C, R.Id, ErrorCode::DeniedArg,
                "flag '" + Flag + "' is not served: the daemon owns the "
                "store, supervision, and fault plumbing");
      return;
    }
  }
  if (C.Queue.size() + C.Running >= O.MaxInFlightPerClient) {
    sendError(C, R.Id, ErrorCode::Overloaded,
              "client in-flight budget of " +
                  std::to_string(O.MaxInFlightPerClient) +
                  " exhausted; wait for a completion");
    return;
  }
  // The cap measures backlog that cannot start immediately: requests
  // admitted in this dispatch pass but destined for a free worker slot
  // (schedule() runs right after) are not "queued" in any sense a
  // client should be shed over.
  const uint64_t FreeSlots =
      Pool.live() < O.MaxJobs ? O.MaxJobs - Pool.live() : 0;
  if (O.MaxQueueDepth != 0 &&
      totalQueued() >= O.MaxQueueDepth + FreeSlots) {
    // Global shed: the queue is deep across every client, so "wait for
    // one of your own completions" is the wrong advice — tell the
    // client how long the backlog is worth in wall-clock instead.
    ++Counters.Shed;
    sendError(C, R.Id, ErrorCode::Overloaded,
              "daemon queue depth cap of " +
                  std::to_string(O.MaxQueueDepth) +
                  " reached; retry after the hint",
              retryAfterHintMs());
    return;
  }

  Pending P;
  P.ReqId = R.Id;
  P.Key.reserve(64);
  for (const std::string &A : R.Args) {
    P.Key += A;
    P.Key += '\0'; // Args cannot contain NUL (decode rejects it).
  }
  P.Args = std::move(R.Args);
  P.Admission.setDeadline(O.RequestTimeoutMs);
  C.Queue.push_back(std::move(P));
  ++Counters.Requests;
}

bool Daemon::reloadStore(std::string &Why) {
  if (O.ReloadStoreDir.empty()) {
    ++Counters.ReloadsRejected;
    Why = "no staging store configured (--reload-store)";
    return false;
  }
  // The gate: never swap to a store that fails fsck. The check runs
  // in-process (no repair — a staging store is someone else's output;
  // mutating it here would mask the deployment bug being caught).
  const store::FsckReport R = store::fsckStore(O.ReloadStoreDir,
                                               /*Repair=*/false);
  if (!R.Error.empty()) {
    ++Counters.ReloadsRejected;
    Why = "candidate store '" + O.ReloadStoreDir + "': " + R.Error;
    return false;
  }
  if (!R.clean()) {
    ++Counters.ReloadsRejected;
    Why = "candidate store '" + O.ReloadStoreDir + "' failed fsck: " +
          std::to_string(R.Corrupt) + " corrupt, " +
          std::to_string(R.Truncated) + " truncated, " +
          std::to_string(R.Orphans) + " orphaned";
    return false;
  }
  // Atomic from the service's point of view: children spawned from here
  // on get the new path; in-flight children finish against the old one
  // and their responses are still delivered (stdout + exit code are
  // store-independent, so the dedup contract is unbroken across the
  // swap). The response cache stays valid for the same reason.
  CurrentStore = O.ReloadStoreDir;
  ++Counters.Reloads;
  std::fprintf(stderr, "posed: reloaded store '%s' (fsck clean)\n",
               CurrentStore.c_str());
  return true;
}

void Daemon::abandonConn(Conn &C) {
  if (C.Dead)
    return;
  C.Dead = true;
  if (O.Verbose)
    std::fprintf(stderr, "posed: conn %llu disconnected (%zu queued, %zu "
                         "running abandoned)\n",
                 static_cast<unsigned long long>(C.Id), C.Queue.size(),
                 C.Running);
  C.Queue.clear();
  // Detach this client from every in-flight job; a job nobody waits on
  // anymore is killed so a vanished client cannot pin a worker slot.
  for (auto It = Jobs.begin(); It != Jobs.end();) {
    Job &J = It->second;
    J.Waiters.erase(std::remove_if(J.Waiters.begin(), J.Waiters.end(),
                                   [&](const Waiter &W) {
                                     return W.ConnId == C.Id;
                                   }),
                    J.Waiters.end());
    if (J.Waiters.empty()) {
      Pool.kill(It->first);
      InFlightByKey.erase(J.Key);
      // The killed child still surfaces from a later wait(); the erased
      // map entry makes completeJob drop that result on the floor.
      It = Jobs.erase(It);
    } else {
      ++It;
    }
  }
  C.Running = 0;
}

void Daemon::expireQueued() {
  for (std::unique_ptr<Conn> &CP : Conns) {
    Conn &C = *CP;
    if (C.Dead)
      continue;
    for (size_t I = 0; I != C.Queue.size();) {
      if (C.Queue[I].Admission.check() == StopReason::Complete) {
        ++I;
        continue;
      }
      sendError(C, C.Queue[I].ReqId, ErrorCode::Deadline,
                "request exceeded its " +
                    std::to_string(O.RequestTimeoutMs) +
                    "ms admission deadline while queued");
      C.Queue.erase(C.Queue.begin() + static_cast<ptrdiff_t>(I));
    }
  }
}

void Daemon::expireStalledReads() {
  if (O.ReadTimeoutMs == 0)
    return;
  const uint64_t Now = nowMs();
  for (std::unique_ptr<Conn> &CP : Conns) {
    Conn &C = *CP;
    if (C.Dead)
      continue;
    // A connection legitimately waiting on its own in-flight work (and
    // with nothing half-transferred in either direction) is exempt: a
    // long enumeration is not a stalled peer. Everything else — a frame
    // torn mid-parse (slow-loris), a response the peer will not read,
    // or a half-open idle socket — is reclaimed after the deadline.
    const bool MidFrame = C.In.buffered() > 0;
    const bool WriteStuck = C.OutPos < C.Out.size();
    const bool Idle = C.Queue.empty() && C.Running == 0 && !WriteStuck;
    if (!(MidFrame || WriteStuck || Idle))
      continue;
    if (Now - C.LastActivityMs <= O.ReadTimeoutMs)
      continue;
    ++Counters.ReadTimeouts;
    if (O.Verbose)
      std::fprintf(stderr,
                   "posed: conn %llu made no progress for %llums "
                   "(%s); dropping\n",
                   static_cast<unsigned long long>(C.Id),
                   static_cast<unsigned long long>(Now - C.LastActivityMs),
                   MidFrame      ? "mid-frame"
                   : WriteStuck ? "unread response"
                                : "idle");
    abandonConn(C);
  }
}

void Daemon::schedule() {
  // Round-robin across clients: take at most one schedulable request per
  // client per pass, so a client with a deep queue cannot starve the
  // others. Cache hits and coalesced requests do not consume a worker
  // slot and are answered regardless of fleet occupancy.
  bool Progress = true;
  while (Progress && !Conns.empty()) {
    Progress = false;
    for (size_t K = 0; K != Conns.size(); ++K) {
      const size_t Idx = (RRCursor + K) % Conns.size();
      Conn &C = *Conns[Idx];
      if (C.Dead || C.Queue.empty())
        continue;
      if (CacheEntry *E = cacheFind(C.Queue.front().Key)) {
        sendResult(C, C.Queue.front().ReqId, ServedFrom::Cached, *E);
        ++Counters.CacheHits;
        C.Queue.pop_front();
        Progress = true;
        continue;
      }
      const auto It = InFlightByKey.find(C.Queue.front().Key);
      if (It != InFlightByKey.end()) {
        Jobs[It->second].Waiters.push_back(
            {C.Id, C.Queue.front().ReqId, false});
        ++Counters.Coalesced;
        ++C.Running;
        C.Queue.pop_front();
        Progress = true;
        continue;
      }
      if (Pool.live() >= O.MaxJobs)
        continue; // Fleet is full; this client keeps its turn.
      Pending P = std::move(C.Queue.front());
      C.Queue.pop_front();
      RRCursor = Idx + 1;
      startJob(C, std::move(P));
      Progress = true;
    }
  }
}

void Daemon::startJob(Conn &C, Pending P) {
  SubprocessSpec Spec;
  Spec.Argv.reserve(P.Args.size() + 2);
  Spec.Argv.push_back(O.PosecPath);
  for (std::string &A : P.Args)
    Spec.Argv.push_back(std::move(A));
  Spec.Argv.push_back("--store=" + CurrentStore);
  Spec.TimeoutMs = O.RequestTimeoutMs;
  Spec.MemoryLimitBytes = O.WorkerRlimitMb * 1024 * 1024;

  const SubprocessPool::JobId Id = Pool.spawn(Spec);
  Job J;
  J.Key = std::move(P.Key);
  J.Waiters.push_back({C.Id, P.ReqId, true});
  InFlightByKey[J.Key] = Id;
  Jobs[Id] = std::move(J);
  ++C.Running;
  ++Counters.Computed;
  if (O.Verbose)
    std::fprintf(stderr, "posed: conn %llu req %llu: spawned job %llu\n",
                 static_cast<unsigned long long>(C.Id),
                 static_cast<unsigned long long>(P.ReqId),
                 static_cast<unsigned long long>(Id));
}

void Daemon::completeJob(SubprocessPool::JobId Id,
                         const SubprocessResult &R) {
  const auto It = Jobs.find(Id);
  if (It == Jobs.end())
    return; // Killed after its last waiter disconnected; nobody cares.
  Job J = std::move(It->second);
  Jobs.erase(It);
  InFlightByKey.erase(J.Key);

  if (R.Kind == ExitKind::Exited) {
    CacheEntry E;
    E.ExitCode = R.ExitCode;
    E.Stdout = R.Stdout;
    E.Stderr = R.Stderr;
    for (const Waiter &W : J.Waiters)
      if (Conn *C = findConn(W.ConnId)) {
        sendResult(*C, W.ReqId,
                   W.Initiator ? ServedFrom::Computed
                               : ServedFrom::Coalesced,
                   E);
        --C->Running;
      }
    cacheInsert(J.Key, std::move(E));
    return;
  }

  std::string Msg;
  switch (R.Kind) {
  case ExitKind::SpawnFailed:
    Msg = "cannot spawn posec: " + R.Error;
    break;
  case ExitKind::Signalled:
    Msg = "worker died: signal " + std::to_string(R.Signal);
    break;
  case ExitKind::TimedOut:
    Msg = "request exceeded its " + std::to_string(O.RequestTimeoutMs) +
          "ms deadline and was killed";
    break;
  case ExitKind::PollFailed:
    Msg = "worker harness failed: " + R.Error;
    break;
  case ExitKind::Exited:
    break; // Handled above.
  }
  const ErrorCode Code = R.Kind == ExitKind::TimedOut
                             ? ErrorCode::Deadline
                             : ErrorCode::WorkerFailed;
  for (const Waiter &W : J.Waiters)
    if (Conn *C = findConn(W.ConnId)) {
      sendError(*C, W.ReqId, Code, Msg);
      --C->Running;
    }
}

CacheEntry *Daemon::cacheFind(const std::string &Key) {
  const auto It = Cache.find(Key);
  if (It == Cache.end())
    return nullptr;
  CacheLru.splice(CacheLru.end(), CacheLru, It->second.LruIt);
  return &It->second;
}

void Daemon::cacheInsert(const std::string &Key, CacheEntry E) {
  if (O.CacheEntries == 0)
    return;
  const auto It = Cache.find(Key);
  if (It != Cache.end()) {
    E.LruIt = It->second.LruIt;
    It->second = std::move(E);
    CacheLru.splice(CacheLru.end(), CacheLru, It->second.LruIt);
    return;
  }
  while (Cache.size() >= O.CacheEntries && !CacheLru.empty()) {
    Cache.erase(CacheLru.front());
    CacheLru.pop_front();
  }
  CacheLru.push_back(Key);
  E.LruIt = std::prev(CacheLru.end());
  Cache.emplace(Key, std::move(E));
}

uint64_t Daemon::totalQueued() const {
  uint64_t Q = 0;
  for (const std::unique_ptr<Conn> &C : Conns)
    if (!C->Dead)
      Q += C->Queue.size();
  return Q;
}

uint32_t Daemon::retryAfterHintMs() const {
  // A coarse backlog estimate: ~100ms of service time per queued batch
  // of MaxJobs, capped so a hint never tells a client to go away for
  // longer than the backoff ceiling clients already use.
  const uint64_t PerBatchMs = 100;
  const uint64_t Batches = totalQueued() / std::max<uint64_t>(1, O.MaxJobs);
  return static_cast<uint32_t>(
      std::min<uint64_t>(5'000, PerBatchMs * (Batches + 1)));
}

StatsReport Daemon::stats() const {
  StatsReport S = Counters;
  S.Clients = 0;
  for (const std::unique_ptr<Conn> &C : Conns)
    if (!C->Dead)
      ++S.Clients;
  S.Queued = totalQueued();
  S.Running = Pool.live();
  S.Restarts = O.RestartCount;
  S.SockFaults = Injector ? Injector->fired() : 0;
  return S;
}

bool Daemon::drained() const {
  if (!Jobs.empty() || Pool.live() != 0)
    return false;
  for (const std::unique_ptr<Conn> &C : Conns)
    if (!C->Dead && (!C->Queue.empty() || C->OutPos < C->Out.size()))
      return false;
  return true;
}

int Daemon::run() {
  if (!O.SockFaults.empty()) {
    Injector = std::make_unique<FaultSock>(O.SockFaults);
    Io = Injector.get();
  }

  // The shared store must exist before the first child races to create
  // it, and a tmp file orphaned by a previous daemon's crash must not
  // survive into fsck. reclaimTmp is safe on a first start: no worker
  // is running. On a watchdog *restart* it is skipped — posec children
  // orphaned by the crashed incarnation may still be mid-write, and
  // their tmp files are live, not garbage (commits are atomic renames,
  // so letting them finish is harmless and reclaiming under them is
  // not).
  store::ArtifactStore Store(O.StoreDir);
  std::string Err;
  if (!Store.prepare(Err)) {
    std::fprintf(stderr, "posed: %s\n", Err.c_str());
    return drive::ExitCode::Error;
  }
  if (O.RestartCount == 0)
    Store.reclaimTmp();

  const bool InheritedSocket = O.InheritedListenFd >= 0;
  if (InheritedSocket) {
    ListenFd = O.InheritedListenFd;
    setNonBlocking(ListenFd);
  } else {
    ListenFd = bindListeningSocket(O.SocketPath, Err);
    if (ListenFd < 0) {
      std::fprintf(stderr, "posed: %s\n", Err.c_str());
      return drive::ExitCode::ServeSocket;
    }
  }

  int Pipe[2] = {-1, -1};
  if (::pipe(Pipe) != 0) {
    std::fprintf(stderr, "posed: pipe: %s\n", std::strerror(errno));
    ::close(ListenFd);
    if (!InheritedSocket)
      ::unlink(O.SocketPath.c_str());
    return drive::ExitCode::Error;
  }
  PipeRd = Pipe[0];
  setNonBlocking(Pipe[0]);
  setNonBlocking(Pipe[1]);
  setCloexec(Pipe[0]);
  setCloexec(Pipe[1]);
  ShutdownPipeWr = Pipe[1];
  GotShutdownSignal = 0;
  GotReloadSignal = 0;

  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onShutdownSignal;
  ::sigaction(SIGTERM, &SA, nullptr);
  ::sigaction(SIGINT, &SA, nullptr);
  struct sigaction HupSA;
  std::memset(&HupSA, 0, sizeof(HupSA));
  HupSA.sa_handler = onReloadSignal;
  ::sigaction(SIGHUP, &HupSA, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  std::fprintf(stderr,
               "posed: serving on %s (store %s, max-jobs %llu, "
               "max-inflight %llu, request-timeout %llums%s)\n",
               O.SocketPath.c_str(), O.StoreDir.c_str(),
               static_cast<unsigned long long>(O.MaxJobs),
               static_cast<unsigned long long>(O.MaxInFlightPerClient),
               static_cast<unsigned long long>(O.RequestTimeoutMs),
               O.RestartCount != 0 ? ", restarted" : "");

  std::vector<ExternalFd> Ext;
  for (;;) {
    Ext.clear();
    Ext.push_back({PipeRd, POLLIN, 0});
    const size_t ListenSlot = Ext.size();
    if (ListenFd >= 0)
      Ext.push_back({ListenFd, POLLIN, 0});
    const size_t ConnBase = Ext.size();
    std::vector<uint64_t> ConnIds;
    for (std::unique_ptr<Conn> &C : Conns) {
      if (C->Dead)
        continue;
      short Events = POLLIN;
      if (C->OutPos < C->Out.size())
        Events |= POLLOUT;
      Ext.push_back({C->Fd, Events, 0});
      ConnIds.push_back(C->Id);
    }

    const auto Done = Pool.wait(200, &Ext);
    for (const auto &D : Done)
      completeJob(D.first, D.second);

    // One heartbeat byte per loop iteration: the watchdog's only proof
    // that the daemon is turning over, not wedged. Non-blocking, result
    // ignored — a full pipe means the watchdog is slow, not us.
    if (O.HeartbeatFd >= 0) {
      const char Beat = 1;
      const ssize_t Ignored = ::write(O.HeartbeatFd, &Beat, 1);
      (void)Ignored;
    }

    if (GotShutdownSignal && !Draining) {
      Draining = true;
      std::fprintf(stderr, "posed: shutdown signal; draining %zu job(s)\n",
                   Jobs.size());
    }
    if (GotReloadSignal) {
      GotReloadSignal = 0;
      if (!Draining) {
        std::string Why;
        if (!reloadStore(Why))
          std::fprintf(stderr, "posed: SIGHUP reload rejected: %s\n",
                       Why.c_str());
      }
    }
    if (Ext[0].Revents != 0) {
      char Drain[64];
      while (::read(PipeRd, Drain, sizeof(Drain)) > 0) {
      }
    }
    if (Draining && ListenFd >= 0) {
      ::close(ListenFd);
      ListenFd = -1;
    }
    if (ListenFd >= 0 && Ext[ListenSlot].Revents != 0)
      acceptClients();

    for (size_t I = 0; I != ConnIds.size(); ++I) {
      const short Revents = Ext[ConnBase + I].Revents;
      if (Revents == 0)
        continue;
      Conn *C = findConn(ConnIds[I]);
      if (!C)
        continue;
      if (Revents & POLLNVAL) {
        abandonConn(*C);
        continue;
      }
      // Read before honoring POLLHUP/POLLERR: a closed peer with
      // buffered requests still deserves to have them parsed (the
      // answers will fail to send, which is fine).
      if (Revents & (POLLIN | POLLHUP | POLLERR))
        readClient(*C);
      if (Conn *Still = findConn(ConnIds[I]))
        if (Revents & POLLOUT)
          flushOut(*Still);
    }

    expireQueued();
    expireStalledReads();
    schedule();
    for (std::unique_ptr<Conn> &C : Conns)
      if (!C->Dead && C->OutPos < C->Out.size())
        flushOut(*C);

    // Reap dead connections (their fds close in ~Conn).
    for (size_t I = 0; I != Conns.size();) {
      if (Conns[I]->Dead) {
        if (RRCursor > I)
          --RRCursor;
        Conns.erase(Conns.begin() + static_cast<ptrdiff_t>(I));
      } else {
        ++I;
      }
    }
    if (!Conns.empty())
      RRCursor %= Conns.size();
    else
      RRCursor = 0;

    if (Draining && drained())
      break;
  }

  // Graceful exit: every admitted request was answered and flushed.
  for (std::unique_ptr<Conn> &C : Conns)
    C.reset();
  Conns.clear();
  if (ListenFd >= 0)
    ::close(ListenFd);
  ::close(PipeRd);
  ::close(ShutdownPipeWr);
  ShutdownPipeWr = -1;
  // Under a watchdog the parent owns the socket file (and its own copy
  // of the listening fd); unlinking here would yank it from under a
  // restart.
  if (!InheritedSocket)
    ::unlink(O.SocketPath.c_str());
  // A child killed mid-write (client disconnect, deadline) may have left
  // a tmp file; with the fleet drained it is dead weight — reclaim so
  // the store is fsck-clean for whoever inherits it.
  Store.reclaimTmp();
  std::fprintf(stderr, "posed: drained, exiting\n");
  return drive::ExitCode::Ok;
}

} // namespace

int pose::serve::bindListeningSocket(const std::string &SocketPath,
                                     std::string &Err) {
  struct sockaddr_un Addr;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path '" + SocketPath + "' exceeds " +
          std::to_string(sizeof(Addr.sun_path) - 1) + " bytes";
    return -1;
  }
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size());

  const int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  setCloexec(Fd);
  if (::bind(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
             sizeof(Addr)) != 0) {
    if (errno != EADDRINUSE) {
      Err = "bind '" + SocketPath + "': " + std::strerror(errno);
      ::close(Fd);
      return -1;
    }
    // A socket file exists. Probe it: a live daemon accepts the
    // connection (refuse to double-serve); a stale file from a dead
    // daemon refuses it and is safe to replace.
    const int Probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    const bool Live =
        Probe >= 0 &&
        ::connect(Probe, reinterpret_cast<struct sockaddr *>(&Addr),
                  sizeof(Addr)) == 0;
    if (Probe >= 0)
      ::close(Probe);
    if (Live) {
      Err = "a daemon is already serving '" + SocketPath + "'";
      ::close(Fd);
      return -1;
    }
    ::unlink(SocketPath.c_str());
    if (::bind(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
               sizeof(Addr)) != 0) {
      Err = "bind '" + SocketPath + "': " + std::strerror(errno);
      ::close(Fd);
      return -1;
    }
  }
  if (::listen(Fd, 64) != 0) {
    Err = "listen '" + SocketPath + "': " + std::strerror(errno);
    ::close(Fd);
    ::unlink(SocketPath.c_str());
    return -1;
  }
  setNonBlocking(Fd);
  return Fd;
}

int pose::serve::runDaemon(const ServeOptions &O) {
  Daemon D(O);
  return D.run();
}
