//===- Protocol.cpp - posed wire protocol ---------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/serve/Protocol.h"

#include "src/store/ByteIo.h"
#include "src/support/Crc32.h"

#include <cstring>

using namespace pose;
using namespace pose::serve;

const char *pose::serve::servedFromName(ServedFrom S) {
  switch (S) {
  case ServedFrom::Computed:
    return "computed";
  case ServedFrom::Coalesced:
    return "coalesced";
  case ServedFrom::Cached:
    return "cached";
  }
  return "?";
}

const char *pose::serve::errorCodeName(ErrorCode C) {
  switch (C) {
  case ErrorCode::BadFrame:
    return "bad-frame";
  case ErrorCode::BadRequest:
    return "bad-request";
  case ErrorCode::DeniedArg:
    return "denied-arg";
  case ErrorCode::Overloaded:
    return "overloaded";
  case ErrorCode::ShuttingDown:
    return "shutting-down";
  case ErrorCode::WorkerFailed:
    return "worker-failed";
  case ErrorCode::Deadline:
    return "deadline";
  case ErrorCode::ReloadRejected:
    return "reload-rejected";
  }
  return "?";
}

std::vector<uint8_t>
pose::serve::encodeFrame(MsgKind Kind, const std::vector<uint8_t> &Payload) {
  ByteWriter W;
  for (char C : kMagic)
    W.u8(static_cast<uint8_t>(C));
  W.u32(static_cast<uint32_t>(Kind));
  W.u32(static_cast<uint32_t>(Payload.size()));
  W.u32(crc32(Payload.data(), Payload.size()));
  W.u32(crc32(W.bytes().data(), W.bytes().size())); // Header CRC.
  std::vector<uint8_t> Out = W.take();
  Out.insert(Out.end(), Payload.begin(), Payload.end());
  return Out;
}

std::vector<uint8_t> pose::serve::encodePing() {
  return encodeFrame(MsgKind::Ping, {});
}
std::vector<uint8_t> pose::serve::encodePong() {
  return encodeFrame(MsgKind::Pong, {});
}
std::vector<uint8_t> pose::serve::encodeShutdown() {
  return encodeFrame(MsgKind::Shutdown, {});
}
std::vector<uint8_t> pose::serve::encodeStatsRequest() {
  return encodeFrame(MsgKind::Stats, {});
}
std::vector<uint8_t> pose::serve::encodeReload() {
  return encodeFrame(MsgKind::Reload, {});
}

std::vector<uint8_t> pose::serve::encodeRunRequest(const RunRequest &R) {
  ByteWriter W;
  W.u64(R.Id);
  W.u32(static_cast<uint32_t>(R.Args.size()));
  for (const std::string &A : R.Args)
    W.str(A);
  return encodeFrame(MsgKind::Run, W.bytes());
}

bool pose::serve::decodeRunRequest(const std::vector<uint8_t> &Payload,
                                   RunRequest &R, std::string &Why) {
  ByteReader B(Payload);
  R.Id = B.u64();
  const uint32_t N = B.u32();
  if (N == 0 || N > kMaxRunArgs) {
    Why = "argument count " + std::to_string(N) + " outside 1.." +
          std::to_string(kMaxRunArgs);
    return false;
  }
  R.Args.clear();
  R.Args.reserve(N);
  for (uint32_t I = 0; I != N; ++I) {
    std::string A = B.str();
    if (A.size() > kMaxArgLen) {
      Why = "argument longer than " + std::to_string(kMaxArgLen) + " bytes";
      return false;
    }
    if (A.find('\0') != std::string::npos) {
      // An embedded NUL would silently truncate at execv.
      Why = "argument contains a NUL byte";
      return false;
    }
    R.Args.push_back(std::move(A));
  }
  if (!B.ok() || !B.atEnd()) {
    Why = "run request payload does not decode";
    return false;
  }
  return true;
}

std::vector<uint8_t> pose::serve::encodeRunResponse(const RunResponse &R) {
  ByteWriter W;
  W.u64(R.Id);
  W.u32(static_cast<uint32_t>(R.Served));
  W.i32(R.ExitCode);
  W.str(R.Stdout);
  W.str(R.Stderr);
  return encodeFrame(MsgKind::RunResult, W.bytes());
}

bool pose::serve::decodeRunResponse(const std::vector<uint8_t> &Payload,
                                    RunResponse &R, std::string &Why) {
  ByteReader B(Payload);
  R.Id = B.u64();
  const uint32_t Served = B.u32();
  if (Served > static_cast<uint32_t>(ServedFrom::Cached)) {
    Why = "unknown served-from value";
    return false;
  }
  R.Served = static_cast<ServedFrom>(Served);
  R.ExitCode = B.i32();
  R.Stdout = B.str();
  R.Stderr = B.str();
  if (!B.ok() || !B.atEnd()) {
    Why = "run response payload does not decode";
    return false;
  }
  return true;
}

std::vector<uint8_t> pose::serve::encodeErrorResponse(const ErrorResponse &E) {
  ByteWriter W;
  W.u64(E.Id);
  W.u32(static_cast<uint32_t>(E.Code));
  W.str(E.Message);
  W.u32(E.RetryAfterMs);
  return encodeFrame(MsgKind::Error, W.bytes());
}

bool pose::serve::decodeErrorResponse(const std::vector<uint8_t> &Payload,
                                      ErrorResponse &E, std::string &Why) {
  ByteReader B(Payload);
  E.Id = B.u64();
  const uint32_t Code = B.u32();
  if (Code < static_cast<uint32_t>(ErrorCode::BadFrame) ||
      Code > static_cast<uint32_t>(ErrorCode::ReloadRejected)) {
    Why = "unknown error code";
    return false;
  }
  E.Code = static_cast<ErrorCode>(Code);
  E.Message = B.str();
  E.RetryAfterMs = B.u32();
  if (!B.ok() || !B.atEnd()) {
    Why = "error response payload does not decode";
    return false;
  }
  return true;
}

std::vector<uint8_t> pose::serve::encodeStatsReport(const StatsReport &S) {
  ByteWriter W;
  W.u32(kStatsVersion);
  W.u64(S.Requests);
  W.u64(S.Computed);
  W.u64(S.Coalesced);
  W.u64(S.CacheHits);
  W.u64(S.Errors);
  W.u64(S.Clients);
  W.u64(S.Running);
  W.u64(S.Queued);
  W.u64(S.Shed);
  W.u64(S.ReadTimeouts);
  W.u64(S.Restarts);
  W.u64(S.Reloads);
  W.u64(S.ReloadsRejected);
  W.u64(S.SockFaults);
  return encodeFrame(MsgKind::StatsReport, W.bytes());
}

bool pose::serve::decodeStatsReport(const std::vector<uint8_t> &Payload,
                                    StatsReport &S, std::string &Why) {
  ByteReader B(Payload);
  const uint32_t Version = B.u32();
  if (!B.ok() || Version != kStatsVersion) {
    // An explicit refusal beats misreading shifted counters: a version-1
    // payload (or a future version-3 one) decodes to garbage, not to
    // plausibly-wrong numbers.
    Why = "unsupported stats payload version " + std::to_string(Version) +
          " (this client speaks version " + std::to_string(kStatsVersion) +
          ")";
    return false;
  }
  S.Requests = B.u64();
  S.Computed = B.u64();
  S.Coalesced = B.u64();
  S.CacheHits = B.u64();
  S.Errors = B.u64();
  S.Clients = B.u64();
  S.Running = B.u64();
  S.Queued = B.u64();
  S.Shed = B.u64();
  S.ReadTimeouts = B.u64();
  S.Restarts = B.u64();
  S.Reloads = B.u64();
  S.ReloadsRejected = B.u64();
  S.SockFaults = B.u64();
  if (!B.ok() || !B.atEnd()) {
    Why = "stats report payload does not decode";
    return false;
  }
  return true;
}

void FrameReader::feed(const uint8_t *Data, size_t N) {
  Buf.insert(Buf.end(), Data, Data + N);
}

FrameReader::Status FrameReader::next(MsgKind &Kind,
                                      std::vector<uint8_t> &Payload,
                                      std::string &Why) {
  if (Broken) {
    Why = "stream already malformed";
    return Status::Malformed;
  }
  // Reclaim the consumed prefix once it dominates the buffer, so a
  // long-lived connection does not grow its buffer without bound.
  if (Pos > 4096 && Pos * 2 > Buf.size()) {
    Buf.erase(Buf.begin(), Buf.begin() + static_cast<ptrdiff_t>(Pos));
    Pos = 0;
  }
  const size_t Avail = Buf.size() - Pos;
  if (Avail < kHeaderSize)
    return Status::NeedMore;

  const uint8_t *H = Buf.data() + Pos;
  if (std::memcmp(H, kMagic, sizeof(kMagic)) != 0) {
    Broken = true;
    Why = "bad frame magic";
    return Status::Malformed;
  }
  ByteReader B(H + sizeof(kMagic), kHeaderSize - sizeof(kMagic));
  const uint32_t RawKind = B.u32();
  const uint32_t Size = B.u32();
  const uint32_t PayloadCrc = B.u32();
  const uint32_t HeaderCrc = B.u32();
  if (crc32(H, kHeaderSize - 4) != HeaderCrc) {
    Broken = true;
    Why = "frame header CRC mismatch";
    return Status::Malformed;
  }
  if (Size > MaxPayload) {
    Broken = true;
    Why = "frame payload of " + std::to_string(Size) +
          " bytes exceeds the " + std::to_string(MaxPayload) + " byte cap";
    return Status::Malformed;
  }
  if (Avail < kHeaderSize + Size)
    return Status::NeedMore;
  Payload.assign(H + kHeaderSize, H + kHeaderSize + Size);
  if (crc32(Payload.data(), Payload.size()) != PayloadCrc) {
    Broken = true;
    Why = "frame payload CRC mismatch";
    return Status::Malformed;
  }
  Kind = static_cast<MsgKind>(RawKind);
  Pos += kHeaderSize + Size;
  return Status::Frame;
}
