//===- Daemon.h - posed: phase-order search as a service -------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resident posed daemon (ROADMAP item 1): accepts enumerate /
/// analyze / equiv / search requests over a Unix-domain socket (protocol
/// in Protocol.h, contract in docs/SERVICE.md) and schedules them onto a
/// SubprocessPool of sandboxed posec children sharing one ArtifactStore,
/// so identical work — across clients, across time — costs one
/// computation.
///
/// One thread, one blocking point: the pool's poll() loop multiplexes
/// child pipes *and* the daemon's socket fds (SubprocessPool::wait with
/// ExternalFd), so there is no second event loop and nothing to
/// synchronize. Admission control is per request (a ResourceGovernor
/// deadline, an RLIMIT_AS cap on the child, a per-client in-flight
/// budget); scheduling is round-robin across clients so one chatty
/// client cannot starve the rest; identical requests coalesce onto one
/// in-flight child and completed responses are kept in a bounded
/// in-memory cache in front of the store.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_SERVE_DAEMON_H
#define POSE_SERVE_DAEMON_H

#include "src/support/FaultSock.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pose {
namespace serve {

/// Everything posed needs to run. Paths are used as given (relative
/// paths resolve in the daemon's working directory, and so do relative
/// file arguments inside requests).
struct ServeOptions {
  std::string SocketPath; ///< Unix-domain socket to bind.
  std::string StoreDir;   ///< Shared ArtifactStore injected into every
                          ///< served posec child (--store=DIR).
  std::string PosecPath;  ///< posec binary to spawn.
  uint64_t MaxJobs = 4;   ///< Concurrent posec children.
  uint64_t MaxInFlightPerClient = 8; ///< Queued+running cap per client;
                                     ///< beyond it requests get
                                     ///< ErrorCode::Overloaded.
  uint64_t RequestTimeoutMs = 300'000; ///< Admission deadline: bounds the
                                       ///< queue wait and is the child's
                                       ///< kill timer. 0 = none.
  uint64_t WorkerRlimitMb = 0; ///< RLIMIT_AS for children; 0 = none.
  uint64_t CacheEntries = 256; ///< Completed-response cache capacity.
  uint64_t ReadTimeoutMs = 0; ///< Drop a connection whose peer has made
                              ///< no I/O progress for this long while a
                              ///< frame is torn mid-parse, a response is
                              ///< stuck unflushed, or nothing is in
                              ///< flight (slow-loris / half-open peers).
                              ///< 0 = off (the library default; posed
                              ///< turns it on).
  uint64_t MaxQueueDepth = 0; ///< Global cap on queued Run requests
                              ///< across all clients; beyond it requests
                              ///< are shed with Overloaded plus a
                              ///< retry-after hint. 0 = unlimited.
  std::string ReloadStoreDir; ///< Staging store a Reload frame / SIGHUP
                              ///< swaps in after it passes fsck. Empty =
                              ///< reloads are refused.
  std::vector<SockFaultSpec> SockFaults; ///< Execution-only socket fault
                                         ///< injection (--fault-sock).
  int InheritedListenFd = -1; ///< Watchdog mode: an already-bound,
                              ///< already-listening socket fd to serve
                              ///< on instead of binding SocketPath. The
                              ///< watchdog owns the socket file; the
                              ///< daemon never unlinks it.
  int HeartbeatFd = -1;  ///< Watchdog mode: write end of the heartbeat
                         ///< pipe; the daemon writes one byte per poll
                         ///< iteration so a silent hang is detectable.
  uint64_t RestartCount = 0; ///< Watchdog mode: how many restarts came
                             ///< before this incarnation (stats).
  bool Verbose = false;        ///< Per-request log lines on stderr.
};

/// Runs the daemon until a SIGTERM/SIGINT (or a Shutdown request) drains
/// it. Returns a drive::ExitCode: Ok after a graceful drain, ServeSocket
/// when the socket cannot be set up, Error on an internal failure.
int runDaemon(const ServeOptions &O);

/// Binds and listens on a Unix-domain socket at \p SocketPath, probing a
/// pre-existing socket file for a live owner (refuse) vs. a stale crash
/// leftover (unlink and rebind). Returns the non-blocking listening fd,
/// or -1 with \p Err set. Shared by the daemon and the watchdog, which
/// holds the fd across daemon restarts.
int bindListeningSocket(const std::string &SocketPath, std::string &Err);

} // namespace serve
} // namespace pose

#endif // POSE_SERVE_DAEMON_H
