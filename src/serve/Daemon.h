//===- Daemon.h - posed: phase-order search as a service -------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resident posed daemon (ROADMAP item 1): accepts enumerate /
/// analyze / equiv / search requests over a Unix-domain socket (protocol
/// in Protocol.h, contract in docs/SERVICE.md) and schedules them onto a
/// SubprocessPool of sandboxed posec children sharing one ArtifactStore,
/// so identical work — across clients, across time — costs one
/// computation.
///
/// One thread, one blocking point: the pool's poll() loop multiplexes
/// child pipes *and* the daemon's socket fds (SubprocessPool::wait with
/// ExternalFd), so there is no second event loop and nothing to
/// synchronize. Admission control is per request (a ResourceGovernor
/// deadline, an RLIMIT_AS cap on the child, a per-client in-flight
/// budget); scheduling is round-robin across clients so one chatty
/// client cannot starve the rest; identical requests coalesce onto one
/// in-flight child and completed responses are kept in a bounded
/// in-memory cache in front of the store.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_SERVE_DAEMON_H
#define POSE_SERVE_DAEMON_H

#include <cstdint>
#include <string>

namespace pose {
namespace serve {

/// Everything posed needs to run. Paths are used as given (relative
/// paths resolve in the daemon's working directory, and so do relative
/// file arguments inside requests).
struct ServeOptions {
  std::string SocketPath; ///< Unix-domain socket to bind.
  std::string StoreDir;   ///< Shared ArtifactStore injected into every
                          ///< served posec child (--store=DIR).
  std::string PosecPath;  ///< posec binary to spawn.
  uint64_t MaxJobs = 4;   ///< Concurrent posec children.
  uint64_t MaxInFlightPerClient = 8; ///< Queued+running cap per client;
                                     ///< beyond it requests get
                                     ///< ErrorCode::Overloaded.
  uint64_t RequestTimeoutMs = 300'000; ///< Admission deadline: bounds the
                                       ///< queue wait and is the child's
                                       ///< kill timer. 0 = none.
  uint64_t WorkerRlimitMb = 0; ///< RLIMIT_AS for children; 0 = none.
  uint64_t CacheEntries = 256; ///< Completed-response cache capacity.
  bool Verbose = false;        ///< Per-request log lines on stderr.
};

/// Runs the daemon until a SIGTERM/SIGINT (or a Shutdown request) drains
/// it. Returns a drive::ExitCode: Ok after a graceful drain, ServeSocket
/// when the socket cannot be set up, Error on an internal failure.
int runDaemon(const ServeOptions &O);

} // namespace serve
} // namespace pose

#endif // POSE_SERVE_DAEMON_H
