//===- Interpreter.cpp - RTL interpreter ------------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/sim/Interpreter.h"

#include "src/frontend/Compile.h"

#include <algorithm>

using namespace pose;

namespace {

/// First word address handed to globals; address 0 stays unmapped so that
/// stray zero-valued "pointers" trap.
constexpr int32_t GlobalStart = 16;

/// Maximum call depth (frames, not words; each frame also checks space).
constexpr int MaxDepth = 256;

int32_t evalBinary(Op O, int32_t A, int32_t B, bool &DivByZero) {
  const uint32_t UA = static_cast<uint32_t>(A);
  const uint32_t UB = static_cast<uint32_t>(B);
  switch (O) {
  case Op::Add:
    return static_cast<int32_t>(UA + UB);
  case Op::Sub:
    return static_cast<int32_t>(UA - UB);
  case Op::Mul:
    return static_cast<int32_t>(UA * UB);
  case Op::Div:
    if (B == 0 || (A == INT32_MIN && B == -1)) {
      DivByZero = true;
      return 0;
    }
    return A / B;
  case Op::Rem:
    if (B == 0 || (A == INT32_MIN && B == -1)) {
      DivByZero = true;
      return 0;
    }
    return A % B;
  case Op::And:
    return A & B;
  case Op::Or:
    return A | B;
  case Op::Xor:
    return A ^ B;
  case Op::Shl:
    return static_cast<int32_t>(UA << (UB & 31));
  case Op::Shr:
    return A >> (UB & 31);
  case Op::Ushr:
    return static_cast<int32_t>(UA >> (UB & 31));
  default:
    assert(false && "not a binary opcode");
    return 0;
  }
}

bool evalCond(Cond C, int32_t A, int32_t B) {
  const uint32_t UA = static_cast<uint32_t>(A);
  const uint32_t UB = static_cast<uint32_t>(B);
  switch (C) {
  case Cond::Eq:
    return A == B;
  case Cond::Ne:
    return A != B;
  case Cond::Lt:
    return A < B;
  case Cond::Le:
    return A <= B;
  case Cond::Gt:
    return A > B;
  case Cond::Ge:
    return A >= B;
  case Cond::ULt:
    return UA < UB;
  case Cond::ULe:
    return UA <= UB;
  case Cond::UGt:
    return UA > UB;
  case Cond::UGe:
    return UA >= UB;
  case Cond::None:
    break;
  }
  assert(false && "branch without condition");
  return false;
}

} // namespace

Interpreter::Interpreter(const Module &M, size_t MemWords)
    : M(M), MemWords(MemWords) {
  // Lay out globals once; contents are refreshed per run.
  GlobalBase.assign(M.Globals.size(), 0);
  int32_t Next = GlobalStart;
  for (size_t Id = 0; Id != M.Globals.size(); ++Id) {
    const Global &G = M.Globals[Id];
    if (G.Kind != GlobalKind::Var)
      continue;
    GlobalBase[Id] = Next;
    Next += G.SizeWords;
  }
  assert(static_cast<size_t>(Next) < MemWords / 2 &&
         "globals overflow the arena");
}

void Interpreter::overrideFunction(const std::string &Name,
                                   const Function *Body) {
  if (Body)
    Overrides[Name] = Body;
  else
    Overrides.erase(Name);
}

const Function *Interpreter::bodyFor(int32_t GlobalId) const {
  if (GlobalId < 0 || static_cast<size_t>(GlobalId) >= M.Globals.size())
    return nullptr;
  const Global &G = M.Globals[GlobalId];
  auto It = Overrides.find(G.Name);
  if (It != Overrides.end())
    return It->second;
  return M.functionFor(GlobalId);
}

RunResult Interpreter::run(const std::string &Name,
                           const std::vector<int32_t> &Args,
                           uint64_t StepLimit) {
  RunResult R;
  int Id = M.findGlobal(Name);
  const Function *F = Id >= 0 ? bodyFor(Id) : nullptr;
  if (!F) {
    R.Error = "no such function: " + Name;
    return R;
  }

  // Fresh memory: zeroed arena with global initializers applied.
  Mem.assign(MemWords, 0);
  for (size_t GId = 0; GId != M.Globals.size(); ++GId) {
    const Global &G = M.Globals[GId];
    if (G.Kind != GlobalKind::Var)
      continue;
    for (size_t J = 0; J != G.Init.size(); ++J)
      Mem[static_cast<size_t>(GlobalBase[GId]) + J] = G.Init[J];
  }

  ExecState St;
  St.StepLimit = StepLimit;
  if (!ProfileName.empty()) {
    int PId = M.findGlobal(ProfileName);
    St.ProfileTarget = PId >= 0 ? bodyFor(PId) : nullptr;
    if (St.ProfileTarget)
      St.BlockCounts.assign(St.ProfileTarget->Blocks.size(), 0);
  }
  int32_t Result = 0;
  bool Ok = callFunction(*F, Args, Result, St,
                         static_cast<int32_t>(MemWords));
  R.Ok = Ok;
  R.Error = St.Error;
  R.ReturnValue = Result;
  R.DynamicInsts = St.Steps;
  R.Output = std::move(St.Output);
  R.BlockCounts = std::move(St.BlockCounts);
  R.LoadUseStalls = St.LoadUseStalls;
  return R;
}

bool Interpreter::callFunction(const Function &F,
                               const std::vector<int32_t> &Args,
                               int32_t &Result, ExecState &St,
                               int32_t FrameTop) {
  if (++St.Depth > MaxDepth) {
    St.Error = "call depth limit exceeded in " + F.Name;
    return false;
  }

  // Frame layout: slots packed downward from FrameTop.
  int32_t FrameWords = 0;
  std::vector<int32_t> SlotAddr(F.Slots.size());
  for (size_t S = 0; S != F.Slots.size(); ++S) {
    FrameWords += F.Slots[S].SizeWords;
    SlotAddr[S] = FrameTop - FrameWords;
  }
  const int32_t FrameBase = FrameTop - FrameWords;
  if (FrameBase <= GlobalStart + 1024) { // Leave room under the globals.
    St.Error = "stack overflow in " + F.Name;
    return false;
  }
  for (int32_t A = FrameBase; A != FrameTop; ++A)
    Mem[static_cast<size_t>(A)] = 0;
  assert(static_cast<int32_t>(Args.size()) == F.NumParams &&
         "caller/callee arity mismatch");
  for (size_t P = 0; P != Args.size(); ++P)
    Mem[static_cast<size_t>(SlotAddr[P])] = Args[P];

  std::vector<int32_t> Regs(std::max<size_t>(F.pseudoLimit(), 64), 0);
  int32_t IcA = 0, IcB = 0;

  size_t Block = 0, Index = 0;

  auto Value = [&](const Operand &O) -> int32_t {
    switch (O.Kind) {
    case OperandKind::Reg:
      return Regs[O.getReg()];
    case OperandKind::Imm:
      return O.Value;
    default:
      assert(false && "operand has no value");
      return 0;
    }
  };
  auto Address = [&](const Operand &O) -> int32_t {
    switch (O.Kind) {
    case OperandKind::Reg:
      return Regs[O.getReg()];
    case OperandKind::Slot:
      return SlotAddr[static_cast<size_t>(O.Value)];
    case OperandKind::Global:
      return GlobalBase[static_cast<size_t>(O.Value)];
    default:
      assert(false && "operand is not an address");
      return 0;
    }
  };
  auto CheckAddr = [&](int64_t A) {
    return A >= GlobalStart && A < static_cast<int64_t>(MemWords);
  };

  while (true) {
    if (Block >= F.Blocks.size()) {
      St.Error = "fell off the end of " + F.Name;
      return false;
    }
    const BasicBlock &B = F.Blocks[Block];
    if (Index >= B.Insts.size()) {
      ++Block;
      Index = 0;
      continue;
    }
    const Rtl &I = B.Insts[Index];
    if (Index == 0 && &F == St.ProfileTarget)
      ++St.BlockCounts[Block];
    // Load-use stall accounting for the final scheduler's pipeline model.
    if (St.LastWasLoad) {
      bool Uses = false;
      I.forEachUsedReg([&](RegNum R2) { Uses |= (R2 == St.LastLoadDst); });
      St.LoadUseStalls += Uses;
    }
    St.LastWasLoad = (I.Opcode == Op::Load);
    if (St.LastWasLoad)
      St.LastLoadDst = I.Dst.getReg();
    if (++St.Steps > St.StepLimit) {
      St.Error = "step limit exceeded in " + F.Name;
      return false;
    }

    switch (I.Opcode) {
    case Op::Mov:
      Regs[I.Dst.getReg()] = Value(I.Src[0]);
      break;
    case Op::Lea:
      Regs[I.Dst.getReg()] = Address(I.Src[0]);
      break;
    case Op::Neg:
      Regs[I.Dst.getReg()] =
          static_cast<int32_t>(0u - static_cast<uint32_t>(Value(I.Src[0])));
      break;
    case Op::Not:
      Regs[I.Dst.getReg()] = ~Value(I.Src[0]);
      break;
    case Op::Load: {
      int64_t A = static_cast<int64_t>(Address(I.Src[0])) + I.Src[1].Value;
      if (!CheckAddr(A)) {
        St.Error = "load out of bounds in " + F.Name;
        return false;
      }
      Regs[I.Dst.getReg()] = Mem[static_cast<size_t>(A)];
      break;
    }
    case Op::Store: {
      int64_t A = static_cast<int64_t>(Address(I.Src[0])) + I.Src[1].Value;
      if (!CheckAddr(A)) {
        St.Error = "store out of bounds in " + F.Name;
        return false;
      }
      Mem[static_cast<size_t>(A)] = Value(I.Src[2]);
      break;
    }
    case Op::Cmp:
      IcA = Value(I.Src[0]);
      IcB = Value(I.Src[1]);
      break;
    case Op::Branch:
      if (evalCond(I.CC, IcA, IcB)) {
        int T = F.findBlock(I.Src[0].Value);
        assert(T >= 0 && "branch target vanished");
        Block = static_cast<size_t>(T);
        Index = 0;
        continue;
      }
      break;
    case Op::Jump: {
      int T = F.findBlock(I.Src[0].Value);
      assert(T >= 0 && "jump target vanished");
      Block = static_cast<size_t>(T);
      Index = 0;
      continue;
    }
    case Op::Call: {
      int32_t CalleeId = I.Src[0].Value;
      const Global &G = M.Globals[static_cast<size_t>(CalleeId)];
      std::vector<int32_t> CallArgs;
      CallArgs.reserve(I.Args.size());
      for (const Operand &A : I.Args)
        CallArgs.push_back(Value(A));
      if (G.Kind == GlobalKind::External) {
        if (G.Name == BuiltinOut) {
          St.Output.push_back(CallArgs.empty() ? 0 : CallArgs[0]);
        } else {
          St.Error = "call to unknown external " + G.Name;
          return false;
        }
      } else {
        const Function *Callee = bodyFor(CalleeId);
        if (!Callee) {
          St.Error = "call to undefined function " + G.Name;
          return false;
        }
        int32_t CallResult = 0;
        if (!callFunction(*Callee, CallArgs, CallResult, St, FrameBase))
          return false;
        if (I.Dst.isReg())
          Regs[I.Dst.getReg()] = CallResult;
      }
      break;
    }
    case Op::Ret:
      Result = I.Src[0].isNone() ? 0 : Value(I.Src[0]);
      --St.Depth;
      return true;
    case Op::Prologue:
    case Op::Epilogue:
      break;
    default:
      if (I.isBinary()) {
        bool DivByZero = false;
        int32_t V =
            evalBinary(I.Opcode, Value(I.Src[0]), Value(I.Src[1]), DivByZero);
        if (DivByZero) {
          St.Error = "division by zero in " + F.Name;
          return false;
        }
        Regs[I.Dst.getReg()] = V;
        break;
      }
      St.Error = "unexecutable opcode in " + F.Name;
      return false;
    }
    ++Index;
  }
}
