//===- Interpreter.h - RTL interpreter -------------------------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes RTL modules directly. This is the reproduction's stand-in for
/// the paper's StrongARM SA-100 testbed: it measures dynamic instruction
/// counts, the performance proxy the paper itself proposes for evaluating
/// function instances (Section 7), and it provides the oracle for the
/// differential tests that check every optimization phase preserves
/// semantics under every ordering.
///
/// The machine is word-addressed: every value and address is a 32-bit
/// word. Globals live at low addresses, stack frames grow downward from
/// the top of the arena. All registers are callee-saved; call arguments
/// and results are explicit operands of the Call RTL.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_SIM_INTERPRETER_H
#define POSE_SIM_INTERPRETER_H

#include "src/ir/Function.h"

#include <map>
#include <string>
#include <vector>

namespace pose {

/// Result of one simulated execution.
struct RunResult {
  bool Ok = false;
  std::string Error;            ///< Trap description when !Ok.
  int32_t ReturnValue = 0;
  uint64_t DynamicInsts = 0;    ///< Total RTLs executed.
  /// Load-use stalls: times an instruction consumed the result of the
  /// immediately preceding load (the one-cycle load delay the final
  /// instruction scheduler tries to hide).
  uint64_t LoadUseStalls = 0;
  std::vector<int32_t> Output;  ///< Words written via the out() builtin.
  /// When profiling was requested (setProfileFunction): number of times
  /// each basic block of the profiled function executed, indexed by block
  /// position. Summed over all invocations of that function in the run.
  std::vector<uint64_t> BlockCounts;

  /// Stable classification of a trap, independent of which function it
  /// happened in: the Error text with the trailing " in <function>"
  /// context stripped ("load out of bounds", "division by zero", ...).
  /// Empty for successful runs.
  std::string trapKind() const {
    if (Ok)
      return std::string();
    const size_t Pos = Error.rfind(" in ");
    return Pos == std::string::npos ? Error : Error.substr(0, Pos);
  }

  /// Returns true if two runs produced identical observable behaviour.
  /// Trapping runs must also trap for the same reason: two traps with
  /// different causes (a division by zero vs. an out-of-bounds store)
  /// are different behaviors even when their partial output agrees.
  bool sameBehavior(const RunResult &O) const {
    return Ok == O.Ok && ReturnValue == O.ReturnValue &&
           Output == O.Output && (Ok || trapKind() == O.trapKind());
  }
};

/// Interprets functions of one module. Function bodies can be overridden
/// per run, which is how individual phase-ordering instances of a single
/// function are evaluated inside an otherwise fixed program.
class Interpreter {
public:
  /// \p MemWords is the size of the flat memory arena.
  explicit Interpreter(const Module &M, size_t MemWords = 1u << 22);

  /// Substitutes \p Body (not owned; must outlive the interpreter or be
  /// reset) for the module's definition of \p Name in subsequent runs.
  /// Passing nullptr removes the override.
  void overrideFunction(const std::string &Name, const Function *Body);

  /// Requests per-block execution counts for \p Name in subsequent runs
  /// (empty string disables). This powers the paper's Section 7 idea of
  /// inferring dynamic instruction counts across function instances that
  /// share a control flow.
  void setProfileFunction(const std::string &Name) { ProfileName = Name; }

  /// Runs function \p Name with \p Args. Re-initializes global memory
  /// first, so repeated runs are independent. Traps (out-of-bounds access,
  /// division by zero, step-limit exhaustion, stack overflow) produce
  /// Ok=false with an explanatory Error.
  RunResult run(const std::string &Name, const std::vector<int32_t> &Args,
                uint64_t StepLimit = 100'000'000);

private:
  const Module &M;
  size_t MemWords;
  std::vector<int32_t> Mem;
  std::vector<int32_t> GlobalBase; ///< Word address per global id.
  std::map<std::string, const Function *> Overrides;
  std::string ProfileName;

  struct ExecState {
    uint64_t Steps = 0;
    uint64_t StepLimit = 0;
    std::vector<int32_t> Output;
    std::string Error;
    int Depth = 0;
    const Function *ProfileTarget = nullptr;
    std::vector<uint64_t> BlockCounts;
    uint64_t LoadUseStalls = 0;
    bool LastWasLoad = false;
    RegNum LastLoadDst = 0;
  };

  const Function *bodyFor(int32_t GlobalId) const;
  bool callFunction(const Function &F, const std::vector<int32_t> &Args,
                    int32_t &Result, ExecState &St, int32_t FrameTop);
};

} // namespace pose

#endif // POSE_SIM_INTERPRETER_H
