//===- ExitCodes.h - Documented posec process exit codes -------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process exit-code contract of `posec --worker` and
/// `posec --supervise`. A worker's exit status is the supervisor's only
/// in-band channel besides the stdout result frame, so every code below
/// has exactly one meaning and scripts (CI, the supervisor itself) may
/// match on them. Legacy invocations (plain --enumerate and friends) keep
/// their historical 0/1/2 behavior — a deadline-stopped run that saved a
/// checkpoint still exits 0 there, because existing callers treat that as
/// success.
///
/// The `posed` daemon (tools/posed.cpp, docs/SERVICE.md) shares this
/// table: it exits Ok after a graceful SIGTERM/SIGINT drain, Usage for a
/// bad command line, Error for an internal failure, and ServeSocket when
/// the Unix-domain listening socket cannot be created, bound, or is
/// already owned by a live daemon. Per-request failures never change the
/// daemon's exit code — they travel back to the requesting client inside
/// the response frame (the served posec child's exit code, or a protocol
/// error code).
///
//===----------------------------------------------------------------------===//

#ifndef POSE_DRIVE_EXITCODES_H
#define POSE_DRIVE_EXITCODES_H

#include "src/support/StopToken.h"

namespace pose {
namespace drive {

/// Exit codes of posec in --worker and --supervise modes.
enum ExitCode : int {
  Ok = 0,              ///< Finished; the result is usable (possibly a
                       ///< budget-limited but final DAG).
  Error = 1,           ///< Internal or I/O error (store failure, bad input
                       ///< file, InternalError stop).
  Usage = 2,           ///< Bad command line; nothing ran.
  VerifyFailure = 3,   ///< Enumeration finished but a phase broke the IR;
                       ///< the surviving space is sound, not exhaustive.
  Deadline = 4,        ///< Stopped by the wall-clock deadline; a
                       ///< checkpoint was saved (resume to continue).
  MemoryBudget = 5,    ///< Stopped by the memory budget; checkpoint saved.
  Cancelled = 6,       ///< Stopped by cooperative cancellation;
                       ///< checkpoint saved.
  WorkerCrash = 7,     ///< Supervisor only: a job exhausted its retries
                       ///< crashing and was quarantined/degraded.
  QuarantinedSkip = 8, ///< Supervisor only: at least one job was skipped
                       ///< because of a persisted quarantine record.
  StoreCorrupt = 9,    ///< --fsck found (or --merge-store hit) corrupt,
                       ///< truncated, or orphaned store files that were
                       ///< not repaired away.
  MergeConflict = 10,  ///< --merge-store only: two stores hold
                       ///< byte-different artifacts for the same key;
                       ///< nothing was merged past the conflict.
  EquivDivergence = 11, ///< --equiv-check only: two instances of the same
                        ///< canonical function diverged in observable
                        ///< behavior on a test vector — a phase produced
                        ///< wrong code somewhere on the path between them.
  ServeSocket = 12,     ///< posed only: the listening socket could not be
                        ///< set up (path too long, bind failure, or a
                        ///< live daemon already owns it).
  WatchdogGaveUp = 13,  ///< posed --watchdog only: the daemon kept
                        ///< crashing or hanging past the restart budget
                        ///< (--max-restarts); the watchdog stopped
                        ///< respawning and released the socket. An
                        ///< operator must look before service resumes.
};

/// Maps an enumeration stop reason to the worker's exit code. Budget
/// stops (level/node) are final, fingerprinted results and map to Ok.
inline int exitCodeForStop(StopReason R) {
  switch (R) {
  case StopReason::Complete:
  case StopReason::LevelBudget:
  case StopReason::NodeBudget:
    return Ok;
  case StopReason::VerifierFailure:
    return VerifyFailure;
  case StopReason::Deadline:
    return Deadline;
  case StopReason::MemoryBudget:
    return MemoryBudget;
  case StopReason::Cancelled:
    return Cancelled;
  case StopReason::InternalError:
    return Error;
  case StopReason::WorkerCrash:
    return WorkerCrash;
  }
  return Error;
}

} // namespace drive
} // namespace pose

#endif // POSE_DRIVE_EXITCODES_H
