//===- Supervisor.cpp - Supervised out-of-process enumeration -------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/drive/Supervisor.h"

#include "src/core/Canonical.h"
#include "src/core/Compilers.h"
#include "src/core/Enumerator.h"
#include "src/drive/ExitCodes.h"
#include "src/ir/Function.h"
#include "src/opt/PhaseGuard.h"
#include "src/sem/Equivalence.h"
#include "src/store/ArtifactStore.h"
#include "src/support/Subprocess.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <unordered_map>

namespace pose {
namespace drive {

namespace {

std::string u64Str(uint64_t V) { return std::to_string(V); }

/// Tracks the whole-sweep wall-clock budget.
class SweepClock {
public:
  explicit SweepClock(uint64_t DeadlineMs)
      : Start(std::chrono::steady_clock::now()), DeadlineMs(DeadlineMs) {}

  bool hasDeadline() const { return DeadlineMs != 0; }

  uint64_t remainingMs() const {
    if (!hasDeadline())
      return 0;
    const uint64_t Spent = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - Start)
            .count());
    return Spent >= DeadlineMs ? 0 : DeadlineMs - Spent;
  }

  bool exhausted() const { return hasDeadline() && remainingMs() == 0; }

private:
  std::chrono::steady_clock::time_point Start;
  uint64_t DeadlineMs;
};

/// The config both sides key the store with; must mirror posec's
/// makeEnumConfig for the flags the supervisor forwards.
EnumeratorConfig keyingConfig(const SupervisorOptions &O) {
  EnumeratorConfig Cfg;
  Cfg.MaxLevelSequences = O.Budget;
  Cfg.Jobs = static_cast<unsigned>(O.Jobs);
  Cfg.MaxMemoryBytes = O.MaxMemoryMb * 1024 * 1024;
  Cfg.VerifyIr = O.VerifyIr;
  if (O.Faults && !O.Faults->empty())
    Cfg.Faults = O.Faults;
  return Cfg;
}

std::vector<std::string> workerArgv(const SupervisorOptions &O,
                                    const std::string &Func,
                                    unsigned Attempt) {
  std::vector<std::string> Argv = {
      O.PosecPath,
      O.InputPath.empty() ? "--workload=" + O.Workload : O.InputPath,
      "--worker",
      "--enumerate=" + Func,
      "--store=" + O.StoreDir,
      "--resume",
      "--budget=" + u64Str(O.Budget),
      "--jobs=" + u64Str(O.Jobs),
      "--attempt=" + u64Str(Attempt),
  };
  if (O.MaxMemoryMb != 0)
    Argv.push_back("--max-memory-mb=" + u64Str(O.MaxMemoryMb));
  if (O.VerifyIr)
    Argv.push_back("--verify-ir");
  if (O.Equiv) {
    Argv.push_back("--equiv");
    Argv.push_back("--vector-seed=" + u64Str(O.VectorSeed));
    Argv.push_back("--vectors=" + u64Str(O.Vectors));
  }
  const bool Faulted = O.FaultFunc.empty() || O.FaultFunc == Func;
  if (Faulted) {
    if (!O.FaultSpec.empty())
      Argv.push_back("--inject-fault=" + O.FaultSpec);
    if (!O.FaultIoSpec.empty())
      Argv.push_back("--fault-io=" + O.FaultIoSpec);
    if ((!O.FaultSpec.empty() || !O.FaultIoSpec.empty()) &&
        O.FaultAttempts != 0)
      Argv.push_back("--fault-attempts=" + u64Str(O.FaultAttempts));
  }
  return Argv;
}

/// What one worker spawn taught us.
enum class AttemptClass {
  Done,      ///< Valid frame, final result in the store.
  Transient, ///< Resumable stop with a saved checkpoint; retry resumes.
  Crash,     ///< Crash-class failure (signal, timeout, protocol, exit).
  Spawn,     ///< fork/exec failed; the job cannot run at all.
};

struct AttemptOutcome {
  AttemptClass Class = AttemptClass::Crash;
  WorkerFrame Frame;         ///< Valid for Done/Transient.
  store::QuarantineRecord Q; ///< Valid for Crash (Attempts set later).
  std::string Note;          ///< Spawn error / crash description.
};

AttemptOutcome classifyAttempt(const SubprocessResult &R,
                               uint64_t TimeoutMs) {
  AttemptOutcome A;
  switch (R.Kind) {
  case ExitKind::SpawnFailed:
    A.Class = AttemptClass::Spawn;
    A.Note = R.Error;
    return A;
  case ExitKind::TimedOut:
    A.Class = AttemptClass::Crash;
    A.Q.Failure = store::WorkerFailure::Timeout;
    A.Q.Signal = R.Signal;
    A.Q.Message =
        "worker exceeded the " + u64Str(TimeoutMs) + "ms kill timer";
    A.Note = A.Q.Message;
    return A;
  case ExitKind::Signalled:
    A.Class = AttemptClass::Crash;
    A.Q.Failure = store::WorkerFailure::Signal;
    A.Q.Signal = R.Signal;
    A.Q.Message = "worker died: signal " + std::to_string(R.Signal);
    A.Note = A.Q.Message;
    return A;
  case ExitKind::PollFailed:
    // The pool's own multiplexer broke, not this worker: treat it like a
    // spawn-level harness failure (no quarantine record — the job never
    // got a fair run) and surface the errno text.
    A.Class = AttemptClass::Spawn;
    A.Note = "subprocess pool failed: " + R.Error;
    return A;
  case ExitKind::Exited:
    break;
  }

  WorkerFrame Frame;
  const bool HasFrame = parseWorkerFrame(R.Stdout, Frame);
  if (R.ExitCode == ExitCode::Ok || R.ExitCode == ExitCode::VerifyFailure) {
    if (!HasFrame) {
      A.Class = AttemptClass::Crash;
      A.Q.Failure = store::WorkerFailure::Protocol;
      A.Q.ExitCode = R.ExitCode;
      A.Q.Message = "worker exited " + std::to_string(R.ExitCode) +
                    " without a valid result frame";
      A.Note = A.Q.Message;
      return A;
    }
    A.Class = AttemptClass::Done;
    A.Frame = Frame;
    return A;
  }
  if ((R.ExitCode == ExitCode::Deadline ||
       R.ExitCode == ExitCode::MemoryBudget ||
       R.ExitCode == ExitCode::Cancelled) &&
      HasFrame && Frame.CheckpointSaved) {
    A.Class = AttemptClass::Transient;
    A.Frame = Frame;
    A.Note = std::string("worker stopped: ") + stopReasonName(Frame.Stop) +
             " (checkpoint saved)";
    return A;
  }
  A.Class = AttemptClass::Crash;
  A.Q.Failure = store::WorkerFailure::BadExit;
  A.Q.ExitCode = R.ExitCode;
  A.Q.Message = "worker exited " + std::to_string(R.ExitCode);
  A.Note = A.Q.Message;
  return A;
}

/// Fills the degradation part of \p J after retries are exhausted: the
/// newest checkpoint when one survived, else an in-process fixed-order
/// batch compilation. Never persists anything as a Result — a degraded
/// DAG must not poison the cache.
void degradeJob(JobOutcome &J, const PhaseManager &PM, const Function &F,
                const store::ArtifactStore &Store, const HashTriple &Root,
                uint64_t Fp, StopReason Stop) {
  J.Status = JobStatus::Degraded;
  J.Stop = Stop;
  EnumerationCheckpoint C;
  std::string Err;
  if (Store.loadCheckpoint(Root, Fp, C, Err) == store::LoadStatus::Hit) {
    J.Nodes = C.Partial.Nodes.size();
    J.Detail += "; partial DAG from checkpoint (" + u64Str(J.Nodes) +
                " nodes)";
    return;
  }
  Function Copy = F;
  CompileStats S = batchCompile(PM, Copy);
  J.Nodes = 0;
  J.Detail += "; batch-compile fallback (" + u64Str(S.Attempted) +
              " attempted, " + u64Str(S.Active) + " active: " +
              (S.ActiveSequence.empty() ? "-" : S.ActiveSequence) + ")";
}

} // namespace

const char *jobStatusName(JobStatus S) {
  switch (S) {
  case JobStatus::Ok:
    return "ok";
  case JobStatus::Cached:
    return "cached";
  case JobStatus::Degraded:
    return "degraded";
  case JobStatus::Quarantined:
    return "quarantined";
  case JobStatus::Failed:
    return "failed";
  case JobStatus::OtherShard:
    return "other-shard";
  }
  return "?";
}

uint64_t shardOfRoot(const HashTriple &Root, uint64_t ShardCount) {
  // FNV-1a over the triple's canonical little-endian bytes. Pure
  // arithmetic, identical on every host — std::hash or byte-order
  // dependent folding would silently assign roots to different shards on
  // different machines, breaking the disjoint-cover guarantee.
  uint64_t H = 0xCBF29CE484222325ull;
  const uint32_t Words[3] = {Root.InstCount, Root.ByteSum, Root.Crc};
  for (uint32_t W : Words)
    for (int I = 0; I != 4; ++I) {
      H ^= (W >> (8 * I)) & 0xFF;
      H *= 0x100000001B3ull;
    }
  return H % ShardCount;
}

std::string renderWorkerFrame(const WorkerFrame &F) {
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf),
                "POSEWRK1 stop=%s nodes=%llu attempted=%llu checkpoint=%d",
                stopReasonName(F.Stop),
                static_cast<unsigned long long>(F.Nodes),
                static_cast<unsigned long long>(F.Attempted),
                F.CheckpointSaved ? 1 : 0);
  return Buf;
}

namespace {

/// Consumes the literal \p Lit at \p Pos, advancing it. False on mismatch.
bool eat(const std::string &S, size_t &Pos, const char *Lit) {
  const size_t N = std::strlen(Lit);
  if (S.compare(Pos, N, Lit) != 0)
    return false;
  Pos += N;
  return true;
}

/// Consumes a decimal number at \p Pos (at least one digit).
bool eatUint(const std::string &S, size_t &Pos, uint64_t &Out) {
  const size_t Begin = Pos;
  uint64_t V = 0;
  while (Pos < S.size() && S[Pos] >= '0' && S[Pos] <= '9') {
    const uint64_t Digit = static_cast<uint64_t>(S[Pos] - '0');
    if (V > (UINT64_MAX - Digit) / 10)
      return false;
    V = V * 10 + Digit;
    ++Pos;
  }
  if (Pos == Begin)
    return false;
  Out = V;
  return true;
}

bool parseFrameLine(const std::string &L, WorkerFrame &Out) {
  size_t Pos = 0;
  if (!eat(L, Pos, "POSEWRK1 stop="))
    return false;
  const size_t NameEnd = L.find(' ', Pos);
  if (NameEnd == std::string::npos)
    return false;
  const std::string Name = L.substr(Pos, NameEnd - Pos);
  bool Known = false;
  WorkerFrame F;
  for (uint8_t V = 0; V <= static_cast<uint8_t>(StopReason::WorkerCrash);
       ++V) {
    const StopReason R = static_cast<StopReason>(V);
    if (Name == stopReasonName(R)) {
      F.Stop = R;
      Known = true;
      break;
    }
  }
  if (!Known)
    return false;
  Pos = NameEnd;
  uint64_t Checkpoint = 0;
  if (!eat(L, Pos, " nodes=") || !eatUint(L, Pos, F.Nodes) ||
      !eat(L, Pos, " attempted=") || !eatUint(L, Pos, F.Attempted) ||
      !eat(L, Pos, " checkpoint=") || !eatUint(L, Pos, Checkpoint) ||
      Pos != L.size() || Checkpoint > 1)
    return false;
  F.CheckpointSaved = Checkpoint != 0;
  Out = F;
  return true;
}

} // namespace

bool parseWorkerFrame(const std::string &Output, WorkerFrame &Out) {
  size_t Pos = 0;
  while (Pos < Output.size()) {
    size_t End = Output.find('\n', Pos);
    if (End == std::string::npos)
      End = Output.size();
    const std::string Line = Output.substr(Pos, End - Pos);
    if (parseFrameLine(Line, Out))
      return true;
    Pos = End + 1;
  }
  return false;
}

int SweepReport::exitCode() const {
  bool AnyFailed = false, AnySkipped = false;
  int DegradedCode = 0;
  for (const JobOutcome &J : Jobs) {
    if (J.Status == JobStatus::Failed)
      AnyFailed = true;
    else if (J.Status == JobStatus::Quarantined)
      AnySkipped = true;
    else if (J.Status == JobStatus::Degraded) {
      // A crash-degraded job outranks budget-degraded ones.
      const int C = exitCodeForStop(J.Stop);
      if (DegradedCode == 0 || C == ExitCode::WorkerCrash)
        DegradedCode = C;
    }
  }
  if (!Error.empty() || AnyFailed)
    return ExitCode::Error;
  if (DegradedCode != 0)
    return DegradedCode;
  if (AnySkipped)
    return ExitCode::QuarantinedSkip;
  return ExitCode::Ok;
}

SweepReport superviseModule(const PhaseManager &PM, const Module &M,
                            const SupervisorOptions &Opts) {
  SweepReport Report;
  const EnumeratorConfig KeyCfg = keyingConfig(Opts);
  const uint64_t Fp = store::configFingerprint(KeyCfg);
  store::ArtifactStore Store(Opts.StoreDir);
  store::ArtifactStore QStore(
      Opts.QuarantineDir.empty() ? Opts.StoreDir : Opts.QuarantineDir);
  if (!Store.prepare(Report.Error) || !QStore.prepare(Report.Error))
    return Report;
  // Before the first spawn is the one moment no writer can be mid-write:
  // any *.pose.tmp here is an orphan of a crashed earlier run, and left
  // in place it would sit in the store forever (renames go to final
  // names, never reclaiming temps).
  Report.ReclaimedTmp = Store.reclaimTmp();
  if (QStore.directory() != Store.directory())
    for (std::string &P : QStore.reclaimTmp())
      Report.ReclaimedTmp.push_back(std::move(P));
  SweepClock Clock(Opts.SweepDeadlineMs);
  const size_t NumJobs = M.Functions.size();
  const uint64_t SweepJobs = std::max<uint64_t>(1, Opts.SweepJobs);

  // One state machine per function. A job moves Pending -> Running (a
  // worker is in flight) -> back to Pending/Waiting (retry, possibly
  // after a backoff delay) -> Done; the pool multiplexes every Running
  // job's child. The JobOutcome is accumulated in place and committed to
  // the report in function order at the end, so the report is identical
  // regardless of which workers finish first.
  enum class JobPhase : uint8_t { Pending, Waiting, Running, Done };
  struct JobState {
    JobPhase Phase = JobPhase::Pending;
    HashTriple Root;
    /// Index of the previous job with the same root, or SIZE_MAX. Jobs
    /// sharing a root share store keys; running them in function order
    /// (each waits for its predecessor) keeps the sequential semantics —
    /// the second occurrence reuses the first one's result as Cached —
    /// and prevents two workers racing on one artifact file.
    size_t PrevSameRoot = SIZE_MAX;
    unsigned Attempt = 0;
    uint64_t SpawnTimeoutMs = 0; ///< Kill timer of the in-flight attempt.
    std::chrono::steady_clock::time_point ReadyAt{}; ///< Valid: Waiting.
    JobOutcome J;
  };
  const bool Sharded = Opts.ShardCount > 1;
  std::vector<JobState> Jobs(NumJobs);
  for (size_t I = 0; I != NumJobs; ++I) {
    JobState &S = Jobs[I];
    S.J.Func = M.Functions[I].Name;
    S.Root = canonicalize(M.Functions[I], false, KeyCfg.RemapRegisters).Hash;
    for (size_t P = I; P-- > 0;)
      if (Jobs[P].Root == S.Root) {
        S.PrevSameRoot = P;
        break;
      }
    if (Sharded) {
      // Jobs sharing a root share a shard (the assignment is a function
      // of the root alone), so a root group is always wholly ours or
      // wholly another supervisor's — PrevSameRoot chains stay intact.
      const uint64_t Owner = shardOfRoot(S.Root, Opts.ShardCount);
      if (Owner != Opts.ShardIndex - 1) {
        S.J.Status = JobStatus::OtherShard;
        S.J.Stop = StopReason::Complete;
        S.J.Detail = "assigned to shard " + u64Str(Owner + 1) + "/" +
                     u64Str(Opts.ShardCount);
        S.Phase = JobPhase::Done;
      }
    }
  }

  SubprocessPool Pool;
  std::unordered_map<SubprocessPool::JobId, size_t> InFlight;

  // The skip checks the sequential supervisor ran before its attempt
  // ladder, executed when the job first becomes startable (after its
  // root-group predecessor is done, so a predecessor's fresh result is
  // visible as Cached). True when the job completed without a worker.
  auto checkSkips = [&](JobState &S) -> bool {
    JobOutcome &J = S.J;

    // 1. A persisted quarantine record means skip-with-diagnostic: the
    //    retry ladder was already burned on this job in an earlier sweep.
    {
      store::QuarantineRecord Q;
      std::string Err;
      const store::LoadStatus St = QStore.loadQuarantine(S.Root, Fp, Q, Err);
      if (St == store::LoadStatus::Hit) {
        J.Status = JobStatus::Quarantined;
        J.Stop = StopReason::WorkerCrash;
        J.Detail = "skipped: quarantined after " +
                   std::to_string(Q.Attempts) + " attempt(s) [" +
                   store::workerFailureName(Q.Failure) + "]: " + Q.Message +
                   "; remove '" +
                   QStore.pathFor(S.Root, store::ArtifactKind::Quarantine) +
                   "' to retry";
        return true;
      }
      if (St == store::LoadStatus::Rejected)
        J.Detail = "(rejected quarantine record: " + Err + ") ";
    }

    // 2. A finished cached result needs no worker at all — unless the
    //    sweep also wants equivalence records and this root's is missing
    //    (or was computed under different vectors), in which case a
    //    worker must still run to compute it.
    {
      EnumerationResult Res;
      std::string Err;
      const store::LoadStatus St = Store.loadResult(S.Root, Fp, Res, Err);
      if (St == store::LoadStatus::Hit) {
        bool EquivReady = true;
        if (Opts.Equiv) {
          sem::EquivRecord E;
          std::string EqErr;
          const uint64_t EqFp =
              store::equivFingerprint(Fp, Opts.VectorSeed, Opts.Vectors);
          EquivReady = Store.loadEquivalence(S.Root, EqFp, E, EqErr) ==
                       store::LoadStatus::Hit;
        }
        if (EquivReady) {
          J.Status = JobStatus::Cached;
          J.Stop = Res.Stop;
          J.Nodes = Res.Nodes.size();
          J.Detail += std::string("reusing cached DAG (") +
                      stopReasonName(Res.Stop) + ")";
          return true;
        }
      }
      if (St == store::LoadStatus::Rejected)
        J.Detail += "(rejected stored result: " + Err + ") ";
    }
    return false;
  };

  // One rung of the attempt ladder: classify the finished worker and
  // either finalize the job or schedule the retry.
  auto onResult = [&](size_t Idx, const SubprocessResult &R) {
    JobState &S = Jobs[Idx];
    JobOutcome &J = S.J;
    AttemptOutcome Last = classifyAttempt(R, S.SpawnTimeoutMs);

    if (Last.Class == AttemptClass::Done) {
      J.Status = JobStatus::Ok;
      J.Stop = Last.Frame.Stop;
      J.Nodes = Last.Frame.Nodes;
      J.Attempts = S.Attempt;
      J.Detail += std::string(stopReasonName(Last.Frame.Stop)) + ", " +
                  u64Str(Last.Frame.Nodes) + " nodes, " +
                  std::to_string(S.Attempt) + " attempt(s)";
      // The worker's saveResult cleared the StoreDir quarantine record;
      // a separate quarantine store must be cleared here.
      QStore.removeQuarantine(S.Root);
      S.Phase = JobPhase::Done;
      return;
    }
    if (Last.Class == AttemptClass::Spawn) {
      J.Status = JobStatus::Failed;
      J.Attempts = S.Attempt;
      J.Detail += "cannot spawn worker: " + Last.Note;
      S.Phase = JobPhase::Done;
      return;
    }

    uint64_t DelayMs = 0;
    if (Opts.Retry.nextDelayMs(S.Attempt, S.Root.Crc, Clock.hasDeadline(),
                               Clock.remainingMs(), DelayMs)) {
      // Backoff is a non-blocking timestamp: other jobs keep their
      // workers running while this one waits out its delay.
      if (DelayMs == 0) {
        S.Phase = JobPhase::Pending;
      } else {
        S.Phase = JobPhase::Waiting;
        S.ReadyAt = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(DelayMs);
      }
      return;
    }

    // Retries exhausted.
    J.Attempts = S.Attempt;
    if (Last.Class == AttemptClass::Crash) {
      Last.Q.Attempts = S.Attempt;
      std::string QErr;
      if (QStore.saveQuarantine(S.Root, Fp, Last.Q, QErr)) {
        J.NewlyQuarantined = true;
        J.Detail += Last.Note + " after " + std::to_string(S.Attempt) +
                    " attempt(s); quarantined";
      } else {
        J.Detail += Last.Note + " after " + std::to_string(S.Attempt) +
                    " attempt(s); quarantine write failed: " + QErr;
      }
      degradeJob(J, PM, M.Functions[Idx], Store, S.Root, Fp,
                 StopReason::WorkerCrash);
    } else {
      J.Detail += Last.Note + "; retries exhausted after " +
                  std::to_string(S.Attempt) + " attempt(s)";
      degradeJob(J, PM, M.Functions[Idx], Store, S.Root, Fp,
                 Last.Frame.Stop);
    }
    S.Phase = JobPhase::Done;
  };

  for (;;) {
    const auto Now = std::chrono::steady_clock::now();

    // Promote jobs whose backoff delay has elapsed.
    for (JobState &S : Jobs)
      if (S.Phase == JobPhase::Waiting && Now >= S.ReadyAt)
        S.Phase = JobPhase::Pending;

    // Fill free worker slots in function order. A job held back by its
    // root-group predecessor becomes startable in the same pass the
    // predecessor completes (the predecessor has the smaller index).
    for (size_t I = 0; I != NumJobs && Pool.live() < SweepJobs; ++I) {
      JobState &S = Jobs[I];
      if (S.Phase != JobPhase::Pending)
        continue;
      if (S.PrevSameRoot != SIZE_MAX &&
          Jobs[S.PrevSameRoot].Phase != JobPhase::Done)
        continue;
      if (S.Attempt == 0 && checkSkips(S)) {
        S.Phase = JobPhase::Done;
        continue;
      }
      if (Clock.exhausted()) {
        S.J.Attempts = S.Attempt;
        S.J.Detail += "sweep deadline exhausted before the job could run";
        degradeJob(S.J, PM, M.Functions[I], Store, S.Root, Fp,
                   StopReason::Deadline);
        S.Phase = JobPhase::Done;
        continue;
      }
      ++S.Attempt;
      SubprocessSpec Spec;
      Spec.Argv = workerArgv(Opts, S.J.Func, S.Attempt);
      Spec.TimeoutMs = Opts.WorkerTimeoutMs;
      if (Clock.hasDeadline() &&
          (Spec.TimeoutMs == 0 || Spec.TimeoutMs > Clock.remainingMs()))
        Spec.TimeoutMs = Clock.remainingMs();
      Spec.MemoryLimitBytes = Opts.WorkerRlimitMb * 1024 * 1024;
      S.SpawnTimeoutMs = Spec.TimeoutMs;
      InFlight[Pool.spawn(Spec)] = I;
      S.Phase = JobPhase::Running;
    }

    bool AllDone = true;
    for (const JobState &S : Jobs)
      if (S.Phase != JobPhase::Done) {
        AllDone = false;
        break;
      }
    if (AllDone)
      break;

    // Wait for a completion, bounded by the nearest backoff expiry so a
    // freed retry gets its slot promptly.
    uint64_t WaitMs = 1000 * 60 * 60;
    for (const JobState &S : Jobs)
      if (S.Phase == JobPhase::Waiting) {
        const int64_t Left =
            std::chrono::duration_cast<std::chrono::milliseconds>(S.ReadyAt -
                                                                  Now)
                .count();
        WaitMs = std::min<uint64_t>(
            WaitMs, static_cast<uint64_t>(Left < 1 ? 1 : Left));
      }
    if (Pool.idle()) {
      // Nothing in flight — every unfinished job is waiting out a
      // backoff. Sleep until the nearest expiry.
      std::this_thread::sleep_for(std::chrono::milliseconds(
          WaitMs == 1000 * 60 * 60 ? 1 : WaitMs));
      continue;
    }
    for (auto &Done : Pool.wait(WaitMs)) {
      const auto It = InFlight.find(Done.first);
      if (It == InFlight.end())
        continue;
      const size_t Idx = It->second;
      InFlight.erase(It);
      onResult(Idx, Done.second);
    }
  }

  Report.Jobs.reserve(NumJobs);
  for (JobState &S : Jobs)
    Report.Jobs.push_back(std::move(S.J));
  return Report;
}

} // namespace drive
} // namespace pose
