//===- Supervisor.h - Supervised out-of-process enumeration ----*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The supervised sweep: a module's per-function enumeration jobs, each
/// run in a sandboxed `posec --worker` child process (see
/// src/support/Subprocess.h), so that a worker that SIGSEGVs, gets OOM
/// killed, or hangs costs one classified job failure instead of the whole
/// sweep. Up to \ref SupervisorOptions::SweepJobs workers run
/// concurrently through a bounded SubprocessPool; scheduling never
/// changes observable output (see the SweepJobs field). The supervisor
/// owns:
///
///  - a \ref RetryPolicy: bounded retries with exponential backoff and
///    deterministic jitter, refused when the sweep's wall-clock budget
///    could not absorb the delay;
///  - a persisted quarantine list (\ref store::QuarantineRecord in the
///    ArtifactStore): a job that exhausts its retries crashing is
///    recorded, and later sweeps skip it with a diagnostic instead of
///    burning the retry ladder again;
///  - graceful degradation: an exhausted job falls back to the newest
///    checkpoint artifact when one exists (a partial DAG marked
///    \ref StopReason::WorkerCrash), else to an in-process fixed-order
///    batch compilation — the job is reported Degraded and the sweep
///    carries on.
///
/// Workers communicate results over two in-band channels: the documented
/// exit code (src/drive/ExitCodes.h) and a one-line stdout frame
/// (\ref WorkerFrame). Everything else — checkpoints, results, quarantine
/// records — flows through the artifact store, which both sides key
/// identically (crash-class injected faults are execution-only and
/// excluded from the config fingerprint, so a fault-injected worker
/// shares artifacts with a clean one).
///
//===----------------------------------------------------------------------===//

#ifndef POSE_DRIVE_SUPERVISOR_H
#define POSE_DRIVE_SUPERVISOR_H

#include "src/support/RetryPolicy.h"
#include "src/support/StopToken.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pose {

class Module;
class PhaseManager;
struct FaultPlan;
struct HashTriple;

namespace drive {

/// The one-line result frame a worker prints to stdout:
///   POSEWRK1 stop=<name> nodes=<N> attempted=<N> checkpoint=<0|1>
/// The frame exists because the exit code alone cannot carry the node
/// count, and because an exit status of 0 from a child that never reached
/// the enumerator (e.g. a misloaded shared library exiting cleanly) must
/// be distinguishable from success — a missing or malformed frame is a
/// protocol failure, classified like a crash.
struct WorkerFrame {
  StopReason Stop = StopReason::Complete;
  uint64_t Nodes = 0;
  uint64_t Attempted = 0;
  bool CheckpointSaved = false;
};

/// Renders \p F as the one-line frame (no trailing newline).
std::string renderWorkerFrame(const WorkerFrame &F);

/// Scans \p Output (a worker's captured stdout) for a frame line and
/// strictly parses it. Returns false when no line parses.
bool parseWorkerFrame(const std::string &Output, WorkerFrame &Out);

/// Everything a supervised sweep needs. The enumeration knobs mirror the
/// posec flags they are forwarded as; the supervisor derives the store
/// fingerprint from them exactly as the worker will, so both sides agree
/// on artifact keys.
struct SupervisorOptions {
  std::string PosecPath; ///< Worker executable (this very binary).
  std::string InputPath; ///< The .mc source file workers recompile.
  /// Embedded workload name (--workload=NAME); workers get this flag
  /// instead of an input path when set. Exactly one of InputPath/Workload
  /// is nonempty.
  std::string Workload;
  std::string StoreDir;  ///< Artifact store; required.
  /// Store directory for quarantine records; empty = StoreDir.
  std::string QuarantineDir;

  // Enumeration knobs forwarded to workers (fingerprint-relevant ones
  // must match tools/posec.cpp makeEnumConfig).
  uint64_t Budget = 1'000'000; ///< --budget (level-sequence cap).
  uint64_t Jobs = 1;           ///< --jobs inside each worker.
  uint64_t MaxMemoryMb = 0;    ///< --max-memory-mb per worker (0 = off).
  bool VerifyIr = false;       ///< --verify-ir.

  // Semantic equivalence (src/sem). With Equiv set, workers also compute
  // and persist the equivalence record of every finished DAG, and a job
  // only counts as Cached when both its result AND its equivalence record
  // (under VectorSeed/Vectors) are already stored.
  bool Equiv = false;      ///< --equiv forwarded to workers.
  uint64_t VectorSeed = 0; ///< --vector-seed forwarded when Equiv.
  uint64_t Vectors = 0;    ///< --vectors forwarded when Equiv.

  // Fault injection (tests, CI). The parsed plan must be all crash-class;
  // the spec text is forwarded verbatim to the targeted worker.
  const FaultPlan *Faults = nullptr;
  std::string FaultSpec;     ///< --inject-fault text for workers.
  std::string FaultIoSpec;   ///< --fault-io text for workers (injected
                             ///< store I/O failures; execution-only, so
                             ///< keys are unaffected).
  std::string FaultFunc;     ///< Only this function's worker gets the
                             ///< fault flags; empty = all workers.
  uint64_t FaultAttempts = 0; ///< --fault-attempts forwarded (0 = omit).

  // Sharding (--shard=K/N). ShardCount 0 or 1 = unsharded: every job is
  // this supervisor's. Otherwise only jobs whose canonical root hashes to
  // shard ShardIndex (1-based) run here; the rest are reported
  // JobStatus::OtherShard and skipped. The assignment is a pure function
  // of the root triple (see shardOfRoot), so N supervisors with disjoint
  // shard indices cover every job exactly once — and a later
  // `posec --merge-store` union of their stores is byte-identical to one
  // unsharded sweep's store.
  uint64_t ShardIndex = 0; ///< 1-based shard of this supervisor.
  uint64_t ShardCount = 0; ///< Total shards (0 = unsharded).

  // Supervision policy.
  uint64_t WorkerTimeoutMs = 60'000; ///< Wall-clock kill timer per spawn.
  uint64_t WorkerRlimitMb = 0;       ///< RLIMIT_AS cap per worker (0 = off).
  uint64_t SweepDeadlineMs = 0;      ///< Whole-sweep budget (0 = none).
  RetryPolicy Retry;                 ///< Backoff schedule between attempts.
  /// Maximum worker processes in flight at once (--sweep-jobs); clamped
  /// to at least 1. Execution-only: the report, stored artifacts, and
  /// quarantine records are byte-identical for any value — jobs whose
  /// functions canonicalize to the same root (and therefore share store
  /// keys) are serialized in function order, every other job is
  /// independent, and the report always commits in function order.
  uint64_t SweepJobs = 1;
};

/// How one job ended.
enum class JobStatus : uint8_t {
  Ok,          ///< A worker finished; the result is in the store.
  Cached,      ///< The store already held a finished result; no spawn.
  Degraded,    ///< Retries exhausted; partial/fallback result only.
  Quarantined, ///< Skipped: a persisted quarantine record names this job.
  Failed,      ///< Could not even run (spawn failure, store I/O error).
  OtherShard,  ///< Sharded sweep: the job belongs to a different shard
               ///< index and was not run here. Neutral for the exit code.
};

/// Deterministic shard assignment of a root triple: a value in
/// [0, ShardCount) that depends only on the triple's 12 canonical bytes
/// (FNV-1a, little-endian), never on host, locale, or standard-library
/// hashing — so every supervisor, on any machine, agrees which shard owns
/// which root. \p ShardCount must be nonzero.
uint64_t shardOfRoot(const HashTriple &Root, uint64_t ShardCount);

/// Short lower-case name ("ok", "cached", "degraded", ...).
const char *jobStatusName(JobStatus S);

/// Outcome of one per-function job.
struct JobOutcome {
  std::string Func;
  JobStatus Status = JobStatus::Failed;
  unsigned Attempts = 0; ///< Worker spawns consumed (0 for Cached/skip).
  /// Stop reason of the best available result: the worker's on success,
  /// WorkerCrash for a crash-degraded job, the transient reason for a
  /// budget-degraded one.
  StopReason Stop = StopReason::InternalError;
  uint64_t Nodes = 0; ///< DAG nodes in the best available result.
  bool NewlyQuarantined = false; ///< This sweep wrote the record.
  std::string Detail; ///< Human-readable diagnostic for the report.
};

/// The whole sweep.
struct SweepReport {
  std::vector<JobOutcome> Jobs;
  std::string Error; ///< Sweep-level failure (store unusable, ...).
  /// `*.pose.tmp` leftovers of crashed writers, reclaimed from the store
  /// directories before any worker was spawned (the only moment the
  /// supervisor knows no writer can be mid-write).
  std::vector<std::string> ReclaimedTmp;

  /// Process exit code for the sweep, most severe condition wins:
  /// Error/Failed (1), then a degraded job's own code (WorkerCrash = 7,
  /// or the transient reason's code), then QuarantinedSkip (8), else 0.
  int exitCode() const;
};

/// Runs one supervised sweep over every function of \p M, keeping up to
/// SweepJobs worker processes in flight through a SubprocessPool.
/// \p PM is used for store keying and the batch-compile fallback only;
/// all enumeration happens in child processes. The report is committed
/// in function order regardless of completion order.
SweepReport superviseModule(const PhaseManager &PM, const Module &M,
                            const SupervisorOptions &Opts);

} // namespace drive
} // namespace pose

#endif // POSE_DRIVE_SUPERVISOR_H
