//===- StoreDriver.cpp - Store-backed enumeration driver ------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/store/StoreDriver.h"

namespace pose {
namespace store {

DriveResult driveEnumeration(const PhaseManager &PM,
                             const EnumeratorConfig &Config,
                             const Function &Root, const std::string &StoreDir,
                             bool Resume) {
  DriveResult D;
  // The cache key must equal node 0's hash, so canonicalize exactly the
  // way the enumerator interns the root.
  D.Root = canonicalize(Root, false, Config.RemapRegisters).Hash;

  ArtifactStore Store(StoreDir);
  if (!Store.prepare(D.Error))
    return D;
  const uint64_t Fp = configFingerprint(Config);

  std::string Note;
  LoadStatus S = Store.loadResult(D.Root, Fp, D.Result, Note);
  if (S == LoadStatus::Hit) {
    D.Ok = true;
    D.Source = DriveSource::Cached;
    return D;
  }
  if (S == LoadStatus::Rejected)
    D.RejectionNotes.push_back(Note);

  Enumerator E(PM, Config);
  EnumerationCheckpoint Checkpoint;
  D.Source = DriveSource::Fresh;
  if (Resume) {
    EnumerationCheckpoint From;
    S = Store.loadCheckpoint(D.Root, Fp, From, Note);
    if (S == LoadStatus::Rejected)
      D.RejectionNotes.push_back(Note);
    if (S == LoadStatus::Hit) {
      D.Result = E.resume(Root, std::move(From), &Checkpoint);
      D.Source = DriveSource::Resumed;
    }
  }
  if (D.Source == DriveSource::Fresh)
    D.Result = E.enumerate(Root, &Checkpoint);

  if (Checkpoint.Valid) {
    if (!Store.saveCheckpoint(D.Root, Fp, Checkpoint, D.Error))
      return D;
    D.CheckpointSaved = true;
    D.Ok = true;
    return D;
  }
  if (!Store.saveResult(D.Root, Fp, D.Result, D.Error))
    return D;
  D.Ok = true;
  return D;
}

} // namespace store
} // namespace pose
