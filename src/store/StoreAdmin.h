//===- StoreAdmin.h - Offline store integrity and merging ------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Offline administration of artifact store directories, the operator
/// surface behind `posec --fsck` and `posec --merge-store`.
///
/// fsck re-verifies every frame in a store from nothing but the bytes on
/// disk — magic, version, header CRC, kind-vs-filename, key-vs-filename,
/// payload CRC, and a full payload decode — and classifies what it finds:
/// intact, truncated (torn write), corrupt (damaged bytes), an orphaned
/// `*.pose.tmp` from a writer that died before its rename, or a foreign
/// file it refuses to touch. With repair, damaged artifacts are moved
/// aside into `lost+found/` and orphans deleted, so the next sweep
/// recomputes exactly what was lost and nothing else.
///
/// merge unions shard stores produced by `posec --supervise --shard=K/N`
/// into one directory. The store's encodings are canonical, so the same
/// job computed anywhere yields byte-identical files; merge enforces
/// exactly that — same file name implies byte-identical content, with
/// identical copies deduplicated and any divergence reported as a
/// conflict (never silently resolved), since it means two stores claim
/// different facts about the same key.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_STORE_STOREADMIN_H
#define POSE_STORE_STOREADMIN_H

#include "src/store/ArtifactStore.h"

#include <string>
#include <vector>

namespace pose {
namespace store {

/// Parses a store file name of the canonical
/// `%08x-%08x-%08x.<kind>.pose` shape. False when \p Name is anything
/// else (including upper-case hex, which the store never writes).
bool parseArtifactName(const std::string &Name, HashTriple &Root,
                       ArtifactKind &Kind);

/// Classification of one store directory entry.
enum class FsckState : uint8_t {
  Ok,        ///< Frame verified end to end, payload decodes.
  Truncated, ///< Shorter than its header promises (torn write).
  Corrupt,   ///< Damaged bytes: magic/version/CRC/kind/key/decode.
  OrphanTmp, ///< `*.pose.tmp` left by a writer that died pre-rename.
  Foreign,   ///< Not a store file; listed, never touched by repair.
};

/// Short lower-case name ("ok", "corrupt", "orphan-tmp", ...).
const char *fsckStateName(FsckState S);

/// One non-intact (or foreign) directory entry.
struct FsckEntry {
  std::string Name; ///< File name inside the store directory.
  FsckState State = FsckState::Foreign;
  std::string Detail;     ///< Diagnostic: offset, expected vs actual.
  std::string RepairedTo; ///< Repair destination; "(removed)" for
                          ///< orphans, empty when nothing was done.
};

/// What an fsck pass found (and, with repair, did).
struct FsckReport {
  std::vector<FsckEntry> Entries; ///< Non-Ok entries, sorted by name.
  size_t Scanned = 0;
  size_t Intact = 0;
  size_t Corrupt = 0;
  size_t Truncated = 0;
  size_t Orphans = 0;
  size_t Foreign = 0;
  size_t Repaired = 0; ///< Problems actually moved aside / removed.
  std::string Error;   ///< Directory-level failure; all else unset.

  /// Nothing wrong with the store (foreign files are tolerated).
  bool clean() const {
    return Error.empty() && Corrupt == 0 && Truncated == 0 && Orphans == 0;
  }
  /// Every problem found was repaired away; the store is usable again.
  bool repairedClean() const {
    return Error.empty() && Repaired == Corrupt + Truncated + Orphans;
  }
};

/// Name of the repair destination directory inside a store.
constexpr const char *kLostAndFoundDir = "lost+found";

/// Scans every file of the store at \p Dir and re-verifies each frame.
/// With \p Repair, corrupt and truncated artifacts are moved into
/// `Dir/lost+found/` (never deleted — the bytes may still matter for a
/// post-mortem) and orphaned temp files are removed. Only run repair on
/// a store no writer is using. \p Io null = processStoreIo().
FsckReport fsckStore(const std::string &Dir, bool Repair,
                     StoreIo *Io = nullptr);

/// How a merge ended.
enum class MergeStatus : uint8_t {
  Ok,            ///< All sources unioned into the destination.
  Conflict,      ///< Same key, byte-different payload; nothing about the
                 ///< conflicting key was changed. See ConflictKey.
  CorruptSource, ///< A source artifact failed frame verification; run
                 ///< --fsck on that source first.
  IoError,       ///< Missing directory or a failed copy.
  SelfMerge,     ///< The destination is also a source (same path, a
                 ///< relative alias, or a symlink): merging a store into
                 ///< itself would walk a directory being mutated.
                 ///< Nothing was copied. A usage error, not an I/O one.
};

/// Outcome and statistics of one merge.
struct MergeReport {
  MergeStatus Status = MergeStatus::Ok;
  size_t Copied = 0;     ///< New artifacts copied into the destination.
  size_t Deduped = 0;    ///< Same key, byte-identical: nothing to do.
  size_t SkippedTmp = 0; ///< Crash leftovers in a source, ignored.
  std::string ConflictKey; ///< File name of the conflicting artifact.
  std::string Error;       ///< Human-readable failure description.
};

/// Unions the artifacts of every \p Srcs store into \p Dst (created if
/// needed), copying atomically (temp + rename) so an interrupted merge
/// leaves no torn destination files. Sources are processed in argument
/// order, files in sorted order, so the outcome is deterministic. Every
/// source artifact is frame-verified before it is allowed in; a merge
/// stops at the first conflict or corrupt source without touching the
/// conflicting key. \p Io null = processStoreIo().
MergeReport mergeStores(const std::string &Dst,
                        const std::vector<std::string> &Srcs,
                        StoreIo *Io = nullptr);

} // namespace store
} // namespace pose

#endif // POSE_STORE_STOREADMIN_H
