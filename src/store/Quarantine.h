//===- Quarantine.h - Persistent worker-failure records --------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The quarantine record: a small persisted note that an out-of-process
/// enumeration worker for a given (root function, configuration) key kept
/// dying — by signal, hang timeout, protocol violation, or unexplained
/// exit — until its retry budget ran out. A supervised sweep consults the
/// record before spawning a worker and skips known-bad jobs with a
/// diagnostic instead of burning the retry ladder again; a later
/// successful enumeration for the same key (e.g. after a fix) clears it.
///
/// Records live in the ArtifactStore next to results and checkpoints,
/// under the same frame, keying, and fingerprint discipline (see
/// ArtifactStore.h); this header is separate only to keep the store's
/// public surface free of supervisor types.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_STORE_QUARANTINE_H
#define POSE_STORE_QUARANTINE_H

#include <cstdint>
#include <string>

namespace pose {
namespace store {

/// How the worker process failed (the crash class, not the stop reason —
/// a quarantined job by definition never produced a usable stop reason).
enum class WorkerFailure : uint8_t {
  Signal = 0, ///< Died by signal (SIGSEGV, OOM SIGKILL, ...).
  Timeout,    ///< Exceeded the supervisor's wall-clock kill timer.
  BadExit,    ///< Exited with an unrecognized nonzero status.
  Protocol,   ///< Exited 0 but emitted no valid result frame.
};

/// Short lower-case name ("signal", "timeout", "bad-exit", "protocol").
const char *workerFailureName(WorkerFailure F);

/// Everything the supervisor knows about why a job was quarantined.
struct QuarantineRecord {
  WorkerFailure Failure = WorkerFailure::Signal;
  int32_t Signal = 0;   ///< Terminating signal (Failure == Signal/Timeout).
  int32_t ExitCode = 0; ///< Exit status (Failure == BadExit/Protocol).
  uint32_t Attempts = 0; ///< Total attempts spent before quarantining.
  std::string Message;   ///< Human-readable diagnostic for reports.
};

} // namespace store
} // namespace pose

#endif // POSE_STORE_QUARANTINE_H
