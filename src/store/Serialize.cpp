//===- Serialize.cpp - Binary codecs for enumeration artifacts ------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/store/Serialize.h"

namespace pose {
namespace store {

namespace {

// --- strict scalar helpers -------------------------------------------------

bool decodeBool(ByteReader &R, bool &V) {
  uint8_t B = R.u8();
  if (B > 1) {
    R.fail();
    return false;
  }
  V = B != 0;
  return R.ok();
}

bool decodeCount(ByteReader &R, size_t &N) {
  uint64_t V = R.u64();
  // A count can never exceed the bytes remaining (every element encodes to
  // at least one byte), so reject it before any allocation.
  if (!R.ok() || V > R.remaining()) {
    R.fail();
    return false;
  }
  N = static_cast<size_t>(V);
  return true;
}

bool decodePhase(ByteReader &R, PhaseId &P) {
  uint8_t V = R.u8();
  if (V >= NumPhases) {
    R.fail();
    return false;
  }
  P = static_cast<PhaseId>(V);
  return R.ok();
}

// --- IR --------------------------------------------------------------------

void encodeOperand(ByteWriter &W, const Operand &O) {
  W.u8(static_cast<uint8_t>(O.Kind));
  W.i32(O.Value);
}

bool decodeOperand(ByteReader &R, Operand &O) {
  uint8_t K = R.u8();
  if (K > static_cast<uint8_t>(OperandKind::Label)) {
    R.fail();
    return false;
  }
  O.Kind = static_cast<OperandKind>(K);
  O.Value = R.i32();
  return R.ok();
}

void encodeRtl(ByteWriter &W, const Rtl &I) {
  W.u8(static_cast<uint8_t>(I.Opcode));
  W.u8(static_cast<uint8_t>(I.CC));
  encodeOperand(W, I.Dst);
  for (const Operand &S : I.Src)
    encodeOperand(W, S);
  W.u64(I.Args.size());
  for (const Operand &A : I.Args)
    encodeOperand(W, A);
}

bool decodeRtl(ByteReader &R, Rtl &I) {
  uint8_t OpV = R.u8();
  uint8_t CCV = R.u8();
  if (OpV > static_cast<uint8_t>(Op::Epilogue) ||
      CCV > static_cast<uint8_t>(Cond::UGe)) {
    R.fail();
    return false;
  }
  I.Opcode = static_cast<Op>(OpV);
  I.CC = static_cast<Cond>(CCV);
  if (!decodeOperand(R, I.Dst))
    return false;
  for (Operand &S : I.Src)
    if (!decodeOperand(R, S))
      return false;
  size_t N;
  if (!decodeCount(R, N))
    return false;
  I.Args.resize(N);
  for (Operand &A : I.Args)
    if (!decodeOperand(R, A))
      return false;
  return R.ok();
}

void encodePhaseState(ByteWriter &W, const PhaseState &S) {
  W.u8(S.encode());
}

bool decodePhaseState(ByteReader &R, PhaseState &S) {
  uint8_t B = R.u8();
  if (B > 3) {
    R.fail();
    return false;
  }
  S.RegsAssigned = (B & 1) != 0;
  S.RegAllocDone = (B & 2) != 0;
  return R.ok();
}

// --- enumeration types -----------------------------------------------------

void encodeHash(ByteWriter &W, const HashTriple &H) {
  W.u32(H.InstCount);
  W.u32(H.ByteSum);
  W.u32(H.Crc);
}

bool decodeHash(ByteReader &R, HashTriple &H) {
  H.InstCount = R.u32();
  H.ByteSum = R.u32();
  H.Crc = R.u32();
  return R.ok();
}

void encodeNode(ByteWriter &W, const DagNode &N) {
  encodeHash(W, N.Hash);
  W.u32(N.Level);
  W.u32(N.CodeSize);
  W.u64(N.CfHash);
  W.u16(N.ActiveMask);
  W.u16(N.DormantMask);
  W.u16(N.AttemptedMask);
  W.u64(N.Edges.size());
  for (const DagEdge &E : N.Edges) {
    W.u8(static_cast<uint8_t>(E.Phase));
    W.u32(E.To);
  }
  W.u64(N.Weight);
}

bool decodeNode(ByteReader &R, DagNode &N) {
  if (!decodeHash(R, N.Hash))
    return false;
  N.Level = R.u32();
  N.CodeSize = R.u32();
  N.CfHash = R.u64();
  N.ActiveMask = R.u16();
  N.DormantMask = R.u16();
  N.AttemptedMask = R.u16();
  size_t NE;
  if (!decodeCount(R, NE))
    return false;
  N.Edges.resize(NE);
  for (DagEdge &E : N.Edges) {
    if (!decodePhase(R, E.Phase))
      return false;
    E.To = R.u32();
  }
  N.Weight = R.u64();
  return R.ok();
}

void encodeDiagnostic(ByteWriter &W, const PhaseDiagnostic &D) {
  W.u8(static_cast<uint8_t>(D.Phase));
  W.str(D.Func);
  W.str(D.Message);
  W.u64(D.Application);
  W.u8(D.Injected);
}

bool decodeDiagnostic(ByteReader &R, PhaseDiagnostic &D) {
  if (!decodePhase(R, D.Phase))
    return false;
  D.Func = R.str();
  D.Message = R.str();
  D.Application = R.u64();
  return decodeBool(R, D.Injected);
}

void encodeFrontierEntry(ByteWriter &W, const FrontierEntry &E) {
  W.u32(E.Node);
  encodeFunction(W, E.Instance);
  W.u64(E.Path.size());
  for (PhaseId P : E.Path)
    W.u8(static_cast<uint8_t>(P));
  encodePhaseState(W, E.State);
  W.u16(E.IncomingMask);
  W.u32(E.Parent);
  W.u8(static_cast<uint8_t>(E.ViaPhase));
  W.u64(E.Sequences);
}

bool decodeFrontierEntry(ByteReader &R, FrontierEntry &E) {
  E.Node = R.u32();
  if (!decodeFunction(R, E.Instance))
    return false;
  size_t NP;
  if (!decodeCount(R, NP))
    return false;
  E.Path.resize(NP);
  for (PhaseId &P : E.Path)
    if (!decodePhase(R, P))
      return false;
  if (!decodePhaseState(R, E.State))
    return false;
  E.IncomingMask = R.u16();
  E.Parent = R.u32();
  if (!decodePhase(R, E.ViaPhase))
    return false;
  E.Sequences = R.u64();
  return R.ok();
}

} // namespace

// --- public codecs ---------------------------------------------------------

void encodeFunction(ByteWriter &W, const Function &F) {
  W.str(F.Name);
  W.i32(F.NumParams);
  W.u8(F.ReturnsValue);
  W.u64(F.Slots.size());
  for (const StackSlot &S : F.Slots) {
    W.str(S.Name);
    W.i32(S.SizeWords);
    W.u8(S.IsArray);
    W.u8(S.IsParam);
  }
  W.u64(F.Blocks.size());
  for (const BasicBlock &B : F.Blocks) {
    W.i32(B.Label);
    W.u64(B.Insts.size());
    for (const Rtl &I : B.Insts)
      encodeRtl(W, I);
  }
  encodePhaseState(W, F.State);
  W.u32(F.pseudoLimit());
  W.i32(F.labelLimit());
}

bool decodeFunction(ByteReader &R, Function &F) {
  F = Function();
  F.Name = R.str();
  F.NumParams = R.i32();
  if (!decodeBool(R, F.ReturnsValue))
    return false;
  size_t NSlots;
  if (!decodeCount(R, NSlots))
    return false;
  F.Slots.resize(NSlots);
  for (StackSlot &S : F.Slots) {
    S.Name = R.str();
    S.SizeWords = R.i32();
    if (!decodeBool(R, S.IsArray) || !decodeBool(R, S.IsParam))
      return false;
  }
  size_t NBlocks;
  if (!decodeCount(R, NBlocks))
    return false;
  F.Blocks.resize(NBlocks);
  for (BasicBlock &B : F.Blocks) {
    B.Label = R.i32();
    size_t NInsts;
    if (!decodeCount(R, NInsts))
      return false;
    B.Insts.resize(NInsts);
    for (Rtl &I : B.Insts)
      if (!decodeRtl(R, I))
        return false;
  }
  if (!decodePhaseState(R, F.State))
    return false;
  RegNum PseudoLimit = R.u32();
  int32_t LabelLimit = R.i32();
  if (!R.ok())
    return false;
  F.setAllocationCounters(PseudoLimit, LabelLimit);
  return true;
}

void encodeResult(ByteWriter &W, const EnumerationResult &Res) {
  W.u64(Res.Nodes.size());
  for (const DagNode &N : Res.Nodes)
    encodeNode(W, N);
  W.u8(static_cast<uint8_t>(Res.Stop));
  W.u8(Res.Cyclic);
  W.u64(Res.AttemptedPhases);
  W.u64(Res.PhaseApplications);
  W.u32(Res.MaxActiveLength);
  W.u64(Res.Levels.size());
  for (const LevelStat &L : Res.Levels) {
    W.u32(L.Level);
    W.u64(L.NewNodes);
    W.u64(L.ActiveSequences);
    W.u64(L.Attempted);
    W.u64(L.Active);
  }
  W.u64(Res.HashCollisions);
  W.u64(Res.PredictedEdges);
  W.u64(Res.Diagnostics.size());
  for (const PhaseDiagnostic &D : Res.Diagnostics)
    encodeDiagnostic(W, D);
  W.u64(Res.ApproxMemoryBytes);
}

bool decodeResult(ByteReader &R, EnumerationResult &Res) {
  Res = EnumerationResult();
  size_t NNodes;
  if (!decodeCount(R, NNodes))
    return false;
  Res.Nodes.resize(NNodes);
  for (DagNode &N : Res.Nodes)
    if (!decodeNode(R, N))
      return false;
  uint8_t StopV = R.u8();
  if (StopV > static_cast<uint8_t>(StopReason::WorkerCrash)) {
    R.fail();
    return false;
  }
  Res.Stop = static_cast<StopReason>(StopV);
  if (!decodeBool(R, Res.Cyclic))
    return false;
  Res.AttemptedPhases = R.u64();
  Res.PhaseApplications = R.u64();
  Res.MaxActiveLength = R.u32();
  size_t NLevels;
  if (!decodeCount(R, NLevels))
    return false;
  Res.Levels.resize(NLevels);
  for (LevelStat &L : Res.Levels) {
    L.Level = R.u32();
    L.NewNodes = R.u64();
    L.ActiveSequences = R.u64();
    L.Attempted = R.u64();
    L.Active = R.u64();
  }
  Res.HashCollisions = R.u64();
  Res.PredictedEdges = R.u64();
  size_t NDiags;
  if (!decodeCount(R, NDiags))
    return false;
  Res.Diagnostics.resize(NDiags);
  for (PhaseDiagnostic &D : Res.Diagnostics)
    if (!decodeDiagnostic(R, D))
      return false;
  Res.ApproxMemoryBytes = R.u64();
  return R.ok();
}

void encodeCheckpoint(ByteWriter &W, const EnumerationCheckpoint &C) {
  W.u8(C.Valid);
  encodeResult(W, C.Partial);
  W.u64(C.Frontier.size());
  for (const FrontierEntry &E : C.Frontier)
    encodeFrontierEntry(W, E);
  W.u32(C.LevelCounter);
  for (uint64_t Count : C.AppCount)
    W.u64(Count);
  W.u64(C.FrontierBytes);
  W.u8(C.Paranoid);
  W.u64(C.NodeBytes.size());
  for (const std::vector<uint8_t> &B : C.NodeBytes)
    W.blob(B);
}

bool decodeCheckpoint(ByteReader &R, EnumerationCheckpoint &C) {
  C = EnumerationCheckpoint();
  if (!decodeBool(R, C.Valid))
    return false;
  if (!decodeResult(R, C.Partial))
    return false;
  size_t NFrontier;
  if (!decodeCount(R, NFrontier))
    return false;
  C.Frontier.resize(NFrontier);
  for (FrontierEntry &E : C.Frontier)
    if (!decodeFrontierEntry(R, E))
      return false;
  C.LevelCounter = R.u32();
  for (uint64_t &Count : C.AppCount)
    Count = R.u64();
  C.FrontierBytes = R.u64();
  if (!decodeBool(R, C.Paranoid))
    return false;
  size_t NBytes;
  if (!decodeCount(R, NBytes))
    return false;
  C.NodeBytes.resize(NBytes);
  for (std::vector<uint8_t> &B : C.NodeBytes) {
    B = R.blob();
    if (!R.ok())
      return false;
  }
  return R.ok();
}

const char *workerFailureName(WorkerFailure F) {
  switch (F) {
  case WorkerFailure::Signal:
    return "signal";
  case WorkerFailure::Timeout:
    return "timeout";
  case WorkerFailure::BadExit:
    return "bad-exit";
  case WorkerFailure::Protocol:
    return "protocol";
  }
  return "?";
}

void encodeQuarantine(ByteWriter &W, const QuarantineRecord &Q) {
  W.u8(static_cast<uint8_t>(Q.Failure));
  W.i32(Q.Signal);
  W.i32(Q.ExitCode);
  W.u32(Q.Attempts);
  W.str(Q.Message);
}

bool decodeQuarantine(ByteReader &R, QuarantineRecord &Q) {
  Q = QuarantineRecord();
  uint8_t F = R.u8();
  if (F > static_cast<uint8_t>(WorkerFailure::Protocol)) {
    R.fail();
    return false;
  }
  Q.Failure = static_cast<WorkerFailure>(F);
  Q.Signal = R.i32();
  Q.ExitCode = R.i32();
  Q.Attempts = R.u32();
  Q.Message = R.str();
  return R.ok();
}

void encodeEquivalence(ByteWriter &W, const sem::EquivRecord &E) {
  W.u64(E.VectorSeed);
  W.u32(E.VectorsRequested);
  W.u32(E.NumParams);
  W.u64(E.UsedVectors.size());
  for (uint32_t V : E.UsedVectors)
    W.u32(V);
  W.u64(E.NodeBehavior.size());
  for (uint64_t B : E.NodeBehavior)
    W.u64(B);
  for (uint64_t D : E.NodeDynamic)
    W.u64(D);
  for (uint8_t O : E.NodeAllOk)
    W.u8(O);
}

bool decodeEquivalence(ByteReader &R, sem::EquivRecord &E) {
  E = sem::EquivRecord();
  E.VectorSeed = R.u64();
  E.VectorsRequested = R.u32();
  E.NumParams = R.u32();
  const uint64_t NUsed = R.u64();
  if (NUsed > R.remaining() / 4 || NUsed > E.VectorsRequested) {
    R.fail();
    return false;
  }
  E.UsedVectors.reserve(NUsed);
  for (uint64_t I = 0; I != NUsed; ++I) {
    const uint32_t V = R.u32();
    // Strictly ascending indices into the requested vector set.
    if (V >= E.VectorsRequested ||
        (!E.UsedVectors.empty() && V <= E.UsedVectors.back())) {
      R.fail();
      return false;
    }
    E.UsedVectors.push_back(V);
  }
  const uint64_t NNodes = R.u64();
  // Each node carries a digest (8), a dynamic count (8) and a flag (1).
  if (NNodes > R.remaining() / 17) {
    R.fail();
    return false;
  }
  E.NodeBehavior.reserve(NNodes);
  for (uint64_t I = 0; I != NNodes; ++I)
    E.NodeBehavior.push_back(R.u64());
  E.NodeDynamic.reserve(NNodes);
  for (uint64_t I = 0; I != NNodes; ++I)
    E.NodeDynamic.push_back(R.u64());
  E.NodeAllOk.reserve(NNodes);
  for (uint64_t I = 0; I != NNodes; ++I) {
    const uint8_t O = R.u8();
    if (O > 1) {
      R.fail();
      return false;
    }
    E.NodeAllOk.push_back(O);
  }
  return R.ok();
}

} // namespace store
} // namespace pose
