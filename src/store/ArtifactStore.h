//===- ArtifactStore.h - Persistent enumeration artifact store -*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A directory of versioned, checksummed enumeration artifacts: completed
/// DAGs (\ref ArtifactKind::Result), resumable checkpoints of interrupted
/// runs (\ref ArtifactKind::Checkpoint), and quarantine records of jobs
/// whose out-of-process workers kept crashing
/// (\ref ArtifactKind::Quarantine). Exhaustive
/// enumerations are expensive — hours for the larger functions of the
/// paper's benchmarks — while the analyses that consume them (interaction
/// mining, the probabilistic compiler, DOT export) are cheap; the store
/// decouples the two, and lets a run killed by a deadline or memory
/// budget continue in a later process with a byte-identical final DAG.
///
/// Every artifact is keyed by the canonical hash triple of the
/// *unoptimized* function plus a fingerprint of the DAG-affecting
/// configuration, and framed with a magic string, a format version, a
/// CRC-32 of the payload, and a CRC-32 of the header itself (so a flipped
/// bit anywhere in the file — header fields included — is detectable
/// without knowing what the field should say, which is what lets
/// `posec --fsck` re-verify a store offline). A lookup that finds a file
/// with the wrong version, key, fingerprint, or checksum reports exactly
/// what mismatched, with the byte offset and the expected-vs-actual
/// values (\ref LoadStatus::Rejected) — a stale or corrupt artifact is
/// never silently reused. Writes go through a temporary file and an
/// atomic rename via the injectable \ref StoreIo layer, so a crash
/// mid-write leaves either the old artifact or none; write failures
/// carry errno context and unlink their temp file.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_STORE_ARTIFACTSTORE_H
#define POSE_STORE_ARTIFACTSTORE_H

#include "src/core/Enumerator.h"
#include "src/store/Quarantine.h"
#include "src/support/FaultFs.h"

#include <string>
#include <vector>

namespace pose {
namespace sem {
struct EquivRecord;
} // namespace sem
namespace store {

/// Bumped whenever the serialized encoding (Serialize.cpp) or the frame
/// layout changes; artifacts written by any other version are rejected.
/// Version 2: StopReason gained WorkerCrash (wider encoded range) and the
/// store gained quarantine records.
/// Version 3: canonical serialization widened the per-instruction arg
/// count from uint8_t to uint32_t, changing every hash triple (and with
/// it the artifact keys stored artifacts were computed under).
/// Version 4: the frame gained a trailing header CRC-32, making every
/// header field (including the config fingerprint, which no cross-check
/// covers) verifiable by --fsck without an expected value to compare to.
/// Version 5: the store gained equivalence records (semantic bucket sets
/// per DAG), and configFingerprint started mixing the fault *kind* of
/// non-crash injected faults so wrong-code plans key separately from
/// verifier plans.
constexpr uint32_t kFormatVersion = 5;

/// What an artifact file contains.
enum class ArtifactKind : uint32_t {
  Result = 1,      ///< A finished EnumerationResult (any stop reason).
  Checkpoint = 2,  ///< A resumable EnumerationCheckpoint.
  Quarantine = 3,  ///< A QuarantineRecord for a crashing worker job.
  Equivalence = 4, ///< A sem::EquivRecord: behavior digests per DAG node.
};

/// File-name suffix and report name of \p K ("result", "checkpoint",
/// "quarantine", "equiv").
const char *artifactKindName(ArtifactKind K);

/// Size of the fixed frame header: magic, version, kind, root triple,
/// fingerprint, payload size, payload CRC, header CRC.
constexpr size_t kFrameHeaderSize = 8 + 4 + 4 + 12 + 8 + 8 + 4 + 4;

/// The decoded frame header of an artifact file.
struct ArtifactFrame {
  uint32_t Version = 0;
  uint32_t RawKind = 0; ///< Validated to name an ArtifactKind.
  HashTriple Root;
  uint64_t Fingerprint = 0;
  uint64_t PayloadSize = 0;
  uint32_t PayloadCrc = 0;
};

/// Outcome of a structural frame check.
enum class FrameVerdict {
  Ok,        ///< Frame and payload verified; \ref ArtifactFrame valid.
  Truncated, ///< Shorter than a header, or than the payload it promises
             ///< (a torn write).
  Corrupt,   ///< Structurally damaged: bad magic, version, header CRC,
             ///< unknown kind, trailing bytes, or payload CRC mismatch.
};

/// Structurally validates \p Bytes as one artifact file: magic, format
/// version, header CRC, known kind, payload length against the file
/// size, payload CRC. The key and fingerprint are decoded into \p Out
/// but not judged — callers with expectations (readArtifact) compare
/// them, callers without (fsck, merge) trust the header CRC. On failure
/// \p Error holds a diagnostic naming the byte offset and the
/// expected-vs-actual values.
FrameVerdict inspectFrame(const std::vector<uint8_t> &Bytes,
                          ArtifactFrame &Out, std::string &Error);

/// Fingerprint of the EnumeratorConfig fields that determine the DAG:
/// budgets, pruning switches, the trained independence matrix, verifier
/// and fault-injection settings. Execution-only knobs (Jobs, DeadlineMs,
/// MaxMemoryBytes, the stop token) are excluded on purpose — a DAG
/// enumerated with four workers under a deadline is the same DAG, and a
/// resumed run may legitimately use different resources than the run that
/// wrote the checkpoint. Crash-class injected faults (FaultKind::Segv and
/// friends) are execution-only too: they kill the process instead of
/// shaping the DAG, so a run with crash injection shares artifacts —
/// checkpoints, results, quarantine records — with a clean run.
uint64_t configFingerprint(const EnumeratorConfig &Config);

/// Fingerprint for an equivalence record: the DAG's config fingerprint
/// extended with the test-vector seed and count. A record computed under
/// different vectors is a different artifact — behavior digests are only
/// comparable within one vector set.
uint64_t equivFingerprint(uint64_t ConfigFp, uint64_t VectorSeed,
                          uint64_t VectorCount);

/// Outcome of a store lookup.
enum class LoadStatus {
  Hit,      ///< Artifact found, validated, and decoded.
  Miss,     ///< No artifact for this key (not an error).
  Rejected, ///< An artifact exists but failed validation; see the error
            ///< string. It must be regenerated, never used.
};

/// The store: a flat directory, one file per (root, kind) key.
class ArtifactStore {
public:
  /// \p Io routes every mutating filesystem operation; null uses
  /// \ref processStoreIo() (the real filesystem unless posec installed a
  /// --fault-io injector).
  explicit ArtifactStore(std::string Directory, StoreIo *Io = nullptr);

  /// Creates the store directory if needed. Returns false (with \p Error
  /// set) when it cannot be created.
  bool prepare(std::string &Error) const;

  const std::string &directory() const { return Dir; }

  /// Path of the artifact file for \p Root and \p Kind.
  std::string pathFor(const HashTriple &Root, ArtifactKind Kind) const;

  /// Removes `*.pose.tmp` leftovers of writers that died between the
  /// temp write and the committing rename, returning the paths removed.
  /// Only safe when no writer can be mid-write in this store: the
  /// supervisor calls it before spawning any worker, fsck --repair on an
  /// offline store. Never called from workers — a sibling's in-flight
  /// temp file must not be reclaimed under it.
  std::vector<std::string> reclaimTmp() const;

  /// Persists \p Res for \p Root. Returns false with \p Error set on I/O
  /// failure. A finished result supersedes any checkpoint or quarantine
  /// record for the same key, which are removed.
  bool saveResult(const HashTriple &Root, uint64_t Fingerprint,
                  const EnumerationResult &Res, std::string &Error) const;

  /// Persists \p C for \p Root (C.Valid must be true).
  bool saveCheckpoint(const HashTriple &Root, uint64_t Fingerprint,
                      const EnumerationCheckpoint &C,
                      std::string &Error) const;

  /// Looks up a finished result for (\p Root, \p Fingerprint).
  LoadStatus loadResult(const HashTriple &Root, uint64_t Fingerprint,
                        EnumerationResult &Res, std::string &Error) const;

  /// Looks up a resumable checkpoint for (\p Root, \p Fingerprint).
  LoadStatus loadCheckpoint(const HashTriple &Root, uint64_t Fingerprint,
                            EnumerationCheckpoint &C,
                            std::string &Error) const;

  /// Removes the checkpoint for \p Root, if any (used after the resumed
  /// run finishes).
  void removeCheckpoint(const HashTriple &Root) const;

  /// Persists a quarantine record: this (root, fingerprint) job's worker
  /// keeps dying and must be skipped until something changes.
  bool saveQuarantine(const HashTriple &Root, uint64_t Fingerprint,
                      const QuarantineRecord &Q, std::string &Error) const;

  /// Looks up a quarantine record for (\p Root, \p Fingerprint).
  LoadStatus loadQuarantine(const HashTriple &Root, uint64_t Fingerprint,
                            QuarantineRecord &Q, std::string &Error) const;

  /// Removes the quarantine record for \p Root, if any (the job finished
  /// after all, or the operator cleared it).
  void removeQuarantine(const HashTriple &Root) const;

  /// Persists the equivalence record for (\p Root, \p Fingerprint); pass
  /// equivFingerprint(), not the raw config fingerprint.
  bool saveEquivalence(const HashTriple &Root, uint64_t Fingerprint,
                       const sem::EquivRecord &E, std::string &Error) const;

  /// Looks up an equivalence record for (\p Root, \p Fingerprint).
  LoadStatus loadEquivalence(const HashTriple &Root, uint64_t Fingerprint,
                             sem::EquivRecord &E, std::string &Error) const;

  /// Removes the equivalence record for \p Root, if any.
  void removeEquivalence(const HashTriple &Root) const;

private:
  bool writeArtifact(const HashTriple &Root, ArtifactKind Kind,
                     uint64_t Fingerprint, const std::vector<uint8_t> &Payload,
                     std::string &Error) const;
  LoadStatus readArtifact(const HashTriple &Root, ArtifactKind Kind,
                          uint64_t Fingerprint, std::vector<uint8_t> &Payload,
                          std::string &Error) const;

  std::string Dir;
  StoreIo *Io;
};

} // namespace store
} // namespace pose

#endif // POSE_STORE_ARTIFACTSTORE_H
