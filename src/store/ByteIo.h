//===- ByteIo.h - Bounded little-endian byte streams -----------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The primitive encode/decode layer of the artifact store: an appending
/// little-endian writer and a bounds-checked reader. The reader never
/// throws and never reads past the end — any overrun latches a failure
/// flag and yields zeros, so decoders can run to completion and make one
/// ok() check at the end. Strings and blobs carry explicit lengths; a
/// length that exceeds the remaining input fails immediately instead of
/// allocating attacker-controlled amounts of memory.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_STORE_BYTEIO_H
#define POSE_STORE_BYTEIO_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace pose {

/// Appending little-endian encoder.
class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(V); }
  void u16(uint16_t V) { le(V, 2); }
  void u32(uint32_t V) { le(V, 4); }
  void u64(uint64_t V) { le(V, 8); }
  void i32(int32_t V) { u32(static_cast<uint32_t>(V)); }
  void f64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    u64(Bits);
  }
  void str(const std::string &S) {
    u64(S.size());
    Buf.insert(Buf.end(), S.begin(), S.end());
  }
  void blob(const std::vector<uint8_t> &B) {
    u64(B.size());
    Buf.insert(Buf.end(), B.begin(), B.end());
  }

  const std::vector<uint8_t> &bytes() const { return Buf; }
  std::vector<uint8_t> take() { return std::move(Buf); }

private:
  void le(uint64_t V, int Bytes) {
    for (int I = 0; I != Bytes; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }

  std::vector<uint8_t> Buf;
};

/// Bounds-checked little-endian decoder over a borrowed buffer.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}
  explicit ByteReader(const std::vector<uint8_t> &B)
      : Data(B.data()), Size(B.size()) {}

  uint8_t u8() { return static_cast<uint8_t>(le(1)); }
  uint16_t u16() { return static_cast<uint16_t>(le(2)); }
  uint32_t u32() { return static_cast<uint32_t>(le(4)); }
  uint64_t u64() { return le(8); }
  int32_t i32() { return static_cast<int32_t>(u32()); }
  double f64() {
    uint64_t Bits = u64();
    double V;
    std::memcpy(&V, &Bits, sizeof(V));
    return V;
  }
  std::string str() {
    uint64_t N = u64();
    if (N > Size - Pos || Failed) {
      Failed = true;
      return std::string();
    }
    std::string S(reinterpret_cast<const char *>(Data + Pos),
                  static_cast<size_t>(N));
    Pos += static_cast<size_t>(N);
    return S;
  }
  std::vector<uint8_t> blob() {
    uint64_t N = u64();
    if (N > Size - Pos || Failed) {
      Failed = true;
      return {};
    }
    std::vector<uint8_t> B(Data + Pos, Data + Pos + N);
    Pos += static_cast<size_t>(N);
    return B;
  }

  /// True while no read has overrun the buffer.
  bool ok() const { return !Failed; }
  /// True when every byte has been consumed (decoders should require
  /// this — trailing garbage means a corrupt or mismatched artifact).
  bool atEnd() const { return Pos == Size; }
  size_t remaining() const { return Size - Pos; }

  /// Marks the stream failed (decoders use this for semantic validation
  /// failures, e.g. an out-of-range enum value).
  void fail() { Failed = true; }

private:
  uint64_t le(int Bytes) {
    if (static_cast<size_t>(Bytes) > Size - Pos || Failed) {
      Failed = true;
      return 0;
    }
    uint64_t V = 0;
    for (int I = 0; I != Bytes; ++I)
      V |= static_cast<uint64_t>(Data[Pos + I]) << (8 * I);
    Pos += Bytes;
    return V;
  }

  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace pose

#endif // POSE_STORE_BYTEIO_H
