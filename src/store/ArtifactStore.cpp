//===- ArtifactStore.cpp - Persistent enumeration artifact store ----------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/store/ArtifactStore.h"

#include "src/store/ByteIo.h"
#include "src/store/Serialize.h"
#include "src/support/Crc32.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace fs = std::filesystem;

namespace pose {
namespace store {

namespace {

// File frame: magic, format version, kind, root triple, config
// fingerprint, payload length, payload CRC-32, header CRC-32 (over
// everything before it), payload bytes.
constexpr char kMagic[8] = {'P', 'O', 'S', 'E', 'A', 'R', 'T', '\n'};
// Byte offsets of the header fields, quoted in diagnostics so a corrupt
// file names where it diverged.
constexpr size_t kOffVersion = 8;
constexpr size_t kOffKind = 12;
constexpr size_t kOffRoot = 16;
constexpr size_t kOffFingerprint = 28;
constexpr size_t kOffPayloadSize = 36;
constexpr size_t kOffPayloadCrc = 44;
constexpr size_t kOffHeaderCrc = 48;
static_assert(kFrameHeaderSize == kOffHeaderCrc + 4,
              "frame layout and offsets out of sync");

uint64_t mix(uint64_t H, uint64_t V) {
  H ^= V;
  H *= 0x100000001B3ull; // FNV-1a prime, widened.
  return H;
}

std::string hex32(uint32_t V) {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "0x%08x", V);
  return Buf;
}

std::string hex64(uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "0x%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

std::string tripleText(const HashTriple &T) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%08x-%08x-%08x", T.InstCount, T.ByteSum,
                T.Crc);
  return Buf;
}

std::string errnoText(int Err) {
  if (Err == 0)
    return "unknown I/O error";
  return std::string(std::strerror(Err)) + " (errno " +
         std::to_string(Err) + ")";
}

} // namespace

const char *artifactKindName(ArtifactKind K) {
  switch (K) {
  case ArtifactKind::Result:
    return "result";
  case ArtifactKind::Checkpoint:
    return "checkpoint";
  case ArtifactKind::Quarantine:
    return "quarantine";
  case ArtifactKind::Equivalence:
    return "equiv";
  }
  return "?";
}

uint64_t configFingerprint(const EnumeratorConfig &Config) {
  uint64_t H = 0xCBF29CE484222325ull;
  H = mix(H, Config.MaxLevelSequences);
  H = mix(H, Config.MaxTotalNodes);
  H = mix(H, Config.ParanoidCompare);
  H = mix(H, Config.NaiveReapply);
  H = mix(H, Config.RemapRegisters);
  H = mix(H, Config.UseIndependencePruning);
  for (int X = 0; X != NumPhases; ++X)
    for (int Y = 0; Y != NumPhases; ++Y)
      H = mix(H, Config.TrainedIndependence[X][Y]);
  H = mix(H, Config.VerifyIr);
  // Injected verifier faults prune edges and wrong-code faults mutate
  // instances, so both shape the DAG like any other config switch; an
  // empty plan fingerprints like no plan. Crash-class faults kill the
  // process instead of shaping the DAG — they are execution-only and
  // excluded, so a crash-injected worker reads and writes the same
  // artifacts as a clean run of the same job.
  if (Config.Faults)
    for (const FaultPlan::Fault &F : Config.Faults->Faults) {
      if (isCrashKind(F.Kind))
        continue;
      H = mix(H, static_cast<uint64_t>(F.Phase));
      H = mix(H, F.Application);
      H = mix(H, static_cast<uint64_t>(F.Kind));
    }
  return H;
}

uint64_t equivFingerprint(uint64_t ConfigFp, uint64_t VectorSeed,
                          uint64_t VectorCount) {
  uint64_t H = ConfigFp;
  H = mix(H, VectorSeed);
  H = mix(H, VectorCount);
  return H;
}

ArtifactStore::ArtifactStore(std::string Directory, StoreIo *Io)
    : Dir(std::move(Directory)), Io(Io ? Io : &processStoreIo()) {}

bool ArtifactStore::prepare(std::string &Error) const {
  std::error_code EC;
  fs::create_directories(Dir, EC);
  if (EC) {
    Error = "cannot create store directory '" + Dir + "': " + EC.message();
    return false;
  }
  return true;
}

std::string ArtifactStore::pathFor(const HashTriple &Root,
                                   ArtifactKind Kind) const {
  char Name[64];
  std::snprintf(Name, sizeof(Name), "%08x-%08x-%08x.%s.pose", Root.InstCount,
                Root.ByteSum, Root.Crc, artifactKindName(Kind));
  return (fs::path(Dir) / Name).string();
}

std::vector<std::string> ArtifactStore::reclaimTmp() const {
  std::vector<std::string> Removed;
  std::error_code EC;
  for (fs::directory_iterator It(Dir, EC), End; !EC && It != End;
       It.increment(EC)) {
    if (!It->is_regular_file(EC))
      continue;
    const std::string Name = It->path().filename().string();
    constexpr const char *Suffix = ".pose.tmp";
    const size_t SufLen = std::strlen(Suffix);
    if (Name.size() <= SufLen ||
        Name.compare(Name.size() - SufLen, SufLen, Suffix) != 0)
      continue;
    if (Io->remove(It->path().string()))
      Removed.push_back(It->path().string());
  }
  std::sort(Removed.begin(), Removed.end());
  return Removed;
}

bool ArtifactStore::writeArtifact(const HashTriple &Root, ArtifactKind Kind,
                                  uint64_t Fingerprint,
                                  const std::vector<uint8_t> &Payload,
                                  std::string &Error) const {
  ByteWriter W;
  for (char C : kMagic)
    W.u8(static_cast<uint8_t>(C));
  W.u32(kFormatVersion);
  W.u32(static_cast<uint32_t>(Kind));
  W.u32(Root.InstCount);
  W.u32(Root.ByteSum);
  W.u32(Root.Crc);
  W.u64(Fingerprint);
  W.u64(Payload.size());
  W.u32(crc32(Payload));
  W.u32(crc32(W.bytes())); // Header CRC over everything above.
  std::vector<uint8_t> File = W.take();
  File.insert(File.end(), Payload.begin(), Payload.end());

  const std::string Path = pathFor(Root, Kind);
  const std::string Tmp = Path + ".tmp";
  int Err = 0;
  size_t Written = 0;
  if (!Io->writeFile(Tmp, File.data(), File.size(), Err, Written)) {
    Error = "cannot write '" + Tmp + "': " + errnoText(Err) + " after " +
            std::to_string(Written) + " of " + std::to_string(File.size()) +
            " bytes";
    // A failed write must not leave its torn temp file behind for the
    // next reader to trip over; after a genuine crash nothing runs here
    // and --fsck / the supervisor's startup sweep reclaim the orphan.
    Io->remove(Tmp);
    return false;
  }
  if (!Io->rename(Tmp, Path, Err)) {
    Error = "cannot rename '" + Tmp + "' to '" + Path +
            "': " + errnoText(Err);
    Io->remove(Tmp);
    return false;
  }
  return true;
}

FrameVerdict inspectFrame(const std::vector<uint8_t> &Bytes,
                          ArtifactFrame &Out, std::string &Error) {
  if (Bytes.size() < kFrameHeaderSize) {
    Error = "is truncated: " + std::to_string(Bytes.size()) +
            " bytes, a frame header is " +
            std::to_string(kFrameHeaderSize);
    return FrameVerdict::Truncated;
  }
  ByteReader R(Bytes);
  for (size_t I = 0; I != sizeof(kMagic); ++I) {
    const uint8_t Got = R.u8();
    const uint8_t Want = static_cast<uint8_t>(kMagic[I]);
    if (Got != Want) {
      Error = "is not a POSE artifact (bad magic at offset " +
              std::to_string(I) + ": byte " + hex32(Got) + ", expected " +
              hex32(Want) + ")";
      return FrameVerdict::Corrupt;
    }
  }
  Out.Version = R.u32();
  if (Out.Version != kFormatVersion) {
    Error = "has format version " + std::to_string(Out.Version) +
            " (at offset " + std::to_string(kOffVersion) +
            "), this build reads version " + std::to_string(kFormatVersion);
    return FrameVerdict::Corrupt;
  }
  Out.RawKind = R.u32();
  Out.Root.InstCount = R.u32();
  Out.Root.ByteSum = R.u32();
  Out.Root.Crc = R.u32();
  Out.Fingerprint = R.u64();
  Out.PayloadSize = R.u64();
  Out.PayloadCrc = R.u32();
  const uint32_t HeaderCrc = R.u32();
  const uint32_t ComputedHeaderCrc = crc32(Bytes.data(), kOffHeaderCrc);
  if (HeaderCrc != ComputedHeaderCrc) {
    Error = "header checksum mismatch at offset " +
            std::to_string(kOffHeaderCrc) + ": stored " + hex32(HeaderCrc) +
            ", computed " + hex32(ComputedHeaderCrc);
    return FrameVerdict::Corrupt;
  }
  if (Out.RawKind < static_cast<uint32_t>(ArtifactKind::Result) ||
      Out.RawKind > static_cast<uint32_t>(ArtifactKind::Equivalence)) {
    Error = "has unknown artifact kind " + std::to_string(Out.RawKind) +
            " at offset " + std::to_string(kOffKind);
    return FrameVerdict::Corrupt;
  }
  const uint64_t Held = Bytes.size() - kFrameHeaderSize;
  if (Out.PayloadSize != Held) {
    Error = "payload length mismatch at offset " +
            std::to_string(kOffPayloadSize) + ": header promises " +
            std::to_string(Out.PayloadSize) + " payload bytes, file holds " +
            std::to_string(Held);
    return Held < Out.PayloadSize ? FrameVerdict::Truncated
                                  : FrameVerdict::Corrupt;
  }
  const uint32_t ComputedPayloadCrc = crc32(
      Bytes.data() + kFrameHeaderSize, Bytes.size() - kFrameHeaderSize);
  if (Out.PayloadCrc != ComputedPayloadCrc) {
    Error = "payload checksum mismatch at offset " +
            std::to_string(kOffPayloadCrc) + ": stored " +
            hex32(Out.PayloadCrc) + ", computed " +
            hex32(ComputedPayloadCrc);
    return FrameVerdict::Corrupt;
  }
  return FrameVerdict::Ok;
}

LoadStatus ArtifactStore::readArtifact(const HashTriple &Root,
                                       ArtifactKind Kind, uint64_t Fingerprint,
                                       std::vector<uint8_t> &Payload,
                                       std::string &Error) const {
  const std::string Path = pathFor(Root, Kind);
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return LoadStatus::Miss;
  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                             std::istreambuf_iterator<char>());
  if (!In.good() && !In.eof()) {
    Error = "cannot read '" + Path + "'";
    return LoadStatus::Rejected;
  }
  ArtifactFrame F;
  std::string Why;
  if (inspectFrame(Bytes, F, Why) != FrameVerdict::Ok) {
    Error = "'" + Path + "' " + Why;
    return LoadStatus::Rejected;
  }
  if (F.RawKind != static_cast<uint32_t>(Kind)) {
    Error = "'" + Path + "' holds a different artifact kind at offset " +
            std::to_string(kOffKind) + ": stored " +
            artifactKindName(static_cast<ArtifactKind>(F.RawKind)) +
            ", expected " + artifactKindName(Kind);
    return LoadStatus::Rejected;
  }
  if (F.Root != Root) {
    Error = "'" + Path +
            "' is keyed to a different root function at offset " +
            std::to_string(kOffRoot) + ": stored " + tripleText(F.Root) +
            ", expected " + tripleText(Root);
    return LoadStatus::Rejected;
  }
  if (F.Fingerprint != Fingerprint) {
    Error = "'" + Path +
            "' was produced under a different enumerator configuration "
            "(fingerprint at offset " +
            std::to_string(kOffFingerprint) + ": stored " +
            hex64(F.Fingerprint) + ", expected " + hex64(Fingerprint) + ")";
    return LoadStatus::Rejected;
  }
  Payload.assign(Bytes.begin() + kFrameHeaderSize, Bytes.end());
  return LoadStatus::Hit;
}

bool ArtifactStore::saveResult(const HashTriple &Root, uint64_t Fingerprint,
                               const EnumerationResult &Res,
                               std::string &Error) const {
  ByteWriter W;
  encodeResult(W, Res);
  if (!writeArtifact(Root, ArtifactKind::Result, Fingerprint, W.bytes(),
                     Error))
    return false;
  removeCheckpoint(Root);
  removeQuarantine(Root);
  // A fresh result invalidates any equivalence record: the behavior
  // digests are indexed by the DAG's node ids.
  removeEquivalence(Root);
  return true;
}

bool ArtifactStore::saveCheckpoint(const HashTriple &Root,
                                   uint64_t Fingerprint,
                                   const EnumerationCheckpoint &C,
                                   std::string &Error) const {
  ByteWriter W;
  encodeCheckpoint(W, C);
  return writeArtifact(Root, ArtifactKind::Checkpoint, Fingerprint, W.bytes(),
                       Error);
}

LoadStatus ArtifactStore::loadResult(const HashTriple &Root,
                                     uint64_t Fingerprint,
                                     EnumerationResult &Res,
                                     std::string &Error) const {
  std::vector<uint8_t> Payload;
  LoadStatus S =
      readArtifact(Root, ArtifactKind::Result, Fingerprint, Payload, Error);
  if (S != LoadStatus::Hit)
    return S;
  ByteReader R(Payload);
  if (!decodeResult(R, Res) || !R.atEnd()) {
    Error = "'" + pathFor(Root, ArtifactKind::Result) +
            "' payload does not decode (file damaged)";
    return LoadStatus::Rejected;
  }
  return LoadStatus::Hit;
}

LoadStatus ArtifactStore::loadCheckpoint(const HashTriple &Root,
                                         uint64_t Fingerprint,
                                         EnumerationCheckpoint &C,
                                         std::string &Error) const {
  std::vector<uint8_t> Payload;
  LoadStatus S = readArtifact(Root, ArtifactKind::Checkpoint, Fingerprint,
                              Payload, Error);
  if (S != LoadStatus::Hit)
    return S;
  ByteReader R(Payload);
  if (!decodeCheckpoint(R, C) || !R.atEnd() || !C.Valid) {
    Error = "'" + pathFor(Root, ArtifactKind::Checkpoint) +
            "' payload does not decode (file damaged)";
    return LoadStatus::Rejected;
  }
  return LoadStatus::Hit;
}

void ArtifactStore::removeCheckpoint(const HashTriple &Root) const {
  Io->remove(pathFor(Root, ArtifactKind::Checkpoint));
}

bool ArtifactStore::saveQuarantine(const HashTriple &Root,
                                   uint64_t Fingerprint,
                                   const QuarantineRecord &Q,
                                   std::string &Error) const {
  ByteWriter W;
  encodeQuarantine(W, Q);
  return writeArtifact(Root, ArtifactKind::Quarantine, Fingerprint, W.bytes(),
                       Error);
}

LoadStatus ArtifactStore::loadQuarantine(const HashTriple &Root,
                                         uint64_t Fingerprint,
                                         QuarantineRecord &Q,
                                         std::string &Error) const {
  std::vector<uint8_t> Payload;
  LoadStatus S = readArtifact(Root, ArtifactKind::Quarantine, Fingerprint,
                              Payload, Error);
  if (S != LoadStatus::Hit)
    return S;
  ByteReader R(Payload);
  if (!decodeQuarantine(R, Q) || !R.atEnd()) {
    Error = "'" + pathFor(Root, ArtifactKind::Quarantine) +
            "' payload does not decode (file damaged)";
    return LoadStatus::Rejected;
  }
  return LoadStatus::Hit;
}

void ArtifactStore::removeQuarantine(const HashTriple &Root) const {
  Io->remove(pathFor(Root, ArtifactKind::Quarantine));
}

bool ArtifactStore::saveEquivalence(const HashTriple &Root,
                                    uint64_t Fingerprint,
                                    const sem::EquivRecord &E,
                                    std::string &Error) const {
  ByteWriter W;
  encodeEquivalence(W, E);
  return writeArtifact(Root, ArtifactKind::Equivalence, Fingerprint,
                       W.bytes(), Error);
}

LoadStatus ArtifactStore::loadEquivalence(const HashTriple &Root,
                                          uint64_t Fingerprint,
                                          sem::EquivRecord &E,
                                          std::string &Error) const {
  std::vector<uint8_t> Payload;
  LoadStatus S = readArtifact(Root, ArtifactKind::Equivalence, Fingerprint,
                              Payload, Error);
  if (S != LoadStatus::Hit)
    return S;
  ByteReader R(Payload);
  if (!decodeEquivalence(R, E) || !R.atEnd()) {
    Error = "'" + pathFor(Root, ArtifactKind::Equivalence) +
            "' payload does not decode (file damaged)";
    return LoadStatus::Rejected;
  }
  return LoadStatus::Hit;
}

void ArtifactStore::removeEquivalence(const HashTriple &Root) const {
  Io->remove(pathFor(Root, ArtifactKind::Equivalence));
}

} // namespace store
} // namespace pose
