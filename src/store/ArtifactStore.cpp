//===- ArtifactStore.cpp - Persistent enumeration artifact store ----------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/store/ArtifactStore.h"

#include "src/store/ByteIo.h"
#include "src/store/Serialize.h"
#include "src/support/Crc32.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace fs = std::filesystem;

namespace pose {
namespace store {

namespace {

// File frame: magic, format version, kind, root triple, config
// fingerprint, payload length, payload CRC-32, payload bytes.
constexpr char kMagic[8] = {'P', 'O', 'S', 'E', 'A', 'R', 'T', '\n'};
constexpr size_t kHeaderSize = 8 + 4 + 4 + 12 + 8 + 8 + 4;

uint64_t mix(uint64_t H, uint64_t V) {
  H ^= V;
  H *= 0x100000001B3ull; // FNV-1a prime, widened.
  return H;
}

const char *kindSuffix(ArtifactKind K) {
  switch (K) {
  case ArtifactKind::Result:
    return "result";
  case ArtifactKind::Checkpoint:
    return "checkpoint";
  case ArtifactKind::Quarantine:
    return "quarantine";
  }
  return "?";
}

} // namespace

uint64_t configFingerprint(const EnumeratorConfig &Config) {
  uint64_t H = 0xCBF29CE484222325ull;
  H = mix(H, Config.MaxLevelSequences);
  H = mix(H, Config.MaxTotalNodes);
  H = mix(H, Config.ParanoidCompare);
  H = mix(H, Config.NaiveReapply);
  H = mix(H, Config.RemapRegisters);
  H = mix(H, Config.UseIndependencePruning);
  for (int X = 0; X != NumPhases; ++X)
    for (int Y = 0; Y != NumPhases; ++Y)
      H = mix(H, Config.TrainedIndependence[X][Y]);
  H = mix(H, Config.VerifyIr);
  // Injected verifier faults prune edges, so they shape the DAG like any
  // other config switch; an empty plan fingerprints like no plan. Crash-
  // class faults kill the process instead of shaping the DAG — they are
  // execution-only and excluded, so a crash-injected worker reads and
  // writes the same artifacts as a clean run of the same job.
  if (Config.Faults)
    for (const FaultPlan::Fault &F : Config.Faults->Faults) {
      if (F.Kind != FaultKind::Verifier)
        continue;
      H = mix(H, static_cast<uint64_t>(F.Phase));
      H = mix(H, F.Application);
    }
  return H;
}

ArtifactStore::ArtifactStore(std::string Directory)
    : Dir(std::move(Directory)) {}

bool ArtifactStore::prepare(std::string &Error) const {
  std::error_code EC;
  fs::create_directories(Dir, EC);
  if (EC) {
    Error = "cannot create store directory '" + Dir + "': " + EC.message();
    return false;
  }
  return true;
}

std::string ArtifactStore::pathFor(const HashTriple &Root,
                                   ArtifactKind Kind) const {
  char Name[64];
  std::snprintf(Name, sizeof(Name), "%08x-%08x-%08x.%s.pose", Root.InstCount,
                Root.ByteSum, Root.Crc, kindSuffix(Kind));
  return (fs::path(Dir) / Name).string();
}

bool ArtifactStore::writeArtifact(const HashTriple &Root, ArtifactKind Kind,
                                  uint64_t Fingerprint,
                                  const std::vector<uint8_t> &Payload,
                                  std::string &Error) const {
  ByteWriter W;
  for (char C : kMagic)
    W.u8(static_cast<uint8_t>(C));
  W.u32(kFormatVersion);
  W.u32(static_cast<uint32_t>(Kind));
  W.u32(Root.InstCount);
  W.u32(Root.ByteSum);
  W.u32(Root.Crc);
  W.u64(Fingerprint);
  W.u64(Payload.size());
  W.u32(crc32(Payload));

  const std::string Path = pathFor(Root, Kind);
  const std::string Tmp = Path + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out) {
      Error = "cannot open '" + Tmp + "' for writing";
      return false;
    }
    Out.write(reinterpret_cast<const char *>(W.bytes().data()),
              static_cast<std::streamsize>(W.bytes().size()));
    Out.write(reinterpret_cast<const char *>(Payload.data()),
              static_cast<std::streamsize>(Payload.size()));
    Out.flush();
    if (!Out) {
      Error = "write to '" + Tmp + "' failed";
      return false;
    }
  }
  std::error_code EC;
  fs::rename(Tmp, Path, EC);
  if (EC) {
    Error = "cannot rename '" + Tmp + "' to '" + Path + "': " + EC.message();
    fs::remove(Tmp, EC);
    return false;
  }
  return true;
}

LoadStatus ArtifactStore::readArtifact(const HashTriple &Root,
                                       ArtifactKind Kind, uint64_t Fingerprint,
                                       std::vector<uint8_t> &Payload,
                                       std::string &Error) const {
  const std::string Path = pathFor(Root, Kind);
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return LoadStatus::Miss;
  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                             std::istreambuf_iterator<char>());
  if (!In.good() && !In.eof()) {
    Error = "cannot read '" + Path + "'";
    return LoadStatus::Rejected;
  }
  if (Bytes.size() < kHeaderSize) {
    Error = "'" + Path + "' is truncated (no complete header)";
    return LoadStatus::Rejected;
  }

  ByteReader R(Bytes);
  for (char C : kMagic)
    if (R.u8() != static_cast<uint8_t>(C)) {
      Error = "'" + Path + "' is not a POSE artifact (bad magic)";
      return LoadStatus::Rejected;
    }
  uint32_t Version = R.u32();
  if (Version != kFormatVersion) {
    Error = "'" + Path + "' has format version " + std::to_string(Version) +
            ", this build reads version " + std::to_string(kFormatVersion);
    return LoadStatus::Rejected;
  }
  if (R.u32() != static_cast<uint32_t>(Kind)) {
    Error = "'" + Path + "' holds a different artifact kind";
    return LoadStatus::Rejected;
  }
  HashTriple Stored;
  Stored.InstCount = R.u32();
  Stored.ByteSum = R.u32();
  Stored.Crc = R.u32();
  if (Stored != Root) {
    Error = "'" + Path + "' is keyed to a different root function";
    return LoadStatus::Rejected;
  }
  uint64_t StoredFp = R.u64();
  if (StoredFp != Fingerprint) {
    Error = "'" + Path +
            "' was produced under a different enumerator configuration";
    return LoadStatus::Rejected;
  }
  uint64_t PayloadSize = R.u64();
  uint32_t PayloadCrc = R.u32();
  if (PayloadSize != Bytes.size() - kHeaderSize) {
    Error = "'" + Path + "' payload length mismatch (file damaged)";
    return LoadStatus::Rejected;
  }
  Payload.assign(Bytes.begin() + kHeaderSize, Bytes.end());
  if (crc32(Payload) != PayloadCrc) {
    Error = "'" + Path + "' payload checksum mismatch (file damaged)";
    return LoadStatus::Rejected;
  }
  return LoadStatus::Hit;
}

bool ArtifactStore::saveResult(const HashTriple &Root, uint64_t Fingerprint,
                               const EnumerationResult &Res,
                               std::string &Error) const {
  ByteWriter W;
  encodeResult(W, Res);
  if (!writeArtifact(Root, ArtifactKind::Result, Fingerprint, W.bytes(),
                     Error))
    return false;
  removeCheckpoint(Root);
  removeQuarantine(Root);
  return true;
}

bool ArtifactStore::saveCheckpoint(const HashTriple &Root,
                                   uint64_t Fingerprint,
                                   const EnumerationCheckpoint &C,
                                   std::string &Error) const {
  ByteWriter W;
  encodeCheckpoint(W, C);
  return writeArtifact(Root, ArtifactKind::Checkpoint, Fingerprint, W.bytes(),
                       Error);
}

LoadStatus ArtifactStore::loadResult(const HashTriple &Root,
                                     uint64_t Fingerprint,
                                     EnumerationResult &Res,
                                     std::string &Error) const {
  std::vector<uint8_t> Payload;
  LoadStatus S =
      readArtifact(Root, ArtifactKind::Result, Fingerprint, Payload, Error);
  if (S != LoadStatus::Hit)
    return S;
  ByteReader R(Payload);
  if (!decodeResult(R, Res) || !R.atEnd()) {
    Error = "'" + pathFor(Root, ArtifactKind::Result) +
            "' payload does not decode (file damaged)";
    return LoadStatus::Rejected;
  }
  return LoadStatus::Hit;
}

LoadStatus ArtifactStore::loadCheckpoint(const HashTriple &Root,
                                         uint64_t Fingerprint,
                                         EnumerationCheckpoint &C,
                                         std::string &Error) const {
  std::vector<uint8_t> Payload;
  LoadStatus S = readArtifact(Root, ArtifactKind::Checkpoint, Fingerprint,
                              Payload, Error);
  if (S != LoadStatus::Hit)
    return S;
  ByteReader R(Payload);
  if (!decodeCheckpoint(R, C) || !R.atEnd() || !C.Valid) {
    Error = "'" + pathFor(Root, ArtifactKind::Checkpoint) +
            "' payload does not decode (file damaged)";
    return LoadStatus::Rejected;
  }
  return LoadStatus::Hit;
}

void ArtifactStore::removeCheckpoint(const HashTriple &Root) const {
  std::error_code EC;
  fs::remove(pathFor(Root, ArtifactKind::Checkpoint), EC);
}

bool ArtifactStore::saveQuarantine(const HashTriple &Root,
                                   uint64_t Fingerprint,
                                   const QuarantineRecord &Q,
                                   std::string &Error) const {
  ByteWriter W;
  encodeQuarantine(W, Q);
  return writeArtifact(Root, ArtifactKind::Quarantine, Fingerprint, W.bytes(),
                       Error);
}

LoadStatus ArtifactStore::loadQuarantine(const HashTriple &Root,
                                         uint64_t Fingerprint,
                                         QuarantineRecord &Q,
                                         std::string &Error) const {
  std::vector<uint8_t> Payload;
  LoadStatus S = readArtifact(Root, ArtifactKind::Quarantine, Fingerprint,
                              Payload, Error);
  if (S != LoadStatus::Hit)
    return S;
  ByteReader R(Payload);
  if (!decodeQuarantine(R, Q) || !R.atEnd()) {
    Error = "'" + pathFor(Root, ArtifactKind::Quarantine) +
            "' payload does not decode (file damaged)";
    return LoadStatus::Rejected;
  }
  return LoadStatus::Hit;
}

void ArtifactStore::removeQuarantine(const HashTriple &Root) const {
  std::error_code EC;
  fs::remove(pathFor(Root, ArtifactKind::Quarantine), EC);
}

} // namespace store
} // namespace pose
