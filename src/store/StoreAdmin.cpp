//===- StoreAdmin.cpp - Offline store integrity and merging ---------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/store/StoreAdmin.h"

#include "src/store/ByteIo.h"
#include "src/store/Serialize.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace fs = std::filesystem;

namespace pose {
namespace store {

namespace {

/// Strict lower-case hex: exactly eight digits of [0-9a-f].
bool parseHex32(const std::string &Text, size_t Pos, uint32_t &Out) {
  uint32_t V = 0;
  for (size_t I = 0; I != 8; ++I) {
    const char C = Text[Pos + I];
    uint32_t Digit;
    if (C >= '0' && C <= '9')
      Digit = static_cast<uint32_t>(C - '0');
    else if (C >= 'a' && C <= 'f')
      Digit = static_cast<uint32_t>(C - 'a') + 10;
    else
      return false;
    V = (V << 4) | Digit;
  }
  Out = V;
  return true;
}

bool readFileBytes(const std::string &Path, std::vector<uint8_t> &Bytes) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  Bytes.assign((std::istreambuf_iterator<char>(In)),
               std::istreambuf_iterator<char>());
  return In.good() || In.eof();
}

bool endsWith(const std::string &Name, const char *Suffix) {
  const size_t Len = std::char_traits<char>::length(Suffix);
  return Name.size() >= Len &&
         Name.compare(Name.size() - Len, Len, Suffix) == 0;
}

/// Full verification of one artifact file's bytes against its file name:
/// frame structure (inspectFrame), then the name/header cross-checks
/// readArtifact would apply, then a strict payload decode. Returns
/// FsckState::Ok / Truncated / Corrupt with \p Detail set on failure.
FsckState verifyArtifactBytes(const std::vector<uint8_t> &Bytes,
                              const HashTriple &NameRoot,
                              ArtifactKind NameKind, std::string &Detail) {
  ArtifactFrame F;
  const FrameVerdict V = inspectFrame(Bytes, F, Detail);
  if (V == FrameVerdict::Truncated)
    return FsckState::Truncated;
  if (V == FrameVerdict::Corrupt)
    return FsckState::Corrupt;
  // The kind and key live in the file name too; a mismatch means the file
  // was renamed or copied over another key's path, and a lookup for the
  // named key would decode the wrong artifact.
  if (F.RawKind != static_cast<uint32_t>(NameKind)) {
    Detail = std::string("holds a different artifact kind than its file "
                         "name says: header ") +
             artifactKindName(static_cast<ArtifactKind>(F.RawKind)) +
             ", name " + artifactKindName(NameKind);
    return FsckState::Corrupt;
  }
  if (F.Root != NameRoot) {
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%08x-%08x-%08x", F.Root.InstCount,
                  F.Root.ByteSum, F.Root.Crc);
    Detail = std::string("is keyed to a different root function than its "
                         "file name says: header ") +
             Buf;
    return FsckState::Corrupt;
  }
  ByteReader R(Bytes.data() + kFrameHeaderSize,
               Bytes.size() - kFrameHeaderSize);
  bool Decodes = false;
  switch (NameKind) {
  case ArtifactKind::Result: {
    EnumerationResult Res;
    Decodes = decodeResult(R, Res) && R.atEnd();
    break;
  }
  case ArtifactKind::Checkpoint: {
    EnumerationCheckpoint C;
    Decodes = decodeCheckpoint(R, C) && R.atEnd() && C.Valid;
    break;
  }
  case ArtifactKind::Quarantine: {
    QuarantineRecord Q;
    Decodes = decodeQuarantine(R, Q) && R.atEnd();
    break;
  }
  case ArtifactKind::Equivalence: {
    sem::EquivRecord E;
    Decodes = decodeEquivalence(R, E) && R.atEnd();
    break;
  }
  }
  if (!Decodes) {
    // The payload CRC already matched, so the bytes are what the writer
    // wrote — which means the writer and this reader disagree about the
    // encoding itself.
    Detail = "payload passes its checksum but does not decode";
    return FsckState::Corrupt;
  }
  Detail.clear();
  return FsckState::Ok;
}

/// Sorted regular-file names directly inside \p Dir (subdirectories such
/// as lost+found are skipped). False with \p Error on iteration failure.
bool listStoreFiles(const std::string &Dir, std::vector<std::string> &Names,
                    std::string &Error) {
  std::error_code EC;
  fs::directory_iterator It(Dir, EC), End;
  if (EC) {
    Error = "cannot read store directory '" + Dir + "': " + EC.message();
    return false;
  }
  for (; !EC && It != End; It.increment(EC))
    if (It->is_regular_file(EC))
      Names.push_back(It->path().filename().string());
  if (EC) {
    Error = "cannot read store directory '" + Dir + "': " + EC.message();
    return false;
  }
  std::sort(Names.begin(), Names.end());
  return true;
}

} // namespace

bool parseArtifactName(const std::string &Name, HashTriple &Root,
                       ArtifactKind &Kind) {
  // %08x-%08x-%08x.<kind>.pose — shortest kind is "equiv".
  if (Name.size() < 8 + 1 + 8 + 1 + 8 + 1 + 5 + 5)
    return false;
  if (Name[8] != '-' || Name[17] != '-')
    return false;
  HashTriple T;
  if (!parseHex32(Name, 0, T.InstCount) || !parseHex32(Name, 9, T.ByteSum) ||
      !parseHex32(Name, 18, T.Crc))
    return false;
  const std::string Rest = Name.substr(26);
  for (uint32_t K = static_cast<uint32_t>(ArtifactKind::Result);
       K <= static_cast<uint32_t>(ArtifactKind::Equivalence); ++K) {
    const std::string Want = std::string(".") +
                             artifactKindName(static_cast<ArtifactKind>(K)) +
                             ".pose";
    if (Rest == Want) {
      Root = T;
      Kind = static_cast<ArtifactKind>(K);
      return true;
    }
  }
  return false;
}

const char *fsckStateName(FsckState S) {
  switch (S) {
  case FsckState::Ok:
    return "ok";
  case FsckState::Truncated:
    return "truncated";
  case FsckState::Corrupt:
    return "corrupt";
  case FsckState::OrphanTmp:
    return "orphan-tmp";
  case FsckState::Foreign:
    return "foreign";
  }
  return "?";
}

FsckReport fsckStore(const std::string &Dir, bool Repair, StoreIo *Io) {
  StoreIo &Fs = Io ? *Io : processStoreIo();
  FsckReport Rep;
  std::vector<std::string> Names;
  if (!listStoreFiles(Dir, Names, Rep.Error))
    return Rep;

  std::error_code EC;
  bool LostDirReady = false;
  const fs::path LostDir = fs::path(Dir) / kLostAndFoundDir;

  for (const std::string &Name : Names) {
    ++Rep.Scanned;
    FsckEntry E;
    E.Name = Name;
    const std::string Path = (fs::path(Dir) / Name).string();

    HashTriple Root;
    ArtifactKind Kind;
    if (endsWith(Name, ".pose.tmp")) {
      E.State = FsckState::OrphanTmp;
      E.Detail = "temporary file left by a writer that died before its "
                 "rename committed";
      ++Rep.Orphans;
      if (Repair && Fs.remove(Path)) {
        E.RepairedTo = "(removed)";
        ++Rep.Repaired;
      }
      Rep.Entries.push_back(std::move(E));
      continue;
    }
    if (!parseArtifactName(Name, Root, Kind)) {
      E.State = FsckState::Foreign;
      E.Detail = "not a store artifact name; left untouched";
      ++Rep.Foreign;
      Rep.Entries.push_back(std::move(E));
      continue;
    }

    std::vector<uint8_t> Bytes;
    if (!readFileBytes(Path, Bytes)) {
      E.State = FsckState::Corrupt;
      E.Detail = "cannot be read";
      ++Rep.Corrupt;
    } else {
      E.State = verifyArtifactBytes(Bytes, Root, Kind, E.Detail);
      switch (E.State) {
      case FsckState::Ok:
        ++Rep.Intact;
        continue; // Intact artifacts are counted, not listed.
      case FsckState::Truncated:
        ++Rep.Truncated;
        break;
      case FsckState::Corrupt:
        ++Rep.Corrupt;
        break;
      case FsckState::OrphanTmp:
      case FsckState::Foreign:
        break; // Unreachable from verifyArtifactBytes.
      }
    }

    if (Repair) {
      if (!LostDirReady) {
        fs::create_directories(LostDir, EC);
        LostDirReady = !EC;
      }
      if (LostDirReady) {
        // Move aside, never delete: the damaged bytes may matter for a
        // post-mortem, and out of the store they can no longer be read
        // by a sweep. Suffix on collision so repeated repairs keep every
        // generation.
        fs::path Dest = LostDir / Name;
        for (unsigned N = 1; fs::exists(Dest, EC); ++N)
          Dest = LostDir / (Name + "." + std::to_string(N));
        int Err = 0;
        if (Fs.rename(Path, Dest.string(), Err)) {
          E.RepairedTo = Dest.string();
          ++Rep.Repaired;
        }
      }
    }
    Rep.Entries.push_back(std::move(E));
  }
  return Rep;
}

MergeReport mergeStores(const std::string &Dst,
                        const std::vector<std::string> &Srcs, StoreIo *Io) {
  StoreIo &Fs = Io ? *Io : processStoreIo();
  MergeReport Rep;

  std::error_code EC;
  fs::create_directories(Dst, EC);
  if (EC) {
    Rep.Status = MergeStatus::IoError;
    Rep.Error =
        "cannot create destination store '" + Dst + "': " + EC.message();
    return Rep;
  }

  // Refuse a destination that is also a source. The copy loop below
  // lists a source once and then mutates the destination; if they are
  // the same directory (spelled the same, through `..` aliasing, or via
  // a symlink), the walk reads a directory being rewritten under it.
  // Canonicalize after create_directories so the destination's own
  // components resolve; weakly_canonical tolerates a not-yet-existing
  // source (listStoreFiles reports that properly below).
  const fs::path DstCanon = fs::weakly_canonical(Dst, EC);
  for (const std::string &Src : Srcs) {
    std::error_code SrcEC;
    const fs::path SrcCanon = fs::weakly_canonical(Src, SrcEC);
    if (!EC && !SrcEC && DstCanon == SrcCanon) {
      Rep.Status = MergeStatus::SelfMerge;
      Rep.Error = "destination store '" + Dst + "' is also a source ('" +
                  Src + "' resolves to the same directory); merging a "
                  "store into itself would walk a directory being "
                  "mutated — give the merge a fresh destination";
      return Rep;
    }
  }

  for (const std::string &Src : Srcs) {
    std::vector<std::string> Names;
    if (!listStoreFiles(Src, Names, Rep.Error)) {
      Rep.Status = MergeStatus::IoError;
      return Rep;
    }
    for (const std::string &Name : Names) {
      const std::string SrcPath = (fs::path(Src) / Name).string();
      if (endsWith(Name, ".pose.tmp")) {
        // A crash leftover in a shard store; the shard's own artifacts
        // are complete without it (old-or-none), so it carries nothing
        // worth merging.
        ++Rep.SkippedTmp;
        continue;
      }
      HashTriple Root;
      ArtifactKind Kind;
      if (!parseArtifactName(Name, Root, Kind))
        continue; // Foreign file; not part of the store's contents.

      std::vector<uint8_t> Bytes;
      std::string Why;
      ArtifactFrame F;
      if (!readFileBytes(SrcPath, Bytes)) {
        Rep.Status = MergeStatus::IoError;
        Rep.Error = "cannot read '" + SrcPath + "'";
        return Rep;
      }
      if (inspectFrame(Bytes, F, Why) != FrameVerdict::Ok) {
        Rep.Status = MergeStatus::CorruptSource;
        Rep.Error = "source artifact '" + SrcPath + "' " + Why +
                    "; run --fsck on '" + Src + "' first";
        return Rep;
      }

      const std::string DstPath = (fs::path(Dst) / Name).string();
      std::vector<uint8_t> Existing;
      if (readFileBytes(DstPath, Existing)) {
        if (Existing == Bytes) {
          ++Rep.Deduped;
          continue;
        }
        // Same key, different bytes: the stores disagree about this
        // artifact. The usual cause is shards swept under different
        // configurations (the fingerprint at offset 28 differs); never
        // pick a side silently.
        Rep.Status = MergeStatus::Conflict;
        Rep.ConflictKey = Name;
        Rep.Error = "merge conflict on '" + Name + "': '" + SrcPath +
                    "' and '" + DstPath +
                    "' hold byte-different artifacts for the same key; "
                    "check the stores' enumerator configurations "
                    "(fingerprints) and re-sweep the divergent shard";
        return Rep;
      }

      // Atomic copy through the destination's own temp/rename protocol,
      // so a merge interrupted mid-copy leaves no torn destination file.
      const std::string Tmp = DstPath + ".tmp";
      int Err = 0;
      size_t Written = 0;
      if (!Fs.writeFile(Tmp, Bytes.data(), Bytes.size(), Err, Written)) {
        Fs.remove(Tmp);
        Rep.Status = MergeStatus::IoError;
        Rep.Error = "cannot write '" + Tmp + "'";
        return Rep;
      }
      if (!Fs.rename(Tmp, DstPath, Err)) {
        Fs.remove(Tmp);
        Rep.Status = MergeStatus::IoError;
        Rep.Error = "cannot rename '" + Tmp + "' to '" + DstPath + "'";
        return Rep;
      }
      ++Rep.Copied;
    }
  }
  return Rep;
}

} // namespace store
} // namespace pose
