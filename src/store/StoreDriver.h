//===- StoreDriver.h - Store-backed enumeration driver ---------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one entry point tools use to enumerate *through* the artifact
/// store: look up a cached DAG, otherwise resume from a checkpoint when
/// one exists (and resuming was requested), otherwise enumerate from
/// scratch — and persist whatever the run produced, a finished result or
/// a fresh checkpoint for the next attempt. Downstream consumers
/// (interaction mining, the probabilistic compiler, DOT export) call this
/// instead of Enumerator::enumerate and become restartable for free.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_STORE_STOREDRIVER_H
#define POSE_STORE_STOREDRIVER_H

#include "src/store/ArtifactStore.h"

#include <string>

namespace pose {

class PhaseManager;

namespace store {

/// How DriveResult.Result was obtained.
enum class DriveSource {
  Cached,   ///< Loaded from a stored result; no enumeration ran.
  Resumed,  ///< Continued from a stored checkpoint.
  Fresh,    ///< Enumerated from scratch.
};

/// Outcome of one store-backed enumeration.
struct DriveResult {
  bool Ok = false;          ///< False only on store I/O failure.
  std::string Error;        ///< Set when !Ok.
  EnumerationResult Result; ///< The (possibly partial) DAG.
  DriveSource Source = DriveSource::Fresh;
  /// The cache key used (canonical triple of the unoptimized function).
  HashTriple Root;
  /// True when the run stopped on a transient limit and its checkpoint
  /// was written to the store; rerunning with Resume continues it.
  bool CheckpointSaved = false;
  /// Validation diagnostics for artifacts that were found but rejected
  /// (stale version, wrong fingerprint, corruption). The run proceeds
  /// without them; these are surfaced so the rejection is never silent.
  std::vector<std::string> RejectionNotes;
};

/// Enumerates \p Root through the store at \p StoreDir. When \p Resume is
/// false, an existing checkpoint is ignored (but a finished cached result
/// is still used — results are total, checkpoints are a continuation
/// contract the caller must opt into).
DriveResult driveEnumeration(const PhaseManager &PM,
                             const EnumeratorConfig &Config,
                             const Function &Root, const std::string &StoreDir,
                             bool Resume);

} // namespace store
} // namespace pose

#endif // POSE_STORE_STOREDRIVER_H
