//===- Serialize.h - Binary codecs for enumeration artifacts ---*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact binary codecs for the types the artifact store persists: function
/// instances, enumeration results, and resumable checkpoints. "Exact"
/// means a decode(encode(X)) round trip reproduces X field for field —
/// including allocation counters and phase state of function instances —
/// so a resumed enumeration is byte-identical to an uninterrupted one.
///
/// Decoders are strict: every enum value is range-checked, every boolean
/// must be 0 or 1, and any violation (or buffer overrun) returns false.
/// They deliberately do NOT require the reader to be exhausted, so codecs
/// compose; the framing layer (ArtifactStore) rejects trailing bytes.
///
/// The encoding is little-endian with explicit lengths and no padding; it
/// is covered by \ref kFormatVersion in ArtifactStore.h — any change here
/// must bump that version.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_STORE_SERIALIZE_H
#define POSE_STORE_SERIALIZE_H

#include "src/core/Enumerator.h"
#include "src/sem/Equivalence.h"
#include "src/store/ByteIo.h"
#include "src/store/Quarantine.h"

namespace pose {
namespace store {

/// Function instances (exact: slots, blocks, phase state, counters).
void encodeFunction(ByteWriter &W, const Function &F);
bool decodeFunction(ByteReader &R, Function &F);

/// Complete or partial enumeration results (nodes, edges, level stats,
/// diagnostics, stop reason, accounting).
void encodeResult(ByteWriter &W, const EnumerationResult &Res);
bool decodeResult(ByteReader &R, EnumerationResult &Res);

/// Resumable checkpoints (partial result + committed frontier + engine
/// counters + paranoid byte cache).
void encodeCheckpoint(ByteWriter &W, const EnumerationCheckpoint &C);
bool decodeCheckpoint(ByteReader &R, EnumerationCheckpoint &C);

/// Quarantine records (worker failure class + signal/exit metadata).
void encodeQuarantine(ByteWriter &W, const QuarantineRecord &Q);
bool decodeQuarantine(ByteReader &R, QuarantineRecord &Q);

/// Equivalence records (vector provenance + per-node behavior digests).
/// The decoder enforces the type's invariants: the three per-node arrays
/// have equal length, AllOk bytes are 0/1, and UsedVectors is strictly
/// ascending with every index below VectorsRequested.
void encodeEquivalence(ByteWriter &W, const sem::EquivRecord &E);
bool decodeEquivalence(ByteReader &R, sem::EquivRecord &E);

} // namespace store
} // namespace pose

#endif // POSE_STORE_SERIALIZE_H
