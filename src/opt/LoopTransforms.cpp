//===- LoopTransforms.cpp - Phase l -------------------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// "Performs loop-invariant code motion, recurrence elimination, loop
// strength reduction, and induction variable elimination on each loop
// ordered by loop nesting level" (Table 1). Legal only after register
// allocation: the analyses reason about values kept in registers
// (Section 3).
//
// This reproduction implements loop-invariant code motion and induction-
// variable strength reduction (i*c with unit-step i becomes an accumulator
// updated by +/- c). Recurrence elimination and full induction-variable
// elimination are not implemented; DESIGN.md records the deviation.
//
//===----------------------------------------------------------------------===//

#include "src/analysis/Dominators.h"
#include "src/analysis/Liveness.h"
#include "src/analysis/Loops.h"
#include "src/ir/Function.h"
#include "src/machine/Target.h"
#include "src/opt/Phases.h"

#include <set>

using namespace pose;

namespace {

/// Returns the register-defining instructions inside \p L, as
/// (block, index) pairs, for register \p R.
std::vector<std::pair<int, size_t>> defsInLoop(const Function &F,
                                               const Loop &L, RegNum R) {
  std::vector<std::pair<int, size_t>> Defs;
  for (int B : L.Blocks) {
    const BasicBlock &Blk = F.Blocks[static_cast<size_t>(B)];
    for (size_t J = 0; J != Blk.Insts.size(); ++J)
      if (Blk.Insts[J].definesReg() && Blk.Insts[J].Dst.getReg() == R)
        Defs.push_back({B, J});
  }
  return Defs;
}

/// True when every register source of \p I has no definition inside \p L.
bool sourcesInvariant(const Function &F, const Loop &L, const Rtl &I) {
  bool Invariant = true;
  I.forEachUsedReg([&](RegNum R) {
    if (!defsInLoop(F, L, R).empty())
      Invariant = false;
  });
  return Invariant;
}

/// True if block \p B dominates every latch and every source of an exit
/// edge of \p L — i.e. it executes before the loop can either repeat or
/// leave, making motion of single-def pure code out of it safe.
bool dominatesLatchesAndExits(const Function &, const Loop &L,
                              const Cfg &C, const Dominators &D, int B) {
  for (int Latch : L.Latches)
    if (!D.dominates(static_cast<size_t>(B), static_cast<size_t>(Latch)))
      return false;
  for (int Blk : L.Blocks)
    for (int S : C.Succs[static_cast<size_t>(Blk)])
      if (!L.contains(S) &&
          !D.dominates(static_cast<size_t>(B), static_cast<size_t>(Blk)))
        return false;
  return true;
}

/// True when every in-loop predecessor of the header reaches it through an
/// explicit jump or branch (no fall-through back edges), which preheader
/// insertion requires.
bool backEdgesExplicit(const Function &F, const Loop &L, const Cfg &C) {
  size_t H = static_cast<size_t>(L.Header);
  for (int P : C.Preds[H]) {
    if (!L.contains(P))
      continue;
    const Rtl *T = F.Blocks[static_cast<size_t>(P)].terminator();
    if (!T || T->Opcode == Op::Ret)
      return false;
    if (T->Src[0].Value != F.Blocks[H].Label)
      return false; // Reaches the header by fall-through.
  }
  return true;
}

/// Returns the index of the loop's preheader block, creating one if
/// needed: a block placed directly before the header in layout, into
/// which all outside entry edges are redirected.
size_t getOrCreatePreheader(Function &F, const Loop &L) {
  size_t H = static_cast<size_t>(L.Header);
  const int32_t HeaderLabel = F.Blocks[H].Label;
  BasicBlock P(F.makeLabel());
  const int32_t PLabel = P.Label;
  // Redirect outside jumps/branches targeting the header.
  for (size_t B = 0; B != F.Blocks.size(); ++B) {
    if (L.contains(static_cast<int>(B)))
      continue;
    Rtl *T = F.Blocks[B].terminator();
    if (T && (T->Opcode == Op::Jump || T->Opcode == Op::Branch) &&
        T->Src[0].Value == HeaderLabel)
      T->Src[0] = Operand::label(PLabel);
  }
  F.Blocks.insert(F.Blocks.begin() + static_cast<long>(H), std::move(P));
  return H; // The preheader now sits at the header's old index.
}

/// Attempts one loop-invariant hoist out of \p L. Returns true if code
/// changed.
bool hoistOneInvariant(Function &F, const Loop &L, const Cfg &C,
                       const Dominators &D, const Liveness &LV) {
  size_t H = static_cast<size_t>(L.Header);
  if (!backEdgesExplicit(F, L, C))
    return false;
  for (int B : L.Blocks) {
    if (!dominatesLatchesAndExits(F, L, C, D, B))
      continue;
    BasicBlock &Blk = F.Blocks[static_cast<size_t>(B)];
    for (size_t J = 0; J != Blk.Insts.size(); ++J) {
      const Rtl &I = Blk.Insts[J];
      if (I.hasSideEffects() || I.readsMemory() || I.definesIC() ||
          !I.definesReg())
        continue;
      if (!sourcesInvariant(F, L, I))
        continue;
      RegNum R = I.Dst.getReg();
      if (defsInLoop(F, L, R).size() != 1)
        continue;
      // The old value of R must not be consumed inside the loop before
      // the definition: if it were, R would be live into the header.
      if (LV.liveIn(H).test(R))
        continue;
      // Hoist into the preheader.
      Rtl Moved = I;
      Blk.Insts.erase(Blk.Insts.begin() + static_cast<long>(J));
      size_t PH = getOrCreatePreheader(F, L);
      F.Blocks[PH].Insts.push_back(Moved);
      return true;
    }
  }
  return false;
}

/// Attempts one induction-variable strength reduction in \p L: replaces
/// t = i * r (unit-step basic induction variable i, invariant r) with an
/// accumulator register updated alongside i's increment.
bool strengthReduceOneIv(Function &F, const Loop &L, const Cfg &C,
                         const Dominators &D) {
  if (!backEdgesExplicit(F, L, C))
    return false;
  for (int B : L.Blocks) {
    BasicBlock &Blk = F.Blocks[static_cast<size_t>(B)];
    for (size_t J = 0; J != Blk.Insts.size(); ++J) {
      const Rtl &MulI = Blk.Insts[J];
      if (MulI.Opcode != Op::Mul || !MulI.Src[0].isReg() ||
          !MulI.Src[1].isReg())
        continue;
      for (int IvSide = 0; IvSide != 2; ++IvSide) {
        RegNum IV = MulI.Src[IvSide].getReg();
        RegNum Inv = MulI.Src[1 - IvSide].getReg();
        if (!defsInLoop(F, L, Inv).empty())
          continue; // Multiplier must be invariant.
        // IV must have exactly one in-loop def: IV = IV +/- 1.
        auto IvDefs = defsInLoop(F, L, IV);
        if (IvDefs.size() != 1)
          continue;
        const Rtl &Step = F.Blocks[static_cast<size_t>(IvDefs[0].first)]
                              .Insts[IvDefs[0].second];
        if (!(Step.Opcode == Op::Add || Step.Opcode == Op::Sub) ||
            !Step.Src[0].isReg() || Step.Src[0].getReg() != IV ||
            !Step.Src[1].isImm() || Step.Src[1].Value != 1)
          continue;
        // The product must be the only in-loop def of its register, and
        // both the multiply and the step must run once per iteration.
        RegNum T = MulI.Dst.getReg();
        if (T == IV || defsInLoop(F, L, T).size() != 1)
          continue;
        if (!dominatesLatchesAndExits(F, L, C, D, B) ||
            !dominatesLatchesAndExits(F, L, C, D, IvDefs[0].first))
          continue;
        // Find a register untouched anywhere in the function.
        std::set<RegNum> Used;
        for (const BasicBlock &AB : F.Blocks)
          for (const Rtl &AI : AB.Insts) {
            if (AI.definesReg())
              Used.insert(AI.Dst.getReg());
            AI.forEachUsedReg([&](RegNum R) { Used.insert(R); });
          }
        RegNum Acc = target::NumAllocatableRegs;
        for (RegNum R = 0; R != target::NumAllocatableRegs; ++R)
          if (!Used.count(R)) {
            Acc = R;
            break;
          }
        if (Acc == target::NumAllocatableRegs)
          continue; // No free register.

        const Op UpdateOp = Step.Opcode; // Add or Sub mirrors the step.
        // Rewrite the multiply first (indices still valid), then insert
        // the update after the step, then seed the preheader.
        Blk.Insts[J] = rtl::mov(Operand::reg(T), Operand::reg(Acc));
        BasicBlock &StepBlk =
            F.Blocks[static_cast<size_t>(IvDefs[0].first)];
        StepBlk.Insts.insert(
            StepBlk.Insts.begin() + static_cast<long>(IvDefs[0].second) + 1,
            rtl::binary(UpdateOp, Operand::reg(Acc), Operand::reg(Acc),
                        Operand::reg(Inv)));
        size_t PH = getOrCreatePreheader(F, L);
        F.Blocks[PH].Insts.push_back(rtl::binary(Op::Mul,
                                                 Operand::reg(Acc),
                                                 Operand::reg(IV),
                                                 Operand::reg(Inv)));
        return true;
      }
    }
  }
  return false;
}

} // namespace

bool LoopTransformsPhase::apply(Function &F) const {
  assert(F.State.RegAllocDone &&
         "loop transformations are restricted to run after register "
         "allocation");
  bool Changed = false;
  bool Progress = true;
  while (Progress) {
    Progress = false;
    Cfg C = Cfg::build(F);
    Dominators D(F, C);
    LoopInfo LI(F, C, D);
    Liveness LV(F, C);
    for (const Loop &L : LI.loops()) {
      if (hoistOneInvariant(F, L, C, D, LV) ||
          strengthReduceOneIv(F, L, C, D)) {
        Progress = true;
        Changed = true;
        break; // Analyses are stale; restart.
      }
    }
  }
  return Changed;
}
