//===- Phases.h - The fifteen phase implementations ------------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declarations of the fifteen phase classes (one implementation file
/// each). Clients normally go through PhaseManager rather than
/// instantiating these directly; the classes are exposed so unit tests can
/// exercise a single phase in isolation.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_OPT_PHASES_H
#define POSE_OPT_PHASES_H

#include "src/opt/Phase.h"

namespace pose {

#define POSE_DECLARE_PHASE(ClassName, EnumName)                              \
  class ClassName final : public Phase {                                     \
  public:                                                                    \
    PhaseId id() const override { return PhaseId::EnumName; }                \
    bool apply(Function &F) const override;                                  \
  }

POSE_DECLARE_PHASE(BranchChainingPhase, BranchChaining);           // b
POSE_DECLARE_PHASE(CsePhase, Cse);                                 // c
POSE_DECLARE_PHASE(UnreachableCodePhase, UnreachableCode);         // d
POSE_DECLARE_PHASE(LoopUnrollingPhase, LoopUnrolling);             // g
POSE_DECLARE_PHASE(DeadAssignElimPhase, DeadAssignElim);           // h
POSE_DECLARE_PHASE(BlockReorderingPhase, BlockReordering);         // i
POSE_DECLARE_PHASE(MinimizeLoopJumpsPhase, MinimizeLoopJumps);     // j
POSE_DECLARE_PHASE(RegisterAllocationPhase, RegisterAllocation);   // k
POSE_DECLARE_PHASE(LoopTransformsPhase, LoopTransforms);           // l
POSE_DECLARE_PHASE(CodeAbstractionPhase, CodeAbstraction);         // n
POSE_DECLARE_PHASE(EvalOrderPhase, EvalOrder);                     // o
POSE_DECLARE_PHASE(StrengthReductionPhase, StrengthReduction);     // q
POSE_DECLARE_PHASE(ReverseBranchesPhase, ReverseBranches);         // r
POSE_DECLARE_PHASE(InstructionSelectionPhase, InstructionSelection); // s
POSE_DECLARE_PHASE(UselessJumpsPhase, UselessJumps);               // u

#undef POSE_DECLARE_PHASE

} // namespace pose

#endif // POSE_OPT_PHASES_H
