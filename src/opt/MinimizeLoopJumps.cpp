//===- MinimizeLoopJumps.cpp - Phase j ----------------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// "Removes a jump associated with a loop by duplicating a portion of the
// loop" (Table 1) — loop inversion. For a while-shaped loop
//
//   H:    <test-prep> ; IC = ... ; PC = IC cond, Exit   (header test)
//   body: ...
//   Lt:   ... ; PC = H                                   (latch jump)
//   Exit: ...
//
// the header's instructions are duplicated in place of the latch's jump,
// with the branch retargeted so the loop continues directly at the block
// after the header. The back-edge jump executes zero times per iteration
// instead of once; the original header test runs only on entry.
//
//===----------------------------------------------------------------------===//

#include "src/analysis/Dominators.h"
#include "src/analysis/Loops.h"
#include "src/ir/Function.h"
#include "src/opt/Phases.h"

using namespace pose;

namespace {

/// Longest header worth duplicating; matches VPO's bias toward code size
/// on embedded targets.
constexpr size_t MaxDuplicatedInsts = 8;

bool invertOneLoop(Function &F, const Loop &L) {
  // Header must end with a conditional branch that exits the loop and fall
  // through into a loop block.
  size_t H = static_cast<size_t>(L.Header);
  const BasicBlock &Header = F.Blocks[H];
  const Rtl *T = Header.terminator();
  if (!T || T->Opcode != Op::Branch)
    return false;
  int ExitIndex = F.findBlock(T->Src[0].Value);
  assert(ExitIndex >= 0 && "dangling branch");
  if (L.contains(ExitIndex))
    return false; // Branch stays inside: not a top-exit loop.
  if (H + 1 >= F.Blocks.size() || !L.contains(static_cast<int>(H + 1)))
    return false; // No in-loop fall-through body.
  if (Header.Insts.size() > MaxDuplicatedInsts)
    return false;
  const int32_t BodyLabel = F.Blocks[H + 1].Label;
  const int32_t ExitLabel = T->Src[0].Value;

  bool Changed = false;
  for (int Latch : L.Latches) {
    BasicBlock &Lt = F.Blocks[static_cast<size_t>(Latch)];
    Rtl *LtTerm = Lt.terminator();
    if (!LtTerm || LtTerm->Opcode != Op::Jump ||
        LtTerm->Src[0].Value != Header.Label)
      continue;
    // The latch must sit directly before the exit block in layout, so the
    // duplicated (inverted) test can fall through out of the loop.
    if (Latch + 1 >= static_cast<int>(F.Blocks.size()) ||
        F.Blocks[static_cast<size_t>(Latch) + 1].Label != ExitLabel)
      continue;
    // Replace "PC = H" with a copy of the header's instructions, the
    // branch inverted to continue the loop and fall through to the exit.
    Lt.Insts.pop_back();
    for (const Rtl &I : F.Blocks[H].Insts) {
      if (I.isControl()) {
        Rtl Back = I;
        Back.CC = invertCond(I.CC);
        Back.Src[0] = Operand::label(BodyLabel);
        Lt.Insts.push_back(Back);
      } else {
        Lt.Insts.push_back(I);
      }
    }
    Changed = true;
  }
  return Changed;
}

} // namespace

bool MinimizeLoopJumpsPhase::apply(Function &F) const {
  bool Changed = false;
  Cfg C = Cfg::build(F);
  Dominators D(F, C);
  LoopInfo LI(F, C, D);
  for (const Loop &L : LI.loops()) {
    if (invertOneLoop(F, L)) {
      Changed = true;
      // Structure changed: recompute before trying more loops.
      C = Cfg::build(F);
      Dominators D2(F, C);
      LoopInfo LI2(F, C, D2);
      // Restart with fresh analysis by applying recursively; one level of
      // recursion per transformed loop keeps this simple and bounded.
      MinimizeLoopJumpsPhase Again;
      Again.apply(F);
      break;
    }
  }
  return Changed;
}
