//===- Phase.h - Optimization phase interface ------------------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fifteen reorderable code-improving phases of the compiler, keyed by
/// the single-letter designations of the paper's Table 1. A phase applied
/// to a function is *active* when it changes the code and *dormant* when it
/// finds no opportunity — the distinction that drives both the exhaustive
/// enumeration pruning and the interaction analysis.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_OPT_PHASE_H
#define POSE_OPT_PHASE_H

#include <cstdint>

namespace pose {

class Function;

/// The candidate optimization phases (paper Table 1). Enumerator values
/// are contiguous so matrices can be indexed by phase.
enum class PhaseId : uint8_t {
  BranchChaining = 0,       ///< b
  Cse,                      ///< c: common subexpression elimination
  UnreachableCode,          ///< d: remove unreachable code
  LoopUnrolling,            ///< g
  DeadAssignElim,           ///< h: dead assignment elimination
  BlockReordering,          ///< i
  MinimizeLoopJumps,        ///< j
  RegisterAllocation,       ///< k
  LoopTransforms,           ///< l
  CodeAbstraction,          ///< n
  EvalOrder,                ///< o: evaluation order determination
  StrengthReduction,        ///< q
  ReverseBranches,          ///< r
  InstructionSelection,     ///< s
  UselessJumps,             ///< u: remove useless jumps
};

/// Number of reorderable phases.
constexpr int NumPhases = 15;

/// All phases, in designation order (b c d g h i j k l n o q r s u).
PhaseId phaseByIndex(int Index);

/// Returns the paper's single-letter designation for \p P.
char phaseCode(PhaseId P);

/// Returns the phase for designation \p Code, or -1-cast if unknown;
/// asserts on unknown codes.
PhaseId phaseFromCode(char Code);

/// Returns the descriptive name from Table 1 ("branch chaining", ...).
const char *phaseName(PhaseId P);

/// Interface implemented by each of the fifteen phases.
class Phase {
public:
  virtual ~Phase();

  virtual PhaseId id() const = 0;

  /// Applies the phase to \p F. Returns true if the phase was *active*
  /// (changed the code), false if *dormant*. Implementations transform as
  /// much as they can in one application, as VPO phases do.
  virtual bool apply(Function &F) const = 0;
};

} // namespace pose

#endif // POSE_OPT_PHASE_H
