//===- Cleanup.cpp - Implicit CFG normalization ------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/opt/Cleanup.h"

#include "src/ir/Function.h"

using namespace pose;

namespace {

/// Retargets every Jump/Branch aimed at \p From to \p To.
void retarget(Function &F, int32_t From, int32_t To) {
  for (BasicBlock &B : F.Blocks)
    for (Rtl &I : B.Insts)
      if ((I.Opcode == Op::Jump || I.Opcode == Op::Branch) &&
          I.Src[0].Value == From)
        I.Src[0] = Operand::label(To);
}

bool eliminateEmptyBlocks(Function &F) {
  bool Changed = false;
  for (size_t I = 0; I < F.Blocks.size();) {
    if (!F.Blocks[I].empty() || F.Blocks.size() == 1) {
      ++I;
      continue;
    }
    // An empty block simply falls into the next one; an empty *last*
    // block is unreferenced by construction (nothing may fall off the
    // end), so it can be dropped outright.
    if (I + 1 < F.Blocks.size())
      retarget(F, F.Blocks[I].Label, F.Blocks[I + 1].Label);
    F.Blocks.erase(F.Blocks.begin() + static_cast<long>(I));
    Changed = true;
    // Re-examine the same index.
  }
  return Changed;
}

bool mergeFallThroughPairs(Function &F) {
  bool Changed = false;
  for (size_t I = 0; I + 1 < F.Blocks.size();) {
    BasicBlock &A = F.Blocks[I];
    // A must fall through unconditionally (no terminator at all).
    if (A.terminator()) {
      ++I;
      continue;
    }
    Cfg C = Cfg::build(F);
    // The fall-through successor must have A as its only predecessor.
    if (C.Preds[I + 1].size() != 1) {
      ++I;
      continue;
    }
    BasicBlock &B = F.Blocks[I + 1];
    A.Insts.insert(A.Insts.end(), B.Insts.begin(), B.Insts.end());
    F.Blocks.erase(F.Blocks.begin() + static_cast<long>(I) + 1);
    Changed = true;
    // Stay at I: A may now fall through into another mergeable block.
  }
  return Changed;
}

} // namespace

bool pose::cleanupCfg(Function &F) {
  bool Changed = false;
  // Run to a fixed point: merging can expose empty-block elimination and
  // vice versa. Functions are small; this converges in a few rounds.
  for (bool Round = true; Round;) {
    Round = false;
    Round |= eliminateEmptyBlocks(F);
    Round |= mergeFallThroughPairs(F);
    Changed |= Round;
  }
  return Changed;
}

bool pose::removeUnreachableBlocks(Function &F) {
  Cfg C = Cfg::build(F);
  std::vector<bool> Reached(F.Blocks.size(), false);
  std::vector<size_t> Work{0};
  Reached[0] = true;
  while (!Work.empty()) {
    size_t B = Work.back();
    Work.pop_back();
    for (int S : C.Succs[B])
      if (!Reached[S]) {
        Reached[S] = true;
        Work.push_back(static_cast<size_t>(S));
      }
  }
  bool Changed = false;
  for (size_t I = F.Blocks.size(); I-- > 0;) {
    if (!Reached[I]) {
      F.Blocks.erase(F.Blocks.begin() + static_cast<long>(I));
      Changed = true;
    }
  }
  return Changed;
}
