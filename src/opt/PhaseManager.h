//===- PhaseManager.h - Phase registry and legality ------------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns the fifteen phase implementations and encodes the framework rules
/// of the paper's Section 3:
///
///  - evaluation order determination (o) is legal only before register
///    assignment;
///  - CSE (c) and register allocation (k) require register assignment,
///    which is performed implicitly before the first phase that needs it;
///  - loop unrolling (g) and loop transformations (l) are legal only after
///    register allocation has been applied;
///  - merge-basic-blocks and eliminate-empty-blocks run implicitly after
///    every active phase.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_OPT_PHASEMANAGER_H
#define POSE_OPT_PHASEMANAGER_H

#include "src/opt/Phase.h"

#include <memory>
#include <string>
#include <vector>

namespace pose {

class Function;
struct PhaseState;

/// Registry plus legality/attempt logic for the fifteen phases.
class PhaseManager {
public:
  PhaseManager();

  const Phase &phase(PhaseId P) const {
    return *Phases[static_cast<int>(P)];
  }

  /// Returns true if \p P may be attempted on \p F in its current state.
  bool isLegal(PhaseId P, const Function &F) const;

  /// Legality depends only on the compilation milestones, not the code;
  /// this overload serves callers that track PhaseState separately (the
  /// enumerator's naive replay mode).
  bool isLegal(PhaseId P, const PhaseState &S) const;

  /// Returns true if attempting \p P forces the compulsory register
  /// assignment first.
  bool requiresRegAssignment(PhaseId P) const;

  /// Attempts phase \p P on \p F: performs implicit register assignment
  /// when required, applies the phase, and runs the implicit CFG cleanup
  /// if the phase was active. \p P must be legal for \p F. Returns the
  /// active/dormant outcome.
  bool attempt(PhaseId P, Function &F) const;

  /// Applies a whole sequence (by designation letters, e.g. "sckh"),
  /// attempting each phase in order; illegal phases are skipped. Returns
  /// the string of letters that were active. Convenience for tests and
  /// examples.
  std::string applySequence(Function &F, const std::string &Codes) const;

private:
  std::vector<std::unique_ptr<Phase>> Phases;
};

} // namespace pose

#endif // POSE_OPT_PHASEMANAGER_H
