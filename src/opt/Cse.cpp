//===- Cse.cpp - Phase c --------------------------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// "Performs global analysis to eliminate fully redundant calculations,
// which also includes global constant and copy propagation" (Table 1).
// Requires register assignment (Section 3): the analysis runs over the
// target's hardware registers.
//
// Three cooperating transformations, iterated to a fixed point:
//   1. Global constant propagation — forward lattice (const/NAC) per
//      register; constant uses are rewritten into immediates where the
//      machine encoding allows (VPO keeps every RTL legal), and
//      all-constant computations fold into moves.
//   2. Local copy propagation — within a block, uses of a copied register
//      are renamed to the copy source, exposing dead moves and CSE.
//   3. Global common subexpression elimination — available-expression
//      dataflow over (dst, op, src0, src1) tuples; a recomputation whose
//      tuple is available turns into a move from the holding register (or
//      disappears when it targets the same register).
//
//===----------------------------------------------------------------------===//

#include "src/ir/Function.h"
#include "src/machine/Target.h"
#include "src/opt/Phases.h"
#include "src/support/BitVector.h"

#include <map>
#include <optional>
#include <set>

using namespace pose;

namespace {

//===----------------------------------------------------------------------===//
// Global constant propagation
//===----------------------------------------------------------------------===//

/// Lattice value for one register: unknown-yet (Top), a constant, or
/// not-a-constant (Bottom).
struct LatticeVal {
  enum KindT : uint8_t { Top, Const, Bottom } Kind = Top;
  int32_t Value = 0;

  static LatticeVal top() { return {}; }
  static LatticeVal constant(int32_t V) { return {Const, V}; }
  static LatticeVal bottom() { return {Bottom, 0}; }

  bool operator==(const LatticeVal &O) const {
    return Kind == O.Kind && (Kind != Const || Value == O.Value);
  }
};

LatticeVal meet(const LatticeVal &A, const LatticeVal &B) {
  if (A.Kind == LatticeVal::Top)
    return B;
  if (B.Kind == LatticeVal::Top)
    return A;
  if (A.Kind == LatticeVal::Const && B.Kind == LatticeVal::Const &&
      A.Value == B.Value)
    return A;
  return LatticeVal::bottom();
}

using RegState = std::map<RegNum, LatticeVal>;

LatticeVal lookup(const RegState &S, RegNum R) {
  auto It = S.find(R);
  return It == S.end() ? LatticeVal::top() : It->second;
}

std::optional<int32_t> foldConst(Op O, int32_t A, int32_t B) {
  const uint32_t UA = static_cast<uint32_t>(A);
  const uint32_t UB = static_cast<uint32_t>(B);
  switch (O) {
  case Op::Add:
    return static_cast<int32_t>(UA + UB);
  case Op::Sub:
    return static_cast<int32_t>(UA - UB);
  case Op::Mul:
    return static_cast<int32_t>(UA * UB);
  case Op::Div:
    if (B == 0 || (A == INT32_MIN && B == -1))
      return std::nullopt;
    return A / B;
  case Op::Rem:
    if (B == 0 || (A == INT32_MIN && B == -1))
      return std::nullopt;
    return A % B;
  case Op::And:
    return A & B;
  case Op::Or:
    return A | B;
  case Op::Xor:
    return A ^ B;
  case Op::Shl:
    return static_cast<int32_t>(UA << (UB & 31));
  case Op::Shr:
    return A >> (UB & 31);
  case Op::Ushr:
    return static_cast<int32_t>(UA >> (UB & 31));
  default:
    return std::nullopt;
  }
}

/// Value of an operand under \p S, if statically known.
std::optional<int32_t> operandConst(const Operand &O, const RegState &S) {
  if (O.isImm())
    return O.Value;
  if (O.isReg()) {
    LatticeVal V = lookup(S, O.getReg());
    if (V.Kind == LatticeVal::Const)
      return V.Value;
  }
  return std::nullopt;
}

/// Transfer function of one instruction for constant propagation.
void transfer(const Rtl &I, RegState &S) {
  if (!I.definesReg())
    return;
  RegNum D = I.Dst.getReg();
  if (I.Opcode == Op::Mov) {
    std::optional<int32_t> V = operandConst(I.Src[0], S);
    S[D] = V ? LatticeVal::constant(*V) : LatticeVal::bottom();
    return;
  }
  if (I.isBinary()) {
    std::optional<int32_t> A = operandConst(I.Src[0], S);
    std::optional<int32_t> B = operandConst(I.Src[1], S);
    if (A && B) {
      if (std::optional<int32_t> V = foldConst(I.Opcode, *A, *B)) {
        S[D] = LatticeVal::constant(*V);
        return;
      }
    }
    S[D] = LatticeVal::bottom();
    return;
  }
  if (I.Opcode == Op::Neg || I.Opcode == Op::Not) {
    std::optional<int32_t> A = operandConst(I.Src[0], S);
    if (A) {
      int32_t V = I.Opcode == Op::Neg
                      ? static_cast<int32_t>(0u - static_cast<uint32_t>(*A))
                      : ~*A;
      S[D] = LatticeVal::constant(V);
      return;
    }
    S[D] = LatticeVal::bottom();
    return;
  }
  S[D] = LatticeVal::bottom(); // Lea, Load, Call.
}

bool constantPropagation(Function &F) {
  const size_t N = F.Blocks.size();
  Cfg C = Cfg::build(F);
  std::vector<RegState> In(N), Out(N);
  bool Iterate = true;
  while (Iterate) {
    Iterate = false;
    for (size_t B = 0; B != N; ++B) {
      RegState NewIn;
      if (B == 0) {
        // Entry: nothing known (parameters arrive in memory).
      } else {
        bool First = true;
        for (int P : C.Preds[B]) {
          if (First) {
            NewIn = Out[static_cast<size_t>(P)];
            First = false;
            continue;
          }
          // Pointwise meet; registers missing on either side are Top and
          // take the other side's value.
          RegState Met;
          const RegState &OtherS = Out[static_cast<size_t>(P)];
          std::set<RegNum> Keys;
          for (const auto &[R, V] : NewIn)
            Keys.insert(R);
          for (const auto &[R, V] : OtherS)
            Keys.insert(R);
          for (RegNum R : Keys)
            Met[R] = meet(lookup(NewIn, R), lookup(OtherS, R));
          NewIn = std::move(Met);
        }
      }
      RegState NewOut = NewIn;
      for (const Rtl &I : F.Blocks[B].Insts)
        transfer(I, NewOut);
      if (NewIn != In[B] || NewOut != Out[B]) {
        In[B] = std::move(NewIn);
        Out[B] = std::move(NewOut);
        Iterate = true;
      }
    }
  }

  // Rewrite pass: replace known-constant register uses with immediates
  // wherever the machine encoding allows, and fold all-constant ops.
  bool Changed = false;
  for (size_t B = 0; B != N; ++B) {
    RegState S = In[B];
    for (Rtl &I : F.Blocks[B].Insts) {
      Rtl New = I;
      bool Rewrote = false;
      // Try each source position (not Args: call arguments accept
      // immediates but rewriting them obscures nothing — still do it).
      auto TryOperand = [&](Operand &O, int SrcIndex) {
        if (!O.isReg())
          return;
        LatticeVal V = lookup(S, O.getReg());
        if (V.Kind != LatticeVal::Const)
          return;
        if (!target::immediateAllowed(New.Opcode, SrcIndex, V.Value))
          return;
        O = Operand::imm(V.Value);
        Rewrote = true;
      };
      for (int SI = 0; SI != 3; ++SI)
        if (New.Src[SI].isReg())
          TryOperand(New.Src[SI], SI);
      // Fold if everything became constant.
      if (New.isBinary() && New.Src[0].isImm() && New.Src[1].isImm()) {
        if (std::optional<int32_t> V =
                foldConst(New.Opcode, New.Src[0].Value, New.Src[1].Value)) {
          New = rtl::mov(New.Dst, Operand::imm(*V));
          Rewrote = true;
        }
      }
      if ((New.Opcode == Op::Neg || New.Opcode == Op::Not) &&
          New.Src[0].isImm()) {
        int32_t V = New.Opcode == Op::Neg
                        ? static_cast<int32_t>(
                              0u - static_cast<uint32_t>(New.Src[0].Value))
                        : ~New.Src[0].Value;
        New = rtl::mov(New.Dst, Operand::imm(V));
        Rewrote = true;
      }
      if (Rewrote && target::isLegal(New) && !(New == I)) {
        I = New;
        Changed = true;
      }
      transfer(I, S);
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Local copy propagation
//===----------------------------------------------------------------------===//

bool copyPropagation(Function &F) {
  bool Changed = false;
  for (BasicBlock &B : F.Blocks) {
    std::map<RegNum, RegNum> CopyOf; // d -> s for an active "mov d, s".
    auto Kill = [&CopyOf](RegNum W) {
      CopyOf.erase(W);
      for (auto It = CopyOf.begin(); It != CopyOf.end();) {
        if (It->second == W)
          It = CopyOf.erase(It);
        else
          ++It;
      }
    };
    for (Rtl &I : B.Insts) {
      // Rewrite uses through active copies.
      I.forEachUseOperand([&](Operand &O) {
        auto It = CopyOf.find(O.getReg());
        if (It != CopyOf.end() && It->second != O.getReg()) {
          O = Operand::reg(It->second);
          Changed = true;
        }
      });
      if (I.definesReg()) {
        RegNum D = I.Dst.getReg();
        Kill(D);
        if (I.Opcode == Op::Mov && I.Src[0].isReg() &&
            I.Src[0].getReg() != D)
          CopyOf[D] = I.Src[0].getReg();
      }
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Global CSE via available (dst, op, src0, src1) tuples
//===----------------------------------------------------------------------===//

/// A pure computation whose recomputation can be elided.
struct ExprKey {
  Op Opcode;
  Operand Dst, S0, S1;

  bool operator<(const ExprKey &O) const {
    auto Tup = [](const ExprKey &E) {
      return std::tuple(static_cast<int>(E.Opcode),
                        static_cast<int>(E.Dst.Kind), E.Dst.Value,
                        static_cast<int>(E.S0.Kind), E.S0.Value,
                        static_cast<int>(E.S1.Kind), E.S1.Value);
    };
    return Tup(*this) < Tup(O);
  }
};

/// Returns the expression tuple computed by \p I, when CSE-able: pure,
/// register-writing, non-trivial (moves are copy propagation's business).
/// Self-referencing computations (destination among the sources, e.g.
/// "r4 = r4 + 1") are excluded: their tuple would describe the *new*
/// value of the source register, which is never what was computed.
std::optional<ExprKey> exprOf(const Rtl &I) {
  if (!I.definesReg())
    return std::nullopt;
  if (I.isBinary() || I.Opcode == Op::Neg || I.Opcode == Op::Not ||
      I.Opcode == Op::Lea) {
    const RegNum D = I.Dst.getReg();
    for (const Operand &S : I.Src)
      if (S.isReg() && S.getReg() == D)
        return std::nullopt;
    return ExprKey{I.Opcode, I.Dst, I.Src[0], I.Src[1]};
  }
  return std::nullopt;
}

bool cseAvailableExpressions(Function &F) {
  // Collect the expression universe.
  std::vector<ExprKey> Universe;
  std::map<ExprKey, size_t> Index;
  for (const BasicBlock &B : F.Blocks)
    for (const Rtl &I : B.Insts)
      if (std::optional<ExprKey> E = exprOf(I))
        if (Index.emplace(*E, Universe.size()).second)
          Universe.push_back(*E);
  if (Universe.empty())
    return false;
  const size_t NE = Universe.size();
  const size_t N = F.Blocks.size();

  auto Kills = [&](const Rtl &I, const ExprKey &E) {
    if (!I.definesReg())
      return false;
    RegNum W = I.Dst.getReg();
    auto Touches = [W](const Operand &O) {
      return O.isReg() && O.getReg() == W;
    };
    // Writing the holding register kills availability unless the write is
    // the generating computation itself (handled by gen after kill).
    return Touches(E.Dst) || Touches(E.S0) || Touches(E.S1);
  };

  auto TransferBlock = [&](size_t B, BitVector Avail) {
    for (const Rtl &I : F.Blocks[B].Insts) {
      for (size_t K = 0; K != NE; ++K)
        if (Avail.test(K) && Kills(I, Universe[K]))
          Avail.reset(K);
      if (std::optional<ExprKey> E = exprOf(I))
        Avail.set(Index.at(*E));
    }
    return Avail;
  };

  // Forward all-paths dataflow.
  BitVector Full(NE);
  for (size_t K = 0; K != NE; ++K)
    Full.set(K);
  std::vector<BitVector> In(N, Full), Out(N, Full);
  In[0] = BitVector(NE);
  Cfg C = Cfg::build(F);
  bool Iterate = true;
  while (Iterate) {
    Iterate = false;
    for (size_t B = 0; B != N; ++B) {
      BitVector NewIn = B == 0 ? BitVector(NE) : Full;
      for (int P : C.Preds[B])
        NewIn.intersectWith(Out[static_cast<size_t>(P)]);
      if (C.Preds[B].empty() && B != 0)
        NewIn = BitVector(NE); // Unreachable: claim nothing.
      BitVector NewOut = TransferBlock(B, NewIn);
      if (NewIn != In[B] || NewOut != Out[B]) {
        In[B] = std::move(NewIn);
        Out[B] = std::move(NewOut);
        Iterate = true;
      }
    }
  }

  // Rewrite: a recomputation of an available tuple becomes a move from
  // the holding register (or vanishes when it already targets it).
  bool Changed = false;
  for (size_t B = 0; B != N; ++B) {
    BitVector Avail = In[B];
    auto &Insts = F.Blocks[B].Insts;
    for (size_t J = 0; J < Insts.size(); ++J) {
      Rtl &I = Insts[J];
      std::optional<ExprKey> E = exprOf(I);
      bool Elide = false;
      if (E) {
        size_t K = Index.at(*E);
        if (Avail.test(K)) {
          // The tuple's destination currently holds the value.
          if (I.Dst == E->Dst) {
            Insts.erase(Insts.begin() + static_cast<long>(J));
            Changed = true;
            --J;
            Elide = true;
          }
        } else {
          // Same (op, srcs) but a different destination? Check whether
          // any available tuple matches the computation.
          for (size_t K2 = 0; K2 != NE; ++K2) {
            const ExprKey &Cand = Universe[K2];
            if (!Avail.test(K2))
              continue;
            if (Cand.Opcode == E->Opcode && Cand.S0 == E->S0 &&
                Cand.S1 == E->S1 && !(Cand.Dst == I.Dst)) {
              I = rtl::mov(I.Dst, Cand.Dst);
              Changed = true;
              break;
            }
          }
        }
      }
      if (!Elide) {
        for (size_t K = 0; K != NE; ++K)
          if (Avail.test(K) && Kills(Insts[J], Universe[K]))
            Avail.reset(K);
        if (std::optional<ExprKey> E2 = exprOf(Insts[J]))
          Avail.set(Index.at(*E2));
      }
    }
  }
  return Changed;
}

} // namespace

bool CsePhase::apply(Function &F) const {
  assert(F.State.RegsAssigned &&
         "CSE requires register assignment (PhaseManager enforces this)");
  bool Changed = false;
  bool Progress = true;
  while (Progress) {
    Progress = false;
    Progress |= constantPropagation(F);
    Progress |= copyPropagation(F);
    Progress |= cseAvailableExpressions(F);
    Changed |= Progress;
  }
  return Changed;
}
