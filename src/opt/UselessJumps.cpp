//===- UselessJumps.cpp - Phase u ---------------------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// "Removes jumps and branches whose target is the following positional
// block" (Table 1). Removing a branch can leave its compare dead; cleaning
// that up is dead assignment elimination's job (one of the enabling
// interactions the analysis of Section 5 measures).
//
//===----------------------------------------------------------------------===//

#include "src/ir/Function.h"
#include "src/opt/Phases.h"

using namespace pose;

bool UselessJumpsPhase::apply(Function &F) const {
  bool Changed = false;
  for (size_t BI = 0; BI + 1 < F.Blocks.size(); ++BI) {
    BasicBlock &B = F.Blocks[BI];
    Rtl *T = B.terminator();
    if (!T || (T->Opcode != Op::Jump && T->Opcode != Op::Branch))
      continue;
    if (T->Src[0].Value != F.Blocks[BI + 1].Label)
      continue;
    B.Insts.pop_back();
    Changed = true;
  }
  return Changed;
}
