//===- PhaseGuard.cpp - Verified, fault-tolerant phase application ------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/opt/PhaseGuard.h"

#include "src/ir/Function.h"
#include "src/ir/Verify.h"
#include "src/opt/PhaseManager.h"

#include <csignal>

using namespace pose;

const char *pose::faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::Verifier:
    return "verifier";
  case FaultKind::Segv:
    return "segv";
  case FaultKind::Kill:
    return "kill";
  case FaultKind::Hang:
    return "hang";
  case FaultKind::WrongCode:
    return "wrongcode";
  }
  return "?";
}

bool pose::applyWrongCodeFault(Function &F) {
  for (BasicBlock &B : F.Blocks)
    for (Rtl &I : B.Insts)
      for (Operand &S : I.Src)
        if (S.Kind == OperandKind::Imm) {
          S.Value += 1;
          return true;
        }
  return false;
}

bool FaultPlan::parse(const std::string &Spec, FaultPlan &Out) {
  FaultPlan Plan;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t End = Spec.find(',', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    const std::string Item = Spec.substr(Pos, End - Pos);
    // "<letter>:<nth>[:<kind>]", nth a positive decimal number.
    if (Item.size() < 3 || Item[1] != ':')
      return false;
    int Index = -1;
    for (int I = 0; I != NumPhases; ++I)
      if (phaseCode(phaseByIndex(I)) == Item[0])
        Index = I;
    if (Index < 0)
      return false;
    size_t NthEnd = Item.find(':', 2);
    if (NthEnd == std::string::npos)
      NthEnd = Item.size();
    if (NthEnd == 2)
      return false;
    uint64_t Nth = 0;
    for (size_t I = 2; I != NthEnd; ++I) {
      if (Item[I] < '0' || Item[I] > '9')
        return false;
      Nth = Nth * 10 + static_cast<uint64_t>(Item[I] - '0');
    }
    if (Nth == 0)
      return false;
    FaultKind Kind = FaultKind::Verifier;
    if (NthEnd != Item.size()) {
      const std::string Name = Item.substr(NthEnd + 1);
      if (Name == "segv")
        Kind = FaultKind::Segv;
      else if (Name == "kill")
        Kind = FaultKind::Kill;
      else if (Name == "hang")
        Kind = FaultKind::Hang;
      else if (Name == "wrongcode")
        Kind = FaultKind::WrongCode;
      else
        return false;
    }
    Plan.add(phaseByIndex(Index), Nth, Kind);
    Pos = End + 1;
  }
  if (Plan.empty())
    return false;
  Out = std::move(Plan);
  return true;
}

namespace {
/// Executes a crash-class fault. Never returns normally: the process dies
/// by the named signal, or spins until the supervisor's kill timer fires.
/// The busy loop touches a volatile so the optimizer cannot elide it.
[[noreturn]] void executeCrashFault(FaultKind K) {
  if (K == FaultKind::Segv)
    (void)raise(SIGSEGV);
  else if (K == FaultKind::Kill)
    (void)raise(SIGKILL);
  volatile uint64_t Spin = 0;
  for (;;)
    Spin = Spin + 1;
}
} // namespace

PhaseGuard::Outcome PhaseGuard::attempt(PhaseId P, Function &F) {
  const uint64_t Nth =
      Counts[static_cast<int>(P)].fetch_add(1, std::memory_order_relaxed) + 1;
  return attemptNth(P, F, Nth);
}

PhaseGuard::Outcome PhaseGuard::attemptNth(PhaseId P, Function &F,
                                           uint64_t Nth) {
  if (!guarding())
    return PM.attempt(P, F) ? Outcome::Active : Outcome::Dormant;

  // Crash-class faults fire before the snapshot: they model the phase
  // taking the whole process down, not a recoverable in-process failure.
  if (Opts.Faults)
    if (const FaultPlan::Fault *Crash = Opts.Faults->match(P, Nth))
      if (isCrashKind(Crash->Kind))
        executeCrashFault(Crash->Kind);

  Function Snapshot = F;
  const bool Active = PM.attempt(P, F);

  // Wrong-code faults apply after the phase so the mutated result is what
  // downstream consumers (canonicalizer, simulator) see. They are
  // unconditional per phase (FaultPlan::wrongCode) and always count as
  // active: a miscompiling phase reports success. No diagnostic — the
  // whole point is that nothing in the pipeline notices.
  if (Active && Opts.Faults && Opts.Faults->wrongCode(P))
    (void)applyWrongCodeFault(F);
  std::string Err;
  bool Injected = false;
  if (Opts.Faults && Opts.Faults->shouldFail(P, Nth)) {
    Err = "injected fault";
    Injected = true;
  } else if (Opts.Verify && Active) {
    // Dormant attempts leave the code untouched; only active ones can
    // break it.
    Err = verifyFunction(F);
  }
  if (Err.empty())
    return Active ? Outcome::Active : Outcome::Dormant;

  F = std::move(Snapshot);
  PhaseDiagnostic D;
  D.Phase = P;
  D.Func = F.Name;
  D.Message = std::move(Err);
  D.Application = Nth;
  D.Injected = Injected;
  std::lock_guard<std::mutex> Lock(DiagsMutex);
  Diags.push_back(std::move(D));
  return Outcome::RolledBack;
}
