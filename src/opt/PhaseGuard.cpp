//===- PhaseGuard.cpp - Verified, fault-tolerant phase application ------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/opt/PhaseGuard.h"

#include "src/ir/Function.h"
#include "src/ir/Verify.h"
#include "src/opt/PhaseManager.h"

using namespace pose;

bool FaultPlan::parse(const std::string &Spec, FaultPlan &Out) {
  FaultPlan Plan;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t End = Spec.find(',', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    const std::string Item = Spec.substr(Pos, End - Pos);
    // "<letter>:<nth>", nth a positive decimal number.
    if (Item.size() < 3 || Item[1] != ':')
      return false;
    int Index = -1;
    for (int I = 0; I != NumPhases; ++I)
      if (phaseCode(phaseByIndex(I)) == Item[0])
        Index = I;
    if (Index < 0)
      return false;
    uint64_t Nth = 0;
    for (size_t I = 2; I != Item.size(); ++I) {
      if (Item[I] < '0' || Item[I] > '9')
        return false;
      Nth = Nth * 10 + static_cast<uint64_t>(Item[I] - '0');
    }
    if (Nth == 0)
      return false;
    Plan.add(phaseByIndex(Index), Nth);
    Pos = End + 1;
  }
  if (Plan.empty())
    return false;
  Out = std::move(Plan);
  return true;
}

PhaseGuard::Outcome PhaseGuard::attempt(PhaseId P, Function &F) {
  const uint64_t Nth =
      Counts[static_cast<int>(P)].fetch_add(1, std::memory_order_relaxed) + 1;
  return attemptNth(P, F, Nth);
}

PhaseGuard::Outcome PhaseGuard::attemptNth(PhaseId P, Function &F,
                                           uint64_t Nth) {
  if (!guarding())
    return PM.attempt(P, F) ? Outcome::Active : Outcome::Dormant;

  Function Snapshot = F;
  const bool Active = PM.attempt(P, F);
  std::string Err;
  bool Injected = false;
  if (Opts.Faults && Opts.Faults->shouldFail(P, Nth)) {
    Err = "injected fault";
    Injected = true;
  } else if (Opts.Verify && Active) {
    // Dormant attempts leave the code untouched; only active ones can
    // break it.
    Err = verifyFunction(F);
  }
  if (Err.empty())
    return Active ? Outcome::Active : Outcome::Dormant;

  F = std::move(Snapshot);
  PhaseDiagnostic D;
  D.Phase = P;
  D.Func = F.Name;
  D.Message = std::move(Err);
  D.Application = Nth;
  D.Injected = Injected;
  std::lock_guard<std::mutex> Lock(DiagsMutex);
  Diags.push_back(std::move(D));
  return Outcome::RolledBack;
}
