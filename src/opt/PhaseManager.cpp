//===- PhaseManager.cpp - Phase registry and legality -------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/opt/PhaseManager.h"

#include "src/ir/Function.h"
#include "src/machine/RegisterAssign.h"
#include "src/opt/Cleanup.h"
#include "src/opt/Phases.h"

using namespace pose;

PhaseManager::PhaseManager() {
  Phases.resize(NumPhases);
  auto Put = [this](std::unique_ptr<Phase> P) {
    int Index = static_cast<int>(P->id());
    Phases[Index] = std::move(P);
  };
  Put(std::make_unique<BranchChainingPhase>());
  Put(std::make_unique<CsePhase>());
  Put(std::make_unique<UnreachableCodePhase>());
  Put(std::make_unique<LoopUnrollingPhase>());
  Put(std::make_unique<DeadAssignElimPhase>());
  Put(std::make_unique<BlockReorderingPhase>());
  Put(std::make_unique<MinimizeLoopJumpsPhase>());
  Put(std::make_unique<RegisterAllocationPhase>());
  Put(std::make_unique<LoopTransformsPhase>());
  Put(std::make_unique<CodeAbstractionPhase>());
  Put(std::make_unique<EvalOrderPhase>());
  Put(std::make_unique<StrengthReductionPhase>());
  Put(std::make_unique<ReverseBranchesPhase>());
  Put(std::make_unique<InstructionSelectionPhase>());
  Put(std::make_unique<UselessJumpsPhase>());
}

bool PhaseManager::requiresRegAssignment(PhaseId P) const {
  return P == PhaseId::Cse || P == PhaseId::RegisterAllocation;
}

bool PhaseManager::isLegal(PhaseId P, const Function &F) const {
  return isLegal(P, F.State);
}

bool PhaseManager::isLegal(PhaseId P, const PhaseState &S) const {
  switch (P) {
  case PhaseId::EvalOrder:
    // "Evaluation order determination can only be performed before
    // register assignment" (Section 3).
    return !S.RegsAssigned;
  case PhaseId::LoopUnrolling:
  case PhaseId::LoopTransforms:
    // Restricted "to be performed after register allocation is applied"
    // (Section 3).
    return S.RegAllocDone;
  default:
    return true;
  }
}

bool PhaseManager::attempt(PhaseId P, Function &F) const {
  assert(isLegal(P, F) && "attempted an illegal phase");
  if (requiresRegAssignment(P) && !F.State.RegsAssigned)
    assignRegisters(F);
  // Re-apply after the implicit CFG cleanup until the phase is dormant:
  // this guarantees the paper's invariant that "no phase in our compiler
  // can be applied successfully more than once consecutively", which the
  // exhaustive enumerator's pruning relies on.
  bool Active = false;
  while (phase(P).apply(F)) {
    Active = true;
    cleanupCfg(F);
  }
  return Active;
}

std::string PhaseManager::applySequence(Function &F,
                                        const std::string &Codes) const {
  std::string Active;
  for (char C : Codes) {
    PhaseId P = phaseFromCode(C);
    if (!isLegal(P, F))
      continue;
    if (attempt(P, F))
      Active += C;
  }
  return Active;
}
