//===- ReverseBranches.cpp - Phase r ------------------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// "Removes an unconditional jump by reversing a conditional branch
// branching over the jump" (Table 1). Pattern, in layout order:
//
//   A:  ... ; PC = IC cond, L1
//   B:  PC = L2            (single-instruction block, fall-through of A)
//   L1: ...                (the block immediately after B)
//
// becomes A: ... ; PC = IC !cond, L2, with B emptied (the implicit
// empty-block elimination then removes it).
//
//===----------------------------------------------------------------------===//

#include "src/ir/Function.h"
#include "src/opt/Phases.h"

using namespace pose;

bool ReverseBranchesPhase::apply(Function &F) const {
  bool Changed = false;
  for (size_t BI = 0; BI + 2 < F.Blocks.size(); ++BI) {
    BasicBlock &A = F.Blocks[BI];
    BasicBlock &B = F.Blocks[BI + 1];
    Rtl *T = A.terminator();
    if (!T || T->Opcode != Op::Branch)
      continue;
    if (B.Insts.size() != 1 || B.Insts[0].Opcode != Op::Jump)
      continue;
    // The branch must hop exactly over B.
    if (T->Src[0].Value != F.Blocks[BI + 2].Label)
      continue;
    // B must be reached only as A's fall-through: a jump elsewhere into B
    // would change meaning when B disappears.
    Cfg C = Cfg::build(F);
    if (C.Preds[BI + 1].size() != 1)
      continue;
    T->CC = invertCond(T->CC);
    T->Src[0] = B.Insts[0].Src[0];
    B.Insts.clear();
    Changed = true;
  }
  return Changed;
}
