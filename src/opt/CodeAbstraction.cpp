//===- CodeAbstraction.cpp - Phase n ------------------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// "Performs cross-jumping and code-hoisting to move identical instructions
// from basic blocks to their common predecessor or successor" (Table 1).
//
// Cross-jumping: when two predecessors of a join point end with the same
// instruction suffix followed by a jump to the join, one of them abandons
// its copy and jumps into the other's copy instead (the shared suffix is
// split into its own block).
//
// Hoisting: when both successors of a two-way branch begin with the same
// instruction and have no other predecessors, the instruction moves above
// the compare-and-branch in the common predecessor, provided it does not
// interact with the test.
//
//===----------------------------------------------------------------------===//

#include "src/ir/Function.h"
#include "src/opt/Phases.h"

using namespace pose;

namespace {

/// Length of the identical instruction suffix of A and B, excluding their
/// terminators.
size_t commonSuffix(const BasicBlock &A, const BasicBlock &B) {
  size_t LenA = A.Insts.size() - 1; // Exclude the trailing jump.
  size_t LenB = B.Insts.size() - 1;
  size_t L = 0;
  while (L < LenA && L < LenB &&
         A.Insts[LenA - 1 - L] == B.Insts[LenB - 1 - L])
    ++L;
  return L;
}

/// One round of cross-jumping; returns true if a transformation fired.
bool crossJumpOnce(Function &F) {
  Cfg C = Cfg::build(F);
  for (size_t J = 0; J != F.Blocks.size(); ++J) {
    const std::vector<int> &Preds = C.Preds[J];
    if (Preds.size() < 2)
      continue;
    for (size_t X = 0; X != Preds.size(); ++X) {
      for (size_t Y = 0; Y != Preds.size(); ++Y) {
        if (X == Y)
          continue;
        size_t P1 = static_cast<size_t>(Preds[X]); // Loses its suffix.
        size_t P2 = static_cast<size_t>(Preds[Y]); // Keeps and shares.
        const Rtl *T1 = F.Blocks[P1].terminator();
        const Rtl *T2 = F.Blocks[P2].terminator();
        // Both must reach J by explicit unconditional jump so that
        // retargeting P1 and splitting P2 is safe.
        if (!T1 || !T2 || T1->Opcode != Op::Jump || T2->Opcode != Op::Jump)
          continue;
        if (T1->Src[0].Value != F.Blocks[J].Label ||
            T2->Src[0].Value != F.Blocks[J].Label)
          continue;
        size_t L = commonSuffix(F.Blocks[P1], F.Blocks[P2]);
        if (L == 0)
          continue;
        // Split P2 into [head][C: suffix; jump J] and point P1 at C.
        BasicBlock Shared(F.makeLabel());
        BasicBlock &B2 = F.Blocks[P2];
        Shared.Insts.assign(B2.Insts.end() - 1 - static_cast<long>(L),
                            B2.Insts.end());
        B2.Insts.erase(B2.Insts.end() - 1 - static_cast<long>(L),
                       B2.Insts.end());
        // P2's head now falls through into the shared block.
        const int32_t SharedLabel = Shared.Label;
        F.Blocks.insert(F.Blocks.begin() + static_cast<long>(P2) + 1,
                        std::move(Shared));
        // P1 drops its suffix and jumps to the shared code.
        size_t P1Adjusted = P1 > P2 ? P1 + 1 : P1;
        BasicBlock &B1 = F.Blocks[P1Adjusted];
        B1.Insts.erase(B1.Insts.end() - 1 - static_cast<long>(L),
                       B1.Insts.end());
        B1.Insts.push_back(rtl::jump(SharedLabel));
        return true;
      }
    }
  }
  return false;
}

/// One round of hoisting; returns true if a transformation fired.
bool hoistOnce(Function &F) {
  Cfg C = Cfg::build(F);
  for (size_t P = 0; P != F.Blocks.size(); ++P) {
    BasicBlock &B = F.Blocks[P];
    // Need the canonical [..., cmp, branch] two-way ending.
    if (B.Insts.size() < 2)
      continue;
    Rtl &Br = B.Insts.back();
    Rtl &Cp = B.Insts[B.Insts.size() - 2];
    if (Br.Opcode != Op::Branch || Cp.Opcode != Op::Cmp)
      continue;
    if (C.Succs[P].size() != 2)
      continue;
    size_t S1 = static_cast<size_t>(C.Succs[P][0]);
    size_t S2 = static_cast<size_t>(C.Succs[P][1]);
    if (S1 == S2 || C.Preds[S1].size() != 1 || C.Preds[S2].size() != 1)
      continue;
    if (F.Blocks[S1].Insts.empty() || F.Blocks[S2].Insts.empty())
      continue;
    const Rtl &I1 = F.Blocks[S1].Insts.front();
    if (!(I1 == F.Blocks[S2].Insts.front()))
      continue;
    // The hoisted instruction moves above the compare: it must be a pure
    // register computation that neither feeds nor disturbs the test.
    if (I1.hasSideEffects() || I1.definesIC() || I1.usesIC() ||
        I1.readsMemory() || !I1.definesReg())
      continue;
    RegNum D = I1.Dst.getReg();
    bool Interferes = false;
    auto CheckReads = [&](const Rtl &T) {
      T.forEachUsedReg([&](RegNum R) { Interferes |= (R == D); });
    };
    CheckReads(Cp);
    CheckReads(Br);
    // The compare must not redefine I1's sources (it cannot — Cmp has no
    // register destination), so source values are stable.
    if (Interferes)
      continue;
    B.Insts.insert(B.Insts.end() - 2, I1);
    F.Blocks[S1].Insts.erase(F.Blocks[S1].Insts.begin());
    F.Blocks[S2].Insts.erase(F.Blocks[S2].Insts.begin());
    return true;
  }
  return false;
}

} // namespace

bool CodeAbstractionPhase::apply(Function &F) const {
  bool Changed = false;
  while (crossJumpOnce(F))
    Changed = true;
  while (hoistOnce(F))
    Changed = true;
  return Changed;
}
