//===- BranchChaining.cpp - Phase b -------------------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// "Replaces a branch or jump target with the target of the last jump in the
// jump chain" (Table 1). A chain link is a block whose only instruction is
// an unconditional jump. Per Section 5.1 of the paper, unreachable code
// occasionally left behind by branch chaining is removed during branch
// chaining itself.
//
//===----------------------------------------------------------------------===//

#include "src/ir/Function.h"
#include "src/opt/Cleanup.h"
#include "src/opt/Phases.h"

#include <set>

using namespace pose;

namespace {

/// Returns the label at the end of the jump chain starting at \p Label:
/// while the target block consists solely of an unconditional jump, follow
/// it. Cycles (empty infinite loops) terminate the walk.
int32_t chaseChain(const Function &F, int32_t Label) {
  std::set<int32_t> Visited;
  int32_t Cur = Label;
  while (Visited.insert(Cur).second) {
    int Index = F.findBlock(Cur);
    assert(Index >= 0 && "dangling label");
    const BasicBlock &B = F.Blocks[static_cast<size_t>(Index)];
    if (B.Insts.size() != 1 || B.Insts[0].Opcode != Op::Jump)
      break;
    Cur = B.Insts[0].Src[0].Value;
  }
  return Cur;
}

} // namespace

bool BranchChainingPhase::apply(Function &F) const {
  bool Changed = false;
  for (size_t BI = 0; BI != F.Blocks.size(); ++BI) {
    BasicBlock &B = F.Blocks[BI];
    Rtl *T = B.terminator();
    if (!T || (T->Opcode != Op::Jump && T->Opcode != Op::Branch))
      continue;
    // Never retarget a jump-only block to itself chasing its own chain.
    int32_t Target = T->Src[0].Value;
    int32_t Final = chaseChain(F, Target);
    if (Final != Target && Final != B.Label) {
      T->Src[0] = Operand::label(Final);
      Changed = true;
    }
  }
  if (Changed)
    removeUnreachableBlocks(F);
  return Changed;
}
