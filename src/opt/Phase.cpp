//===- Phase.cpp - Optimization phase interface ------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/opt/Phase.h"

#include <cassert>

using namespace pose;

Phase::~Phase() = default;

static constexpr char Codes[NumPhases + 1] = "bcdghijklnoqrsu";

PhaseId pose::phaseByIndex(int Index) {
  assert(Index >= 0 && Index < NumPhases && "phase index out of range");
  return static_cast<PhaseId>(Index);
}

char pose::phaseCode(PhaseId P) {
  return Codes[static_cast<int>(P)];
}

PhaseId pose::phaseFromCode(char Code) {
  for (int I = 0; I != NumPhases; ++I)
    if (Codes[I] == Code)
      return static_cast<PhaseId>(I);
  assert(false && "unknown phase code");
  return PhaseId::BranchChaining;
}

const char *pose::phaseName(PhaseId P) {
  switch (P) {
  case PhaseId::BranchChaining:
    return "branch chaining";
  case PhaseId::Cse:
    return "common subexpression elimination";
  case PhaseId::UnreachableCode:
    return "remove unreachable code";
  case PhaseId::LoopUnrolling:
    return "loop unrolling";
  case PhaseId::DeadAssignElim:
    return "dead assignment elim.";
  case PhaseId::BlockReordering:
    return "block reordering";
  case PhaseId::MinimizeLoopJumps:
    return "minimize loop jumps";
  case PhaseId::RegisterAllocation:
    return "register allocation";
  case PhaseId::LoopTransforms:
    return "loop transformations";
  case PhaseId::CodeAbstraction:
    return "code abstraction";
  case PhaseId::EvalOrder:
    return "evaluation order deter.";
  case PhaseId::StrengthReduction:
    return "strength reduction";
  case PhaseId::ReverseBranches:
    return "reverse branches";
  case PhaseId::InstructionSelection:
    return "instruction selection";
  case PhaseId::UselessJumps:
    return "remove useless jumps";
  }
  assert(false && "unknown phase");
  return "?";
}
