//===- Cleanup.h - Implicit CFG normalization ------------------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two implicit phases the paper excludes from the search alphabet:
/// "merge basic blocks and eliminate empty blocks ... only change the
/// internal control-flow representation as seen by the compiler and do not
/// directly affect the final generated code. These phases are now
/// implicitly performed after any transformation that has the potential of
/// enabling them" (paper, Section 3). Neither removes or adds an
/// instruction; they only normalize block structure.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_OPT_CLEANUP_H
#define POSE_OPT_CLEANUP_H

namespace pose {

class Function;

/// Eliminates instruction-less blocks (retargeting references to the next
/// block in layout) and merges fall-through pairs where the successor has
/// exactly one predecessor. Emitted instructions are unchanged. Returns
/// true if the representation changed.
bool cleanupCfg(Function &F);

/// Deletes blocks unreachable from the entry block. Used by the
/// unreachable-code phase (d) and by branch chaining (b), which per the
/// paper removes the unreachable code it creates itself. Returns true if
/// any block was removed.
bool removeUnreachableBlocks(Function &F);

} // namespace pose

#endif // POSE_OPT_CLEANUP_H
