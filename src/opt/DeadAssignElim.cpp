//===- DeadAssignElim.cpp - Phase h -------------------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// "Uses global analysis to remove assignments when the assigned value is
// never used" (Table 1). Covers register assignments and compares whose
// condition code is never tested (the debris useless-jump removal leaves
// behind — an enabling interaction measured in Section 5).
//
//===----------------------------------------------------------------------===//

#include "src/analysis/Liveness.h"
#include "src/ir/Function.h"
#include "src/opt/Phases.h"

using namespace pose;

bool DeadAssignElimPhase::apply(Function &F) const {
  bool Changed = false;
  bool Progress = true;
  // Deleting one dead assignment can kill the uses that kept another
  // alive; iterate to a fixed point.
  while (Progress) {
    Progress = false;
    Cfg C = Cfg::build(F);
    Liveness LV(F, C);
    for (size_t BI = 0; BI != F.Blocks.size(); ++BI) {
      BasicBlock &B = F.Blocks[BI];
      std::vector<BitVector> After = LV.liveAfterEach(F, BI);
      for (size_t J = B.Insts.size(); J-- > 0;) {
        const Rtl &I = B.Insts[J];
        if (I.hasSideEffects())
          continue;
        bool Dead = false;
        if (I.definesReg())
          Dead = !After[J].test(I.Dst.getReg());
        else if (I.definesIC())
          Dead = !After[J].test(LV.icIndex());
        else
          continue;
        if (!Dead)
          continue;
        B.Insts.erase(B.Insts.begin() + static_cast<long>(J));
        Changed = true;
        Progress = true;
      }
      if (Progress)
        break; // Liveness is stale after a deletion; recompute.
    }
  }
  return Changed;
}
