//===- StrengthReduction.cpp - Phase q ----------------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// "Replaces an expensive instruction with one or more cheaper ones. For
// this version of the compiler, this means changing a multiply by a
// constant into a series of shift, adds, and subtracts" (Table 1).
//
// The target has no multiply-by-immediate form, so a constant multiplier
// lives in a register; the phase recognizes a multiply whose operand is
// defined by a known constant move earlier in the same block. The move is
// left in place — if the register has no other use, dead assignment
// elimination collects it (one of the measured enabling interactions).
//
//===----------------------------------------------------------------------===//

#include "src/ir/Function.h"
#include "src/opt/Phases.h"

#include <optional>

using namespace pose;

namespace {

/// Returns the constant held by \p R at instruction position \p At of
/// \p B, when the unique in-block reaching definition is "mov R, imm".
std::optional<int32_t> constantAt(const BasicBlock &B, size_t At, RegNum R) {
  for (size_t K = At; K-- > 0;) {
    const Rtl &I = B.Insts[K];
    if (I.definesReg() && I.Dst.getReg() == R) {
      if (I.Opcode == Op::Mov && I.Src[0].isImm())
        return I.Src[0].Value;
      return std::nullopt;
    }
  }
  return std::nullopt;
}

/// Emits the cheap replacement of d = a * C into \p Out, or returns false
/// when no profitable series of at most two shifts/adds/subs exists.
bool expandMultiply(Operand D, Operand A, int32_t C,
                    std::vector<Rtl> &Out) {
  const RegNum DReg = D.getReg();
  const bool DistinctDst = !A.isReg() || A.getReg() != DReg;
  auto IsPow2 = [](int64_t V) { return V > 0 && (V & (V - 1)) == 0; };
  auto Log2 = [](int64_t V) {
    int K = 0;
    while ((int64_t(1) << K) < V)
      ++K;
    return K;
  };

  if (C == 0) {
    Out.push_back(rtl::mov(D, Operand::imm(0)));
    return true;
  }
  if (C == 1) {
    Out.push_back(rtl::mov(D, A));
    return true;
  }
  if (IsPow2(C)) {
    Out.push_back(rtl::binary(Op::Shl, D, A, Operand::imm(Log2(C))));
    return true;
  }
  if (C == -1) {
    Out.push_back(rtl::unary(Op::Neg, D, A));
    return true;
  }
  if (C < 0 && C != INT32_MIN && IsPow2(-static_cast<int64_t>(C))) {
    // d = a << k; d = -d. Safe even when d == a.
    Out.push_back(rtl::binary(Op::Shl, D, A,
                              Operand::imm(Log2(-static_cast<int64_t>(C)))));
    Out.push_back(rtl::unary(Op::Neg, D, D));
    return true;
  }
  // 2^k + 1 and 2^k - 1 need to re-read a after writing d.
  if (DistinctDst && C > 2 && IsPow2(static_cast<int64_t>(C) - 1)) {
    Out.push_back(rtl::binary(Op::Shl, D, A,
                              Operand::imm(Log2(static_cast<int64_t>(C) - 1))));
    Out.push_back(rtl::binary(Op::Add, D, D, A));
    return true;
  }
  if (DistinctDst && C > 3 && IsPow2(static_cast<int64_t>(C) + 1)) {
    Out.push_back(rtl::binary(Op::Shl, D, A,
                              Operand::imm(Log2(static_cast<int64_t>(C) + 1))));
    Out.push_back(rtl::binary(Op::Sub, D, D, A));
    return true;
  }
  return false;
}

} // namespace

bool StrengthReductionPhase::apply(Function &F) const {
  bool Changed = false;
  for (BasicBlock &B : F.Blocks) {
    for (size_t J = 0; J < B.Insts.size(); ++J) {
      const Rtl I = B.Insts[J];
      if (I.Opcode != Op::Mul)
        continue;
      // Either operand may be the constant one.
      for (int ConstSide = 0; ConstSide != 2; ++ConstSide) {
        const Operand &CandC = I.Src[ConstSide];
        const Operand &CandA = I.Src[1 - ConstSide];
        if (!CandC.isReg() || !CandA.isReg())
          continue;
        std::optional<int32_t> C = constantAt(B, J, CandC.getReg());
        if (!C)
          continue;
        std::vector<Rtl> Replacement;
        if (!expandMultiply(I.Dst, CandA, *C, Replacement))
          continue;
        B.Insts.erase(B.Insts.begin() + static_cast<long>(J));
        B.Insts.insert(B.Insts.begin() + static_cast<long>(J),
                       Replacement.begin(), Replacement.end());
        J += Replacement.size() - 1;
        Changed = true;
        break;
      }
    }
  }
  return Changed;
}
