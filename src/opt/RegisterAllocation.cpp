//===- RegisterAllocation.cpp - Phase k ---------------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// "Uses graph coloring to replace references to a variable within a live
// range with a register" (Table 1). Candidates are scalar stack slots
// whose every reference is the base of a load or store — which is exactly
// why the paper notes register allocation "can only be performed after
// instruction selection, so that candidate load and store instructions can
// contain the addresses of arguments or local scalars": before instruction
// selection folds the address computation, every slot is referenced
// through a Lea and no candidate exists (the phase is dormant).
//
// Promotion turns loads into moves from the variable's register and stores
// into moves into it; instruction selection then collapses those moves —
// the strong k-enables-s interaction the paper measures in Table 4.
//
//===----------------------------------------------------------------------===//

#include "src/analysis/Liveness.h"
#include "src/ir/Function.h"
#include "src/machine/Target.h"
#include "src/opt/Phases.h"

using namespace pose;

namespace {

/// Per-boundary liveness of one stack-slot variable: Live[B][J] = live
/// just after instruction J of block B; LiveIn/LiveOut per block.
struct VarLiveness {
  std::vector<std::vector<bool>> AfterInst;
  std::vector<bool> LiveIn, LiveOut;
};

bool isVarUse(const Rtl &I, int32_t Slot) {
  return I.Opcode == Op::Load && I.Src[0].isSlot() &&
         I.Src[0].Value == Slot;
}

bool isVarDef(const Rtl &I, int32_t Slot) {
  return I.Opcode == Op::Store && I.Src[0].isSlot() &&
         I.Src[0].Value == Slot;
}

VarLiveness computeVarLiveness(const Function &F, const Cfg &C,
                               int32_t Slot) {
  const size_t N = F.Blocks.size();
  VarLiveness V;
  V.LiveIn.assign(N, false);
  V.LiveOut.assign(N, false);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t B = N; B-- > 0;) {
      bool Out = false;
      for (int S : C.Succs[B])
        Out |= V.LiveIn[static_cast<size_t>(S)];
      bool Cur = Out;
      const BasicBlock &Blk = F.Blocks[B];
      for (size_t J = Blk.Insts.size(); J-- > 0;) {
        if (isVarDef(Blk.Insts[J], Slot))
          Cur = false;
        if (isVarUse(Blk.Insts[J], Slot))
          Cur = true;
      }
      if (Out != V.LiveOut[B] || Cur != V.LiveIn[B]) {
        V.LiveOut[B] = Out;
        V.LiveIn[B] = Cur;
        Changed = true;
      }
    }
  }
  V.AfterInst.resize(N);
  for (size_t B = 0; B != N; ++B) {
    const BasicBlock &Blk = F.Blocks[B];
    V.AfterInst[B].assign(Blk.Insts.size(), false);
    bool Cur = V.LiveOut[B];
    for (size_t J = Blk.Insts.size(); J-- > 0;) {
      V.AfterInst[B][J] = Cur;
      if (isVarDef(Blk.Insts[J], Slot))
        Cur = false;
      if (isVarUse(Blk.Insts[J], Slot))
        Cur = true;
    }
  }
  return V;
}

/// True if hardware register \p R never coexists with the variable: at
/// every boundary where the variable is live, R is dead, and R is never
/// written while the variable is live across the write.
bool regFreeForVar(const Function &F, const Liveness &LV,
                   const VarLiveness &V, RegNum R) {
  for (size_t B = 0; B != F.Blocks.size(); ++B) {
    if (V.LiveIn[B] && LV.liveIn(B).test(R))
      return false;
    const BasicBlock &Blk = F.Blocks[B];
    std::vector<BitVector> After = LV.liveAfterEach(F, B);
    for (size_t J = 0; J != Blk.Insts.size(); ++J) {
      if (V.AfterInst[B][J] && After[J].test(R))
        return false;
      // A write to R while the variable is live afterward clobbers it
      // even if R's own value is dead.
      if (V.AfterInst[B][J] && Blk.Insts[J].definesReg() &&
          Blk.Insts[J].Dst.getReg() == R)
        return false;
    }
  }
  return true;
}

/// True if every textual reference to \p Slot is as a load/store base
/// (i.e. the slot's address never escapes through a Lea and it is never
/// accessed with a nonzero offset), and promotion would actually help.
bool promotable(const Function &F, int32_t Slot) {
  size_t Loads = 0, Stores = 0;
  bool SoleLoadInEntry = false;
  for (size_t BI = 0; BI != F.Blocks.size(); ++BI) {
    for (const Rtl &I : F.Blocks[BI].Insts) {
      auto Mentions = [Slot](const Operand &O) {
        return O.isSlot() && O.Value == Slot;
      };
      if (Mentions(I.Src[0]) &&
          (I.Opcode == Op::Load || I.Opcode == Op::Store)) {
        if (I.Src[1].Value != 0)
          return false; // Offset access: not a plain scalar reference.
        if (I.Opcode == Op::Load) {
          ++Loads;
          SoleLoadInEntry = (BI == 0);
        } else {
          ++Stores;
        }
        continue;
      }
      for (const Operand &O : I.Src)
        if (Mentions(O))
          return false; // Lea or other escape.
    }
  }
  // A parameter whose only reference is a single load in the entry block
  // is what promotion itself produces (the materializing load); treating
  // it as a candidate again would spin forever — and promoting such a
  // slot could not reduce the access count anyway.
  if (Slot < F.NumParams && Stores == 0 && Loads == 1 && SoleLoadInEntry)
    return false;
  return Loads + Stores > 0;
}

/// Rewrites every access of \p Slot to use register \p R.
void promote(Function &F, int32_t Slot, RegNum R) {
  for (BasicBlock &B : F.Blocks) {
    for (Rtl &I : B.Insts) {
      if (isVarUse(I, Slot))
        I = rtl::mov(I.Dst, Operand::reg(R));
      else if (isVarDef(I, Slot))
        I = rtl::mov(Operand::reg(R), I.Src[2]);
    }
  }
  // Parameters arrive in their stack slot; materialize the register once
  // at function entry. The load must execute exactly once, so when the
  // current entry block is a branch target (e.g. a loop header), the
  // function gets a dedicated entry block first.
  if (Slot < F.NumParams) {
    Cfg C = Cfg::build(F);
    if (!C.Preds[0].empty())
      F.Blocks.insert(F.Blocks.begin(), BasicBlock(F.makeLabel()));
    BasicBlock &Entry = F.Blocks[0];
    Entry.Insts.insert(Entry.Insts.begin(),
                       rtl::load(Operand::reg(R), Operand::slot(Slot), 0));
  }
}

} // namespace

bool RegisterAllocationPhase::apply(Function &F) const {
  assert(F.State.RegsAssigned &&
         "register allocation requires register assignment");
  bool Changed = false;
  // Greedily promote candidates in slot order; recompute liveness after
  // each promotion since the chosen register becomes live over the range.
  for (int32_t Slot = 0; Slot != static_cast<int32_t>(F.Slots.size());
       ++Slot) {
    if (F.Slots[Slot].IsArray || !promotable(F, Slot))
      continue;
    Cfg C = Cfg::build(F);
    Liveness LV(F, C);
    VarLiveness V = computeVarLiveness(F, C, Slot);
    for (RegNum R = 0; R != target::NumAllocatableRegs; ++R) {
      if (!regFreeForVar(F, LV, V, R))
        continue;
      promote(F, Slot, R);
      Changed = true;
      break;
    }
  }
  if (Changed)
    F.State.RegAllocDone = true;
  return Changed;
}
