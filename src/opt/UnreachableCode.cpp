//===- UnreachableCode.cpp - Phase d ------------------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// "Removes basic blocks that cannot be reached from the function entry
// block" (Table 1). Rarely active in practice because branch chaining
// cleans up after itself (Section 5.1), but front ends can produce
// unreachable code (e.g. statements after a return inside a loop).
//
//===----------------------------------------------------------------------===//

#include "src/opt/Cleanup.h"
#include "src/opt/Phases.h"

using namespace pose;

bool UnreachableCodePhase::apply(Function &F) const {
  return removeUnreachableBlocks(F);
}
