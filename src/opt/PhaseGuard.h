//===- PhaseGuard.h - Verified, fault-tolerant phase application -*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wraps PhaseManager::attempt with an optional post-phase IR verification
/// and a rollback path: when a phase leaves the function structurally
/// broken, the guard restores the exact pre-phase instance, records a
/// structured diagnostic, and reports the phase as rolled back so callers
/// can mark it dormant and continue instead of crashing. Exhaustive
/// enumeration applies phases millions of times; one miscompiling phase
/// must cost one pruned edge, not the whole run.
///
/// Because genuine verifier failures are (by design) rare, the rollback
/// path carries a deterministic fault-injection hook: a FaultPlan names
/// applications that must be treated as verifier failures ("fail the Nth
/// application of phase P"), making the recovery machinery itself
/// testable end to end.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_OPT_PHASEGUARD_H
#define POSE_OPT_PHASEGUARD_H

#include "src/opt/Phase.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace pose {

class Function;
class PhaseManager;

/// One guarded failure: which phase broke which function, and how.
struct PhaseDiagnostic {
  PhaseId Phase = PhaseId::BranchChaining;
  std::string Func;    ///< Name of the function being optimized.
  std::string Message; ///< Verifier message (or injected-fault note).
  /// 1-based count of applications of Phase through this guard when the
  /// failure happened (the FaultPlan coordinate).
  uint64_t Application = 0;
  bool Injected = false; ///< True when produced by a FaultPlan.
};

/// What an injected fault does when it fires. Verifier faults stay in
/// process (roll back, record a diagnostic, prune the edge); the crash
/// classes take the process down the way a genuinely broken phase would,
/// so the out-of-process supervisor's kill/retry/quarantine paths are
/// testable deterministically. Crash faults are only honored by
/// `posec --worker` / `--supervise` (a crash in an unsupervised process
/// loses the run, which is the very thing being tested).
enum class FaultKind : uint8_t {
  Verifier = 0, ///< Simulated verifier failure; rolled back in process.
  Segv,         ///< raise(SIGSEGV): die like a wild pointer would.
  Kill,         ///< raise(SIGKILL): die with no chance to clean up.
  Hang,         ///< Spin forever: trip the supervisor's kill timer.
  WrongCode,    ///< Silent miscompilation: the phase "succeeds" but the
                ///< code it leaves behind is deterministically mutated
                ///< (see applyWrongCodeFault). Nothing notices until a
                ///< behavioral check (posec --equiv-check) runs — which
                ///< is exactly what it exists to prove able to fail.
};

/// Short lower-case name ("verifier", "segv", "kill", "hang",
/// "wrongcode").
const char *faultKindName(FaultKind K);

/// True for the kinds that take the process down (Segv/Kill/Hang).
inline bool isCrashKind(FaultKind K) {
  return K == FaultKind::Segv || K == FaultKind::Kill ||
         K == FaultKind::Hang;
}

/// Deterministic fault injection: fail the Nth application of phase P.
/// Counts are per phase and 1-based, matching PhaseGuard::applications().
struct FaultPlan {
  struct Fault {
    PhaseId Phase = PhaseId::BranchChaining;
    uint64_t Application = 0;
    FaultKind Kind = FaultKind::Verifier;
  };
  std::vector<Fault> Faults;

  void add(PhaseId P, uint64_t Nth, FaultKind K = FaultKind::Verifier) {
    Faults.push_back({P, Nth, K});
  }
  bool empty() const { return Faults.empty(); }
  /// The fault scheduled for the Nth application of \p P, or nullptr.
  const Fault *match(PhaseId P, uint64_t Nth) const {
    for (const Fault &F : Faults)
      if (F.Phase == P && F.Application == Nth)
        return &F;
    return nullptr;
  }
  bool shouldFail(PhaseId P, uint64_t Nth) const {
    const Fault *F = match(P, Nth);
    return F && F->Kind == FaultKind::Verifier;
  }
  /// True when any fault is a crash class (Segv/Kill/Hang).
  bool hasCrashFault() const {
    for (const Fault &F : Faults)
      if (isCrashKind(F.Kind))
        return true;
    return false;
  }
  /// True when every fault is a crash class (required by the worker's
  /// attempt-gated injection, which drops the whole plan after the
  /// configured number of faulty attempts).
  bool allCrashFaults() const {
    for (const Fault &F : Faults)
      if (!isCrashKind(F.Kind))
        return false;
    return !Faults.empty();
  }
  /// The wrong-code fault afflicting phase \p P, or nullptr. Unlike the
  /// other kinds, wrong-code faults are unconditional: a miscompiling
  /// phase is broken on every application, so the Nth coordinate in the
  /// spec is accepted but ignored. That is what keeps the mutation
  /// replayable — a DAG walk re-applies phases in a different order (and
  /// count) than the enumeration did, so any application-numbered rule
  /// could not reproduce the same instances.
  const Fault *wrongCode(PhaseId P) const {
    for (const Fault &F : Faults)
      if (F.Phase == P && F.Kind == FaultKind::WrongCode)
        return &F;
    return nullptr;
  }

  /// Parses a comma-separated "<letter>:<nth>[:<kind>]" spec, e.g. "c:3",
  /// "c:3,s:1", or "s:2:segv" (the posec --inject-fault format); kind is
  /// one of segv/kill/hang/wrongcode and defaults to a verifier fault.
  /// Returns false on an unknown phase letter, a missing/zero/non-numeric
  /// count, an unknown kind, or any other malformed input; \p Out is
  /// unchanged on failure.
  static bool parse(const std::string &Spec, FaultPlan &Out);
};

/// The deterministic wrong-code mutation: increments the first immediate
/// source operand of \p F (block order, then instruction order, then
/// operand order). Returns false when the function has no immediate to
/// mutate, in which case it is left untouched. The mutation preserves
/// structural validity (the verifier checks shape, not values), so only
/// a behavioral oracle can catch it. Exposed so DAG walks
/// (DagPaths::materialize / forEachInstance) can replay exactly what the
/// guard did during enumeration.
bool applyWrongCodeFault(Function &F);

/// Guarded phase application. With verification and fault injection both
/// off the guard is a pass-through over PhaseManager::attempt (one counter
/// increment); with either on, it snapshots the function before the
/// attempt so a failure can be rolled back exactly.
///
/// A guard may be shared by several threads: application counts are
/// atomic and diagnostics collection is mutex-protected, so concurrent
/// attempt() calls are safe. The *numbering* of concurrent attempts is
/// whatever order the threads win the counter, though — callers that need
/// deterministic application numbers across thread counts (the parallel
/// enumerator's FaultPlan coordinates) precompute them and use
/// attemptNth() instead. diagnostics()/takeDiagnostics() must only be
/// called once attempts have quiesced.
class PhaseGuard {
public:
  enum class Outcome : uint8_t {
    Dormant,    ///< Phase ran and changed nothing.
    Active,     ///< Phase ran, changed the code, and (if asked) verified.
    RolledBack, ///< Phase broke the IR; the pre-phase instance was
                ///< restored and a diagnostic recorded. Treat as dormant.
  };

  struct Options {
    /// Run verifyFunction after every active application.
    bool Verify = false;
    /// Deterministic fault injection (not owned; may be nullptr).
    const FaultPlan *Faults = nullptr;
  };

  explicit PhaseGuard(const PhaseManager &PM) : PM(PM) {}
  PhaseGuard(const PhaseManager &PM, Options Opts) : PM(PM), Opts(Opts) {}

  /// Attempts \p P on \p F under the guard. \p P must be legal for \p F.
  Outcome attempt(PhaseId P, Function &F);

  /// Same as attempt(), but with a caller-supplied 1-based application
  /// number (the FaultPlan coordinate) instead of the internal counter,
  /// which is left untouched. This is how the parallel enumerator keeps
  /// fault injection deterministic: it numbers applications in sequential
  /// frontier order regardless of which worker performs them.
  Outcome attemptNth(PhaseId P, Function &F, uint64_t Nth);

  /// True when attempts snapshot and can roll back.
  bool guarding() const {
    return Opts.Verify || (Opts.Faults && !Opts.Faults->empty());
  }

  /// 1-based count of applications of \p P so far through this guard
  /// (attempt() only; attemptNth() does not count).
  uint64_t applications(PhaseId P) const {
    return Counts[static_cast<int>(P)].load(std::memory_order_relaxed);
  }

  /// Seeds the per-phase application counters so the next attempt() of a
  /// phase P numbers as Counts[P] + 1. Checkpoint resume uses this to
  /// keep FaultPlan coordinates and diagnostic application numbers
  /// continuous across process lifetimes. Not synchronized — seed before
  /// sharing the guard.
  void seedApplications(const uint64_t (&Seed)[NumPhases]) {
    for (int I = 0; I != NumPhases; ++I)
      Counts[I].store(Seed[I], std::memory_order_relaxed);
  }

  const std::vector<PhaseDiagnostic> &diagnostics() const { return Diags; }
  std::vector<PhaseDiagnostic> takeDiagnostics() {
    std::lock_guard<std::mutex> Lock(DiagsMutex);
    return std::move(Diags);
  }

  const PhaseManager &manager() const { return PM; }

private:
  const PhaseManager &PM;
  Options Opts{};
  std::atomic<uint64_t> Counts[NumPhases] = {};
  std::mutex DiagsMutex;
  std::vector<PhaseDiagnostic> Diags;
};

} // namespace pose

#endif // POSE_OPT_PHASEGUARD_H
