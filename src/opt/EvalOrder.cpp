//===- EvalOrder.cpp - Phase o ------------------------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// "Reorders instructions within a single basic block in an attempt to use
// fewer registers" (Table 1). Legal only before register assignment: the
// point of the phase is to reduce the number of temporaries that register
// assignment will later have to map onto hardware registers (Section 3).
//
// Implementation: per-block dependence DAG plus greedy list scheduling.
// The ready instruction that frees the most registers (operands whose last
// use it is, minus a new value it creates) is emitted first, which
// approximates Sethi-Ullman ordering of independent expression trees.
//
//===----------------------------------------------------------------------===//

#include "src/analysis/DependenceDag.h"
#include "src/analysis/Liveness.h"
#include "src/ir/Function.h"
#include "src/opt/Phases.h"

#include <map>
#include <set>

using namespace pose;

namespace {

/// Greedy schedule of one block. Returns the new order (indices into the
/// original instruction vector).
std::vector<size_t> scheduleBlock(const Function &F, const BasicBlock &B,
                                  const BitVector &LiveOut) {
  const size_t N = B.Insts.size();
  std::vector<std::set<size_t>> Preds = blockDependences(B);
  std::vector<int> PendingPreds(N, 0);
  std::vector<std::vector<size_t>> Succs(N);
  for (size_t J = 0; J != N; ++J) {
    PendingPreds[J] = static_cast<int>(Preds[J].size());
    for (size_t P : Preds[J])
      Succs[P].push_back(J);
  }
  // Remaining use counts per register, to know when an instruction's
  // operand dies (its last use in this block and not live out).
  std::map<RegNum, int> UsesLeft;
  for (const Rtl &I : B.Insts)
    I.forEachUsedReg([&](RegNum R) { ++UsesLeft[R]; });

  std::set<size_t> Ready;
  for (size_t J = 0; J != N; ++J)
    if (PendingPreds[J] == 0)
      Ready.insert(J);

  std::vector<size_t> Order;
  Order.reserve(N);
  while (!Ready.empty()) {
    // Score = registers freed minus registers created; higher is better.
    size_t Best = SIZE_MAX;
    int BestScore = INT32_MIN;
    for (size_t J : Ready) {
      const Rtl &I = B.Insts[J];
      int Freed = 0;
      std::set<RegNum> Seen;
      I.forEachUsedReg([&](RegNum R) {
        if (!Seen.insert(R).second)
          return;
        if (UsesLeft.at(R) == 1 && !LiveOut.test(R) &&
            !(I.definesReg() && I.Dst.getReg() == R))
          ++Freed;
      });
      int Created = I.definesReg() ? 1 : 0;
      int Score = Freed - Created;
      // Prefer higher score; break ties toward original program order so
      // the schedule is deterministic and respects source structure.
      if (Score > BestScore || (Score == BestScore && J < Best)) {
        BestScore = Score;
        Best = J;
      }
    }
    Ready.erase(Best);
    Order.push_back(Best);
    B.Insts[Best].forEachUsedReg([&](RegNum R) { --UsesLeft[R]; });
    for (size_t S : Succs[Best])
      if (--PendingPreds[S] == 0)
        Ready.insert(S);
  }
  (void)F;
  assert(Order.size() == N && "dependence cycle in a basic block");
  return Order;
}

} // namespace

bool EvalOrderPhase::apply(Function &F) const {
  assert(!F.State.RegsAssigned &&
         "evaluation order determination is illegal after register "
         "assignment");
  bool Changed = false;
  Cfg C = Cfg::build(F);
  Liveness LV(F, C);
  for (size_t BI = 0; BI != F.Blocks.size(); ++BI) {
    BasicBlock &B = F.Blocks[BI];
    if (B.Insts.size() < 3)
      continue;
    std::vector<size_t> Order = scheduleBlock(F, B, LV.liveOut(BI));
    bool Identity = true;
    for (size_t J = 0; J != Order.size(); ++J)
      Identity &= (Order[J] == J);
    if (Identity)
      continue;
    std::vector<Rtl> NewInsts;
    NewInsts.reserve(B.Insts.size());
    for (size_t J : Order)
      NewInsts.push_back(B.Insts[J]);
    B.Insts = std::move(NewInsts);
    Changed = true;
  }
  return Changed;
}
