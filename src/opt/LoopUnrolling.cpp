//===- LoopUnrolling.cpp - Phase g --------------------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// "Loop unrolling to potentially reduce the number of comparisons and
// branches at runtime and to aid scheduling at the cost of code size
// increase" (Table 1). The unroll factor is fixed at two, as in the paper
// ("we always attempt it with a loop unroll factor of two since we are
// generating code for an embedded processor where code size can be a
// significant issue").
//
// The phase recognizes bottom-tested single-block loops — the shape loop
// inversion (j) produces — and duplicates the body so the back edge is
// taken once per two iterations. Legal only after register allocation,
// since the transformation reasons about values kept in registers
// (Section 3).
//
//===----------------------------------------------------------------------===//

#include "src/analysis/Dominators.h"
#include "src/analysis/Loops.h"
#include "src/ir/Function.h"
#include "src/opt/Phases.h"

using namespace pose;

namespace {

/// Body-size bound: duplicating large bodies costs too much code size for
/// an embedded target.
constexpr size_t MaxUnrollBody = 16;

} // namespace

bool LoopUnrollingPhase::apply(Function &F) const {
  assert(F.State.RegAllocDone &&
         "loop unrolling is restricted to run after register allocation");
  bool Changed = false;
  Cfg C = Cfg::build(F);
  Dominators D(F, C);
  LoopInfo LI(F, C, D);

  // Collect the self-loop headers first; transforming invalidates indices,
  // so re-find blocks by label afterward.
  std::vector<int32_t> Targets;
  for (const Loop &L : LI.loops()) {
    if (L.Blocks.size() != 1)
      continue;
    const BasicBlock &B = F.Blocks[static_cast<size_t>(L.Header)];
    const Rtl *T = B.terminator();
    if (!T || T->Opcode != Op::Branch || T->Src[0].Value != B.Label)
      continue;
    if (B.Insts.size() > MaxUnrollBody)
      continue;
    Targets.push_back(B.Label);
  }

  for (int32_t Label : Targets) {
    int Index = F.findBlock(Label);
    assert(Index >= 0 && "unroll target vanished");
    size_t L = static_cast<size_t>(Index);
    assert(L + 1 < F.Blocks.size() &&
           "self-loop block cannot be last (its branch falls through)");
    const int32_t ExitLabel = F.Blocks[L + 1].Label;

    // Clone the body; the clone keeps the conditional back edge to the
    // original block, whose own branch is inverted to exit directly.
    BasicBlock Clone(F.makeLabel());
    Clone.Insts = F.Blocks[L].Insts;

    Rtl &OrigBranch = F.Blocks[L].Insts.back();
    OrigBranch.CC = invertCond(OrigBranch.CC);
    OrigBranch.Src[0] = Operand::label(ExitLabel);

    F.Blocks.insert(F.Blocks.begin() + static_cast<long>(L) + 1,
                    std::move(Clone));
    Changed = true;
  }
  return Changed;
}
