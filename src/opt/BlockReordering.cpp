//===- BlockReordering.cpp - Phase i ------------------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// "Removes a jump by reordering blocks when the target of the jump has only
// a single predecessor" (Table 1). If block A ends with an unconditional
// jump to L and L's only predecessor is A, the fall-through chain headed by
// L can be moved directly after A and the jump deleted.
//
//===----------------------------------------------------------------------===//

#include "src/ir/Function.h"
#include "src/opt/Phases.h"

#include <algorithm>

using namespace pose;

namespace {

/// Returns the indices of the maximal fall-through chain starting at
/// \p Start: consecutive blocks where each falls through to the next,
/// ending at the first block that transfers control unconditionally
/// (Jump or Ret). Returns an empty vector if the chain runs into the end
/// of the function while still falling through (cannot happen in verified
/// code) or would be unbounded.
std::vector<size_t> fallThroughChain(const Function &F, size_t Start) {
  std::vector<size_t> Chain;
  for (size_t I = Start; I < F.Blocks.size(); ++I) {
    Chain.push_back(I);
    if (!Cfg::fallsThrough(F.Blocks[I]))
      return Chain;
  }
  return {};
}

} // namespace

bool BlockReorderingPhase::apply(Function &F) const {
  bool Changed = false;
  bool Progress = true;
  while (Progress) {
    Progress = false;
    Cfg C = Cfg::build(F);
    for (size_t AI = 0; AI != F.Blocks.size(); ++AI) {
      Rtl *T = F.Blocks[AI].terminator();
      if (!T || T->Opcode != Op::Jump)
        continue;
      int LI = F.findBlock(T->Src[0].Value);
      assert(LI >= 0 && "dangling jump target");
      size_t L = static_cast<size_t>(LI);
      if (L == AI || L == AI + 1)
        continue; // Self-loop, or useless jump (phase u's business).
      if (L == 0 || C.Preds[L].size() != 1)
        continue;
      // L may not be entered by fall-through from its layout predecessor
      // (its single predecessor is A, and A jumps, so this holds unless
      // the layout predecessor *is* that jump; check structurally).
      if (Cfg::fallsThrough(F.Blocks[L - 1]))
        continue;
      std::vector<size_t> Chain = fallThroughChain(F, L);
      if (Chain.empty())
        continue;
      // The chain must be self-contained: moving it must not separate A
      // from it, and it must not contain A.
      if (std::find(Chain.begin(), Chain.end(), AI) != Chain.end())
        continue;
      // Move Chain to sit right after A and delete A's jump.
      std::vector<BasicBlock> Moved;
      Moved.reserve(Chain.size());
      for (size_t I : Chain)
        Moved.push_back(std::move(F.Blocks[I]));
      // Erase the chain (contiguous by construction) …
      F.Blocks.erase(F.Blocks.begin() + static_cast<long>(Chain.front()),
                     F.Blocks.begin() + static_cast<long>(Chain.back()) + 1);
      // … recompute A's position if the chain was before A …
      size_t InsertAt = AI < Chain.front() ? AI + 1 : AI + 1 - Chain.size();
      F.Blocks.insert(F.Blocks.begin() + static_cast<long>(InsertAt),
                      std::make_move_iterator(Moved.begin()),
                      std::make_move_iterator(Moved.end()));
      // … and delete the now-redundant jump at the end of A.
      F.Blocks[InsertAt - 1].Insts.pop_back();
      Changed = true;
      Progress = true;
      break; // Indices shifted; restart the scan.
    }
  }
  return Changed;
}
