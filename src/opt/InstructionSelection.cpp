//===- InstructionSelection.cpp - Phase s -------------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// "Combines pairs or triples of instructions together where the
// instructions are linked by set/use dependencies. After combining the
// effects of the instructions, it also performs constant folding and
// checks if the resulting effect is a legal instruction before committing
// to the transformation" (Table 1).
//
// Combination shapes handled (producer A, consumer B, within one block):
//   1. A: mov d, imm     B uses d          -> fold imm into B
//   2. A: mov d, s       B uses d          -> rename d to s in B
//   3. A: lea d, base    B: load/store [d] -> fold base into the access
//   4. A: <compute> d    B: mov x, d       -> retarget A to compute x
// All require that B is the only consumer of d and that nothing between A
// and B disturbs the combined effect. Shape 1 + constant folding subsumes
// the classic mov/mov/add triple: each pair collapses in turn.
//
//===----------------------------------------------------------------------===//

#include "src/analysis/Liveness.h"
#include "src/ir/Function.h"
#include "src/machine/Target.h"
#include "src/opt/Phases.h"

#include <optional>

using namespace pose;

namespace {

/// Returns the constant-folded result of a binary op, or nullopt when the
/// fold must be abandoned (division by zero belongs to runtime, and the
/// compiler must not change *when* it traps).
std::optional<int32_t> foldBinary(Op O, int32_t A, int32_t B) {
  const uint32_t UA = static_cast<uint32_t>(A);
  const uint32_t UB = static_cast<uint32_t>(B);
  switch (O) {
  case Op::Add:
    return static_cast<int32_t>(UA + UB);
  case Op::Sub:
    return static_cast<int32_t>(UA - UB);
  case Op::Mul:
    return static_cast<int32_t>(UA * UB);
  case Op::Div:
    if (B == 0 || (A == INT32_MIN && B == -1))
      return std::nullopt;
    return A / B;
  case Op::Rem:
    if (B == 0 || (A == INT32_MIN && B == -1))
      return std::nullopt;
    return A % B;
  case Op::And:
    return A & B;
  case Op::Or:
    return A | B;
  case Op::Xor:
    return A ^ B;
  case Op::Shl:
    return static_cast<int32_t>(UA << (UB & 31));
  case Op::Shr:
    return A >> (UB & 31);
  case Op::Ushr:
    return static_cast<int32_t>(UA >> (UB & 31));
  default:
    return std::nullopt;
  }
}

/// Folds \p I in place if all value operands are immediates. Returns true
/// if \p I became a Mov of a constant.
bool constantFold(Rtl &I) {
  if (I.isBinary() && I.Src[0].isImm() && I.Src[1].isImm()) {
    std::optional<int32_t> V =
        foldBinary(I.Opcode, I.Src[0].Value, I.Src[1].Value);
    if (!V)
      return false;
    I = rtl::mov(I.Dst, Operand::imm(*V));
    return true;
  }
  if (I.Opcode == Op::Neg && I.Src[0].isImm()) {
    I = rtl::mov(I.Dst, Operand::imm(static_cast<int32_t>(
                            0u - static_cast<uint32_t>(I.Src[0].Value))));
    return true;
  }
  if (I.Opcode == Op::Not && I.Src[0].isImm()) {
    I = rtl::mov(I.Dst, Operand::imm(~I.Src[0].Value));
    return true;
  }
  return false;
}

/// Checks whether instructions in (P, Q) leave the combination of A (at P)
/// into B (at Q) valid: nothing redefines A's destination or sources, no
/// other instruction consumes A's destination, and when A reads memory no
/// intervening instruction may write it.
bool regionAllowsCombine(const BasicBlock &B, size_t P, size_t Q,
                         const Rtl &A) {
  const RegNum D = A.Dst.getReg();
  for (size_t K = P + 1; K < Q; ++K) {
    const Rtl &M = B.Insts[K];
    bool UsesD = false;
    M.forEachUsedReg([&](RegNum R) { UsesD |= (R == D); });
    if (UsesD)
      return false; // d has another consumer.
    if (M.definesReg()) {
      RegNum W = M.Dst.getReg();
      if (W == D)
        return false;
      bool Clobbers = false;
      A.forEachUsedReg([&](RegNum R) { Clobbers |= (R == W); });
      if (Clobbers)
        return false;
    }
    if (A.readsMemory() &&
        (M.Opcode == Op::Store || M.Opcode == Op::Call))
      return false;
  }
  return true;
}

/// Returns true if register \p D is consumed anywhere at or after position
/// \p Q (exclusive of the instruction at Q itself), or is live out of the
/// block; used to decide whether the producer can be deleted.
bool usedBeyond(const Function &F, const Liveness &LV, size_t BlockIndex,
                size_t Q, RegNum D) {
  const BasicBlock &B = F.Blocks[BlockIndex];
  for (size_t K = Q + 1; K < B.Insts.size(); ++K) {
    const Rtl &M = B.Insts[K];
    bool Uses = false;
    M.forEachUsedReg([&](RegNum R) { Uses |= (R == D); });
    if (Uses)
      return true;
    if (M.definesReg() && M.Dst.getReg() == D)
      return false; // Redefined before any further use.
  }
  return LV.liveOut(BlockIndex).test(D);
}

/// Substitutes operand \p From with \p To in every use position of \p I.
/// Returns the rewritten instruction.
Rtl substitute(const Rtl &I, RegNum From, const Operand &To) {
  Rtl Out = I;
  for (Operand &S : Out.Src)
    if (S.isReg() && S.getReg() == From)
      S = To;
  for (Operand &A : Out.Args)
    if (A.isReg() && A.getReg() == From)
      A = To;
  return Out;
}

/// Attempts to combine producer at \p P with consumer at \p Q in block
/// \p BI of \p F. Returns true on success (the block was rewritten).
bool tryCombine(Function &F, const Liveness &LV, size_t BI, size_t P,
                size_t Q) {
  BasicBlock &B = F.Blocks[BI];
  const Rtl A = B.Insts[P];
  const Rtl Use = B.Insts[Q];
  if (!A.definesReg())
    return false;
  const RegNum D = A.Dst.getReg();

  bool ConsumerUsesD = false;
  Use.forEachUsedReg([&](RegNum R) { ConsumerUsesD |= (R == D); });
  if (!ConsumerUsesD)
    return false;
  if (!regionAllowsCombine(B, P, Q, A))
    return false;
  // The combined instruction replaces both; d must die with the pair.
  if (usedBeyond(F, LV, BI, Q, D) && !(Use.definesReg() &&
                                       Use.Dst.getReg() == D))
    return false;

  // Shape 4: collapse a computation into the move that copies its result.
  if (Use.Opcode == Op::Mov && Use.Src[0].isReg() &&
      Use.Src[0].getReg() == D && A.Opcode != Op::Mov) {
    // Calls keep their position (side effects); everything else migrates
    // to the move's slot. Either way the destination becomes x.
    RegNum X = Use.Dst.getReg();
    if (X != D) {
      // x must be untouched between P and Q for the retarget to be valid.
      for (size_t K = P + 1; K < Q; ++K) {
        const Rtl &M = B.Insts[K];
        bool XInvolved = false;
        M.forEachUsedReg([&](RegNum R) { XInvolved |= (R == X); });
        if (M.definesReg() && M.Dst.getReg() == X)
          XInvolved = true;
        if (XInvolved)
          return false;
      }
      // A's own sources must not include x… rewriting dst only is fine
      // even then, but then A would read x before writing it; x's value
      // here equals its value at Q only if untouched — checked above, and
      // A reading x is fine since A precedes the region.
    }
    Rtl New = A;
    New.Dst = Operand::reg(X);
    if (A.Opcode == Op::Call) {
      B.Insts[P] = New;
      B.Insts.erase(B.Insts.begin() + static_cast<long>(Q));
    } else {
      B.Insts[Q] = New;
      B.Insts.erase(B.Insts.begin() + static_cast<long>(P));
    }
    return true;
  }

  // Shapes 1-3 require a deletable producer (pure value computation).
  if (A.hasSideEffects() || A.Opcode == Op::Call)
    return false;

  Rtl New = Use;
  if (A.Opcode == Op::Mov) {
    // Shapes 1 and 2: forward an immediate or another register.
    New = substitute(Use, D, A.Src[0]);
    constantFold(New);
  } else if (A.Opcode == Op::Lea &&
             (Use.Opcode == Op::Load || Use.Opcode == Op::Store) &&
             Use.Src[0].isReg() && Use.Src[0].getReg() == D) {
    // Shape 3: fold the address computation into the memory access. Only
    // the base position may take it; if d is also the stored value, the
    // combination is impossible.
    bool DElsewhere = false;
    if (Use.Opcode == Op::Store && Use.Src[2].isReg() &&
        Use.Src[2].getReg() == D)
      DElsewhere = true;
    if (DElsewhere)
      return false;
    New.Src[0] = A.Src[0];
  } else {
    return false; // No other producer shapes combine.
  }

  if (!target::isLegal(New))
    return false;
  B.Insts[Q] = New;
  B.Insts.erase(B.Insts.begin() + static_cast<long>(P));
  return true;
}

} // namespace

bool InstructionSelectionPhase::apply(Function &F) const {
  bool Changed = false;
  bool Progress = true;
  while (Progress) {
    Progress = false;
    Cfg C = Cfg::build(F);
    Liveness LV(F, C);
    for (size_t BI = 0; BI != F.Blocks.size() && !Progress; ++BI) {
      BasicBlock &B = F.Blocks[BI];
      for (size_t P = 0; P < B.Insts.size() && !Progress; ++P) {
        if (!B.Insts[P].definesReg())
          continue;
        for (size_t Q = P + 1; Q < B.Insts.size(); ++Q) {
          if (tryCombine(F, LV, BI, P, Q)) {
            Progress = true;
            Changed = true;
            break;
          }
          // Stop extending the window once d is redefined.
          if (B.Insts[Q].definesReg() &&
              B.Insts[Q].Dst.getReg() == B.Insts[P].Dst.getReg())
            break;
        }
      }
    }
  }
  return Changed;
}
