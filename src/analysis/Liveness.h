//===- Liveness.h - Register liveness analysis -----------------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backward may-liveness over registers and the condition-code register IC.
/// Used by dead assignment elimination, register assignment/allocation,
/// evaluation order determination, instruction selection (dead-copy checks),
/// and code abstraction.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_ANALYSIS_LIVENESS_H
#define POSE_ANALYSIS_LIVENESS_H

#include "src/ir/Function.h"
#include "src/support/BitVector.h"

#include <vector>

namespace pose {

/// Result of the liveness dataflow: per-block live-in/live-out sets over a
/// register universe of [0, numRegs()) plus one extra bit for IC.
class Liveness {
public:
  /// Runs the analysis for \p F with CFG \p C.
  Liveness(const Function &F, const Cfg &C);

  /// Number of register bits (IC is the bit at index numRegs()).
  size_t numRegs() const { return NumRegs; }

  /// Bit index of the condition-code register.
  size_t icIndex() const { return NumRegs; }

  const BitVector &liveIn(size_t Block) const { return LiveIn[Block]; }
  const BitVector &liveOut(size_t Block) const { return LiveOut[Block]; }

  /// Per-instruction liveness within \p Block: returns the set live just
  /// after each instruction, by stepping backward from liveOut. Index i of
  /// the result corresponds to "live after Insts[i]".
  std::vector<BitVector> liveAfterEach(const Function &F,
                                       size_t Block) const;

  /// Adds the registers (and IC) used by \p I to \p Set.
  static void addUses(const Rtl &I, BitVector &Set, size_t IcIndex);

  /// Removes the registers (and IC) defined by \p I from \p Set, then adds
  /// its uses; i.e. one backward transfer step.
  static void stepBackward(const Rtl &I, BitVector &Set, size_t IcIndex);

private:
  size_t NumRegs;
  std::vector<BitVector> LiveIn;
  std::vector<BitVector> LiveOut;
};

} // namespace pose

#endif // POSE_ANALYSIS_LIVENESS_H
