//===- DependenceDag.cpp - Intra-block dependence analysis --------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/analysis/DependenceDag.h"

#include "src/ir/Function.h"

#include <map>

using namespace pose;

std::vector<std::set<size_t>> pose::blockDependences(const BasicBlock &B) {
  const size_t N = B.Insts.size();
  std::vector<std::set<size_t>> Preds(N);
  // Last writer / readers per register, tracked by scanning forward.
  std::map<RegNum, size_t> LastDef;
  std::map<RegNum, std::vector<size_t>> ReadersSinceDef;
  size_t LastIC = SIZE_MAX;
  std::vector<size_t> ICReadersSince;
  size_t LastMemWrite = SIZE_MAX; // Store or Call.
  std::vector<size_t> MemReadsSince;

  for (size_t J = 0; J != N; ++J) {
    const Rtl &I = B.Insts[J];
    // RAW on registers.
    I.forEachUsedReg([&](RegNum R) {
      auto It = LastDef.find(R);
      if (It != LastDef.end())
        Preds[J].insert(It->second);
      ReadersSinceDef[R].push_back(J);
    });
    // IC dependences.
    if (I.usesIC()) {
      if (LastIC != SIZE_MAX)
        Preds[J].insert(LastIC);
      ICReadersSince.push_back(J);
    }
    if (I.definesIC()) {
      if (LastIC != SIZE_MAX)
        Preds[J].insert(LastIC); // WAW on IC.
      for (size_t R : ICReadersSince)
        if (R != J)
          Preds[J].insert(R); // WAR on IC.
      ICReadersSince.clear();
      LastIC = J;
    }
    // Memory dependences: loads may reorder among themselves; stores and
    // calls are ordered with everything that touches memory or has
    // observable effects.
    const bool MemWrite = I.Opcode == Op::Store || I.Opcode == Op::Call;
    const bool MemRead = I.Opcode == Op::Load;
    if (MemRead) {
      if (LastMemWrite != SIZE_MAX)
        Preds[J].insert(LastMemWrite);
      MemReadsSince.push_back(J);
    }
    if (MemWrite) {
      if (LastMemWrite != SIZE_MAX)
        Preds[J].insert(LastMemWrite);
      for (size_t R : MemReadsSince)
        if (R != J)
          Preds[J].insert(R);
      MemReadsSince.clear();
      LastMemWrite = J;
    }
    // Register WAR and WAW.
    if (I.definesReg()) {
      RegNum D = I.Dst.getReg();
      auto It = LastDef.find(D);
      if (It != LastDef.end())
        Preds[J].insert(It->second);
      for (size_t R : ReadersSinceDef[D])
        if (R != J)
          Preds[J].insert(R);
      ReadersSinceDef[D].clear();
      LastDef[D] = J;
    }
    // Control transfers stay last: every earlier instruction precedes
    // them, and nothing may move past them (they are block-final anyway).
    if (I.isControl())
      for (size_t K = 0; K != J; ++K)
        Preds[J].insert(K);
  }
  return Preds;
}

