//===- Loops.h - Natural loop detection ------------------------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural loop detection from dominator-identified back edges. Loop
/// unrolling (g), minimize loop jumps (j), and loop transformations (l)
/// all consume this analysis. Loops are reported innermost-first so the
/// loop-transformation phase can process them by nesting level, as VPO
/// does.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_ANALYSIS_LOOPS_H
#define POSE_ANALYSIS_LOOPS_H

#include "src/ir/Function.h"

#include <vector>

namespace pose {

class Dominators;

/// One natural loop: header, latches (sources of back edges), and body.
struct Loop {
  int Header = -1;
  std::vector<int> Latches;
  /// All blocks of the loop, header included, sorted ascending.
  std::vector<int> Blocks;
  /// Nesting depth: 1 for outermost loops.
  int Depth = 1;

  bool contains(int Block) const {
    for (int B : Blocks)
      if (B == Block)
        return true;
    return false;
  }
};

/// Finds all natural loops of \p F. Loops with the same header are merged
/// (multiple back edges to one header form one loop).
class LoopInfo {
public:
  LoopInfo(const Function &F, const Cfg &C, const Dominators &D);

  /// Loops ordered innermost first (deeper nesting before shallower).
  const std::vector<Loop> &loops() const { return Loops; }

  /// Number of loops (the paper's per-function "Loop" statistic).
  size_t count() const { return Loops.size(); }

private:
  std::vector<Loop> Loops;
};

} // namespace pose

#endif // POSE_ANALYSIS_LOOPS_H
