//===- DependenceDag.h - Intra-block dependence analysis -------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The must-precede relation between instructions of one basic block,
/// shared by the two in-block reordering passes (evaluation order
/// determination and the final instruction scheduler): register RAW/WAR/
/// WAW, condition-code dependences, memory ordering (stores and calls are
/// barriers; loads may reorder among themselves), and block-final control
/// transfers.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_ANALYSIS_DEPENDENCEDAG_H
#define POSE_ANALYSIS_DEPENDENCEDAG_H

#include <cstddef>
#include <set>
#include <vector>

namespace pose {

struct BasicBlock;

/// Returns, for each instruction index J of \p B, the set of earlier
/// indices that must stay before J under any legal reordering.
std::vector<std::set<size_t>> blockDependences(const BasicBlock &B);

} // namespace pose

#endif // POSE_ANALYSIS_DEPENDENCEDAG_H
