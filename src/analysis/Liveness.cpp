//===- Liveness.cpp - Register liveness analysis ---------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/analysis/Liveness.h"

#include <algorithm>

using namespace pose;

// Note on calls: the target's calling convention in this reproduction makes
// every register callee-saved (arguments and results are explicit operands
// of the Call RTL), so a call neither defines nor clobbers registers other
// than its explicit destination.

void Liveness::addUses(const Rtl &I, BitVector &Set, size_t IcIndex) {
  I.forEachUsedReg([&Set](RegNum R) { Set.set(R); });
  if (I.usesIC())
    Set.set(IcIndex);
}

void Liveness::stepBackward(const Rtl &I, BitVector &Set, size_t IcIndex) {
  if (I.definesReg())
    Set.reset(I.Dst.getReg());
  if (I.definesIC())
    Set.reset(IcIndex);
  addUses(I, Set, IcIndex);
}

Liveness::Liveness(const Function &F, const Cfg &C) {
  NumRegs = std::max<size_t>(F.pseudoLimit(), FirstPseudoReg);
  const size_t NumBits = NumRegs + 1; // +1 for IC
  const size_t N = F.Blocks.size();
  LiveIn.assign(N, BitVector(NumBits));
  LiveOut.assign(N, BitVector(NumBits));

  // Iterate to a fixed point, sweeping blocks in reverse layout order
  // (close to reverse topological order for typical CFGs).
  bool Changed = true;
  BitVector Tmp(NumBits);
  while (Changed) {
    Changed = false;
    for (size_t BI = N; BI-- > 0;) {
      Tmp.clear();
      for (int S : C.Succs[BI])
        Tmp.unionWith(LiveIn[S]);
      if (Tmp != LiveOut[BI]) {
        LiveOut[BI] = Tmp;
        Changed = true;
      }
      const BasicBlock &B = F.Blocks[BI];
      for (size_t J = B.Insts.size(); J-- > 0;)
        stepBackward(B.Insts[J], Tmp, NumRegs);
      if (Tmp != LiveIn[BI]) {
        LiveIn[BI] = Tmp;
        Changed = true;
      }
    }
  }
}

std::vector<BitVector> Liveness::liveAfterEach(const Function &F,
                                               size_t Block) const {
  const BasicBlock &B = F.Blocks[Block];
  std::vector<BitVector> After(B.Insts.size(), BitVector(NumRegs + 1));
  BitVector Cur = LiveOut[Block];
  for (size_t J = B.Insts.size(); J-- > 0;) {
    After[J] = Cur;
    stepBackward(B.Insts[J], Cur, NumRegs);
  }
  return After;
}
