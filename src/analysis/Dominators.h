//===- Dominators.h - Dominator analysis -----------------------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iterative dominator computation over block indices. Functions here are
/// tiny (tens of blocks), so the classic O(N^2) bit-set algorithm is both
/// simple and fast enough.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_ANALYSIS_DOMINATORS_H
#define POSE_ANALYSIS_DOMINATORS_H

#include "src/ir/Function.h"
#include "src/support/BitVector.h"

#include <vector>

namespace pose {

/// Dominator sets for every block of a function.
class Dominators {
public:
  Dominators(const Function &F, const Cfg &C);

  /// Returns true if block \p A dominates block \p B.
  bool dominates(size_t A, size_t B) const { return DomSets[B].test(A); }

  /// Returns the full dominator set of \p Block.
  const BitVector &domSet(size_t Block) const { return DomSets[Block]; }

  /// Returns true if \p Block is reachable from the entry block.
  bool isReachable(size_t Block) const { return Reachable[Block]; }

private:
  std::vector<BitVector> DomSets;
  std::vector<bool> Reachable;
};

} // namespace pose

#endif // POSE_ANALYSIS_DOMINATORS_H
