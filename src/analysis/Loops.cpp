//===- Loops.cpp - Natural loop detection ----------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/analysis/Loops.h"

#include "src/analysis/Dominators.h"

#include <algorithm>
#include <map>
#include <set>

using namespace pose;

LoopInfo::LoopInfo(const Function &F, const Cfg &C, const Dominators &D) {
  const size_t N = F.Blocks.size();

  // Collect back edges: Tail -> Head where Head dominates Tail.
  std::map<int, Loop> ByHeader;
  for (size_t Tail = 0; Tail != N; ++Tail) {
    if (!D.isReachable(Tail))
      continue;
    for (int Head : C.Succs[Tail]) {
      if (!D.dominates(Head, Tail))
        continue;
      Loop &L = ByHeader[Head];
      L.Header = Head;
      L.Latches.push_back(static_cast<int>(Tail));
    }
  }

  // Compute each loop body: Header plus all blocks that reach a latch
  // without passing through Header (standard natural-loop algorithm).
  for (auto &[Header, L] : ByHeader) {
    std::set<int> Body{Header};
    std::vector<int> Work(L.Latches.begin(), L.Latches.end());
    for (int Latch : L.Latches)
      Body.insert(Latch);
    while (!Work.empty()) {
      int B = Work.back();
      Work.pop_back();
      if (B == Header)
        continue;
      for (int P : C.Preds[B]) {
        if (D.isReachable(P) && Body.insert(P).second)
          Work.push_back(P);
      }
    }
    L.Blocks.assign(Body.begin(), Body.end());
  }

  for (auto &[Header, L] : ByHeader) {
    (void)Header;
    Loops.push_back(std::move(L));
  }

  // Depth: number of loops whose body strictly contains this loop's header
  // (plus one for the loop itself).
  for (Loop &L : Loops) {
    int Depth = 0;
    for (const Loop &Other : Loops) {
      if (Other.Header != L.Header && Other.contains(L.Header))
        ++Depth;
    }
    L.Depth = Depth + 1;
  }

  // Innermost (deepest) first; ties broken by header index for determinism.
  std::sort(Loops.begin(), Loops.end(), [](const Loop &A, const Loop &B) {
    if (A.Depth != B.Depth)
      return A.Depth > B.Depth;
    return A.Header < B.Header;
  });
}
