//===- Dominators.cpp - Dominator analysis ---------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/analysis/Dominators.h"

using namespace pose;

Dominators::Dominators(const Function &F, const Cfg &C) {
  const size_t N = F.Blocks.size();

  // Reachability first: unreachable blocks get empty dominator sets and are
  // excluded from meets (otherwise they would poison the intersection).
  Reachable.assign(N, false);
  std::vector<size_t> Work{0};
  Reachable[0] = true;
  while (!Work.empty()) {
    size_t B = Work.back();
    Work.pop_back();
    for (int S : C.Succs[B]) {
      if (!Reachable[S]) {
        Reachable[S] = true;
        Work.push_back(S);
      }
    }
  }

  BitVector Full(N);
  for (size_t I = 0; I != N; ++I)
    Full.set(I);
  DomSets.assign(N, Full);
  BitVector Entry(N);
  Entry.set(0);
  DomSets[0] = Entry;

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t B = 1; B != N; ++B) {
      if (!Reachable[B])
        continue;
      BitVector Meet = Full;
      bool AnyPred = false;
      for (int P : C.Preds[B]) {
        if (!Reachable[P])
          continue;
        Meet.intersectWith(DomSets[P]);
        AnyPred = true;
      }
      if (!AnyPred)
        Meet = BitVector(N);
      Meet.set(B);
      if (Meet != DomSets[B]) {
        DomSets[B] = Meet;
        Changed = true;
      }
    }
  }

  for (size_t B = 0; B != N; ++B)
    if (!Reachable[B])
      DomSets[B] = BitVector(N);
}
