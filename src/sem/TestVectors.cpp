//===- TestVectors.cpp - Seeded per-signature test vectors ----------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/sem/TestVectors.h"

#include "src/support/Rng.h"

#include <climits>
#include <cstddef>

namespace pose {
namespace sem {

const std::vector<int32_t> &boundaryValues() {
  // The values interpreter semantics pivot on: the unmapped low addresses
  // (0..15), the div/rem trap pair (INT32_MIN, -1), the shift-amount mask
  // edge (31/32/33), and small loop bounds that keep runs cheap.
  static const std::vector<int32_t> Pool = {
      0, 1, -1, 2, -2, 3, 7, 8, 15, 16, 31, 32, 33, 100, -100, 255,
      INT32_MAX, INT32_MIN,
  };
  return Pool;
}

std::vector<std::vector<int32_t>> generateVectors(uint32_t NumParams,
                                                  uint64_t Seed,
                                                  uint32_t Count) {
  std::vector<std::vector<int32_t>> Vectors;
  if (NumParams == 0) {
    // One distinct input exists; repeating it would re-measure the same
    // run Count times.
    Vectors.emplace_back();
    return Vectors;
  }
  const std::vector<int32_t> &Pool = boundaryValues();

  // Boundary sweep first: pool value I broadcast to every parameter.
  for (std::size_t I = 0; I != Pool.size() && Vectors.size() < Count; ++I)
    Vectors.emplace_back(NumParams, Pool[I]);

  // Then seeded random sweeps. Each argument independently picks a
  // category so vectors mix boundary values with small loop counters and
  // larger magnitudes in one call.
  Rng R(Seed);
  while (Vectors.size() < Count) {
    std::vector<int32_t> V(NumParams, 0);
    for (uint32_t P = 0; P != NumParams; ++P) {
      switch (R.below(4)) {
      case 0:
        V[P] = Pool[R.below(Pool.size())];
        break;
      case 1:
        V[P] = static_cast<int32_t>(R.range(-8, 8));
        break;
      case 2:
        V[P] = static_cast<int32_t>(R.range(-1024, 1024));
        break;
      default:
        V[P] = static_cast<int32_t>(R.range(-100000, 100000));
        break;
      }
    }
    Vectors.push_back(std::move(V));
  }
  return Vectors;
}

} // namespace sem
} // namespace pose
