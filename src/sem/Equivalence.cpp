//===- Equivalence.cpp - Observational-equivalence collapse ---------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/sem/Equivalence.h"

#include "src/core/DagPaths.h"
#include "src/ir/Function.h"

#include <algorithm>
#include <map>

namespace pose {
namespace sem {

namespace {

uint64_t mix(uint64_t H, uint64_t V) {
  H ^= V;
  H *= 0x100000001B3ull; // FNV-1a prime, widened.
  return H;
}

/// The vector set one equivalence computation actually runs: every
/// generated vector whose root run fits the step budget, with the
/// per-vector instance limit derived from the root's own cost. A pure
/// function of (module, root, seed, count) — both computeEquivalence and
/// findDivergence must see the identical plan.
struct VectorPlan {
  std::vector<std::vector<int32_t>> All; ///< Every generated vector.
  std::vector<uint32_t> Used;            ///< Kept indices, ascending.
  std::vector<uint64_t> Limits;          ///< Step limit per kept vector.
};

VectorPlan planVectors(Interpreter &Sim, const Function &Root,
                       uint64_t Seed, uint32_t Count) {
  VectorPlan P;
  P.All = generateVectors(static_cast<uint32_t>(Root.NumParams), Seed,
                          Count);
  Sim.overrideFunction(Root.Name, &Root);
  for (uint32_t I = 0; I != P.All.size(); ++I) {
    const RunResult R = Sim.run(Root.Name, P.All[I], kRootStepLimit);
    // A step-limit trap is a resource verdict, not a behavior; keeping
    // such a vector would compare instances at the budget edge, where
    // legitimate dynamic-count differences masquerade as divergence.
    if (!R.Ok && R.trapKind() == "step limit exceeded")
      continue;
    P.Used.push_back(I);
    P.Limits.push_back(instanceStepLimit(R.DynamicInsts));
  }
  Sim.overrideFunction(Root.Name, nullptr);
  return P;
}

/// Fingerprint of \p Inst over the planned vectors, plus its total
/// dynamic count and all-Ok flag.
void digestInstance(Interpreter &Sim, const std::string &Name,
                    const Function &Inst, const VectorPlan &P,
                    uint64_t &Behavior, uint64_t &Dynamic, bool &AllOk) {
  Sim.overrideFunction(Name, &Inst);
  uint64_t H = 0xCBF29CE484222325ull;
  H = mix(H, P.Used.size());
  Dynamic = 0;
  AllOk = true;
  for (size_t K = 0; K != P.Used.size(); ++K) {
    const RunResult R = Sim.run(Name, P.All[P.Used[K]], P.Limits[K]);
    H = mix(H, behaviorDigest(R));
    Dynamic += R.DynamicInsts;
    AllOk = AllOk && R.Ok;
  }
  Behavior = H;
}

} // namespace

uint64_t behaviorDigest(const RunResult &R) {
  uint64_t H = 0xCBF29CE484222325ull;
  H = mix(H, R.Ok ? 1 : 0);
  if (R.Ok) {
    H = mix(H, static_cast<uint32_t>(R.ReturnValue));
    H = mix(H, R.Output.size());
    for (int32_t W : R.Output)
      H = mix(H, static_cast<uint32_t>(W));
  } else {
    // Trap class only: a legally rescheduled instance may trap at a
    // different point, with different partial output (file comment).
    const std::string Kind = R.trapKind();
    H = mix(H, Kind.size());
    for (char C : Kind)
      H = mix(H, static_cast<uint8_t>(C));
  }
  return H;
}

std::string renderBehavior(const RunResult &R) {
  if (!R.Ok)
    return "trap: " + R.trapKind();
  std::string S = "ok ret=" + std::to_string(R.ReturnValue) + " out=[";
  for (size_t I = 0; I != R.Output.size(); ++I) {
    if (I)
      S += ' ';
    S += std::to_string(R.Output[I]);
  }
  S += ']';
  return S;
}

EquivRecord computeEquivalence(const Module &M, const Function &Root,
                               const PhaseManager &PM,
                               const EnumerationResult &R,
                               const EquivInputs &In) {
  EquivRecord E;
  E.VectorSeed = In.Seed;
  E.VectorsRequested = In.VectorCount;
  E.NumParams = static_cast<uint32_t>(Root.NumParams);
  if (R.Nodes.empty())
    return E;

  Interpreter Sim(M, kEquivMemWords);
  const VectorPlan P = planVectors(Sim, Root, In.Seed, In.VectorCount);
  E.UsedVectors = P.Used;

  const size_t N = R.Nodes.size();
  E.NodeBehavior.assign(N, 0);
  E.NodeDynamic.assign(N, 0);
  E.NodeAllOk.assign(N, 0);
  DagPaths Paths(R);
  Paths.forEachInstance(Root, PM, In.Faults,
                        [&](uint32_t Id, const Function &Inst) {
                          uint64_t Behavior = 0, Dynamic = 0;
                          bool AllOk = false;
                          digestInstance(Sim, Root.Name, Inst, P, Behavior,
                                         Dynamic, AllOk);
                          E.NodeBehavior[Id] = Behavior;
                          E.NodeDynamic[Id] = Dynamic;
                          E.NodeAllOk[Id] = AllOk ? 1 : 0;
                        });
  Sim.overrideFunction(Root.Name, nullptr);
  return E;
}

CollapseReport collapseClasses(const EnumerationResult &R,
                               const EquivRecord &E) {
  CollapseReport Rep;
  Rep.Instances = E.NodeBehavior.size();
  Rep.UsedVectors = E.UsedVectors.size();
  Rep.Certified = R.complete();
  std::map<uint64_t, size_t> Index; // behavior -> class position
  for (uint32_t Id = 0; Id != E.NodeBehavior.size(); ++Id) {
    const uint64_t B = E.NodeBehavior[Id];
    const uint64_t Dyn = E.NodeDynamic[Id];
    const bool Leaf = Id < R.Nodes.size() && R.Nodes[Id].isLeaf();
    auto It = Index.find(B);
    if (It == Index.end()) {
      It = Index.emplace(B, Rep.Classes.size()).first;
      EquivClass C;
      C.Behavior = B;
      C.MinDynamic = C.MaxDynamic = Dyn;
      C.BestNode = Id;
      C.AllOk = E.NodeAllOk[Id] != 0;
      Rep.Classes.push_back(std::move(C));
    }
    EquivClass &C = Rep.Classes[It->second];
    C.Nodes.push_back(Id);
    if (Dyn < C.MinDynamic) {
      C.MinDynamic = Dyn;
      C.BestNode = Id;
    }
    C.MaxDynamic = std::max(C.MaxDynamic, Dyn);
    C.AllOk = C.AllOk && E.NodeAllOk[Id] != 0;
    if (Leaf &&
        (C.BestLeaf == 0xFFFFFFFFu || Dyn < E.NodeDynamic[C.BestLeaf]))
      C.BestLeaf = Id;
  }
  return Rep;
}

DivergenceReport findDivergence(const Module &M, const Function &Root,
                                const PhaseManager &PM,
                                const EnumerationResult &R,
                                const EquivRecord &E,
                                const EquivInputs &In) {
  DivergenceReport D;
  uint32_t NodeB = 0;
  for (uint32_t Id = 1; Id < E.NodeBehavior.size(); ++Id)
    if (E.NodeBehavior[Id] != E.NodeBehavior[0]) {
      NodeB = Id;
      break;
    }
  if (NodeB == 0)
    return D;

  D.Diverged = true;
  D.NodeA = 0;
  D.NodeB = NodeB;
  DagPaths Paths(R);
  D.SequenceA = "";
  D.SequenceB = Paths.sequenceTo(NodeB);

  // Name the first diverging vector by re-running the two instances side
  // by side under the recorded plan.
  Interpreter Sim(M, kEquivMemWords);
  const VectorPlan P = planVectors(Sim, Root, In.Seed, In.VectorCount);
  const Function Inst = Paths.materialize(Root, PM, NodeB, In.Faults);
  for (size_t K = 0; K != P.Used.size(); ++K) {
    const std::vector<int32_t> &V = P.All[P.Used[K]];
    Sim.overrideFunction(Root.Name, &Root);
    const RunResult RA = Sim.run(Root.Name, V, P.Limits[K]);
    Sim.overrideFunction(Root.Name, &Inst);
    const RunResult RB = Sim.run(Root.Name, V, P.Limits[K]);
    if (behaviorDigest(RA) == behaviorDigest(RB))
      continue;
    D.VectorIndex = static_cast<int32_t>(P.Used[K]);
    D.Vector = V;
    D.BehaviorA = renderBehavior(RA);
    D.BehaviorB = renderBehavior(RB);
    break;
  }
  Sim.overrideFunction(Root.Name, nullptr);
  return D;
}

} // namespace sem
} // namespace pose
