//===- Equivalence.h - Observational-equivalence collapse ------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic bucketing of an enumerated phase-order space: every DAG
/// instance of a function is executed through the RTL interpreter on a
/// seeded test-vector set (src/sem/TestVectors.h) and reduced to a 64-bit
/// behavior fingerprint — a hash of Ok/ReturnValue/Output per vector, or
/// of the trap class for trapping runs. Instances with equal fingerprints
/// form one semantic equivalence class; the syntactic space (distinct by
/// canonical CRC) collapses onto these classes, which is the
/// "Beyond the Phase Ordering Problem" observation this subsystem
/// reproduces on top of the paper's exhaustive DAGs.
///
/// Two consumers sit on the same record:
///  - collapseClasses(): per-function collapse statistics with per-class
///    dynamic-count spreads (same behavior, different cost = a found
///    optimization opportunity) and per-class optimal-leaf certification;
///  - findDivergence(): the differential phase-bug gate — any two
///    instances of one canonical root that disagree in behavior mean some
///    phase miscompiled, and the report names the sequence pair and the
///    first diverging vector.
///
/// Trapping runs are fingerprinted by trap class alone (partial Output
/// and ReturnValue are ignored): legal code motion and scheduling may
/// move a trapping instruction relative to out() calls, and a gate with
/// false positives is useless. Ok runs compare exactly.
///
/// Everything here is a pure function of (module, root, DAG, seed,
/// count): runs use a fixed arena size and root-derived step limits, so
/// records are byte-identical across thread counts, hosts, and resumes.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_SEM_EQUIVALENCE_H
#define POSE_SEM_EQUIVALENCE_H

#include "src/sem/TestVectors.h"
#include "src/sim/Interpreter.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pose {

class Function;
class Module;
class PhaseManager;
struct EnumerationResult;
struct FaultPlan;

namespace sem {

/// Arena size (words) for equivalence runs. Smaller than the default
/// interpreter arena because the whole arena is zeroed per run and an
/// equivalence sweep performs instances x vectors runs; the bound is part
/// of the behavior definition (an address is out-of-bounds relative to
/// it), so it is fixed here rather than configurable.
constexpr size_t kEquivMemWords = 1u << 16;

/// Step budget for the root instance on one vector. Vectors whose root
/// run exceeds it are dropped from the set: a step-limit trap is a
/// resource verdict, not a behavior, and instances legitimately differ in
/// dynamic counts. Kept vectors give every instance a generous limit of
/// 16x the root's steps (plus slack), far beyond any phase's real effect.
constexpr uint64_t kRootStepLimit = 200'000;

/// Per-instance step limit for a vector whose root took \p RootSteps.
inline uint64_t instanceStepLimit(uint64_t RootSteps) {
  return RootSteps * 16 + 10'000;
}

/// Digest of one run's observable behavior (see file comment for the
/// trap-class rule). FNV-1a over a fixed little-endian rendering.
uint64_t behaviorDigest(const RunResult &R);

/// Human-readable one-line behavior ("ok ret=3 out=[1 2]" or
/// "trap: division by zero").
std::string renderBehavior(const RunResult &R);

/// The cached equivalence artifact: one behavior fingerprint, total
/// dynamic count, and all-Ok flag per DAG node, plus the vector-set
/// identity it was computed under. Node arrays are indexed by DAG node
/// id (node 0 is the unoptimized root).
struct EquivRecord {
  uint64_t VectorSeed = 0;
  uint32_t VectorsRequested = 0; ///< generateVectors() Count argument.
  uint32_t NumParams = 0;
  /// Indices (into the generated set, strictly ascending) of the vectors
  /// actually used; the rest were dropped by the root step budget.
  std::vector<uint32_t> UsedVectors;
  std::vector<uint64_t> NodeBehavior; ///< Fingerprint per node.
  /// Sum of DynamicInsts over the used vectors per node (trapping runs
  /// contribute the steps they executed before the trap).
  std::vector<uint64_t> NodeDynamic;
  std::vector<uint8_t> NodeAllOk; ///< 1 when every used vector ran Ok.
};

/// Knobs of one equivalence computation.
struct EquivInputs {
  uint64_t Seed = kDefaultVectorSeed;
  uint32_t VectorCount = kDefaultVectorCount;
  /// Wrong-code faults replayed during instance materialization, so the
  /// walk observes the same miscompiled instances the enumeration hashed
  /// (nullptr or a plan without wrong-code faults is a clean walk).
  const FaultPlan *Faults = nullptr;
};

/// Runs every DAG node of \p R through the interpreter on the seeded
/// vector set and fingerprints its behavior. \p Root must be the
/// unoptimized function \p R was enumerated from; other functions of
/// \p M are interpreted as written (callees stay unoptimized).
EquivRecord computeEquivalence(const Module &M, const Function &Root,
                               const PhaseManager &PM,
                               const EnumerationResult &R,
                               const EquivInputs &In);

/// One semantic equivalence class.
struct EquivClass {
  uint64_t Behavior = 0;
  std::vector<uint32_t> Nodes; ///< Member node ids, ascending.
  uint64_t MinDynamic = 0;     ///< Cheapest member's dynamic count.
  uint64_t MaxDynamic = 0;     ///< Costliest member's dynamic count.
  uint32_t BestNode = 0;       ///< Cheapest member (ties: lowest id).
  /// Cheapest leaf member, or UINT32_MAX when no member is a DAG leaf.
  /// On a complete enumeration this leaf is globally optimal w.r.t.
  /// phase ordering for this behavior class (every reachable instance
  /// was enumerated and none of this behavior is cheaper).
  uint32_t BestLeaf = 0xFFFFFFFFu;
  bool AllOk = false; ///< Every member ran every used vector Ok.

  /// Relative cost spread within the class, in percent of MinDynamic.
  double spreadPercent() const {
    if (MinDynamic == 0)
      return 0.0;
    return 100.0 * static_cast<double>(MaxDynamic - MinDynamic) /
           static_cast<double>(MinDynamic);
  }
};

/// Per-function collapse statistics over one record.
struct CollapseReport {
  uint64_t Instances = 0;   ///< Syntactic instances (DAG nodes).
  uint64_t UsedVectors = 0; ///< Vectors that survived the root budget.
  /// True when the enumeration was complete, making per-class optimal
  /// leaves globally optimal w.r.t. phases rather than best-seen.
  bool Certified = false;
  std::vector<EquivClass> Classes; ///< Ordered by first member node id.

  /// Classes whose members differ in dynamic count: same behavior at
  /// different cost, i.e. found optimization opportunities.
  uint64_t opportunityClasses() const {
    uint64_t N = 0;
    for (const EquivClass &C : Classes)
      N += C.MaxDynamic > C.MinDynamic;
    return N;
  }

  /// Syntactic-to-semantic collapse, in percent of instances removed.
  double collapsePercent() const {
    if (Instances == 0)
      return 0.0;
    return 100.0 *
           (1.0 - static_cast<double>(Classes.size()) /
                      static_cast<double>(Instances));
  }
};

/// Buckets \p E's nodes into semantic classes.
CollapseReport collapseClasses(const EnumerationResult &R,
                               const EquivRecord &E);

/// A behavior divergence between two same-canonical instances: the phase
/// bug signature posec --equiv-check hunts for.
struct DivergenceReport {
  bool Diverged = false;
  uint32_t NodeA = 0;    ///< Reference instance (the unoptimized root).
  uint32_t NodeB = 0;    ///< First node (ascending id) that disagrees.
  std::string SequenceA; ///< Phase letters reaching NodeA ("" = root).
  std::string SequenceB;
  int32_t VectorIndex = -1;    ///< Index into the generated vector set.
  std::vector<int32_t> Vector; ///< The diverging arguments.
  std::string BehaviorA;       ///< renderBehavior of both runs.
  std::string BehaviorB;
};

/// Scans \p E for a node whose behavior differs from the root's and, when
/// found, re-runs the two instances vector by vector to name the first
/// diverging input. \p In must match the inputs \p E was computed under.
DivergenceReport findDivergence(const Module &M, const Function &Root,
                                const PhaseManager &PM,
                                const EnumerationResult &R,
                                const EquivRecord &E, const EquivInputs &In);

} // namespace sem
} // namespace pose

#endif // POSE_SEM_EQUIVALENCE_H
