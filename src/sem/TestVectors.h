//===- TestVectors.h - Seeded per-signature test vectors -------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic test-vector generation for semantic-equivalence runs:
/// given a function signature (its parameter count) and a 64-bit seed,
/// produce a reproducible set of argument vectors. The set front-loads a
/// fixed pool of boundary values (0, ±1, small powers of two, the shift
/// edge 31/32/33, INT32_MIN/MAX) broadcast across all parameters, then
/// fills the remainder with Rng-driven sweeps that mix pool picks with
/// small, medium, and large magnitudes. The generator is a pure function
/// of (NumParams, Seed, Count) — no platform, locale, or iteration-order
/// dependence — because vector identity is part of the equivalence
/// artifact key (docs/EQUIVALENCE.md).
///
//===----------------------------------------------------------------------===//

#ifndef POSE_SEM_TESTVECTORS_H
#define POSE_SEM_TESTVECTORS_H

#include <cstdint>
#include <vector>

namespace pose {
namespace sem {

/// Default seed and vector count of posec --equiv / --equiv-check.
constexpr uint64_t kDefaultVectorSeed = 2026;
constexpr uint32_t kDefaultVectorCount = 24;

/// The fixed boundary pool, in generation order.
const std::vector<int32_t> &boundaryValues();

/// Generates \p Count argument vectors of \p NumParams words each for the
/// given seed. A zero-parameter signature has exactly one distinct input,
/// so it yields a single empty vector regardless of \p Count.
std::vector<std::vector<int32_t>> generateVectors(uint32_t NumParams,
                                                  uint64_t Seed,
                                                  uint32_t Count);

} // namespace sem
} // namespace pose

#endif // POSE_SEM_TESTVECTORS_H
