//===- Workloads.cpp - MiBench-modelled benchmark programs --------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/workloads/Workloads.h"

using namespace pose;

namespace {

//===----------------------------------------------------------------------===//
// auto/bitcount — "test processor bit manipulation abilities"
//===----------------------------------------------------------------------===//

const char *BitcountSource = R"MC(
int nibble_tbl[16] = {0,1,1,2,1,2,2,3,1,2,2,3,2,3,3,4};
int byte_tbl[256];

int bit_count(int x) {
  /* Kernighan: clear the lowest set bit per iteration. */
  int n = 0;
  while (x != 0) {
    n = n + 1;
    x = x & (x - 1);
  }
  return n;
}

int bit_shifter(int x) {
  int n = 0;
  int i;
  for (i = 0; i < 32; i = i + 1) {
    n = n + (x & 1);
    x = x >>> 1;
  }
  return n;
}

int ntbl_bitcount(int x) {
  return nibble_tbl[x & 15]
       + nibble_tbl[(x >>> 4) & 15]
       + nibble_tbl[(x >>> 8) & 15]
       + nibble_tbl[(x >>> 12) & 15]
       + nibble_tbl[(x >>> 16) & 15]
       + nibble_tbl[(x >>> 20) & 15]
       + nibble_tbl[(x >>> 24) & 15]
       + nibble_tbl[(x >>> 28) & 15];
}

void btbl_init() {
  int i;
  for (i = 0; i < 256; i = i + 1)
    byte_tbl[i] = nibble_tbl[i & 15] + nibble_tbl[(i >>> 4) & 15];
}

int btbl_bitcount(int x) {
  return byte_tbl[x & 255]
       + byte_tbl[(x >>> 8) & 255]
       + byte_tbl[(x >>> 16) & 255]
       + byte_tbl[(x >>> 24) & 255];
}

int bitcount_swar(int x) {
  /* SWAR reduction, 32-bit. */
  x = x - ((x >>> 1) & 0x55555555);
  x = (x & 0x33333333) + ((x >>> 2) & 0x33333333);
  x = (x + (x >>> 4)) & 0x0F0F0F0F;
  x = x + (x >>> 8);
  x = x + (x >>> 16);
  return x & 63;
}

int bitcount_recursive(int x) {
  if (x == 0) return 0;
  return (x & 1) + bitcount_recursive(x >>> 1);
}

int bitcount_dense(int x) {
  /* MiBench's "bitcount": fold pairs, nibbles, bytes via subtraction. */
  x = x - ((x >>> 1) & 0x77777777)
        - ((x >>> 2) & 0x33333333)
        - ((x >>> 3) & 0x11111111);
  x = (x + (x >>> 4)) & 0x0F0F0F0F;
  x = x * 0x01010101;
  return x >>> 24;
}

int main() {
  int seed = 1013904223;
  int n = 0;
  int i;
  btbl_init();
  for (i = 0; i < 64; i = i + 1) {
    int k = bit_count(seed);
    if (k != bit_shifter(seed)) out(0 - 1);
    if (k != ntbl_bitcount(seed)) out(0 - 2);
    if (k != btbl_bitcount(seed)) out(0 - 3);
    if (k != bitcount_swar(seed)) out(0 - 4);
    if (k != bitcount_recursive(seed)) out(0 - 5);
    if (k != bitcount_dense(seed)) out(0 - 6);
    n = n + k;
    seed = seed * 1664525 + 1013904223;
  }
  out(n);
  return n;
}
)MC";

//===----------------------------------------------------------------------===//
// network/dijkstra — "Dijkstra's shortest path algorithm"
//===----------------------------------------------------------------------===//

const char *DijkstraSource = R"MC(
int NONE = 9999;
int adj[64];      /* 8x8 adjacency matrix */
int dist[8];
int prev[8];
int visited[8];

void build_graph() {
  int i;
  int j;
  int seed = 7;
  for (i = 0; i < 8; i = i + 1) {
    for (j = 0; j < 8; j = j + 1) {
      seed = seed * 1103515245 + 12345;
      int w = (seed >>> 16) & 31;
      if (i == j) w = 0;
      if (w == 0 && i != j) w = 9999;
      adj[i * 8 + j] = w;
    }
  }
}

int pick_nearest() {
  int best = 0 - 1;
  int bestd = 9999;
  int i;
  for (i = 0; i < 8; i = i + 1) {
    if (visited[i] == 0 && dist[i] < bestd) {
      bestd = dist[i];
      best = i;
    }
  }
  return best;
}

int dijkstra(int src, int dst) {
  int i;
  for (i = 0; i < 8; i = i + 1) {
    dist[i] = 9999;
    prev[i] = 0 - 1;
    visited[i] = 0;
  }
  dist[src] = 0;
  while (1) {
    int u = pick_nearest();
    if (u < 0) break;
    visited[u] = 1;
    if (u == dst) break;
    for (i = 0; i < 8; i = i + 1) {
      int w = adj[u * 8 + i];
      if (w < 9999 && visited[i] == 0) {
        int nd = dist[u] + w;
        if (nd < dist[i]) {
          dist[i] = nd;
          prev[i] = u;
        }
      }
    }
  }
  return dist[dst];
}

int qnode[64];
int qdist[64];
int qhead = 0;
int qtail = 0;

void enqueue(int node, int d) {
  qnode[qtail & 63] = node;
  qdist[qtail & 63] = d;
  qtail = qtail + 1;
}

int dequeue() {
  int n = qnode[qhead & 63];
  qhead = qhead + 1;
  return n;
}

int qcount() {
  return qtail - qhead;
}

int path_length(int dst) {
  /* Walks the prev[] chain back to the source. */
  int hops = 0;
  int cur = dst;
  while (cur >= 0 && hops < 16) {
    cur = prev[cur];
    hops = hops + 1;
  }
  return hops;
}

int main() {
  int total = 0;
  int s;
  int d;
  build_graph();
  for (s = 0; s < 8; s = s + 1)
    for (d = 0; d < 8; d = d + 1) {
      total = total + dijkstra(s, d);
      enqueue(d, total);
    }
  int hops = 0;
  for (d = 0; d < 8; d = d + 1)
    hops = hops + path_length(d);
  while (qcount() > 0) {
    int n = dequeue();
    total = total + (n & 3);
  }
  out(total);
  out(hops);
  return total;
}
)MC";

//===----------------------------------------------------------------------===//
// telecomm/fft — "fast fourier transform" (fixed point; the SA-100 has no
// FPU, and MC is integer-only — see DESIGN.md)
//===----------------------------------------------------------------------===//

const char *FftSource = R"MC(
/* Radix-2 in-place FFT over Q14 fixed point, N = 32. */
int N = 32;
int re[32];
int im[32];
int sinetab[32];  /* quarter-resolution sine table, Q14 */

int fix_mul(int a, int b) {
  /* Q14 multiply; MC ints are 32 bits, inputs bounded by |1<<15|. */
  return (a * b) >> 14;
}

void make_sine() {
  /* Q14 sine via 2nd-order recurrence: s[k] = 2c*s[k-1] - s[k-2],
     c = cos(2*pi/32) in Q14 = 16069. */
  int twoc = 32138;
  int k;
  sinetab[0] = 0;
  sinetab[1] = 3196;   /* sin(2*pi/32) in Q14 */
  for (k = 2; k < 32; k = k + 1)
    sinetab[k] = fix_mul(twoc, sinetab[k - 1]) - sinetab[k - 2];
}

int sin_q(int idx) { return sinetab[idx & 31]; }
int cos_q(int idx) { return sinetab[(idx + 8) & 31]; }

void load_signal() {
  int i;
  int seed = 12345;
  for (i = 0; i < 32; i = i + 1) {
    seed = seed * 1103515245 + 12345;
    re[i] = ((seed >>> 17) & 2047) - 1024;
    im[i] = 0;
  }
}

void bit_reverse() {
  int i;
  int j = 0;
  for (i = 0; i < 31; i = i + 1) {
    if (i < j) {
      int tr = re[i]; re[i] = re[j]; re[j] = tr;
      int ti = im[i]; im[i] = im[j]; im[j] = ti;
    }
    int m = 16;
    while (m <= j) {
      j = j - m;
      m = m >> 1;
    }
    j = j + m;
  }
}

void fix_fft() {
  bit_reverse();
  int len = 1;
  int stage = 0;
  while (len < 32) {
    int step = len << 1;
    int twid = 32 / step;
    int base;
    for (base = 0; base < 32; base = base + step) {
      int k;
      for (k = 0; k < len; k = k + 1) {
        int c = cos_q(k * twid);
        int s = 0 - sin_q(k * twid);
        int a = base + k;
        int b = a + len;
        int tr = fix_mul(re[b], c) - fix_mul(im[b], s);
        int ti = fix_mul(re[b], s) + fix_mul(im[b], c);
        /* scale by 1/2 each stage to avoid overflow */
        int ur = re[a] >> 1;
        int ui = im[a] >> 1;
        tr = tr >> 1;
        ti = ti >> 1;
        re[a] = ur + tr;
        im[a] = ui + ti;
        re[b] = ur - tr;
        im[b] = ui - ti;
      }
    }
    len = step;
    stage = stage + 1;
  }
}

int isqrt(int v) {
  /* Integer square root by binary descent (non-negative inputs). */
  int r = 0;
  int bit = 1 << 15;
  while (bit != 0) {
    int t = r | bit;
    if (t * t <= v)
      r = t;
    bit = bit >> 1;
  }
  return r;
}

void window_signal() {
  /* Triangular window applied in place, Q14 weights. */
  int i;
  for (i = 0; i < 32; i = i + 1) {
    int w;
    if (i < 16) w = i * 1024;
    else w = (31 - i) * 1024;
    re[i] = (re[i] * w) >> 14;
  }
}

int spectrum_checksum() {
  int sum = 0;
  int i;
  for (i = 0; i < 32; i = i + 1) {
    int p = re[i] * re[i] + im[i] * im[i];
    sum = sum ^ (p + i);
  }
  return sum;
}

int main() {
  make_sine();
  load_signal();
  window_signal();
  fix_fft();
  int c = spectrum_checksum();
  int m = isqrt(c & 0x7fffffff);
  out(c);
  out(m);
  return c;
}
)MC";

//===----------------------------------------------------------------------===//
// consumer/jpeg — "image compression / decompression" utility kernels
//===----------------------------------------------------------------------===//

const char *JpegSource = R"MC(
/* Color conversion, quantization, and zig-zag kernels modelled on the
   cjpeg utility routines. 8x8 blocks, 16 pixels of RGB input. */
int r_y_tab[256];
int g_y_tab[256];
int b_y_tab[256];
int quant_tbl[64] = {16,11,10,16,24,40,51,61,
                     12,12,14,19,26,58,60,55,
                     14,13,16,24,40,57,69,56,
                     14,17,22,29,51,87,80,62,
                     18,22,37,56,68,109,103,77,
                     24,35,55,64,81,104,113,92,
                     49,64,78,87,103,121,120,101,
                     72,92,95,98,112,100,103,99};
int zigzag[64] = {0,1,8,16,9,2,3,10,17,24,32,25,18,11,4,5,
                  12,19,26,33,40,48,41,34,27,20,13,6,7,14,21,28,
                  35,42,49,56,57,50,43,36,29,22,15,23,30,37,44,51,
                  58,59,52,45,38,31,39,46,53,60,61,54,47,55,62,63};
int block[64];
int coef[64];
int outbuf[64];

void rgb_ycc_setup() {
  /* Fixed-point weights: Y = 0.299 R + 0.587 G + 0.114 B, Q16. */
  int i;
  for (i = 0; i < 256; i = i + 1) {
    r_y_tab[i] = i * 19595;
    g_y_tab[i] = i * 38470;
    b_y_tab[i] = i * 7471;
  }
}

int rgb_to_y(int r, int g, int b) {
  return (r_y_tab[r & 255] + g_y_tab[g & 255] + b_y_tab[b & 255] + 32768)
         >>> 16;
}

void fill_block() {
  int i;
  int seed = 99;
  for (i = 0; i < 64; i = i + 1) {
    seed = seed * 69069 + 1;
    int r = (seed >>> 8) & 255;
    int g = (seed >>> 16) & 255;
    int b = (seed >>> 24) & 255;
    block[i] = rgb_to_y(r, g, b) - 128;
  }
}

void forward_dct_rows() {
  /* One butterfly pass per row (a light stand-in for the full DCT). */
  int row;
  for (row = 0; row < 8; row = row + 1) {
    int base = row * 8;
    int k;
    for (k = 0; k < 4; k = k + 1) {
      int a = block[base + k];
      int b = block[base + 7 - k];
      block[base + k] = a + b;
      block[base + 7 - k] = (a - b) * (k + 1);
    }
  }
}

void forward_dct_cols() {
  /* Column butterfly pass matching forward_dct_rows. */
  int col;
  for (col = 0; col < 8; col = col + 1) {
    int k;
    for (k = 0; k < 4; k = k + 1) {
      int a = block[k * 8 + col];
      int b = block[(7 - k) * 8 + col];
      block[k * 8 + col] = a + b;
      block[(7 - k) * 8 + col] = (a - b) * (k + 2);
    }
  }
}

void quantize_block() {
  int i;
  for (i = 0; i < 64; i = i + 1) {
    int v = block[i];
    int q = quant_tbl[i];
    int half = q >> 1;
    if (v < 0)
      coef[i] = 0 - ((half - v) / q);
    else
      coef[i] = (v + half) / q;
  }
}

void zigzag_order() {
  int i;
  for (i = 0; i < 64; i = i + 1)
    outbuf[i] = coef[zigzag[i]];
}

void dequantize_block() {
  /* The decoder's inverse of quantize_block, back into block[]. */
  int i;
  for (i = 0; i < 64; i = i + 1)
    block[i] = coef[i] * quant_tbl[i];
}

int reconstruction_error() {
  /* Sum of |dequantized| magnitudes — a proxy for decoder effort. */
  int e = 0;
  int i;
  for (i = 0; i < 64; i = i + 1) {
    int v = block[i];
    if (v < 0) v = 0 - v;
    e = e + v;
  }
  return e;
}

int bitbuf = 0;
int bitcnt = 0;
int packed[96];
int packpos = 0;

void emit_bits(int code, int size) {
  /* cjpeg-style bit packer: accumulate MSB-first, spill full words. */
  bitbuf = (bitbuf << size) | (code & ((1 << size) - 1));
  bitcnt = bitcnt + size;
  while (bitcnt >= 16) {
    bitcnt = bitcnt - 16;
    packed[packpos] = (bitbuf >>> bitcnt) & 0xffff;
    packpos = packpos + 1;
  }
}

void flush_bits() {
  if (bitcnt > 0) {
    packed[packpos] = (bitbuf << (16 - bitcnt)) & 0xffff;
    packpos = packpos + 1;
    bitcnt = 0;
  }
  bitbuf = 0;
}

int magnitude_bits(int v) {
  /* Category of a coefficient: bits needed for |v|. */
  int m = v;
  if (m < 0) m = 0 - m;
  int bits = 0;
  while (m != 0) {
    bits = bits + 1;
    m = m >>> 1;
  }
  return bits;
}

void encode_block() {
  /* Huffman-flavoured entropy coding of the zig-zag stream: runs of
     zeros as (run,category) codes, then the magnitude bits. */
  int run = 0;
  int i;
  for (i = 0; i < 64; i = i + 1) {
    int v = outbuf[i];
    if (v == 0) {
      run = run + 1;
      if (run == 16) {
        emit_bits(0x7f9, 11);  /* ZRL */
        run = 0;
      }
    } else {
      int cat = magnitude_bits(v);
      emit_bits((run << 4) | cat, 8);
      if (v < 0) v = v - 1;
      emit_bits(v, cat);
      run = 0;
    }
  }
  emit_bits(0x0a, 4);  /* EOB */
  flush_bits();
}

int packed_checksum() {
  int sum = 0;
  int i;
  for (i = 0; i < packpos; i = i + 1)
    sum = sum * 31 + packed[i];
  return sum;
}

int run_length_checksum() {
  int run = 0;
  int sum = 0;
  int i;
  for (i = 0; i < 64; i = i + 1) {
    if (outbuf[i] == 0) {
      run = run + 1;
    } else {
      sum = sum + outbuf[i] * (run + 1) + i;
      run = 0;
    }
  }
  return sum;
}

int main() {
  rgb_ycc_setup();
  fill_block();
  forward_dct_rows();
  forward_dct_cols();
  quantize_block();
  zigzag_order();
  int c = run_length_checksum();
  encode_block();
  int p = packed_checksum();
  dequantize_block();
  int e = reconstruction_error();
  out(c);
  out(e);
  out(p);
  out(packpos);
  return c;
}
)MC";

//===----------------------------------------------------------------------===//
// security/sha — "secure hash algorithm" (SHA-1 rounds)
//===----------------------------------------------------------------------===//

const char *ShaSource = R"MC(
int digest[5];
int W[80];
int data[16];

int rotl(int x, int n) {
  return (x << n) | (x >>> (32 - n));
}

void sha_init() {
  digest[0] = 0x67452301;
  digest[1] = 0xEFCDAB89;
  digest[2] = 0x98BADCFE;
  digest[3] = 0x10325476;
  digest[4] = 0xC3D2E1F0;
}

void fill_data(int seed) {
  int i;
  for (i = 0; i < 16; i = i + 1) {
    seed = seed * 1103515245 + 12345;
    data[i] = seed;
  }
}

void sha_transform() {
  int i;
  for (i = 0; i < 16; i = i + 1)
    W[i] = data[i];
  for (i = 16; i < 80; i = i + 1)
    W[i] = rotl(W[i - 3] ^ W[i - 8] ^ W[i - 14] ^ W[i - 16], 1);
  int a = digest[0];
  int b = digest[1];
  int c = digest[2];
  int d = digest[3];
  int e = digest[4];
  for (i = 0; i < 20; i = i + 1) {
    int t = rotl(a, 5) + ((b & c) | (~b & d)) + e + W[i] + 0x5A827999;
    e = d; d = c; c = rotl(b, 30); b = a; a = t;
  }
  for (i = 20; i < 40; i = i + 1) {
    int t = rotl(a, 5) + (b ^ c ^ d) + e + W[i] + 0x6ED9EBA1;
    e = d; d = c; c = rotl(b, 30); b = a; a = t;
  }
  for (i = 40; i < 60; i = i + 1) {
    int t = rotl(a, 5) + ((b & c) | (b & d) | (c & d)) + e + W[i]
            + 0x8F1BBCDC;
    e = d; d = c; c = rotl(b, 30); b = a; a = t;
  }
  for (i = 60; i < 80; i = i + 1) {
    int t = rotl(a, 5) + (b ^ c ^ d) + e + W[i] + 0xCA62C1D6;
    e = d; d = c; c = rotl(b, 30); b = a; a = t;
  }
  digest[0] = digest[0] + a;
  digest[1] = digest[1] + b;
  digest[2] = digest[2] + c;
  digest[3] = digest[3] + d;
  digest[4] = digest[4] + e;
}

int saved[16];

void copy_block() {
  int i;
  for (i = 0; i < 16; i = i + 1)
    saved[i] = data[i];
}

int block_checksum() {
  /* Adler-ish rolling checksum of the saved block. */
  int a = 1;
  int b = 0;
  int i;
  for (i = 0; i < 16; i = i + 1) {
    a = (a + saved[i]) % 65521;
    b = (b + a) % 65521;
  }
  return (b << 16) | (a & 0xffff);
}

int main() {
  int blockno;
  int check = 0;
  sha_init();
  for (blockno = 0; blockno < 4; blockno = blockno + 1) {
    fill_data(blockno + 42);
    copy_block();
    check = check ^ block_checksum();
    sha_transform();
  }
  int i;
  int sum = 0;
  for (i = 0; i < 5; i = i + 1) {
    out(digest[i]);
    sum = sum ^ digest[i];
  }
  out(check);
  return sum;
}
)MC";

//===----------------------------------------------------------------------===//
// office/stringsearch — "searches for given words in phrases"
//===----------------------------------------------------------------------===//

const char *StringsearchSource = R"MC(
int text[] = "the quick brown fox jumps over the lazy dog while the cat naps by the warm stove and dreams of fish";
int pat1[] = "the";
int pat2[] = "fox";
int pat3[] = "stove";
int pat4[] = "fishy";
int skip[128];
int patbuf[32];
int patlen = 0;

int str_len(int which) {
  /* Copies the selected pattern into patbuf and returns its length
     (arrays cannot be passed in MC; selection happens by index). */
  int n = 0;
  if (which == 1) { while (pat1[n] != 0) { patbuf[n] = pat1[n]; n = n + 1; } }
  if (which == 2) { while (pat2[n] != 0) { patbuf[n] = pat2[n]; n = n + 1; } }
  if (which == 3) { while (pat3[n] != 0) { patbuf[n] = pat3[n]; n = n + 1; } }
  if (which == 4) { while (pat4[n] != 0) { patbuf[n] = pat4[n]; n = n + 1; } }
  patbuf[n] = 0;
  return n;
}

void bmh_init(int which) {
  int i;
  patlen = str_len(which);
  for (i = 0; i < 128; i = i + 1)
    skip[i] = patlen;
  for (i = 0; i < patlen - 1; i = i + 1)
    skip[patbuf[i] & 127] = patlen - i - 1;
}

int text_len() {
  int n = 0;
  while (text[n] != 0) n = n + 1;
  return n;
}

int bmh_search(int start) {
  /* Boyer-Moore-Horspool; returns match position or -1. */
  int n = text_len();
  int pos = start;
  while (pos + patlen <= n) {
    int j = patlen - 1;
    while (j >= 0 && text[pos + j] == patbuf[j])
      j = j - 1;
    if (j < 0) return pos;
    pos = pos + skip[text[pos + patlen - 1] & 127];
  }
  return 0 - 1;
}

int to_lower(int c) {
  if (c >= 'A' && c <= 'Z')
    return c + 32;
  return c;
}

int naive_search(int start) {
  /* Brute-force comparator, the baseline Horspool beats. */
  int n = text_len();
  int pos = start;
  while (pos + patlen <= n) {
    int j = 0;
    while (j < patlen && to_lower(text[pos + j]) == to_lower(patbuf[j]))
      j = j + 1;
    if (j == patlen) return pos;
    pos = pos + 1;
  }
  return 0 - 1;
}

int count_matches(int which) {
  int count = 0;
  int pos = 0;
  bmh_init(which);
  while (1) {
    int hit = bmh_search(pos);
    if (hit < 0) break;
    count = count + 1;
    pos = hit + 1;
  }
  return count;
}

int count_naive(int which) {
  int count = 0;
  int pos = 0;
  patlen = str_len(which);
  while (1) {
    int hit = naive_search(pos);
    if (hit < 0) break;
    count = count + 1;
    pos = hit + 1;
  }
  return count;
}

int main() {
  int c1 = count_matches(1);
  int c2 = count_matches(2);
  int c3 = count_matches(3);
  int c4 = count_matches(4);
  out(c1); out(c2); out(c3); out(c4);
  out(count_naive(1));
  out(count_naive(4));
  return c1 * 1000 + c2 * 100 + c3 * 10 + c4;
}
)MC";

const std::vector<Workload> Registry = {
    {"auto", "bitcount", "test processor bit manipulation abilities",
     BitcountSource},
    {"network", "dijkstra", "Dijkstra's shortest path algorithm",
     DijkstraSource},
    {"telecomm", "fft", "fast fourier transform (fixed point)", FftSource},
    {"consumer", "jpeg", "image compression kernels", JpegSource},
    {"security", "sha", "secure hash algorithm", ShaSource},
    {"office", "stringsearch", "searches for given words in phrases",
     StringsearchSource},
};

} // namespace

const std::vector<Workload> &pose::allWorkloads() { return Registry; }

const Workload *pose::findWorkload(const std::string &Name) {
  for (const Workload &W : Registry)
    if (Name == W.Name)
      return &W;
  return nullptr;
}
