//===- Workloads.h - MiBench-modelled benchmark programs -------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark suite: six MC programs modelled on the MiBench subset the
/// paper evaluates (Table 2) — one per category. The kernels re-implement
/// the same algorithms (bit twiddling, shortest path, fixed-point FFT,
/// image color conversion, SHA rounds, string searching) so the phase
/// interactions match in character; they are not the original MiBench
/// sources (see DESIGN.md for the substitution rationale).
///
/// Every program defines main() that emits checksums via out(), so any
/// function instance can be validated and timed differentially.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_WORKLOADS_WORKLOADS_H
#define POSE_WORKLOADS_WORKLOADS_H

#include <string>
#include <vector>

namespace pose {

/// One benchmark program.
struct Workload {
  const char *Category;    ///< MiBench category (auto, network, …).
  const char *Name;        ///< Program name (bitcount, dijkstra, …).
  const char *Description; ///< Table 2-style description.
  const char *Source;      ///< MC source text.
};

/// Returns the six benchmark programs in Table 2 order.
const std::vector<Workload> &allWorkloads();

/// Returns the workload named \p Name, or nullptr.
const Workload *findWorkload(const std::string &Name);

} // namespace pose

#endif // POSE_WORKLOADS_WORKLOADS_H
