//===- protocol_test.cpp - posed wire protocol tests ----------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The POSESRV1 framing and payload codecs in isolation: round-trips
// through byte-at-a-time feeding, CRC and magic violations, payload
// caps, and the decode-side argument validation that protects the
// daemon from a hostile client. No sockets, no daemon.
//
//===----------------------------------------------------------------------===//

#include "src/serve/Protocol.h"

#include "src/support/Crc32.h"

#include <cstring>
#include <gtest/gtest.h>

using namespace pose;
using namespace pose::serve;

namespace {

/// Feeds \p Bytes into \p R one byte at a time and expects exactly one
/// complete frame at the end, with NeedMore at every prefix.
FrameReader::Status feedBytewise(FrameReader &R,
                                 const std::vector<uint8_t> &Bytes,
                                 MsgKind &Kind, std::vector<uint8_t> &Payload,
                                 std::string &Why) {
  FrameReader::Status S = FrameReader::Status::NeedMore;
  for (size_t I = 0; I < Bytes.size(); ++I) {
    R.feed(&Bytes[I], 1);
    S = R.next(Kind, Payload, Why);
    if (S != FrameReader::Status::NeedMore) {
      EXPECT_EQ(I, Bytes.size() - 1)
          << "frame completed (or broke) before its last byte";
      return S;
    }
  }
  return S;
}

/// Strips the frame header off an encode*() result, leaving the payload
/// the matching decoder expects.
std::vector<uint8_t> payloadOf(const std::vector<uint8_t> &Wire) {
  return std::vector<uint8_t>(Wire.begin() +
                                  static_cast<ptrdiff_t>(kHeaderSize),
                              Wire.end());
}

TEST(Protocol, PingFrameRoundTripsByteAtATime) {
  const std::vector<uint8_t> Wire = encodePing();
  EXPECT_EQ(Wire.size(), kHeaderSize); // Payload-free.

  FrameReader R(kMaxRequestPayload);
  MsgKind Kind;
  std::vector<uint8_t> Payload;
  std::string Why;
  ASSERT_EQ(feedBytewise(R, Wire, Kind, Payload, Why),
            FrameReader::Status::Frame)
      << Why;
  EXPECT_EQ(Kind, MsgKind::Ping);
  EXPECT_TRUE(Payload.empty());
  EXPECT_EQ(R.buffered(), 0u);
}

TEST(Protocol, RunRequestRoundTrips) {
  RunRequest In;
  In.Id = 0xDEADBEEFCAFE0001ull;
  In.Args = {"--workload=bitcount", "--enumerate=bit_count",
             "--budget=50000"};
  const std::vector<uint8_t> Wire = encodeRunRequest(In);

  FrameReader R(kMaxRequestPayload);
  R.feed(Wire.data(), Wire.size());
  MsgKind Kind;
  std::vector<uint8_t> Payload;
  std::string Why;
  ASSERT_EQ(R.next(Kind, Payload, Why), FrameReader::Status::Frame) << Why;
  EXPECT_EQ(Kind, MsgKind::Run);

  RunRequest Out;
  ASSERT_TRUE(decodeRunRequest(Payload, Out, Why)) << Why;
  EXPECT_EQ(Out.Id, In.Id);
  EXPECT_EQ(Out.Args, In.Args);
}

TEST(Protocol, RunResponseRoundTrips) {
  RunResponse In;
  In.Id = 42;
  In.Served = ServedFrom::Coalesced;
  In.ExitCode = 11;
  In.Stdout = std::string("a\0b\n", 4); // Binary-safe.
  In.Stderr = "warning: x\n";
  std::string Why;
  RunResponse Out;
  ASSERT_TRUE(decodeRunResponse(payloadOf(encodeRunResponse(In)), Out, Why))
      << Why;
  EXPECT_EQ(Out.Id, 42u);
  EXPECT_EQ(Out.Served, ServedFrom::Coalesced);
  EXPECT_EQ(Out.ExitCode, 11);
  EXPECT_EQ(Out.Stdout, In.Stdout);
  EXPECT_EQ(Out.Stderr, In.Stderr);
}

TEST(Protocol, ErrorResponseRoundTrips) {
  ErrorResponse In;
  In.Id = 7;
  In.Code = ErrorCode::Overloaded;
  In.Message = "client budget exhausted";
  std::string Why;
  ErrorResponse Out;
  ASSERT_TRUE(
      decodeErrorResponse(payloadOf(encodeErrorResponse(In)), Out, Why))
      << Why;
  EXPECT_EQ(Out.Id, 7u);
  EXPECT_EQ(Out.Code, ErrorCode::Overloaded);
  EXPECT_EQ(Out.Message, In.Message);
  EXPECT_EQ(Out.RetryAfterMs, 0u) << "no hint must decode as no hint";
}

TEST(Protocol, ErrorResponseCarriesTheRetryAfterHint) {
  ErrorResponse In;
  In.Id = 8;
  In.Code = ErrorCode::Overloaded;
  In.Message = "queue depth cap reached";
  In.RetryAfterMs = 1250;
  std::string Why;
  ErrorResponse Out;
  ASSERT_TRUE(
      decodeErrorResponse(payloadOf(encodeErrorResponse(In)), Out, Why))
      << Why;
  EXPECT_EQ(Out.Code, ErrorCode::Overloaded);
  EXPECT_EQ(Out.RetryAfterMs, 1250u);
}

TEST(Protocol, ReloadFrameRoundTripsAndIsARequest) {
  const std::vector<uint8_t> Wire = encodeReload();
  EXPECT_EQ(Wire.size(), kHeaderSize) << "Reload deliberately carries no "
                                         "payload: clients cannot redirect "
                                         "the daemon's store";
  FrameReader R(kMaxRequestPayload);
  MsgKind Kind;
  std::vector<uint8_t> Payload;
  std::string Why;
  ASSERT_EQ(feedBytewise(R, Wire, Kind, Payload, Why),
            FrameReader::Status::Frame)
      << Why;
  EXPECT_EQ(Kind, MsgKind::Reload);
  EXPECT_TRUE(Payload.empty());
  EXPECT_TRUE(isRequestKind(Kind));
}

TEST(Protocol, StatsReportRoundTrips) {
  StatsReport In;
  In.Requests = 1000;
  In.Computed = 10;
  In.Coalesced = 90;
  In.CacheHits = 900;
  In.Errors = 3;
  In.Clients = 8;
  In.Running = 2;
  In.Queued = 5;
  std::string Why;
  StatsReport Out;
  ASSERT_TRUE(decodeStatsReport(payloadOf(encodeStatsReport(In)), Out, Why))
      << Why;
  EXPECT_EQ(Out.Requests, 1000u);
  EXPECT_EQ(Out.Computed, 10u);
  EXPECT_EQ(Out.Coalesced, 90u);
  EXPECT_EQ(Out.CacheHits, 900u);
  EXPECT_EQ(Out.Errors, 3u);
  EXPECT_EQ(Out.Clients, 8u);
  EXPECT_EQ(Out.Running, 2u);
  EXPECT_EQ(Out.Queued, 5u);
}

TEST(Protocol, StatsReportCarriesTheRobustnessCounters) {
  StatsReport In;
  In.Shed = 11;
  In.ReadTimeouts = 22;
  In.Restarts = 33;
  In.Reloads = 44;
  In.ReloadsRejected = 55;
  In.SockFaults = 66;
  std::string Why;
  StatsReport Out;
  ASSERT_TRUE(decodeStatsReport(payloadOf(encodeStatsReport(In)), Out, Why))
      << Why;
  EXPECT_EQ(Out.Shed, 11u);
  EXPECT_EQ(Out.ReadTimeouts, 22u);
  EXPECT_EQ(Out.Restarts, 33u);
  EXPECT_EQ(Out.Reloads, 44u);
  EXPECT_EQ(Out.ReloadsRejected, 55u);
  EXPECT_EQ(Out.SockFaults, 66u);
}

TEST(Protocol, StatsReportRejectsAForeignPayloadVersion) {
  // The stats payload leads with its version; a client must refuse to
  // guess at field meanings it does not speak rather than misreport
  // counters. Tamper the version word (payload offset 0) and re-decode.
  StatsReport In;
  In.Requests = 9;
  std::vector<uint8_t> Payload = payloadOf(encodeStatsReport(In));
  const uint32_t Bogus = kStatsVersion + 1;
  std::memcpy(Payload.data(), &Bogus, 4);
  StatsReport Out;
  std::string Why;
  EXPECT_FALSE(decodeStatsReport(Payload, Out, Why));
  EXPECT_NE(Why.find("version"), std::string::npos) << Why;
}

TEST(Protocol, TwoFramesInOneFeedComeOutInOrder) {
  std::vector<uint8_t> Wire = encodePing();
  const std::vector<uint8_t> Second = encodeStatsRequest();
  Wire.insert(Wire.end(), Second.begin(), Second.end());

  FrameReader R(kMaxRequestPayload);
  R.feed(Wire.data(), Wire.size());
  MsgKind Kind;
  std::vector<uint8_t> Payload;
  std::string Why;
  ASSERT_EQ(R.next(Kind, Payload, Why), FrameReader::Status::Frame) << Why;
  EXPECT_EQ(Kind, MsgKind::Ping);
  ASSERT_EQ(R.next(Kind, Payload, Why), FrameReader::Status::Frame) << Why;
  EXPECT_EQ(Kind, MsgKind::Stats);
  EXPECT_EQ(R.next(Kind, Payload, Why), FrameReader::Status::NeedMore);
}

TEST(Protocol, TruncatedFrameIsNeedMoreNotMalformed) {
  RunRequest Req;
  Req.Id = 1;
  Req.Args = {"--workload=sha"};
  const std::vector<uint8_t> Wire = encodeRunRequest(Req);

  // Every proper prefix — header included — is just "not yet".
  for (size_t Cut : {size_t(1), kHeaderSize - 1, kHeaderSize,
                     Wire.size() - 1}) {
    FrameReader R(kMaxRequestPayload);
    R.feed(Wire.data(), Cut);
    MsgKind Kind;
    std::vector<uint8_t> Payload;
    std::string Why;
    EXPECT_EQ(R.next(Kind, Payload, Why), FrameReader::Status::NeedMore)
        << "prefix of " << Cut << " bytes";
  }
}

TEST(Protocol, BadMagicIsMalformed) {
  std::vector<uint8_t> Wire = encodePing();
  Wire[0] = 'X';
  FrameReader R(kMaxRequestPayload);
  R.feed(Wire.data(), Wire.size());
  MsgKind Kind;
  std::vector<uint8_t> Payload;
  std::string Why;
  EXPECT_EQ(R.next(Kind, Payload, Why), FrameReader::Status::Malformed);
  EXPECT_NE(Why.find("magic"), std::string::npos) << Why;
}

TEST(Protocol, CorruptHeaderIsMalformed) {
  RunRequest Req;
  Req.Id = 1;
  Req.Args = {"--workload=sha"};
  std::vector<uint8_t> Wire = encodeRunRequest(Req);
  Wire[9] ^= 0xFF; // A kind byte: the header CRC must catch it.
  FrameReader R(kMaxRequestPayload);
  R.feed(Wire.data(), Wire.size());
  MsgKind Kind;
  std::vector<uint8_t> Payload;
  std::string Why;
  EXPECT_EQ(R.next(Kind, Payload, Why), FrameReader::Status::Malformed);
  EXPECT_FALSE(Why.empty());
}

TEST(Protocol, CorruptPayloadIsMalformed) {
  RunRequest Req;
  Req.Id = 1;
  Req.Args = {"--workload=sha"};
  std::vector<uint8_t> Wire = encodeRunRequest(Req);
  Wire.back() ^= 0xFF; // Last payload byte.
  FrameReader R(kMaxRequestPayload);
  R.feed(Wire.data(), Wire.size());
  MsgKind Kind;
  std::vector<uint8_t> Payload;
  std::string Why;
  EXPECT_EQ(R.next(Kind, Payload, Why), FrameReader::Status::Malformed);
  EXPECT_NE(Why.find("payload"), std::string::npos) << Why;
}

TEST(Protocol, MalformedStreamStaysBroken) {
  std::vector<uint8_t> Wire = encodePing();
  Wire[0] = 'X';
  FrameReader R(kMaxRequestPayload);
  R.feed(Wire.data(), Wire.size());
  MsgKind Kind;
  std::vector<uint8_t> Payload;
  std::string Why;
  EXPECT_EQ(R.next(Kind, Payload, Why), FrameReader::Status::Malformed);
  // Feeding a perfectly good frame afterwards cannot resynchronize a
  // length-prefixed stream; the reader must stay latched broken.
  const std::vector<uint8_t> Good = encodePing();
  R.feed(Good.data(), Good.size());
  EXPECT_EQ(R.next(Kind, Payload, Why), FrameReader::Status::Malformed);
}

TEST(Protocol, OversizedPayloadIsRejectedBeforeBuffering) {
  // Hand-build a header announcing a payload over the reader's cap; the
  // reader must reject it from the header alone, without waiting for (or
  // allocating) the announced bytes. Layout: magic(8) kind(4) size(4)
  // payload-crc(4) header-crc(4), little-endian, CRC32 over bytes 0..19.
  RunRequest Req;
  Req.Id = 1;
  Req.Args = {"x"};
  std::vector<uint8_t> Wire = encodeRunRequest(Req);
  const uint32_t Huge = (1u << 20) + 1;
  std::memcpy(&Wire[12], &Huge, 4);
  // Recompute the header CRC so only the size field is "wrong".
  const uint32_t HdrCrc = crc32(Wire.data(), 20);
  std::memcpy(&Wire[20], &HdrCrc, 4);

  FrameReader R(kMaxRequestPayload);
  R.feed(Wire.data(), kHeaderSize); // Header only — no payload bytes.
  MsgKind Kind;
  std::vector<uint8_t> Payload;
  std::string Why;
  EXPECT_EQ(R.next(Kind, Payload, Why), FrameReader::Status::Malformed);
  EXPECT_NE(Why.find("payload"), std::string::npos) << Why;
}

TEST(Protocol, DecodeRejectsHostileArgumentVectors) {
  std::string Why;
  RunRequest Out;

  // Empty argv.
  RunRequest Empty;
  Empty.Id = 1;
  {
    FrameReader R(kMaxRequestPayload);
    const std::vector<uint8_t> Wire = encodeRunRequest(Empty);
    R.feed(Wire.data(), Wire.size());
    MsgKind Kind;
    std::vector<uint8_t> Payload;
    ASSERT_EQ(R.next(Kind, Payload, Why), FrameReader::Status::Frame) << Why;
    EXPECT_FALSE(decodeRunRequest(Payload, Out, Why));
  }

  // Too many arguments.
  RunRequest Many;
  Many.Id = 2;
  Many.Args.assign(kMaxRunArgs + 1, "--x");
  {
    FrameReader R(kMaxRequestPayload);
    const std::vector<uint8_t> Wire = encodeRunRequest(Many);
    R.feed(Wire.data(), Wire.size());
    MsgKind Kind;
    std::vector<uint8_t> Payload;
    ASSERT_EQ(R.next(Kind, Payload, Why), FrameReader::Status::Frame) << Why;
    EXPECT_FALSE(decodeRunRequest(Payload, Out, Why));
    EXPECT_NE(Why.find("argument"), std::string::npos) << Why;
  }

  // One argument over the length cap.
  RunRequest Long;
  Long.Id = 3;
  Long.Args = {std::string(kMaxArgLen + 1, 'a')};
  {
    FrameReader R(kMaxRequestPayload);
    const std::vector<uint8_t> Wire = encodeRunRequest(Long);
    R.feed(Wire.data(), Wire.size());
    MsgKind Kind;
    std::vector<uint8_t> Payload;
    ASSERT_EQ(R.next(Kind, Payload, Why), FrameReader::Status::Frame) << Why;
    EXPECT_FALSE(decodeRunRequest(Payload, Out, Why));
  }

  // An embedded NUL would silently truncate at execv.
  RunRequest Nul;
  Nul.Id = 4;
  Nul.Args = {std::string("--bud\0get", 9)};
  {
    FrameReader R(kMaxRequestPayload);
    const std::vector<uint8_t> Wire = encodeRunRequest(Nul);
    R.feed(Wire.data(), Wire.size());
    MsgKind Kind;
    std::vector<uint8_t> Payload;
    ASSERT_EQ(R.next(Kind, Payload, Why), FrameReader::Status::Frame) << Why;
    EXPECT_FALSE(decodeRunRequest(Payload, Out, Why));
    EXPECT_NE(Why.find("NUL"), std::string::npos) << Why;
  }

  // Trailing garbage after a valid payload.
  RunRequest Ok;
  Ok.Id = 5;
  Ok.Args = {"--x"};
  {
    FrameReader R(kMaxRequestPayload);
    std::vector<uint8_t> Wire = encodeRunRequest(Ok);
    MsgKind Kind;
    std::vector<uint8_t> Payload;
    R.feed(Wire.data(), Wire.size());
    ASSERT_EQ(R.next(Kind, Payload, Why), FrameReader::Status::Frame) << Why;
    Payload.push_back(0x00);
    EXPECT_FALSE(decodeRunRequest(Payload, Out, Why));
  }
}

TEST(Protocol, EverySplitPointParsesIdentically) {
  // Property: a framed stream parses to the same frames no matter where
  // the kernel happens to split the bytes. Two frames back to back (a
  // payload-bearing Run and a payload-free Reload), fed (a) whole, (b)
  // byte by byte, and (c) in two chunks at every possible offset; every
  // variant must yield the same two frames with the latch never firing.
  RunRequest Req;
  Req.Id = 77;
  Req.Args = {"--workload=bitcount", "--enumerate=bit_count"};
  std::vector<uint8_t> Wire = encodeRunRequest(Req);
  const std::vector<uint8_t> Second = encodeReload();
  Wire.insert(Wire.end(), Second.begin(), Second.end());

  auto ParseAll = [](FrameReader &R)
      -> std::vector<std::pair<MsgKind, std::vector<uint8_t>>> {
    std::vector<std::pair<MsgKind, std::vector<uint8_t>>> Frames;
    MsgKind Kind;
    std::vector<uint8_t> Payload;
    std::string Why;
    for (;;) {
      const FrameReader::Status S = R.next(Kind, Payload, Why);
      if (S == FrameReader::Status::Malformed) {
        ADD_FAILURE() << "latch fired on a well-formed stream: " << Why;
        return Frames;
      }
      if (S == FrameReader::Status::NeedMore)
        return Frames;
      Frames.emplace_back(Kind, Payload);
    }
  };

  // Reference parse: the whole stream at once.
  FrameReader Whole(kMaxRequestPayload);
  Whole.feed(Wire.data(), Wire.size());
  const auto Ref = ParseAll(Whole);
  ASSERT_EQ(Ref.size(), 2u);
  EXPECT_EQ(Ref[0].first, MsgKind::Run);
  EXPECT_EQ(Ref[1].first, MsgKind::Reload);

  // Byte by byte, draining after every byte.
  {
    FrameReader R(kMaxRequestPayload);
    std::vector<std::pair<MsgKind, std::vector<uint8_t>>> Got;
    for (const uint8_t B : Wire) {
      R.feed(&B, 1);
      const auto Part = ParseAll(R);
      Got.insert(Got.end(), Part.begin(), Part.end());
    }
    EXPECT_EQ(Got, Ref) << "byte-at-a-time parse diverged";
    EXPECT_EQ(R.buffered(), 0u);
  }

  // Every 2-chunk split, including the empty-first and empty-second
  // degenerate splits.
  for (size_t Cut = 0; Cut <= Wire.size(); ++Cut) {
    FrameReader R(kMaxRequestPayload);
    std::vector<std::pair<MsgKind, std::vector<uint8_t>>> Got;
    R.feed(Wire.data(), Cut);
    auto Part = ParseAll(R);
    Got.insert(Got.end(), Part.begin(), Part.end());
    R.feed(Wire.data() + Cut, Wire.size() - Cut);
    Part = ParseAll(R);
    Got.insert(Got.end(), Part.begin(), Part.end());
    ASSERT_EQ(Got, Ref) << "split at offset " << Cut << " diverged";
  }
}

TEST(Protocol, NamesAreStable) {
  EXPECT_STREQ(servedFromName(ServedFrom::Computed), "computed");
  EXPECT_STREQ(servedFromName(ServedFrom::Coalesced), "coalesced");
  EXPECT_STREQ(servedFromName(ServedFrom::Cached), "cached");
  EXPECT_STREQ(errorCodeName(ErrorCode::BadFrame), "bad-frame");
  EXPECT_STREQ(errorCodeName(ErrorCode::BadRequest), "bad-request");
  EXPECT_STREQ(errorCodeName(ErrorCode::DeniedArg), "denied-arg");
  EXPECT_STREQ(errorCodeName(ErrorCode::Overloaded), "overloaded");
  EXPECT_STREQ(errorCodeName(ErrorCode::ShuttingDown), "shutting-down");
  EXPECT_STREQ(errorCodeName(ErrorCode::WorkerFailed), "worker-failed");
  EXPECT_STREQ(errorCodeName(ErrorCode::Deadline), "deadline");
  EXPECT_STREQ(errorCodeName(ErrorCode::ReloadRejected), "reload-rejected");
}

} // namespace
