//===- serve_test.cpp - posed daemon integration tests --------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Spawns the real posed binary (POSE_POSED_PATH, injected by CMake) on a
// throwaway socket and store and abuses it the way concurrent clients
// would: racing identical requests (exactly one computation), repeats
// (served from cache), disconnects mid-request (no orphaned worker),
// malformed and truncated frames (a diagnostic, a dropped connection,
// and a daemon that keeps serving), per-client overload, denied flags,
// request deadlines, and a graceful SIGTERM drain that still answers
// the in-flight request and leaves the store fsck-clean.
//
// Responses are compared byte-for-byte against one-shot posec runs
// (POSE_POSEC_PATH): stdout and the exit code are the deterministic
// contract; stderr may carry cache-provenance notes and is not.
//
//===----------------------------------------------------------------------===//

#include "src/serve/Protocol.h"
#include "src/support/Subprocess.h"

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace pose;
using namespace pose::serve;

namespace fs = std::filesystem;

namespace {

// A request that reliably takes several hundred milliseconds — wide
// enough to race against, short enough to keep the suite fast.
const std::vector<std::string> SlowArgs = {"--workload=dijkstra",
                                           "--enumerate=dijkstra",
                                           "--budget=400000"};
// A request that finishes in tens of milliseconds.
const std::vector<std::string> QuickArgs = {"--workload=bitcount",
                                            "--enumerate=bit_count",
                                            "--budget=50000"};

uint64_t nowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One live posed process on a fresh socket and store.
class DaemonProc {
public:
  std::string Socket, Store;

  /// \p Probe: confirm readiness with a throwaway connection. The
  /// fault-sock sweep turns this off — the probe's EOF read would
  /// consume injected read-fault indices before the request under test
  /// arrives.
  explicit DaemonProc(const char *Name, std::vector<std::string> Extra = {},
                      bool Probe = true) {
    // Keep the socket path short: sun_path holds ~100 bytes.
    Socket = "/tmp/posed-gt-" + std::to_string(::getpid()) + "-" + Name +
             ".sock";
    Store = ::testing::TempDir() + "pose-serve-" + Name + "-store";
    ::unlink(Socket.c_str());
    fs::remove_all(Store);

    std::vector<std::string> Args = {POSE_POSED_PATH,
                                     "--socket=" + Socket,
                                     "--store=" + Store,
                                     "--posec=" POSE_POSEC_PATH};
    Args.insert(Args.end(), Extra.begin(), Extra.end());

    Pid = ::fork();
    if (Pid == 0) {
      // Child: silence the daemon's log lines; exec posed.
      const int Null = ::open("/dev/null", O_WRONLY);
      if (Null >= 0) {
        ::dup2(Null, 1);
        ::dup2(Null, 2);
        ::close(Null);
      }
      std::vector<char *> Argv;
      for (std::string &A : Args)
        Argv.push_back(A.data());
      Argv.push_back(nullptr);
      ::execv(Argv[0], Argv.data());
      ::_exit(127);
    }
    Ready = Pid > 0 && (!Probe || waitReady());
  }

  /// True once the daemon is forked and listening; every test must
  /// ASSERT on this before talking to the socket.
  bool ready() const { return Ready; }

  ~DaemonProc() {
    if (Pid > 0) {
      ::kill(Pid, SIGKILL);
      int St = 0;
      ::waitpid(Pid, &St, 0);
    }
    ::unlink(Socket.c_str());
  }

  pid_t pid() const { return Pid; }

  /// SIGTERMs the daemon and returns its wait status; -1 when it failed
  /// to exit within 10 seconds (it is then SIGKILLed by the dtor).
  int terminate() {
    if (Pid <= 0)
      return -1;
    ::kill(Pid, SIGTERM);
    return await();
  }

  /// Reaps the daemon (it must be exiting on its own); -1 on timeout.
  int await() {
    const uint64_t Deadline = nowMs() + 10'000;
    int St = 0;
    while (nowMs() < Deadline) {
      const pid_t R = ::waitpid(Pid, &St, WNOHANG);
      if (R == Pid) {
        Pid = -1;
        return St;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return -1;
  }

private:
  pid_t Pid = -1;
  bool Ready = false;

  bool waitReady() {
    const uint64_t Deadline = nowMs() + 10'000;
    while (nowMs() < Deadline) {
      const int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (Fd < 0)
        return false;
      sockaddr_un Addr{};
      Addr.sun_family = AF_UNIX;
      std::snprintf(Addr.sun_path, sizeof(Addr.sun_path), "%s",
                    Socket.c_str());
      const int Rc = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                               sizeof(Addr));
      ::close(Fd);
      if (Rc == 0)
        return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }
};

/// A blocking client connection with framed send/receive.
class Client {
public:
  explicit Client(const std::string &SocketPath)
      : In(kMaxResponsePayload) {
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    std::snprintf(Addr.sun_path, sizeof(Addr.sun_path), "%s",
                  SocketPath.c_str());
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
        0) {
      ::close(Fd);
      Fd = -1;
    }
  }
  ~Client() { closeNow(); }

  bool ok() const { return Fd >= 0; }

  void closeNow() {
    if (Fd >= 0)
      ::close(Fd);
    Fd = -1;
  }

  bool sendRaw(const std::vector<uint8_t> &Bytes) {
    size_t Off = 0;
    while (Off < Bytes.size()) {
      const ssize_t N = ::send(Fd, Bytes.data() + Off, Bytes.size() - Off,
                               MSG_NOSIGNAL);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      Off += static_cast<size_t>(N);
    }
    return true;
  }

  /// Receives one verified frame; fails the test on timeout, EOF, or a
  /// malformed stream. \p TimeoutMs bounds the whole receive.
  bool recvFrame(MsgKind &Kind, std::vector<uint8_t> &Payload,
                 uint64_t TimeoutMs = 30'000) {
    std::string Why;
    const uint64_t Deadline = nowMs() + TimeoutMs;
    for (;;) {
      switch (In.next(Kind, Payload, Why)) {
      case FrameReader::Status::Frame:
        return true;
      case FrameReader::Status::Malformed:
        ADD_FAILURE() << "malformed response stream: " << Why;
        return false;
      case FrameReader::Status::NeedMore:
        break;
      }
      const uint64_t Now = nowMs();
      if (Now >= Deadline) {
        ADD_FAILURE() << "timed out waiting for a response frame";
        return false;
      }
      pollfd P{Fd, POLLIN, 0};
      const int NReady =
          ::poll(&P, 1, static_cast<int>(Deadline - Now));
      if (NReady < 0 && errno == EINTR)
        continue;
      if (NReady <= 0)
        continue;
      uint8_t Chunk[4096];
      const ssize_t Got = ::read(Fd, Chunk, sizeof(Chunk));
      if (Got < 0 && errno == EINTR)
        continue;
      if (Got <= 0) {
        ADD_FAILURE() << "connection closed while awaiting a frame";
        return false;
      }
      In.feed(Chunk, static_cast<size_t>(Got));
    }
  }

  /// True when the daemon closed this connection (EOF) within
  /// \p TimeoutMs without sending further bytes we care about.
  bool awaitEof(uint64_t TimeoutMs = 10'000) {
    const uint64_t Deadline = nowMs() + TimeoutMs;
    for (;;) {
      const uint64_t Now = nowMs();
      if (Now >= Deadline)
        return false;
      pollfd P{Fd, POLLIN, 0};
      if (::poll(&P, 1, static_cast<int>(Deadline - Now)) <= 0)
        continue;
      uint8_t Chunk[4096];
      const ssize_t Got = ::read(Fd, Chunk, sizeof(Chunk));
      if (Got == 0)
        return true;
      if (Got < 0 && errno != EINTR)
        return true; // ECONNRESET also counts as closed.
    }
  }

  bool sendRun(uint64_t Id, const std::vector<std::string> &Args) {
    RunRequest R;
    R.Id = Id;
    R.Args = Args;
    return sendRaw(encodeRunRequest(R));
  }

  /// Sends a Run and receives its RunResponse, asserting the id echo.
  bool run(uint64_t Id, const std::vector<std::string> &Args,
           RunResponse &Out, uint64_t TimeoutMs = 30'000) {
    if (!sendRun(Id, Args))
      return false;
    MsgKind Kind;
    std::vector<uint8_t> Payload;
    if (!recvFrame(Kind, Payload, TimeoutMs))
      return false;
    std::string Why;
    if (Kind == MsgKind::Error) {
      ErrorResponse E;
      decodeErrorResponse(Payload, E, Why);
      ADD_FAILURE() << "run refused: " << errorCodeName(E.Code) << ": "
                    << E.Message;
      return false;
    }
    if (Kind != MsgKind::RunResult) {
      ADD_FAILURE() << "expected RunResult, got kind "
                    << static_cast<uint32_t>(Kind);
      return false;
    }
    if (!decodeRunResponse(Payload, Out, Why)) {
      ADD_FAILURE() << "run response does not decode: " << Why;
      return false;
    }
    EXPECT_EQ(Out.Id, Id) << "response id echo mismatch";
    return true;
  }

  bool ping() {
    if (!sendRaw(encodePing()))
      return false;
    MsgKind Kind;
    std::vector<uint8_t> Payload;
    if (!recvFrame(Kind, Payload))
      return false;
    EXPECT_EQ(Kind, MsgKind::Pong);
    return Kind == MsgKind::Pong;
  }

  bool stats(StatsReport &Out) {
    if (!sendRaw(encodeStatsRequest()))
      return false;
    MsgKind Kind;
    std::vector<uint8_t> Payload;
    if (!recvFrame(Kind, Payload))
      return false;
    EXPECT_EQ(Kind, MsgKind::StatsReport);
    std::string Why;
    return Kind == MsgKind::StatsReport &&
           decodeStatsReport(Payload, Out, Why);
  }

private:
  int Fd = -1;
  FrameReader In;
};

/// Runs posec directly (no daemon, no store) for the reference bytes.
SubprocessResult oneShot(const std::vector<std::string> &Args) {
  SubprocessSpec Spec;
  Spec.Argv = {POSE_POSEC_PATH};
  Spec.Argv.insert(Spec.Argv.end(), Args.begin(), Args.end());
  Spec.TimeoutMs = 60'000;
  return runSubprocess(Spec);
}

bool fsckClean(const std::string &Store) {
  SubprocessResult R = oneShot({"--store=" + Store, "--fsck"});
  EXPECT_TRUE(R.ok()) << R.Stdout << R.Stderr;
  return R.ok();
}

/// First live process whose parent is \p Parent (scans /proc); -1 when
/// none. Used to find the daemon child behind a --watchdog posed.
pid_t childOf(pid_t Parent) {
  for (const fs::directory_entry &E : fs::directory_iterator("/proc")) {
    const std::string Name = E.path().filename().string();
    if (Name.empty() || Name.find_first_not_of("0123456789") !=
                            std::string::npos)
      continue;
    std::FILE *F = std::fopen((E.path() / "stat").c_str(), "r");
    if (!F)
      continue;
    char Buf[512] = {0};
    const size_t Got = std::fread(Buf, 1, sizeof(Buf) - 1, F);
    std::fclose(F);
    if (Got == 0)
      continue;
    // Format: pid (comm) state ppid ... — comm may contain spaces, so
    // parse from the last ')'.
    const char *Close = std::strrchr(Buf, ')');
    if (!Close)
      continue;
    char State = 0;
    int Ppid = -1;
    if (std::sscanf(Close + 1, " %c %d", &State, &Ppid) == 2 &&
        Ppid == Parent && State != 'Z')
      return static_cast<pid_t>(std::stol(Name));
  }
  return -1;
}

/// Polls until \p Parent has a live child other than \p Not; -1 on
/// timeout.
pid_t awaitChildOf(pid_t Parent, pid_t Not = -1,
                   uint64_t TimeoutMs = 10'000) {
  const uint64_t Deadline = nowMs() + TimeoutMs;
  while (nowMs() < Deadline) {
    const pid_t C = childOf(Parent);
    if (C > 0 && C != Not)
      return C;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return -1;
}

size_t countFilesUnder(const std::string &Dir) {
  size_t N = 0;
  for (const fs::directory_entry &E :
       fs::recursive_directory_iterator(Dir))
    if (E.is_regular_file())
      ++N;
  return N;
}

/// Builds a valid staging store by running posec once against it.
void prepStagingStore(const std::string &Dir) {
  fs::remove_all(Dir);
  const SubprocessResult R =
      oneShot({"--workload=bitcount", "--enumerate=bit_count",
               "--budget=50000", "--store=" + Dir});
  ASSERT_EQ(R.Kind, ExitKind::Exited);
  ASSERT_EQ(R.ExitCode, 0) << R.Stderr;
}

TEST(ServeDaemon, AnswersPingAndStats) {
  DaemonProc D("ping");
  ASSERT_TRUE(D.ready()) << "daemon failed to start";
  Client C(D.Socket);
  ASSERT_TRUE(C.ok());
  EXPECT_TRUE(C.ping());
  StatsReport S;
  ASSERT_TRUE(C.stats(S));
  EXPECT_EQ(S.Requests, 0u);
  EXPECT_EQ(S.Clients, 1u);
}

TEST(ServeDaemon, ServedBytesMatchOneShotPosec) {
  DaemonProc D("oneshot");
  ASSERT_TRUE(D.ready()) << "daemon failed to start";
  Client C(D.Socket);
  ASSERT_TRUE(C.ok());
  RunResponse R;
  ASSERT_TRUE(C.run(1, QuickArgs, R));
  const SubprocessResult Ref = oneShot(QuickArgs);
  ASSERT_EQ(Ref.Kind, ExitKind::Exited);
  EXPECT_EQ(R.ExitCode, Ref.ExitCode);
  EXPECT_EQ(R.Stdout, Ref.Stdout) << "daemon stdout diverges from posec";
  EXPECT_EQ(R.Served, ServedFrom::Computed);
}

TEST(ServeDaemon, RacingIdenticalRequestsComputeExactlyOnce) {
  DaemonProc D("race");
  ASSERT_TRUE(D.ready()) << "daemon failed to start";
  Client A(D.Socket), B(D.Socket);
  ASSERT_TRUE(A.ok());
  ASSERT_TRUE(B.ok());

  // Both requests hit the daemon well inside the slow run's lifetime.
  ASSERT_TRUE(A.sendRun(1, SlowArgs));
  ASSERT_TRUE(B.sendRun(2, SlowArgs));

  MsgKind Kind;
  std::vector<uint8_t> Payload;
  std::string Why;
  RunResponse RA, RB;
  ASSERT_TRUE(A.recvFrame(Kind, Payload));
  ASSERT_EQ(Kind, MsgKind::RunResult);
  ASSERT_TRUE(decodeRunResponse(Payload, RA, Why)) << Why;
  ASSERT_TRUE(B.recvFrame(Kind, Payload));
  ASSERT_EQ(Kind, MsgKind::RunResult);
  ASSERT_TRUE(decodeRunResponse(Payload, RB, Why)) << Why;

  // Both clients got the full result, byte-identical.
  EXPECT_EQ(RA.ExitCode, RB.ExitCode);
  EXPECT_EQ(RA.Stdout, RB.Stdout);
  EXPECT_EQ(RA.Stderr, RB.Stderr);
  EXPECT_FALSE(RA.Stdout.empty());

  // Exactly one posec child ran; the twin was coalesced onto it.
  StatsReport S;
  ASSERT_TRUE(A.stats(S));
  EXPECT_EQ(S.Requests, 2u);
  EXPECT_EQ(S.Computed, 1u) << "identical concurrent requests must share "
                               "one computation";
  EXPECT_EQ(S.Coalesced, 1u);
}

TEST(ServeDaemon, RepeatedRequestIsServedFromCache) {
  DaemonProc D("cache");
  ASSERT_TRUE(D.ready()) << "daemon failed to start";
  Client C(D.Socket);
  ASSERT_TRUE(C.ok());
  RunResponse First, Second;
  ASSERT_TRUE(C.run(1, QuickArgs, First));
  EXPECT_EQ(First.Served, ServedFrom::Computed);
  ASSERT_TRUE(C.run(2, QuickArgs, Second));
  EXPECT_EQ(Second.Served, ServedFrom::Cached);
  EXPECT_EQ(Second.Stdout, First.Stdout);
  EXPECT_EQ(Second.ExitCode, First.ExitCode);
  StatsReport S;
  ASSERT_TRUE(C.stats(S));
  EXPECT_EQ(S.Computed, 1u);
  EXPECT_EQ(S.CacheHits, 1u);
}

TEST(ServeDaemon, StorePlumbingFlagsAreDenied) {
  DaemonProc D("deny");
  ASSERT_TRUE(D.ready()) << "daemon failed to start";
  Client C(D.Socket);
  ASSERT_TRUE(C.ok());
  ASSERT_TRUE(C.sendRun(9, {"--workload=bitcount", "--store=/tmp/evil"}));
  MsgKind Kind;
  std::vector<uint8_t> Payload;
  ASSERT_TRUE(C.recvFrame(Kind, Payload));
  ASSERT_EQ(Kind, MsgKind::Error);
  ErrorResponse E;
  std::string Why;
  ASSERT_TRUE(decodeErrorResponse(Payload, E, Why)) << Why;
  EXPECT_EQ(E.Id, 9u);
  EXPECT_EQ(E.Code, ErrorCode::DeniedArg);
  EXPECT_NE(E.Message.find("--store"), std::string::npos) << E.Message;
  // A refused request costs the request, not the connection.
  EXPECT_TRUE(C.ping());
}

TEST(ServeDaemon, MalformedFrameGetsADiagnosticAndTheConnectionDropped) {
  DaemonProc D("malformed");
  ASSERT_TRUE(D.ready()) << "daemon failed to start";
  Client C(D.Socket);
  ASSERT_TRUE(C.ok());
  std::vector<uint8_t> Garbage(64, 0x5A);
  ASSERT_TRUE(C.sendRaw(Garbage));

  MsgKind Kind;
  std::vector<uint8_t> Payload;
  ASSERT_TRUE(C.recvFrame(Kind, Payload));
  ASSERT_EQ(Kind, MsgKind::Error);
  ErrorResponse E;
  std::string Why;
  ASSERT_TRUE(decodeErrorResponse(Payload, E, Why)) << Why;
  EXPECT_EQ(E.Code, ErrorCode::BadFrame);
  EXPECT_TRUE(C.awaitEof()) << "a broken stream must be dropped";

  // The daemon itself is unharmed: a fresh connection works.
  Client Fresh(D.Socket);
  ASSERT_TRUE(Fresh.ok());
  EXPECT_TRUE(Fresh.ping());
}

TEST(ServeDaemon, TruncatedFrameThenDisconnectLeavesTheDaemonServing) {
  DaemonProc D("truncated");
  ASSERT_TRUE(D.ready()) << "daemon failed to start";
  {
    Client C(D.Socket);
    ASSERT_TRUE(C.ok());
    const std::vector<uint8_t> Wire = encodePing();
    const std::vector<uint8_t> Half(Wire.begin(),
                                    Wire.begin() + kHeaderSize / 2);
    ASSERT_TRUE(C.sendRaw(Half));
    // Disconnect with the frame forever incomplete.
  }
  Client Fresh(D.Socket);
  ASSERT_TRUE(Fresh.ok());
  EXPECT_TRUE(Fresh.ping());
}

TEST(ServeDaemon, PerClientBudgetRefusesTheExcessRequest) {
  DaemonProc D("overload", {"--max-inflight=1", "--max-jobs=1"});
  ASSERT_TRUE(D.ready()) << "daemon failed to start";
  Client C(D.Socket);
  ASSERT_TRUE(C.ok());
  ASSERT_TRUE(C.sendRun(1, SlowArgs));
  ASSERT_TRUE(C.sendRun(2, SlowArgs));

  bool SawResult = false, SawOverloaded = false;
  for (int I = 0; I != 2; ++I) {
    MsgKind Kind;
    std::vector<uint8_t> Payload;
    std::string Why;
    ASSERT_TRUE(C.recvFrame(Kind, Payload));
    if (Kind == MsgKind::Error) {
      ErrorResponse E;
      ASSERT_TRUE(decodeErrorResponse(Payload, E, Why)) << Why;
      EXPECT_EQ(E.Id, 2u) << "the admitted request must not be refused";
      EXPECT_EQ(E.Code, ErrorCode::Overloaded);
      SawOverloaded = true;
    } else {
      ASSERT_EQ(Kind, MsgKind::RunResult);
      RunResponse R;
      ASSERT_TRUE(decodeRunResponse(Payload, R, Why)) << Why;
      EXPECT_EQ(R.Id, 1u);
      SawResult = true;
    }
  }
  EXPECT_TRUE(SawResult);
  EXPECT_TRUE(SawOverloaded);
}

TEST(ServeDaemon, DisconnectMidRequestReleasesTheWorkerSlot) {
  DaemonProc D("abandon", {"--max-jobs=1"});
  ASSERT_TRUE(D.ready()) << "daemon failed to start";
  {
    Client A(D.Socket);
    ASSERT_TRUE(A.ok());
    ASSERT_TRUE(A.sendRun(1, SlowArgs));
    // Give the daemon a moment to admit and spawn, then vanish.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  // The abandoned child must be killed and its slot reclaimed well
  // before the slow run would have finished on its own; the daemon must
  // keep serving. A quick run through the single slot proves both.
  Client B(D.Socket);
  ASSERT_TRUE(B.ok());
  const uint64_t Deadline = nowMs() + 10'000;
  bool Drained = false;
  while (nowMs() < Deadline) {
    StatsReport S;
    ASSERT_TRUE(B.stats(S));
    if (S.Running == 0 && S.Queued == 0) {
      Drained = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(Drained) << "orphaned worker still holding the slot";
  RunResponse R;
  ASSERT_TRUE(B.run(2, QuickArgs, R));
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(ServeDaemon, RequestDeadlineKillsTheChildAndReportsIt) {
  DaemonProc D("deadline", {"--request-timeout-ms=200"});
  ASSERT_TRUE(D.ready()) << "daemon failed to start";
  Client C(D.Socket);
  ASSERT_TRUE(C.ok());
  ASSERT_TRUE(C.sendRun(1, SlowArgs)); // Needs ~500ms; allowed 200.
  MsgKind Kind;
  std::vector<uint8_t> Payload;
  ASSERT_TRUE(C.recvFrame(Kind, Payload));
  ASSERT_EQ(Kind, MsgKind::Error);
  ErrorResponse E;
  std::string Why;
  ASSERT_TRUE(decodeErrorResponse(Payload, E, Why)) << Why;
  EXPECT_EQ(E.Id, 1u);
  EXPECT_EQ(E.Code, ErrorCode::Deadline);
  // The connection survives its request's deadline.
  EXPECT_TRUE(C.ping());
}

TEST(ServeDaemon, SigtermDrainsTheInFlightRequestThenExitsZero) {
  DaemonProc D("drain");
  ASSERT_TRUE(D.ready()) << "daemon failed to start";
  Client C(D.Socket);
  ASSERT_TRUE(C.ok());
  ASSERT_TRUE(C.sendRun(1, SlowArgs));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ::kill(D.pid(), SIGTERM);

  // The in-flight request is still answered, in full.
  MsgKind Kind;
  std::vector<uint8_t> Payload;
  ASSERT_TRUE(C.recvFrame(Kind, Payload));
  ASSERT_EQ(Kind, MsgKind::RunResult);
  RunResponse R;
  std::string Why;
  ASSERT_TRUE(decodeRunResponse(Payload, R, Why)) << Why;
  EXPECT_EQ(R.Id, 1u);
  EXPECT_FALSE(R.Stdout.empty());
  EXPECT_TRUE(C.awaitEof());

  const int St = D.await();
  ASSERT_NE(St, -1) << "daemon did not exit after the drain";
  ASSERT_TRUE(WIFEXITED(St));
  EXPECT_EQ(WEXITSTATUS(St), 0);
  EXPECT_TRUE(fsckClean(D.Store));
}

TEST(ServeDaemon, ShutdownFrameAnswersPongThenExitsZero) {
  DaemonProc D("shutdown");
  ASSERT_TRUE(D.ready()) << "daemon failed to start";
  Client C(D.Socket);
  ASSERT_TRUE(C.ok());
  RunResponse R;
  ASSERT_TRUE(C.run(1, QuickArgs, R)); // Leave something in the store.
  ASSERT_TRUE(C.sendRaw(encodeShutdown()));
  MsgKind Kind;
  std::vector<uint8_t> Payload;
  ASSERT_TRUE(C.recvFrame(Kind, Payload));
  EXPECT_EQ(Kind, MsgKind::Pong);
  EXPECT_TRUE(C.awaitEof());

  const int St = D.await();
  ASSERT_NE(St, -1);
  ASSERT_TRUE(WIFEXITED(St));
  EXPECT_EQ(WEXITSTATUS(St), 0);
  EXPECT_TRUE(fsckClean(D.Store));
}

// ---- Self-healing layer: watchdog, hot reload, shedding, fault-sock ----

TEST(ServeDaemon, WatchdogRestartsACrashedDaemonBehindTheSameSocket) {
  DaemonProc D("wd", {"--watchdog", "--heartbeat-timeout-ms=0"});
  ASSERT_TRUE(D.ready()) << "watchdog failed to start";
  // D.pid() is the watchdog; the daemon is its child.
  const pid_t Daemon = awaitChildOf(D.pid());
  ASSERT_GT(Daemon, 0) << "no daemon child under the watchdog";
  {
    Client C(D.Socket);
    ASSERT_TRUE(C.ok());
    EXPECT_TRUE(C.ping());
  }

  // Crash the daemon. The watchdog holds the listening socket, so a
  // client connecting into the gap queues in the backlog and is served
  // by the next incarnation — never connection-refused.
  ASSERT_EQ(::kill(Daemon, SIGKILL), 0);
  Client C(D.Socket);
  ASSERT_TRUE(C.ok()) << "connect must succeed even while the daemon "
                         "is down: the watchdog owns the socket";
  EXPECT_TRUE(C.ping());
  const pid_t Second = awaitChildOf(D.pid(), Daemon);
  ASSERT_GT(Second, 0);
  EXPECT_NE(Second, Daemon);

  // The restarted daemon serves real work and reports its lineage.
  RunResponse R;
  ASSERT_TRUE(C.run(1, QuickArgs, R));
  EXPECT_EQ(R.ExitCode, 0);
  StatsReport S;
  ASSERT_TRUE(C.stats(S));
  EXPECT_EQ(S.Restarts, 1u);

  // A SIGTERM to the watchdog forwards to the daemon, drains it, and
  // the watchdog exits with the daemon's clean code.
  const int St = D.terminate();
  ASSERT_NE(St, -1) << "watchdog did not exit after the drain";
  ASSERT_TRUE(WIFEXITED(St));
  EXPECT_EQ(WEXITSTATUS(St), 0);
  EXPECT_TRUE(fsckClean(D.Store));
}

TEST(ServeDaemon, WatchdogEscalatesAfterTheRestartBudget) {
  DaemonProc D("wdgiveup",
               {"--watchdog", "--max-restarts=1",
                "--heartbeat-timeout-ms=0"});
  ASSERT_TRUE(D.ready()) << "watchdog failed to start";
  const pid_t First = awaitChildOf(D.pid());
  ASSERT_GT(First, 0);
  ASSERT_EQ(::kill(First, SIGKILL), 0); // Failure #1: restarted.
  const pid_t Second = awaitChildOf(D.pid(), First);
  ASSERT_GT(Second, 0);
  ASSERT_EQ(::kill(Second, SIGKILL), 0); // Failure #2: budget spent.

  const int St = D.await();
  ASSERT_NE(St, -1) << "watchdog must stop respawning and exit";
  ASSERT_TRUE(WIFEXITED(St));
  EXPECT_EQ(WEXITSTATUS(St), 13) << "WatchdogGaveUp is the documented "
                                    "page-an-operator exit code";
  // The socket file is released for the operator's next attempt.
  EXPECT_FALSE(fs::exists(D.Socket));
}

TEST(ServeDaemon, ReloadSwapsInAVerifiedStagingStore) {
  const std::string Staging =
      ::testing::TempDir() + "pose-serve-reload-staging";
  prepStagingStore(Staging);

  DaemonProc D("reload", {"--reload-store=" + Staging});
  ASSERT_TRUE(D.ready()) << "daemon failed to start";
  Client C(D.Socket);
  ASSERT_TRUE(C.ok());
  RunResponse R;
  ASSERT_TRUE(C.run(1, QuickArgs, R)); // Served from the original store.
  EXPECT_EQ(R.Served, ServedFrom::Computed);

  const size_t Before = countFilesUnder(Staging);
  ASSERT_TRUE(C.sendRaw(encodeReload()));
  MsgKind Kind;
  std::vector<uint8_t> Payload;
  ASSERT_TRUE(C.recvFrame(Kind, Payload));
  EXPECT_EQ(Kind, MsgKind::Pong) << "a verified staging store must be "
                                    "accepted";

  // The connection survived the swap, and new computations now land in
  // the staging store (a distinct request, so neither the cache nor the
  // old store can serve it).
  ASSERT_TRUE(C.run(2, SlowArgs, R));
  EXPECT_EQ(R.Served, ServedFrom::Computed);
  EXPECT_GT(countFilesUnder(Staging), Before)
      << "post-reload work must be stored in the swapped-in store";
  StatsReport S;
  ASSERT_TRUE(C.stats(S));
  EXPECT_EQ(S.Reloads, 1u);
  EXPECT_EQ(S.ReloadsRejected, 0u);
  EXPECT_TRUE(fsckClean(Staging));
}

TEST(ServeDaemon, ReloadOfACorruptStagingStoreIsRejected) {
  const std::string Staging =
      ::testing::TempDir() + "pose-serve-badreload-staging";
  prepStagingStore(Staging);
  // Corrupt the staging store: truncate its largest file by one byte.
  std::string Victim;
  uintmax_t Biggest = 0;
  for (const fs::directory_entry &E :
       fs::recursive_directory_iterator(Staging))
    if (E.is_regular_file() && E.file_size() > Biggest) {
      Biggest = E.file_size();
      Victim = E.path().string();
    }
  ASSERT_FALSE(Victim.empty());
  fs::resize_file(Victim, Biggest - 1);

  DaemonProc D("badreload", {"--reload-store=" + Staging});
  ASSERT_TRUE(D.ready()) << "daemon failed to start";
  Client C(D.Socket);
  ASSERT_TRUE(C.ok());
  ASSERT_TRUE(C.sendRaw(encodeReload()));
  MsgKind Kind;
  std::vector<uint8_t> Payload;
  ASSERT_TRUE(C.recvFrame(Kind, Payload));
  ASSERT_EQ(Kind, MsgKind::Error) << "a store failing fsck must not be "
                                     "swapped in";
  ErrorResponse E;
  std::string Why;
  ASSERT_TRUE(decodeErrorResponse(Payload, E, Why)) << Why;
  EXPECT_EQ(E.Code, ErrorCode::ReloadRejected);
  EXPECT_FALSE(E.Message.empty());

  // The refusal costs nothing: same connection, old store, new work.
  RunResponse R;
  ASSERT_TRUE(C.run(1, QuickArgs, R));
  EXPECT_EQ(R.ExitCode, 0);
  StatsReport S;
  ASSERT_TRUE(C.stats(S));
  EXPECT_EQ(S.Reloads, 0u);
  EXPECT_EQ(S.ReloadsRejected, 1u);
}

TEST(ServeDaemon, ReloadWithoutAStagingStoreIsRejected) {
  DaemonProc D("noreload");
  ASSERT_TRUE(D.ready()) << "daemon failed to start";
  Client C(D.Socket);
  ASSERT_TRUE(C.ok());
  ASSERT_TRUE(C.sendRaw(encodeReload()));
  MsgKind Kind;
  std::vector<uint8_t> Payload;
  ASSERT_TRUE(C.recvFrame(Kind, Payload));
  ASSERT_EQ(Kind, MsgKind::Error);
  ErrorResponse E;
  std::string Why;
  ASSERT_TRUE(decodeErrorResponse(Payload, E, Why)) << Why;
  EXPECT_EQ(E.Code, ErrorCode::ReloadRejected);
  EXPECT_NE(E.Message.find("--reload-store"), std::string::npos)
      << E.Message;
  EXPECT_TRUE(C.ping());
}

TEST(ServeDaemon, GlobalQueueCapShedsWithARetryAfterHint) {
  DaemonProc D("shed", {"--max-jobs=1", "--max-queue=1"});
  ASSERT_TRUE(D.ready()) << "daemon failed to start";
  Client C(D.Socket);
  ASSERT_TRUE(C.ok());
  // Four distinct slow requests down one pipe: #1 runs, #2 queues, the
  // rest overflow the global cap and must be shed with a hint.
  for (uint64_t Id = 1; Id <= 4; ++Id) {
    const std::vector<std::string> Args = {
        "--workload=dijkstra", "--enumerate=dijkstra",
        "--budget=" + std::to_string(400'000 + Id)};
    ASSERT_TRUE(C.sendRun(Id, Args));
  }

  size_t Results = 0, Shed = 0;
  for (int I = 0; I != 4; ++I) {
    MsgKind Kind;
    std::vector<uint8_t> Payload;
    std::string Why;
    ASSERT_TRUE(C.recvFrame(Kind, Payload));
    if (Kind == MsgKind::Error) {
      ErrorResponse E;
      ASSERT_TRUE(decodeErrorResponse(Payload, E, Why)) << Why;
      ASSERT_EQ(E.Code, ErrorCode::Overloaded);
      EXPECT_GT(E.RetryAfterMs, 0u)
          << "a global shed must tell the client when to come back";
      EXPECT_GE(E.Id, 3u) << "the admitted requests must not be shed";
      ++Shed;
    } else {
      ASSERT_EQ(Kind, MsgKind::RunResult);
      ++Results;
    }
  }
  EXPECT_GE(Shed, 1u);
  EXPECT_GE(Results, 2u);
  StatsReport S;
  ASSERT_TRUE(C.stats(S));
  EXPECT_EQ(S.Shed, Shed);
}

TEST(ServeDaemon, ReadDeadlineReclaimsAStalledMidFramePeer) {
  DaemonProc D("stall", {"--read-timeout-ms=300"});
  ASSERT_TRUE(D.ready()) << "daemon failed to start";
  Client C(D.Socket);
  ASSERT_TRUE(C.ok());
  // Half a frame header, then silence: the classic slow-loris shape.
  const std::vector<uint8_t> Wire = encodePing();
  ASSERT_TRUE(C.sendRaw(std::vector<uint8_t>(
      Wire.begin(), Wire.begin() + kHeaderSize / 2)));
  EXPECT_TRUE(C.awaitEof(5'000))
      << "the read deadline must reclaim a mid-frame stalled connection";

  // The daemon is unharmed and counts the reclaim.
  Client Fresh(D.Socket);
  ASSERT_TRUE(Fresh.ok());
  EXPECT_TRUE(Fresh.ping());
  StatsReport S;
  ASSERT_TRUE(Fresh.stats(S));
  EXPECT_GE(S.ReadTimeouts, 1u);
}

/// One sweep request against a fault-injected daemon. The service
/// invariant allows exactly two outcomes: a RunResult byte-identical
/// to one-shot posec, or a clean connection drop. Anything else —
/// a hang past the deadline, a malformed stream, a divergent
/// response — fails the test.
enum class SweepOutcome { Response, Drop };

bool sweepRequest(const std::string &Socket,
                  const std::vector<std::string> &Args, uint64_t Id,
                  SweepOutcome &Out, RunResponse &R,
                  const std::string &Ctx) {
  // Connect with retries: the sweep skips the readiness probe (it
  // would eat read-fault indices), so the daemon may still be binding.
  int Fd = -1;
  const uint64_t ConnDeadline = nowMs() + 10'000;
  for (;;) {
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    std::snprintf(Addr.sun_path, sizeof(Addr.sun_path), "%s",
                  Socket.c_str());
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                  sizeof(Addr)) == 0)
      break;
    ::close(Fd);
    Fd = -1;
    if (nowMs() >= ConnDeadline) {
      ADD_FAILURE() << Ctx << ": connect failed: " << std::strerror(errno);
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  RunRequest Req;
  Req.Id = Id;
  Req.Args = Args;
  const std::vector<uint8_t> Wire = encodeRunRequest(Req);
  size_t Off = 0;
  while (Off < Wire.size()) {
    const ssize_t N =
        ::send(Fd, Wire.data() + Off, Wire.size() - Off, MSG_NOSIGNAL);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      break; // The daemon dropped us mid-send: a clean drop.
    Off += static_cast<size_t>(N);
  }

  FrameReader In(kMaxResponsePayload);
  const uint64_t Deadline = nowMs() + 20'000;
  for (;;) {
    MsgKind Kind;
    std::vector<uint8_t> Payload;
    std::string Why;
    switch (In.next(Kind, Payload, Why)) {
    case FrameReader::Status::Frame: {
      ::close(Fd);
      if (Kind != MsgKind::RunResult) {
        ADD_FAILURE() << Ctx << ": unexpected frame kind "
                      << static_cast<uint32_t>(Kind)
                      << " violates the response-or-drop invariant";
        return false;
      }
      if (!decodeRunResponse(Payload, R, Why)) {
        ADD_FAILURE() << Ctx << ": undecodable response: " << Why;
        return false;
      }
      Out = SweepOutcome::Response;
      return true;
    }
    case FrameReader::Status::Malformed:
      ::close(Fd);
      ADD_FAILURE() << Ctx << ": malformed response stream: " << Why;
      return false;
    case FrameReader::Status::NeedMore:
      break;
    }
    const uint64_t Now = nowMs();
    if (Now >= Deadline) {
      ::close(Fd);
      ADD_FAILURE() << Ctx << ": hang: no response and no drop within "
                       "the deadline";
      return false;
    }
    pollfd P{Fd, POLLIN, 0};
    const int NReady = ::poll(&P, 1, static_cast<int>(Deadline - Now));
    if (NReady < 0 && errno == EINTR)
      continue;
    if (NReady <= 0)
      continue;
    uint8_t Chunk[4096];
    const ssize_t Got = ::read(Fd, Chunk, sizeof(Chunk));
    if (Got < 0 && errno == EINTR)
      continue;
    if (Got <= 0) {
      ::close(Fd);
      Out = SweepOutcome::Drop;
      return true;
    }
    In.feed(Chunk, static_cast<size_t>(Got));
  }
}

TEST(ServeDaemon, FaultSockSweepPreservesTheServiceInvariant) {
  const SubprocessResult Ref = oneShot(QuickArgs);
  ASSERT_EQ(Ref.Kind, ExitKind::Exited);

  const char *Kinds[] = {"short-write", "eagain-storm", "disconnect",
                         "stalled-peer"};
  for (const char *Kind : Kinds)
    for (int Nth = 1; Nth <= 3; ++Nth) {
      const std::string Ctx =
          std::string(Kind) + ":" + std::to_string(Nth);
      DaemonProc D(("fault-" + Ctx).c_str(),
                   {"--fault-sock=" + Ctx, "--read-timeout-ms=400"},
                   /*Probe=*/false);
      ASSERT_TRUE(D.ready()) << Ctx << ": daemon failed to start";

      // The injected fault fires at most once; within a handful of
      // attempts one request must get through, and every attempt —
      // faulted or not — must end in a correct response or a clean
      // drop.
      bool Succeeded = false;
      for (uint64_t Attempt = 1; Attempt <= 6 && !Succeeded; ++Attempt) {
        SweepOutcome Out;
        RunResponse R;
        if (!sweepRequest(D.Socket, QuickArgs, Attempt, Out, R, Ctx))
          break; // The invariant already failed; details are recorded.
        if (Out == SweepOutcome::Drop)
          continue;
        EXPECT_EQ(R.ExitCode, Ref.ExitCode) << Ctx;
        EXPECT_EQ(R.Stdout, Ref.Stdout)
            << Ctx << ": a served response must be byte-identical to "
                      "one-shot posec, faults or not";
        Succeeded = true;
      }
      EXPECT_TRUE(Succeeded)
          << Ctx << ": the daemon never recovered into serving";
      EXPECT_TRUE(fsckClean(D.Store)) << Ctx;
    }
}

} // namespace
