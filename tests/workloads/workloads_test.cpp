//===- workloads_test.cpp - Benchmark program tests ----------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/workloads/Workloads.h"

#include "src/core/Compilers.h"
#include "src/opt/PhaseManager.h"
#include "src/sim/Interpreter.h"
#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

using namespace pose;
using namespace pose::testhelpers;

namespace {

TEST(Workloads, RegistryShape) {
  const auto &All = allWorkloads();
  ASSERT_EQ(All.size(), 6u); // One per MiBench category (Table 2).
  EXPECT_STREQ(All[0].Category, "auto");
  EXPECT_STREQ(All[5].Category, "office");
  EXPECT_NE(findWorkload("sha"), nullptr);
  EXPECT_EQ(findWorkload("missing"), nullptr);
}

TEST(Workloads, AllCompileAndVerify) {
  for (const Workload &W : allWorkloads()) {
    CompileResult R = compileMC(W.Source);
    ASSERT_TRUE(R.ok()) << W.Name << ": " << R.diagText();
    EXPECT_EQ(verifyModule(R.M), "") << W.Name;
    EXPECT_GE(R.M.Functions.size(), 7u) << W.Name;
  }
}

struct Golden {
  const char *Name;
  int32_t Ret;
  std::vector<int32_t> Output;
};

const Golden Goldens[] = {
    {"bitcount", 1024, {1024}},
    {"dijkstra", 760, {760, 8}},
    {"fft", 2600, {2600, 50}},
    {"jpeg", 1839, {1839, 19135, 2026446817, 40}},
    {"sha",
     -1714223431,
     {1929437655, -1946583909, 1990426008, -1953974923, -1677634792,
      699010992}},
    {"stringsearch", 4110, {4, 1, 1, 0, 4, 0}},
};

TEST(Workloads, GoldenOutputs) {
  for (const Golden &G : Goldens) {
    const Workload *W = findWorkload(G.Name);
    ASSERT_NE(W, nullptr) << G.Name;
    Module M = compileOrDie(W->Source);
    Interpreter Sim(M);
    RunResult R = Sim.run("main", {});
    ASSERT_TRUE(R.Ok) << G.Name << ": " << R.Error;
    EXPECT_EQ(R.ReturnValue, G.Ret) << G.Name;
    EXPECT_EQ(R.Output, G.Output) << G.Name;
  }
}

TEST(Workloads, BatchCompilationPreservesGoldens) {
  PhaseManager PM;
  for (const Golden &G : Goldens) {
    const Workload *W = findWorkload(G.Name);
    Module M = compileOrDie(W->Source);
    Interpreter Sim(M);
    uint64_t DynBefore = Sim.run("main", {}).DynamicInsts;
    for (Function &F : M.Functions) {
      batchCompile(PM, F);
      expectVerifies(F);
    }
    RunResult R = Sim.run("main", {});
    ASSERT_TRUE(R.Ok) << G.Name << ": " << R.Error;
    EXPECT_EQ(R.ReturnValue, G.Ret) << G.Name;
    EXPECT_EQ(R.Output, G.Output) << G.Name;
    // Optimization pays: at least 2x fewer dynamic instructions on these
    // naive-codegen programs.
    EXPECT_LT(R.DynamicInsts, DynBefore / 2) << G.Name;
  }
}

TEST(Workloads, FunctionSizesSpanARange) {
  // The suite must exercise both small and large functions, as Table 3's
  // 111 functions do (60-to-1371 instructions unoptimized).
  size_t MinSize = SIZE_MAX, MaxSize = 0, Total = 0, Count = 0;
  for (const Workload &W : allWorkloads()) {
    Module M = compileOrDie(W.Source);
    for (const Function &F : M.Functions) {
      size_t S = F.instructionCount();
      MinSize = std::min(MinSize, S);
      MaxSize = std::max(MaxSize, S);
      Total += S;
      ++Count;
    }
  }
  EXPECT_GE(Count, 50u);
  EXPECT_LT(MinSize, 15u);
  EXPECT_GT(MaxSize, 300u);
  EXPECT_GT(Total / Count, 40u);
}

} // namespace
