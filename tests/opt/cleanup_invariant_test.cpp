//===- cleanup_invariant_test.cpp - Implicit-cleanup invariants ------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper's justification for keeping block merging and empty-block
// elimination out of the search alphabet is that they "only change the
// internal control-flow representation as seen by the compiler and do not
// directly affect the final generated code". In this implementation that
// is a checkable invariant: cleanupCfg must never change the canonical
// form (emitted code) of any function, at any pipeline stage.
//
//===----------------------------------------------------------------------===//

#include "src/core/Canonical.h"
#include "src/opt/Cleanup.h"
#include "src/opt/PhaseManager.h"
#include "src/workloads/Workloads.h"
#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

using namespace pose;
using namespace pose::testhelpers;

namespace {

TEST(CleanupInvariant, NeverChangesEmittedCode) {
  PhaseManager PM;
  const char *Stages[] = {"", "s", "sck", "sckshjlg", "oscbh"};
  for (const Workload &W : allWorkloads()) {
    for (const char *Stage : Stages) {
      Module M = compileOrDie(W.Source);
      for (Function &F : M.Functions) {
        PM.applySequence(F, Stage);
        HashTriple Before = canonicalize(F).Hash;
        size_t InstsBefore = F.instructionCount();
        cleanupCfg(F);
        EXPECT_EQ(canonicalize(F).Hash, Before)
            << W.Name << "/" << F.Name << " stage '" << Stage << "'";
        EXPECT_EQ(F.instructionCount(), InstsBefore);
        expectVerifies(F);
      }
    }
  }
}

TEST(CleanupInvariant, Idempotent) {
  for (const Workload &W : allWorkloads()) {
    Module M = compileOrDie(W.Source);
    for (Function &F : M.Functions) {
      cleanupCfg(F);
      EXPECT_FALSE(cleanupCfg(F)) << W.Name << "/" << F.Name;
    }
  }
}

} // namespace
