//===- phaseguard_test.cpp - Guarded phase application tests --------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/opt/PhaseGuard.h"

#include "src/core/Canonical.h"
#include "src/opt/PhaseManager.h"
#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

using namespace pose;
using namespace pose::testhelpers;

namespace {

const char *SumSource =
    "int f(int n){int s=0;int i=0;while(i<n){s=s+i;i=i+1;}return s;}";

TEST(FaultPlan, ParsesValidSpecs) {
  FaultPlan P;
  ASSERT_TRUE(FaultPlan::parse("c:3", P));
  ASSERT_EQ(P.Faults.size(), 1u);
  EXPECT_EQ(P.Faults[0].Phase, PhaseId::Cse);
  EXPECT_EQ(P.Faults[0].Application, 3u);
  EXPECT_TRUE(P.shouldFail(PhaseId::Cse, 3));
  EXPECT_FALSE(P.shouldFail(PhaseId::Cse, 2));
  EXPECT_FALSE(P.shouldFail(PhaseId::InstructionSelection, 3));

  ASSERT_TRUE(FaultPlan::parse("c:3,s:1,u:10", P));
  ASSERT_EQ(P.Faults.size(), 3u);
  EXPECT_TRUE(P.shouldFail(PhaseId::InstructionSelection, 1));
  EXPECT_TRUE(P.shouldFail(PhaseId::UselessJumps, 10));
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  FaultPlan P;
  P.add(PhaseId::Cse, 7); // Must survive failed parses untouched.
  EXPECT_FALSE(FaultPlan::parse("", P));
  EXPECT_FALSE(FaultPlan::parse("c", P));
  EXPECT_FALSE(FaultPlan::parse("c:", P));
  EXPECT_FALSE(FaultPlan::parse("c:0", P));
  EXPECT_FALSE(FaultPlan::parse("c:x", P));
  EXPECT_FALSE(FaultPlan::parse("c:3x", P));
  EXPECT_FALSE(FaultPlan::parse("z:1", P)); // z is not a phase letter.
  EXPECT_FALSE(FaultPlan::parse("c:3,,s:1", P));
  EXPECT_FALSE(FaultPlan::parse("c:3,s:", P));
  ASSERT_EQ(P.Faults.size(), 1u);
  EXPECT_EQ(P.Faults[0].Application, 7u);
}

TEST(PhaseGuard, PassthroughMatchesPhaseManager) {
  Module M1 = compileOrDie(SumSource);
  Module M2 = compileOrDie(SumSource);
  Function &FA = functionNamed(M1, "f");
  Function &FB = functionNamed(M2, "f");
  PhaseManager PM;
  PhaseGuard Guard(PM); // No verification, no faults: pure pass-through.
  EXPECT_FALSE(Guard.guarding());

  bool Active = PM.attempt(PhaseId::InstructionSelection, FA);
  PhaseGuard::Outcome Out = Guard.attempt(PhaseId::InstructionSelection, FB);
  EXPECT_EQ(Out == PhaseGuard::Outcome::Active, Active);
  EXPECT_EQ(canonicalize(FA).Hash, canonicalize(FB).Hash);
  EXPECT_EQ(Guard.applications(PhaseId::InstructionSelection), 1u);
  EXPECT_EQ(Guard.applications(PhaseId::Cse), 0u);
  EXPECT_TRUE(Guard.diagnostics().empty());
}

TEST(PhaseGuard, VerifiedHealthyPhasesMatchUnguarded) {
  Module M1 = compileOrDie(SumSource);
  Module M2 = compileOrDie(SumSource);
  Function &FA = functionNamed(M1, "f");
  Function &FB = functionNamed(M2, "f");
  PhaseManager PM;
  PhaseGuard::Options Opts;
  Opts.Verify = true;
  PhaseGuard Guard(PM, Opts);
  EXPECT_TRUE(Guard.guarding());

  const char *Codes = "osbchku";
  for (const char *C = Codes; *C; ++C) {
    PhaseId P = phaseFromCode(*C);
    if (!PM.isLegal(P, FA))
      continue;
    bool Active = PM.attempt(P, FA);
    PhaseGuard::Outcome Out = Guard.attempt(P, FB);
    EXPECT_EQ(Out == PhaseGuard::Outcome::Active, Active)
        << "phase " << *C;
  }
  EXPECT_EQ(canonicalize(FA).Hash, canonicalize(FB).Hash);
  EXPECT_TRUE(Guard.diagnostics().empty());
}

TEST(PhaseGuard, RollbackRestoresExactPrePhaseInstance) {
  Module M = compileOrDie(SumSource);
  Function &F = functionNamed(M, "f");
  PhaseManager PM;
  FaultPlan Plan;
  Plan.add(PhaseId::InstructionSelection, 1);
  PhaseGuard::Options Opts;
  Opts.Verify = true;
  Opts.Faults = &Plan;
  PhaseGuard Guard(PM, Opts);

  // Keep the canonical bytes too: the rollback must restore the exact
  // instance, not merely one with an equal hash triple.
  CanonicalForm Before = canonicalize(F, /*KeepBytes=*/true);
  PhaseGuard::Outcome Out = Guard.attempt(PhaseId::InstructionSelection, F);
  EXPECT_EQ(Out, PhaseGuard::Outcome::RolledBack);
  CanonicalForm After = canonicalize(F, /*KeepBytes=*/true);
  EXPECT_EQ(Before.Hash, After.Hash);
  EXPECT_EQ(Before.Bytes, After.Bytes);
  expectVerifies(F);

  ASSERT_EQ(Guard.diagnostics().size(), 1u);
  const PhaseDiagnostic &D = Guard.diagnostics()[0];
  EXPECT_EQ(D.Phase, PhaseId::InstructionSelection);
  EXPECT_EQ(D.Func, "f");
  EXPECT_EQ(D.Message, "injected fault");
  EXPECT_EQ(D.Application, 1u);
  EXPECT_TRUE(D.Injected);

  // The second application is past the fault: the phase works again.
  Out = Guard.attempt(PhaseId::InstructionSelection, F);
  EXPECT_EQ(Out, PhaseGuard::Outcome::Active);
  EXPECT_EQ(Guard.applications(PhaseId::InstructionSelection), 2u);
  EXPECT_EQ(Guard.diagnostics().size(), 1u);
}

TEST(PhaseGuard, FaultOnLaterApplicationOnly) {
  Module M = compileOrDie(SumSource);
  Function &F = functionNamed(M, "f");
  PhaseManager PM;
  FaultPlan Plan;
  Plan.add(PhaseId::DeadAssignElim, 2);
  PhaseGuard::Options Opts;
  Opts.Faults = &Plan; // Fault injection alone also arms the guard.
  PhaseGuard Guard(PM, Opts);
  EXPECT_TRUE(Guard.guarding());

  EXPECT_NE(Guard.attempt(PhaseId::DeadAssignElim, F),
            PhaseGuard::Outcome::RolledBack);
  EXPECT_EQ(Guard.attempt(PhaseId::DeadAssignElim, F),
            PhaseGuard::Outcome::RolledBack);
  ASSERT_EQ(Guard.diagnostics().size(), 1u);
  EXPECT_EQ(Guard.diagnostics()[0].Application, 2u);
  EXPECT_TRUE(Guard.takeDiagnostics().size() == 1 &&
              Guard.diagnostics().empty());
}

} // namespace
