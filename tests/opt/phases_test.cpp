//===- phases_test.cpp - Per-phase unit tests ---------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/machine/RegisterAssign.h"
#include "src/opt/Cleanup.h"
#include "src/opt/PhaseManager.h"
#include "src/opt/Phases.h"
#include "src/sim/Interpreter.h"
#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

using namespace pose;
using namespace pose::testhelpers;

namespace {

size_t countOp(const Function &F, Op O) {
  size_t N = 0;
  for (const BasicBlock &B : F.Blocks)
    for (const Rtl &I : B.Insts)
      N += (I.Opcode == O);
  return N;
}

//===--------------------------------------------------------------------===//
// Cleanup (implicit merge/empty elimination)
//===--------------------------------------------------------------------===//

TEST(Cleanup, MergesFallThroughSinglePredPairs) {
  Function F;
  F.addBlock();
  F.addBlock();
  F.Blocks[0].Insts.push_back(rtl::mov(Operand::reg(32), Operand::imm(1)));
  F.Blocks[1].Insts.push_back(rtl::ret(Operand::reg(32)));
  EXPECT_TRUE(cleanupCfg(F));
  EXPECT_EQ(F.Blocks.size(), 1u);
  EXPECT_EQ(F.instructionCount(), 2u);
}

TEST(Cleanup, EmptyBlockEliminated) {
  Function F;
  size_t B0 = F.addBlock(), B1 = F.addBlock(), B2 = F.addBlock();
  (void)B1; // Empty middle block.
  RegNum R = F.makePseudo();
  F.Blocks[B0].Insts.push_back(rtl::cmp(Operand::reg(R), Operand::imm(0)));
  F.Blocks[B0].Insts.push_back(
      rtl::branch(Cond::Eq, F.Blocks[B1].Label)); // Into the empty block.
  F.Blocks[B2].Insts.push_back(rtl::ret(Operand::none()));
  EXPECT_TRUE(cleanupCfg(F));
  expectVerifies(F);
  // Branch retargeted to the block after the empty one, then the pair
  // merged; instructions unchanged.
  EXPECT_EQ(F.instructionCount(), 3u);
}

TEST(Cleanup, DoesNotMergeMultiPredTargets) {
  Module M = compileOrDie(
      "int f(int a) { int r; if (a) r = 1; else r = 2; return r; }");
  Function &F = functionNamed(M, "f");
  size_t Before = F.instructionCount();
  cleanupCfg(F);
  EXPECT_EQ(F.instructionCount(), Before); // Never deletes instructions.
}

//===--------------------------------------------------------------------===//
// b — branch chaining
//===--------------------------------------------------------------------===//

TEST(PhaseB, RetargetsJumpChains) {
  // B0: jump L1 ; B1: jump L2 ; B2: ret     (hand-built chain)
  Function F;
  size_t B0 = F.addBlock(), B1 = F.addBlock(), B2 = F.addBlock();
  F.Blocks[B0].Insts.push_back(rtl::jump(F.Blocks[B1].Label));
  F.Blocks[B1].Insts.push_back(rtl::jump(F.Blocks[B2].Label));
  F.Blocks[B2].Insts.push_back(rtl::ret(Operand::none()));
  BranchChainingPhase P;
  EXPECT_TRUE(P.apply(F));
  // B0 now jumps straight to B2 and B1 became unreachable and was removed
  // by branch chaining itself (paper, Section 5.1).
  ASSERT_EQ(F.Blocks.size(), 2u);
  EXPECT_EQ(F.Blocks[0].Insts[0].Src[0].Value, F.Blocks[1].Label);
  EXPECT_FALSE(P.apply(F)); // Dormant on a second attempt.
}

TEST(PhaseB, DormantWithoutChains) {
  Module M = compileOrDie("int f(int a){ if (a) return 1; return 2; }");
  Function &F = functionNamed(M, "f");
  BranchChainingPhase P;
  EXPECT_FALSE(P.apply(F));
}

//===--------------------------------------------------------------------===//
// d — unreachable code
//===--------------------------------------------------------------------===//

TEST(PhaseD, RemovesCodeAfterInfiniteLoopExit) {
  Function F;
  size_t B0 = F.addBlock(), B1 = F.addBlock(), B2 = F.addBlock();
  F.Blocks[B0].Insts.push_back(rtl::jump(F.Blocks[B2].Label));
  F.Blocks[B1].Insts.push_back(
      rtl::mov(Operand::reg(F.makePseudo()), Operand::imm(1)));
  F.Blocks[B1].Insts.push_back(rtl::jump(F.Blocks[B2].Label));
  F.Blocks[B2].Insts.push_back(rtl::ret(Operand::none()));
  UnreachableCodePhase P;
  EXPECT_TRUE(P.apply(F));
  EXPECT_EQ(F.Blocks.size(), 2u);
  expectVerifies(F);
  EXPECT_FALSE(P.apply(F));
}

//===--------------------------------------------------------------------===//
// u — useless jumps
//===--------------------------------------------------------------------===//

TEST(PhaseU, RemovesJumpToNextBlock) {
  Function F;
  size_t B0 = F.addBlock(), B1 = F.addBlock();
  F.Blocks[B0].Insts.push_back(rtl::jump(F.Blocks[B1].Label));
  F.Blocks[B1].Insts.push_back(rtl::ret(Operand::none()));
  UselessJumpsPhase P;
  EXPECT_TRUE(P.apply(F));
  EXPECT_EQ(countOp(F, Op::Jump), 0u);
  expectVerifies(F);
}

TEST(PhaseU, RemovesBranchToNextBlockLeavingDeadCmp) {
  Function F;
  size_t B0 = F.addBlock(), B1 = F.addBlock();
  RegNum R = F.makePseudo();
  F.Blocks[B0].Insts.push_back(rtl::cmp(Operand::reg(R), Operand::imm(0)));
  F.Blocks[B0].Insts.push_back(rtl::branch(Cond::Eq, F.Blocks[B1].Label));
  F.Blocks[B1].Insts.push_back(rtl::ret(Operand::none()));
  UselessJumpsPhase P;
  EXPECT_TRUE(P.apply(F));
  EXPECT_EQ(countOp(F, Op::Branch), 0u);
  EXPECT_EQ(countOp(F, Op::Cmp), 1u); // Left for dead assignment elim (h).
  DeadAssignElimPhase H;
  EXPECT_TRUE(H.apply(F)); // The classic u-enables-h interaction.
  EXPECT_EQ(countOp(F, Op::Cmp), 0u);
}

//===--------------------------------------------------------------------===//
// r — reverse branches
//===--------------------------------------------------------------------===//

TEST(PhaseR, ReversesBranchOverJump) {
  Function F;
  size_t B0 = F.addBlock(), B1 = F.addBlock(), B2 = F.addBlock(),
         B3 = F.addBlock();
  RegNum R = F.makePseudo();
  F.Blocks[B0].Insts.push_back(rtl::cmp(Operand::reg(R), Operand::imm(0)));
  F.Blocks[B0].Insts.push_back(rtl::branch(Cond::Lt, F.Blocks[B2].Label));
  F.Blocks[B1].Insts.push_back(rtl::jump(F.Blocks[B3].Label));
  F.Blocks[B2].Insts.push_back(
      rtl::mov(Operand::reg(R), Operand::imm(5)));
  F.Blocks[B3].Insts.push_back(rtl::ret(Operand::reg(R)));
  ReverseBranchesPhase P;
  EXPECT_TRUE(P.apply(F));
  cleanupCfg(F);
  expectVerifies(F);
  EXPECT_EQ(countOp(F, Op::Jump), 0u);
  const Rtl &Br = F.Blocks[0].Insts[1];
  EXPECT_EQ(Br.CC, Cond::Ge); // Inverted.
  EXPECT_FALSE(P.apply(F));
}

//===--------------------------------------------------------------------===//
// i — block reordering
//===--------------------------------------------------------------------===//

TEST(PhaseI, MovesSinglePredTargetAfterJump) {
  // B0: jump L2 ; B1: ret 1 (reached by branch elsewhere? no — make B1
  // reachable via B2's branch) — construct:
  //   B0: cmp; branch -> B3 ; B1: jump L3'(B3?)…
  // Simpler shape: B0 ends jump to B2 which has single pred; B1 in between
  // is reachable from B2.
  Function F;
  size_t B0 = F.addBlock(), B1 = F.addBlock(), B2 = F.addBlock();
  RegNum R = F.makePseudo();
  F.Blocks[B0].Insts.push_back(rtl::mov(Operand::reg(R), Operand::imm(1)));
  F.Blocks[B0].Insts.push_back(rtl::jump(F.Blocks[B2].Label));
  F.Blocks[B1].Insts.push_back(rtl::ret(Operand::reg(R)));
  F.Blocks[B2].Insts.push_back(
      rtl::binary(Op::Add, Operand::reg(R), Operand::reg(R),
                  Operand::imm(1)));
  F.Blocks[B2].Insts.push_back(rtl::jump(F.Blocks[B1].Label));
  BlockReorderingPhase P;
  EXPECT_TRUE(P.apply(F));
  cleanupCfg(F);
  expectVerifies(F);
  // The jump from B0 disappeared: B2 moved up behind B0.
  EXPECT_LE(countOp(F, Op::Jump), 1u);
  // Behaviour check through the interpreter.
  Module M;
  Global G;
  G.Name = "f";
  G.Kind = GlobalKind::Func;
  G.FuncIndex = 0;
  G.ReturnsValue = true;
  M.Globals.push_back(G);
  F.Name = "f";
  F.ReturnsValue = true;
  M.Functions.push_back(F);
  Interpreter Sim(M);
  EXPECT_EQ(Sim.run("f", {}).ReturnValue, 2);
}

//===--------------------------------------------------------------------===//
// h — dead assignment elimination
//===--------------------------------------------------------------------===//

TEST(PhaseH, RemovesDeadChains) {
  Function F;
  F.addBlock();
  RegNum A = F.makePseudo(), B = F.makePseudo(), C = F.makePseudo();
  auto &I = F.Blocks[0].Insts;
  I.push_back(rtl::mov(Operand::reg(A), Operand::imm(1)));
  I.push_back(rtl::binary(Op::Add, Operand::reg(B), Operand::reg(A),
                          Operand::imm(2))); // Dead.
  I.push_back(rtl::binary(Op::Mul, Operand::reg(C), Operand::reg(B),
                          Operand::reg(B))); // Dead.
  I.push_back(rtl::ret(Operand::reg(A)));
  DeadAssignElimPhase P;
  EXPECT_TRUE(P.apply(F));
  EXPECT_EQ(F.instructionCount(), 2u); // mov + ret; the chain collapsed.
  EXPECT_FALSE(P.apply(F));
}

TEST(PhaseH, KeepsSideEffects) {
  Module M = compileOrDie("int g; void f() { g = 1; out(2); }");
  Function &F = functionNamed(M, "f");
  DeadAssignElimPhase P;
  P.apply(F);
  EXPECT_EQ(countOp(F, Op::Store), 1u);
  EXPECT_EQ(countOp(F, Op::Call), 1u);
}

//===--------------------------------------------------------------------===//
// s — instruction selection
//===--------------------------------------------------------------------===//

TEST(PhaseS, FoldsImmediateIntoAdd) {
  Function F;
  F.addBlock();
  RegNum A = F.makePseudo(), B = F.makePseudo(), C = F.makePseudo();
  auto &I = F.Blocks[0].Insts;
  I.push_back(rtl::mov(Operand::reg(B), Operand::imm(5)));
  I.push_back(rtl::binary(Op::Add, Operand::reg(C), Operand::reg(A),
                          Operand::reg(B)));
  I.push_back(rtl::ret(Operand::reg(C)));
  InstructionSelectionPhase P;
  EXPECT_TRUE(P.apply(F));
  // mov collapsed into the add as an immediate.
  ASSERT_EQ(F.instructionCount(), 2u);
  EXPECT_EQ(F.Blocks[0].Insts[0].Opcode, Op::Add);
  EXPECT_TRUE(F.Blocks[0].Insts[0].Src[1].isImm());
}

TEST(PhaseS, RespectsImmediateLegality) {
  Function F;
  F.addBlock();
  RegNum A = F.makePseudo(), B = F.makePseudo(), C = F.makePseudo();
  auto &I = F.Blocks[0].Insts;
  // Multiply has no immediate form; the pair must NOT combine.
  I.push_back(rtl::mov(Operand::reg(B), Operand::imm(5)));
  I.push_back(rtl::binary(Op::Mul, Operand::reg(C), Operand::reg(A),
                          Operand::reg(B)));
  I.push_back(rtl::ret(Operand::reg(C)));
  InstructionSelectionPhase P;
  EXPECT_FALSE(P.apply(F));
  EXPECT_EQ(F.instructionCount(), 3u);
}

TEST(PhaseS, PaperFigure3InstructionSelection) {
  // Figure 3: r[2]=1; r[3]=r[4]+r[2]  --s-->  r[3]=r[4]+1
  Function F;
  F.addBlock();
  auto &I = F.Blocks[0].Insts;
  I.push_back(rtl::mov(Operand::reg(2), Operand::imm(1)));
  I.push_back(rtl::binary(Op::Add, Operand::reg(3), Operand::reg(4),
                          Operand::reg(2)));
  I.push_back(rtl::ret(Operand::reg(3)));
  InstructionSelectionPhase P;
  EXPECT_TRUE(P.apply(F));
  EXPECT_EQ(printRtl(F.Blocks[0].Insts[0]), "r[3]=r[4]+1;");
}

TEST(PhaseS, FoldsLeaIntoLoad) {
  Module M = compileOrDie("int f(int a) { return a; }");
  Function &F = functionNamed(M, "f");
  // Naive code is lea t,S0 ; load t2,[t] ; ret t2.
  EXPECT_EQ(countOp(F, Op::Lea), 1u);
  InstructionSelectionPhase P;
  EXPECT_TRUE(P.apply(F));
  EXPECT_EQ(countOp(F, Op::Lea), 0u);
  // Load now references the slot directly.
  bool SlotLoad = false;
  for (const Rtl &I : F.Blocks[0].Insts)
    SlotLoad |= (I.Opcode == Op::Load && I.Src[0].isSlot());
  EXPECT_TRUE(SlotLoad);
}

TEST(PhaseS, ConstantFoldsThroughPairs) {
  Function F;
  F.addBlock();
  RegNum A = F.makePseudo(), B = F.makePseudo(), C = F.makePseudo();
  auto &I = F.Blocks[0].Insts;
  I.push_back(rtl::mov(Operand::reg(A), Operand::imm(6)));
  I.push_back(rtl::mov(Operand::reg(B), Operand::imm(7)));
  I.push_back(rtl::binary(Op::Add, Operand::reg(C), Operand::reg(A),
                          Operand::reg(B)));
  I.push_back(rtl::ret(Operand::reg(C)));
  InstructionSelectionPhase P;
  EXPECT_TRUE(P.apply(F));
  // Everything collapses: 6+7 folds to 13, which then feeds the return
  // (the target allows constant return values).
  ASSERT_EQ(F.instructionCount(), 1u);
  EXPECT_EQ(printRtl(F.Blocks[0].Insts[0]), "ret 13;");
}

TEST(PhaseS, CollapsesComputationIntoMove) {
  Function F;
  F.addBlock();
  RegNum A = F.makePseudo(), B = F.makePseudo();
  auto &I = F.Blocks[0].Insts;
  I.push_back(rtl::binary(Op::Add, Operand::reg(A), Operand::reg(40),
                          Operand::reg(41)));
  I.push_back(rtl::mov(Operand::reg(B), Operand::reg(A)));
  I.push_back(rtl::ret(Operand::reg(B)));
  F.recomputeCounters();
  InstructionSelectionPhase P;
  EXPECT_TRUE(P.apply(F));
  ASSERT_EQ(F.instructionCount(), 2u);
  EXPECT_EQ(F.Blocks[0].Insts[0].Opcode, Op::Add);
  EXPECT_EQ(F.Blocks[0].Insts[0].Dst.getReg(), B);
}

TEST(PhaseS, DoesNotCombineAcrossInterveningUse) {
  Function F;
  F.addBlock();
  RegNum A = F.makePseudo(), B = F.makePseudo(), C = F.makePseudo();
  auto &I = F.Blocks[0].Insts;
  I.push_back(rtl::mov(Operand::reg(A), Operand::imm(5)));
  I.push_back(rtl::binary(Op::Add, Operand::reg(B), Operand::reg(A),
                          Operand::reg(A))); // A used here…
  I.push_back(rtl::binary(Op::Add, Operand::reg(C), Operand::reg(B),
                          Operand::reg(A))); // …and here.
  I.push_back(rtl::ret(Operand::reg(C)));
  InstructionSelectionPhase P;
  // The first add can fold 5+5 only if it is A's sole consumer — it is
  // not. But the *second* add's use of A cannot fold either because the
  // mov feeds two consumers. The phase must leave A's mov alone.
  P.apply(F);
  EXPECT_EQ(F.Blocks[0].Insts[0].Opcode, Op::Mov);
}

//===--------------------------------------------------------------------===//
// q — strength reduction
//===--------------------------------------------------------------------===//

TEST(PhaseQ, MultiplyByPowerOfTwoBecomesShift) {
  Function F;
  F.addBlock();
  RegNum A = F.makePseudo(), B = F.makePseudo(), C = F.makePseudo();
  auto &I = F.Blocks[0].Insts;
  I.push_back(rtl::mov(Operand::reg(B), Operand::imm(8)));
  I.push_back(rtl::binary(Op::Mul, Operand::reg(C), Operand::reg(A),
                          Operand::reg(B)));
  I.push_back(rtl::ret(Operand::reg(C)));
  StrengthReductionPhase P;
  EXPECT_TRUE(P.apply(F));
  EXPECT_EQ(countOp(F, Op::Mul), 0u);
  EXPECT_EQ(countOp(F, Op::Shl), 1u);
  // The constant's mov remains (dead for h to collect).
  EXPECT_EQ(F.Blocks[0].Insts[0].Opcode, Op::Mov);
}

TEST(PhaseQ, MultiplyBy2kPlus1) {
  Function F;
  F.addBlock();
  RegNum A = F.makePseudo(), B = F.makePseudo(), C = F.makePseudo();
  auto &I = F.Blocks[0].Insts;
  I.push_back(rtl::mov(Operand::reg(B), Operand::imm(9)));
  I.push_back(rtl::binary(Op::Mul, Operand::reg(C), Operand::reg(A),
                          Operand::reg(B)));
  I.push_back(rtl::ret(Operand::reg(C)));
  StrengthReductionPhase P;
  EXPECT_TRUE(P.apply(F));
  EXPECT_EQ(countOp(F, Op::Mul), 0u);
  EXPECT_EQ(countOp(F, Op::Shl), 1u);
  EXPECT_EQ(countOp(F, Op::Add), 1u);
}

TEST(PhaseQ, NoCheapSequenceStaysDormant) {
  Function F;
  F.addBlock();
  RegNum A = F.makePseudo(), B = F.makePseudo(), C = F.makePseudo();
  auto &I = F.Blocks[0].Insts;
  I.push_back(rtl::mov(Operand::reg(B), Operand::imm(100)));
  I.push_back(rtl::binary(Op::Mul, Operand::reg(C), Operand::reg(A),
                          Operand::reg(B)));
  I.push_back(rtl::ret(Operand::reg(C)));
  StrengthReductionPhase P;
  EXPECT_FALSE(P.apply(F)); // 100 has no 2-op expansion.
}

TEST(PhaseQ, SemanticsPreserved) {
  const char *Src = "int f(int a) { return a * 16 + a * 9 + a * 7 - "
                    "a * 3 + a * -4; }";
  Module M = compileOrDie(Src);
  Interpreter Sim(M);
  int32_t Before = Sim.run("f", {37}).ReturnValue;
  Function &F = functionNamed(M, "f");
  StrengthReductionPhase P;
  EXPECT_TRUE(P.apply(F));
  expectVerifies(F);
  EXPECT_EQ(Sim.run("f", {37}).ReturnValue, Before);
  EXPECT_EQ(countOp(F, Op::Mul), 0u);
}

//===--------------------------------------------------------------------===//
// o — evaluation order determination
//===--------------------------------------------------------------------===//

TEST(PhaseO, ReducesSimultaneouslyLiveTemporaries) {
  // Two independent chains interleaved badly: t1=..; t2=..; use t1; use t2
  Function F;
  F.addBlock();
  RegNum A = F.makePseudo(), B = F.makePseudo(), C = F.makePseudo(),
         D = F.makePseudo();
  auto &I = F.Blocks[0].Insts;
  I.push_back(rtl::mov(Operand::reg(A), Operand::imm(1)));
  I.push_back(rtl::mov(Operand::reg(B), Operand::imm(2)));
  I.push_back(rtl::unary(Op::Neg, Operand::reg(C), Operand::reg(A)));
  I.push_back(rtl::unary(Op::Neg, Operand::reg(D), Operand::reg(B)));
  I.push_back(rtl::binary(Op::Add, Operand::reg(C), Operand::reg(C),
                          Operand::reg(D)));
  I.push_back(rtl::ret(Operand::reg(C)));
  EvalOrderPhase P;
  bool Active = P.apply(F);
  expectVerifies(F);
  // Whether or not the greedy order differs, semantics must hold.
  Module M;
  Global G;
  G.Name = "f";
  G.Kind = GlobalKind::Func;
  G.FuncIndex = 0;
  G.ReturnsValue = true;
  M.Globals.push_back(G);
  F.Name = "f";
  F.ReturnsValue = true;
  M.Functions.push_back(F);
  Interpreter Sim(M);
  EXPECT_EQ(Sim.run("f", {}).ReturnValue, -3);
  (void)Active;
}

TEST(PhaseO, PreservesMemoryOrder) {
  Module M = compileOrDie("int g; int f() { g = 1; g = 2; return g; }");
  Function &F = functionNamed(M, "f");
  EvalOrderPhase P;
  P.apply(F);
  expectVerifies(F);
  Interpreter Sim(M);
  EXPECT_EQ(Sim.run("f", {}).ReturnValue, 2);
}

//===--------------------------------------------------------------------===//
// n — code abstraction
//===--------------------------------------------------------------------===//

TEST(PhaseN, CrossJumpsCommonSuffixes) {
  // if/else with identical tails: x = a+1 on both arms before the join.
  Function F;
  size_t B0 = F.addBlock(), B1 = F.addBlock(), B2 = F.addBlock(),
         B3 = F.addBlock();
  RegNum A = F.makePseudo(), X = F.makePseudo();
  F.Blocks[B0].Insts.push_back(rtl::cmp(Operand::reg(A), Operand::imm(0)));
  F.Blocks[B0].Insts.push_back(rtl::branch(Cond::Eq, F.Blocks[B2].Label));
  // Arm 1.
  F.Blocks[B1].Insts.push_back(
      rtl::mov(Operand::reg(A), Operand::imm(1)));
  F.Blocks[B1].Insts.push_back(rtl::binary(Op::Add, Operand::reg(X),
                                           Operand::reg(A),
                                           Operand::imm(1)));
  F.Blocks[B1].Insts.push_back(rtl::jump(F.Blocks[B3].Label));
  // Arm 2: different head, identical tail.
  F.Blocks[B2].Insts.push_back(
      rtl::mov(Operand::reg(A), Operand::imm(2)));
  F.Blocks[B2].Insts.push_back(rtl::binary(Op::Add, Operand::reg(X),
                                           Operand::reg(A),
                                           Operand::imm(1)));
  F.Blocks[B2].Insts.push_back(rtl::jump(F.Blocks[B3].Label));
  F.Blocks[B3].Insts.push_back(rtl::ret(Operand::reg(X)));
  size_t Before = F.instructionCount();
  CodeAbstractionPhase P;
  EXPECT_TRUE(P.apply(F));
  cleanupCfg(F);
  expectVerifies(F);
  EXPECT_LT(F.instructionCount(), Before);
}

TEST(PhaseN, HoistsIdenticalLeadingInstructions) {
  Function F;
  size_t B0 = F.addBlock(), B1 = F.addBlock(), B2 = F.addBlock(),
         B3 = F.addBlock();
  RegNum A = F.makePseudo(), X = F.makePseudo();
  F.Blocks[B0].Insts.push_back(rtl::cmp(Operand::reg(A), Operand::imm(0)));
  F.Blocks[B0].Insts.push_back(rtl::branch(Cond::Eq, F.Blocks[B2].Label));
  F.Blocks[B1].Insts.push_back(
      rtl::mov(Operand::reg(X), Operand::imm(7))); // Identical heads.
  F.Blocks[B1].Insts.push_back(rtl::binary(Op::Add, Operand::reg(X),
                                           Operand::reg(X),
                                           Operand::imm(1)));
  F.Blocks[B1].Insts.push_back(rtl::jump(F.Blocks[B3].Label));
  F.Blocks[B2].Insts.push_back(
      rtl::mov(Operand::reg(X), Operand::imm(7)));
  F.Blocks[B2].Insts.push_back(rtl::binary(Op::Sub, Operand::reg(X),
                                           Operand::reg(X),
                                           Operand::imm(1)));
  F.Blocks[B3].Insts.push_back(rtl::ret(Operand::reg(X)));
  CodeAbstractionPhase P;
  EXPECT_TRUE(P.apply(F));
  expectVerifies(F);
  // The mov moved above the compare-and-branch in B0.
  ASSERT_EQ(F.Blocks[0].Insts.size(), 3u);
  EXPECT_EQ(F.Blocks[0].Insts[0].Opcode, Op::Mov);
}

//===--------------------------------------------------------------------===//
// j — minimize loop jumps
//===--------------------------------------------------------------------===//

TEST(PhaseJ, InvertsWhileLoop) {
  Module M = compileOrDie(
      "int f(int n){int s=0;int i=0;while(i<n){s=s+i;i=i+1;}return s;}");
  Function &F = functionNamed(M, "f");
  Interpreter Sim(M);
  int32_t Before = Sim.run("f", {10}).ReturnValue;
  uint64_t CountBefore = Sim.run("f", {10}).DynamicInsts;

  MinimizeLoopJumpsPhase P;
  EXPECT_TRUE(P.apply(F));
  cleanupCfg(F);
  expectVerifies(F);
  EXPECT_EQ(Sim.run("f", {10}).ReturnValue, Before);
  // The back-edge jump is gone: fewer dynamic instructions.
  EXPECT_LT(Sim.run("f", {10}).DynamicInsts, CountBefore);
  EXPECT_EQ(Sim.run("f", {0}).ReturnValue, 0); // Zero-trip still right.
}

//===--------------------------------------------------------------------===//
// PhaseManager legality rules
//===--------------------------------------------------------------------===//

TEST(PhaseManager, LegalityRules) {
  Module M = compileOrDie(
      "int f(int n){int s=0;int i=0;while(i<n){s=s+i;i=i+1;}return s;}");
  Function &F = functionNamed(M, "f");
  PhaseManager PM;
  EXPECT_TRUE(PM.isLegal(PhaseId::EvalOrder, F));
  EXPECT_FALSE(PM.isLegal(PhaseId::LoopUnrolling, F));
  EXPECT_FALSE(PM.isLegal(PhaseId::LoopTransforms, F));

  // Attempting CSE implicitly performs register assignment…
  PM.attempt(PhaseId::Cse, F);
  EXPECT_TRUE(F.State.RegsAssigned);
  // …which permanently outlaws evaluation order determination: the
  // paper's "c and k always disable o".
  EXPECT_FALSE(PM.isLegal(PhaseId::EvalOrder, F));

  // k is dormant before s has folded slot addresses into loads/stores.
  EXPECT_FALSE(PM.attempt(PhaseId::RegisterAllocation, F));
  EXPECT_TRUE(PM.attempt(PhaseId::InstructionSelection, F));
  EXPECT_TRUE(PM.attempt(PhaseId::RegisterAllocation, F));
  EXPECT_TRUE(F.State.RegAllocDone);
  EXPECT_TRUE(PM.isLegal(PhaseId::LoopUnrolling, F));
  EXPECT_TRUE(PM.isLegal(PhaseId::LoopTransforms, F));
}

TEST(PhaseManager, ApplySequenceReportsActives) {
  // "a" is referenced twice, so register allocation has a live range
  // worth promoting (single-reference slots are left in memory).
  Module M = compileOrDie("int f(int a, int b) { return a + b * a; }");
  Function &F = functionNamed(M, "f");
  PhaseManager PM;
  std::string Active = PM.applySequence(F, "sbk");
  // s always has work on naive code; b has no chains in straight-line
  // code; k promotes the doubly-used parameter.
  EXPECT_EQ(Active, "sk");
  expectVerifies(F);
}

//===--------------------------------------------------------------------===//
// k — register allocation
//===--------------------------------------------------------------------===//

TEST(PhaseK, PromotesScalarsAfterS) {
  Module M = compileOrDie(
      "int f(int n){int s=0;int i=0;while(i<n){s=s+i;i=i+1;}return s;}");
  Function &F = functionNamed(M, "f");
  Interpreter Sim(M);
  int32_t Expect = Sim.run("f", {12}).ReturnValue;

  PhaseManager PM;
  ASSERT_TRUE(PM.attempt(PhaseId::InstructionSelection, F));
  size_t LoadsBefore = countOp(F, Op::Load);
  ASSERT_TRUE(PM.attempt(PhaseId::RegisterAllocation, F));
  expectVerifies(F);
  EXPECT_LT(countOp(F, Op::Load), LoadsBefore);
  EXPECT_EQ(Sim.run("f", {12}).ReturnValue, Expect);

  // k enables s: the moves it introduced collapse.
  EXPECT_TRUE(PM.attempt(PhaseId::InstructionSelection, F));
  EXPECT_EQ(Sim.run("f", {12}).ReturnValue, Expect);
}

TEST(PhaseK, LeavesArraysInMemory) {
  Module M = compileOrDie(
      "int f(){int a[4];int i=0;while(i<4){a[i]=i;i=i+1;}return a[2];}");
  Function &F = functionNamed(M, "f");
  PhaseManager PM;
  PM.attempt(PhaseId::InstructionSelection, F);
  PM.attempt(PhaseId::RegisterAllocation, F);
  Interpreter Sim(M);
  EXPECT_EQ(Sim.run("f", {}).ReturnValue, 2);
  // The array accesses still go through memory.
  EXPECT_GT(countOp(F, Op::Store), 0u);
}

//===--------------------------------------------------------------------===//
// g / l — loop phases (full pipeline shapes)
//===--------------------------------------------------------------------===//

TEST(PhaseG, UnrollsRotatedLoop) {
  Module M = compileOrDie(
      "int f(int n){int s=0;int i=0;while(i<n){s=s+i;i=i+1;}return s;}");
  Function &F = functionNamed(M, "f");
  Interpreter Sim(M);
  int32_t Expect9 = Sim.run("f", {9}).ReturnValue;
  int32_t Expect10 = Sim.run("f", {10}).ReturnValue;

  PhaseManager PM;
  PM.applySequence(F, "sckshj"); // Shrink + rotate the loop.
  PM.applySequence(F, "usch");   // Tidy.
  uint64_t Dyn = Sim.run("f", {50}).DynamicInsts;
  bool Unrolled = PM.attempt(PhaseId::LoopUnrolling, F);
  expectVerifies(F);
  EXPECT_EQ(Sim.run("f", {9}).ReturnValue, Expect9);
  EXPECT_EQ(Sim.run("f", {10}).ReturnValue, Expect10);
  if (Unrolled) {
    // Dynamic instruction counts do not model taken-branch penalties, so
    // factor-2 unrolling with the test kept between copies is
    // count-neutral ("potentially reduce", Table 1); it must never hurt.
    EXPECT_LE(Sim.run("f", {50}).DynamicInsts, Dyn);
    EXPECT_GT(F.instructionCount(), 0u);
  }
}

TEST(PhaseL, HoistsInvariantAndPreservesSemantics) {
  Module M = compileOrDie(
      "int f(int n, int a, int b){int s=0;int i=0;"
      "while(i<n){s=s+(a*8)+(b*8)+i;i=i+1;}return s;}");
  Function &F = functionNamed(M, "f");
  Interpreter Sim(M);
  int32_t Expect = Sim.run("f", {7, 3, 4}).ReturnValue;

  PhaseManager PM;
  PM.applySequence(F, "scksh");
  uint64_t Dyn = Sim.run("f", {40, 3, 4}).DynamicInsts;
  bool Active = PM.attempt(PhaseId::LoopTransforms, F);
  expectVerifies(F);
  EXPECT_EQ(Sim.run("f", {7, 3, 4}).ReturnValue, Expect);
  EXPECT_EQ(Sim.run("f", {0, 3, 4}).ReturnValue, 0);
  if (Active) {
    EXPECT_LE(Sim.run("f", {40, 3, 4}).DynamicInsts, Dyn);
  }
}

} // namespace
