//===- phase_edge_test.cpp - Phase edge cases and framework properties ---------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/analysis/Liveness.h"
#include "src/core/Canonical.h"
#include "src/opt/PhaseManager.h"
#include "src/opt/Phases.h"
#include "src/sim/Interpreter.h"
#include "src/workloads/Workloads.h"
#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

using namespace pose;
using namespace pose::testhelpers;

namespace {

size_t countOp(const Function &F, Op O) {
  size_t N = 0;
  for (const BasicBlock &B : F.Blocks)
    for (const Rtl &I : B.Insts)
      N += (I.Opcode == O);
  return N;
}

//===--------------------------------------------------------------------===//
// The pruning invariant: no phase is active twice consecutively
//===--------------------------------------------------------------------===//

// The exhaustive enumerator records an incoming phase as known-dormant
// without attempting it; that is only sound if an active attempt always
// reaches a fixed point of itself. Sweep the whole workload suite through
// every phase at several pipeline stages to validate it.
TEST(FrameworkInvariant, ActivePhaseIsImmediatelyIdempotent) {
  PhaseManager PM;
  const char *Stages[] = {"", "s", "sck", "sckshjl"};
  for (const Workload &W : allWorkloads()) {
    for (const char *Stage : Stages) {
      Module M = compileOrDie(W.Source);
      for (Function &F : M.Functions) {
        PM.applySequence(F, Stage);
        for (int P = 0; P != NumPhases; ++P) {
          PhaseId Id = phaseByIndex(P);
          Function Copy = F;
          if (!PM.isLegal(Id, Copy))
            continue;
          if (!PM.attempt(Id, Copy))
            continue;
          // Re-attempting immediately must be dormant…
          Function Again = Copy;
          EXPECT_FALSE(PM.attempt(Id, Again))
              << W.Name << "/" << F.Name << " stage '" << Stage
              << "' phase " << phaseCode(Id);
          // …and in particular must not change the instance.
          EXPECT_EQ(canonicalize(Again).Hash, canonicalize(Copy).Hash);
        }
      }
    }
  }
}

// A second framework property the interaction analysis relies on: the
// active/dormant status of a phase is a function of the instance, so two
// different routes to the same canonical instance must agree on it.
TEST(FrameworkInvariant, StatusIsAFunctionOfTheInstance) {
  Module M1 = compileOrDie(
      "int f(int a,int b){ return (a + b) * 2 + (a + b); }");
  Module M2 = compileOrDie(
      "int f(int a,int b){ return (a + b) * 2 + (a + b); }");
  PhaseManager PM;
  Function &F1 = functionNamed(M1, "f");
  Function &F2 = functionNamed(M2, "f");
  // Two different orders that are known to commute here.
  PM.applySequence(F1, "sc");
  PM.applySequence(F2, "cs");
  if (canonicalize(F1).Hash == canonicalize(F2).Hash) {
    for (int P = 0; P != NumPhases; ++P) {
      PhaseId Id = phaseByIndex(P);
      if (!PM.isLegal(Id, F1) || !PM.isLegal(Id, F2))
        continue;
      Function A = F1, B = F2;
      EXPECT_EQ(PM.attempt(Id, A), PM.attempt(Id, B)) << phaseCode(Id);
    }
  }
}

//===--------------------------------------------------------------------===//
// l — induction variable strength reduction specifics
//===--------------------------------------------------------------------===//

TEST(PhaseLEdge, StrengthReducesRowMajorIndexing) {
  // d[i*stride] with invariant stride: the classic i*c recurrence.
  const char *Src =
      "int m[64];\n"
      "int f(int stride, int n) {\n"
      "  int s = 0; int i = 0;\n"
      "  while (i < n) { s = s + m[i * stride]; i = i + 1; }\n"
      "  return s;\n"
      "}\n"
      "int main() { int k; for (k=0;k<64;k=k+1) m[k]=k*3; "
      "return f(8, 8) + f(3, 5); }\n";
  Module M = compileOrDie(Src);
  Interpreter Sim(M);
  int32_t Expect = Sim.run("main", {}).ReturnValue;

  Function &F = functionNamed(M, "f");
  PhaseManager PM;
  PM.applySequence(F, "scksh");
  size_t MulsBefore = countOp(F, Op::Mul);
  bool Active = PM.attempt(PhaseId::LoopTransforms, F);
  expectVerifies(F);
  EXPECT_EQ(Sim.run("main", {}).ReturnValue, Expect);
  if (Active) {
    // If the IV rewrite fired, the loop multiply is gone.
    EXPECT_LE(countOp(F, Op::Mul), MulsBefore);
  }
}

TEST(PhaseLEdge, NoFreeRegisterMeansDormant) {
  // Saturate the register file so no accumulator exists: l must refuse
  // the IV transformation rather than corrupt a live register.
  std::string Src = "int m[64];\nint f(int q, int n) {\n  int s = 0;\n";
  for (int I = 0; I < 10; ++I)
    Src += "  int c" + std::to_string(I) + " = q * " +
           std::to_string(I + 3) + ";\n";
  Src += "  int i = 0;\n  while (i < n) { s = s + m[(i * q) & 63]";
  for (int I = 0; I < 10; ++I)
    Src += " + c" + std::to_string(I);
  Src += "; i = i + 1; }\n  return s;\n}\n"
         "int main() { return f(5, 7); }\n";
  Module M = compileOrDie(Src);
  Interpreter Sim(M);
  int32_t Expect = Sim.run("main", {}).ReturnValue;
  Function &F = functionNamed(M, "f");
  PhaseManager PM;
  PM.applySequence(F, "scksh");
  PM.attempt(PhaseId::LoopTransforms, F); // Active or not: must be safe.
  expectVerifies(F);
  EXPECT_EQ(Sim.run("main", {}).ReturnValue, Expect);
}

//===--------------------------------------------------------------------===//
// g — unrolling trip-count edges
//===--------------------------------------------------------------------===//

TEST(PhaseGEdge, OddEvenZeroTripCounts) {
  Module M = compileOrDie(
      "int f(int n){int s=0;int i=0;while(i<n){s=s+i*2+1;i=i+1;}return s;}");
  Function &F = functionNamed(M, "f");
  Interpreter Sim(M);
  std::vector<int32_t> Expect;
  for (int N : {0, 1, 2, 5, 8})
    Expect.push_back(Sim.run("f", {N}).ReturnValue);

  PhaseManager PM;
  PM.applySequence(F, "sckshj");
  bool Unrolled = PM.attempt(PhaseId::LoopUnrolling, F);
  expectVerifies(F);
  size_t K = 0;
  for (int N : {0, 1, 2, 5, 8})
    EXPECT_EQ(Sim.run("f", {N}).ReturnValue, Expect[K++]) << "n=" << N;
  if (Unrolled) {
    // A second unroll attempt is dormant (the loop is two blocks now).
    EXPECT_FALSE(PM.attempt(PhaseId::LoopUnrolling, F));
  }
}

//===--------------------------------------------------------------------===//
// j — loops with multiple latches (continue statements)
//===--------------------------------------------------------------------===//

TEST(PhaseJEdge, LoopWithContinue) {
  Module M = compileOrDie(
      "int f(int n){int s=0;int i=0;"
      "while(i<n){i=i+1;if(i%3==0)continue;s=s+i;}return s;}");
  Function &F = functionNamed(M, "f");
  Interpreter Sim(M);
  int32_t Expect = Sim.run("f", {10}).ReturnValue;
  PhaseManager PM;
  PM.applySequence(F, "scksh");
  PM.attempt(PhaseId::MinimizeLoopJumps, F);
  expectVerifies(F);
  EXPECT_EQ(Sim.run("f", {10}).ReturnValue, Expect);
  EXPECT_EQ(Sim.run("f", {0}).ReturnValue, 0);
}

//===--------------------------------------------------------------------===//
// n — hoisting safety
//===--------------------------------------------------------------------===//

TEST(PhaseNEdge, DoesNotHoistInstructionFeedingTheCompare) {
  // Both arms start with "r = x + 1" but r is *used by the compare*:
  // hoisting above the cmp would change the tested value.
  Function F;
  size_t B0 = F.addBlock(), B1 = F.addBlock(), B2 = F.addBlock(),
         B3 = F.addBlock();
  RegNum X = 32, R = 33;
  F.Blocks[B0].Insts.push_back(rtl::cmp(Operand::reg(R), Operand::imm(0)));
  F.Blocks[B0].Insts.push_back(rtl::branch(Cond::Eq, F.Blocks[B2].Label));
  F.Blocks[B1].Insts.push_back(rtl::binary(Op::Add, Operand::reg(R),
                                           Operand::reg(X),
                                           Operand::imm(1)));
  F.Blocks[B1].Insts.push_back(rtl::jump(F.Blocks[B3].Label));
  F.Blocks[B2].Insts.push_back(rtl::binary(Op::Add, Operand::reg(R),
                                           Operand::reg(X),
                                           Operand::imm(1)));
  F.Blocks[B3].Insts.push_back(rtl::ret(Operand::reg(R)));
  F.recomputeCounters();
  Function Before = F;
  CodeAbstractionPhase N;
  // Cross-jumping may still fire (suffixes), but hoisting the add above
  // the compare must not happen: check semantics either way.
  N.apply(F);
  expectVerifies(F);
  // Execute both versions for both branch outcomes.
  for (int32_t RVal : {0, 7}) {
    auto RunIt = [&](const Function &G) {
      Module M;
      Global Gl;
      Gl.Name = "f";
      Gl.Kind = GlobalKind::Func;
      Gl.FuncIndex = 0;
      Gl.ReturnsValue = true;
      Gl.NumParams = 0;
      M.Globals.push_back(Gl);
      Function Body = G;
      // Materialize inputs: prepend moves setting x and r.
      Body.Blocks[0].Insts.insert(
          Body.Blocks[0].Insts.begin(),
          rtl::mov(Operand::reg(33), Operand::imm(RVal)));
      Body.Blocks[0].Insts.insert(
          Body.Blocks[0].Insts.begin(),
          rtl::mov(Operand::reg(32), Operand::imm(10)));
      M.Functions.push_back(Body);
      Interpreter Sim(M);
      return Sim.run("f", {}).ReturnValue;
    };
    EXPECT_EQ(RunIt(Before), RunIt(F)) << "r=" << RVal;
  }
}

TEST(PhaseNEdge, CrossJumpLongSuffix) {
  // Three-instruction common suffix collapses once, shrinking code.
  Module M = compileOrDie(
      "int g;\n"
      "int f(int a) {\n"
      "  if (a > 0) { g = a * 3; g = g + 7; g = g ^ 5; }\n"
      "  else { g = a * 9; g = g + 7; g = g ^ 5; }\n"
      "  return g;\n"
      "}\n");
  Function &F = functionNamed(M, "f");
  PhaseManager PM;
  PM.applySequence(F, "scksh"); // Shrink first so suffixes align.
  Interpreter Sim(M);
  int32_t E1 = Sim.run("f", {4}).ReturnValue;
  int32_t E2 = Sim.run("f", {-4}).ReturnValue;
  size_t Before = F.instructionCount();
  bool Active = PM.attempt(PhaseId::CodeAbstraction, F);
  expectVerifies(F);
  EXPECT_EQ(Sim.run("f", {4}).ReturnValue, E1);
  EXPECT_EQ(Sim.run("f", {-4}).ReturnValue, E2);
  if (Active) {
    EXPECT_LT(F.instructionCount(), Before);
  }
}

//===--------------------------------------------------------------------===//
// h — stores and calls are never dead
//===--------------------------------------------------------------------===//

TEST(PhaseHEdge, NeverRemovesStoresOrCalls) {
  Module M = compileOrDie(
      "int g;\n"
      "void f() { g = 1; out(g); g = 2; }\n");
  Function &F = functionNamed(M, "f");
  PhaseManager PM;
  for (int I = 0; I != 3; ++I)
    PM.applySequence(F, "schu");
  EXPECT_EQ(countOp(F, Op::Store), 2u);
  EXPECT_EQ(countOp(F, Op::Call), 1u);
}

//===--------------------------------------------------------------------===//
// o — measurably reduces simultaneously live pseudos
//===--------------------------------------------------------------------===//

/// Maximum number of simultaneously live pseudo registers at any point.
size_t maxPressure(const Function &F) {
  Cfg C = Cfg::build(F);
  Liveness LV(F, C);
  size_t Max = 0;
  for (size_t B = 0; B != F.Blocks.size(); ++B) {
    std::vector<BitVector> After = LV.liveAfterEach(F, B);
    for (const BitVector &Set : After) {
      size_t Live = 0;
      for (RegNum R = FirstPseudoReg; R < LV.numRegs(); ++R)
        Live += Set.test(R);
      Max = std::max(Max, Live);
    }
  }
  return Max;
}

TEST(PhaseOEdge, NeverIncreasesPressure) {
  for (const Workload &W : allWorkloads()) {
    Module M = compileOrDie(W.Source);
    for (Function &F : M.Functions) {
      size_t Before = maxPressure(F);
      EvalOrderPhase O;
      O.apply(F);
      expectVerifies(F);
      EXPECT_LE(maxPressure(F), Before) << W.Name << "/" << F.Name;
    }
  }
}

//===--------------------------------------------------------------------===//
// s — combining into calls and returns
//===--------------------------------------------------------------------===//

TEST(PhaseSEdge, FoldsImmediateIntoCallArgument) {
  Function F;
  F.addBlock();
  RegNum A = F.makePseudo();
  auto &I = F.Blocks[0].Insts;
  I.push_back(rtl::mov(Operand::reg(A), Operand::imm(42)));
  I.push_back(rtl::call(Operand::none(), 0, {Operand::reg(A)}));
  I.push_back(rtl::ret(Operand::none()));
  InstructionSelectionPhase S;
  EXPECT_TRUE(S.apply(F));
  ASSERT_EQ(F.instructionCount(), 2u);
  EXPECT_TRUE(F.Blocks[0].Insts[0].Args[0].isImm());
}

TEST(PhaseSEdge, RetargetsCallResult) {
  // call dst t; mov x, t  =>  call dst x (the call stays put).
  Function F;
  F.addBlock();
  RegNum T = F.makePseudo(), X = F.makePseudo();
  auto &I = F.Blocks[0].Insts;
  I.push_back(rtl::call(Operand::reg(T), 0, {}));
  I.push_back(rtl::mov(Operand::reg(X), Operand::reg(T)));
  I.push_back(rtl::ret(Operand::reg(X)));
  InstructionSelectionPhase S;
  EXPECT_TRUE(S.apply(F));
  ASSERT_EQ(F.instructionCount(), 2u);
  EXPECT_EQ(F.Blocks[0].Insts[0].Opcode, Op::Call);
  EXPECT_EQ(F.Blocks[0].Insts[0].Dst.getReg(), X);
}

//===--------------------------------------------------------------------===//
// c — global propagation across control flow
//===--------------------------------------------------------------------===//

TEST(PhaseCEdge, PropagatesConstantAgreedOnBothArms) {
  Module M = compileOrDie(
      "int f(int a) {\n"
      "  int k;\n"
      "  if (a > 0) k = 12; else k = 12;\n"
      "  return a + k;\n"
      "}\n");
  Function &F = functionNamed(M, "f");
  PhaseManager PM;
  PM.applySequence(F, "sk"); // Promote k into a register first.
  PM.applySequence(F, "sch");
  Interpreter Sim(M);
  EXPECT_EQ(Sim.run("f", {5}).ReturnValue, 17);
  EXPECT_EQ(Sim.run("f", {-5}).ReturnValue, 7);
  // The constant reaches the add: no 12-loading mov on the final path…
  // at minimum, the function shrank well below naive size.
  EXPECT_LT(F.instructionCount(), 12u);
}

TEST(PhaseCEdge, DoesNotPropagateDisagreeingConstants) {
  Module M = compileOrDie(
      "int f(int a) {\n"
      "  int k;\n"
      "  if (a > 0) k = 12; else k = 13;\n"
      "  return a + k;\n"
      "}\n");
  Function &F = functionNamed(M, "f");
  PhaseManager PM;
  PM.applySequence(F, "sksch");
  Interpreter Sim(M);
  EXPECT_EQ(Sim.run("f", {5}).ReturnValue, 17);
  EXPECT_EQ(Sim.run("f", {-5}).ReturnValue, 8);
}

//===--------------------------------------------------------------------===//
// b — conditional branches chase chains too
//===--------------------------------------------------------------------===//

TEST(PhaseBEdge, ConditionalBranchRetargeted) {
  Function F;
  size_t B0 = F.addBlock(), B1 = F.addBlock(), B2 = F.addBlock(),
         B3 = F.addBlock();
  RegNum R = F.makePseudo();
  F.Blocks[B0].Insts.push_back(rtl::cmp(Operand::reg(R), Operand::imm(0)));
  F.Blocks[B0].Insts.push_back(rtl::branch(Cond::Eq, F.Blocks[B2].Label));
  F.Blocks[B1].Insts.push_back(rtl::ret(Operand::imm(1)));
  F.Blocks[B2].Insts.push_back(rtl::jump(F.Blocks[B3].Label)); // Chain.
  F.Blocks[B3].Insts.push_back(rtl::ret(Operand::imm(2)));
  BranchChainingPhase B;
  EXPECT_TRUE(B.apply(F));
  // The conditional branch now goes straight to B3; B2 is unreachable
  // and removed by b itself.
  EXPECT_EQ(F.Blocks.size(), 3u);
  EXPECT_EQ(F.Blocks[0].Insts[1].Src[0].Value, F.Blocks[2].Label);
}

} // namespace
