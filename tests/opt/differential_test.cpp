//===- differential_test.cpp - Semantic preservation property tests -----------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The load-bearing property of the whole reproduction: EVERY legal phase
// ordering must preserve program behaviour. These parameterized tests
// apply pseudo-random legal phase sequences to every function of several
// MC programs and compare simulator results (return value + out() stream)
// against the unoptimized baseline, verifying the IR after every step.
//
//===----------------------------------------------------------------------===//

#include "src/opt/PhaseManager.h"
#include "src/sim/Interpreter.h"
#include "src/support/Rng.h"
#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

using namespace pose;
using namespace pose::testhelpers;

namespace {

struct ProgramCase {
  const char *Name;
  const char *Source;
};

const ProgramCase Programs[] = {
    {"arith",
     "int main() {\n"
     "  int a = 12; int b = -5; int c = 0x7fffffff;\n"
     "  out(a*b); out(a/b); out(a%b); out(a+c); out(b>>2); out(b>>>2);\n"
     "  out(a<<3); out((a^b)&(a|b)); out(!a); out(~b); out(-a);\n"
     "  return a - b;\n"
     "}\n"},
    {"control",
     "int classify(int x) {\n"
     "  if (x < 0) { if (x < -100) return -2; return -1; }\n"
     "  if (x == 0) return 0;\n"
     "  if (x > 100) return 2;\n"
     "  return 1;\n"
     "}\n"
     "int main() {\n"
     "  int i;\n"
     "  for (i = -150; i <= 150; i = i + 50) out(classify(i));\n"
     "  return classify(7);\n"
     "}\n"},
    {"loops",
     "int main() {\n"
     "  int s = 0; int i; int j;\n"
     "  for (i = 0; i < 10; i = i + 1) {\n"
     "    for (j = 0; j < i; j = j + 1) {\n"
     "      if ((i + j) % 3 == 0) continue;\n"
     "      s = s + i * j;\n"
     "      if (s > 500) break;\n"
     "    }\n"
     "  }\n"
     "  while (s % 7 != 0) s = s + 1;\n"
     "  do { s = s - 3; } while (s > 100);\n"
     "  out(s);\n"
     "  return s;\n"
     "}\n"},
    {"arrays",
     "int tab[8] = {3,1,4,1,5,9,2,6};\n"
     "int acc = 0;\n"
     "int sum(int lo, int hi) {\n"
     "  int s = 0; int i;\n"
     "  for (i = lo; i < hi; i = i + 1) s = s + tab[i];\n"
     "  return s;\n"
     "}\n"
     "int main() {\n"
     "  int loc[5];\n"
     "  int i;\n"
     "  for (i = 0; i < 5; i = i + 1) loc[i] = tab[i] * i;\n"
     "  for (i = 0; i < 5; i = i + 1) acc = acc + loc[i];\n"
     "  out(acc); out(sum(0, 8)); out(sum(2, 5));\n"
     "  return acc;\n"
     "}\n"},
    {"calls",
     "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }\n"
     "int gcd(int a, int b) { while (b != 0) { int t = a % b; a = b; "
     "b = t; } return a; }\n"
     "int main() { out(fib(12)); out(gcd(462, 1071)); return 0; }\n"},
    {"logic",
     "int g = 5;\n"
     "int bump() { g = g + 1; return g; }\n"
     "int main() {\n"
     "  /* short-circuit evaluation must not duplicate side effects */\n"
     "  int a = (g > 0) && (bump() > 0);\n"
     "  int b = (g > 100) || (bump() > 0);\n"
     "  int c = (g > 100) && (bump() > 0);\n"
     "  out(a); out(b); out(c); out(g);\n"
     "  return g;\n"
     "}\n"},
};

/// Runs main() on the module, asserting the simulation itself succeeds.
RunResult runMain(const Module &M) {
  Interpreter Sim(M);
  RunResult R = Sim.run("main", {});
  EXPECT_TRUE(R.Ok) << R.Error;
  return R;
}

class DifferentialTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DifferentialTest, RandomLegalSequencePreservesBehavior) {
  const ProgramCase &PC = Programs[std::get<0>(GetParam())];
  const int Seed = std::get<1>(GetParam());

  Module M = compileOrDie(PC.Source);
  RunResult Baseline = runMain(M);

  PhaseManager PM;
  Rng R(static_cast<uint64_t>(Seed) * 7919 + 17);
  std::string Applied;

  // Apply a random legal sequence of up to 25 attempts per function.
  for (Function &F : M.Functions) {
    int Prev = -1;
    for (int Step = 0; Step < 25; ++Step) {
      int P = static_cast<int>(R.below(NumPhases));
      if (P == Prev)
        continue; // No phase twice in a row, as in the paper.
      PhaseId Id = phaseByIndex(P);
      if (!PM.isLegal(Id, F))
        continue;
      bool Active = PM.attempt(Id, F);
      std::string Err = verifyFunction(F);
      ASSERT_EQ(Err, "") << "after phase " << phaseCode(Id) << " (seed "
                         << Seed << ", program " << PC.Name << ")\n"
                         << printFunction(F);
      if (Active) {
        Prev = P;
        Applied += phaseCode(Id);
      }
    }
  }

  RunResult After = runMain(M);
  EXPECT_TRUE(Baseline.sameBehavior(After))
      << "program " << PC.Name << " seed " << Seed << " sequence '"
      << Applied << "': baseline ret " << Baseline.ReturnValue << " vs "
      << After.ReturnValue;
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, DifferentialTest,
    ::testing::Combine(::testing::Range(0, 6), ::testing::Range(0, 12)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>> &Info) {
      return std::string(Programs[std::get<0>(Info.param)].Name) + "_seed" +
             std::to_string(std::get<1>(Info.param));
    });

/// Every phase must also behave when applied repeatedly to a fixed point:
/// an active phase follows with dormant once nothing remains.
TEST(DifferentialTest, PhasesReachFixedPoints) {
  Module M = compileOrDie(Programs[3].Source); // arrays
  PhaseManager PM;
  for (Function &F : M.Functions) {
    for (int P = 0; P != NumPhases; ++P) {
      PhaseId Id = phaseByIndex(P);
      if (!PM.isLegal(Id, F))
        continue;
      // Two consecutive applications: the second is dormant or shrinking;
      // ten applications of any phase must reach a fixed point.
      int Active = 0;
      for (int K = 0; K < 10; ++K) {
        if (!PM.attempt(Id, F))
          break;
        ++Active;
      }
      EXPECT_LT(Active, 10) << "phase " << phaseCode(Id)
                            << " never reaches a fixed point";
    }
  }
}

} // namespace
