//===- faultfs_test.cpp - Fault-injected store I/O property tests --------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The store's crash-consistency contract under injected I/O failure:
// for EVERY fault kind at EVERY operation index of a store write, the
// artifact on disk afterwards is either the old one (byte-identical,
// still loadable) or none — never a torn or half-committed file a later
// reader could trust. And the detection side of the same coin: fsck must
// flag every single-byte corruption of every artifact kind, which is
// what the frame's header CRC (format v4) exists to guarantee.
//
//===----------------------------------------------------------------------===//

#include "src/support/FaultFs.h"

#include "src/core/Canonical.h"
#include "src/core/Enumerator.h"
#include "src/frontend/Compile.h"
#include "src/opt/PhaseManager.h"
#include "src/sem/Equivalence.h"
#include "src/store/ArtifactStore.h"
#include "src/store/StoreAdmin.h"
#include "tests/common/Helpers.h"

#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

using namespace pose;
using namespace pose::store;
using namespace pose::testhelpers;

namespace {

const char *SumSource =
    "int f(int n){int s=0;int i=0;while(i<n){s=s+i;i=i+1;}return s;}";

std::string freshDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "pose-faultfs-" + Name;
  std::filesystem::remove_all(Dir);
  return Dir;
}

std::vector<uint8_t> readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(In)),
                              std::istreambuf_iterator<char>());
}

void writeFile(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
}

/// A finished enumeration of the loop function plus a valid mid-flight
/// checkpoint and a hand-built quarantine record — one artifact of every
/// kind, under one (root, fingerprint) key.
struct Artifacts {
  Module M;
  EnumerationResult Res;
  EnumerationCheckpoint Cp;
  QuarantineRecord Q;
  sem::EquivRecord Eq;
  HashTriple Root;
  uint64_t Fp = 0;

  Artifacts() : M(compileOrDie(SumSource)) {
    PhaseManager PM;
    EnumeratorConfig Cfg;
    Function &F = functionNamed(M, "f");
    {
      Enumerator E(PM, Cfg);
      Res = E.enumerate(F);
    }
    Eq = sem::computeEquivalence(M, F, PM, Res, sem::EquivInputs());
    {
      EnumeratorConfig Tight = Cfg;
      Tight.MaxMemoryBytes = 20'000;
      Enumerator E(PM, Tight);
      E.enumerate(F, &Cp);
    }
    Q.Failure = WorkerFailure::Signal;
    Q.Signal = 11;
    Q.Attempts = 3;
    Q.Message = "worker died with signal 11";
    Root = canonicalize(F, false, Cfg.RemapRegisters).Hash;
    Fp = configFingerprint(Cfg);
  }
};

Artifacts &artifacts() {
  static Artifacts A;
  EXPECT_TRUE(A.Cp.Valid);
  return A;
}

/// Saves the artifact of \p Kind through \p Store; returns success.
bool saveKind(const ArtifactStore &Store, const Artifacts &A,
              ArtifactKind Kind, std::string &Error) {
  switch (Kind) {
  case ArtifactKind::Result:
    return Store.saveResult(A.Root, A.Fp, A.Res, Error);
  case ArtifactKind::Checkpoint:
    return Store.saveCheckpoint(A.Root, A.Fp, A.Cp, Error);
  case ArtifactKind::Quarantine:
    return Store.saveQuarantine(A.Root, A.Fp, A.Q, Error);
  case ArtifactKind::Equivalence:
    return Store.saveEquivalence(A.Root, A.Fp, A.Eq, Error);
  }
  return false;
}

/// Loads the artifact of \p Kind; returns the status.
LoadStatus loadKind(const ArtifactStore &Store, const Artifacts &A,
                    ArtifactKind Kind, std::string &Error) {
  switch (Kind) {
  case ArtifactKind::Result: {
    EnumerationResult R;
    return Store.loadResult(A.Root, A.Fp, R, Error);
  }
  case ArtifactKind::Checkpoint: {
    EnumerationCheckpoint C;
    return Store.loadCheckpoint(A.Root, A.Fp, C, Error);
  }
  case ArtifactKind::Quarantine: {
    QuarantineRecord Q;
    return Store.loadQuarantine(A.Root, A.Fp, Q, Error);
  }
  case ArtifactKind::Equivalence: {
    sem::EquivRecord E;
    return Store.loadEquivalence(A.Root, A.Fp, E, Error);
  }
  }
  return LoadStatus::Miss;
}

constexpr ArtifactKind AllKinds[] = {
    ArtifactKind::Result, ArtifactKind::Checkpoint, ArtifactKind::Quarantine,
    ArtifactKind::Equivalence};

TEST(IoFaultSpecParse, AcceptsEveryKindAndLists) {
  std::vector<IoFaultSpec> Out;
  ASSERT_TRUE(IoFaultSpec::parse("shortwrite:1", Out));
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].Kind, IoFaultKind::ShortWrite);
  EXPECT_EQ(Out[0].Nth, 1u);

  ASSERT_TRUE(
      IoFaultSpec::parse("enospc:2,eio:3,crash-before-rename:1", Out));
  ASSERT_EQ(Out.size(), 3u);
  EXPECT_EQ(Out[0].Kind, IoFaultKind::Enospc);
  EXPECT_EQ(Out[1].Kind, IoFaultKind::Eio);
  EXPECT_EQ(Out[2].Kind, IoFaultKind::CrashBeforeRename);
  EXPECT_EQ(Out[2].Nth, 1u);

  ASSERT_TRUE(IoFaultSpec::parse("crash-after-rename:7", Out));
  EXPECT_EQ(Out[0].Kind, IoFaultKind::CrashAfterRename);
  EXPECT_EQ(Out[0].Nth, 7u);
}

TEST(IoFaultSpecParse, RejectsMalformedSpecs) {
  std::vector<IoFaultSpec> Out;
  EXPECT_FALSE(IoFaultSpec::parse("", Out));
  EXPECT_FALSE(IoFaultSpec::parse("enospc", Out));         // No index.
  EXPECT_FALSE(IoFaultSpec::parse("enospc:", Out));        // Empty index.
  EXPECT_FALSE(IoFaultSpec::parse("enospc:0", Out));       // Zero index.
  EXPECT_FALSE(IoFaultSpec::parse("enospc:x", Out));       // Non-digit.
  EXPECT_FALSE(IoFaultSpec::parse("enospc:1x", Out));      // Trailing junk.
  EXPECT_FALSE(IoFaultSpec::parse("diskfire:1", Out));     // Unknown kind.
  EXPECT_FALSE(IoFaultSpec::parse("enospc:1,", Out));      // Empty item.
  EXPECT_FALSE(IoFaultSpec::parse(",enospc:1", Out));      // Empty item.
  EXPECT_FALSE(IoFaultSpec::parse(":3", Out));             // No kind.
  EXPECT_FALSE(
      IoFaultSpec::parse("enospc:99999999999999999999", Out)); // Overflow.
}

// The tentpole property: every fault kind, at every operation index a
// store write performs, leaves old-or-none — the prior artifact intact
// and loadable, or no artifact and no stray temp file. Every scenario is
// run twice: once against an empty store ("none" must hold) and once
// over a pre-existing artifact ("old" must survive byte-identically).
TEST(FaultFsProperty, EveryFaultAtEveryOpIndexLeavesOldOrNone) {
  Artifacts &A = artifacts();

  // A store write is one writeFile + one rename; saveResult additionally
  // removes sibling artifacts afterwards. Indices beyond the op count
  // simply never fire, which the clean-pass check at the end covers.
  const IoFaultKind WriteFaults[] = {IoFaultKind::ShortWrite,
                                     IoFaultKind::Enospc, IoFaultKind::Eio};

  for (ArtifactKind Kind : AllKinds) {
    const std::string KindTag = artifactKindName(Kind);
    for (bool PreExisting : {false, true}) {
      // --- Write-class faults (fail the temp-file write). ---
      for (IoFaultKind WF : WriteFaults) {
        const std::string Tag = KindTag + std::string("-") +
                                ioFaultKindName(WF) +
                                (PreExisting ? "-old" : "-empty");
        const std::string Dir = freshDir(Tag);
        std::string Error;
        std::vector<uint8_t> OldBytes;
        {
          ArtifactStore Plain(Dir, &StoreIo::system());
          ASSERT_TRUE(Plain.prepare(Error)) << Error;
          if (PreExisting) {
            ASSERT_TRUE(saveKind(Plain, A, Kind, Error)) << Error;
            OldBytes = readFile(Plain.pathFor(A.Root, Kind));
            ASSERT_FALSE(OldBytes.empty());
          }
        }
        FaultFs Fs({{WF, 1}}, FaultFs::CrashMode::Simulate);
        ArtifactStore Store(Dir, &Fs);
        EXPECT_FALSE(saveKind(Store, A, Kind, Error)) << Tag;
        // The error carries errno context; a short write also reports
        // its byte progress.
        EXPECT_NE(Error.find("errno"), std::string::npos) << Tag << ": "
                                                          << Error;
        if (WF == IoFaultKind::ShortWrite) {
          EXPECT_NE(Error.find(" of "), std::string::npos) << Tag << ": "
                                                           << Error;
        }
        // No torn temp file left behind (the failure path unlinks it).
        EXPECT_TRUE(
            readFile(Store.pathFor(A.Root, Kind) + ".tmp").empty())
            << Tag;
        // Old-or-none on the committed path.
        ArtifactStore Check(Dir, &StoreIo::system());
        if (PreExisting) {
          EXPECT_EQ(readFile(Check.pathFor(A.Root, Kind)), OldBytes) << Tag;
          EXPECT_EQ(loadKind(Check, A, Kind, Error), LoadStatus::Hit)
              << Tag << ": " << Error;
        } else {
          EXPECT_EQ(loadKind(Check, A, Kind, Error), LoadStatus::Miss)
              << Tag;
        }
      }

      // --- Crash before the committing rename. ---
      {
        const std::string Tag =
            KindTag + std::string("-crashbefore") +
            (PreExisting ? "-old" : "-empty");
        const std::string Dir = freshDir(Tag);
        std::string Error;
        std::vector<uint8_t> OldBytes;
        {
          ArtifactStore Plain(Dir, &StoreIo::system());
          ASSERT_TRUE(Plain.prepare(Error)) << Error;
          if (PreExisting) {
            ASSERT_TRUE(saveKind(Plain, A, Kind, Error)) << Error;
            OldBytes = readFile(Plain.pathFor(A.Root, Kind));
          }
        }
        FaultFs Fs({{IoFaultKind::CrashBeforeRename, 1}},
                   FaultFs::CrashMode::Simulate);
        ArtifactStore Store(Dir, &Fs);
        EXPECT_FALSE(saveKind(Store, A, Kind, Error)) << Tag;
        EXPECT_TRUE(Fs.crashed()) << Tag;
        // The dead process could not clean up: its temp file is orphaned
        // (exactly what --fsck and the supervisor's startup sweep exist
        // for), but the committed artifact is old-or-none.
        EXPECT_FALSE(
            readFile(Store.pathFor(A.Root, Kind) + ".tmp").empty())
            << Tag;
        ArtifactStore Check(Dir, &StoreIo::system());
        if (PreExisting) {
          EXPECT_EQ(readFile(Check.pathFor(A.Root, Kind)), OldBytes) << Tag;
          EXPECT_EQ(loadKind(Check, A, Kind, Error), LoadStatus::Hit)
              << Tag << ": " << Error;
        } else {
          EXPECT_EQ(loadKind(Check, A, Kind, Error), LoadStatus::Miss)
              << Tag;
        }
      }

      // --- Crash after the committing rename: the new artifact is
      // durable even though nothing after the rename ran. ---
      {
        const std::string Tag = KindTag + std::string("-crashafter") +
                                (PreExisting ? "-old" : "-empty");
        const std::string Dir = freshDir(Tag);
        std::string Error;
        {
          ArtifactStore Plain(Dir, &StoreIo::system());
          ASSERT_TRUE(Plain.prepare(Error)) << Error;
          if (PreExisting) {
            ASSERT_TRUE(saveKind(Plain, A, Kind, Error)) << Error;
          }
        }
        FaultFs Fs({{IoFaultKind::CrashAfterRename, 1}},
                   FaultFs::CrashMode::Simulate);
        ArtifactStore Store(Dir, &Fs);
        // The save itself reports success or failure depending on what
        // ran after the rename; the durable state is what matters.
        saveKind(Store, A, Kind, Error);
        EXPECT_TRUE(Fs.crashed()) << Tag;
        ArtifactStore Check(Dir, &StoreIo::system());
        EXPECT_EQ(loadKind(Check, A, Kind, Error), LoadStatus::Hit)
            << Tag << ": " << Error;
      }
    }
  }
}

TEST(FaultFsProperty, FaultsBeyondTheOpCountNeverFire) {
  Artifacts &A = artifacts();
  const std::string Dir = freshDir("beyond");
  // One save is one write and one rename; index 5 never fires, so the
  // write must succeed exactly as without the injector.
  FaultFs Fs({{IoFaultKind::Enospc, 5}, {IoFaultKind::CrashBeforeRename, 5}},
             FaultFs::CrashMode::Simulate);
  ArtifactStore Store(Dir, &Fs);
  std::string Error;
  ASSERT_TRUE(Store.prepare(Error)) << Error;
  ASSERT_TRUE(Store.saveResult(A.Root, A.Fp, A.Res, Error)) << Error;
  EXPECT_FALSE(Fs.crashed());
  EXPECT_EQ(Fs.writeOps(), 1u);
  EXPECT_EQ(Fs.renameOps(), 1u);
  EXPECT_EQ(loadKind(Store, A, ArtifactKind::Result, Error),
            LoadStatus::Hit)
      << Error;
}

TEST(FaultFsProperty, SecondWriteFaultSparesTheFirst) {
  Artifacts &A = artifacts();
  const std::string Dir = freshDir("second");
  FaultFs Fs({{IoFaultKind::Enospc, 2}}, FaultFs::CrashMode::Simulate);
  ArtifactStore Store(Dir, &Fs);
  std::string Error;
  ASSERT_TRUE(Store.prepare(Error)) << Error;
  // First write (the checkpoint) succeeds, second (the quarantine record)
  // hits the injected ENOSPC.
  ASSERT_TRUE(Store.saveCheckpoint(A.Root, A.Fp, A.Cp, Error)) << Error;
  EXPECT_FALSE(Store.saveQuarantine(A.Root, A.Fp, A.Q, Error));
  EXPECT_NE(Error.find("No space left"), std::string::npos) << Error;
  EXPECT_EQ(loadKind(Store, A, ArtifactKind::Checkpoint, Error),
            LoadStatus::Hit)
      << Error;
  EXPECT_EQ(loadKind(Store, A, ArtifactKind::Quarantine, Error),
            LoadStatus::Miss);
}

// The detection property behind format v4's header CRC: flipping ANY
// single byte of ANY artifact kind must be caught by fsck. Without the
// header CRC the config-fingerprint bytes (offsets 28..35) would be
// undetectable — no cross-check covers them and fsck has no expected
// value to compare against.
TEST(FsckDetection, EverySingleByteCorruptionIsDetectedForEveryKind) {
  Artifacts &A = artifacts();
  for (ArtifactKind Kind : AllKinds) {
    const std::string Dir =
        freshDir(std::string("flip-") + artifactKindName(Kind));
    ArtifactStore Store(Dir, &StoreIo::system());
    std::string Error;
    ASSERT_TRUE(Store.prepare(Error)) << Error;
    ASSERT_TRUE(saveKind(Store, A, Kind, Error)) << Error;
    const std::string Path = Store.pathFor(A.Root, Kind);
    const std::vector<uint8_t> Pristine = readFile(Path);
    ASSERT_FALSE(Pristine.empty());
    ASSERT_TRUE(fsckStore(Dir, false).clean());

    for (size_t I = 0; I != Pristine.size(); ++I) {
      std::vector<uint8_t> Bad = Pristine;
      Bad[I] ^= 0xFF;
      writeFile(Path, Bad);
      const FsckReport R = fsckStore(Dir, false);
      EXPECT_FALSE(R.clean())
          << artifactKindName(Kind) << ": flipped byte " << I << " of "
          << Pristine.size() << " escaped fsck";
      if (R.clean())
        break; // One detailed failure is enough; don't spam 5000 more.
    }
    writeFile(Path, Pristine);
    EXPECT_TRUE(fsckStore(Dir, false).clean());
  }
}

TEST(FsckDetection, TruncationAtEveryLengthIsDetected) {
  Artifacts &A = artifacts();
  const std::string Dir = freshDir("truncate");
  ArtifactStore Store(Dir, &StoreIo::system());
  std::string Error;
  ASSERT_TRUE(Store.prepare(Error)) << Error;
  ASSERT_TRUE(Store.saveQuarantine(A.Root, A.Fp, A.Q, Error)) << Error;
  const std::string Path = Store.pathFor(A.Root, ArtifactKind::Quarantine);
  const std::vector<uint8_t> Pristine = readFile(Path);
  for (size_t Len = 0; Len != Pristine.size(); ++Len) {
    writeFile(Path, std::vector<uint8_t>(Pristine.begin(),
                                         Pristine.begin() + Len));
    const FsckReport R = fsckStore(Dir, false);
    EXPECT_FALSE(R.clean()) << "length " << Len;
    if (R.clean())
      break;
  }
}

} // namespace
