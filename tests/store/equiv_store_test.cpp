//===- equiv_store_test.cpp - The equivalence artifact kind --------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Full store coverage of the Equivalence artifact kind: exact codec round
// trip, decoder strictness (truncation, invariant violations), every-byte
// flip rejection at the frame layer, fsck classification of a corrupted
// equivalence file, and merge-store dedupe/conflict behavior.
//
//===----------------------------------------------------------------------===//

#include "src/store/StoreAdmin.h"

#include "src/core/Canonical.h"
#include "src/core/Enumerator.h"
#include "src/frontend/Compile.h"
#include "src/opt/PhaseManager.h"
#include "src/sem/Equivalence.h"
#include "src/store/Serialize.h"
#include "tests/common/Helpers.h"

#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

namespace fs = std::filesystem;

using namespace pose;
using namespace pose::store;
using namespace pose::testhelpers;

namespace {

const char *LoopSource =
    "int f(int n){int s=0;int i=0;while(i<n){s=s+i;i=i+1;}return s;}";

std::string freshDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "pose-equivstore-" + Name;
  fs::remove_all(Dir);
  return Dir;
}

std::vector<uint8_t> readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(In)),
                              std::istreambuf_iterator<char>());
}

void writeFile(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
}

/// A real record computed over f's enumerated space.
struct Computed {
  Module M;
  HashTriple Root;
  uint64_t Fp = 0;
  sem::EquivRecord E;
};

Computed computeRecord() {
  Computed C;
  C.M = compileOrDie(LoopSource);
  Function &F = functionNamed(C.M, "f");
  PhaseManager PM;
  EnumeratorConfig Cfg;
  Enumerator En(PM, Cfg);
  const EnumerationResult R = En.enumerate(F);
  EXPECT_TRUE(R.complete());
  C.Root = canonicalize(F, false, Cfg.RemapRegisters).Hash;
  C.Fp = equivFingerprint(configFingerprint(Cfg),
                          sem::kDefaultVectorSeed,
                          sem::kDefaultVectorCount);
  C.E = sem::computeEquivalence(C.M, F, PM, R, sem::EquivInputs());
  return C;
}

bool recordsEqual(const sem::EquivRecord &A, const sem::EquivRecord &B) {
  return A.VectorSeed == B.VectorSeed &&
         A.VectorsRequested == B.VectorsRequested &&
         A.NumParams == B.NumParams && A.UsedVectors == B.UsedVectors &&
         A.NodeBehavior == B.NodeBehavior &&
         A.NodeDynamic == B.NodeDynamic && A.NodeAllOk == B.NodeAllOk;
}

TEST(EquivCodec, RoundTripIsExact) {
  const Computed C = computeRecord();
  ByteWriter W;
  encodeEquivalence(W, C.E);
  ByteReader R(W.bytes());
  sem::EquivRecord Out;
  ASSERT_TRUE(decodeEquivalence(R, Out));
  EXPECT_TRUE(R.atEnd());
  EXPECT_TRUE(recordsEqual(C.E, Out));
}

TEST(EquivCodec, EveryTruncationIsRejected) {
  const Computed C = computeRecord();
  ByteWriter W;
  encodeEquivalence(W, C.E);
  const std::vector<uint8_t> &Bytes = W.bytes();
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    ByteReader R(Bytes.data(), Len);
    sem::EquivRecord Out;
    EXPECT_FALSE(decodeEquivalence(R, Out) && R.atEnd())
        << "prefix length " << Len;
  }
}

TEST(EquivCodec, InvariantViolationsAreRejected) {
  const Computed C = computeRecord();
  {
    // Non-ascending used-vector indices.
    sem::EquivRecord Bad = C.E;
    ASSERT_GE(Bad.UsedVectors.size(), 2u);
    std::swap(Bad.UsedVectors[0], Bad.UsedVectors[1]);
    ByteWriter W;
    encodeEquivalence(W, Bad);
    ByteReader R(W.bytes());
    sem::EquivRecord Out;
    EXPECT_FALSE(decodeEquivalence(R, Out));
  }
  {
    // A used index at/above the requested count.
    sem::EquivRecord Bad = C.E;
    Bad.UsedVectors.back() = Bad.VectorsRequested;
    ByteWriter W;
    encodeEquivalence(W, Bad);
    ByteReader R(W.bytes());
    sem::EquivRecord Out;
    EXPECT_FALSE(decodeEquivalence(R, Out));
  }
  {
    // An AllOk byte outside 0/1.
    sem::EquivRecord Bad = C.E;
    ASSERT_FALSE(Bad.NodeAllOk.empty());
    Bad.NodeAllOk[0] = 2;
    ByteWriter W;
    encodeEquivalence(W, Bad);
    ByteReader R(W.bytes());
    sem::EquivRecord Out;
    EXPECT_FALSE(decodeEquivalence(R, Out));
  }
}

TEST(EquivStore, SaveLoadRemoveAndFingerprintMismatch) {
  const std::string Dir = freshDir("roundtrip");
  Computed C = computeRecord();
  ArtifactStore Store(Dir, &StoreIo::system());
  std::string Error;
  ASSERT_TRUE(Store.prepare(Error)) << Error;
  ASSERT_TRUE(Store.saveEquivalence(C.Root, C.Fp, C.E, Error)) << Error;

  sem::EquivRecord Out;
  EXPECT_EQ(Store.loadEquivalence(C.Root, C.Fp, Out, Error),
            LoadStatus::Hit)
      << Error;
  EXPECT_TRUE(recordsEqual(C.E, Out));
  // Another seed is another artifact: the lookup must reject, because a
  // digest is only comparable within one vector set.
  const uint64_t OtherFp = C.Fp ^ 1;
  EXPECT_EQ(Store.loadEquivalence(C.Root, OtherFp, Out, Error),
            LoadStatus::Rejected);
  Store.removeEquivalence(C.Root);
  EXPECT_EQ(Store.loadEquivalence(C.Root, C.Fp, Out, Error),
            LoadStatus::Miss);
}

TEST(EquivStore, EveryByteFlipIsRejectedAtTheFrameLayer) {
  const std::string Dir = freshDir("byteflip");
  Computed C = computeRecord();
  ArtifactStore Store(Dir, &StoreIo::system());
  std::string Error;
  ASSERT_TRUE(Store.prepare(Error)) << Error;
  ASSERT_TRUE(Store.saveEquivalence(C.Root, C.Fp, C.E, Error)) << Error;
  const std::string Path = Store.pathFor(C.Root, ArtifactKind::Equivalence);
  const std::vector<uint8_t> Good = readFile(Path);
  ASSERT_FALSE(Good.empty());

  for (size_t I = 0; I != Good.size(); ++I) {
    std::vector<uint8_t> Bad = Good;
    Bad[I] ^= 0x01;
    writeFile(Path, Bad);
    sem::EquivRecord Out;
    EXPECT_EQ(Store.loadEquivalence(C.Root, C.Fp, Out, Error),
              LoadStatus::Rejected)
        << "flipped byte " << I << " was accepted";
  }
  writeFile(Path, Good);
  EXPECT_EQ(Store.loadEquivalence(C.Root, C.Fp, C.E, Error),
            LoadStatus::Hit);
}

TEST(EquivStore, FsckClassifiesACorruptEquivalenceArtifact) {
  const std::string Dir = freshDir("fsck");
  Computed C = computeRecord();
  ArtifactStore Store(Dir, &StoreIo::system());
  std::string Error;
  ASSERT_TRUE(Store.prepare(Error)) << Error;
  ASSERT_TRUE(Store.saveEquivalence(C.Root, C.Fp, C.E, Error)) << Error;
  EXPECT_TRUE(fsckStore(Dir, false).clean());

  const std::string Path = Store.pathFor(C.Root, ArtifactKind::Equivalence);
  std::vector<uint8_t> Bad = readFile(Path);
  Bad[Bad.size() - 1] ^= 0xFF; // Payload damage behind a valid header.
  writeFile(Path, Bad);

  const FsckReport R = fsckStore(Dir, false);
  EXPECT_FALSE(R.clean());
  EXPECT_EQ(R.Corrupt, 1u);
  ASSERT_EQ(R.Entries.size(), 1u);
  EXPECT_EQ(R.Entries[0].State, FsckState::Corrupt);
  EXPECT_EQ(R.Entries[0].Name, fs::path(Path).filename().string());
}

TEST(EquivStore, MergeDedupesIdenticalAndConflictsOnDivergence) {
  const std::string DirA = freshDir("merge-a");
  const std::string DirB = freshDir("merge-b");
  Computed C = computeRecord();
  std::string Error;
  {
    ArtifactStore A(DirA, &StoreIo::system());
    ASSERT_TRUE(A.prepare(Error)) << Error;
    ASSERT_TRUE(A.saveEquivalence(C.Root, C.Fp, C.E, Error)) << Error;
    ArtifactStore B(DirB, &StoreIo::system());
    ASSERT_TRUE(B.prepare(Error)) << Error;
    ASSERT_TRUE(B.saveEquivalence(C.Root, C.Fp, C.E, Error)) << Error;
  }

  // Byte-identical records dedupe.
  const std::string Dst = freshDir("merge-dst");
  const MergeReport M1 = mergeStores(Dst, {DirA, DirB});
  EXPECT_EQ(M1.Status, MergeStatus::Ok) << M1.Error;
  EXPECT_EQ(M1.Copied, 1u);
  EXPECT_EQ(M1.Deduped, 1u);

  // A record computed under another vector seed has the same file name
  // but different bytes: a conflict naming the key, never a silent pick.
  {
    ArtifactStore B(DirB, &StoreIo::system());
    sem::EquivRecord Other = C.E;
    Other.VectorSeed ^= 0x5A5A;
    ASSERT_TRUE(B.saveEquivalence(C.Root, C.Fp ^ 2, Other, Error)) << Error;
  }
  const std::string Dst2 = freshDir("merge-dst2");
  const MergeReport M2 = mergeStores(Dst2, {DirA, DirB});
  EXPECT_EQ(M2.Status, MergeStatus::Conflict);
  ArtifactStore A(DirA, &StoreIo::system());
  const std::string Name =
      fs::path(A.pathFor(C.Root, ArtifactKind::Equivalence))
          .filename()
          .string();
  EXPECT_EQ(M2.ConflictKey, Name);
}

} // namespace
