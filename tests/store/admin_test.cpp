//===- admin_test.cpp - Store fsck and merge tests -----------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The offline store-administration layer: fsck classification and repair
// (corrupt and truncated artifacts moved to lost+found, orphaned temp
// files removed, foreign files left alone), and the shard-store merge
// (deterministic union, byte-identical dedupe, conflict on same-key
// divergence, refusal of corrupt sources).
//
//===----------------------------------------------------------------------===//

#include "src/store/StoreAdmin.h"

#include "src/core/Canonical.h"
#include "src/core/Enumerator.h"
#include "src/frontend/Compile.h"
#include "src/opt/PhaseManager.h"
#include "tests/common/Helpers.h"

#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

namespace fs = std::filesystem;

using namespace pose;
using namespace pose::store;
using namespace pose::testhelpers;

namespace {

const char *TwoFnSource =
    "int f(int n){int s=0;int i=0;while(i<n){s=s+i;i=i+1;}return s;}"
    "int g(int a){return a+1;}";

std::string freshDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "pose-admin-" + Name;
  fs::remove_all(Dir);
  return Dir;
}

std::vector<uint8_t> readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(In)),
                              std::istreambuf_iterator<char>());
}

void writeFile(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
}

void writeText(const std::string &Path, const char *Text) {
  std::ofstream Out(Path, std::ios::trunc);
  Out << Text;
}

/// Two enumerated functions saved into \p Dir; returns their roots.
struct Seeded {
  HashTriple RootF, RootG;
  uint64_t Fp = 0;
};

Seeded seedStore(const std::string &Dir) {
  Module M = compileOrDie(TwoFnSource);
  PhaseManager PM;
  EnumeratorConfig Cfg;
  Seeded S;
  S.Fp = configFingerprint(Cfg);
  ArtifactStore Store(Dir, &StoreIo::system());
  std::string Error;
  EXPECT_TRUE(Store.prepare(Error)) << Error;
  for (Function &F : M.Functions) {
    Enumerator E(PM, Cfg);
    const EnumerationResult R = E.enumerate(F);
    const HashTriple Root = canonicalize(F, false, Cfg.RemapRegisters).Hash;
    EXPECT_TRUE(Store.saveResult(Root, S.Fp, R, Error)) << Error;
    (F.Name == "f" ? S.RootF : S.RootG) = Root;
  }
  return S;
}

TEST(ParseArtifactName, RoundTripsStoreFileNames) {
  const std::string Dir = freshDir("names");
  const Seeded S = seedStore(Dir);
  ArtifactStore Store(Dir, &StoreIo::system());
  const std::string Path = Store.pathFor(S.RootF, ArtifactKind::Result);
  const std::string Name = fs::path(Path).filename().string();
  HashTriple Root;
  ArtifactKind Kind;
  ASSERT_TRUE(parseArtifactName(Name, Root, Kind));
  EXPECT_EQ(Root, S.RootF);
  EXPECT_EQ(Kind, ArtifactKind::Result);
}

TEST(ParseArtifactName, RejectsEverythingElse) {
  HashTriple Root;
  ArtifactKind Kind;
  EXPECT_FALSE(parseArtifactName("", Root, Kind));
  EXPECT_FALSE(parseArtifactName("README.md", Root, Kind));
  EXPECT_FALSE(parseArtifactName("00000001-00000002-00000003.result.pose.tmp",
                                 Root, Kind));
  EXPECT_FALSE(parseArtifactName("0000001-00000002-00000003.result.pose",
                                 Root, Kind)); // 7 hex digits.
  EXPECT_FALSE(parseArtifactName("0000000G-00000002-00000003.result.pose",
                                 Root, Kind)); // Non-hex.
  EXPECT_FALSE(parseArtifactName("0000000A-00000002-00000003.result.pose",
                                 Root, Kind)); // Upper-case hex.
  EXPECT_FALSE(parseArtifactName("00000001-00000002-00000003.sandwich.pose",
                                 Root, Kind)); // Unknown kind.
  EXPECT_FALSE(parseArtifactName("00000001-00000002-00000003.result.pose2",
                                 Root, Kind));
  EXPECT_TRUE(parseArtifactName("00000001-00000002-00000003.checkpoint.pose",
                                Root, Kind));
  EXPECT_EQ(Kind, ArtifactKind::Checkpoint);
  EXPECT_TRUE(parseArtifactName("00000001-00000002-00000003.quarantine.pose",
                                Root, Kind));
  EXPECT_EQ(Kind, ArtifactKind::Quarantine);
}

TEST(Fsck, CleanStoreReportsClean) {
  const std::string Dir = freshDir("clean");
  seedStore(Dir);
  const FsckReport R = fsckStore(Dir, false);
  EXPECT_TRUE(R.Error.empty()) << R.Error;
  EXPECT_TRUE(R.clean());
  EXPECT_EQ(R.Scanned, 2u);
  EXPECT_EQ(R.Intact, 2u);
  EXPECT_TRUE(R.Entries.empty());
}

TEST(Fsck, MissingDirectoryIsAnError) {
  const FsckReport R =
      fsckStore(::testing::TempDir() + "pose-admin-nonexistent", false);
  EXPECT_FALSE(R.Error.empty());
  EXPECT_FALSE(R.clean());
}

TEST(Fsck, ClassifiesEveryDamageClass) {
  const std::string Dir = freshDir("classify");
  const Seeded S = seedStore(Dir);
  ArtifactStore Store(Dir, &StoreIo::system());

  // Corrupt: flip a payload byte of f's result.
  const std::string PathF = Store.pathFor(S.RootF, ArtifactKind::Result);
  std::vector<uint8_t> Bad = readFile(PathF);
  Bad[Bad.size() - 1] ^= 0x01;
  writeFile(PathF, Bad);
  // Truncated: cut g's result mid-payload.
  const std::string PathG = Store.pathFor(S.RootG, ArtifactKind::Result);
  const std::vector<uint8_t> Whole = readFile(PathG);
  writeFile(PathG, std::vector<uint8_t>(Whole.begin(),
                                        Whole.begin() + Whole.size() / 2));
  // Orphan: a stale temp file. Foreign: an unrelated file.
  writeText((fs::path(Dir) / "11112222-33334444-55556666.result.pose.tmp")
                .string(),
            "torn");
  writeText((fs::path(Dir) / "NOTES.txt").string(), "hello");

  const FsckReport R = fsckStore(Dir, false);
  EXPECT_TRUE(R.Error.empty()) << R.Error;
  EXPECT_FALSE(R.clean());
  EXPECT_EQ(R.Scanned, 4u);
  EXPECT_EQ(R.Intact, 0u);
  EXPECT_EQ(R.Corrupt, 1u);
  EXPECT_EQ(R.Truncated, 1u);
  EXPECT_EQ(R.Orphans, 1u);
  EXPECT_EQ(R.Foreign, 1u);
  EXPECT_EQ(R.Repaired, 0u); // Repair was not requested.
  // Diagnostics carry the offset-rich frame errors.
  bool SawChecksum = false, SawTruncated = false;
  for (const FsckEntry &E : R.Entries) {
    if (E.State == FsckState::Corrupt)
      SawChecksum = E.Detail.find("checksum mismatch") != std::string::npos;
    if (E.State == FsckState::Truncated)
      SawTruncated = E.Detail.find("payload") != std::string::npos;
    EXPECT_TRUE(E.RepairedTo.empty());
  }
  EXPECT_TRUE(SawChecksum);
  EXPECT_TRUE(SawTruncated);
}

TEST(Fsck, DetectsKindAndKeyConfusionAgainstTheFileName) {
  // A valid frame sitting at the wrong path (renamed or copied) is
  // corruption fsck must catch even though every checksum passes.
  const std::string Dir = freshDir("confusion");
  const Seeded S = seedStore(Dir);
  ArtifactStore Store(Dir, &StoreIo::system());
  const std::string PathF = Store.pathFor(S.RootF, ArtifactKind::Result);
  const std::string PathG = Store.pathFor(S.RootG, ArtifactKind::Result);
  writeFile(PathG, readFile(PathF)); // f's artifact under g's key.

  const FsckReport R = fsckStore(Dir, false);
  EXPECT_EQ(R.Corrupt, 1u);
  ASSERT_EQ(R.Entries.size(), 1u);
  EXPECT_NE(R.Entries[0].Detail.find("different root"), std::string::npos)
      << R.Entries[0].Detail;
}

TEST(Fsck, RepairQuarantinesDamageAndRemovesOrphans) {
  const std::string Dir = freshDir("repair");
  const Seeded S = seedStore(Dir);
  ArtifactStore Store(Dir, &StoreIo::system());
  const std::string PathF = Store.pathFor(S.RootF, ArtifactKind::Result);
  std::vector<uint8_t> Bad = readFile(PathF);
  Bad[20] ^= 0xFF; // A root-triple byte: header CRC catches it.
  writeFile(PathF, Bad);
  writeText((fs::path(Dir) / "11112222-33334444-55556666.result.pose.tmp")
                .string(),
            "torn");
  writeText((fs::path(Dir) / "NOTES.txt").string(), "hello");

  const FsckReport R = fsckStore(Dir, true);
  EXPECT_TRUE(R.Error.empty()) << R.Error;
  EXPECT_EQ(R.Corrupt, 1u);
  EXPECT_EQ(R.Orphans, 1u);
  EXPECT_EQ(R.Foreign, 1u);
  EXPECT_EQ(R.Repaired, 2u); // The corrupt file and the orphan.
  EXPECT_TRUE(R.repairedClean());

  // The damaged artifact moved (not deleted) into lost+found; the orphan
  // is gone; the foreign file is untouched; the store is clean again.
  const fs::path Lost = fs::path(Dir) / kLostAndFoundDir;
  EXPECT_TRUE(fs::exists(Lost / fs::path(PathF).filename()));
  EXPECT_FALSE(fs::exists(PathF));
  EXPECT_FALSE(
      fs::exists(fs::path(Dir) / "11112222-33334444-55556666.result.pose.tmp"));
  EXPECT_TRUE(fs::exists(fs::path(Dir) / "NOTES.txt"));

  const FsckReport After = fsckStore(Dir, false);
  EXPECT_TRUE(After.clean());
  EXPECT_EQ(After.Intact, 1u); // g's artifact survived untouched.
}

TEST(Fsck, RepeatedRepairKeepsEveryGeneration) {
  const std::string Dir = freshDir("regen");
  const Seeded S = seedStore(Dir);
  ArtifactStore Store(Dir, &StoreIo::system());
  const std::string PathF = Store.pathFor(S.RootF, ArtifactKind::Result);
  const std::vector<uint8_t> Pristine = readFile(PathF);

  for (int Round = 0; Round != 2; ++Round) {
    std::vector<uint8_t> Bad = Pristine;
    Bad[30 + Round] ^= 0xFF;
    writeFile(PathF, Bad);
    EXPECT_TRUE(fsckStore(Dir, true).repairedClean()) << Round;
  }
  const fs::path Lost = fs::path(Dir) / kLostAndFoundDir;
  const std::string Name = fs::path(PathF).filename().string();
  EXPECT_TRUE(fs::exists(Lost / Name));
  EXPECT_TRUE(fs::exists(Lost / (Name + ".1"))); // Collision-suffixed.
}

TEST(Merge, UnionsDisjointStoresDeterministically) {
  const std::string DirA = freshDir("union-a");
  const std::string DirB = freshDir("union-b");
  const Seeded S = seedStore(DirA);
  // Split: move g's artifact into store B.
  ArtifactStore A(DirA, &StoreIo::system());
  const std::string PathG = A.pathFor(S.RootG, ArtifactKind::Result);
  fs::create_directories(DirB);
  fs::rename(PathG, fs::path(DirB) / fs::path(PathG).filename());

  const std::string Dst = freshDir("union-dst");
  const MergeReport R = mergeStores(Dst, {DirA, DirB});
  EXPECT_EQ(R.Status, MergeStatus::Ok) << R.Error;
  EXPECT_EQ(R.Copied, 2u);
  EXPECT_EQ(R.Deduped, 0u);
  // The merged store verifies clean and holds both artifacts.
  const FsckReport F = fsckStore(Dst, false);
  EXPECT_TRUE(F.clean());
  EXPECT_EQ(F.Intact, 2u);
}

TEST(Merge, IdenticalArtifactsDedupe) {
  const std::string DirA = freshDir("dedupe-a");
  const std::string DirB = freshDir("dedupe-b");
  seedStore(DirA);
  seedStore(DirB); // Same deterministic enumeration: byte-identical.

  const std::string Dst = freshDir("dedupe-dst");
  const MergeReport R = mergeStores(Dst, {DirA, DirB});
  EXPECT_EQ(R.Status, MergeStatus::Ok) << R.Error;
  EXPECT_EQ(R.Copied, 2u);
  EXPECT_EQ(R.Deduped, 2u);
}

TEST(Merge, SameKeyDivergenceIsAConflictNamingTheKey) {
  const std::string DirA = freshDir("conflict-a");
  const std::string DirB = freshDir("conflict-b");
  const Seeded S = seedStore(DirA);
  seedStore(DirB);
  // Re-save f's artifact in B under a different configuration: same key
  // (the file name ignores the fingerprint), different bytes.
  {
    Module M = compileOrDie(TwoFnSource);
    PhaseManager PM;
    EnumeratorConfig Other;
    Other.MaxLevelSequences = 7;
    Enumerator E(PM, Other);
    Function &F = functionNamed(M, "f");
    const EnumerationResult R = E.enumerate(F);
    ArtifactStore B(DirB, &StoreIo::system());
    std::string Error;
    ASSERT_TRUE(
        B.saveResult(S.RootF, configFingerprint(Other), R, Error))
        << Error;
  }

  const std::string Dst = freshDir("conflict-dst");
  const MergeReport R = mergeStores(Dst, {DirA, DirB});
  EXPECT_EQ(R.Status, MergeStatus::Conflict);
  ArtifactStore A(DirA, &StoreIo::system());
  const std::string Name =
      fs::path(A.pathFor(S.RootF, ArtifactKind::Result)).filename().string();
  EXPECT_EQ(R.ConflictKey, Name);
  EXPECT_NE(R.Error.find(Name), std::string::npos) << R.Error;
  EXPECT_NE(R.Error.find("fingerprint"), std::string::npos) << R.Error;
}

TEST(Merge, CorruptSourceIsRefusedWithAnFsckHint) {
  const std::string DirA = freshDir("corrupt-a");
  const Seeded S = seedStore(DirA);
  ArtifactStore A(DirA, &StoreIo::system());
  const std::string PathF = A.pathFor(S.RootF, ArtifactKind::Result);
  std::vector<uint8_t> Bad = readFile(PathF);
  Bad[Bad.size() - 1] ^= 0xFF;
  writeFile(PathF, Bad);

  const std::string Dst = freshDir("corrupt-dst");
  const MergeReport R = mergeStores(Dst, {DirA});
  EXPECT_EQ(R.Status, MergeStatus::CorruptSource);
  EXPECT_NE(R.Error.find("--fsck"), std::string::npos) << R.Error;
}

TEST(Merge, SkipsStaleTempFilesAndForeignFiles) {
  const std::string DirA = freshDir("tmp-a");
  seedStore(DirA);
  writeText((fs::path(DirA) / "11112222-33334444-55556666.result.pose.tmp")
                .string(),
            "torn");
  writeText((fs::path(DirA) / "NOTES.txt").string(), "hello");

  const std::string Dst = freshDir("tmp-dst");
  const MergeReport R = mergeStores(Dst, {DirA});
  EXPECT_EQ(R.Status, MergeStatus::Ok) << R.Error;
  EXPECT_EQ(R.Copied, 2u);
  EXPECT_EQ(R.SkippedTmp, 1u);
  EXPECT_FALSE(fs::exists(fs::path(Dst) / "NOTES.txt"));
  EXPECT_FALSE(fs::exists(
      fs::path(Dst) / "11112222-33334444-55556666.result.pose.tmp"));
}

TEST(Merge, RefusesToMergeAStoreIntoItself) {
  const std::string Dir = freshDir("self");
  const Seeded S = seedStore(Dir);
  ArtifactStore Store(Dir, &StoreIo::system());
  const std::string PathF = Store.pathFor(S.RootF, ArtifactKind::Result);
  const std::vector<uint8_t> Before = readFile(PathF);

  const MergeReport R = mergeStores(Dir, {Dir});
  EXPECT_EQ(R.Status, MergeStatus::SelfMerge);
  EXPECT_EQ(R.Copied, 0u);
  EXPECT_NE(R.Error.find("destination"), std::string::npos) << R.Error;
  // The store is untouched: same artifact bytes, still fsck-clean.
  EXPECT_EQ(readFile(PathF), Before);
  EXPECT_TRUE(fsckStore(Dir, false).clean());
}

TEST(Merge, RefusesSelfMergeThroughARelativeAlias) {
  const std::string Dir = freshDir("self-alias");
  seedStore(Dir);
  // dir/../<leaf> resolves back to dir itself.
  const fs::path P(Dir);
  const std::string Alias =
      (P.parent_path() / ".." / P.parent_path().filename() / P.filename())
          .string();
  const MergeReport R = mergeStores(Dir, {Alias});
  EXPECT_EQ(R.Status, MergeStatus::SelfMerge) << Alias << ": " << R.Error;
  EXPECT_EQ(R.Copied, 0u);
}

TEST(Merge, RefusesSelfMergeThroughASymlink) {
  const std::string Dir = freshDir("self-link");
  seedStore(Dir);
  const std::string Link = freshDir("self-link-alias");
  std::error_code EC;
  fs::create_directory_symlink(Dir, Link, EC);
  if (EC)
    GTEST_SKIP() << "cannot create symlinks here: " << EC.message();
  const MergeReport R = mergeStores(Dir, {Link});
  EXPECT_EQ(R.Status, MergeStatus::SelfMerge) << R.Error;
  EXPECT_EQ(R.Copied, 0u);
  fs::remove(Link);
}

TEST(Merge, SelfMergeAmongOtherSourcesStillRefusesBeforeCopying) {
  const std::string DirA = freshDir("self-multi-a");
  seedStore(DirA);
  const std::string Dst = freshDir("self-multi-dst");
  seedStore(Dst);
  const MergeReport R = mergeStores(Dst, {DirA, Dst});
  EXPECT_EQ(R.Status, MergeStatus::SelfMerge);
  EXPECT_EQ(R.Copied, 0u) << "sources must be validated before any copy";
}

TEST(Merge, MissingSourceIsAnIoError) {
  const std::string Dst = freshDir("missing-dst");
  const MergeReport R =
      mergeStores(Dst, {::testing::TempDir() + "pose-admin-no-such-store"});
  EXPECT_EQ(R.Status, MergeStatus::IoError);
  EXPECT_FALSE(R.Error.empty());
}

TEST(ReclaimTmp, RemovesOnlyTempFiles) {
  const std::string Dir = freshDir("reclaim");
  const Seeded S = seedStore(Dir);
  writeText((fs::path(Dir) / "11112222-33334444-55556666.result.pose.tmp")
                .string(),
            "torn");
  writeText((fs::path(Dir) / "NOTES.txt").string(), "hello");
  ArtifactStore Store(Dir, &StoreIo::system());
  const std::vector<std::string> Removed = Store.reclaimTmp();
  ASSERT_EQ(Removed.size(), 1u);
  EXPECT_NE(Removed[0].find(".pose.tmp"), std::string::npos);
  EXPECT_TRUE(fs::exists(fs::path(Dir) / "NOTES.txt"));
  EXPECT_TRUE(fs::exists(Store.pathFor(S.RootF, ArtifactKind::Result)));
}

} // namespace
