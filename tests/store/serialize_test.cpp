//===- serialize_test.cpp - Binary codec round-trip tests ----------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The store codecs promise exact round trips: decode(encode(X)) == X for
// function instances, enumeration results, and checkpoints. Because the
// encoding is canonical (one byte string per value), exactness is proved
// by re-encoding the decoded value and comparing bytes. The decoders also
// promise strictness: truncated input, out-of-range enums, and oversized
// length prefixes are rejected, never crashed on.
//
//===----------------------------------------------------------------------===//

#include "src/store/Serialize.h"

#include "src/frontend/Compile.h"
#include "src/opt/PhaseManager.h"
#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

using namespace pose;
using namespace pose::testhelpers;

namespace {

const char *SumSource =
    "int f(int n){int s=0;int i=0;while(i<n){s=s+i;i=i+1;}return s;}";

std::vector<uint8_t> encodedFunction(const Function &F) {
  ByteWriter W;
  store::encodeFunction(W, F);
  return W.take();
}

TEST(Serialize, FunctionRoundTripIsExact) {
  Module M = compileOrDie(SumSource);
  Function &F = functionNamed(M, "f");
  std::vector<uint8_t> Bytes = encodedFunction(F);

  ByteReader R(Bytes);
  Function G;
  ASSERT_TRUE(store::decodeFunction(R, G));
  EXPECT_TRUE(R.atEnd());
  EXPECT_EQ(encodedFunction(G), Bytes);
  EXPECT_EQ(G.Name, F.Name);
  EXPECT_EQ(G.instructionCount(), F.instructionCount());
  EXPECT_EQ(G.pseudoLimit(), F.pseudoLimit());
  EXPECT_EQ(G.labelLimit(), F.labelLimit());
}

TEST(Serialize, OptimizedFunctionRoundTripKeepsStateAndCounters) {
  // An instance mid-enumeration carries phase state and allocation
  // counters that recomputeCounters() cannot reconstruct; the codec must
  // carry them verbatim or a resumed run would hand out different fresh
  // registers than the original.
  Module M = compileOrDie(SumSource);
  Function &F = functionNamed(M, "f");
  PhaseManager PM;
  PM.applySequence(F, "sck");
  std::vector<uint8_t> Bytes = encodedFunction(F);

  ByteReader R(Bytes);
  Function G;
  ASSERT_TRUE(store::decodeFunction(R, G));
  EXPECT_EQ(G.State.RegsAssigned, F.State.RegsAssigned);
  EXPECT_EQ(G.State.RegAllocDone, F.State.RegAllocDone);
  EXPECT_EQ(G.pseudoLimit(), F.pseudoLimit());
  EXPECT_EQ(G.labelLimit(), F.labelLimit());
  EXPECT_EQ(encodedFunction(G), Bytes);
}

TEST(Serialize, ResultRoundTripIsExact) {
  Module M = compileOrDie(SumSource);
  PhaseManager PM;
  Enumerator E(PM, EnumeratorConfig{});
  EnumerationResult Res = E.enumerate(functionNamed(M, "f"));
  ASSERT_TRUE(Res.complete());
  ASSERT_GT(Res.Nodes.size(), 1u);

  ByteWriter W;
  store::encodeResult(W, Res);
  ByteReader R(W.bytes());
  EnumerationResult Out;
  ASSERT_TRUE(store::decodeResult(R, Out));
  EXPECT_TRUE(R.atEnd());

  ByteWriter W2;
  store::encodeResult(W2, Out);
  EXPECT_EQ(W2.bytes(), W.bytes());
  EXPECT_EQ(Out.Nodes.size(), Res.Nodes.size());
  EXPECT_EQ(Out.Stop, Res.Stop);
  EXPECT_EQ(Out.AttemptedPhases, Res.AttemptedPhases);
}

TEST(Serialize, ResultWithDiagnosticsRoundTrips) {
  FaultPlan Plan;
  ASSERT_TRUE(FaultPlan::parse("s:1", Plan));
  Module M = compileOrDie(SumSource);
  PhaseManager PM;
  EnumeratorConfig Cfg;
  Cfg.VerifyIr = true;
  Cfg.Faults = &Plan;
  Enumerator E(PM, Cfg);
  EnumerationResult Res = E.enumerate(functionNamed(M, "f"));
  ASSERT_FALSE(Res.Diagnostics.empty());

  ByteWriter W;
  store::encodeResult(W, Res);
  ByteReader R(W.bytes());
  EnumerationResult Out;
  ASSERT_TRUE(store::decodeResult(R, Out));
  ASSERT_EQ(Out.Diagnostics.size(), Res.Diagnostics.size());
  EXPECT_EQ(Out.Diagnostics[0].Message, Res.Diagnostics[0].Message);
  EXPECT_EQ(Out.Diagnostics[0].Application, Res.Diagnostics[0].Application);
  EXPECT_EQ(Out.Diagnostics[0].Injected, Res.Diagnostics[0].Injected);
}

TEST(Serialize, CheckpointRoundTripIsExact) {
  // A real checkpoint from a memory-budget stop, with paranoid byte
  // caching on so every field of the struct is exercised.
  Module M = compileOrDie(SumSource);
  PhaseManager PM;
  EnumeratorConfig Cfg;
  Cfg.ParanoidCompare = true;
  Cfg.MaxMemoryBytes = 20'000;
  Enumerator E(PM, Cfg);
  EnumerationCheckpoint Cp;
  EnumerationResult Res = E.enumerate(functionNamed(M, "f"), &Cp);
  ASSERT_EQ(Res.Stop, StopReason::MemoryBudget);
  ASSERT_TRUE(Cp.Valid);
  ASSERT_FALSE(Cp.Frontier.empty());
  ASSERT_TRUE(Cp.Paranoid);

  ByteWriter W;
  store::encodeCheckpoint(W, Cp);
  ByteReader R(W.bytes());
  EnumerationCheckpoint Out;
  ASSERT_TRUE(store::decodeCheckpoint(R, Out));
  EXPECT_TRUE(R.atEnd());

  ByteWriter W2;
  store::encodeCheckpoint(W2, Out);
  EXPECT_EQ(W2.bytes(), W.bytes());
  EXPECT_EQ(Out.LevelCounter, Cp.LevelCounter);
  EXPECT_EQ(Out.FrontierBytes, Cp.FrontierBytes);
  EXPECT_EQ(Out.Frontier.size(), Cp.Frontier.size());
  EXPECT_EQ(Out.NodeBytes, Cp.NodeBytes);
  for (int P = 0; P != NumPhases; ++P)
    EXPECT_EQ(Out.AppCount[P], Cp.AppCount[P]);
}

TEST(Serialize, TruncatedInputAlwaysRejected) {
  Module M = compileOrDie(SumSource);
  PhaseManager PM;
  Enumerator E(PM, EnumeratorConfig{});
  EnumerationResult Res = E.enumerate(functionNamed(M, "f"));
  ByteWriter W;
  store::encodeResult(W, Res);
  const std::vector<uint8_t> &Bytes = W.bytes();
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    ByteReader R(Bytes.data(), Len);
    EnumerationResult Out;
    EXPECT_FALSE(store::decodeResult(R, Out)) << "prefix length " << Len;
  }
}

TEST(Serialize, OutOfRangeEnumsRejected) {
  // A frontier-path phase id >= NumPhases must fail, not index out of
  // bounds later.
  ByteWriter W;
  W.u8(NumPhases); // Invalid PhaseId in a one-entry path.
  {
    ByteReader R(W.bytes());
    PhaseId P;
    (void)P;
    EnumerationResult Out;
    EXPECT_FALSE(store::decodeResult(R, Out));
  }
  // An out-of-range stop reason.
  Module M = compileOrDie(SumSource);
  PhaseManager PM;
  Enumerator E(PM, EnumeratorConfig{});
  EnumerationResult Res = E.enumerate(functionNamed(M, "f"));
  ByteWriter WR;
  store::encodeResult(WR, Res);
  std::vector<uint8_t> Bytes = WR.take();
  // The stop-reason byte directly follows the node array; find it by
  // decoding up to it is fragile, so instead corrupt the node count to a
  // value larger than the buffer — the count guard must reject it before
  // allocating.
  std::vector<uint8_t> Huge = Bytes;
  for (int I = 0; I != 8; ++I)
    Huge[I] = 0xFF;
  ByteReader R(Huge);
  EnumerationResult Out;
  EXPECT_FALSE(store::decodeResult(R, Out));
}

TEST(Serialize, QuarantineRoundTripIsExact) {
  store::QuarantineRecord Q;
  Q.Failure = store::WorkerFailure::Timeout;
  Q.Signal = 9;
  Q.ExitCode = 0;
  Q.Attempts = 3;
  Q.Message = "worker timed out after 200 ms";
  ByteWriter W;
  store::encodeQuarantine(W, Q);
  ByteReader R(W.bytes());
  store::QuarantineRecord Out;
  ASSERT_TRUE(store::decodeQuarantine(R, Out));
  EXPECT_TRUE(R.atEnd());
  EXPECT_EQ(Out.Failure, Q.Failure);
  EXPECT_EQ(Out.Signal, Q.Signal);
  EXPECT_EQ(Out.ExitCode, Q.ExitCode);
  EXPECT_EQ(Out.Attempts, Q.Attempts);
  EXPECT_EQ(Out.Message, Q.Message);
  // Canonical encoding: re-encoding the decoded value is byte-identical.
  ByteWriter W2;
  store::encodeQuarantine(W2, Out);
  EXPECT_EQ(W.bytes(), W2.bytes());
}

TEST(Serialize, QuarantineStrictness) {
  store::QuarantineRecord Q;
  Q.Failure = store::WorkerFailure::Signal;
  Q.Signal = 11;
  Q.Attempts = 2;
  Q.Message = "segfault";
  ByteWriter W;
  store::encodeQuarantine(W, Q);
  const std::vector<uint8_t> &Bytes = W.bytes();
  // Every truncated prefix is rejected.
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    ByteReader R(Bytes.data(), Len);
    store::QuarantineRecord Out;
    EXPECT_FALSE(store::decodeQuarantine(R, Out)) << "prefix length " << Len;
  }
  // An out-of-range failure kind (first byte) is rejected.
  std::vector<uint8_t> Bad = Bytes;
  Bad[0] = 0xFF;
  ByteReader R(Bad);
  store::QuarantineRecord Out;
  EXPECT_FALSE(store::decodeQuarantine(R, Out));
}

TEST(ByteIo, ReaderIsBoundedAndLatching) {
  ByteWriter W;
  W.u32(7);
  ByteReader R(W.bytes());
  EXPECT_EQ(R.u32(), 7u);
  EXPECT_TRUE(R.ok());
  EXPECT_TRUE(R.atEnd());
  EXPECT_EQ(R.u64(), 0u); // Overrun: zero, and the failure latches.
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.u8(), 0u);
  EXPECT_FALSE(R.ok());
}

TEST(ByteIo, OversizedLengthPrefixRejectedBeforeAllocation) {
  ByteWriter W;
  W.u64(UINT64_MAX); // A string "longer" than any buffer.
  ByteReader R(W.bytes());
  EXPECT_EQ(R.str(), "");
  EXPECT_FALSE(R.ok());
}

TEST(ByteIo, ScalarsRoundTrip) {
  ByteWriter W;
  W.u8(0xAB);
  W.u16(0xCDEF);
  W.u32(0xDEADBEEF);
  W.u64(0x0123456789ABCDEFull);
  W.i32(-42);
  W.f64(-1.5e-300);
  W.str("hello");
  W.blob({1, 2, 3});
  ByteReader R(W.bytes());
  EXPECT_EQ(R.u8(), 0xAB);
  EXPECT_EQ(R.u16(), 0xCDEF);
  EXPECT_EQ(R.u32(), 0xDEADBEEFu);
  EXPECT_EQ(R.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(R.i32(), -42);
  EXPECT_EQ(R.f64(), -1.5e-300);
  EXPECT_EQ(R.str(), "hello");
  EXPECT_EQ(R.blob(), (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_TRUE(R.ok());
  EXPECT_TRUE(R.atEnd());
}

} // namespace
