//===- checkpoint_test.cpp - Checkpoint/resume byte-identity tests -------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The resume contract: an enumeration stopped by a transient limit
// (Deadline, MemoryBudget, Cancelled) and continued from its checkpoint —
// in the same process or after a serialize/deserialize round trip through
// the store — produces a final result byte-identical to an uninterrupted
// run, for any mix of job counts across the sessions. "Byte-identical" is
// enforced literally: both results are serialized with the store codec
// and the byte strings compared.
//
//===----------------------------------------------------------------------===//

#include "src/store/StoreDriver.h"

#include "src/store/ByteIo.h"
#include "src/store/Serialize.h"

#include "src/frontend/Compile.h"
#include "src/opt/PhaseManager.h"
#include "src/workloads/Workloads.h"
#include "tests/common/Helpers.h"

#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

using namespace pose;
using namespace pose::testhelpers;

namespace {

const char *SumSource =
    "int f(int n){int s=0;int i=0;while(i<n){s=s+i;i=i+1;}return s;}";

std::vector<uint8_t> resultBytes(const EnumerationResult &R) {
  ByteWriter W;
  store::encodeResult(W, R);
  return W.take();
}

void expectByteIdentical(const EnumerationResult &A,
                         const EnumerationResult &B, const std::string &What) {
  EXPECT_EQ(resultBytes(A), resultBytes(B)) << What;
  // Redundant with the byte compare, but gives readable failures.
  EXPECT_EQ(A.Nodes.size(), B.Nodes.size()) << What;
  EXPECT_EQ(A.Stop, B.Stop) << What;
  EXPECT_EQ(A.AttemptedPhases, B.AttemptedPhases) << What;
  EXPECT_EQ(A.ApproxMemoryBytes, B.ApproxMemoryBytes) << What;
  EXPECT_EQ(A.Diagnostics.size(), B.Diagnostics.size()) << What;
}

EnumerationResult cleanRun(const Function &F, EnumeratorConfig Cfg,
                           unsigned Jobs) {
  Cfg.Jobs = Jobs;
  PhaseManager PM;
  Enumerator E(PM, Cfg);
  return E.enumerate(F);
}

/// Round-trips \p Cp through the binary codec, proving the persisted form
/// carries everything resume needs.
EnumerationCheckpoint throughCodec(const EnumerationCheckpoint &Cp) {
  ByteWriter W;
  store::encodeCheckpoint(W, Cp);
  ByteReader R(W.bytes());
  EnumerationCheckpoint Out;
  EXPECT_TRUE(store::decodeCheckpoint(R, Out));
  EXPECT_TRUE(R.atEnd());
  return Out;
}

/// Runs to the first stop under \p StartBudget bytes of memory, then
/// repeatedly resumes with the budget raised by \p Step until the run no
/// longer checkpoints. Every intermediate checkpoint crosses the codec.
/// \p ResumeJobs rotates through the job counts used for the resume legs.
EnumerationResult resumeLadder(const Function &F, EnumeratorConfig Base,
                               uint64_t StartBudget, uint64_t Step,
                               unsigned FirstJobs,
                               std::vector<unsigned> ResumeJobs,
                               int &Interruptions) {
  PhaseManager PM;
  EnumeratorConfig Cfg = Base;
  Cfg.Jobs = FirstJobs;
  Cfg.MaxMemoryBytes = StartBudget;
  EnumerationCheckpoint Cp;
  EnumerationResult R;
  {
    Enumerator E(PM, Cfg);
    R = E.enumerate(F, &Cp);
  }
  Interruptions = 0;
  size_t Leg = 0;
  while (Cp.Valid) {
    if (++Interruptions > 100) {
      ADD_FAILURE() << "resume ladder did not converge";
      break;
    }
    EnumerationCheckpoint From = throughCodec(Cp);
    Cp = EnumerationCheckpoint();
    Cfg.MaxMemoryBytes += Step;
    Cfg.Jobs = ResumeJobs[Leg++ % ResumeJobs.size()];
    Enumerator E(PM, Cfg);
    R = E.resume(F, std::move(From), &Cp);
  }
  return R;
}

TEST(CheckpointResume, SequentialMemoryLadderIsByteIdentical) {
  Module M = compileOrDie(SumSource);
  Function &F = functionNamed(M, "f");
  EnumerationResult Clean = cleanRun(F, {}, 1);
  ASSERT_TRUE(Clean.complete());

  int Interruptions = 0;
  EnumerationResult Resumed =
      resumeLadder(F, {}, 20'000, 20'000, 1, {1}, Interruptions);
  ASSERT_GE(Interruptions, 1) << "budget too generous to test resume";
  expectByteIdentical(Clean, Resumed, "sequential ladder");
}

TEST(CheckpointResume, ParallelMemoryLadderIsByteIdentical) {
  Module M = compileOrDie(SumSource);
  Function &F = functionNamed(M, "f");
  EnumerationResult Clean = cleanRun(F, {}, 1);

  int Interruptions = 0;
  EnumerationResult Resumed =
      resumeLadder(F, {}, 20'000, 20'000, 4, {4}, Interruptions);
  ASSERT_GE(Interruptions, 1);
  expectByteIdentical(Clean, Resumed, "parallel ladder");
}

TEST(CheckpointResume, MixedJobCountsAcrossSessionsAreByteIdentical) {
  // A checkpoint written by one engine must resume under the other: the
  // saved state is barrier state, which both engines share.
  Module M = compileOrDie(SumSource);
  Function &F = functionNamed(M, "f");
  EnumerationResult Clean = cleanRun(F, {}, 1);

  int Interruptions = 0;
  EnumerationResult SeqThenPar =
      resumeLadder(F, {}, 20'000, 20'000, 1, {4, 1, 8}, Interruptions);
  ASSERT_GE(Interruptions, 1);
  expectByteIdentical(Clean, SeqThenPar, "jobs 1 -> {4,1,8}");

  EnumerationResult ParThenSeq =
      resumeLadder(F, {}, 20'000, 20'000, 4, {1, 4}, Interruptions);
  ASSERT_GE(Interruptions, 1);
  expectByteIdentical(Clean, ParThenSeq, "jobs 4 -> {1,4}");
}

TEST(CheckpointResume, BudgetCappedWorkloadReachesTheSameVerdict) {
  // A space too large for its node budget: the clean run ends with a
  // (deterministic, barrier-only) NodeBudget verdict. The
  // interrupted-and-resumed run must reach the exact same verdict and
  // partial DAG — a resume must not change the meaning of a budget stop.
  // The cap is calibrated from the full space so it trips near the end,
  // after the memory ladder has had room to interrupt.
  Module M = compileOrDie(SumSource);
  Function &F = functionNamed(M, "f");
  EnumerationResult Full = cleanRun(F, {}, 1);
  ASSERT_TRUE(Full.complete());
  ASSERT_GT(Full.Nodes.size(), 20u);
  EnumeratorConfig Capped;
  Capped.MaxTotalNodes = Full.Nodes.size() - 10;
  EnumerationResult Clean = cleanRun(F, Capped, 1);
  ASSERT_EQ(Clean.Stop, StopReason::NodeBudget);
  ASSERT_FALSE(isResumableStop(Clean.Stop));

  int Interruptions = 0;
  EnumerationResult Resumed =
      resumeLadder(F, Capped, 20'000, 20'000, 4, {1, 4}, Interruptions);
  ASSERT_GE(Interruptions, 1);
  expectByteIdentical(Clean, Resumed, "node-capped f");
}

TEST(CheckpointResume, ParanoidModeSurvivesResume) {
  // Paranoid collision detection needs the canonical bytes of every
  // already-interned node; the checkpoint must carry them or the resumed
  // half would misreport collisions.
  Module M = compileOrDie(SumSource);
  Function &F = functionNamed(M, "f");
  EnumeratorConfig Cfg;
  Cfg.ParanoidCompare = true;
  EnumerationResult Clean = cleanRun(F, Cfg, 1);

  int Interruptions = 0;
  EnumerationResult Resumed =
      resumeLadder(F, Cfg, 30'000, 30'000, 1, {4, 1}, Interruptions);
  ASSERT_GE(Interruptions, 1);
  expectByteIdentical(Clean, Resumed, "paranoid ladder");
  EXPECT_EQ(Resumed.HashCollisions, Clean.HashCollisions);
}

TEST(CheckpointResume, NaiveReapplyModeSurvivesResume) {
  // Naive mode stores paths, not instances: the checkpointed frontier
  // must replay prefixes identically, including the PhaseApplications
  // count that distinguishes naive from prefix-sharing mode.
  Module M = compileOrDie(SumSource);
  Function &F = functionNamed(M, "f");
  EnumeratorConfig Cfg;
  Cfg.NaiveReapply = true;
  EnumerationResult Clean = cleanRun(F, Cfg, 1);
  ASSERT_GT(Clean.PhaseApplications, Clean.AttemptedPhases);

  int Interruptions = 0;
  EnumerationResult Resumed =
      resumeLadder(F, Cfg, 10'000, 10'000, 1, {1}, Interruptions);
  ASSERT_GE(Interruptions, 1);
  expectByteIdentical(Clean, Resumed, "naive ladder");
}

TEST(CheckpointResume, InjectedFaultCoordinatesSurviveResume) {
  // Fault applications are numbered in sequential order across the whole
  // run; the checkpoint seeds the counters so an injection scheduled
  // after the interruption still fires on the same application.
  FaultPlan Plan;
  ASSERT_TRUE(FaultPlan::parse("s:1,c:2,d:3", Plan));
  Module M = compileOrDie(SumSource);
  Function &F = functionNamed(M, "f");
  EnumeratorConfig Cfg;
  Cfg.VerifyIr = true;
  Cfg.Faults = &Plan;
  EnumerationResult Clean = cleanRun(F, Cfg, 1);
  ASSERT_FALSE(Clean.Diagnostics.empty());

  int Interruptions = 0;
  EnumerationResult Resumed =
      resumeLadder(F, Cfg, 20'000, 20'000, 1, {4, 1}, Interruptions);
  ASSERT_GE(Interruptions, 1);
  expectByteIdentical(Clean, Resumed, "fault ladder");
  ASSERT_EQ(Resumed.Diagnostics.size(), Clean.Diagnostics.size());
  for (size_t I = 0; I != Clean.Diagnostics.size(); ++I)
    EXPECT_EQ(Resumed.Diagnostics[I].Application,
              Clean.Diagnostics[I].Application);
}

TEST(CheckpointResume, CancelledRunResumesToTheIdenticalResult) {
  Module M = compileOrDie(SumSource);
  Function &F = functionNamed(M, "f");
  EnumerationResult Clean = cleanRun(F, {}, 1);

  for (unsigned Jobs : {1u, 4u}) {
    StopToken Token;
    Token.requestStop();
    EnumeratorConfig Cfg;
    Cfg.Stop = &Token;
    Cfg.Jobs = Jobs;
    PhaseManager PM;
    Enumerator E(PM, Cfg);
    EnumerationCheckpoint Cp;
    EnumerationResult Partial = E.enumerate(F, &Cp);
    ASSERT_EQ(Partial.Stop, StopReason::Cancelled);
    ASSERT_TRUE(Cp.Valid);

    EnumeratorConfig Free;
    Free.Jobs = Jobs;
    Enumerator E2(PM, Free);
    EnumerationResult Resumed =
        E2.resume(F, throughCodec(Cp), nullptr);
    expectByteIdentical(Clean, Resumed,
                        "cancelled jobs=" + std::to_string(Jobs));
  }
}

TEST(CheckpointResume, DeadlineInterruptionsResumeToTheIdenticalResult) {
  // The acceptance scenario: a run stopped by --deadline-ms, resumed until
  // done, must equal the uninterrupted run — for both engines. The
  // deadline doubles each leg so even a slow CI machine converges.
  const Workload *W = findWorkload("bitcount");
  ASSERT_NE(W, nullptr);
  Module M = compileOrDie(W->Source);
  EnumeratorConfig Capped;
  Capped.MaxLevelSequences = 1'000;
  Capped.MaxTotalNodes = 8'000;
  for (Function &F : M.Functions) {
    EnumerationResult Clean = cleanRun(F, Capped, 1);
    for (unsigned Jobs : {1u, 4u}) {
      PhaseManager PM;
      EnumeratorConfig Cfg = Capped;
      Cfg.Jobs = Jobs;
      Cfg.DeadlineMs = 2;
      EnumerationCheckpoint Cp;
      EnumerationResult R;
      {
        Enumerator E(PM, Cfg);
        R = E.enumerate(F, &Cp);
      }
      int Legs = 0;
      while (Cp.Valid && Legs < 64) {
        ++Legs;
        EnumerationCheckpoint From = throughCodec(Cp);
        Cp = EnumerationCheckpoint();
        Cfg.DeadlineMs *= 2;
        Enumerator E(PM, Cfg);
        R = E.resume(F, std::move(From), &Cp);
      }
      ASSERT_FALSE(Cp.Valid) << "deadline ladder did not converge";
      expectByteIdentical(Clean, R,
                          F.Name + " deadline jobs=" + std::to_string(Jobs));
    }
  }
}

TEST(CheckpointResume, NonResumableStopsLeaveNoCheckpoint) {
  Module M = compileOrDie(SumSource);
  Function &F = functionNamed(M, "f");
  EnumeratorConfig Cfg;
  Cfg.MaxTotalNodes = 10; // NodeBudget: a verdict, not an interruption.
  PhaseManager PM;
  Enumerator E(PM, Cfg);
  EnumerationCheckpoint Cp;
  EnumerationResult R = E.enumerate(F, &Cp);
  EXPECT_EQ(R.Stop, StopReason::NodeBudget);
  EXPECT_FALSE(Cp.Valid);
}

TEST(StoreDriver, CachesResumesAndReuses) {
  std::string Dir = ::testing::TempDir() + "pose-store-driver";
  std::filesystem::remove_all(Dir);
  Module M = compileOrDie(SumSource);
  Function &F = functionNamed(M, "f");
  PhaseManager PM;
  EnumerationResult Clean = cleanRun(F, {}, 1);

  // Leg 1: a memory budget interrupts; the driver saves a checkpoint.
  EnumeratorConfig Cfg;
  Cfg.MaxMemoryBytes = 20'000;
  store::DriveResult D1 = store::driveEnumeration(PM, Cfg, F, Dir, false);
  ASSERT_TRUE(D1.Ok) << D1.Error;
  ASSERT_EQ(D1.Result.Stop, StopReason::MemoryBudget);
  ASSERT_TRUE(D1.CheckpointSaved);
  EXPECT_EQ(D1.Source, store::DriveSource::Fresh);

  // Leg 2 without --resume: the checkpoint is ignored, the fresh run is
  // interrupted again (resuming is opt-in).
  store::DriveResult D2 = store::driveEnumeration(PM, Cfg, F, Dir, false);
  ASSERT_TRUE(D2.Ok) << D2.Error;
  EXPECT_EQ(D2.Source, store::DriveSource::Fresh);

  // Leg 3 with --resume and room to finish: completes, byte-identical to
  // the clean run, and the result is cached.
  Cfg.MaxMemoryBytes = 0;
  store::DriveResult D3 = store::driveEnumeration(PM, Cfg, F, Dir, true);
  ASSERT_TRUE(D3.Ok) << D3.Error;
  EXPECT_EQ(D3.Source, store::DriveSource::Resumed);
  EXPECT_FALSE(D3.CheckpointSaved);
  expectByteIdentical(Clean, D3.Result, "driver resumed");

  // Leg 4: served from the cache without enumerating.
  store::DriveResult D4 = store::driveEnumeration(PM, Cfg, F, Dir, false);
  ASSERT_TRUE(D4.Ok) << D4.Error;
  EXPECT_EQ(D4.Source, store::DriveSource::Cached);
  expectByteIdentical(Clean, D4.Result, "driver cached");
}

TEST(StoreDriver, StaleArtifactIsRejectedAndRegenerated) {
  std::string Dir = ::testing::TempDir() + "pose-store-stale";
  std::filesystem::remove_all(Dir);
  Module M = compileOrDie(SumSource);
  Function &F = functionNamed(M, "f");
  PhaseManager PM;

  EnumeratorConfig Cfg;
  store::DriveResult D1 = store::driveEnumeration(PM, Cfg, F, Dir, false);
  ASSERT_TRUE(D1.Ok) << D1.Error;
  ASSERT_TRUE(D1.Result.complete());

  // Corrupt the stored result on disk; the next drive must reject it
  // (with a note), re-enumerate, and overwrite it with a good artifact.
  store::ArtifactStore Store(Dir);
  std::string Path = Store.pathFor(D1.Root, store::ArtifactKind::Result);
  {
    std::fstream File(Path, std::ios::in | std::ios::out | std::ios::binary);
    File.seekp(-1, std::ios::end);
    File.put('\xFF');
  }
  store::DriveResult D2 = store::driveEnumeration(PM, Cfg, F, Dir, false);
  ASSERT_TRUE(D2.Ok) << D2.Error;
  EXPECT_EQ(D2.Source, store::DriveSource::Fresh);
  ASSERT_FALSE(D2.RejectionNotes.empty());
  EXPECT_NE(D2.RejectionNotes[0].find("payload checksum mismatch"),
            std::string::npos);

  store::DriveResult D3 = store::driveEnumeration(PM, Cfg, F, Dir, false);
  ASSERT_TRUE(D3.Ok) << D3.Error;
  EXPECT_EQ(D3.Source, store::DriveSource::Cached);
  expectByteIdentical(D1.Result, D3.Result, "regenerated artifact");
}

} // namespace
